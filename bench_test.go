// Benchmarks, one per reproduced evaluation artifact (DESIGN.md E1–E11).
// `go test -bench=. -benchmem` exercises them at bench scale; `rxbench`
// regenerates the full experiment tables.
package rx

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rx/internal/buffer"
	"rx/internal/construct"
	"rx/internal/core"
	"rx/internal/dom"
	"rx/internal/pagestore"
	"rx/internal/quickxscan"
	"rx/internal/serialize"
	"rx/internal/shred"
	"rx/internal/wal"
	"rx/internal/xml"
	"rx/internal/xmlgen"
	"rx/internal/xmlparse"
	"rx/internal/xmlschema"
	"rx/internal/xpath"
	"rx/internal/xpathdom"
	"rx/internal/xpathnaive"
)

// ---- E1/E2: storage and traversal vs packing factor ----

func buildShapedCollection(b *testing.B, k, n, threshold int) (*core.Collection, DocID) {
	b.Helper()
	db, err := core.OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	col, err := db.CreateCollection("b", core.CollectionOptions{PackThreshold: threshold})
	if err != nil {
		b.Fatal(err)
	}
	id, err := col.Insert(xmlgen.Shaped(k, n))
	if err != nil {
		b.Fatal(err)
	}
	return col, id
}

// BenchmarkE1StoragePacking measures insert cost per packing threshold and
// reports the §3.1 storage metrics as custom benchmark outputs.
func BenchmarkE1StoragePacking(b *testing.B) {
	for _, th := range []int{400, 1600, 7700} {
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			const k, n = 5000, 20
			doc := xmlgen.Shaped(k, n)
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			var col *core.Collection
			for i := 0; i < b.N; i++ {
				db, _ := core.OpenMemory()
				c, _ := db.CreateCollection("b", core.CollectionOptions{PackThreshold: th})
				if _, err := c.Insert(doc); err != nil {
					b.Fatal(err)
				}
				col = c
			}
			entries, _ := col.NodeIndex().Count()
			b.ReportMetric(float64(entries)/float64(2*k+1), "ixentries/node")
			b.ReportMetric(float64(2*k+1)/float64(col.XMLTable().Count()), "nodes/record")
		})
	}
}

// BenchmarkE1NodePerRowBaseline is the one-node-per-row insert baseline.
func BenchmarkE1NodePerRowBaseline(b *testing.B) {
	const k, n = 5000, 20
	doc := xmlgen.Shaped(k, n)
	dict := xml.NewDict()
	stream, err := xmlparse.Parse(doc, dict, xmlparse.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pool := buffer.New(pagestore.NewMemStore(), 1<<14)
		ss, _ := shred.Create(pool)
		if _, err := ss.Insert(1, stream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Traversal measures document-order traversal per scheme.
func BenchmarkE2Traversal(b *testing.B) {
	const k, n = 5000, 20
	b.Run("node-per-row", func(b *testing.B) {
		pool := buffer.New(pagestore.NewMemStore(), 1<<14)
		ss, _ := shred.Create(pool)
		dict := xml.NewDict()
		stream, _ := xmlparse.Parse(xmlgen.Shaped(k, n), dict, xmlparse.Options{})
		ss.Insert(1, stream)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count := 0
			if err := ss.Traverse(1, func(shred.Node) error { count++; return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, th := range []int{400, 7700} {
		b.Run(fmt.Sprintf("packed/threshold=%d", th), func(b *testing.B) {
			col, id := buildShapedCollection(b, k, n, th)
			var buf bytes.Buffer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := col.Serialize(id, &buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3NodeUpdate measures single text-node updates per threshold.
func BenchmarkE3NodeUpdate(b *testing.B) {
	for _, th := range []int{400, 7700} {
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			col, id := buildShapedCollection(b, 5000, 20, th)
			res, _, err := col.Query("/r/e/text()")
			if err != nil || len(res) == 0 {
				b.Fatalf("%v %v", res, err)
			}
			rng := rand.New(rand.NewSource(1))
			val := []byte("wwwwwwwwwwwwwwwwwwww")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := col.UpdateText(id, res[rng.Intn(len(res))].Node, val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E4/E5/E6: QuickXScan ----

// BenchmarkE4ScanLinearity: throughput should be flat across sizes.
func BenchmarkE4ScanLinearity(b *testing.B) {
	dict := xml.NewDict()
	q, _ := xpath.Parse("/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.1]/ProductName")
	e, err := quickxscan.Compile(q, dict, nil, quickxscan.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, products := range []int{1000, 8000} {
		stream, _ := xmlparse.Parse(xmlgen.Catalog(rng, products, 200), dict, xmlparse.Options{})
		b.Run(fmt.Sprintf("products=%d", products), func(b *testing.B) {
			b.SetBytes(int64(len(stream)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := quickxscan.EvalTokens(e, stream); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5ActiveStates: recursive //a//a//a, reporting live-state counts.
func BenchmarkE5ActiveStates(b *testing.B) {
	dict := xml.NewDict()
	q, _ := xpath.Parse("//a//a//a")
	stream, _ := xmlparse.Parse(xmlgen.Recursive(64), dict, xmlparse.Options{})
	b.Run("quickxscan", func(b *testing.B) {
		e, _ := quickxscan.Compile(q, dict, nil, quickxscan.Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := quickxscan.EvalTokens(e, stream); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(e.Stats().MaxLive), "max-live")
	})
	b.Run("naive-automaton", func(b *testing.B) {
		e, _ := xpathnaive.Compile(q, dict, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.EvalTokens(stream); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(e.Stats().MaxActive), "max-active")
	})
}

// BenchmarkE6EvaluatorComparison: quickxscan vs naive vs DOM on one catalog.
func BenchmarkE6EvaluatorComparison(b *testing.B) {
	dict := xml.NewDict()
	rng := rand.New(rand.NewSource(13))
	stream, _ := xmlparse.Parse(xmlgen.Catalog(rng, 5000, 1000), dict, xmlparse.Options{})
	q, _ := xpath.Parse("/Catalog/Categories/Product/RegPrice")
	b.Run("quickxscan", func(b *testing.B) {
		e, _ := quickxscan.Compile(q, dict, nil, quickxscan.Options{})
		b.SetBytes(int64(len(stream)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := quickxscan.EvalTokens(e, stream); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-stream", func(b *testing.B) {
		e, _ := xpathnaive.Compile(q, dict, nil)
		b.SetBytes(int64(len(stream)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.EvalTokens(stream); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dom-build-eval", func(b *testing.B) {
		c, _ := xpathdom.Compile(q, dict, nil)
		b.SetBytes(int64(len(stream)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tree, err := dom.Build(stream)
			if err != nil {
				b.Fatal(err)
			}
			c.Evaluate(tree)
		}
	})
}

// ---- E7: access methods ----

func buildCatalogCollection(b *testing.B, docs, products int, indexed bool) *core.Collection {
	b.Helper()
	db, _ := core.OpenMemory()
	col, _ := db.CreateCollection("cat", core.CollectionOptions{})
	rng := rand.New(rand.NewSource(21))
	for d := 0; d < docs; d++ {
		if _, err := col.Insert(xmlgen.Catalog(rng, products, 1000)); err != nil {
			b.Fatal(err)
		}
	}
	if indexed {
		if err := col.CreateValueIndex("ix_regprice", "/Catalog/Categories/Product/RegPrice", xml.TDouble); err != nil {
			b.Fatal(err)
		}
		if err := col.CreateValueIndex("ix_discount", "//Discount", xml.TDouble); err != nil {
			b.Fatal(err)
		}
	}
	return col
}

// BenchmarkE7AccessMethods compares scan vs the Table-2 index access paths.
func BenchmarkE7AccessMethods(b *testing.B) {
	const docs, products = 400, 10
	queries := map[string]string{
		"selective":   "/Catalog/Categories/Product[RegPrice > 990]",
		"anding":      "/Catalog/Categories/Product[RegPrice > 900 and Discount > 0.2]",
		"containment": "/Catalog/Categories/Product[Discount > 0.2]",
	}
	for mode, indexed := range map[string]bool{"scan": false, "indexed": true} {
		col := buildCatalogCollection(b, docs, products, indexed)
		for name, q := range queries {
			b.Run(mode+"/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := col.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- E8: constructors ----

// BenchmarkE8Constructors: tagging template vs per-row materialization.
func BenchmarkE8Constructors(b *testing.B) {
	dict := xml.NewDict()
	expr := construct.Element("Emp",
		construct.Attributes(construct.Attr("id", 0), construct.Attr("name", 1)),
		construct.Forest(construct.As("hire", 2), construct.As("department", 3)),
	)
	tpl, _ := construct.Compile(expr, dict)
	row := construct.Row{[]byte("1234"), []byte("John Doe"), []byte("2000-05-24"), []byte("Accting")}
	b.Run("template", func(b *testing.B) {
		s := newDiscardSerializer(dict)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tpl.Emit(s, row, nil, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("xmlagg-orderby", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agg := construct.NewAgg(tpl)
			for j := 0; j < 100; j++ {
				agg.Add(row, []byte(fmt.Sprintf("%03d", (j*37)%100)))
			}
			if err := agg.SerializeInto(io.Discard, dict, "emps"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E9/E10: parsing, validation, insertion ----

// BenchmarkE9ParseValidate: parse vs validate throughput.
func BenchmarkE9ParseValidate(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	doc := xmlgen.Catalog(rng, 10000, 200)
	dict := xml.NewDict()
	b.Run("parse", func(b *testing.B) {
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmlparse.Parse(doc, dict, xmlparse.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("validate", func(b *testing.B) {
		sch, err := xmlschema.Compile([]byte(benchXSD))
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(doc)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmlschema.Validate(doc, sch, dict); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10Insert: end-to-end insertion throughput.
func BenchmarkE10Insert(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	doc := xmlgen.Catalog(rng, 100, 200)
	for _, indexed := range []bool{false, true} {
		name := "plain"
		if indexed {
			name = "with-value-index"
		}
		b.Run(name, func(b *testing.B) {
			db, _ := core.OpenMemory()
			col, _ := db.CreateCollection("c", core.CollectionOptions{})
			if indexed {
				col.CreateValueIndex("ix", "/Catalog/Categories/Product/RegPrice", xml.TDouble)
			}
			b.SetBytes(int64(len(doc)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := col.Insert(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E11: concurrency ----

// BenchmarkE11Concurrency: snapshot reads under a concurrent writer (MVCC)
// vs locked reads.
func BenchmarkE11Concurrency(b *testing.B) {
	b.Run("mvcc-snapshot-read", func(b *testing.B) {
		db, _ := core.OpenMemory()
		col, _ := db.CreateCollection("v", core.CollectionOptions{Versioned: true})
		id, _ := col.Insert([]byte(`<page><body>content</body></page>`))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				ver, err := col.SnapshotVersion(id)
				if err != nil {
					b.Error(err)
					return
				}
				if err := col.SerializeAt(id, ver, io.Discard); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("locked-read", func(b *testing.B) {
		db, _ := core.OpenMemory()
		col, _ := db.CreateCollection("c", core.CollectionOptions{})
		id, _ := col.Insert([]byte(`<page><body>content</body></page>`))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				tx := db.Begin()
				var buf bytes.Buffer
				if err := tx.Serialize(col, id, &buf); err != nil {
					b.Error(err)
					tx.Rollback()
					return
				}
				tx.Commit()
			}
		})
	})
}

const benchXSD = `
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Catalog">
    <xs:complexType><xs:sequence>
      <xs:element name="Categories">
        <xs:complexType><xs:sequence>
          <xs:element ref="Product" minOccurs="0" maxOccurs="unbounded"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="Product">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="ProductName" type="xs:string"/>
        <xs:element name="RegPrice" type="xs:double"/>
        <xs:element name="Discount" type="xs:double" minOccurs="0"/>
      </xs:sequence>
      <xs:attribute name="pid" type="xs:integer" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>`

// newDiscardSerializer builds a serializer that throws its output away.
func newDiscardSerializer(dict xml.Names) *serialize.Serializer {
	return serialize.New(io.Discard, dict)
}

// ---- E13: parallel scan speedup ----

// BenchmarkParallelScan measures the parallel query executor against the
// same scan run serially: 64 catalog documents, a predicate scan that
// re-evaluates every document, worker counts 1/2/4/8.
func BenchmarkParallelScan(b *testing.B) {
	db, err := core.OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	col, err := db.CreateCollection("bench", core.CollectionOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 64; i++ {
		if _, err := col.Insert(xmlgen.Catalog(rng, 200, 1000)); err != nil {
			b.Fatal(err)
		}
	}
	const query = "/Catalog/Categories/Product[RegPrice > 500]/ProductName"
	want := -1
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rs, _, err := col.QueryOpts(query, core.QueryOptions{Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				if want < 0 {
					want = len(rs)
				} else if len(rs) != want {
					b.Fatalf("workers=%d returned %d results, want %d", par, len(rs), want)
				}
			}
		})
	}
}

// ---- E15/E16: write-path throughput ----

// walBenchDB opens a memory-paged database logged to a file device in the
// benchmark's temp dir, so log syncs pay a real fsync.
func walBenchDB(b *testing.B, groupDelay time.Duration) (*core.DB, *wal.Log) {
	b.Helper()
	dev, err := wal.OpenFileDevice(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	var wopts []wal.Option
	if groupDelay > 0 {
		wopts = append(wopts, wal.WithGroupCommit(groupDelay))
	}
	log, err := wal.Open(dev, wopts...)
	if err != nil {
		b.Fatal(err)
	}
	db, err := core.Open(pagestore.NewMemStore(), core.Options{WAL: log})
	if err != nil {
		b.Fatal(err)
	}
	return db, log
}

// BenchmarkGroupCommit measures commit throughput with 8 concurrent writers,
// without and with a group-commit window (E15; rxbench e15 prints the full
// writer sweep with syncs-per-commit ratios).
func BenchmarkGroupCommit(b *testing.B) {
	const writers = 8
	for _, bench := range []struct {
		name  string
		delay time.Duration
	}{{"sync-per-commit", 0}, {"group-2ms", 2 * time.Millisecond}} {
		b.Run(bench.name, func(b *testing.B) {
			db, log := walBenchDB(b, bench.delay)
			defer db.Close()
			col, err := db.CreateCollection("bench", core.CollectionOptions{})
			if err != nil {
				b.Fatal(err)
			}
			c0, s0 := log.CommitCount(), log.SyncCount()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						tx := db.Begin()
						if _, err := tx.Insert(col, []byte(fmt.Sprintf("<r><w>%d</w></r>", w))); err != nil {
							b.Error(err)
							return
						}
						if err := tx.Commit(); err != nil {
							b.Error(err)
						}
					}(w)
				}
				wg.Wait()
			}
			b.StopTimer()
			commits, syncs := log.CommitCount()-c0, log.SyncCount()-s0
			if commits > 0 {
				b.ReportMetric(float64(syncs)/float64(commits), "syncs/commit")
			}
		})
	}
}

// BenchmarkBulkLoad measures document ingest throughput: one transaction
// (and one log sync) per document versus InsertBatch with 1000-document
// batches (E16). The batch path must beat per-document ingest by at least
// 2x; rxbench e16 prints the MB/s table.
func BenchmarkBulkLoad(b *testing.B) {
	const docsPerIter = 1000
	docs := make([][]byte, docsPerIter)
	var total int
	for i := range docs {
		docs[i] = []byte(fmt.Sprintf(
			"<item><sku>SKU-%06d</sku><qty>%d</qty><note>ingest corpus member %d</note></item>",
			i, i%97, i))
		total += len(docs[i])
	}
	for _, bench := range []struct {
		name  string
		batch bool
	}{{"per-doc", false}, {"batch-1000", true}} {
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(int64(total))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, _ := walBenchDB(b, 0)
				col, err := db.CreateCollection("bench", core.CollectionOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if bench.batch {
					if _, err := col.InsertBatch(docs, core.BatchOptions{}); err != nil {
						b.Fatal(err)
					}
				} else {
					for _, d := range docs {
						tx := db.Begin()
						if _, err := tx.Insert(col, d); err != nil {
							b.Fatal(err)
						}
						if err := tx.Commit(); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StopTimer()
				db.Close()
				b.StartTimer()
			}
		})
	}
}
