package client

// White-box tests for the seeded retry backoff: same seed → same jittered
// wait sequence (the property fault harnesses and the exhaustion CI matrix
// rely on to replay a failing run exactly), different seeds → decorrelated
// jitter, and every wait stays inside the [step/2, step] envelope capped by
// MaxDelay.

import (
	"math/rand"
	"testing"
	"time"
)

// seededClient builds a client with just the retry machinery wired, the
// same way Dial does, without a server on the other end.
func seededClient(p RetryPolicy) *DB {
	c := &DB{retry: p}
	c.retry.fill()
	seed := c.retry.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c.rng = rand.New(rand.NewSource(seed))
	return c
}

func backoffSeq(c *DB, n int) []time.Duration {
	seq := make([]time.Duration, n)
	for k := range seq {
		c.mu.Lock()
		seq[k] = c.backoff(k)
		c.mu.Unlock()
	}
	return seq
}

func TestBackoffSeededDeterminism(t *testing.T) {
	p := RetryPolicy{Attempts: 8, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 200 * time.Millisecond, Seed: 42}
	a := backoffSeq(seededClient(p), 16)
	b := backoffSeq(seededClient(p), 16)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", k, a[k], b[k])
		}
	}

	// A different seed must decorrelate the jitter: with 16 draws each
	// jittered over ≥5ms of range, identical sequences mean the seed is
	// being ignored.
	p.Seed = 43
	other := backoffSeq(seededClient(p), 16)
	same := true
	for k := range a {
		if a[k] != other[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical backoff sequences")
	}
}

func TestBackoffEnvelope(t *testing.T) {
	p := RetryPolicy{Attempts: 8, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 160 * time.Millisecond, Seed: 7}
	c := seededClient(p)
	for k := 0; k < 20; k++ {
		step := p.BaseDelay << k
		if step <= 0 || step > p.MaxDelay {
			step = p.MaxDelay
		}
		c.mu.Lock()
		d := c.backoff(k)
		c.mu.Unlock()
		if d < step/2 || d > step {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", k, d, step/2, step)
		}
	}
}

// TestBackoffZeroSeedStillJitters guards the Seed=0 default: the wait must
// still be jittered (not pinned to an endpoint of the envelope), so a fleet
// of default clients doesn't thundering-herd in lockstep.
func TestBackoffZeroSeedStillJitters(t *testing.T) {
	c := seededClient(RetryPolicy{BaseDelay: 64 * time.Millisecond,
		MaxDelay: time.Second})
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		c.mu.Lock()
		seen[c.backoff(0)] = true
		c.mu.Unlock()
	}
	if len(seen) < 2 {
		t.Fatalf("zero-seed backoff not jittered: only %d distinct waits", len(seen))
	}
}
