// Package client is the Go client for rxserver. DB implements the same
// session.API as an embedded session, so programs written against the
// interface run unchanged in-process or over the network: queries stream in
// cursor-sized batches, errors keep their errors.Is identity (rx.ErrNotFound,
// rx.ErrQuarantined, rx.ErrBusy, ...), and cancelling a context mid-query
// cancels the server-side cursor too.
//
// # Failure semantics
//
// The client is resilient by default. A dropped, reset, or stalled
// connection is re-dialed automatically with exponential backoff and
// jitter, and idempotent operations — reads and queries outside an open
// transaction — are retried transparently on the new connection; a query
// cursor that dies mid-stream is even re-issued and fast-forwarded past the
// rows already delivered, so the caller sees every row exactly once.
// ErrBusy responses carry the server's retry-after hint and back off the
// same way. Non-idempotent operations (writes, Begin/Commit/Rollback) and
// any operation inside an open transaction are never retried after a
// transport failure, because the request may or may not have executed:
// they surface rx.ErrConnLost, the transaction is gone (the server rolls
// it back on disconnect), and Rollback acknowledges the loss. MsgPing
// keepalives (WithKeepalive) hold long-lived idle connections open across
// server idle timeouts.
//
// One DB is one connection and therefore one session: safe for concurrent
// use, but requests serialize and Begin/Commit/Rollback scope a single
// transaction. Open one DB per concurrent transactional worker, exactly as
// you would open one session per worker embedded.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rx/internal/core"
	"rx/internal/rxerr"
	"rx/internal/session"
	"rx/internal/wire"
	"rx/internal/xml"
)

// Option configures a Dial.
type Option func(*DB)

// WithDialTimeout bounds each TCP connect and hello exchange (default 10s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *DB) { c.dialTimeout = d }
}

// WithBatchRows sets how many rows each cursor fetch requests (default 256).
// Smaller batches cancel faster; larger batches round-trip less.
func WithBatchRows(n int) Option {
	return func(c *DB) { c.batchRows = n }
}

// WithKeepalive sends a ping after d of idleness so server idle timeouts
// and middleboxes don't reap a healthy but quiet connection (0 = off,
// the default).
func WithKeepalive(d time.Duration) Option {
	return func(c *DB) { c.keepalive = d }
}

// WithRetry sets the reconnect/retry policy (see RetryPolicy).
func WithRetry(p RetryPolicy) Option {
	return func(c *DB) { c.retry = p }
}

// WithoutRetry disables reconnection and retries entirely: every transport
// failure surfaces immediately as rx.ErrConnLost.
func WithoutRetry() Option {
	return func(c *DB) { c.retryOff = true }
}

// RetryPolicy shapes the client's reconnect and retry behavior: attempt k
// (0-based) backs off for BaseDelay·2^k capped at MaxDelay, jittered into
// [d/2, d) so a shed fleet doesn't reconnect in lockstep. A server
// retry-after hint (rx.BusyError) raises the wait when it is longer.
type RetryPolicy struct {
	// Attempts is the total number of tries per operation, including the
	// first (default 5).
	Attempts int
	// BaseDelay is the first backoff step (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// Seed seeds the client's private jitter RNG so backoff sequences are
	// reproducible in tests and fault harnesses (0 = a unique seed per
	// client). Each client owns its RNG either way: jitter stays
	// independent across a fleet without touching the process-global
	// math/rand state.
	Seed int64
}

func (p *RetryPolicy) fill() {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
}

// backoff is the jittered wait before retry attempt k (0-based), drawn from
// the client's seeded RNG. Callers hold c.mu, which also guards c.rng.
func (c *DB) backoff(attempt int) time.Duration {
	p := &c.retry
	d := p.BaseDelay << attempt
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + c.rng.Int63n(half))
}

// defaultCancelGrace is how long after sending a cancel frame the client
// waits for the server's (error) response before declaring the connection
// dead.
const defaultCancelGrace = 10 * time.Second

// WithCancelGrace sets how long the client waits for the server to answer
// after a context cancellation before giving up on the connection (default
// 10s). A cancelled operation normally gets its cancellation error well
// inside the grace; a black-holed connection costs the full grace before
// the client tears it down.
func WithCancelGrace(d time.Duration) Option {
	return func(c *DB) { c.cancelGrace = d }
}

// ErrClosed reports use of a closed client.
var ErrClosed = session.ErrClosed

// ErrConnLost reports a connection that died under an operation the client
// cannot safely retry; alias of the rx taxonomy sentinel.
var ErrConnLost = rxerr.ErrConnLost

// DB is a connection to an rxserver, implementing session.API remotely.
type DB struct {
	addr        string
	dialTimeout time.Duration
	batchRows   int
	keepalive   time.Duration
	cancelGrace time.Duration
	retry       RetryPolicy
	retryOff    bool
	rng         *rand.Rand // jitter source, guarded by mu like the round trips it paces

	mu         sync.Mutex // serializes request/response round trips
	nc         net.Conn   // nil between a teardown and the next reconnect
	bw         *bufio.Writer
	gen        uint64 // bumped on every successful (re)connect
	closed     bool
	inTxn      bool
	txnLost    bool // the conn died with a transaction open; Rollback clears
	nextCursor uint32
	lastUse    time.Time

	reconnects atomic.Uint64

	kaStop chan struct{}
	kaWG   sync.WaitGroup
}

var _ session.API = (*DB)(nil)

// Dial connects to an rxserver and performs the protocol handshake,
// retrying transient failures under the retry policy. A server at its
// connection limit answers rx.ErrBusy with a retry-after hint, honored
// between attempts.
func Dial(addr string, opts ...Option) (*DB, error) {
	c := &DB{
		addr:        addr,
		dialTimeout: 10 * time.Second,
		batchRows:   256,
		cancelGrace: defaultCancelGrace,
		kaStop:      make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	c.retry.fill()
	seed := c.retry.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c.rng = rand.New(rand.NewSource(seed))

	c.mu.Lock()
	err := c.reconnectLocked(context.Background())
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if c.keepalive > 0 {
		c.kaWG.Add(1)
		go c.keepaliveLoop()
	}
	return c, nil
}

// attempts is how many tries the retry policy allows (1 when disabled).
func (c *DB) attempts() int {
	if c.retryOff {
		return 1
	}
	return c.retry.Attempts
}

// sleepLocked waits d (or a context cancellation) with the connection lock
// held — round trips serialize anyway, so a backoff pause blocks exactly
// the callers that would have hit the same dead connection.
func (c *DB) sleepLocked(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// connLost wraps a transport error in the typed taxonomy sentinel.
func connLost(err error) error {
	return fmt.Errorf("%w: %v", rxerr.ErrConnLost, err)
}

// dialOnce performs one TCP connect and hello exchange.
func (c *DB) dialOnce() (net.Conn, *bufio.Writer, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return nil, nil, err
	}
	if err := nc.SetDeadline(time.Now().Add(c.dialTimeout)); err != nil {
		nc.Close()
		return nil, nil, err
	}
	bw := bufio.NewWriter(nc)
	var w wire.Writer
	w.U32(wire.ProtocolVersion)
	if err := wire.WriteFrame(bw, wire.MsgHello, w.Bytes()); err != nil {
		nc.Close()
		return nil, nil, err
	}
	if err := bw.Flush(); err != nil {
		nc.Close()
		return nil, nil, err
	}
	typ, payload, err := wire.ReadFrame(nc)
	if err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("client: handshake: %w", err)
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		nc.Close()
		return nil, nil, err
	}
	switch typ {
	case wire.MsgHelloOK:
		return nc, bw, nil
	case wire.MsgErr:
		nc.Close()
		return nil, nil, wire.DecodeError(payload)
	default:
		nc.Close()
		return nil, nil, fmt.Errorf("client: handshake: unexpected frame 0x%02x", typ)
	}
}

// reconnectLocked (re-)establishes the connection under the retry policy.
// Busy rejections wait out the server's retry-after hint; transport
// failures back off exponentially; a protocol-version rejection fails
// immediately (retrying cannot fix it).
func (c *DB) reconnectLocked(ctx context.Context) error {
	var lastErr error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			wait := c.backoff(attempt - 1)
			if hint := rxerr.RetryAfter(lastErr); hint > wait {
				wait = hint
			}
			if err := c.sleepLocked(ctx, wait); err != nil {
				return err
			}
		}
		if c.closed {
			return ErrClosed
		}
		nc, bw, err := c.dialOnce()
		if err == nil {
			c.nc, c.bw = nc, bw
			c.gen++
			if c.gen > 1 {
				c.reconnects.Add(1)
			}
			c.lastUse = time.Now()
			return nil
		}
		lastErr = err
		if !errors.Is(err, rxerr.ErrBusy) && !isTransient(err) {
			return err
		}
	}
	if errors.Is(lastErr, rxerr.ErrBusy) {
		return lastErr // typed busy, not a lost connection
	}
	return connLost(lastErr)
}

// isTransient reports whether a dial error is worth retrying: network
// failures (refused, reset, timeout, EOF mid-handshake) are, protocol
// rejections (version mismatch, malformed frames) are not — retrying
// cannot fix those.
func isTransient(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// Reconnects reports how many times the client has re-established its
// connection since Dial.
func (c *DB) Reconnects() uint64 { return c.reconnects.Load() }

// teardownLocked marks the connection dead after a transport error; the
// stream position is unknown, so nothing further can be sent on it. The
// next operation reconnects. A transaction that was open died with the
// connection (the server rolls it back on disconnect), so the session is
// poisoned here — every teardown path, including a failed keepalive ping —
// and the next operation demands a Rollback acknowledgement instead of
// silently reconnecting into auto-commit mode.
func (c *DB) teardownLocked() {
	if c.nc != nil {
		c.nc.Close()
		c.nc = nil
		c.bw = nil
	}
	if c.inTxn {
		c.inTxn = false
		c.txnLost = true
	}
}

// exchangeLocked sends one request and reads its response on the live
// connection. If ctx is cancelled while the response is outstanding, a
// cancel frame goes out out-of-band; the server cancels the in-flight
// operation and its response (normally the cancellation error) completes
// the round trip. A transport failure tears the connection down and
// returns the raw error; the caller classifies it.
func (c *DB) exchangeLocked(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		c.teardownLocked()
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		c.teardownLocked()
		return 0, nil, err
	}

	nc := c.nc
	grace := c.cancelGrace
	watchDone := make(chan struct{})
	var watched sync.WaitGroup
	if ctx.Done() != nil {
		watched.Add(1)
		go func() {
			defer watched.Done()
			select {
			case <-ctx.Done():
				// Out-of-band: the server's reader handles cancel frames
				// while the worker is busy. Write directly (one buffered
				// frame) — the round-trip holder is blocked reading.
				_ = wire.WriteFrame(nc, wire.MsgCancel, nil)
				// Backstop: if the server never answers, fail the read.
				_ = nc.SetReadDeadline(time.Now().Add(grace))
			case <-watchDone:
			}
		}()
	}

	rtyp, resp, err := wire.ReadFrame(nc)
	close(watchDone)
	watched.Wait()
	if err != nil {
		// The conn is being torn down: no point resetting a read deadline
		// on a socket that is about to close.
		c.teardownLocked()
		return 0, nil, err
	}
	if err := nc.SetReadDeadline(time.Time{}); err != nil {
		// The response is intact but the socket can no longer be trusted
		// for the next round trip; surface the response, drop the conn.
		c.teardownLocked()
	}
	c.lastUse = time.Now()
	return rtyp, resp, nil
}

// errTxnLost is the poisoned-session error: the connection died with a
// transaction open, and until Rollback (or Begin) acknowledges the loss
// every operation refuses to run.
func errTxnLost() error {
	return fmt.Errorf("%w: transaction lost with the connection; Rollback to acknowledge", rxerr.ErrConnLost)
}

// roundTripLocked runs one request to completion under the retry policy.
// write marks operations that must not be re-sent after an ambiguous
// transport failure. attempted reports whether any exchange was started —
// false means the request never reached the wire (pre-send context error,
// closed client, poisoned session, or failed reconnect), so server-side
// state is untouched; Commit/Rollback key their bookkeeping on it.
func (c *DB) roundTripLocked(ctx context.Context, typ byte, payload []byte, write bool) (rtyp byte, resp []byte, attempted bool, err error) {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, nil, attempted, err
		}
		if c.closed {
			return 0, nil, attempted, ErrClosed
		}
		if c.txnLost {
			return 0, nil, attempted, errTxnLost()
		}
		if c.nc == nil {
			// Nothing has been sent for this operation yet, so even a write
			// is safe to send on a fresh connection.
			if err := c.reconnectLocked(ctx); err != nil {
				return 0, nil, attempted, err
			}
		}
		retryable := !c.retryOff && !c.inTxn
		attempted = true
		rtyp, resp, err := c.exchangeLocked(ctx, typ, payload)
		if err == nil {
			if rtyp != wire.MsgErr {
				return rtyp, resp, attempted, nil
			}
			derr := wire.DecodeError(resp)
			// Busy means the request was shed before executing — safe to
			// retry for any operation, waiting out the server's hint.
			if retryable && errors.Is(derr, rxerr.ErrBusy) && attempt+1 < c.attempts() {
				wait := c.backoff(attempt)
				if hint := rxerr.RetryAfter(derr); hint > wait {
					wait = hint
				}
				if serr := c.sleepLocked(ctx, wait); serr != nil {
					return 0, nil, attempted, serr
				}
				continue
			}
			return 0, nil, attempted, derr
		}

		// Transport failure: the connection is gone, and teardownLocked has
		// poisoned the session if a transaction was open.
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, attempted, cerr
		}
		if c.txnLost || write || c.retryOff {
			return 0, nil, attempted, connLost(err)
		}
		if attempt+1 >= c.attempts() {
			return 0, nil, attempted, connLost(err)
		}
		if serr := c.sleepLocked(ctx, c.backoff(attempt)); serr != nil {
			return 0, nil, attempted, serr
		}
	}
}

func (c *DB) roundTrip(ctx context.Context, typ byte, payload []byte, write bool) (byte, []byte, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rtyp, resp, _, err := c.roundTripLocked(ctx, typ, payload, write)
	return rtyp, resp, err
}

// expect runs a round trip whose response must be exactly want.
func (c *DB) expect(ctx context.Context, typ byte, payload []byte, want byte, write bool) ([]byte, error) {
	rtyp, resp, err := c.roundTrip(ctx, typ, payload, write)
	if err != nil {
		return nil, err
	}
	if rtyp != want {
		return nil, fmt.Errorf("client: unexpected response frame 0x%02x (want 0x%02x)", rtyp, want)
	}
	return resp, nil
}

// Ping round-trips a keepalive frame: a cheap end-to-end health check that
// also resets the server's idle timer (and reconnects if the connection
// has been lost).
func (c *DB) Ping(ctx context.Context) error {
	_, err := c.expect(ctx, wire.MsgPing, nil, wire.MsgPong, false)
	return err
}

// keepaliveLoop pings whenever the connection has been idle for the
// keepalive interval. It never resurrects a torn-down connection on its
// own — reconnection happens under a real operation's retry policy.
func (c *DB) keepaliveLoop() {
	defer c.kaWG.Done()
	tick := c.keepalive / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.kaStop:
			return
		case <-t.C:
		}
		c.mu.Lock()
		if c.closed || c.nc == nil || c.txnLost || time.Since(c.lastUse) < c.keepalive {
			c.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cancelGrace)
		rtyp, _, err := c.exchangeLocked(ctx, wire.MsgPing, nil)
		cancel()
		_ = rtyp
		// A failed ping tore the conn down, poisoning any open transaction
		// (teardownLocked); the next op reconnects or demands Rollback.
		_ = err
		c.mu.Unlock()
	}
}

// CreateCollection creates a collection.
func (c *DB) CreateCollection(ctx context.Context, name string) error {
	var w wire.Writer
	w.Str(name)
	_, err := c.expect(ctx, wire.MsgCreateCollection, w.Bytes(), wire.MsgOK, true)
	return err
}

// Collections lists collection names.
func (c *DB) Collections(ctx context.Context) ([]string, error) {
	resp, err := c.expect(ctx, wire.MsgCollections, nil, wire.MsgStrings, false)
	if err != nil {
		return nil, err
	}
	return wire.DecodeStrings(resp)
}

// DocIDs lists the documents of a collection.
func (c *DB) DocIDs(ctx context.Context, col string) ([]xml.DocID, error) {
	var w wire.Writer
	w.Str(col)
	resp, err := c.expect(ctx, wire.MsgListDocs, w.Bytes(), wire.MsgDocIDs, false)
	if err != nil {
		return nil, err
	}
	return wire.DecodeDocIDs(resp)
}

// CreateValueIndex creates an XPath value index on a collection.
func (c *DB) CreateValueIndex(ctx context.Context, col, name, path string, typ xml.TypeID) error {
	var w wire.Writer
	w.Str(col)
	w.Str(name)
	w.Str(path)
	w.U16(uint16(typ))
	_, err := c.expect(ctx, wire.MsgCreateIndex, w.Bytes(), wire.MsgOK, true)
	return err
}

// Insert stores one document and returns its DocID.
func (c *DB) Insert(ctx context.Context, col string, doc []byte) (xml.DocID, error) {
	var w wire.Writer
	w.Str(col)
	w.Blob(doc)
	resp, err := c.expect(ctx, wire.MsgInsert, w.Bytes(), wire.MsgInserted, true)
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	id := xml.DocID(r.U64())
	if err := r.Done(); err != nil {
		return 0, err
	}
	return id, nil
}

// InsertBatch stores many documents as one atomic batch.
func (c *DB) InsertBatch(ctx context.Context, col string, docs [][]byte) ([]xml.DocID, error) {
	var w wire.Writer
	w.Str(col)
	w.U32(uint32(len(docs)))
	for _, d := range docs {
		w.Blob(d)
	}
	resp, err := c.expect(ctx, wire.MsgInsertBatch, w.Bytes(), wire.MsgInsertedBatch, true)
	if err != nil {
		return nil, err
	}
	return wire.DecodeDocIDs(resp)
}

// Delete removes a document.
func (c *DB) Delete(ctx context.Context, col string, doc xml.DocID) error {
	var w wire.Writer
	w.Str(col)
	w.U64(uint64(doc))
	_, err := c.expect(ctx, wire.MsgDelete, w.Bytes(), wire.MsgOK, true)
	return err
}

// Get serializes a document back to XML.
func (c *DB) Get(ctx context.Context, col string, doc xml.DocID) ([]byte, error) {
	var w wire.Writer
	w.Str(col)
	w.U64(uint64(doc))
	resp, err := c.expect(ctx, wire.MsgGet, w.Bytes(), wire.MsgDoc, false)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	data := r.Blob()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return data, nil
}

// openCursor opens a server-side cursor and reports the connection
// generation it lives on, so fetches can detect that a reconnect
// invalidated it.
func (c *DB) openCursor(ctx context.Context, req wire.QueryReq) (id uint32, gen uint64, pi wire.PlanInfo, retryable bool, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, wire.PlanInfo{}, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextCursor++
	req.Cursor = c.nextCursor
	rtyp, resp, _, err := c.roundTripLocked(ctx, wire.MsgQuery, req.Encode(), false)
	if err != nil {
		return 0, 0, wire.PlanInfo{}, false, err
	}
	if rtyp != wire.MsgQueryOK {
		return 0, 0, wire.PlanInfo{}, false, fmt.Errorf("client: unexpected response frame 0x%02x (want 0x%02x)", rtyp, wire.MsgQueryOK)
	}
	pi, err = wire.DecodePlanInfo(resp)
	if err != nil {
		return 0, 0, wire.PlanInfo{}, false, err
	}
	// A cursor opened inside a transaction dies with it on conn loss; one
	// opened outside is a pure read the cursor may transparently re-issue.
	return req.Cursor, c.gen, pi, !c.retryOff && !c.inTxn, nil
}

// fetch pulls one batch for a cursor living on connection generation gen.
// It never retries: a dead or regenerated connection means the server-side
// cursor is gone, and only the cursor itself knows how to re-issue the
// query and skip delivered rows.
func (c *DB) fetch(ctx context.Context, gen uint64, id uint32, maxRows int) (*wire.RowsResp, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.txnLost {
		return nil, errTxnLost()
	}
	if c.nc == nil || c.gen != gen {
		return nil, connLost(errors.New("connection re-established; server cursor gone"))
	}
	var w wire.Writer
	w.U32(id)
	w.U32(uint32(maxRows))
	rtyp, resp, err := c.exchangeLocked(ctx, wire.MsgFetch, w.Bytes())
	if err != nil {
		// teardownLocked has poisoned the session if a transaction was open.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, connLost(err)
	}
	if rtyp == wire.MsgErr {
		return nil, wire.DecodeError(resp)
	}
	if rtyp != wire.MsgRows {
		return nil, fmt.Errorf("client: unexpected response frame 0x%02x (want 0x%02x)", rtyp, wire.MsgRows)
	}
	return wire.DecodeRowsResp(resp)
}

// closeCursor releases a server-side cursor if it can still exist: on a
// torn-down or regenerated connection it died with the server session.
func (c *DB) closeCursor(gen uint64, id uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.nc == nil || c.gen != gen {
		return
	}
	// Best effort, on a fresh timeout rather than any caller context: it
	// must work exactly when the caller's context is dead, but still
	// degrade to tearing the connection down (not hanging Close and every
	// other call) if the server stops answering.
	ctx, cancel := context.WithTimeout(context.Background(), c.cancelGrace)
	defer cancel()
	var w wire.Writer
	w.U32(id)
	_, _, _ = c.exchangeLocked(ctx, wire.MsgCloseCursor, w.Bytes())
}

// Query opens a server-side cursor and streams its results in batches.
// Cancelling ctx cancels the query end to end: in flight, a cancel frame
// interrupts the server between documents; between fetches, the next call
// fails fast and the server-side cursor is closed. Outside a transaction
// the cursor survives connection loss transparently: the query is
// re-issued on the new connection and already-delivered rows are skipped.
func (c *DB) Query(ctx context.Context, col, expr string, opts ...session.QueryOption) (session.Cursor, error) {
	var qo core.QueryOptions
	for _, o := range opts {
		o(&qo)
	}
	req := wire.QueryReq{
		Col:         col,
		Expr:        expr,
		Limit:       uint32(qo.Limit),
		Parallelism: uint32(qo.Parallelism),
		NeedValues:  qo.NeedValues,
		Degraded:    qo.Degraded,
	}
	id, gen, pi, retryable, err := c.openCursor(ctx, req)
	if err != nil {
		return nil, err
	}
	return &Cursor{
		db:        c,
		ctx:       ctx,
		id:        id,
		gen:       gen,
		plan:      pi.Plan(),
		batch:     c.batchRows,
		req:       req,
		retryable: retryable,
	}, nil
}

// Explain plans a query on the server without executing it: the chosen
// access method, the indexes in probe order, the cost estimates, and every
// alternative the planner priced. A pure read — retried transparently on
// connection loss like any other.
func (c *DB) Explain(ctx context.Context, col, expr string, opts ...session.QueryOption) (*core.Plan, error) {
	var qo core.QueryOptions
	for _, o := range opts {
		o(&qo)
	}
	req := wire.QueryReq{Col: col, Expr: expr, NeedValues: qo.NeedValues}
	resp, err := c.expect(ctx, wire.MsgExplain, req.Encode(), wire.MsgPlan, false)
	if err != nil {
		return nil, err
	}
	pi, err := wire.DecodePlanInfo(resp)
	if err != nil {
		return nil, err
	}
	return pi.Plan(), nil
}

// Begin opens a transaction on the connection's session. A transaction
// lost to an earlier connection failure is superseded: Begin starts fresh.
func (c *DB) Begin(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.txnLost = false
	rtyp, _, _, err := c.roundTripLocked(ctx, wire.MsgBegin, nil, true)
	if err != nil {
		return err
	}
	if rtyp != wire.MsgOK {
		return fmt.Errorf("client: unexpected response frame 0x%02x (want 0x%02x)", rtyp, wire.MsgOK)
	}
	if c.txnLost {
		// The transaction opened, but the connection died right after the
		// response was read (post-read teardown poisoned the session): the
		// server already rolled it back on disconnect.
		return errTxnLost()
	}
	c.inTxn = true
	return nil
}

// Commit makes the open transaction durable. After a connection loss the
// transaction is gone (the server rolled it back): Commit reports
// rx.ErrConnLost.
func (c *DB) Commit(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.txnLost {
		return errTxnLost()
	}
	rtyp, _, attempted, err := c.roundTripLocked(ctx, wire.MsgCommit, nil, true)
	if attempted {
		// Once the frame may have reached the server, the server-side
		// transaction is over either way: ended by the handler, or rolled
		// back on disconnect (teardownLocked then set txnLost). Before any
		// exchange — a pre-send context error — it is still open, so inTxn
		// must survive for a later Commit/Rollback to act on it.
		c.inTxn = false
	}
	if err != nil {
		return err
	}
	if rtyp != wire.MsgOK {
		return fmt.Errorf("client: unexpected response frame 0x%02x (want 0x%02x)", rtyp, wire.MsgOK)
	}
	// The commit response arrived, so the transaction committed even if the
	// connection was torn down right after the read poisoned the session.
	c.txnLost = false
	return nil
}

// Rollback undoes the open transaction. It also acknowledges a transaction
// lost to a connection failure: the server already rolled it back on
// disconnect, so Rollback returns nil and the session is usable again.
func (c *DB) Rollback(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.txnLost {
		c.txnLost = false
		return nil
	}
	rtyp, _, attempted, err := c.roundTripLocked(ctx, wire.MsgRollback, nil, true)
	if attempted {
		// Same bookkeeping as Commit: a pre-send context error leaves the
		// server transaction open, so only an attempted exchange closes it.
		c.inTxn = false
	}
	if err != nil {
		return err
	}
	if rtyp != wire.MsgOK {
		return fmt.Errorf("client: unexpected response frame 0x%02x (want 0x%02x)", rtyp, wire.MsgOK)
	}
	c.txnLost = false
	return nil
}

// Close drops the connection. The server closes the session, rolling back
// any open transaction.
func (c *DB) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	var err error
	if c.nc != nil {
		err = c.nc.Close()
		c.nc = nil
		c.bw = nil
	}
	c.mu.Unlock()
	close(c.kaStop)
	c.kaWG.Wait()
	return err
}
