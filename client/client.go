// Package client is the Go client for rxserver. DB implements the same
// session.API as an embedded session, so programs written against the
// interface run unchanged in-process or over the network: queries stream in
// cursor-sized batches, errors keep their errors.Is identity (rx.ErrNotFound,
// rx.ErrQuarantined, rx.ErrBusy, ...), and cancelling a context mid-query
// cancels the server-side cursor too.
//
// One DB is one connection and therefore one session: safe for concurrent
// use, but requests serialize and Begin/Commit/Rollback scope a single
// transaction. Open one DB per concurrent transactional worker, exactly as
// you would open one session per worker embedded.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"rx/internal/core"
	"rx/internal/session"
	"rx/internal/wire"
	"rx/internal/xml"
)

// Option configures a Dial.
type Option func(*DB)

// WithDialTimeout bounds the TCP connect and hello exchange (default 10s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *DB) { c.dialTimeout = d }
}

// WithBatchRows sets how many rows each cursor fetch requests (default 256).
// Smaller batches cancel faster; larger batches round-trip less.
func WithBatchRows(n int) Option {
	return func(c *DB) { c.batchRows = n }
}

// cancelGrace is how long after sending a cancel frame the client waits for
// the server's (error) response before declaring the connection dead.
const cancelGrace = 10 * time.Second

// DB is a connection to an rxserver, implementing session.API remotely.
type DB struct {
	dialTimeout time.Duration
	batchRows   int

	mu         sync.Mutex // serializes request/response round trips
	nc         net.Conn
	bw         *bufio.Writer
	closed     bool
	nextCursor uint32
}

var _ session.API = (*DB)(nil)

// ErrClosed reports use of a closed client.
var ErrClosed = session.ErrClosed

// Dial connects to an rxserver and performs the protocol handshake. A server
// at its connection limit answers with rx.ErrBusy instead of hanging.
func Dial(addr string, opts ...Option) (*DB, error) {
	c := &DB{dialTimeout: 10 * time.Second, batchRows: 256}
	for _, o := range opts {
		o(c)
	}
	nc, err := net.DialTimeout("tcp", addr, c.dialTimeout)
	if err != nil {
		return nil, err
	}
	c.nc = nc
	c.bw = bufio.NewWriter(nc)

	nc.SetDeadline(time.Now().Add(c.dialTimeout))
	var w wire.Writer
	w.U32(wire.ProtocolVersion)
	if err := c.writeFrame(wire.MsgHello, w.Bytes()); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	nc.SetDeadline(time.Time{})
	switch typ {
	case wire.MsgHelloOK:
		return c, nil
	case wire.MsgErr:
		nc.Close()
		return nil, wire.DecodeError(payload)
	default:
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected frame 0x%02x", typ)
	}
}

func (c *DB) writeFrame(typ byte, payload []byte) error {
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// roundTrip sends one request and reads its response under the connection
// lock. If ctx is cancelled while the response is outstanding, a cancel
// frame goes out out-of-band; the server cancels the in-flight operation and
// its response (normally the cancellation error) completes the round trip.
func (c *DB) roundTrip(ctx context.Context, typ byte, payload []byte) (byte, []byte, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, ErrClosed
	}
	if err := c.writeFrame(typ, payload); err != nil {
		c.teardownLocked()
		return 0, nil, err
	}

	watchDone := make(chan struct{})
	var watched sync.WaitGroup
	if ctx.Done() != nil {
		watched.Add(1)
		go func() {
			defer watched.Done()
			select {
			case <-ctx.Done():
				// Out-of-band: the server's reader handles cancel frames
				// while the worker is busy. Write directly (one buffered
				// frame) — the round-trip holder is blocked reading.
				_ = wire.WriteFrame(c.nc, wire.MsgCancel, nil)
				// Backstop: if the server never answers, fail the read.
				c.nc.SetReadDeadline(time.Now().Add(cancelGrace))
			case <-watchDone:
			}
		}()
	}

	rtyp, resp, err := wire.ReadFrame(c.nc)
	close(watchDone)
	watched.Wait()
	c.nc.SetReadDeadline(time.Time{})
	if err != nil {
		c.teardownLocked()
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, cerr
		}
		return 0, nil, err
	}
	if rtyp == wire.MsgErr {
		return 0, nil, wire.DecodeError(resp)
	}
	return rtyp, resp, nil
}

// teardownLocked marks the connection dead after a transport error; the
// stream position is unknown, so no further request can be trusted.
func (c *DB) teardownLocked() {
	if !c.closed {
		c.closed = true
		c.nc.Close()
	}
}

// expect runs a round trip whose response must be exactly want.
func (c *DB) expect(ctx context.Context, typ byte, payload []byte, want byte) ([]byte, error) {
	rtyp, resp, err := c.roundTrip(ctx, typ, payload)
	if err != nil {
		return nil, err
	}
	if rtyp != want {
		return nil, fmt.Errorf("client: unexpected response frame 0x%02x (want 0x%02x)", rtyp, want)
	}
	return resp, nil
}

// CreateCollection creates a collection.
func (c *DB) CreateCollection(ctx context.Context, name string) error {
	var w wire.Writer
	w.Str(name)
	_, err := c.expect(ctx, wire.MsgCreateCollection, w.Bytes(), wire.MsgOK)
	return err
}

// Collections lists collection names.
func (c *DB) Collections(ctx context.Context) ([]string, error) {
	resp, err := c.expect(ctx, wire.MsgCollections, nil, wire.MsgStrings)
	if err != nil {
		return nil, err
	}
	return wire.DecodeStrings(resp)
}

// DocIDs lists the documents of a collection.
func (c *DB) DocIDs(ctx context.Context, col string) ([]xml.DocID, error) {
	var w wire.Writer
	w.Str(col)
	resp, err := c.expect(ctx, wire.MsgListDocs, w.Bytes(), wire.MsgDocIDs)
	if err != nil {
		return nil, err
	}
	return wire.DecodeDocIDs(resp)
}

// CreateValueIndex creates an XPath value index on a collection.
func (c *DB) CreateValueIndex(ctx context.Context, col, name, path string, typ xml.TypeID) error {
	var w wire.Writer
	w.Str(col)
	w.Str(name)
	w.Str(path)
	w.U16(uint16(typ))
	_, err := c.expect(ctx, wire.MsgCreateIndex, w.Bytes(), wire.MsgOK)
	return err
}

// Insert stores one document and returns its DocID.
func (c *DB) Insert(ctx context.Context, col string, doc []byte) (xml.DocID, error) {
	var w wire.Writer
	w.Str(col)
	w.Blob(doc)
	resp, err := c.expect(ctx, wire.MsgInsert, w.Bytes(), wire.MsgInserted)
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	id := xml.DocID(r.U64())
	if err := r.Done(); err != nil {
		return 0, err
	}
	return id, nil
}

// InsertBatch stores many documents as one atomic batch.
func (c *DB) InsertBatch(ctx context.Context, col string, docs [][]byte) ([]xml.DocID, error) {
	var w wire.Writer
	w.Str(col)
	w.U32(uint32(len(docs)))
	for _, d := range docs {
		w.Blob(d)
	}
	resp, err := c.expect(ctx, wire.MsgInsertBatch, w.Bytes(), wire.MsgInsertedBatch)
	if err != nil {
		return nil, err
	}
	return wire.DecodeDocIDs(resp)
}

// Delete removes a document.
func (c *DB) Delete(ctx context.Context, col string, doc xml.DocID) error {
	var w wire.Writer
	w.Str(col)
	w.U64(uint64(doc))
	_, err := c.expect(ctx, wire.MsgDelete, w.Bytes(), wire.MsgOK)
	return err
}

// Get serializes a document back to XML.
func (c *DB) Get(ctx context.Context, col string, doc xml.DocID) ([]byte, error) {
	var w wire.Writer
	w.Str(col)
	w.U64(uint64(doc))
	resp, err := c.expect(ctx, wire.MsgGet, w.Bytes(), wire.MsgDoc)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	data := r.Blob()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return data, nil
}

// Query opens a server-side cursor and streams its results in batches.
// Cancelling ctx cancels the query end to end: in flight, a cancel frame
// interrupts the server between documents; between fetches, the next call
// fails fast and the server-side cursor is closed.
func (c *DB) Query(ctx context.Context, col, expr string, opts ...session.QueryOption) (session.Cursor, error) {
	var qo core.QueryOptions
	for _, o := range opts {
		o(&qo)
	}
	c.mu.Lock()
	c.nextCursor++
	id := c.nextCursor
	c.mu.Unlock()
	req := wire.QueryReq{
		Cursor:      id,
		Col:         col,
		Expr:        expr,
		Limit:       uint32(qo.Limit),
		Parallelism: uint32(qo.Parallelism),
		NeedValues:  qo.NeedValues,
		Degraded:    qo.Degraded,
	}
	resp, err := c.expect(ctx, wire.MsgQuery, req.Encode(), wire.MsgQueryOK)
	if err != nil {
		return nil, err
	}
	pi, err := wire.DecodePlanInfo(resp)
	if err != nil {
		return nil, err
	}
	return &Cursor{db: c, ctx: ctx, id: id, plan: pi.Plan(), batch: c.batchRows}, nil
}

// Begin opens a transaction on the connection's session.
func (c *DB) Begin(ctx context.Context) error {
	_, err := c.expect(ctx, wire.MsgBegin, nil, wire.MsgOK)
	return err
}

// Commit makes the open transaction durable.
func (c *DB) Commit(ctx context.Context) error {
	_, err := c.expect(ctx, wire.MsgCommit, nil, wire.MsgOK)
	return err
}

// Rollback undoes the open transaction.
func (c *DB) Rollback(ctx context.Context) error {
	_, err := c.expect(ctx, wire.MsgRollback, nil, wire.MsgOK)
	return err
}

// Close drops the connection. The server closes the session, rolling back
// any open transaction.
func (c *DB) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.nc.Close()
}
