package client

import (
	"context"

	"rx/internal/core"
	"rx/internal/wire"
)

// Cursor streams a remote query's results, fetching rows in batches on
// demand. It satisfies session.Cursor, so code iterating an embedded cursor
// iterates a remote one unchanged. Not safe for concurrent use (like
// *core.Cursor).
type Cursor struct {
	db    *DB
	ctx   context.Context
	id    uint32
	plan  *core.Plan
	batch int

	rows    []core.Result
	pos     int
	cur     core.Result
	skipped int
	done    bool // server has closed the cursor (exhausted, failed, or Close sent)
	err     error
}

// Next fetches the next result, pulling another batch from the server when
// the local one is drained. It returns false at the end of the results or on
// error (see Err).
func (cu *Cursor) Next() bool {
	if cu.err != nil {
		return false
	}
	if cu.pos < len(cu.rows) {
		cu.cur = cu.rows[cu.pos]
		cu.pos++
		return true
	}
	if cu.done {
		return false
	}
	var w wire.Writer
	w.U32(cu.id)
	w.U32(uint32(cu.batch))
	resp, err := cu.db.expect(cu.ctx, wire.MsgFetch, w.Bytes(), wire.MsgRows)
	if err != nil {
		cu.err = err
		// The server closes the cursor itself when a fetch fails in flight;
		// if the context died between fetches, close it proactively so a
		// cancelled client doesn't strand cursors until Close.
		if cu.ctx.Err() != nil {
			cu.remoteClose()
		}
		cu.done = true
		return false
	}
	rr, err := wire.DecodeRowsResp(resp)
	if err != nil {
		cu.err = err
		cu.done = true
		return false
	}
	cu.rows, cu.pos = rr.Rows, 0
	cu.skipped = int(rr.Skipped)
	if rr.Done {
		cu.done = true
	}
	if len(cu.rows) == 0 {
		return false
	}
	cu.cur = cu.rows[0]
	cu.pos = 1
	return true
}

// Result returns the current result. Valid after Next returns true.
func (cu *Cursor) Result() core.Result { return cu.cur }

// Err returns the error that stopped iteration, nil after a clean end.
// Cancellation surfaces here as the context's error.
func (cu *Cursor) Err() error {
	if cu.err != nil && cu.ctx.Err() != nil {
		return cu.ctx.Err()
	}
	return cu.err
}

// Plan reports how the server's planner chose to run the query.
func (cu *Cursor) Plan() *core.Plan { return cu.plan }

// Skipped reports quarantined documents skipped so far (Degraded queries).
func (cu *Cursor) Skipped() int { return cu.skipped }

// Close releases the server-side cursor. Harmless after exhaustion.
func (cu *Cursor) Close() error {
	if cu.done {
		return nil
	}
	cu.done = true
	cu.remoteClose()
	return nil
}

// remoteClose tells the server to drop the cursor. Best effort, on a fresh
// timeout rather than the caller's context: it must work exactly when the
// caller's context is dead, but still degrade to tearing the connection down
// (not hanging Close and every other call) if the server stops answering.
func (cu *Cursor) remoteClose() {
	ctx, cancel := context.WithTimeout(context.Background(), cancelGrace)
	defer cancel()
	var w wire.Writer
	w.U32(cu.id)
	_, _ = cu.db.expect(ctx, wire.MsgCloseCursor, w.Bytes(), wire.MsgOK)
}
