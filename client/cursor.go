package client

import (
	"context"
	"errors"

	"rx/internal/core"
	"rx/internal/rxerr"
	"rx/internal/wire"
)

// Cursor streams a remote query's results, fetching rows in batches on
// demand. It satisfies session.Cursor, so code iterating an embedded cursor
// iterates a remote one unchanged. Not safe for concurrent use (like
// *core.Cursor).
//
// A cursor opened outside a transaction survives connection loss: the query
// is a pure read, so the cursor re-issues it on the reconnected session and
// fast-forwards past the rows already delivered — document order is
// deterministic, so the caller sees every row exactly once, with no
// duplicates. A cursor opened inside a transaction dies with it and reports
// rx.ErrConnLost.
type Cursor struct {
	db    *DB
	ctx   context.Context
	id    uint32
	gen   uint64 // connection generation the server-side cursor lives on
	plan  *core.Plan
	batch int

	req       wire.QueryReq // the query, kept for replay after conn loss
	retryable bool
	delivered int // rows handed to the caller; the replay skip count
	replays   int

	rows    []core.Result
	pos     int
	cur     core.Result
	skipped int
	done    bool // server has closed the cursor (exhausted, failed, or Close sent)
	err     error
}

// Next fetches the next result, pulling another batch from the server when
// the local one is drained. It returns false at the end of the results or on
// error (see Err).
func (cu *Cursor) Next() bool {
	if cu.err != nil {
		return false
	}
	if cu.pos < len(cu.rows) {
		cu.cur = cu.rows[cu.pos]
		cu.pos++
		cu.delivered++
		return true
	}
	if cu.done {
		return false
	}
	rr, err := cu.db.fetch(cu.ctx, cu.gen, cu.id, cu.batch)
	if err != nil {
		if cu.retryable && errors.Is(err, rxerr.ErrConnLost) && cu.ctx.Err() == nil {
			if rerr := cu.replay(); rerr != nil {
				cu.err = rerr
				cu.done = true
				return false
			}
			return cu.Next()
		}
		cu.err = err
		// The server closes the cursor itself when a fetch fails in flight;
		// if the context died between fetches, close it proactively so a
		// cancelled client doesn't strand cursors until Close.
		if cu.ctx.Err() != nil {
			cu.db.closeCursor(cu.gen, cu.id)
		}
		cu.done = true
		return false
	}
	cu.apply(rr)
	if len(cu.rows) == 0 {
		return false
	}
	cu.cur = cu.rows[0]
	cu.pos = 1
	cu.delivered++
	return true
}

// apply installs a fetched batch.
func (cu *Cursor) apply(rr *wire.RowsResp) {
	cu.rows, cu.pos = rr.Rows, 0
	// The server's skip counter covers the scan from the start, so after a
	// replay it still reports the cumulative count.
	cu.skipped = int(rr.Skipped)
	if rr.Done {
		cu.done = true
	}
}

// replay re-issues the query after connection loss and fast-forwards past
// the delivered rows. Query results are scanned in ascending DocID order,
// so with the same data the prefix is identical; if the data changed
// underneath (a concurrent delete shrank the result), the replayed cursor
// simply ends early — never duplicating a row.
func (cu *Cursor) replay() error {
	for {
		cu.replays++
		if cu.replays > cu.db.attempts() {
			return connLost(errors.New("query replay attempts exhausted"))
		}
		id, gen, _, _, err := cu.db.openCursor(cu.ctx, cu.req)
		if err != nil {
			return err
		}
		cu.id, cu.gen = id, gen
		toSkip := cu.delivered
		for toSkip > 0 {
			n := cu.batch
			if toSkip < n {
				n = toSkip
			}
			rr, err := cu.db.fetch(cu.ctx, cu.gen, cu.id, n)
			if err != nil {
				if cu.retryable && errors.Is(err, rxerr.ErrConnLost) && cu.ctx.Err() == nil {
					break // the replay itself lost the conn; start over
				}
				return err
			}
			toSkip -= len(rr.Rows)
			if rr.Done {
				// The result set shrank below the delivered count: nothing
				// further to stream. End cleanly rather than re-delivering.
				cu.rows, cu.pos = nil, 0
				cu.skipped = int(rr.Skipped)
				cu.done = true
				return nil
			}
			if toSkip < 0 {
				// Over-delivered against the requested cap: protocol bug.
				return errors.New("client: replay skip overshot delivered rows")
			}
		}
		if toSkip == 0 {
			return nil
		}
	}
}

// Result returns the current result. Valid after Next returns true.
func (cu *Cursor) Result() core.Result { return cu.cur }

// Err returns the error that stopped iteration, nil after a clean end.
// Cancellation surfaces here as the context's error.
func (cu *Cursor) Err() error {
	if cu.err != nil && cu.ctx.Err() != nil {
		return cu.ctx.Err()
	}
	return cu.err
}

// Plan reports how the server's planner chose to run the query.
func (cu *Cursor) Plan() *core.Plan { return cu.plan }

// Skipped reports quarantined documents skipped so far (Degraded queries).
func (cu *Cursor) Skipped() int { return cu.skipped }

// Close releases the server-side cursor. Harmless after exhaustion.
func (cu *Cursor) Close() error {
	if cu.done {
		return nil
	}
	cu.done = true
	cu.db.closeCursor(cu.gen, cu.id)
	return nil
}
