package main

// Machine-readable smoke benchmarks. `rxbench -json DIR` runs a small
// benchmark per perf-tracked experiment suite (E10 parse/shred, E13 query
// scan, E14 checksum read, E16 bulk load) through testing.Benchmark and
// writes one BENCH_<id>.json per suite; `-compare DIR` additionally checks
// the results against a committed baseline directory with a generous
// threshold gate (allocs/op is machine-independent and gated tightly;
// ns/op varies across hardware and only catches order-of-magnitude
// regressions). CI runs both and archives the JSON.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rx/internal/buffer"
	"rx/internal/core"
	"rx/internal/pagestore"
	"rx/internal/xml"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Gate thresholds for -compare (fractions over baseline).
const (
	nsGate     = 1.5  // ns/op may grow 150% (cross-machine noise)
	allocsGate = 0.30 // allocs/op may grow 30%
)

func benchDocXML(i int) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<Product pid="%d" cat="tools">`, i)
	fmt.Fprintf(&sb, `<Name>Widget %d</Name><Price>%d.99</Price>`, i, i%97)
	for j := 0; j < 16; j++ {
		fmt.Fprintf(&sb, `<Part num="%d-%d"><Desc>part %d of product %d, standard finish</Desc><Qty>%d</Qty></Part>`,
			i, j, j, i, j*3)
	}
	sb.WriteString(`</Product>`)
	return []byte(sb.String())
}

func run(name string, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func mustDB(b *testing.B) (*core.DB, *core.Collection) {
	db, err := core.OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	col, err := db.CreateCollection("bench", core.CollectionOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return db, col
}

// runSmokeBenchmarks returns results keyed by suite ID.
func runSmokeBenchmarks() map[string][]benchResult {
	suites := map[string][]benchResult{}

	// E10 — parse + shred + index maintenance (single-document insert).
	suites["E10"] = []benchResult{
		run("insert", func(b *testing.B) {
			db, col := mustDB(b)
			defer db.Close()
			doc := benchDocXML(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := col.Insert(doc); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}

	// E13 — scan-shaped query over stored documents (zero-copy walk path).
	suites["E13"] = []benchResult{
		run("scan-query", func(b *testing.B) {
			db, col := mustDB(b)
			defer db.Close()
			for i := 0; i < 16; i++ {
				if _, err := col.Insert(benchDocXML(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs, _, err := col.QueryOpts("/Product/Part/Qty", core.QueryOptions{NeedValues: true})
				if err != nil {
					b.Fatal(err)
				}
				if len(rs) == 0 {
					b.Fatal("no results")
				}
			}
		}),
	}

	// E14 — page read cost: raw store, checksum-verified store, and a hot
	// (resident) page through the buffer pool over each. The pool pair is
	// the engine-visible number: a hot page verifies once per residency, so
	// the checksummed read must be within noise of the raw one.
	newStore := func(b *testing.B, checksummed bool) pagestore.Store {
		var s pagestore.Store = pagestore.NewMemStore()
		if checksummed {
			s = pagestore.NewChecksumStore(s)
		}
		id, err := s.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		page := make([]byte, pagestore.PageSize)
		for i := range page {
			page[i] = byte(i)
		}
		if err := s.WritePage(id, page); err != nil {
			b.Fatal(err)
		}
		return s
	}
	storeRead := func(checksummed bool) func(b *testing.B) {
		return func(b *testing.B) {
			s := newStore(b, checksummed)
			buf := make([]byte, pagestore.PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.ReadPage(0, buf); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	poolHot := func(checksummed bool) func(b *testing.B) {
		return func(b *testing.B) {
			s := newStore(b, checksummed)
			pool := buffer.New(s, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := pool.Fetch(0)
				if err != nil {
					b.Fatal(err)
				}
				pool.Unpin(f, false)
			}
		}
	}
	suites["E14"] = []benchResult{
		run("store-read/raw", storeRead(false)),
		run("store-read/checksum", storeRead(true)),
		run("pool-hot/raw", poolHot(false)),
		run("pool-hot/checksum", poolHot(true)),
	}

	// E18 — adversarial planner workloads: data shapes where the old
	// hard-wired index-first heuristic picks a pathological access path.
	// Each pair benchmarks the heuristic's choice (pinned via ForceMethod)
	// against the costed planner's pick on the same data; the committed
	// baseline preserves the gap so a planner regression trips the gate.
	suites["E18"] = e18Benchmarks()

	// E16 — bulk load (32-document batches through InsertBatch).
	suites["E16"] = []benchResult{
		run("bulk-load-32", func(b *testing.B) {
			db, col := mustDB(b)
			defer db.Close()
			docs := make([][]byte, 32)
			for i := range docs {
				docs[i] = benchDocXML(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := col.InsertBatch(docs, core.BatchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
	return suites
}

// e18DocXML is the adversarial shape: one selective field (Sku) and 64
// Part/Qty entries per document, so an index over Qty holds 64 entries per
// document and walking it costs far more than evaluating the document once.
func e18DocXML(i int) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<Product><Sku>SKU-%d</Sku>`, i)
	for j := 0; j < 64; j++ {
		fmt.Fprintf(&sb, `<Part><Qty>%d</Qty></Part>`, j)
	}
	sb.WriteString(`</Product>`)
	return []byte(sb.String())
}

func e18Benchmarks() []benchResult {
	db, err := core.OpenMemory()
	if err != nil {
		panic(err)
	}
	defer db.Close()
	newCol := func(name string, opts core.CollectionOptions) *core.Collection {
		col, err := db.CreateCollection(name, opts)
		if err != nil {
			panic(err)
		}
		docs := make([][]byte, 200)
		for i := range docs {
			docs[i] = e18DocXML(i)
		}
		if _, err := col.InsertBatch(docs, core.BatchOptions{}); err != nil {
			panic(err)
		}
		return col
	}
	mustIndex := func(col *core.Collection, name, path string, t xml.TypeID) {
		if err := col.CreateValueIndex(name, path, t); err != nil {
			panic(err)
		}
	}
	mustPlan := func(col *core.Collection, expr, want string) {
		_, p, err := col.Query(expr)
		if err != nil {
			panic(err)
		}
		if p.Method != want {
			panic(fmt.Sprintf("E18: costed planner picked %q for %s, expected %q", p.Method, expr, want))
		}
	}
	q := func(col *core.Collection, expr, force string, wantResults int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rs, _, err := col.QueryOpts(expr, core.QueryOptions{ForceMethod: force})
				if err != nil {
					b.Fatal(err)
				}
				if len(rs) != wantResults {
					b.Fatalf("results = %d, want %d", len(rs), wantResults)
				}
			}
		}
	}

	// filter: the only matching index (//Qty) is inexact, the predicate
	// anchors at Part, and the documents are multi-record — the shape where
	// the old heuristic hard-wired NodeID filtering, fetching and
	// re-evaluating all 12800 Part subtrees one by one. The cost model
	// prices that walk against scanning the 200 documents and scans.
	filterCol := newCol("e18_filter", core.CollectionOptions{PackThreshold: 512})
	mustIndex(filterCol, "ix_any_qty", "//Qty", xml.TDouble)
	if err := filterCol.RefreshStats(nil); err != nil {
		panic(err)
	}
	filter := `/Product/Part[Qty >= 0]`
	mustPlan(filterCol, filter, "scan")

	// andorder: the old heuristic ANDed every available index, dragging the
	// worthless Qty index (64 entries/doc, selectivity 1.0) into the merge;
	// the cost model prices its saving at zero and probes only Sku.
	andCol := newCol("e18_and", core.CollectionOptions{})
	mustIndex(andCol, "ix_sku", "/Product/Sku", xml.TString)
	mustIndex(andCol, "ix_qty", "/Product/Part/Qty", xml.TDouble)
	if err := andCol.RefreshStats(nil); err != nil {
		panic(err)
	}
	andorder := `/Product[Sku = 'SKU-42' and Part/Qty >= 0]`
	mustPlan(andCol, andorder, "docid-list")

	return []benchResult{
		run("filter/heuristic", q(filterCol, filter, "nodeid-filtering", 12800)),
		run("filter/costed", q(filterCol, filter, "", 12800)),
		run("andorder/heuristic", q(andCol, andorder, "nodeid-anding", 1)),
		run("andorder/costed", q(andCol, andorder, "", 1)),
	}
}

func writeBenchJSON(dir string, suites map[string][]benchResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for id, rs := range suites {
		data, err := json.MarshalIndent(rs, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+id+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// compareBench gates current results against a baseline directory. Missing
// baseline files or benchmarks are reported but not fatal (new benchmarks
// need a first run to establish a baseline).
func compareBench(baseDir string, suites map[string][]benchResult) error {
	var failures []string
	for id, rs := range suites {
		path := filepath.Join(baseDir, "BENCH_"+id+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("compare: no baseline %s (skipping)\n", path)
			continue
		}
		var base []benchResult
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("compare: %s: %w", path, err)
		}
		byName := map[string]benchResult{}
		for _, b := range base {
			byName[b.Name] = b
		}
		for _, r := range rs {
			b, ok := byName[r.Name]
			if !ok {
				fmt.Printf("compare: %s/%s has no baseline (skipping)\n", id, r.Name)
				continue
			}
			if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*(1+nsGate) {
				failures = append(failures, fmt.Sprintf("%s/%s: ns/op %.0f > baseline %.0f +%d%%",
					id, r.Name, r.NsPerOp, b.NsPerOp, int(nsGate*100)))
			}
			if b.AllocsPerOp > 0 && float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*(1+allocsGate) {
				failures = append(failures, fmt.Sprintf("%s/%s: allocs/op %d > baseline %d +%d%%",
					id, r.Name, r.AllocsPerOp, b.AllocsPerOp, int(allocsGate*100)))
			}
			fmt.Printf("compare: %s/%s ns/op %.0f (base %.0f)  allocs/op %d (base %d)\n",
				id, r.Name, r.NsPerOp, b.NsPerOp, r.AllocsPerOp, b.AllocsPerOp)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
