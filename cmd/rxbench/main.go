// rxbench regenerates every experiment table of EXPERIMENTS.md (the
// reproduction of the paper's evaluation artifacts; see DESIGN.md's
// per-experiment index).
//
// Usage:
//
//	rxbench                 # run everything
//	rxbench e1 e5 e7        # run selected experiments
//	rxbench -quick          # smaller workloads (CI-sized)
//	rxbench -json DIR       # run smoke benchmarks, write BENCH_<id>.json
//	rxbench -json DIR -compare bench   # also gate against a baseline dir
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rx/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "smaller workloads")
	jsonDir := flag.String("json", "", "run smoke benchmarks and write BENCH_<id>.json files to this directory (skips the experiment tables)")
	compareDir := flag.String("compare", "", "with -json: compare results against the baseline BENCH_*.json in this directory; exit nonzero on regression")
	flag.Parse()

	if *jsonDir != "" {
		suites := runSmokeBenchmarks()
		if err := writeBenchJSON(*jsonDir, suites); err != nil {
			fmt.Fprintf(os.Stderr, "rxbench: %v\n", err)
			os.Exit(1)
		}
		if *compareDir != "" {
			if err := compareBench(*compareDir, suites); err != nil {
				fmt.Fprintf(os.Stderr, "rxbench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	sel := map[string]bool{}
	for _, a := range flag.Args() {
		sel[strings.ToLower(a)] = true
	}
	want := func(id string) bool { return len(sel) == 0 || sel[strings.ToLower(id)] }

	scale := func(full, quickVal int) int {
		if *quick {
			return quickVal
		}
		return full
	}

	type exp struct {
		id  string
		run func() (*experiments.Table, error)
	}
	exps := []exp{
		{"e1", func() (*experiments.Table, error) { return experiments.E1(scale(20000, 4000), 20) }},
		{"e2", func() (*experiments.Table, error) { return experiments.E2(scale(20000, 4000), 20, scale(5, 2)) }},
		{"e3", func() (*experiments.Table, error) { return experiments.E3(scale(20000, 4000), 20, scale(300, 50)) }},
		{"e4", experiments.E4},
		{"e5", experiments.E5},
		{"e6", func() (*experiments.Table, error) { return experiments.E6(scale(20000, 4000)) }},
		{"e7", func() (*experiments.Table, error) { return experiments.E7(scale(2000, 300), 10) }},
		{"e7b", func() (*experiments.Table, error) { return experiments.E7Large(scale(50, 10), scale(2000, 500)) }},
		{"e8", func() (*experiments.Table, error) { return experiments.E8(scale(100000, 10000)) }},
		{"e9", func() (*experiments.Table, error) { return experiments.E9(scale(20000, 4000)) }},
		{"e10", func() (*experiments.Table, error) { return experiments.E10(scale(200, 40), 20) }},
		{"e11", func() (*experiments.Table, error) {
			return experiments.E11(4, time.Duration(scale(1000, 300))*time.Millisecond)
		}},
		{"e11b", experiments.E11Locks},
		{"e15", func() (*experiments.Table, error) {
			return experiments.E15(scale(50, 10), 2*time.Millisecond)
		}},
		{"e16", func() (*experiments.Table, error) {
			return experiments.E16(scale(5000, 500), 1000)
		}},
	}

	fmt.Println("System R/X reproduction — experiment harness")
	fmt.Println("(E12, Table-1 propagation semantics, is a correctness artifact: run `go test ./internal/quickxscan/ -run 'Table1|Propagation'`)")
	fmt.Println()
	for _, e := range exps {
		if !want(e.id) {
			continue
		}
		start := time.Now()
		tbl, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		var sb strings.Builder
		tbl.Render(&sb)
		fmt.Print(sb.String())
		fmt.Printf("(%s took %v)\n\n", strings.ToUpper(e.id), time.Since(start).Round(time.Millisecond))
	}
}
