// rxcli is a command-line shell for System R/X databases.
//
// Usage:
//
//	rxcli -db data.rxdb create <collection>
//	rxcli -db data.rxdb insert <collection> <file.xml>...
//	rxcli -db data.rxdb load [-batch n] <collection> <file.xml>...
//	rxcli -db data.rxdb index <collection> <name> <xpath> <string|double|date|decimal>
//	rxcli -db data.rxdb query [-explain] <collection> <xpath>
//	rxcli -db data.rxdb explain <collection> <xpath>
//	rxcli -db data.rxdb get <collection> <docid>
//	rxcli -db data.rxdb delete <collection> <docid>
//	rxcli -db data.rxdb ls [collection]
//	rxcli -db data.rxdb stats [collection]
//	rxcli -db data.rxdb verify
//	rxcli -db data.rxdb scrub
//	rxcli -db data.rxdb repair
//	rxcli -db data.rxdb quarantine ls
//	rxcli -db data.rxdb quarantine clear <collection> <docid>
//
// explain prints the cost-based plan for a query without running it: the
// chosen access method, the indexes in probe order, the planner's
// cardinality and cost estimates, and every alternative it priced.
// query -explain prints the same plan report before the results.
//
// With -remote host:port, the session commands (create, insert, load, index,
// query, explain, get, delete, ls) run against an rxserver over the wire instead of a
// local file — same handlers, same output, the session API is just remote.
// The admin commands (stats, backup, verify, scrub, repair, quarantine)
// operate on storage directly and always need a local -db.
//
// With -wal <path>, the database runs with write-ahead logging and performs
// crash recovery on open; -group-commit <dur> additionally batches
// concurrent commits into shared log syncs (each commit may wait up to that
// long for company). With -checksums, every page carries a CRC32 verified on
// read (torn-page detection); a database must be used with the same
// -checksums setting it was created with.
//
// load is the bulk path: files are ingested in batches of -batch documents,
// each batch stored with sorted index insertion and one WAL commit. insert
// remains the one-document-one-commit path.
//
// verify scans every page and reports each failure; it exits 0 when the
// database is clean, 2 when it found corruption (checksum failures), and 1
// on I/O errors (or any other failure). scrub additionally cross-checks
// every document against its indexes and quarantines damaged ones; repair
// rebuilds damaged structures and salvages quarantined documents. -rate
// bounds scrub/repair/verify to about that many page reads per second.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rx"
	"rx/client"
	"rx/internal/xml"
)

func main() {
	dbPath := flag.String("db", "rx.rxdb", "database file")
	remote := flag.String("remote", "", "rxserver address (host:port); session commands run over the wire")
	walPath := flag.String("wal", "", "write-ahead log file (enables logging + recovery)")
	groupCommit := flag.Duration("group-commit", 0, "WAL group-commit window (0 = sync per commit; needs -wal)")
	batch := flag.Int("batch", 1000, "documents per load batch")
	checksums := flag.Bool("checksums", false, "page checksums (torn-page detection; fixed at creation)")
	jobs := flag.Int("j", 0, "query parallelism (0 = one worker per CPU)")
	limit := flag.Int("limit", 0, "stop after this many query results (0 = all)")
	rate := flag.Int("rate", 0, "scrub/repair/verify page reads per second (0 = unthrottled)")
	degraded := flag.Bool("degraded", false, "queries skip quarantined documents instead of failing")
	explain := flag.Bool("explain", false, "query prints its cost-based plan before the results")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	cmdArgs := sessionArgs{
		jobs:     *jobs,
		limit:    *limit,
		batch:    *batch,
		degraded: *degraded,
		explain:  *explain,
	}

	if *remote != "" {
		api, err := client.Dial(*remote)
		fatal(err)
		defer api.Close()
		if !runSession(api, args[0], args[1:], cmdArgs) {
			fatal(fmt.Errorf("command %q operates on storage directly and needs a local database (drop -remote)", args[0]))
		}
		return
	}

	var opts []rx.Option
	if *walPath != "" {
		opts = append(opts, rx.WithWAL(*walPath))
		if *groupCommit > 0 {
			opts = append(opts, rx.WithGroupCommit(*groupCommit))
		}
	}
	if *checksums {
		opts = append(opts, rx.WithChecksums())
	}
	db, err := rx.Open(*dbPath, opts...)
	if err != nil {
		var pc rx.PageChecksumError
		if errors.As(err, &pc) && *checksums && args[0] == "repair" {
			// A lost sidecar checksum page can make the database unopenable
			// (the catalog's own checksum entry is gone). Under an explicit
			// repair request, re-derive the sidecars from the data and retry;
			// the repair pass that follows cross-checks the blessed pages
			// structurally.
			fmt.Fprintf(os.Stderr, "rxcli: open: %v\nrxcli: re-deriving sidecar checksums from data\n", err)
			fatal(rx.RederiveChecksums(*dbPath))
			db, err = rx.Open(*dbPath, opts...)
		} else if errors.As(err, &pc) && args[0] == "verify" {
			// Corruption severe enough to block open is still corruption.
			fmt.Fprintln(os.Stderr, "rxcli: open:", err)
			os.Exit(2)
		}
	}
	fatal(err)
	defer db.Close()

	cmd, rest := args[0], args[1:]
	if runSession(db.Session(), cmd, rest, cmdArgs) {
		return
	}
	switch cmd {
	case "backup":
		need(rest, 1, "backup <file>")
		f, err := os.Create(rest[0])
		fatal(err)
		fatal(db.Backup(f))
		fatal(f.Close())
		fmt.Printf("backup written to %s\n", rest[0])
	case "stats":
		if len(rest) == 0 {
			if code := printDBStats(db); code != 0 {
				db.Close()
				os.Exit(code)
			}
			return
		}
		col := collection(db, rest[0])
		n, _ := col.Count()
		pages, _ := col.XMLTable().Pages()
		entries, _ := col.NodeIndex().Count()
		fmt.Printf("documents:        %d\n", n)
		fmt.Printf("XML records:      %d\n", col.XMLTable().Count())
		fmt.Printf("XML table pages:  %d (%d KiB)\n", pages, pages*8)
		fmt.Printf("NodeID entries:   %d\n", entries)
		fmt.Printf("value indexes:    %s\n", strings.Join(col.ValueIndexes(), ", "))
	case "verify":
		os.Exit(verify(db, throttle(*rate)))
	case "scrub":
		s := rx.NewScrubber(db, rx.ScrubOptions{Rate: *rate})
		rep, err := s.RunPass()
		fatal(err)
		fmt.Printf("pages scanned:      %d\n", rep.PagesScanned)
		fmt.Printf("page errors:        %d\n", len(rep.PageErrors))
		for _, pe := range rep.PageErrors {
			fmt.Printf("  page %-8d %v\n", pe.Page, pe.Err)
		}
		fmt.Printf("corrupt structures: %d\n", len(rep.CorruptStructures))
		for _, sr := range rep.CorruptStructures {
			fmt.Printf("  %s\n", sr)
		}
		fmt.Printf("newly quarantined:  %d\n", len(rep.NewQuarantined))
		for _, q := range rep.NewQuarantined {
			fmt.Printf("  %s/%d: %s\n", q.Col, q.Doc, q.Reason)
		}
		if rep.Clean() {
			fmt.Println("scrub: clean")
		} else {
			os.Exit(2)
		}
	case "repair":
		s := rx.NewScrubber(db, rx.ScrubOptions{Rate: *rate})
		rep, err := s.Repair()
		fatal(err)
		fmt.Printf("passes:             %d\n", rep.Passes)
		fmt.Printf("sidecars rederived: %v\n", rep.SidecarsRederived)
		fmt.Printf("pages reformatted:  %d\n", len(rep.PagesReformatted))
		fmt.Printf("indexes rebuilt:    %d\n", len(rep.IndexesRebuilt))
		for _, ix := range rep.IndexesRebuilt {
			fmt.Printf("  %s\n", ix)
		}
		fmt.Printf("documents repaired: %d\n", len(rep.DocsRepaired))
		for _, d := range rep.DocsRepaired {
			if d.Lossy {
				fmt.Printf("  %s/%d (lossy: %d subtrees lost)\n", d.Col, d.Doc, d.LostSubtrees)
			} else {
				fmt.Printf("  %s/%d\n", d.Col, d.Doc)
			}
		}
		if len(rep.Remaining) > 0 {
			fmt.Printf("still quarantined:  %d\n", len(rep.Remaining))
			for _, q := range rep.Remaining {
				fmt.Printf("  %s/%d: %s\n", q.Col, q.Doc, q.Reason)
			}
			os.Exit(2)
		}
		fmt.Println("repair: clean")
	case "quarantine":
		need(rest, 1, "quarantine ls | quarantine clear <collection> <docid>")
		switch rest[0] {
		case "ls":
			qs, ls := db.Quarantined(), db.LossyDocs()
			for _, q := range qs {
				fmt.Printf("%s/%d\tpage %d\t%s\n", q.Col, q.Doc, q.Page, q.Reason)
			}
			for _, l := range ls {
				fmt.Printf("%s/%d\tlossy\t%d subtrees lost\n", l.Col, l.Doc, l.LostSubtrees)
			}
			if len(qs) == 0 && len(ls) == 0 {
				fmt.Println("quarantine registry is empty (it is re-derived per session; run scrub to detect damage)")
			}
		case "clear":
			need(rest, 3, "quarantine clear <collection> <docid>")
			id, err := strconv.ParseUint(rest[2], 10, 64)
			fatal(err)
			cleared := db.ClearQuarantine(rest[1], rx.DocID(id))
			lossy := db.ClearLossy(rest[1], rx.DocID(id))
			if !cleared && !lossy {
				fatal(fmt.Errorf("doc %d in %q is not quarantined", id, rest[1]))
			}
			fmt.Printf("doc %d cleared\n", id)
		default:
			fatal(fmt.Errorf("usage: rxcli quarantine ls | quarantine clear <collection> <docid>"))
		}
	default:
		usage()
	}
}

// sessionArgs carry the flag values the session commands use.
type sessionArgs struct {
	jobs     int
	limit    int
	batch    int
	degraded bool
	explain  bool
}

// runSession executes the commands that speak the session API — the same
// handler code serves a local database (db.Session()) and a remote rxserver
// (client.Dial), which is the point of the session layer. It reports whether
// cmd was one of its commands.
func runSession(api rx.SessionAPI, cmd string, rest []string, a sessionArgs) bool {
	ctx := context.Background()
	switch cmd {
	case "create":
		need(rest, 1, "create <collection>")
		fatal(api.CreateCollection(ctx, rest[0]))
		fmt.Printf("created collection %q\n", rest[0])
	case "insert":
		need(rest, 2, "insert <collection> <file.xml>...")
		for _, path := range rest[1:] {
			data, err := os.ReadFile(path)
			fatal(err)
			id, err := api.Insert(ctx, rest[0], data)
			fatal(err)
			fmt.Printf("%s → doc %d\n", path, id)
		}
	case "load":
		need(rest, 2, "load <collection> <file.xml>...")
		if a.batch < 1 {
			fatal(fmt.Errorf("-batch must be at least 1"))
		}
		files := rest[1:]
		loaded := 0
		for len(files) > 0 {
			n := a.batch
			if n > len(files) {
				n = len(files)
			}
			docs := make([][]byte, n)
			for i, path := range files[:n] {
				data, err := os.ReadFile(path)
				fatal(err)
				docs[i] = data
			}
			ids, err := api.InsertBatch(ctx, rest[0], docs)
			fatal(err)
			for i, path := range files[:n] {
				fmt.Printf("%s → doc %d\n", path, ids[i])
			}
			loaded += n
			files = files[n:]
		}
		fmt.Printf("-- %d documents loaded in batches of up to %d\n", loaded, a.batch)
	case "index":
		need(rest, 4, "index <collection> <name> <xpath> <type>")
		var typ xml.TypeID
		switch rest[3] {
		case "string":
			typ = rx.TypeString
		case "double":
			typ = rx.TypeDouble
		case "date":
			typ = rx.TypeDate
		case "decimal":
			typ = rx.TypeDecimal
		default:
			fatal(fmt.Errorf("unknown index type %q", rest[3]))
		}
		fatal(api.CreateValueIndex(ctx, rest[0], rest[1], rest[2], typ))
		fmt.Printf("index %q on %s created\n", rest[1], rest[2])
	case "query":
		// Accept -explain after the command word too, matching the docs.
		if len(rest) > 0 && rest[0] == "-explain" {
			a.explain = true
			rest = rest[1:]
		}
		need(rest, 2, "query [-explain] <collection> <xpath>")
		opts := []rx.QueryOption{
			rx.WithValues(),
			rx.WithParallelism(a.jobs),
			rx.WithLimit(a.limit),
		}
		if a.degraded {
			opts = append(opts, rx.WithDegraded())
		}
		if a.explain {
			plan, err := api.Explain(ctx, rest[0], rest[1], rx.WithValues())
			fatal(err)
			printPlan(plan)
		}
		cur, err := api.Query(ctx, rest[0], rest[1], opts...)
		fatal(err)
		defer cur.Close()
		plan := cur.Plan()
		fmt.Printf("-- access method: %s (exact=%v, indexes=%v, candidate docs=%d, parallelism=%d)\n",
			plan.Method, plan.Exact, plan.Indexes, plan.CandidateDocs, plan.Parallelism)
		n := 0
		for cur.Next() {
			r := cur.Result()
			v := string(r.Value)
			if len(v) > 60 {
				v = v[:60] + "..."
			}
			fmt.Printf("doc %-6d node %-14s %s\n", r.Doc, r.Node, v)
			n++
		}
		fatal(cur.Err())
		fmt.Printf("-- %d results\n", n)
		if skipped := cur.Skipped(); skipped > 0 {
			fmt.Printf("-- %d quarantined documents skipped (degraded)\n", skipped)
		}
	case "explain":
		need(rest, 2, "explain <collection> <xpath>")
		plan, err := api.Explain(ctx, rest[0], rest[1], rx.WithValues())
		fatal(err)
		printPlan(plan)
	case "get":
		need(rest, 2, "get <collection> <docid>")
		id, err := strconv.ParseUint(rest[1], 10, 64)
		fatal(err)
		data, err := api.Get(ctx, rest[0], rx.DocID(id))
		fatal(err)
		os.Stdout.Write(data)
		fmt.Println()
	case "delete":
		need(rest, 2, "delete <collection> <docid>")
		id, err := strconv.ParseUint(rest[1], 10, 64)
		fatal(err)
		fatal(api.Delete(ctx, rest[0], rx.DocID(id)))
		fmt.Printf("doc %d deleted\n", id)
	case "ls":
		if len(rest) == 0 {
			names, err := api.Collections(ctx)
			fatal(err)
			for _, name := range names {
				fmt.Println(name)
			}
			return true
		}
		ids, err := api.DocIDs(ctx, rest[0])
		fatal(err)
		for _, id := range ids {
			fmt.Println(id)
		}
	default:
		return false
	}
	return true
}

// printPlan renders an EXPLAIN report: the chosen plan line, then every
// alternative the planner priced, cheapest first.
func printPlan(p *rx.Plan) {
	fmt.Printf("plan: %s\n", p.Method)
	fmt.Printf("  exact:     %v\n", p.Exact)
	if len(p.Indexes) > 0 {
		fmt.Printf("  indexes:   %s (probe order)\n", strings.Join(p.Indexes, ", "))
	}
	fmt.Printf("  est docs:  %d\n", p.EstDocs)
	fmt.Printf("  est cost:  %.2f\n", p.EstCost)
	if len(p.Alternatives) > 0 {
		fmt.Println("  alternatives (cheapest first):")
		for _, a := range p.Alternatives {
			marker := " "
			if a.Method == p.Method {
				marker = "*"
			}
			fmt.Printf("  %s %-18s est docs %-8d est cost %.2f\n", marker, a.Method, a.EstDocs, a.EstCost)
		}
	}
}

// throttle builds the page-read pacing hook for verify (nil = unthrottled).
func throttle(rate int) func() {
	if rate <= 0 {
		return nil
	}
	interval := time.Second / time.Duration(rate)
	var next time.Time
	return func() {
		now := time.Now()
		if next.Before(now) {
			next = now
		}
		next = next.Add(interval)
		if d := next.Sub(now); d > 0 {
			time.Sleep(d)
		}
	}
}

// verify scans every page, prints a per-page summary of failures, and
// returns the exit code: 0 clean, 2 corruption (checksum failures), 1 I/O
// or any other error.
func verify(db *rx.DB, throttle func()) int {
	scanned, errs, err := db.ScanPages(throttle)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rxcli: verify:", err)
		return 1
	}
	corrupt, ioErrs := 0, 0
	for _, pe := range errs {
		var pc rx.PageChecksumError
		if errors.As(pe.Err, &pc) {
			corrupt++
		} else {
			ioErrs++
		}
		fmt.Printf("page %-8d FAIL  %v\n", pe.Page, pe.Err)
	}
	fmt.Printf("%d pages scanned, %d ok, %d corrupt, %d I/O errors\n",
		scanned, scanned-len(errs), corrupt, ioErrs)
	switch {
	case ioErrs > 0:
		return 1
	case corrupt > 0:
		return 2
	default:
		fmt.Println("all pages verified")
		return 0
	}
}

// printDBStats dumps the engine-wide observability counters and returns the
// exit code: 0 healthy, 2 when the engine is up but degraded (read-only
// after resource exhaustion) — the same "serving but damaged" convention
// verify and scrub use.
func printDBStats(db *rx.DB) int {
	s := db.Stats()
	fmt.Printf("scrub passes:        %d\n", s.ScrubPasses)
	fmt.Printf("pages verified:      %d\n", s.PagesVerified)
	fmt.Printf("corruptions found:   %d\n", s.CorruptionsFound)
	fmt.Printf("docs quarantined:    %d (now: %d)\n", s.DocsQuarantined, s.QuarantinedNow)
	fmt.Printf("docs repaired:       %d (lossy: %d)\n", s.DocsRepaired, s.DocsLossy)
	fmt.Printf("indexes rebuilt:     %d\n", s.IndexesRebuilt)
	fmt.Printf("write-back retries:  %d\n", s.WriteBackRetries)
	fmt.Printf("deadlock re-runs:    %d\n", s.DeadlockReruns)
	fmt.Printf("pool hits/misses:    %d/%d (evictions: %d, write-backs: %d)\n",
		s.PoolHits, s.PoolMisses, s.PoolEvictions, s.PoolWriteBacks)
	occ := make([]string, len(s.PoolShardOccupancy))
	for i, n := range s.PoolShardOccupancy {
		occ[i] = strconv.Itoa(n)
	}
	fmt.Printf("pool residency:      %d frames over %d shards [%s]\n",
		s.PoolResident, s.PoolShards, strings.Join(occ, " "))
	fmt.Printf("WAL commits/syncs:   %d/%d\n", s.WALCommits, s.WALSyncs)
	mode := "read-write"
	if s.DegradedReadOnly {
		mode = "READ-ONLY (degraded): " + s.DegradedReason
	}
	fmt.Printf("mode:                %s\n", mode)
	fmt.Printf("writes shed:         %d (degraded enters/exits: %d/%d)\n",
		s.WritesShed, s.DegradedEnters, s.DegradedExits)
	if s.PendingUndo > 0 {
		fmt.Printf("pending undo:        %d operations awaiting replay (in-doubt)\n", s.PendingUndo)
	}
	if s.SpaceLowWater > 0 {
		fmt.Printf("space watch:         free %d B (low %d, high %d)\n",
			s.SpaceFree, s.SpaceLowWater, s.SpaceHighWater)
	}
	limit := "unlimited"
	if s.MemLimit > 0 {
		limit = fmt.Sprintf("%d B", s.MemLimit)
	}
	fmt.Printf("memory budget:       %s (used %d, peak %d, denials %d)\n",
		limit, s.MemUsed, s.MemHighWater, s.MemDenials)
	fmt.Printf("plan cache:          %d hits / %d misses\n", s.PlanCacheHits, s.PlanCacheMisses)
	fmt.Printf("stats refreshes:     %d\n", s.StatsRefreshPasses)
	if s.DegradedReadOnly {
		return 2
	}
	return 0
}

func collection(db *rx.DB, name string) *rx.Collection {
	col, err := db.Collection(name)
	fatal(err)
	return col
}

func need(args []string, n int, form string) {
	if len(args) < n {
		fatal(fmt.Errorf("usage: rxcli %s", form))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rxcli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rxcli [-db file] [-wal file] [-j n] [-limit n] <command> ...
commands: create, insert, load, index, query, explain, get, delete, ls, stats,
          backup, verify, scrub, repair, quarantine`)
	os.Exit(2)
}
