// rxcli is a command-line shell for System R/X databases.
//
// Usage:
//
//	rxcli -db data.rxdb create <collection>
//	rxcli -db data.rxdb insert <collection> <file.xml>...
//	rxcli -db data.rxdb index <collection> <name> <xpath> <string|double|date|decimal>
//	rxcli -db data.rxdb query <collection> <xpath>
//	rxcli -db data.rxdb get <collection> <docid>
//	rxcli -db data.rxdb delete <collection> <docid>
//	rxcli -db data.rxdb ls [collection]
//	rxcli -db data.rxdb stats <collection>
//	rxcli -db data.rxdb verify
//
// With -wal <path>, the database runs with write-ahead logging and performs
// crash recovery on open. With -checksums, every page carries a CRC32
// verified on read (torn-page detection); a database must be used with the
// same -checksums setting it was created with.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rx"
	"rx/internal/xml"
)

func main() {
	dbPath := flag.String("db", "rx.rxdb", "database file")
	walPath := flag.String("wal", "", "write-ahead log file (enables logging + recovery)")
	checksums := flag.Bool("checksums", false, "page checksums (torn-page detection; fixed at creation)")
	jobs := flag.Int("j", 0, "query parallelism (0 = one worker per CPU)")
	limit := flag.Int("limit", 0, "stop after this many query results (0 = all)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var opts []rx.Option
	if *walPath != "" {
		opts = append(opts, rx.WithWAL(*walPath))
	}
	if *checksums {
		opts = append(opts, rx.WithChecksums())
	}
	db, err := rx.Open(*dbPath, opts...)
	fatal(err)
	defer db.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "create":
		need(rest, 1, "create <collection>")
		_, err := db.CreateCollection(rest[0], rx.CollectionOptions{})
		fatal(err)
		fmt.Printf("created collection %q\n", rest[0])
	case "insert":
		need(rest, 2, "insert <collection> <file.xml>...")
		col := collection(db, rest[0])
		for _, path := range rest[1:] {
			data, err := os.ReadFile(path)
			fatal(err)
			id, err := col.Insert(data)
			fatal(err)
			fmt.Printf("%s → doc %d\n", path, id)
		}
	case "index":
		need(rest, 4, "index <collection> <name> <xpath> <type>")
		col := collection(db, rest[0])
		var typ xml.TypeID
		switch rest[3] {
		case "string":
			typ = rx.TypeString
		case "double":
			typ = rx.TypeDouble
		case "date":
			typ = rx.TypeDate
		case "decimal":
			typ = rx.TypeDecimal
		default:
			fatal(fmt.Errorf("unknown index type %q", rest[3]))
		}
		fatal(col.CreateValueIndex(rest[1], rest[2], typ))
		fmt.Printf("index %q on %s created\n", rest[1], rest[2])
	case "query":
		need(rest, 2, "query <collection> <xpath>")
		col := collection(db, rest[0])
		cur, err := col.Cursor(rest[1], rx.QueryOptions{
			NeedValues:  true,
			Parallelism: *jobs,
			Limit:       *limit,
		})
		fatal(err)
		defer cur.Close()
		plan := cur.Plan()
		fmt.Printf("-- access method: %s (exact=%v, indexes=%v, candidate docs=%d, parallelism=%d)\n",
			plan.Method, plan.Exact, plan.Indexes, plan.CandidateDocs, plan.Parallelism)
		n := 0
		for cur.Next() {
			r := cur.Result()
			v := string(r.Value)
			if len(v) > 60 {
				v = v[:60] + "..."
			}
			fmt.Printf("doc %-6d node %-14s %s\n", r.Doc, r.Node, v)
			n++
		}
		fatal(cur.Err())
		fmt.Printf("-- %d results\n", n)
	case "get":
		need(rest, 2, "get <collection> <docid>")
		col := collection(db, rest[0])
		id, err := strconv.ParseUint(rest[1], 10, 64)
		fatal(err)
		fatal(col.Serialize(rx.DocID(id), os.Stdout))
		fmt.Println()
	case "delete":
		need(rest, 2, "delete <collection> <docid>")
		col := collection(db, rest[0])
		id, err := strconv.ParseUint(rest[1], 10, 64)
		fatal(err)
		fatal(col.Delete(rx.DocID(id)))
		fmt.Printf("doc %d deleted\n", id)
	case "ls":
		if len(rest) == 0 {
			for _, name := range db.Collections() {
				fmt.Println(name)
			}
			return
		}
		col := collection(db, rest[0])
		ids, err := col.DocIDs()
		fatal(err)
		for _, id := range ids {
			fmt.Println(id)
		}
	case "backup":
		need(rest, 1, "backup <file>")
		f, err := os.Create(rest[0])
		fatal(err)
		fatal(db.Backup(f))
		fatal(f.Close())
		fmt.Printf("backup written to %s\n", rest[0])
	case "stats":
		need(rest, 1, "stats <collection>")
		col := collection(db, rest[0])
		n, _ := col.Count()
		pages, _ := col.XMLTable().Pages()
		entries, _ := col.NodeIndex().Count()
		fmt.Printf("documents:        %d\n", n)
		fmt.Printf("XML records:      %d\n", col.XMLTable().Count())
		fmt.Printf("XML table pages:  %d (%d KiB)\n", pages, pages*8)
		fmt.Printf("NodeID entries:   %d\n", entries)
		fmt.Printf("value indexes:    %s\n", strings.Join(col.ValueIndexes(), ", "))
	case "verify":
		fatal(db.VerifyPages())
		fmt.Println("all pages verified")
	default:
		usage()
	}
}

func collection(db *rx.DB, name string) *rx.Collection {
	col, err := db.Collection(name)
	fatal(err)
	return col
}

func need(args []string, n int, form string) {
	if len(args) < n {
		fatal(fmt.Errorf("usage: rxcli %s", form))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rxcli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rxcli [-db file] [-wal file] [-j n] [-limit n] <command> ...
commands: create, insert, index, query, get, delete, ls, stats, backup`)
	os.Exit(2)
}
