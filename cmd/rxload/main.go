// rxload bulk-loads generated XML into a database and reports throughput
// with the per-phase CPU breakdown of §3.2/§6 ("XML processing is highly
// CPU-intensive, with major contributors being parsing and validation,
// traversal, and serialization").
//
// Usage:
//
//	rxload [-docs N] [-products M] [-index] [-db file]
//
// Without -db the load runs against an in-memory store (pure CPU numbers).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"rx"
	"rx/internal/xmlgen"
	"rx/internal/xmlparse"
)

func main() {
	docs := flag.Int("docs", 1000, "number of documents")
	products := flag.Int("products", 25, "products per document")
	withIndex := flag.Bool("index", true, "maintain a value index during the load")
	dbPath := flag.String("db", "", "database file (default: in-memory)")
	flag.Parse()

	db, err := rx.Open(*dbPath)
	fatal(err)
	defer db.Close()

	col, err := db.CreateCollection("load", rx.CollectionOptions{})
	fatal(err)
	if *withIndex {
		fatal(col.CreateValueIndex("ix_price", "/Catalog/Categories/Product/RegPrice", rx.TypeDouble))
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	raws := make([][]byte, *docs)
	var bytes int
	for i := range raws {
		raws[i] = xmlgen.Catalog(rng, *products, 500)
		bytes += len(raws[i])
	}
	fmt.Printf("generated %d documents, %.1f MiB\n", *docs, float64(bytes)/(1<<20))

	// Phase 1: parse.
	start := time.Now()
	streams := make([][]byte, *docs)
	for i, raw := range raws {
		streams[i], err = xmlparse.Parse(raw, db.Names(), xmlparse.Options{})
		fatal(err)
	}
	parseT := time.Since(start)

	// Phase 2: full insert (pack + heap + NodeID index + value keys).
	start = time.Now()
	for _, s := range streams {
		_, err := col.InsertStream(s)
		fatal(err)
	}
	insertT := time.Since(start)

	total := parseT + insertT
	mib := float64(bytes) / (1 << 20)
	fmt.Printf("parse:   %8.1f ms  (%5.1f MiB/s)\n", ms(parseT), mib/parseT.Seconds())
	fmt.Printf("insert:  %8.1f ms  (%5.1f MiB/s)\n", ms(insertT), mib/insertT.Seconds())
	fmt.Printf("total:   %8.1f ms  (%5.1f MiB/s, %.0f docs/s)\n",
		ms(total), mib/total.Seconds(), float64(*docs)/total.Seconds())

	n, _ := col.Count()
	pages, _ := col.XMLTable().Pages()
	entries, _ := col.NodeIndex().Count()
	fmt.Printf("stored:  %d docs, %d records, %d pages, %d NodeID entries\n",
		n, col.XMLTable().Count(), pages, entries)
	if *dbPath != "" {
		start = time.Now()
		fatal(db.Flush())
		fmt.Printf("flush:   %8.1f ms\n", ms(time.Since(start)))
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rxload:", err)
		os.Exit(1)
	}
}
