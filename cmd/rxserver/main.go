// Command rxserver serves an rx database over TCP. Each connection gets its
// own session (transaction scope); queries stream back in cursor-sized
// batches; SIGTERM/SIGINT drains gracefully: in-flight requests finish, open
// transactions of dropped clients roll back, and the process exits 0.
//
//	rxserver -db data.rxdb -wal data.wal -addr :7345
//	rxcli -remote localhost:7345 query books '/book[price < 10]'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rx"
	"rx/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7345", "listen address")
		dbPath       = flag.String("db", "", "database file (empty = in-memory)")
		walPath      = flag.String("wal", "", "write-ahead log file (enables transactions + crash recovery)")
		poolPages    = flag.Int("pool", 0, "buffer pool pages (0 = default)")
		checksums    = flag.Bool("checksums", false, "enable torn-page detection (CRC per page)")
		groupCommit  = flag.Duration("group-commit", 0, "WAL group-commit window (0 = off)")
		lockTimeout  = flag.Duration("lock-timeout", 0, "lock wait timeout (0 = default)")
		maxConns     = flag.Int("max-conns", 64, "connection limit; beyond it clients get a busy error")
		maxWaiters   = flag.Int("max-lock-waiters", 128, "shed writes while this many lock requests wait")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown limit before force close")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request execution limit; a query running longer is cancelled server-side (0 = unlimited)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "close connections with no request for this long; clients reconnect transparently (0 = never)")
		keepalive    = flag.Duration("keepalive", 3*time.Minute, "TCP keepalive probe period on accepted connections (0 = OS default)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		memBudget    = flag.Int64("mem-budget", 0, "engine-wide memory budget in bytes for buffered results and bulk staging (0 = unlimited)")
		sessMem      = flag.Int64("session-mem", 0, "per-connection memory cap in bytes (0 = only the engine budget)")
		queryMem     = flag.Int64("query-mem", 0, "per-query memory cap in bytes (0 = none)")
		spaceLow     = flag.Int64("space-low", 0, "free-disk low-water mark in bytes: below it the engine goes read-only (0 = no watchdog)")
		spaceHigh    = flag.Int64("space-high", 0, "free-disk recovery mark in bytes (0 = 2*space-low)")
		spaceEvery   = flag.Duration("space-interval", 0, "free-disk probe interval (0 = 1s)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rxserver: pprof:", err)
			}
		}()
	}

	var opts []rx.Option
	if *walPath != "" {
		opts = append(opts, rx.WithWAL(*walPath))
	}
	if *poolPages > 0 {
		opts = append(opts, rx.WithPoolPages(*poolPages))
	}
	if *checksums {
		opts = append(opts, rx.WithChecksums())
	}
	if *groupCommit > 0 {
		opts = append(opts, rx.WithGroupCommit(*groupCommit))
	}
	if *lockTimeout > 0 {
		opts = append(opts, rx.WithLockTimeout(*lockTimeout))
	}
	if *memBudget > 0 {
		opts = append(opts, rx.WithMemoryBudget(*memBudget))
	}
	if *spaceLow > 0 {
		if *dbPath == "" {
			fmt.Fprintln(os.Stderr, "rxserver: -space-low needs a file-backed database (-db)")
			os.Exit(1)
		}
		opts = append(opts, rx.WithSpaceWatch(*spaceLow, *spaceHigh, *spaceEvery))
	}
	db, err := rx.Open(*dbPath, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rxserver: open:", err)
		os.Exit(1)
	}

	lc := net.ListenConfig{KeepAlive: *keepalive}
	lis, err := lc.Listen(context.Background(), "tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rxserver: listen:", err)
		os.Exit(1)
	}
	srv := server.New(db.Engine(), server.Options{
		MaxConns:        *maxConns,
		MaxLockWaiters:  *maxWaiters,
		RequestTimeout:  *reqTimeout,
		IdleTimeout:     *idleTimeout,
		SessionMemLimit: *sessMem,
		QueryMemLimit:   *queryMem,
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "rxserver: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "rxserver: drain:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "rxserver: serving %s on %s\n", describe(*dbPath), lis.Addr())
	serveErr := srv.Serve(lis)
	// Serve returns as soon as the listener closes; the drain in the signal
	// goroutine may still be waiting out busy connections. Shutdown is
	// idempotent and waits for every connection handler, so calling it again
	// here guarantees no request touches the engine after db.Close.
	drainCtx, drainCancel := context.WithTimeout(context.Background(), *drainTimeout)
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rxserver: drain:", err)
	}
	drainCancel()
	closeErr := db.Close()
	if serveErr != nil {
		fmt.Fprintln(os.Stderr, "rxserver: serve:", serveErr)
		os.Exit(1)
	}
	if closeErr != nil {
		fmt.Fprintln(os.Stderr, "rxserver: close:", closeErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rxserver: drained")
}

func describe(path string) string {
	if path == "" {
		return "in-memory database"
	}
	return path
}
