// Catalog: the paper's Table-2 workload end to end. A product catalog
// collection gets the two value indexes of Table 2 — one exact path, one
// containment path — and the three §4.3 access methods are demonstrated:
// (1) DocID/NodeID list, (2) filtering with re-evaluation, (3) ANDing/ORing.
// It also shows schema registration and validated inserts (Figure 4).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rx"
)

const catalogXSD = `
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Catalog">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Categories">
          <xs:complexType>
            <xs:sequence>
              <xs:element ref="Product" minOccurs="0" maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="Product">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="ProductName" type="xs:string"/>
        <xs:element name="RegPrice" type="xs:double"/>
        <xs:element name="Discount" type="xs:double" minOccurs="0"/>
      </xs:sequence>
      <xs:attribute name="pid" type="xs:integer" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>`

func main() {
	db, err := rx.Open("")
	if err != nil {
		log.Fatal(err)
	}
	// Register the schema: compiled to a binary parsing table in the
	// catalog (Figure 4).
	if err := db.RegisterSchema("catalog", []byte(catalogXSD)); err != nil {
		log.Fatal(err)
	}
	col, err := db.CreateCollection("catalog", rx.CollectionOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Load validated catalogs.
	rng := rand.New(rand.NewSource(7))
	for d := 0; d < 200; d++ {
		doc := genCatalog(rng, 5)
		if _, err := col.InsertValidated("catalog", doc); err != nil {
			log.Fatalf("doc %d: %v", d, err)
		}
	}
	n, _ := col.Count()
	fmt.Printf("loaded %d validated catalog documents\n", n)

	// A document that violates the schema is rejected.
	if _, err := col.InsertValidated("catalog",
		[]byte(`<Catalog><Categories><Product pid="1"><RegPrice>5</RegPrice></Product></Categories></Catalog>`)); err != nil {
		fmt.Printf("invalid document rejected: %v\n", err)
	}

	// Table 2's indexes.
	must(col.CreateValueIndex("ix_regprice", "/Catalog/Categories/Product/RegPrice", rx.TypeDouble))
	must(col.CreateValueIndex("ix_discount", "//Discount", rx.TypeDouble))

	queries := []string{
		`/Catalog/Categories/Product[RegPrice > 100]`,                    // exact → NodeID list
		`/Catalog/Categories/Product[Discount > 0.1]`,                    // containment → filtering
		`/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.1]`, // ANDing
		`/Catalog/Categories/Product[RegPrice > 180 or Discount > 0.2]`,  // ORing
		`//Product[ProductName = 'no such product']`,                     // scan fallback
	}
	for _, q := range queries {
		results, plan, err := col.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-66s → %4d results | method=%-13s exact=%-5v indexes=%v candidates=%d\n",
			q, len(results), plan.Method, plan.Exact, plan.Indexes, plan.CandidateDocs)
	}
}

func genCatalog(rng *rand.Rand, products int) []byte {
	out := []byte(`<Catalog><Categories>`)
	for i := 0; i < products; i++ {
		out = append(out, fmt.Sprintf(
			`<Product pid="%d"><ProductName>Item %d</ProductName><RegPrice>%.2f</RegPrice><Discount>%.2f</Discount></Product>`,
			i, rng.Intn(10000), 10+rng.Float64()*190, rng.Float64()*0.3)...)
	}
	return append(out, `</Categories></Catalog>`...)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
