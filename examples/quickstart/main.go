// Quickstart: open a database, store XML documents, index them, query with
// XPath, and serialize results.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"rx"
)

func main() {
	db, err := rx.Open("")
	if err != nil {
		log.Fatal(err)
	}
	col, err := db.CreateCollection("books", rx.CollectionOptions{})
	if err != nil {
		log.Fatal(err)
	}

	docs := []string{
		`<book year="1999"><title>Data on the Web</title><price>39.95</price></book>`,
		`<book year="2000"><title>XML Handbook</title><price>55.00</price></book>`,
		`<book year="2005"><title>Native XML Databases</title><price>25.50</price></book>`,
	}
	for _, d := range docs {
		if _, err := col.Insert([]byte(d)); err != nil {
			log.Fatal(err)
		}
	}

	// An XPath value index on price (a "simple XPath expression without
	// predicates, and a data type for the key values", §3.3).
	if err := col.CreateValueIndex("by_price", "/book/price", rx.TypeDouble); err != nil {
		log.Fatal(err)
	}

	// Query through the session API: context-first, streamed through a
	// cursor; the planner picks the exact-match NodeID-list access method.
	// The same code runs against a remote rxserver via client.Dial.
	cur, err := db.Session().Query(context.Background(),
		"books", "/book[price < 40]/title", rx.WithValues())
	if err != nil {
		log.Fatal(err)
	}
	var results []rx.Result
	for cur.Next() {
		results = append(results, cur.Result())
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	cur.Close()
	fmt.Printf("query /book[price < 40]/title → %d matches (access method: %s)\n",
		len(results), cur.Plan().Method)
	for _, r := range results {
		fmt.Printf("  doc %d node %s: %s\n", r.Doc, r.Node, r.Value)
	}

	// Serialize a whole stored document back to XML.
	fmt.Print("document 1: ")
	if err := col.Serialize(1, os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Subdocument update: change a price in place (no LOB rewrite).
	tRes, _, err := col.Query("/book[@year = 1999]/price/text()")
	if err != nil || len(tRes) != 1 {
		log.Fatalf("price text: %v %v", tRes, err)
	}
	if err := col.UpdateText(tRes[0].Doc, tRes[0].Node, []byte("19.99")); err != nil {
		log.Fatal(err)
	}
	fmt.Print("after price update: ")
	col.Serialize(tRes[0].Doc, os.Stdout)
	fmt.Println()

	// The index followed the update.
	hits, plan, _ := col.Query("/book[price < 20]")
	fmt.Printf("query /book[price < 20] → %d match via %s\n", len(hits), plan.Method)
}
