// Streamfilter: QuickXScan as a standalone streaming XPath filter (§4.2).
// Documents are parsed to token streams and evaluated in one pass — nothing
// is stored and no DOM is built. The same compiled query is reused across
// documents, and the evaluator reports its live-state footprint (the
// Figure-7 metric).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rx/internal/quickxscan"
	"rx/internal/xml"
	"rx/internal/xmlgen"
	"rx/internal/xmlparse"
	"rx/internal/xpath"
)

func main() {
	dict := xml.NewDict()

	// Compile once, scan many documents — the relational-scan analogue.
	q, err := xpath.Parse(`/Catalog/Categories/Product[RegPrice > 150 and Discount > 0.1]/ProductName`)
	if err != nil {
		log.Fatal(err)
	}
	eval, err := quickxscan.Compile(q, dict, nil, quickxscan.Options{NeedValues: true})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	matched, scanned := 0, 0
	for i := 0; i < 50; i++ {
		doc := xmlgen.Catalog(rng, 20, 200)
		stream, err := xmlparse.Parse(doc, dict, xmlparse.Options{})
		if err != nil {
			log.Fatal(err)
		}
		matches, err := quickxscan.EvalTokens(eval, stream)
		if err != nil {
			log.Fatal(err)
		}
		scanned++
		if len(matches) > 0 {
			matched++
			if matched <= 3 {
				fmt.Printf("doc %2d: %d discounted premium products, e.g. %q at node %s\n",
					i, len(matches), matches[0].Value, matches[0].ID)
			}
		}
	}
	st := eval.Stats()
	fmt.Printf("scanned %d documents, %d had matches\n", scanned, matched)
	fmt.Printf("query nodes |Q| = %d, max live matching instances = %d (O(|Q|·r), §4.2)\n",
		st.QueryNodes, st.MaxLive)

	// Deep recursion does not blow up state: //a//a//a over nested <a>.
	rq, _ := xpath.Parse("//a//a//a")
	reval, _ := quickxscan.Compile(rq, dict, nil, quickxscan.Options{})
	for _, depth := range []int{8, 64, 256} {
		stream, _ := xmlparse.Parse(xmlgen.Recursive(depth), dict, xmlparse.Options{})
		ms, err := quickxscan.EvalTokens(reval, stream)
		if err != nil {
			log.Fatal(err)
		}
		s := reval.Stats()
		fmt.Printf("recursion depth %3d: %4d matches, max live instances %4d (linear in depth, not exponential)\n",
			depth, len(ms), s.MaxLive)
	}
}
