// Versioned document store: document-level multiversioning (§5.1) with
// lock-free snapshot readers running concurrently with a writer, plus
// transactional updates with rollback over the WAL (document-level
// concurrency of §5.1 backed by the reused logging infrastructure).
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"rx"
	"rx/internal/core"
	"rx/internal/pagestore"
	"rx/internal/wal"
)

func main() {
	// A logged database (in-memory store + in-memory WAL for the demo; use
	// rx.Open(path, rx.WithWAL(walPath)) for a durable one).
	logDev := &wal.MemDevice{}
	walLog, err := wal.Open(logDev)
	if err != nil {
		log.Fatal(err)
	}
	db, err := core.Open(pagestore.NewMemStore(), core.Options{WAL: walLog})
	if err != nil {
		log.Fatal(err)
	}
	col, err := db.CreateCollection("wiki", rx.CollectionOptions{Versioned: true})
	if err != nil {
		log.Fatal(err)
	}

	id, err := col.Insert([]byte(`<page><title>XML Databases</title><body>Version one.</body></page>`))
	if err != nil {
		log.Fatal(err)
	}
	v1, _ := col.SnapshotVersion(id)
	fmt.Printf("created page %d at version %d\n", id, v1)

	// A long-running reader pins the snapshot...
	var snapshot bytes.Buffer
	readerDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// ...while the writer publishes new versions concurrently.
		<-readerDone
		if err := col.SerializeAt(id, v1, &snapshot); err != nil {
			log.Fatal(err)
		}
	}()

	// Writer: three edits, three new versions. Readers never block it.
	bodies, _, _ := col.Query("/page/body/text()")
	for i := 2; i <= 4; i++ {
		text := fmt.Sprintf("Version %d, edited in place.", i)
		if err := col.UpdateText(id, bodies[0].Node, []byte(text)); err != nil {
			log.Fatal(err)
		}
	}
	cur, _ := col.SnapshotVersion(id)
	fmt.Printf("after 3 edits the page is at version %d\n", cur)

	close(readerDone)
	wg.Wait()
	fmt.Printf("reader pinned to v%d still sees: %s\n", v1, snapshot.String())

	var latest bytes.Buffer
	col.SerializeAt(id, cur, &latest)
	fmt.Printf("current version reads:          %s\n", latest.String())

	// Transactional edit with rollback: the subtree insert is undone.
	tx := db.Begin()
	pages, _, _ := col.Query("/page")
	if _, err := tx.InsertFragment(col, id, pages[0].Node, rx.AsLastChild,
		[]byte(`<draft>not ready</draft>`)); err != nil {
		log.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		log.Fatal(err)
	}
	var after bytes.Buffer
	col.Serialize(id, &after)
	fmt.Printf("after rolled-back edit:         %s\n", after.String())

	// Vacuum old versions once no reader needs them.
	if err := col.Vacuum(id, cur); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vacuumed versions below %d; XML table rows now: %d\n", cur, col.XMLTable().Count())
}
