module rx

go 1.22
