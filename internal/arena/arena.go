// Package arena provides a chunked bump allocator for the ingest byte path.
//
// Parsing, tree packing, shredding and key generation allocate many small,
// short-lived byte slices per document — attribute values, node encodings,
// key scratch — all of which die together when the document (or batch) has
// been inserted. An Arena turns those N small garbage-collected allocations
// into pointer bumps inside a few large chunks, and one Reset recycles the
// whole lot for the next document. At bulk-load rates this removes the bulk
// of steady-state GC pressure from the ingest path (EXPERIMENTS.md E16/E17).
//
// Lifetime rule: memory returned by an Arena is valid only until the next
// Reset. Anything that must outlive the reset point — bytes stored into heap
// pages, B+tree entries, or the WAL — is copied by those layers on insert,
// so the engine's reset points (per document in Insert, per batch in
// InsertBatch) are safe by construction. See DESIGN.md "The byte path".
//
// A nil *Arena is valid everywhere and falls back to the ordinary Go heap,
// so call sites thread an optional arena without branching.
package arena

// chunkSize is the default allocation granularity. Large enough that a
// typical small document fits in one chunk; small enough that an idle arena
// is cheap to keep around.
const chunkSize = 64 << 10

// Arena is a chunked bump allocator. Not safe for concurrent use; each
// ingest pipeline owns its own arena.
type Arena struct {
	// cur is the active chunk; off its bump pointer.
	cur []byte
	off int
	// full holds exhausted chunks until Reset recycles them.
	full [][]byte
	// free holds recycled chunks ready for reuse after a Reset.
	free [][]byte
}

// New returns an empty arena. The zero value is also ready to use.
func New() *Arena { return &Arena{} }

// Alloc returns a zeroed n-byte slice from the arena, valid until Reset.
// A nil arena allocates from the Go heap.
func (a *Arena) Alloc(n int) []byte {
	b := a.AllocRaw(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// AllocRaw returns an n-byte slice from the arena without zeroing it. The
// slice's capacity is exactly n, so appending to it cannot scribble over a
// neighbouring allocation. A nil arena allocates from the Go heap.
func (a *Arena) AllocRaw(n int) []byte {
	if a == nil {
		return make([]byte, n)
	}
	if a.off+n > len(a.cur) {
		a.grow(n)
	}
	b := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

// Make returns a zero-length slice with capacity c from the arena, for
// append-style building. The capacity is exact (see AllocRaw). A nil arena
// allocates from the Go heap.
func (a *Arena) Make(c int) []byte {
	return a.AllocRaw(c)[:0]
}

// Copy clones b into the arena.
func (a *Arena) Copy(b []byte) []byte {
	out := a.AllocRaw(len(b))
	copy(out, b)
	return out
}

// grow installs a chunk with room for at least n bytes.
func (a *Arena) grow(n int) {
	if a.cur != nil {
		a.full = append(a.full, a.cur)
	}
	size := chunkSize
	if n > size {
		// Oversized request: dedicated chunk, used once.
		size = n
	}
	// Prefer a recycled chunk when it is big enough.
	if k := len(a.free); k > 0 && len(a.free[k-1]) >= n {
		a.cur = a.free[k-1]
		a.free = a.free[:k-1]
	} else {
		a.cur = make([]byte, size)
	}
	a.off = 0
}

// Reset recycles every chunk for reuse. All previously returned slices
// become invalid: the next allocations will overwrite them. A nil arena
// Reset is a no-op.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.free = append(a.free, a.full...)
	a.full = a.full[:0]
	a.off = 0
}

// Footprint reports the total bytes currently held by the arena's chunks
// (stats, tests).
func (a *Arena) Footprint() int {
	if a == nil {
		return 0
	}
	n := len(a.cur)
	for _, c := range a.full {
		n += len(c)
	}
	for _, c := range a.free {
		n += len(c)
	}
	return n
}
