package arena

import (
	"bytes"
	"testing"
)

func TestNilArena(t *testing.T) {
	var a *Arena
	b := a.Alloc(16)
	if len(b) != 16 {
		t.Fatalf("nil Alloc len = %d", len(b))
	}
	if got := a.Copy([]byte("abc")); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("nil Copy = %q", got)
	}
	if c := a.Make(8); len(c) != 0 || cap(c) != 8 {
		t.Fatalf("nil Make len/cap = %d/%d", len(c), cap(c))
	}
	a.Reset() // must not panic
	if a.Footprint() != 0 {
		t.Fatal("nil Footprint != 0")
	}
}

func TestAllocDoesNotOverlap(t *testing.T) {
	a := New()
	x := a.Alloc(10)
	y := a.Alloc(10)
	copy(x, "xxxxxxxxxx")
	copy(y, "yyyyyyyyyy")
	if !bytes.Equal(x, []byte("xxxxxxxxxx")) {
		t.Fatalf("x clobbered: %q", x)
	}
	// Appending past x's length must not scribble over y.
	x = append(x, 'z')
	if !bytes.Equal(y, []byte("yyyyyyyyyy")) {
		t.Fatalf("append to x clobbered y: %q", y)
	}
}

func TestAllocZeroed(t *testing.T) {
	a := New()
	b := a.Alloc(64)
	copy(b, "dirty")
	a.Reset()
	c := a.Alloc(64)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("byte %d = %d after Reset, want 0", i, v)
		}
	}
}

func TestOversizedAllocation(t *testing.T) {
	a := New()
	big := a.Alloc(chunkSize * 3)
	if len(big) != chunkSize*3 {
		t.Fatalf("oversized len = %d", len(big))
	}
	small := a.Alloc(8)
	if len(small) != 8 {
		t.Fatalf("small after oversized len = %d", len(small))
	}
}

func TestResetRecyclesChunks(t *testing.T) {
	a := New()
	for i := 0; i < 100; i++ {
		a.Alloc(chunkSize / 2)
	}
	before := a.Footprint()
	a.Reset()
	for i := 0; i < 100; i++ {
		a.Alloc(chunkSize / 2)
	}
	after := a.Footprint()
	if after > before+chunkSize {
		t.Fatalf("footprint grew across Reset: %d -> %d", before, after)
	}
}

func TestCapacityIsExact(t *testing.T) {
	a := New()
	b := a.AllocRaw(5)
	if cap(b) != 5 {
		t.Fatalf("cap = %d, want 5", cap(b))
	}
	m := a.Make(7)
	if len(m) != 0 || cap(m) != 7 {
		t.Fatalf("Make len/cap = %d/%d", len(m), cap(m))
	}
}

func BenchmarkAlloc(b *testing.B) {
	a := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			a.Reset()
		}
		_ = a.AllocRaw(48)
	}
}
