// Package btree implements the B+tree index manager over the buffer pool.
// It is the single index infrastructure the paper reuses for everything:
// relational-style indexes, the DocID index, the NodeID index, and the XPath
// value indexes are all B+trees with byte-string keys (§2: "Index manager
// ... enhanced to support XPath indexes"; Figure 2 shows three B+trees).
//
// Keys are arbitrary byte strings ordered by bytes.Compare; callers build
// order-preserving composite keys with package keycodec. Keys are unique:
// multi-entry indexes append a discriminating suffix (DocID, NodeID, RID) to
// the key, which is exactly how the paper's value-index entries
// (keyval, DocID, NodeID, RID) are laid out.
//
// Page layout:
//
//	[0:8)   pageLSN (maintained by buffer.Pool.Modify)
//	[8]     flags (bit 0: leaf)
//	[10:12) cell count
//	[12:14) free-space pointer (cells grow down from the page end)
//	[14:18) leaf: right sibling page; internal: leftmost child page
//	[18:..) slot array, 2 bytes per cell (cell offset)
//
// Leaf cell:     keyLen u16, key, valLen u16, val
// Internal cell: keyLen u16, key, child u32 — child covers keys >= key.
//
// All page mutations go through buffer.Pool.Modify so the WAL sees them when
// attached; a failed mutation rolls the page back, and a split that fails
// midway leaves at worst an orphan page, never a broken tree.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"rx/internal/buffer"
	"rx/internal/pagestore"
)

const (
	hdrFlags   = 8
	hdrNKeys   = 10
	hdrFreePtr = 12
	hdrLink    = 14 // right sibling (leaf) or leftmost child (internal)
	hdrSize    = 18
	slotSize   = 2

	flagLeaf = 1
)

// MaxKey is the largest key the tree accepts; it guarantees a minimum fanout
// of four cells per page.
const MaxKey = 1024

// MaxValue is the largest value payload per entry.
const MaxValue = 512

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("btree: key not found")

// ErrKeyTooLarge reports a key or value exceeding the size limits.
var ErrKeyTooLarge = errors.New("btree: key or value too large")

// Tree is a B+tree index. A tree is durably identified by its meta page,
// which stores the current root (the root moves when it splits).
type Tree struct {
	pool *buffer.Pool

	mu   sync.RWMutex
	meta pagestore.PageID
	root pagestore.PageID
}

// Create allocates a new empty tree (a meta page plus an empty leaf root).
func Create(pool *buffer.Pool) (*Tree, error) {
	mf, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	rf, err := pool.NewPage()
	if err != nil {
		pool.Unpin(mf, false)
		return nil, err
	}
	err = pool.Modify(rf, func(d []byte) error {
		initNode(d, true)
		return nil
	})
	rootID := rf.ID
	pool.Unpin(rf, false)
	if err != nil {
		pool.Unpin(mf, false)
		return nil, err
	}
	err = pool.Modify(mf, func(d []byte) error {
		binary.BigEndian.PutUint32(d[8:12], uint32(rootID))
		return nil
	})
	metaID := mf.ID
	pool.Unpin(mf, false)
	if err != nil {
		return nil, err
	}
	return &Tree{pool: pool, meta: metaID, root: rootID}, nil
}

// Open attaches to an existing tree by its meta page ID.
func Open(pool *buffer.Pool, meta pagestore.PageID) (*Tree, error) {
	f, err := pool.Fetch(meta)
	if err != nil {
		return nil, err
	}
	f.RLock()
	root := pagestore.PageID(binary.BigEndian.Uint32(f.Data[8:12]))
	f.RUnlock()
	pool.Unpin(f, false)
	return &Tree{pool: pool, meta: meta, root: root}, nil
}

// MetaPage returns the tree's durable identity for catalog storage.
func (t *Tree) MetaPage() pagestore.PageID { return t.meta }

// Reload re-reads the root pointer from the meta page. Call after recovery
// has replayed WAL records that may have moved the root.
func (t *Tree) Reload() error {
	f, err := t.pool.Fetch(t.meta)
	if err != nil {
		return err
	}
	f.RLock()
	root := pagestore.PageID(binary.BigEndian.Uint32(f.Data[8:12]))
	f.RUnlock()
	t.pool.Unpin(f, false)
	t.mu.Lock()
	t.root = root
	t.mu.Unlock()
	return nil
}

func initNode(d []byte, leaf bool) {
	for i := 8; i < len(d); i++ {
		d[i] = 0
	}
	if leaf {
		d[hdrFlags] = flagLeaf
	}
	binary.BigEndian.PutUint16(d[hdrNKeys:], 0)
	binary.BigEndian.PutUint16(d[hdrFreePtr:], pagestore.PageSize)
	binary.BigEndian.PutUint32(d[hdrLink:], uint32(pagestore.InvalidPage))
}

func isLeaf(d []byte) bool { return d[hdrFlags]&flagLeaf != 0 }
func nKeys(d []byte) int   { return int(binary.BigEndian.Uint16(d[hdrNKeys:])) }
func link(d []byte) pagestore.PageID {
	return pagestore.PageID(binary.BigEndian.Uint32(d[hdrLink:]))
}
func setLink(d []byte, id pagestore.PageID) {
	binary.BigEndian.PutUint32(d[hdrLink:], uint32(id))
}

func cellOff(d []byte, i int) int {
	return int(binary.BigEndian.Uint16(d[hdrSize+i*slotSize:]))
}

func setCellOff(d []byte, i, off int) {
	binary.BigEndian.PutUint16(d[hdrSize+i*slotSize:], uint16(off))
}

// cellKey returns the key of cell i (aliasing the page buffer).
func cellKey(d []byte, i int) []byte {
	off := cellOff(d, i)
	kl := int(binary.BigEndian.Uint16(d[off:]))
	return d[off+2 : off+2+kl]
}

// leafValue returns the value of leaf cell i (aliasing the page buffer).
func leafValue(d []byte, i int) []byte {
	off := cellOff(d, i)
	kl := int(binary.BigEndian.Uint16(d[off:]))
	vo := off + 2 + kl
	vl := int(binary.BigEndian.Uint16(d[vo:]))
	return d[vo+2 : vo+2+vl]
}

// childAt returns the child pointer of internal cell i.
func childAt(d []byte, i int) pagestore.PageID {
	off := cellOff(d, i)
	kl := int(binary.BigEndian.Uint16(d[off:]))
	return pagestore.PageID(binary.BigEndian.Uint32(d[off+2+kl:]))
}

func cellSize(d []byte, i int) int {
	off := cellOff(d, i)
	kl := int(binary.BigEndian.Uint16(d[off:]))
	if isLeaf(d) {
		vl := int(binary.BigEndian.Uint16(d[off+2+kl:]))
		return 2 + kl + 2 + vl
	}
	return 2 + kl + 4
}

// search finds the smallest cell index whose key is >= key, i.e. the
// insertion point. Returns (index, exact match).
func search(d []byte, key []byte) (int, bool) {
	lo, hi := 0, nKeys(d)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(cellKey(d, mid), key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childFor returns the child to descend into for key in an internal node:
// the child of the last cell whose key is <= key, or the leftmost child.
func childFor(d []byte, key []byte) pagestore.PageID {
	i, exact := search(d, key)
	if exact {
		return childAt(d, i)
	}
	if i == 0 {
		return link(d) // leftmost child
	}
	return childAt(d, i-1)
}

// freeBytes returns free bytes available for one more cell (incl. its slot).
func freeBytes(d []byte) int {
	n := nKeys(d)
	freePtr := int(binary.BigEndian.Uint16(d[hdrFreePtr:]))
	if freePtr == 0 {
		freePtr = pagestore.PageSize
	}
	return freePtr - hdrSize - n*slotSize - slotSize
}

// insertCell places a cell at index i, shifting slots. Returns false when
// the page is full even after compaction.
func insertCell(d []byte, i int, cell []byte) bool {
	if freeBytes(d) < len(cell) {
		if !compactNode(d) || freeBytes(d) < len(cell) {
			return false
		}
	}
	freePtr := int(binary.BigEndian.Uint16(d[hdrFreePtr:]))
	if freePtr == 0 {
		freePtr = pagestore.PageSize
	}
	off := freePtr - len(cell)
	copy(d[off:], cell)
	binary.BigEndian.PutUint16(d[hdrFreePtr:], uint16(off))
	n := nKeys(d)
	copy(d[hdrSize+(i+1)*slotSize:hdrSize+(n+1)*slotSize], d[hdrSize+i*slotSize:hdrSize+n*slotSize])
	setCellOff(d, i, off)
	binary.BigEndian.PutUint16(d[hdrNKeys:], uint16(n+1))
	return true
}

// removeCell deletes cell i (slot shift only; bytes reclaimed on compaction).
func removeCell(d []byte, i int) {
	n := nKeys(d)
	copy(d[hdrSize+i*slotSize:hdrSize+(n-1)*slotSize], d[hdrSize+(i+1)*slotSize:hdrSize+n*slotSize])
	binary.BigEndian.PutUint16(d[hdrNKeys:], uint16(n-1))
}

// compactScratch recycles the page-sized scratch buffer node compaction
// packs live cells into, so page defragmentation does not allocate.
var compactScratch = sync.Pool{New: func() any {
	b := make([]byte, pagestore.PageSize)
	return &b
}}

// compactNode re-packs live cells to eliminate holes from removed or replaced
// cells. Returns true if space was reclaimed.
func compactNode(d []byte) bool {
	n := nKeys(d)
	tb := compactScratch.Get().(*[]byte)
	tmp := *tb
	defer compactScratch.Put(tb)
	w := pagestore.PageSize
	offs := make([]int, n)
	for i := 0; i < n; i++ {
		sz := cellSize(d, i)
		w -= sz
		copy(tmp[w:], d[cellOff(d, i):cellOff(d, i)+sz])
		offs[i] = w
	}
	oldFree := int(binary.BigEndian.Uint16(d[hdrFreePtr:]))
	if oldFree == 0 {
		oldFree = pagestore.PageSize
	}
	if w == oldFree {
		return false
	}
	copy(d[w:], tmp[w:])
	for i := 0; i < n; i++ {
		setCellOff(d, i, offs[i])
	}
	binary.BigEndian.PutUint16(d[hdrFreePtr:], uint16(w))
	return true
}

func leafCell(key, val []byte) []byte {
	cell := make([]byte, 2+len(key)+2+len(val))
	binary.BigEndian.PutUint16(cell, uint16(len(key)))
	copy(cell[2:], key)
	binary.BigEndian.PutUint16(cell[2+len(key):], uint16(len(val)))
	copy(cell[4+len(key):], val)
	return cell
}

func internalCell(key []byte, child pagestore.PageID) []byte {
	cell := make([]byte, 2+len(key)+4)
	binary.BigEndian.PutUint16(cell, uint16(len(key)))
	copy(cell[2:], key)
	binary.BigEndian.PutUint32(cell[2+len(key):], uint32(child))
	return cell
}

// Get returns a copy of the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, err := t.descend(key)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(f, false)
	f.RLock()
	defer f.RUnlock()
	i, exact := search(f.Data, key)
	if !exact {
		return nil, fmt.Errorf("%w: %x", ErrNotFound, key)
	}
	v := leafValue(f.Data, i)
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// descend walks from the root to the leaf for key, returning the pinned leaf.
func (t *Tree) descend(key []byte) (*buffer.Frame, error) {
	pg := t.root
	for {
		f, err := t.pool.Fetch(pg)
		if err != nil {
			return nil, err
		}
		f.RLock()
		if isLeaf(f.Data) {
			f.RUnlock()
			return f, nil
		}
		next := childFor(f.Data, key)
		f.RUnlock()
		t.pool.Unpin(f, false)
		pg = next
	}
}

// maxInternalCell is the worst-case internal cell a child split can push
// into its parent: a separator of MaxKey bytes plus the child pointer.
const maxInternalCell = 2 + MaxKey + 4

// liveFree returns the bytes available for one more cell and its slot after
// compaction — the capacity insertCell can actually reach, counting holes
// left by removed cells as free.
func liveFree(d []byte) int {
	n := nKeys(d)
	used := 0
	for i := 0; i < n; i++ {
		used += cellSize(d, i)
	}
	return pagestore.PageSize - hdrSize - (n+1)*slotSize - used
}

// Put inserts or replaces the value under key.
//
// The insert is a single top-down pass with preemptive splits: any node on
// the path that could not absorb its worst-case insertion is split BEFORE
// the descent continues, so each split only ever touches a parent that is
// guaranteed to have room. The page for a split is allocated before the
// first byte of the tree is modified at that level, which makes Put atomic
// under allocation failure: on a full device it returns the typed no-space
// error with the tree exactly as it was, instead of leaving a child split
// whose separator no ancestor could be given.
func (t *Tree) Put(key, val []byte) error {
	if len(key) > MaxKey || len(val) > MaxValue {
		return fmt.Errorf("%w: key %d, value %d", ErrKeyTooLarge, len(key), len(val))
	}
	leafNeed := 2 + len(key) + 2 + len(val)
	t.mu.Lock()
	defer t.mu.Unlock()

	f, err := t.pool.Fetch(t.root)
	if err != nil {
		return err
	}
	f.RLock()
	need := maxInternalCell
	if isLeaf(f.Data) {
		need = leafNeed
	}
	full := liveFree(f.Data) < need
	f.RUnlock()
	if full {
		if err := t.splitRoot(f); err != nil {
			t.pool.Unpin(f, false)
			return err
		}
		t.pool.Unpin(f, false)
		if f, err = t.pool.Fetch(t.root); err != nil {
			return err
		}
	}

	// Invariant from here: f has room for whatever this pass inserts into it.
	for {
		f.RLock()
		leaf := isLeaf(f.Data)
		var child pagestore.PageID
		if !leaf {
			child = childFor(f.Data, key)
		}
		f.RUnlock()
		if leaf {
			err = t.pool.Modify(f, func(d []byte) error {
				i, exact := search(d, key)
				if exact {
					removeCell(d, i)
				}
				if !insertCell(d, i, leafCell(key, val)) {
					return errors.New("btree: leaf full after preemptive split")
				}
				return nil
			})
			t.pool.Unpin(f, false)
			return err
		}
		cf, err := t.pool.Fetch(child)
		if err != nil {
			t.pool.Unpin(f, false)
			return err
		}
		cf.RLock()
		need := maxInternalCell
		if isLeaf(cf.Data) {
			need = leafNeed
		}
		full := liveFree(cf.Data) < need
		cf.RUnlock()
		if full {
			if err := t.splitChild(f, cf); err != nil {
				t.pool.Unpin(cf, false)
				t.pool.Unpin(f, false)
				return err
			}
			// The separator may route key into the new right sibling.
			f.RLock()
			next := childFor(f.Data, key)
			f.RUnlock()
			if next != cf.ID {
				t.pool.Unpin(cf, false)
				if cf, err = t.pool.Fetch(next); err != nil {
					t.pool.Unpin(f, false)
					return err
				}
			}
		}
		t.pool.Unpin(f, false)
		f = cf
	}
}

// splitPlan captures everything a split writes, read from the left page
// before any mutation so the mutations themselves cannot fail. For a leaf,
// the separator is the right node's first key (copied up); for an internal
// node, the middle key moves up and its child becomes the right node's
// leftmost child.
type splitPlan struct {
	leaf     bool
	mid      int
	sep      []byte
	leftmost pagestore.PageID // internal: the promoted cell's child
	oldLink  pagestore.PageID
	cells    [][]byte // copies of the cells that move right
}

func planSplit(d []byte) (*splitPlan, error) {
	n := nKeys(d)
	if n < 2 {
		return nil, errors.New("btree: cannot split page with fewer than 2 cells")
	}
	p := &splitPlan{leaf: isLeaf(d), mid: n / 2, oldLink: link(d)}
	p.sep = append([]byte(nil), cellKey(d, p.mid)...)
	first := p.mid
	if !p.leaf {
		p.leftmost = childAt(d, p.mid)
		first = p.mid + 1
	}
	for i := first; i < n; i++ {
		off := cellOff(d, i)
		sz := cellSize(d, i)
		p.cells = append(p.cells, append([]byte(nil), d[off:off+sz]...))
	}
	return p, nil
}

func (p *splitPlan) fillRight(rd []byte) error {
	initNode(rd, p.leaf)
	if p.leaf {
		setLink(rd, p.oldLink)
	} else {
		setLink(rd, p.leftmost)
	}
	for i, c := range p.cells {
		if !insertCell(rd, i, c) {
			return errors.New("btree: split target overflow")
		}
	}
	return nil
}

func (p *splitPlan) truncateLeft(d []byte, rightID pagestore.PageID) {
	binary.BigEndian.PutUint16(d[hdrNKeys:], uint16(p.mid))
	compactNode(d)
	if p.leaf {
		setLink(d, rightID)
	}
}

// splitChild splits the full child cf and installs the separator in its
// parent pf, which the preemptive invariant guarantees has room. The right
// page is allocated before any mutation; a failed allocation aborts with
// the tree untouched. The mutations that follow are pure in-page edits —
// no fetches, no allocations — so they cannot fail halfway.
func (t *Tree) splitChild(pf, cf *buffer.Frame) error {
	cf.RLock()
	plan, err := planSplit(cf.Data)
	cf.RUnlock()
	if err != nil {
		return err
	}
	rf, err := t.pool.NewPage()
	if err != nil {
		return fmt.Errorf("btree: split: %w", err)
	}
	rightID := rf.ID
	err = t.pool.Modify(rf, plan.fillRight)
	t.pool.Unpin(rf, false)
	if err != nil {
		return err
	}
	if err := t.pool.Modify(cf, func(d []byte) error {
		plan.truncateLeft(d, rightID)
		return nil
	}); err != nil {
		return err
	}
	return t.pool.Modify(pf, func(pd []byte) error {
		i, _ := search(pd, plan.sep)
		if !insertCell(pd, i, internalCell(plan.sep, rightID)) {
			return errors.New("btree: parent cannot absorb separator")
		}
		return nil
	})
}

// splitRoot splits the full root rootf under a brand-new internal root and
// repoints the meta page. Both pages (right sibling, new root) and the meta
// frame are acquired before any mutation, for the same atomicity as
// splitChild.
func (t *Tree) splitRoot(rootf *buffer.Frame) error {
	rootf.RLock()
	plan, err := planSplit(rootf.Data)
	rootf.RUnlock()
	if err != nil {
		return err
	}
	mf, err := t.pool.Fetch(t.meta)
	if err != nil {
		return err
	}
	rf, err := t.pool.NewPage()
	if err != nil {
		t.pool.Unpin(mf, false)
		return fmt.Errorf("btree: root split: %w", err)
	}
	nrf, err := t.pool.NewPage()
	if err != nil {
		t.pool.Unpin(rf, false)
		t.pool.Unpin(mf, false)
		return fmt.Errorf("btree: root split: %w", err)
	}
	rightID, newRootID, oldRootID := rf.ID, nrf.ID, rootf.ID

	err = t.pool.Modify(rf, plan.fillRight)
	t.pool.Unpin(rf, false)
	if err == nil {
		err = t.pool.Modify(nrf, func(d []byte) error {
			initNode(d, false)
			setLink(d, oldRootID)
			if !insertCell(d, 0, internalCell(plan.sep, rightID)) {
				return errors.New("btree: root cell does not fit")
			}
			return nil
		})
	}
	t.pool.Unpin(nrf, false)
	if err == nil {
		err = t.pool.Modify(rootf, func(d []byte) error {
			plan.truncateLeft(d, rightID)
			return nil
		})
	}
	if err == nil {
		err = t.pool.Modify(mf, func(d []byte) error {
			binary.BigEndian.PutUint32(d[8:12], uint32(newRootID))
			return nil
		})
	}
	t.pool.Unpin(mf, false)
	if err != nil {
		return err
	}
	t.root = newRootID
	return nil
}

// Delete removes key from the tree. Underflowing nodes are not merged (lazy
// deletion, as in many production systems' online path).
func (t *Tree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := t.descend(key)
	if err != nil {
		return err
	}
	found := false
	err = t.pool.Modify(f, func(d []byte) error {
		i, exact := search(d, key)
		if !exact {
			return nil
		}
		found = true
		removeCell(d, i)
		return nil
	})
	t.pool.Unpin(f, false)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %x", ErrNotFound, key)
	}
	return nil
}

// Entry is one key/value pair returned by a scan.
type Entry struct {
	Key   []byte
	Value []byte
}

// Scan visits entries with key in [from, to) in ascending order (nil from =
// from the start; nil to = to the end) and calls fn for each. fn returning
// false stops the scan. The tree is read-locked for the duration; fn must
// not call writers on the same tree.
func (t *Tree) Scan(from, to []byte, fn func(e Entry) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var f *buffer.Frame
	var err error
	if from == nil {
		f, err = t.leftmostLeaf()
	} else {
		f, err = t.descend(from)
	}
	if err != nil {
		return err
	}
	i := 0
	if from != nil {
		f.RLock()
		i, _ = search(f.Data, from)
		f.RUnlock()
	}
	for {
		f.RLock()
		n := nKeys(f.Data)
		for ; i < n; i++ {
			k := cellKey(f.Data, i)
			if to != nil && bytes.Compare(k, to) >= 0 {
				f.RUnlock()
				t.pool.Unpin(f, false)
				return nil
			}
			e := Entry{Key: append([]byte(nil), k...), Value: append([]byte(nil), leafValue(f.Data, i)...)}
			if !fn(e) {
				f.RUnlock()
				t.pool.Unpin(f, false)
				return nil
			}
		}
		next := link(f.Data)
		f.RUnlock()
		t.pool.Unpin(f, false)
		if next == pagestore.InvalidPage {
			return nil
		}
		f, err = t.pool.Fetch(next)
		if err != nil {
			return err
		}
		i = 0
	}
}

// Ceiling returns the smallest entry with key >= from, or ErrNotFound.
// This is the NodeID-index primitive: the paper finds a node's record by
// searching for the successor entry among interval upper endpoints (§3.4).
func (t *Tree) Ceiling(from []byte) (Entry, error) {
	var out Entry
	found := false
	err := t.Scan(from, nil, func(e Entry) bool {
		out = e
		found = true
		return false
	})
	if err != nil {
		return Entry{}, err
	}
	if !found {
		return Entry{}, fmt.Errorf("%w: no key >= %x", ErrNotFound, from)
	}
	return out, nil
}

func (t *Tree) leftmostLeaf() (*buffer.Frame, error) {
	pg := t.root
	for {
		f, err := t.pool.Fetch(pg)
		if err != nil {
			return nil, err
		}
		f.RLock()
		if isLeaf(f.Data) {
			f.RUnlock()
			return f, nil
		}
		next := link(f.Data)
		f.RUnlock()
		t.pool.Unpin(f, false)
		pg = next
	}
}

// Count returns the number of entries (full scan; for stats and tests).
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.Scan(nil, nil, func(Entry) bool { n++; return true })
	return n, err
}

// Height returns the tree height (leaf = 1).
func (t *Tree) Height() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h := 1
	pg := t.root
	for {
		f, err := t.pool.Fetch(pg)
		if err != nil {
			return 0, err
		}
		f.RLock()
		leaf := isLeaf(f.Data)
		next := link(f.Data)
		f.RUnlock()
		t.pool.Unpin(f, false)
		if leaf {
			return h, nil
		}
		h++
		pg = next
	}
}
