package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rx/internal/buffer"
	"rx/internal/pagestore"
)

func newTree(t testing.TB, capacity int) *Tree {
	t.Helper()
	pool := buffer.New(pagestore.NewMemStore(), capacity)
	tr, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestPutGet(t *testing.T) {
	tr := newTree(t, 64)
	if err := tr.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Get([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "1" {
		t.Errorf("got %q", v)
	}
	if _, err := tr.Get([]byte("beta")); err == nil {
		t.Error("missing key should fail")
	}
}

func TestPutReplace(t *testing.T) {
	tr := newTree(t, 64)
	tr.Put([]byte("k"), []byte("v1"))
	tr.Put([]byte("k"), []byte("v2-longer"))
	v, err := tr.Get([]byte("k"))
	if err != nil || string(v) != "v2-longer" {
		t.Fatalf("got %q, %v", v, err)
	}
	n, _ := tr.Count()
	if n != 1 {
		t.Errorf("count = %d, want 1", n)
	}
}

func TestManyKeysSplits(t *testing.T) {
	tr := newTree(t, 256)
	const N = 20000
	perm := rand.New(rand.NewSource(1)).Perm(N)
	for _, i := range perm {
		if err := tr.Put(key(i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Errorf("expected height >= 2 after %d inserts, got %d", N, h)
	}
	for i := 0; i < N; i++ {
		v, err := tr.Get(key(i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %d: got %q", i, v)
		}
	}
	n, _ := tr.Count()
	if n != N {
		t.Errorf("count = %d, want %d", n, N)
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := newTree(t, 256)
	rng := rand.New(rand.NewSource(2))
	keys := map[string]string{}
	for i := 0; i < 3000; i++ {
		k := make([]byte, 1+rng.Intn(300))
		rng.Read(k)
		v := fmt.Sprintf("v%d", i)
		keys[string(k)] = v
		if err := tr.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range keys {
		got, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatalf("%x: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("%x: got %q want %q", k, got, v)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	tr := newTree(t, 256)
	const N = 5000
	perm := rand.New(rand.NewSource(3)).Perm(N)
	for _, i := range perm {
		tr.Put(key(i), key(i))
	}
	var prev []byte
	n := 0
	err := tr.Scan(nil, nil, func(e Entry) bool {
		if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
			t.Fatalf("scan out of order at %x", e.Key)
		}
		prev = append(prev[:0], e.Key...)
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != N {
		t.Errorf("scan saw %d, want %d", n, N)
	}
}

func TestScanRange(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 1000; i++ {
		tr.Put(key(i), nil)
	}
	var got []int
	err := tr.Scan(key(100), key(110), func(e Entry) bool {
		got = append(got, int(binary.BigEndian.Uint64(e.Key)))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 100 || got[9] != 109 {
		t.Errorf("range scan = %v", got)
	}
	// Early stop.
	n := 0
	tr.Scan(nil, nil, func(e Entry) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop at %d", n)
	}
}

func TestCeiling(t *testing.T) {
	tr := newTree(t, 256)
	for i := 0; i < 1000; i += 10 {
		tr.Put(key(i), []byte(fmt.Sprint(i)))
	}
	e, err := tr.Ceiling(key(95))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(e.Key); got != 100 {
		t.Errorf("Ceiling(95) = %d, want 100", got)
	}
	e, err = tr.Ceiling(key(100))
	if err != nil || binary.BigEndian.Uint64(e.Key) != 100 {
		t.Errorf("Ceiling(100) = %v, %v", e, err)
	}
	if _, err := tr.Ceiling(key(991)); err == nil {
		t.Error("Ceiling past end should fail")
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 256)
	const N = 2000
	for i := 0; i < N; i++ {
		tr.Put(key(i), key(i))
	}
	for i := 0; i < N; i += 2 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < N; i++ {
		_, err := tr.Get(key(i))
		if i%2 == 0 && err == nil {
			t.Fatalf("key %d should be deleted", i)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("key %d should remain: %v", i, err)
		}
	}
	if err := tr.Delete(key(0)); err == nil {
		t.Error("double delete should fail")
	}
	n, _ := tr.Count()
	if n != N/2 {
		t.Errorf("count = %d, want %d", n, N/2)
	}
}

func TestOpenExisting(t *testing.T) {
	pool := buffer.New(pagestore.NewMemStore(), 256)
	tr, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		tr.Put(key(i), key(i*2))
	}
	tr2, err := Open(pool, tr.MetaPage())
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr2.Get(key(4321))
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(v) != 8642 {
		t.Errorf("got %x", v)
	}
}

func TestSizeLimits(t *testing.T) {
	tr := newTree(t, 64)
	if err := tr.Put(make([]byte, MaxKey+1), nil); err == nil {
		t.Error("oversized key should fail")
	}
	if err := tr.Put([]byte("k"), make([]byte, MaxValue+1)); err == nil {
		t.Error("oversized value should fail")
	}
	if err := tr.Put(make([]byte, MaxKey), make([]byte, MaxValue)); err != nil {
		t.Errorf("max-size entry should fit: %v", err)
	}
}

// Property: the tree agrees with a sorted map oracle under random interleaved
// put/delete, and iteration order is sorted.
func TestOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newTree(t, 512)
		oracle := map[string]string{}
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("key-%05d", rng.Intn(500))
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("val-%d", op)
				oracle[k] = v
				if err := tr.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
			case 2:
				if _, ok := oracle[k]; ok {
					delete(oracle, k)
					if err := tr.Delete([]byte(k)); err != nil {
						return false
					}
				}
			}
		}
		var want []string
		for k := range oracle {
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		err := tr.Scan(nil, nil, func(e Entry) bool {
			got = append(got, string(e.Key))
			if oracle[string(e.Key)] != string(e.Value) {
				t.Logf("value mismatch for %s", e.Key)
				return false
			}
			return true
		})
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := newTree(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(key(i), key(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := newTree(b, 4096)
	const N = 100000
	for i := 0; i < N; i++ {
		tr.Put(key(i), key(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(key(i % N)); err != nil {
			b.Fatal(err)
		}
	}
}
