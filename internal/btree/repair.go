package btree

// Repair support for the scrub subsystem: enumerate the pages a tree owns
// (so corruption can be attributed to a specific index) and reset a tree to
// empty in place (so a corrupt index can be rebuilt from its base data
// without changing the tree's durable identity, its meta page — no catalog
// update and no unsynchronized pointer swap in open handles).

import (
	"encoding/binary"

	"rx/internal/pagestore"
)

// nodeChildren extracts the child pointers of an internal node image with
// bounds validation: on a checksummed store a readable page is exactly what
// was written, but without checksums a garbage page must yield a short list,
// not a panic.
func nodeChildren(d []byte) []pagestore.PageID {
	if isLeaf(d) {
		return nil
	}
	kids := []pagestore.PageID{link(d)}
	n := nKeys(d)
	if n > (pagestore.PageSize-hdrSize)/slotSize {
		return kids
	}
	for i := 0; i < n; i++ {
		off := cellOff(d, i)
		if off < hdrSize || off+2 > pagestore.PageSize {
			continue
		}
		kl := int(binary.BigEndian.Uint16(d[off:]))
		if off+2+kl+4 > pagestore.PageSize {
			continue
		}
		kids = append(kids, pagestore.PageID(binary.BigEndian.Uint32(d[off+2+kl:])))
	}
	return kids
}

// Pages enumerates every page the tree owns: the meta page, the root, and
// all descendants. The walk is fault-tolerant: an unreadable page is still
// listed (it belongs to the tree) but its children cannot be discovered, so
// pages below it leak out of the enumeration; the first read error is
// returned alongside the partial list. Children pointing outside the store
// (possible only with corruption on a non-checksummed stack) are dropped.
func (t *Tree) Pages() ([]pagestore.PageID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	limit := t.pool.Store().NumPages()
	pages := []pagestore.PageID{t.meta}
	var firstErr error
	seen := map[pagestore.PageID]bool{t.meta: true, t.root: true}
	queue := []pagestore.PageID{t.root}
	for len(queue) > 0 {
		pg := queue[0]
		queue = queue[1:]
		pages = append(pages, pg)
		f, err := t.pool.Fetch(pg)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		f.RLock()
		kids := nodeChildren(f.Data)
		f.RUnlock()
		t.pool.Unpin(f, false)
		for _, k := range kids {
			if k == pagestore.InvalidPage || k >= limit || seen[k] {
				continue
			}
			seen[k] = true
			queue = append(queue, k)
		}
	}
	return pages, firstErr
}

// Reset reinitializes the tree to empty with a fresh leaf root, abandoning
// all existing nodes. The meta page is rewritten even if its current
// contents are unreadable (repair of a corrupt meta page). Abandoned pages
// are not reclaimed; repair zero-reformats the ones that fail verification.
func (t *Tree) Reset() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	rf, err := t.pool.NewPage()
	if err != nil {
		return err
	}
	err = t.pool.Modify(rf, func(d []byte) error {
		initNode(d, true)
		return nil
	})
	rootID := rf.ID
	t.pool.Unpin(rf, false)
	if err != nil {
		return err
	}
	mf, err := t.pool.Fetch(t.meta)
	if err != nil {
		mf, err = t.pool.FetchZeroed(t.meta)
		if err != nil {
			return err
		}
	}
	err = t.pool.Modify(mf, func(d []byte) error {
		for i := 8; i < len(d); i++ {
			d[i] = 0
		}
		binary.BigEndian.PutUint32(d[8:12], uint32(rootID))
		return nil
	})
	t.pool.Unpin(mf, false)
	if err != nil {
		return err
	}
	t.root = rootID
	return nil
}
