// Package buffer implements the buffer manager: a fixed-capacity pool of
// page frames over a pagestore.Store with pinning, LRU replacement and
// write-back of dirty pages. It is part of the relational data-management
// infrastructure the XML engine reuses unchanged (Figure 1 of the paper):
// packed XML records live on the same buffered pages as relational rows.
//
// Write-ahead logging is integrated through FlushLSN: before a dirty page is
// evicted or flushed, the pool asks the log to be durable up to the page's
// LSN.
//
// Concurrency: the pool is safe for concurrent readers and writers. The
// frame table and LRU are partitioned into shards keyed by PageID; each
// shard's mutex guards its frame table, pin counts and LRU list, and each
// frame carries its own latch guarding Data. Lock order is one shard mutex
// → frame latch (never the reverse, and never two shard mutexes): a miss
// fills the frame under its exclusive latch so concurrent fetchers of the
// same page block until the read completes, and write-back latches the
// frame in shared mode so a concurrent Modify can never tear the page
// image being written out.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rx/internal/pagestore"
	"rx/internal/rxerr"
)

// LSN is a log sequence number. The buffer pool treats it opaquely.
type LSN uint64

// Frame is a pinned page in the pool. Callers read and write Data under the
// frame latch and must Unpin when done, marking the frame dirty if modified.
type Frame struct {
	ID pagestore.PageID
	// Data is the page contents; valid while the frame is pinned.
	Data []byte

	mu      sync.RWMutex
	loadErr error // set under mu by the filling Fetch; nil once loaded
	dirty   atomic.Bool
	pageLSN atomic.Uint64
	// pins and lruElem are guarded by the pool mutex.
	pins    int
	lruElem *list.Element
}

// Lock acquires the frame's exclusive latch (for writers).
func (f *Frame) Lock() { f.mu.Lock() }

// Unlock releases the exclusive latch.
func (f *Frame) Unlock() { f.mu.Unlock() }

// RLock acquires the frame's shared latch (for readers).
func (f *Frame) RLock() { f.mu.RLock() }

// RUnlock releases the shared latch.
func (f *Frame) RUnlock() { f.mu.RUnlock() }

// SetLSN records the LSN of the last log record describing a change to this
// page; the pool will not write the page out before the log is flushed past
// it.
func (f *Frame) SetLSN(l LSN) {
	for {
		cur := f.pageLSN.Load()
		if uint64(l) <= cur || f.pageLSN.CompareAndSwap(cur, uint64(l)) {
			return
		}
	}
}

// PageRun is one changed byte range of a page mutation; Before and After
// have equal length.
type PageRun struct {
	Off           int
	Before, After []byte
}

// PageLogger receives physiological redo records for page mutations made
// through Pool.Modify. Implemented by the WAL; nil disables logging.
type PageLogger interface {
	// LogPageDelta records that page id changed at [off, off+len(after)) from
	// before to after, returning the record's LSN.
	LogPageDelta(id pagestore.PageID, off int, before, after []byte) (LSN, error)
	// LogPageDeltas records every changed run of ONE page mutation as a
	// single log record, returning its LSN. The grouping is a correctness
	// requirement, not an optimization: a flush may tear between records,
	// and recovery must never reconstruct a page that is halfway through a
	// Modify (say, a B+tree header counting a cell whose bytes never made
	// the log). One record is atomic under the log's checksum framing — it
	// is either entirely durable or entirely discarded.
	LogPageDeltas(id pagestore.PageID, runs []PageRun) (LSN, error)
}

// Pool is a buffer pool of page frames, partitioned into shards so that
// concurrent fetchers of unrelated pages do not serialize on one mutex. A
// page's shard is fixed by its PageID; each shard owns a frame table and an
// LRU list under its own mutex. Capacity is global: a shard that has no
// local victim steals one from another shard (never holding two shard
// mutexes at once), so ErrPoolFull means every frame in the whole pool is
// pinned, exactly as with the unsharded pool.
type Pool struct {
	store  pagestore.Store
	logger PageLogger
	// flushLSN, when non-nil, is called before writing out a dirty page to
	// guarantee WAL durability up to the page's LSN.
	flushLSN func(LSN) error

	// retryAttempts bounds extra write-back attempts after a store write
	// error; retryBase is the first backoff (doubled per attempt).
	retryAttempts int
	retryBase     time.Duration

	capacity int
	shards   []*shard
	mask     uint32       // len(shards)-1; shard count is a power of two
	resident atomic.Int64 // frames currently installed, across all shards

	// pinned counts frames with at least one pin; pinnedHW is its high-water
	// mark since the pool was created. Zero-copy reads hold pins for the
	// lifetime of a borrowed record, so a pinned-frame count approaching
	// capacity is the first symptom of a pin leak (DB.Stats surfaces both).
	pinned   atomic.Int64
	pinnedHW atomic.Int64

	writeRetries atomic.Uint64
}

// notePinned records a frame's 0→1 pin transition and advances the
// high-water mark.
func (p *Pool) notePinned() {
	n := p.pinned.Add(1)
	for {
		hw := p.pinnedHW.Load()
		if n <= hw || p.pinnedHW.CompareAndSwap(hw, n) {
			return
		}
	}
}

// shard is one partition of the pool: a frame table plus the LRU list of
// its unpinned frames, under a dedicated mutex.
type shard struct {
	mu     sync.Mutex
	frames map[pagestore.PageID]*Frame
	lru    *list.List // unpinned frames, front = least recently used

	// statistics, guarded by mu
	hits, misses, evictions, writeBacks uint64
}

// ErrPoolFull reports that every frame is pinned and no page can be evicted.
var ErrPoolFull = errors.New("buffer: all frames pinned")

// New creates a pool of the given capacity (in pages) over store, with the
// default shard count: 2*GOMAXPROCS rounded up to a power of two, capped at
// 64 and never exceeding the capacity.
func New(store pagestore.Store, capacity int) *Pool {
	return NewSharded(store, capacity, 0)
}

// NewSharded creates a pool with an explicit shard count (rounded up to a
// power of two; 0 selects the default).
func NewSharded(store pagestore.Store, capacity, shards int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = 2 * runtime.GOMAXPROCS(0)
		if shards > 64 {
			shards = 64
		}
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for n > capacity {
		n >>= 1
	}
	if n < 1 {
		n = 1
	}
	p := &Pool{
		store:         store,
		capacity:      capacity,
		shards:        make([]*shard, n),
		mask:          uint32(n - 1),
		retryAttempts: 2,
		retryBase:     200 * time.Microsecond,
	}
	per := capacity/n + 1
	for i := range p.shards {
		p.shards[i] = &shard{
			frames: make(map[pagestore.PageID]*Frame, per),
			lru:    list.New(),
		}
	}
	return p
}

// shardOf maps a page to its owning shard. Identity-mod keeps neighbouring
// pages in different shards (sequential scans spread out) and is
// deterministic across runs.
func (p *Pool) shardOf(id pagestore.PageID) *shard {
	return p.shards[uint32(id)&p.mask]
}

// ShardCount reports how many shards the pool was built with.
func (p *Pool) ShardCount() int { return len(p.shards) }

// SetWriteRetry tunes write-back retries: up to attempts extra tries after
// a store write error, sleeping base, 2*base, ... between them. attempts 0
// disables retrying. Must be called before concurrent use.
func (p *Pool) SetWriteRetry(attempts int, base time.Duration) {
	p.retryAttempts = attempts
	p.retryBase = base
}

// SetFlushLSN installs the WAL flush hook. Must be called before concurrent
// use.
func (p *Pool) SetFlushLSN(fn func(LSN) error) { p.flushLSN = fn }

// SetLogger installs the page-delta logger (the WAL). Must be called before
// concurrent use. With no logger, Modify skips the before-image copy.
func (p *Pool) SetLogger(l PageLogger) { p.logger = l }

// Modify applies a mutation to the frame under its exclusive latch, logs the
// resulting page delta to the attached logger, stamps the page LSN into
// bytes [0,8) of the page (all page layouts in this system reserve them),
// and marks the frame dirty. If fn leaves the page unchanged, nothing is
// logged and the frame stays clean. The frame remains pinned; callers still
// Unpin (dirtiness is already recorded, so Unpin(f, false) is fine).
func (p *Pool) Modify(f *Frame, fn func(data []byte) error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p.logger == nil {
		if err := fn(f.Data); err != nil {
			return err
		}
		f.dirty.Store(true)
		return nil
	}
	var before [pagestore.PageSize]byte
	copy(before[:], f.Data)
	if err := fn(f.Data); err != nil {
		copy(f.Data, before[:]) // roll the page back; mutation failed
		return err
	}
	runs := diffRuns(before[:], f.Data)
	if len(runs) == 0 {
		return nil // no change
	}
	// All of the mutation's changed runs go into ONE log record (see
	// PageLogger.LogPageDeltas): record framing is the torn-flush atomicity
	// boundary, so a page recovered from the log is always at a Modify
	// boundary, never halfway through one.
	var lsn LSN
	var err error
	if len(runs) == 1 {
		r := runs[0]
		lsn, err = p.logger.LogPageDelta(f.ID, r.lo, before[r.lo:r.hi], f.Data[r.lo:r.hi])
	} else {
		prs := make([]PageRun, len(runs))
		for i, r := range runs {
			prs[i] = PageRun{Off: r.lo, Before: before[r.lo:r.hi], After: f.Data[r.lo:r.hi]}
		}
		lsn, err = p.logger.LogPageDeltas(f.ID, prs)
	}
	if err != nil {
		return err
	}
	putLSN(f.Data, lsn)
	f.SetLSN(lsn)
	f.dirty.Store(true)
	return nil
}

// putLSN stamps the page LSN into the layout-reserved first 8 bytes.
func putLSN(d []byte, l LSN) {
	d[0] = byte(l >> 56)
	d[1] = byte(l >> 48)
	d[2] = byte(l >> 40)
	d[3] = byte(l >> 32)
	d[4] = byte(l >> 24)
	d[5] = byte(l >> 16)
	d[6] = byte(l >> 8)
	d[7] = byte(l)
}

// PageLSN reads the LSN stamped by Modify into a page image.
func PageLSN(d []byte) LSN {
	return LSN(d[0])<<56 | LSN(d[1])<<48 | LSN(d[2])<<40 | LSN(d[3])<<32 |
		LSN(d[4])<<24 | LSN(d[5])<<16 | LSN(d[6])<<8 | LSN(d[7])
}

// diffRange returns the smallest [lo, hi) covering all differing bytes, or
// (-1, -1) if the buffers are identical. The LSN field [0,8) is excluded:
// it is maintained by the logging machinery itself.
func diffRange(a, b []byte) (int, int) {
	lo := 8
	for lo < len(a) && a[lo] == b[lo] {
		lo++
	}
	if lo == len(a) {
		return -1, -1
	}
	hi := len(a)
	for hi > lo && a[hi-1] == b[hi-1] {
		hi--
	}
	return lo, hi
}

// diffGapMin is the unchanged-byte stretch that splits a delta into separate
// runs. Below it, the per-record framing overhead outweighs the bytes saved;
// above it, logging the gap is pure write amplification. The slotted page
// layouts make the amplification severe: an insert touches the header/slot
// array near the page start and cell content near the free-space pointer, so
// a single covering range drags the untouched free space in the middle —
// frequently kilobytes — into every before/after image.
const diffGapMin = 64

// byteRun is one changed region of a page.
type byteRun struct{ lo, hi int }

// diffRuns returns the changed regions of the page as maximal runs, merging
// runs separated by fewer than diffGapMin unchanged bytes. The LSN field
// [0,8) is excluded, as in diffRange.
func diffRuns(a, b []byte) []byteRun {
	var runs []byteRun
	i := 8
	for {
		for i < len(a) && a[i] == b[i] {
			i++
		}
		if i == len(a) {
			return runs
		}
		lo := i
		// Extend the run, absorbing unchanged gaps shorter than diffGapMin.
		hi := i + 1
		for j := hi; j < len(a); j++ {
			if a[j] != b[j] {
				hi = j + 1
			} else if j-hi >= diffGapMin {
				break
			}
		}
		runs = append(runs, byteRun{lo: lo, hi: hi})
		i = hi
	}
}

// Fetch pins the page in the pool, reading it from the store on a miss.
// On a miss the store read happens under the frame's exclusive latch, so a
// concurrent Fetch of the same page returns only after the data is valid.
func (p *Pool) Fetch(id pagestore.PageID) (*Frame, error) {
	s := p.shardOf(id)
	f, hit, err := p.frameFor(s, id)
	if err != nil {
		return nil, err
	}
	if hit {
		s.hits++
		s.mu.Unlock()
		// Wait out a concurrent loader: the filling Fetch holds the
		// exclusive latch until the store read completes.
		f.mu.RLock()
		lerr := f.loadErr
		f.mu.RUnlock()
		if lerr != nil {
			p.Unpin(f, false)
			return nil, lerr
		}
		return f, nil
	}
	s.misses++
	// Latch before publishing the release of s.mu: the frame is already in
	// the map, but no other goroutine can have reached it yet, so this
	// cannot block. Concurrent fetchers will queue on the latch above.
	f.mu.Lock()
	s.mu.Unlock()
	err = p.store.ReadPage(id, f.Data)
	f.loadErr = err
	f.mu.Unlock()
	if err != nil {
		s.mu.Lock()
		if s.frames[id] == f {
			delete(s.frames, id)
			p.resident.Add(-1)
		}
		f.pins--
		if f.pins == 0 {
			p.pinned.Add(-1)
		}
		s.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// FetchZeroed pins the page with an all-zero image, installing the frame
// without reading the store. This is the repair path for a page whose
// on-disk image is unreadable (checksum failure): Fetch would fail, but the
// repairer needs a frame to reformat. The frame is marked dirty so the new
// image is written back, refreshing the page's sidecar checksum.
func (p *Pool) FetchZeroed(id pagestore.PageID) (*Frame, error) {
	s := p.shardOf(id)
	f, hit, err := p.frameFor(s, id)
	if err != nil {
		return nil, err
	}
	if hit {
		s.mu.Unlock()
		f.mu.Lock()
		for i := range f.Data {
			f.Data[i] = 0
		}
		f.loadErr = nil
		f.mu.Unlock()
		f.dirty.Store(true)
		return f, nil
	}
	f.dirty.Store(true)
	s.mu.Unlock()
	return f, nil
}

// NewPage allocates a fresh zeroed page in the store and returns it pinned.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	s := p.shardOf(id)
	f, _, err := p.frameFor(s, id)
	if err != nil {
		return nil, err
	}
	s.mu.Unlock()
	return f, nil
}

// frameFor returns a pinned frame for id in its shard: either the existing
// one (hit=true, possibly still being filled by a concurrent Fetch) or a
// freshly installed, not-yet-filled one (hit=false). On success s.mu is
// HELD on return — the caller publishes the release. Capacity is enforced
// globally: the shard evicts its own LRU victim first and steals one from
// a sibling shard when it has none, temporarily dropping s.mu (so the
// frame-table lookup is re-run after every steal).
func (p *Pool) frameFor(s *shard, id pagestore.PageID) (*Frame, bool, error) {
	s.mu.Lock()
	for {
		if f, ok := s.frames[id]; ok {
			p.pinLocked(s, f)
			return f, true, nil
		}
		if int(p.resident.Load()) < p.capacity {
			break
		}
		if s.lru.Len() > 0 {
			if err := p.evictLocked(s); err != nil {
				s.mu.Unlock()
				return nil, false, err
			}
			continue
		}
		// No local victim. Steal one from a sibling shard — never holding
		// two shard mutexes at once (the uniform lock order "one shard at a
		// time" is what makes cross-shard eviction deadlock-free).
		s.mu.Unlock()
		stole, err := p.evictOther(s)
		if err != nil {
			return nil, false, err
		}
		if !stole {
			return nil, false, fmt.Errorf("%w (capacity %d)", ErrPoolFull, p.capacity)
		}
		s.mu.Lock()
	}
	f := &Frame{ID: id, Data: make([]byte, pagestore.PageSize), pins: 1}
	p.notePinned()
	s.frames[id] = f
	p.resident.Add(1)
	return f, false, nil
}

// pinLocked pins an existing frame, removing it from the shard's LRU list.
func (p *Pool) pinLocked(s *shard, f *Frame) {
	f.pins++
	if f.pins == 1 {
		p.notePinned()
	}
	if f.lruElem != nil {
		s.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
}

// evictLocked writes back and removes the shard's least recently used
// unpinned frame. Called with s.mu held.
func (p *Pool) evictLocked(s *shard) error {
	e := s.lru.Front()
	if e == nil {
		return fmt.Errorf("%w (capacity %d)", ErrPoolFull, p.capacity)
	}
	f := e.Value.(*Frame)
	if f.dirty.Load() {
		if err := p.writeBack(f); err != nil {
			return err
		}
		s.writeBacks++
	}
	s.lru.Remove(e)
	f.lruElem = nil
	// A failed load may have replaced this ID's map entry with a newer
	// frame; only remove the entry (and release its capacity slot) if it is
	// still ours.
	if s.frames[f.ID] == f {
		delete(s.frames, f.ID)
		p.resident.Add(-1)
	}
	s.evictions++
	return nil
}

// evictOther evicts one frame from any sibling shard with an unpinned
// victim, in deterministic shard order. Returns false if no sibling has one.
func (p *Pool) evictOther(exclude *shard) (bool, error) {
	for _, t := range p.shards {
		if t == exclude {
			continue
		}
		t.mu.Lock()
		if t.lru.Len() == 0 {
			t.mu.Unlock()
			continue
		}
		err := p.evictLocked(t)
		t.mu.Unlock()
		if err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// writeBack flushes f's contents to the store, honoring WAL ordering.
// Called with f's shard mutex held; takes the frame latch in shared mode so
// a concurrent Modify cannot tear the image being written (Modify never
// takes shard mutexes, so the shard → frame order here cannot deadlock).
// The dirty bit is cleared before the write: a Modify that lands mid-flight
// re-marks the frame dirty and the page is simply written again later.
func (p *Pool) writeBack(f *Frame) error {
	f.dirty.Store(false)
	f.mu.RLock()
	if lsn := LSN(f.pageLSN.Load()); p.flushLSN != nil && lsn > 0 {
		if err := p.flushLSN(lsn); err != nil {
			f.mu.RUnlock()
			f.dirty.Store(true)
			return err
		}
	}
	err := p.store.WritePage(f.ID, f.Data)
	// Bounded retry with backoff: transient write-back errors (a busy or
	// briefly failing device) should not fail an eviction or checkpoint.
	// Page-range and no-space errors are persistent (a full disk does not
	// clear in microseconds) and never retried here — the caller surfaces
	// them so the engine can degrade instead of spinning.
	for attempt := 0; err != nil && attempt < p.retryAttempts &&
		!errors.Is(err, pagestore.ErrPageRange) &&
		!errors.Is(err, rxerr.ErrNoSpace); attempt++ {
		time.Sleep(p.retryBase << attempt)
		p.writeRetries.Add(1)
		err = p.store.WritePage(f.ID, f.Data)
	}
	f.mu.RUnlock()
	if err != nil {
		f.dirty.Store(true)
		return err
	}
	return nil
}

// Unpin releases one pin on the frame; dirty marks the page modified.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	if dirty {
		f.dirty.Store(true)
	}
	s := p.shardOf(f.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	f.pins--
	if f.pins < 0 {
		panic("buffer: unpin of unpinned frame")
	}
	if f.pins == 0 {
		p.pinned.Add(-1)
		if f.lruElem == nil {
			f.lruElem = s.lru.PushBack(f)
		}
	}
}

// FlushAll writes back every dirty frame (pinned or not) in global page
// order — deterministic I/O sequencing matters for reproducing fault
// schedules — and syncs the store.
func (p *Pool) FlushAll() error {
	var ids []pagestore.PageID
	for _, s := range p.shards {
		s.mu.Lock()
		for id, f := range s.frames {
			if f.dirty.Load() {
				ids = append(ids, id)
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		s := p.shardOf(id)
		s.mu.Lock()
		if f, ok := s.frames[id]; ok && f.dirty.Load() {
			if err := p.writeBack(f); err != nil {
				s.mu.Unlock()
				return err
			}
			s.writeBacks++
		}
		s.mu.Unlock()
	}
	return p.store.Sync()
}

// Stats is a point-in-time snapshot of the pool's counters and occupancy.
type Stats struct {
	Hits, Misses, Evictions uint64
	WriteBacks              uint64 // dirty pages written to the store
	WriteRetries            uint64 // write-back attempts retried after errors
	Shards                  int
	Capacity                int
	Resident                int   // frames currently installed
	Pinned                  int   // frames with at least one pin right now
	PinnedHighWater         int   // peak simultaneously pinned frames
	ShardOccupancy          []int // resident frames per shard
}

// Stats reports the pool's counters, summed across shards, plus per-shard
// occupancy.
func (p *Pool) Stats() Stats {
	st := Stats{
		Shards:          len(p.shards),
		Capacity:        p.capacity,
		WriteRetries:    p.writeRetries.Load(),
		Pinned:          int(p.pinned.Load()),
		PinnedHighWater: int(p.pinnedHW.Load()),
		ShardOccupancy:  make([]int, len(p.shards)),
	}
	for i, s := range p.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.WriteBacks += s.writeBacks
		st.ShardOccupancy[i] = len(s.frames)
		st.Resident += len(s.frames)
		s.mu.Unlock()
	}
	return st
}

// WriteRetries reports how many write-back attempts were retried after a
// transient store error.
func (p *Pool) WriteRetries() uint64 {
	return p.writeRetries.Load()
}

// Store exposes the underlying page store (for allocation-size queries).
func (p *Pool) Store() pagestore.Store { return p.store }
