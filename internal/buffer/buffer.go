// Package buffer implements the buffer manager: a fixed-capacity pool of
// page frames over a pagestore.Store with pinning, LRU replacement and
// write-back of dirty pages. It is part of the relational data-management
// infrastructure the XML engine reuses unchanged (Figure 1 of the paper):
// packed XML records live on the same buffered pages as relational rows.
//
// Write-ahead logging is integrated through FlushLSN: before a dirty page is
// evicted or flushed, the pool asks the log to be durable up to the page's
// LSN.
//
// Concurrency: the pool is safe for concurrent readers and writers. The
// pool mutex guards the frame table, pin counts and the LRU list; each
// frame carries its own latch guarding Data. Lock order is pool mutex →
// frame latch (never the reverse): a miss fills the frame under its
// exclusive latch so concurrent fetchers of the same page block until the
// read completes, and write-back latches the frame in shared mode so a
// concurrent Modify can never tear the page image being written out.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rx/internal/pagestore"
)

// LSN is a log sequence number. The buffer pool treats it opaquely.
type LSN uint64

// Frame is a pinned page in the pool. Callers read and write Data under the
// frame latch and must Unpin when done, marking the frame dirty if modified.
type Frame struct {
	ID pagestore.PageID
	// Data is the page contents; valid while the frame is pinned.
	Data []byte

	mu      sync.RWMutex
	loadErr error // set under mu by the filling Fetch; nil once loaded
	dirty   atomic.Bool
	pageLSN atomic.Uint64
	// pins and lruElem are guarded by the pool mutex.
	pins    int
	lruElem *list.Element
}

// Lock acquires the frame's exclusive latch (for writers).
func (f *Frame) Lock() { f.mu.Lock() }

// Unlock releases the exclusive latch.
func (f *Frame) Unlock() { f.mu.Unlock() }

// RLock acquires the frame's shared latch (for readers).
func (f *Frame) RLock() { f.mu.RLock() }

// RUnlock releases the shared latch.
func (f *Frame) RUnlock() { f.mu.RUnlock() }

// SetLSN records the LSN of the last log record describing a change to this
// page; the pool will not write the page out before the log is flushed past
// it.
func (f *Frame) SetLSN(l LSN) {
	for {
		cur := f.pageLSN.Load()
		if uint64(l) <= cur || f.pageLSN.CompareAndSwap(cur, uint64(l)) {
			return
		}
	}
}

// PageLogger receives physiological redo records for page mutations made
// through Pool.Modify. Implemented by the WAL; nil disables logging.
type PageLogger interface {
	// LogPageDelta records that page id changed at [off, off+len(after)) from
	// before to after, returning the record's LSN.
	LogPageDelta(id pagestore.PageID, off int, before, after []byte) (LSN, error)
}

// Pool is a buffer pool of page frames.
type Pool struct {
	store  pagestore.Store
	logger PageLogger
	// flushLSN, when non-nil, is called before writing out a dirty page to
	// guarantee WAL durability up to the page's LSN.
	flushLSN func(LSN) error

	// retryAttempts bounds extra write-back attempts after a store write
	// error; retryBase is the first backoff (doubled per attempt).
	retryAttempts int
	retryBase     time.Duration

	mu       sync.Mutex
	capacity int
	frames   map[pagestore.PageID]*Frame
	lru      *list.List // unpinned frames, front = least recently used

	// statistics
	hits, misses, evictions, writeRetries uint64
}

// ErrPoolFull reports that every frame is pinned and no page can be evicted.
var ErrPoolFull = errors.New("buffer: all frames pinned")

// New creates a pool of the given capacity (in pages) over store.
func New(store pagestore.Store, capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		store:         store,
		capacity:      capacity,
		frames:        make(map[pagestore.PageID]*Frame, capacity),
		lru:           list.New(),
		retryAttempts: 2,
		retryBase:     200 * time.Microsecond,
	}
}

// SetWriteRetry tunes write-back retries: up to attempts extra tries after
// a store write error, sleeping base, 2*base, ... between them. attempts 0
// disables retrying. Must be called before concurrent use.
func (p *Pool) SetWriteRetry(attempts int, base time.Duration) {
	p.retryAttempts = attempts
	p.retryBase = base
}

// SetFlushLSN installs the WAL flush hook. Must be called before concurrent
// use.
func (p *Pool) SetFlushLSN(fn func(LSN) error) { p.flushLSN = fn }

// SetLogger installs the page-delta logger (the WAL). Must be called before
// concurrent use. With no logger, Modify skips the before-image copy.
func (p *Pool) SetLogger(l PageLogger) { p.logger = l }

// Modify applies a mutation to the frame under its exclusive latch, logs the
// resulting page delta to the attached logger, stamps the page LSN into
// bytes [0,8) of the page (all page layouts in this system reserve them),
// and marks the frame dirty. If fn leaves the page unchanged, nothing is
// logged and the frame stays clean. The frame remains pinned; callers still
// Unpin (dirtiness is already recorded, so Unpin(f, false) is fine).
func (p *Pool) Modify(f *Frame, fn func(data []byte) error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p.logger == nil {
		if err := fn(f.Data); err != nil {
			return err
		}
		f.dirty.Store(true)
		return nil
	}
	var before [pagestore.PageSize]byte
	copy(before[:], f.Data)
	if err := fn(f.Data); err != nil {
		copy(f.Data, before[:]) // roll the page back; mutation failed
		return err
	}
	lo, hi := diffRange(before[:], f.Data)
	if lo < 0 {
		return nil // no change
	}
	lsn, err := p.logger.LogPageDelta(f.ID, lo, before[lo:hi], f.Data[lo:hi])
	if err != nil {
		return err
	}
	putLSN(f.Data, lsn)
	f.SetLSN(lsn)
	f.dirty.Store(true)
	return nil
}

// putLSN stamps the page LSN into the layout-reserved first 8 bytes.
func putLSN(d []byte, l LSN) {
	d[0] = byte(l >> 56)
	d[1] = byte(l >> 48)
	d[2] = byte(l >> 40)
	d[3] = byte(l >> 32)
	d[4] = byte(l >> 24)
	d[5] = byte(l >> 16)
	d[6] = byte(l >> 8)
	d[7] = byte(l)
}

// PageLSN reads the LSN stamped by Modify into a page image.
func PageLSN(d []byte) LSN {
	return LSN(d[0])<<56 | LSN(d[1])<<48 | LSN(d[2])<<40 | LSN(d[3])<<32 |
		LSN(d[4])<<24 | LSN(d[5])<<16 | LSN(d[6])<<8 | LSN(d[7])
}

// diffRange returns the smallest [lo, hi) covering all differing bytes, or
// (-1, -1) if the buffers are identical. The LSN field [0,8) is excluded:
// it is maintained by the logging machinery itself.
func diffRange(a, b []byte) (int, int) {
	lo := 8
	for lo < len(a) && a[lo] == b[lo] {
		lo++
	}
	if lo == len(a) {
		return -1, -1
	}
	hi := len(a)
	for hi > lo && a[hi-1] == b[hi-1] {
		hi--
	}
	return lo, hi
}

// Fetch pins the page in the pool, reading it from the store on a miss.
// On a miss the store read happens under the frame's exclusive latch, so a
// concurrent Fetch of the same page returns only after the data is valid.
func (p *Pool) Fetch(id pagestore.PageID) (*Frame, error) {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		p.hits++
		p.pinLocked(f)
		p.mu.Unlock()
		// Wait out a concurrent loader: the filling Fetch holds the
		// exclusive latch until the store read completes.
		f.mu.RLock()
		err := f.loadErr
		f.mu.RUnlock()
		if err != nil {
			p.Unpin(f, false)
			return nil, err
		}
		return f, nil
	}
	p.misses++
	f, err := p.newFrameLocked(id)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	// Latch before publishing the release of p.mu: the frame is already in
	// the map, but no other goroutine can have reached it yet, so this
	// cannot block. Concurrent fetchers will queue on the latch above.
	f.mu.Lock()
	p.mu.Unlock()
	err = p.store.ReadPage(id, f.Data)
	f.loadErr = err
	f.mu.Unlock()
	if err != nil {
		p.mu.Lock()
		if p.frames[id] == f {
			delete(p.frames, id)
		}
		f.pins--
		p.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// FetchZeroed pins the page with an all-zero image, installing the frame
// without reading the store. This is the repair path for a page whose
// on-disk image is unreadable (checksum failure): Fetch would fail, but the
// repairer needs a frame to reformat. The frame is marked dirty so the new
// image is written back, refreshing the page's sidecar checksum.
func (p *Pool) FetchZeroed(id pagestore.PageID) (*Frame, error) {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		p.pinLocked(f)
		p.mu.Unlock()
		f.mu.Lock()
		for i := range f.Data {
			f.Data[i] = 0
		}
		f.loadErr = nil
		f.mu.Unlock()
		f.dirty.Store(true)
		return f, nil
	}
	f, err := p.newFrameLocked(id)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f.dirty.Store(true)
	p.mu.Unlock()
	return f, nil
}

// NewPage allocates a fresh zeroed page in the store and returns it pinned.
func (p *Pool) NewPage() (*Frame, error) {
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.newFrameLocked(id)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// newFrameLocked installs a pinned frame for id, evicting if necessary.
// Called with p.mu held.
func (p *Pool) newFrameLocked(id pagestore.PageID) (*Frame, error) {
	for len(p.frames) >= p.capacity {
		if err := p.evictLocked(); err != nil {
			return nil, err
		}
	}
	f := &Frame{ID: id, Data: make([]byte, pagestore.PageSize), pins: 1}
	p.frames[id] = f
	return f, nil
}

// pinLocked pins an existing frame, removing it from the LRU list.
func (p *Pool) pinLocked(f *Frame) {
	f.pins++
	if f.lruElem != nil {
		p.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
}

// evictLocked writes back and removes the least recently used unpinned frame.
func (p *Pool) evictLocked() error {
	e := p.lru.Front()
	if e == nil {
		return fmt.Errorf("%w (capacity %d)", ErrPoolFull, p.capacity)
	}
	f := e.Value.(*Frame)
	if f.dirty.Load() {
		if err := p.writeBackLocked(f); err != nil {
			return err
		}
	}
	p.lru.Remove(e)
	f.lruElem = nil
	// A failed load may have replaced this ID's map entry with a newer
	// frame; only remove the entry if it is still ours.
	if p.frames[f.ID] == f {
		delete(p.frames, f.ID)
	}
	p.evictions++
	return nil
}

// writeBackLocked flushes f's contents to the store, honoring WAL ordering.
// Called with p.mu held; takes the frame latch in shared mode so a
// concurrent Modify cannot tear the image being written (Modify never takes
// p.mu, so the p.mu → f.mu order here cannot deadlock). The dirty bit is
// cleared before the write: a Modify that lands mid-flight re-marks the
// frame dirty and the page is simply written again later.
func (p *Pool) writeBackLocked(f *Frame) error {
	f.dirty.Store(false)
	f.mu.RLock()
	if lsn := LSN(f.pageLSN.Load()); p.flushLSN != nil && lsn > 0 {
		if err := p.flushLSN(lsn); err != nil {
			f.mu.RUnlock()
			f.dirty.Store(true)
			return err
		}
	}
	err := p.store.WritePage(f.ID, f.Data)
	// Bounded retry with backoff: transient write-back errors (a busy or
	// briefly failing device) should not fail an eviction or checkpoint.
	// Page-range errors are deterministic and never retried.
	for attempt := 0; err != nil && attempt < p.retryAttempts &&
		!errors.Is(err, pagestore.ErrPageRange); attempt++ {
		time.Sleep(p.retryBase << attempt)
		p.writeRetries++
		err = p.store.WritePage(f.ID, f.Data)
	}
	f.mu.RUnlock()
	if err != nil {
		f.dirty.Store(true)
		return err
	}
	return nil
}

// Unpin releases one pin on the frame; dirty marks the page modified.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	if dirty {
		f.dirty.Store(true)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f.pins--
	if f.pins < 0 {
		panic("buffer: unpin of unpinned frame")
	}
	if f.pins == 0 && f.lruElem == nil {
		f.lruElem = p.lru.PushBack(f)
	}
}

// FlushAll writes back every dirty frame (pinned or not) in page order —
// deterministic I/O sequencing matters for reproducing fault schedules —
// and syncs the store.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]pagestore.PageID, 0, len(p.frames))
	for id, f := range p.frames {
		if f.dirty.Load() {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		if f, ok := p.frames[id]; ok && f.dirty.Load() {
			if err := p.writeBackLocked(f); err != nil {
				return err
			}
		}
	}
	return p.store.Sync()
}

// Stats reports hit/miss/eviction counters.
func (p *Pool) Stats() (hits, misses, evictions uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}

// WriteRetries reports how many write-back attempts were retried after a
// transient store error.
func (p *Pool) WriteRetries() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writeRetries
}

// Store exposes the underlying page store (for allocation-size queries).
func (p *Pool) Store() pagestore.Store { return p.store }
