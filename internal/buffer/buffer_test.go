package buffer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"rx/internal/pagestore"
)

func TestFetchMissRead(t *testing.T) {
	store := pagestore.NewMemStore()
	id, _ := store.Allocate()
	buf := make([]byte, pagestore.PageSize)
	buf[7] = 42
	store.WritePage(id, buf)

	p := New(store, 4)
	f, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[7] != 42 {
		t.Error("miss did not read from store")
	}
	p.Unpin(f, false)
	// Second fetch is a hit.
	f2, _ := p.Fetch(id)
	p.Unpin(f2, false)
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestEvictionWritesDirty(t *testing.T) {
	store := pagestore.NewMemStore()
	p := New(store, 2)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Modify(f, func(d []byte) error { d[10] = 9; return nil }); err != nil {
		t.Fatal(err)
	}
	id := f.ID
	p.Unpin(f, false)
	// Fill the pool to force eviction of the dirty page.
	for i := 0; i < 4; i++ {
		g, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(g, false)
	}
	buf := make([]byte, pagestore.PageSize)
	if err := store.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[10] != 9 {
		t.Error("dirty page not written back on eviction")
	}
	if st := p.Stats(); st.Evictions == 0 {
		t.Error("expected evictions")
	}
}

func TestPoolFull(t *testing.T) {
	p := New(pagestore.NewMemStore(), 2)
	a, _ := p.NewPage()
	b, _ := p.NewPage()
	if _, err := p.NewPage(); err == nil {
		t.Error("expected pool-full error with all frames pinned")
	}
	p.Unpin(a, false)
	p.Unpin(b, false)
	if _, err := p.NewPage(); err != nil {
		t.Errorf("after unpin: %v", err)
	}
}

type recordingLogger struct {
	mu      sync.Mutex
	deltas  int
	lastLSN LSN
}

func (r *recordingLogger) LogPageDelta(id pagestore.PageID, off int, before, after []byte) (LSN, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deltas++
	r.lastLSN += 100
	return r.lastLSN, nil
}

func (r *recordingLogger) LogPageDeltas(id pagestore.PageID, runs []PageRun) (LSN, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deltas++
	r.lastLSN += 100
	return r.lastLSN, nil
}

func TestModifyLogsDelta(t *testing.T) {
	p := New(pagestore.NewMemStore(), 4)
	lg := &recordingLogger{}
	p.SetLogger(lg)
	f, _ := p.NewPage()
	defer p.Unpin(f, false)

	if err := p.Modify(f, func(d []byte) error { d[100] = 1; return nil }); err != nil {
		t.Fatal(err)
	}
	if lg.deltas != 1 {
		t.Errorf("deltas = %d", lg.deltas)
	}
	if PageLSN(f.Data) != 100 {
		t.Errorf("page LSN = %d, want 100", PageLSN(f.Data))
	}
	// No-op modification logs nothing.
	if err := p.Modify(f, func(d []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if lg.deltas != 1 {
		t.Errorf("no-op logged: deltas = %d", lg.deltas)
	}
	// A failed modification rolls the page back.
	sentinel := errSentinel{}
	err := p.Modify(f, func(d []byte) error { d[200] = 7; return sentinel })
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	if f.Data[200] != 0 {
		t.Error("failed modification not rolled back")
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

func TestDiffRange(t *testing.T) {
	a := make([]byte, pagestore.PageSize)
	b := make([]byte, pagestore.PageSize)
	if lo, hi := diffRange(a, b); lo != -1 || hi != -1 {
		t.Errorf("identical: %d,%d", lo, hi)
	}
	b[100] = 1
	b[200] = 2
	if lo, hi := diffRange(a, b); lo != 100 || hi != 201 {
		t.Errorf("got %d,%d", lo, hi)
	}
	// Changes within the LSN field are ignored.
	b = make([]byte, pagestore.PageSize)
	b[3] = 9
	if lo, hi := diffRange(a, b); lo != -1 || hi != -1 {
		t.Errorf("LSN-only diff: %d,%d", lo, hi)
	}
}

func TestConcurrentFetch(t *testing.T) {
	store := pagestore.NewMemStore()
	p := New(store, 16)
	var ids []pagestore.PageID
	for i := 0; i < 8; i++ {
		f, _ := p.NewPage()
		ids = append(ids, f.ID)
		p.Unpin(f, false)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f, err := p.Fetch(ids[(g+i)%len(ids)])
				if err != nil {
					t.Error(err)
					return
				}
				f.RLock()
				_ = f.Data[0]
				f.RUnlock()
				p.Unpin(f, false)
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentFetchModifyEvict hammers a pool far smaller than its
// working set with mixed readers and writers, so fetch misses, fills,
// write-backs, and evictions all interleave. Run under -race.
func TestConcurrentFetchModifyEvict(t *testing.T) {
	store := pagestore.NewMemStore()
	// Capacity equals the goroutine count: each goroutine pins at most one
	// frame, so a victim always exists, while the 32-page working set keeps
	// constant eviction pressure.
	p := New(store, 8)
	var ids []pagestore.PageID
	for i := 0; i < 32; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Modify(f, func(d []byte) error { d[0] = byte(i); return nil }); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID)
		p.Unpin(f, false)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := (g*37 + i) % len(ids)
				f, err := p.Fetch(ids[n])
				if err != nil {
					t.Error(err)
					return
				}
				if g%2 == 0 {
					f.RLock()
					if f.Data[0] != byte(n) {
						t.Errorf("page %d holds %d", n, f.Data[0])
						f.RUnlock()
						p.Unpin(f, false)
						return
					}
					f.RUnlock()
					p.Unpin(f, false)
				} else {
					err := p.Modify(f, func(d []byte) error {
						if d[0] != byte(n) {
							t.Errorf("page %d holds %d before modify", n, d[0])
						}
						d[1]++
						return nil
					})
					if err != nil {
						t.Error(err)
					}
					p.Unpin(f, true)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Every page must have survived the churn with its identity byte intact.
	buf := make([]byte, pagestore.PageSize)
	for n, id := range ids {
		if err := store.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(n) {
			t.Errorf("page %d persisted %d", n, buf[0])
		}
	}
}

// TestCrossShardSteal: a shard whose frames are all pinned must claim a
// capacity slot by evicting a victim from a sibling shard instead of
// reporting the pool full.
func TestCrossShardSteal(t *testing.T) {
	store := pagestore.NewMemStore()
	p := NewSharded(store, 4, 4)
	if p.ShardCount() != 4 {
		t.Fatalf("shards = %d, want 4", p.ShardCount())
	}
	frames := make([]*Frame, 4)
	for i := range frames {
		f, err := p.NewPage() // pages 0..3 land in shards 0..3
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	for _, f := range frames[1:] {
		p.Unpin(f, false)
	}
	// Page 4 maps to shard 0, whose only frame (page 0) is pinned; the pool
	// is at capacity, so the slot must come from a sibling shard's LRU.
	f4, err := p.NewPage()
	if err != nil {
		t.Fatalf("new page with cross-shard victims available: %v", err)
	}
	if f4.ID != 4 {
		t.Fatalf("allocated page %d, want 4", f4.ID)
	}
	st := p.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Resident != 4 || st.ShardOccupancy[0] != 2 {
		t.Errorf("resident = %d, shard occupancy = %v", st.Resident, st.ShardOccupancy)
	}
	// With every frame pinned again, the pool really is full.
	p.Unpin(frames[0], false)
	f0, err := p.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []pagestore.PageID{1, 2} {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Unpin(f, false)
	}
	if _, err := p.NewPage(); !errors.Is(err, ErrPoolFull) {
		t.Errorf("err = %v, want ErrPoolFull", err)
	}
	p.Unpin(f0, false)
	p.Unpin(f4, false)
}

// TestShardedChurnStats drives heavy concurrent churn across many shards
// (run under -race) and then checks the Stats snapshot is coherent: counters
// flowing, occupancy summing to residency, residency within capacity.
func TestShardedChurnStats(t *testing.T) {
	store := pagestore.NewMemStore()
	p := NewSharded(store, 16, 8)
	var ids []pagestore.PageID
	for i := 0; i < 64; i++ {
		f, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Modify(f, func(d []byte) error { d[0] = byte(i); return nil }); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID)
		p.Unpin(f, false)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				n := (g*53 + i*7) % len(ids)
				f, err := p.Fetch(ids[n])
				if err != nil {
					t.Error(err)
					return
				}
				if g%2 == 0 {
					f.RLock()
					if f.Data[0] != byte(n) {
						t.Errorf("page %d holds %d", n, f.Data[0])
					}
					f.RUnlock()
					p.Unpin(f, false)
				} else {
					if err := p.Modify(f, func(d []byte) error { d[2]++; return nil }); err != nil {
						t.Error(err)
					}
					p.Unpin(f, true)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Shards != 8 || len(st.ShardOccupancy) != 8 {
		t.Fatalf("shards = %d, occupancy = %v", st.Shards, st.ShardOccupancy)
	}
	if st.Misses == 0 || st.Evictions == 0 || st.WriteBacks == 0 {
		t.Errorf("expected churn: %+v", st)
	}
	if st.Resident > st.Capacity {
		t.Errorf("resident %d exceeds capacity %d at quiescence", st.Resident, st.Capacity)
	}
	sum := 0
	for _, n := range st.ShardOccupancy {
		sum += n
	}
	if sum != st.Resident {
		t.Errorf("occupancy sum %d != resident %d", sum, st.Resident)
	}
	// Data integrity after the churn.
	buf := make([]byte, pagestore.PageSize)
	for n, id := range ids {
		if err := store.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(n) {
			t.Errorf("page %d persisted %d", n, buf[0])
		}
	}
}

// flakyStore fails WritePage a scripted number of times, then recovers.
type flakyStore struct {
	pagestore.Store
	failures int
	writes   int
}

func (s *flakyStore) WritePage(id pagestore.PageID, buf []byte) error {
	s.writes++
	if s.failures > 0 {
		s.failures--
		return errors.New("transient write error")
	}
	return s.Store.WritePage(id, buf)
}

func TestWriteBackRetriesTransientErrors(t *testing.T) {
	fs := &flakyStore{Store: pagestore.NewMemStore(), failures: 2}
	p := New(fs, 4)
	p.SetWriteRetry(2, time.Microsecond)
	f, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f.Data[100] = 9
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatalf("flush with 2 transient failures: %v", err)
	}
	if p.WriteRetries() != 2 {
		t.Errorf("writeRetries = %d, want 2", p.WriteRetries())
	}
	buf := make([]byte, pagestore.PageSize)
	fs.Store.ReadPage(f.ID, buf)
	if buf[100] != 9 {
		t.Error("retried write-back lost data")
	}
}

func TestWriteBackRetryExhaustion(t *testing.T) {
	fs := &flakyStore{Store: pagestore.NewMemStore(), failures: 10}
	p := New(fs, 4)
	p.SetWriteRetry(2, time.Microsecond)
	f, _ := p.NewPage()
	f.Data[1] = 1
	p.Unpin(f, true)
	if err := p.FlushAll(); err == nil {
		t.Fatal("flush should fail once retries are exhausted")
	}
	if fs.writes != 3 { // 1 attempt + 2 retries
		t.Errorf("write attempts = %d, want 3", fs.writes)
	}
	// The frame stays dirty so a later flush (after the device heals) works.
	fs.failures = 0
	if err := p.FlushAll(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
}
