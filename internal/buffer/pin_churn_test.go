package buffer

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"rx/internal/pagestore"
)

// TestConcurrentPinEvictChurn hammers a small pool from many goroutines —
// fetch, read-verify under the shared latch, occasionally modify, unpin —
// with far more pages than frames, so every iteration contends with
// evictions and frame reuse across shards. Run under -race this checks that
// pinned frames are never stolen and that the pin accounting converges.
func TestConcurrentPinEvictChurn(t *testing.T) {
	const (
		pages      = 256
		capacity   = 16
		goroutines = 8
		iters      = 3000
	)
	store := pagestore.NewMemStore()
	buf := make([]byte, pagestore.PageSize)
	for i := 0; i < pages; i++ {
		id, err := store.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(buf, uint64(id))
		if err := store.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	p := New(store, capacity)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				id := pagestore.PageID(rng.Intn(pages))
				f, err := p.Fetch(id)
				if err != nil {
					t.Errorf("fetch %d: %v", id, err)
					return
				}
				if rng.Intn(8) == 0 {
					// Touch a scratch byte (never the ID stamp) so dirty
					// write-back and eviction interleave with readers.
					err := p.Modify(f, func(d []byte) error {
						d[16] = byte(i)
						return nil
					})
					if err != nil {
						t.Errorf("modify %d: %v", id, err)
						p.Unpin(f, false)
						return
					}
				}
				f.RLock()
				got := pagestore.PageID(binary.BigEndian.Uint64(f.Data))
				f.RUnlock()
				if got != id {
					t.Errorf("frame for page %d holds page %d's bytes (stolen frame?)", id, got)
					p.Unpin(f, false)
					return
				}
				p.Unpin(f, false)
			}
		}(int64(g))
	}
	wg.Wait()

	s := p.Stats()
	if s.Pinned != 0 {
		t.Errorf("Pinned = %d after all unpins, want 0", s.Pinned)
	}
	if s.PinnedHighWater < 1 {
		t.Errorf("PinnedHighWater = %d, want >= 1", s.PinnedHighWater)
	}
	if s.PinnedHighWater > goroutines+1 {
		t.Errorf("PinnedHighWater = %d, want <= %d (each goroutine pins at most one frame)",
			s.PinnedHighWater, goroutines+1)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
}
