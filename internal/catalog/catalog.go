// Package catalog implements the catalog & directory of Figure 1: the
// database-wide name dictionary (persistent xml.Names implementation), the
// metadata for collections (base table, internal XML table, DocID and NodeID
// indexes, XPath value indexes) and registered compiled schemas. Catalog
// data lives in ordinary heap tables, just as the paper stores its catalog
// in the relational engine's own tables.
//
// Database layout: page 0 is the database meta page holding the magic number
// and the first pages of the three catalog tables.
package catalog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"rx/internal/buffer"
	"rx/internal/heap"
	"rx/internal/pagestore"
	"rx/internal/stats"
	"rx/internal/xml"
)

const magic = 0x52582F58 // "RX/X"

// docIDChunk is how many DocIDs are claimed per catalog write, so a bulk
// load does not rewrite the collection row per document.
const docIDChunk = 64

// ValueIndexMeta describes one XPath value index (§3.3): a simple XPath
// expression without predicates plus a key type.
type ValueIndexMeta struct {
	Name string
	Path string
	// Type is the key type: xml.TString, TDouble, TDate or TDecimal.
	Type xml.TypeID
	// Meta is the B+tree meta page of the index.
	Meta pagestore.PageID
}

// Collection is the stored metadata for one collection: a base table with an
// implicit DocID column and one XML column, backed by an internal XML table
// (Figure 2).
type Collection struct {
	Name string
	// BaseTable is the base table's first heap page (rows: DocID, XML handle).
	BaseTable pagestore.PageID
	// XMLTable is the internal XML table's first heap page (rows: DocID,
	// minNodeID, XMLData).
	XMLTable pagestore.PageID
	// DocIDIndex maps DocID to the base-table row RID.
	DocIDIndex pagestore.PageID
	// NodeIDIndex maps (DocID, NodeID interval upper endpoint) to RIDs.
	NodeIDIndex pagestore.PageID
	// PackThreshold is the record-size threshold used when packing documents
	// of this collection (0 = default).
	PackThreshold int
	// Versioned enables document-level multiversioning (§5.1): the NodeID
	// index keys carry a version number and readers see snapshots.
	Versioned bool
	// NextDocID is the persisted high-water mark for DocID allocation.
	NextDocID uint64
	// Indexes are the collection's XPath value indexes.
	Indexes []ValueIndexMeta
	// Stats are the collection's optimizer statistics as of the last persist
	// (stats refresh, index DDL, or a periodic checkpoint piggybacked on the
	// row rewrite). Advisory: absent on old databases, rebuilt by refresh.
	Stats *stats.CollectionStats `json:",omitempty"`

	rid heap.RID // catalog row, for updates
}

// SchemaMeta is a registered, compiled XML schema (Figure 4: schemas are
// compiled to a binary format at registration and stored in the catalog).
type SchemaMeta struct {
	Name   string
	Binary []byte

	rid heap.RID
}

// Catalog is the open catalog.
type Catalog struct {
	pool *buffer.Pool

	mu      sync.RWMutex
	names   *heap.Table
	cols    *heap.Table
	schemas *heap.Table
	byStr   map[string]xml.NameID
	byID    []string
	colMap  map[string]*Collection
	schMap  map[string]*SchemaMeta
}

// Bootstrap formats a fresh store (meta page + empty catalog tables) and
// returns the open catalog. The store must be empty.
func Bootstrap(pool *buffer.Pool) (*Catalog, error) {
	if pool.Store().NumPages() != 0 {
		return nil, errors.New("catalog: store is not empty")
	}
	metaFrame, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	if metaFrame.ID != 0 {
		pool.Unpin(metaFrame, false)
		return nil, fmt.Errorf("catalog: meta page allocated as %d, want 0", metaFrame.ID)
	}
	names, err := heap.Create(pool)
	if err != nil {
		pool.Unpin(metaFrame, false)
		return nil, err
	}
	cols, err := heap.Create(pool)
	if err != nil {
		pool.Unpin(metaFrame, false)
		return nil, err
	}
	schemas, err := heap.Create(pool)
	if err != nil {
		pool.Unpin(metaFrame, false)
		return nil, err
	}
	err = pool.Modify(metaFrame, func(d []byte) error {
		binary.BigEndian.PutUint32(d[8:12], magic)
		binary.BigEndian.PutUint32(d[12:16], uint32(names.FirstPage()))
		binary.BigEndian.PutUint32(d[16:20], uint32(cols.FirstPage()))
		binary.BigEndian.PutUint32(d[20:24], uint32(schemas.FirstPage()))
		return nil
	})
	pool.Unpin(metaFrame, false)
	if err != nil {
		return nil, err
	}
	c := &Catalog{
		pool:    pool,
		names:   names,
		cols:    cols,
		schemas: schemas,
		byStr:   map[string]xml.NameID{"": xml.NoName},
		byID:    []string{""},
		colMap:  map[string]*Collection{},
		schMap:  map[string]*SchemaMeta{},
	}
	return c, nil
}

// Open loads the catalog from an already formatted store.
func Open(pool *buffer.Pool) (*Catalog, error) {
	f, err := pool.Fetch(0)
	if err != nil {
		return nil, err
	}
	f.RLock()
	m := binary.BigEndian.Uint32(f.Data[8:12])
	namesPg := pagestore.PageID(binary.BigEndian.Uint32(f.Data[12:16]))
	colsPg := pagestore.PageID(binary.BigEndian.Uint32(f.Data[16:20]))
	schPg := pagestore.PageID(binary.BigEndian.Uint32(f.Data[20:24]))
	f.RUnlock()
	pool.Unpin(f, false)
	if m != magic {
		return nil, fmt.Errorf("catalog: bad magic 0x%08x", m)
	}
	names, err := heap.Open(pool, namesPg)
	if err != nil {
		return nil, err
	}
	cols, err := heap.Open(pool, colsPg)
	if err != nil {
		return nil, err
	}
	schemas, err := heap.Open(pool, schPg)
	if err != nil {
		return nil, err
	}
	c := &Catalog{
		pool:    pool,
		names:   names,
		cols:    cols,
		schemas: schemas,
		byStr:   map[string]xml.NameID{"": xml.NoName},
		byID:    []string{""},
		colMap:  map[string]*Collection{},
		schMap:  map[string]*SchemaMeta{},
	}
	// Rebuild the in-memory name dictionary. Rows are (id uvarint, name).
	type nameRow struct {
		id   uint64
		name string
	}
	var rows []nameRow
	err = names.Scan(func(rid heap.RID, payload []byte) error {
		id, n := binary.Uvarint(payload)
		if n <= 0 {
			return errors.New("catalog: corrupt name row")
		}
		rows = append(rows, nameRow{id, string(payload[n:])})
		return nil
	})
	if err != nil {
		return nil, err
	}
	maxID := uint64(0)
	for _, r := range rows {
		if r.id > maxID {
			maxID = r.id
		}
	}
	c.byID = make([]string, maxID+1)
	for _, r := range rows {
		c.byID[r.id] = r.name
		c.byStr[r.name] = xml.NameID(r.id)
	}
	// Load collections.
	err = cols.Scan(func(rid heap.RID, payload []byte) error {
		var col Collection
		if err := json.Unmarshal(payload, &col); err != nil {
			return fmt.Errorf("catalog: corrupt collection row: %v", err)
		}
		col.rid = rid
		c.colMap[col.Name] = &col
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Load schemas. Rows are (nameLen uvarint, name, binary).
	err = schemas.Scan(func(rid heap.RID, payload []byte) error {
		l, n := binary.Uvarint(payload)
		if n <= 0 || int(l)+n > len(payload) {
			return errors.New("catalog: corrupt schema row")
		}
		s := &SchemaMeta{
			Name:   string(payload[n : n+int(l)]),
			Binary: append([]byte(nil), payload[n+int(l):]...),
			rid:    rid,
		}
		c.schMap[s.Name] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Intern implements xml.Names, persisting new names.
func (c *Catalog) Intern(name string) (xml.NameID, error) {
	c.mu.RLock()
	id, ok := c.byStr[name]
	c.mu.RUnlock()
	if ok {
		return id, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.byStr[name]; ok {
		return id, nil
	}
	id = xml.NameID(len(c.byID))
	row := binary.AppendUvarint(nil, uint64(id))
	row = append(row, name...)
	if _, err := c.names.Insert(row); err != nil {
		return 0, err
	}
	c.byID = append(c.byID, name)
	c.byStr[name] = id
	return id, nil
}

// Lookup implements xml.Names.
func (c *Catalog) Lookup(id xml.NameID) (string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if int(id) >= len(c.byID) {
		return "", fmt.Errorf("catalog: unknown name ID %d", id)
	}
	return c.byID[id], nil
}

// AddCollection persists a new collection's metadata.
func (c *Catalog) AddCollection(col *Collection) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.colMap[col.Name]; exists {
		return fmt.Errorf("catalog: collection %q already exists", col.Name)
	}
	payload, err := json.Marshal(col)
	if err != nil {
		return err
	}
	rid, err := c.cols.Insert(payload)
	if err != nil {
		return err
	}
	col.rid = rid
	c.colMap[col.Name] = col
	return nil
}

// UpdateCollection rewrites a collection's catalog row (index list changes,
// DocID high-water mark bumps).
func (c *Catalog) UpdateCollection(col *Collection) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updateLocked(col)
}

// UpdateCollectionStats installs a statistics snapshot on the collection and
// rewrites its row. The snapshot pointer is assigned under the catalog lock —
// the same lock every row marshal holds — so a caller may pass a freshly
// cloned snapshot without coordinating with concurrent AllocDocID rewrites.
func (c *Catalog) UpdateCollectionStats(col *Collection, s *stats.CollectionStats) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	col.Stats = s
	return c.updateLocked(col)
}

func (c *Catalog) updateLocked(col *Collection) error {
	payload, err := json.Marshal(col)
	if err != nil {
		return err
	}
	return c.cols.Update(col.rid, payload)
}

// GetCollection returns a collection's metadata, or nil.
func (c *Catalog) GetCollection(name string) *Collection {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.colMap[name]
}

// Collections lists all collection names.
func (c *Catalog) Collections() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var names []string
	for n := range c.colMap {
		names = append(names, n)
	}
	return names
}

// DropCollection removes a collection's metadata row. (The engine is
// responsible for the data itself.)
func (c *Catalog) DropCollection(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	col, ok := c.colMap[name]
	if !ok {
		return fmt.Errorf("catalog: no collection %q", name)
	}
	if err := c.cols.Delete(col.rid); err != nil {
		return err
	}
	delete(c.colMap, name)
	return nil
}

// AllocDocID claims the next DocID for the collection (DocIDs start at 1).
// The high-water mark is persisted a chunk ahead, so bulk loads do not
// rewrite the catalog row per document; after a reopen, allocation resumes
// past the persisted ceiling and at most one chunk of IDs is skipped.
func (c *Catalog) AllocDocID(col *Collection) (xml.DocID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	col.NextDocID++
	id := col.NextDocID
	if id%docIDChunk == 1 {
		saved := col.NextDocID
		col.NextDocID = saved + docIDChunk - 1 // persist the chunk ceiling
		err := c.updateLocked(col)
		col.NextDocID = saved
		if err != nil {
			col.NextDocID = saved - 1
			return 0, err
		}
	}
	return xml.DocID(id), nil
}

// RegisterSchema stores a compiled schema under name (Figure 4).
func (c *Catalog) RegisterSchema(name string, bin []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.schMap[name]; exists {
		return fmt.Errorf("catalog: schema %q already registered", name)
	}
	row := binary.AppendUvarint(nil, uint64(len(name)))
	row = append(row, name...)
	row = append(row, bin...)
	rid, err := c.schemas.Insert(row)
	if err != nil {
		return err
	}
	c.schMap[name] = &SchemaMeta{Name: name, Binary: append([]byte(nil), bin...), rid: rid}
	return nil
}

// GetSchema returns a registered schema's compiled binary, or nil.
func (c *Catalog) GetSchema(name string) []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if s, ok := c.schMap[name]; ok {
		return s.Binary
	}
	return nil
}

// Schemas lists registered schema names.
func (c *Catalog) Schemas() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var names []string
	for n := range c.schMap {
		names = append(names, n)
	}
	return names
}

// NameCount returns the number of interned names.
func (c *Catalog) NameCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byID)
}

// Pages returns every page the catalog owns: the meta page plus the name,
// collection, and schema heap chains. The chain walks are fault-tolerant
// (an unreadable chain page is included and truncates that chain), so the
// scrub subsystem can attribute page corruption to the catalog — which it
// refuses to repair automatically.
func (c *Catalog) Pages() []pagestore.PageID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pages := []pagestore.PageID{0}
	for _, t := range []*heap.Table{c.names, c.cols, c.schemas} {
		ps, _ := t.ChainPages()
		pages = append(pages, ps...)
	}
	return pages
}
