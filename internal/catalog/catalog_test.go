package catalog

import (
	"testing"

	"rx/internal/buffer"
	"rx/internal/pagestore"
	"rx/internal/xml"
)

func newCatalog(t *testing.T) (*Catalog, *buffer.Pool) {
	t.Helper()
	pool := buffer.New(pagestore.NewMemStore(), 128)
	c, err := Bootstrap(pool)
	if err != nil {
		t.Fatal(err)
	}
	return c, pool
}

func TestNamesPersist(t *testing.T) {
	c, pool := newCatalog(t)
	id1, err := c.Intern("product")
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := c.Intern("price")
	id1b, _ := c.Intern("product")
	if id1 != id1b {
		t.Error("re-intern changed ID")
	}
	if id1 == id2 {
		t.Error("distinct names share an ID")
	}
	if s, _ := c.Lookup(id2); s != "price" {
		t.Errorf("Lookup = %q", s)
	}
	// Reopen and verify.
	c2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	if s, err := c2.Lookup(id1); err != nil || s != "product" {
		t.Errorf("reopened Lookup = %q, %v", s, err)
	}
	id3, _ := c2.Intern("newname")
	if id3 == id1 || id3 == id2 {
		t.Error("new name reused an ID after reopen")
	}
	if _, err := c2.Lookup(xml.NameID(9999)); err == nil {
		t.Error("unknown ID should fail")
	}
}

func TestCollectionsPersist(t *testing.T) {
	c, pool := newCatalog(t)
	col := &Collection{Name: "cat", BaseTable: 10, XMLTable: 11, DocIDIndex: 12, NodeIDIndex: 13}
	if err := c.AddCollection(col); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCollection(&Collection{Name: "cat"}); err == nil {
		t.Error("duplicate collection should fail")
	}
	col.Indexes = append(col.Indexes, ValueIndexMeta{Name: "ix1", Path: "//price", Type: xml.TDouble, Meta: 44})
	if err := c.UpdateCollection(col); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	got := c2.GetCollection("cat")
	if got == nil || got.XMLTable != 11 || len(got.Indexes) != 1 || got.Indexes[0].Path != "//price" {
		t.Fatalf("reopened collection = %+v", got)
	}
	if names := c2.Collections(); len(names) != 1 || names[0] != "cat" {
		t.Errorf("Collections = %v", names)
	}
	if err := c2.DropCollection("cat"); err != nil {
		t.Fatal(err)
	}
	if c2.GetCollection("cat") != nil {
		t.Error("dropped collection still present")
	}
	if err := c2.DropCollection("nope"); err == nil {
		t.Error("dropping a missing collection should fail")
	}
}

func TestAllocDocID(t *testing.T) {
	c, pool := newCatalog(t)
	col := &Collection{Name: "c"}
	if err := c.AddCollection(col); err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 130; want++ {
		id, err := c.AllocDocID(col)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(id) != want {
			t.Fatalf("AllocDocID = %d, want %d", id, want)
		}
	}
	// After reopen, allocation resumes past the persisted ceiling with no
	// reuse.
	c2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	col2 := c2.GetCollection("c")
	id, err := c2.AllocDocID(col2)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(id) <= 130 {
		t.Errorf("DocID %d reused after reopen", id)
	}
}

func TestSchemas(t *testing.T) {
	c, pool := newCatalog(t)
	bin := []byte{1, 2, 3, 4}
	if err := c.RegisterSchema("po", bin); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterSchema("po", bin); err == nil {
		t.Error("duplicate schema should fail")
	}
	if got := c.GetSchema("po"); string(got) != string(bin) {
		t.Errorf("GetSchema = %v", got)
	}
	if c.GetSchema("none") != nil {
		t.Error("missing schema should be nil")
	}
	c2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.GetSchema("po"); string(got) != string(bin) {
		t.Errorf("reopened GetSchema = %v", got)
	}
	if s := c2.Schemas(); len(s) != 1 || s[0] != "po" {
		t.Errorf("Schemas = %v", s)
	}
}

func TestBootstrapNonEmptyFails(t *testing.T) {
	pool := buffer.New(pagestore.NewMemStore(), 16)
	f, _ := pool.NewPage()
	pool.Unpin(f, false)
	if _, err := Bootstrap(pool); err == nil {
		t.Error("Bootstrap on non-empty store should fail")
	}
}

func TestOpenBadMagic(t *testing.T) {
	pool := buffer.New(pagestore.NewMemStore(), 16)
	f, _ := pool.NewPage()
	pool.Unpin(f, false)
	if _, err := Open(pool); err == nil {
		t.Error("Open with bad magic should fail")
	}
}

func TestManyNames(t *testing.T) {
	c, pool := newCatalog(t)
	ids := map[xml.NameID]string{}
	for i := 0; i < 3000; i++ {
		name := "name-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + itoa(i)
		id, err := c.Intern(name)
		if err != nil {
			t.Fatal(err)
		}
		ids[id] = name
	}
	c2, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	for id, name := range ids {
		got, err := c2.Lookup(id)
		if err != nil || got != name {
			t.Fatalf("Lookup(%d) = %q, %v; want %q", id, got, err, name)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
