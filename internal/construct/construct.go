// Package construct implements the SQL/XML constructor functions of §4.1
// (XMLELEMENT, XMLATTRIBUTES, XMLFOREST, XMLCONCAT, XMLAGG) with the
// Figure-5 optimization: nested constructor calls are flattened at compile
// time into a single tagging template whose slots reference tuple arguments.
// Evaluating the constructors for a row produces an intermediate result that
// is just (template pointer, argument record) — the tagging structure is
// never repeated per row, which is what makes constructing XML for large
// numbers of rows (and XMLAGG) cheap.
//
// The constructed-data iterator of Figure 8 is Template.Emit: it walks the
// template once per row, converting each op into a virtual SAX event.
package construct

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"rx/internal/nodeid"
	"rx/internal/serialize"
	"rx/internal/tokens"
	"rx/internal/vsax"
	"rx/internal/xml"
)

// Expr is a constructor expression (the nested SQL/XML function calls
// before flattening).
type Expr interface{ isExpr() }

// ElementExpr is XMLELEMENT(NAME name, children...).
type ElementExpr struct {
	Name string
	Kids []Expr
}

// AttrsExpr is XMLATTRIBUTES(arg AS name, ...). It must appear first among
// an element's children.
type AttrsExpr struct {
	Attrs []AttrSpec
}

// AttrSpec is one attribute: the argument slot and the attribute name.
type AttrSpec struct {
	Name string
	Arg  int
}

// ForestExpr is XMLFOREST(arg AS name, ...): one element per item wrapping
// the argument's value.
type ForestExpr struct {
	Items []ForestItem
}

// ForestItem is one forest member.
type ForestItem struct {
	Name string
	Arg  int
}

// TextExpr inserts an argument's value as text.
type TextExpr struct{ Arg int }

// LitExpr inserts constant text.
type LitExpr struct{ Text string }

// ConcatExpr is XMLCONCAT(items...).
type ConcatExpr struct{ Kids []Expr }

func (ElementExpr) isExpr() {}
func (AttrsExpr) isExpr()   {}
func (ForestExpr) isExpr()  {}
func (TextExpr) isExpr()    {}
func (LitExpr) isExpr()     {}
func (ConcatExpr) isExpr()  {}

// Convenience builders.

// Element builds an ElementExpr.
func Element(name string, kids ...Expr) Expr { return ElementExpr{Name: name, Kids: kids} }

// Attributes builds an AttrsExpr.
func Attributes(attrs ...AttrSpec) Expr { return AttrsExpr{Attrs: attrs} }

// Attr builds one attribute spec.
func Attr(name string, arg int) AttrSpec { return AttrSpec{Name: name, Arg: arg} }

// Forest builds a ForestExpr.
func Forest(items ...ForestItem) Expr { return ForestExpr{Items: items} }

// As builds one forest item.
func As(name string, arg int) ForestItem { return ForestItem{Name: name, Arg: arg} }

// Text builds a TextExpr.
func Text(arg int) Expr { return TextExpr{Arg: arg} }

// Lit builds a LitExpr.
func Lit(s string) Expr { return LitExpr{Text: s} }

// Concat builds a ConcatExpr.
func Concat(kids ...Expr) Expr { return ConcatExpr{Kids: kids} }

// op kinds of the flattened template.
type opKind uint8

const (
	opStart opKind = iota + 1 // begin element (name)
	opEnd                     // end element
	opAttr                    // attribute (name, arg)
	opText                    // text from argument (arg)
	opLit                     // constant text (lit)
)

type op struct {
	kind opKind
	name xml.QName
	arg  int
	lit  []byte
}

// Template is the flattened tagging template of Figure 5.
type Template struct {
	ops   []op
	nArgs int
}

// NArgs is the number of argument slots rows must provide.
func (t *Template) NArgs() int { return t.nArgs }

// Ops is the template length (for stats/tests).
func (t *Template) Ops() int { return len(t.ops) }

// Compile flattens a constructor expression into a template, interning
// names once (never per row).
func Compile(e Expr, names xml.Names) (*Template, error) {
	t := &Template{}
	if err := t.flatten(e, names, false); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Template) needArg(i int) {
	if i < 0 {
		panic("construct: negative argument index")
	}
	if i+1 > t.nArgs {
		t.nArgs = i + 1
	}
}

func (t *Template) flatten(e Expr, names xml.Names, inElement bool) error {
	switch x := e.(type) {
	case ElementExpr:
		local, err := names.Intern(x.Name)
		if err != nil {
			return err
		}
		t.ops = append(t.ops, op{kind: opStart, name: xml.QName{Local: local}})
		// XMLATTRIBUTES must come first.
		for i, k := range x.Kids {
			if a, ok := k.(AttrsExpr); ok {
				if i != 0 {
					return errors.New("construct: XMLATTRIBUTES must be the first child of XMLELEMENT")
				}
				for _, as := range a.Attrs {
					an, err := names.Intern(as.Name)
					if err != nil {
						return err
					}
					t.needArg(as.Arg)
					t.ops = append(t.ops, op{kind: opAttr, name: xml.QName{Local: an}, arg: as.Arg})
				}
				continue
			}
			if err := t.flatten(k, names, true); err != nil {
				return err
			}
		}
		t.ops = append(t.ops, op{kind: opEnd})
	case AttrsExpr:
		return errors.New("construct: XMLATTRIBUTES outside XMLELEMENT")
	case ForestExpr:
		for _, it := range x.Items {
			n, err := names.Intern(it.Name)
			if err != nil {
				return err
			}
			t.needArg(it.Arg)
			t.ops = append(t.ops,
				op{kind: opStart, name: xml.QName{Local: n}},
				op{kind: opText, arg: it.Arg},
				op{kind: opEnd})
		}
	case TextExpr:
		t.needArg(x.Arg)
		t.ops = append(t.ops, op{kind: opText, arg: x.Arg})
	case LitExpr:
		t.ops = append(t.ops, op{kind: opLit, lit: []byte(x.Text)})
	case ConcatExpr:
		for _, k := range x.Kids {
			if err := t.flatten(k, names, inElement); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("construct: unknown expression %T", e)
	}
	return nil
}

// Row is one argument record: the evaluated tuple components the template's
// slots reference (the paper's "XML handles" link larger XML values the
// same way; here every argument is a byte string).
type Row [][]byte

// Emit replays the template for one row as virtual SAX events, synthesizing
// packer-compatible node IDs under the given base (pass nodeid.Root and
// firstSlot 0 for a whole document; Emit returns the next free sibling
// slot, so consecutive rows nest as siblings). A nil base skips node-ID
// synthesis entirely — the right choice when the handler ignores IDs, such
// as direct serialization.
func (t *Template) Emit(h vsax.Handler, row Row, base nodeid.ID, firstSlot int) (int, error) {
	if len(row) < t.nArgs {
		return firstSlot, fmt.Errorf("construct: row has %d args, template needs %d", len(row), t.nArgs)
	}
	type frame struct {
		abs  nodeid.ID
		next int
	}
	noIDs := base == nil
	stack := []frame{{abs: base, next: firstSlot}}
	cur := func() *frame { return &stack[len(stack)-1] }
	alloc := func() nodeid.ID {
		if noIDs {
			return nil
		}
		f := cur()
		rel := nodeid.RelAt(f.next)
		f.next++
		return nodeid.Append(f.abs, rel)
	}
	for _, o := range t.ops {
		switch o.kind {
		case opStart:
			id := alloc()
			if err := h.StartElement(o.name, id); err != nil {
				return 0, err
			}
			stack = append(stack, frame{abs: id})
		case opEnd:
			id := cur().abs
			stack = stack[:len(stack)-1]
			if err := h.EndElement(id); err != nil {
				return 0, err
			}
		case opAttr:
			if err := h.Attribute(o.name, row[o.arg], xml.Untyped, alloc()); err != nil {
				return 0, err
			}
		case opText:
			if err := h.Text(row[o.arg], xml.Untyped, alloc()); err != nil {
				return 0, err
			}
		case opLit:
			if err := h.Text(o.lit, xml.Untyped, alloc()); err != nil {
				return 0, err
			}
		}
	}
	if len(stack) != 1 {
		return 0, errors.New("construct: unbalanced template")
	}
	return stack[0].next, nil
}

// Serialize renders one row's constructed XML as text.
func (t *Template) Serialize(w io.Writer, names xml.Names, row Row) error {
	s := serialize.New(w, names)
	if err := s.StartDocument(); err != nil {
		return err
	}
	if _, err := t.Emit(s, row, nil, 0); err != nil {
		return err
	}
	if err := s.EndDocument(); err != nil {
		return err
	}
	return s.Err()
}

// String renders a row's construction to a string (tests, examples).
func (t *Template) String(names xml.Names, row Row) (string, error) {
	var buf bytes.Buffer
	if err := t.Serialize(&buf, names, row); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Agg is XMLAGG: it accumulates (template, row) intermediate results and
// emits them in ORDER BY order. Per §4.1, sorting is an in-memory quicksort
// of the row list within the group — not an external sort.
type Agg struct {
	t    *Template
	rows []Row
	keys [][]byte
}

// NewAgg creates an aggregator over one template.
func NewAgg(t *Template) *Agg { return &Agg{t: t} }

// Add accumulates one row with its ORDER BY key (nil keys keep input order).
func (a *Agg) Add(row Row, orderKey []byte) {
	a.rows = append(a.rows, row)
	a.keys = append(a.keys, orderKey)
}

// Len returns the number of accumulated rows.
func (a *Agg) Len() int { return len(a.rows) }

// Emit sorts (if keyed) and replays every row through the template.
func (a *Agg) Emit(h vsax.Handler) error {
	if len(a.keys) > 0 && a.keys[0] != nil {
		quicksort(a.rows, a.keys, 0, len(a.rows)-1)
	}
	slot := 0
	var err error
	for _, row := range a.rows {
		slot, err = a.t.Emit(h, row, nodeid.Root, slot)
		if err != nil {
			return err
		}
	}
	return nil
}

// SerializeInto renders the aggregate wrapped in an element.
func (a *Agg) SerializeInto(w io.Writer, names xml.Names, wrapper string) error {
	s := serialize.New(w, names)
	wid, err := names.Intern(wrapper)
	if err != nil {
		return err
	}
	if err := s.StartDocument(); err != nil {
		return err
	}
	if err := s.StartElement(xml.QName{Local: wid}, nodeid.ID{0x02}); err != nil {
		return err
	}
	if err := a.Emit(s); err != nil {
		return err
	}
	if err := s.EndElement(nodeid.ID{0x02}); err != nil {
		return err
	}
	if err := s.EndDocument(); err != nil {
		return err
	}
	return s.Err()
}

// quicksort is the in-memory quicksort over the group's row list (§4.1:
// "we apply in-memory quicksort to the linked list representation of rows
// in each group of XMLAGG").
func quicksort(rows []Row, keys [][]byte, lo, hi int) {
	for lo < hi {
		p := partition(rows, keys, lo, hi)
		if p-lo < hi-p {
			quicksort(rows, keys, lo, p-1)
			lo = p + 1
		} else {
			quicksort(rows, keys, p+1, hi)
			hi = p - 1
		}
	}
}

func partition(rows []Row, keys [][]byte, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot.
	if bytes.Compare(keys[mid], keys[lo]) < 0 {
		swap(rows, keys, mid, lo)
	}
	if bytes.Compare(keys[hi], keys[lo]) < 0 {
		swap(rows, keys, hi, lo)
	}
	if bytes.Compare(keys[hi], keys[mid]) < 0 {
		swap(rows, keys, hi, mid)
	}
	swap(rows, keys, mid, hi)
	pivot := keys[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if bytes.Compare(keys[j], pivot) < 0 {
			swap(rows, keys, i, j)
			i++
		}
	}
	swap(rows, keys, i, hi)
	return i
}

func swap(rows []Row, keys [][]byte, i, j int) {
	rows[i], rows[j] = rows[j], rows[i]
	keys[i], keys[j] = keys[j], keys[i]
}

// TokenStream renders one row's construction as a buffered token stream
// (so constructor output can be inserted into a collection).
func (t *Template) TokenStream(row Row) ([]byte, error) {
	tw := tokens.NewWriter(256)
	sink := &vsax.TokenSink{W: tw}
	if err := sink.StartDocument(); err != nil {
		return nil, err
	}
	if _, err := t.Emit(sink, row, nodeid.Root, 0); err != nil {
		return nil, err
	}
	if err := sink.EndDocument(); err != nil {
		return nil, err
	}
	return append([]byte(nil), tw.Bytes()...), nil
}
