package construct

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rx/internal/xml"
)

// paperTemplate builds the §4.1 example:
//
//	XMLELEMENT(NAME "Emp",
//	  XMLATTRIBUTES(e.id AS "id", e.fname||' '||e.lname AS "name"),
//	  XMLFOREST(e.hire, e.dept AS "department"))
func paperTemplate(t *testing.T, names xml.Names) *Template {
	t.Helper()
	expr := Element("Emp",
		Attributes(Attr("id", 0), Attr("name", 1)),
		Forest(As("HIRE", 2), As("department", 3)),
	)
	tpl, err := Compile(expr, names)
	if err != nil {
		t.Fatal(err)
	}
	return tpl
}

func TestPaperExample(t *testing.T) {
	dict := xml.NewDict()
	tpl := paperTemplate(t, dict)
	if tpl.NArgs() != 4 {
		t.Errorf("NArgs = %d", tpl.NArgs())
	}
	row := Row{[]byte("1234"), []byte("John Doe"), []byte("2000-05-24"), []byte("Accting")}
	out, err := tpl.String(dict, row)
	if err != nil {
		t.Fatal(err)
	}
	want := `<Emp id="1234" name="John Doe"><HIRE>2000-05-24</HIRE><department>Accting</department></Emp>`
	if out != want {
		t.Errorf("got  %s\nwant %s", out, want)
	}
	// The template is shared across rows: a second row reuses it unchanged.
	row2 := Row{[]byte("99"), []byte("Jane Roe"), []byte("2001-01-01"), []byte("Eng")}
	out2, _ := tpl.String(dict, row2)
	if !strings.Contains(out2, `id="99"`) || !strings.Contains(out2, "Eng") {
		t.Errorf("second row: %s", out2)
	}
}

func TestNestedAndConcat(t *testing.T) {
	dict := xml.NewDict()
	expr := Element("r",
		Element("a", Text(0)),
		Concat(Lit("mid"), Element("b", Lit("x"))),
		Element("c"),
	)
	tpl, err := Compile(expr, dict)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tpl.String(dict, Row{[]byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	if out != `<r><a>v</a>mid<b>x</b><c/></r>` {
		t.Errorf("got %s", out)
	}
}

func TestCompileErrors(t *testing.T) {
	dict := xml.NewDict()
	if _, err := Compile(Attributes(Attr("a", 0)), dict); err == nil {
		t.Error("bare XMLATTRIBUTES should fail")
	}
	if _, err := Compile(Element("e", Text(0), Attributes(Attr("a", 1))), dict); err == nil {
		t.Error("late XMLATTRIBUTES should fail")
	}
}

func TestRowArityChecked(t *testing.T) {
	dict := xml.NewDict()
	tpl, _ := Compile(Element("e", Text(3)), dict)
	if _, err := tpl.String(dict, Row{[]byte("only-one")}); err == nil {
		t.Error("short row should fail")
	}
}

func TestEscapingThroughTemplate(t *testing.T) {
	dict := xml.NewDict()
	tpl, _ := Compile(Element("e", Attributes(Attr("a", 0)), Text(1)), dict)
	out, err := tpl.String(dict, Row{[]byte(`x"<&`), []byte("a<b&c")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `a="x&quot;&lt;&amp;"`) || !strings.Contains(out, "a&lt;b&amp;c") {
		t.Errorf("escaping broken: %s", out)
	}
}

func TestXMLAggOrderBy(t *testing.T) {
	dict := xml.NewDict()
	tpl, _ := Compile(Element("emp", Attributes(Attr("id", 0)), Text(1)), dict)
	agg := NewAgg(tpl)
	// Insert in random order; ORDER BY name.
	rows := []struct{ id, name string }{
		{"3", "carol"}, {"1", "alice"}, {"4", "dave"}, {"2", "bob"}, {"5", "erin"},
	}
	for _, r := range rows {
		agg.Add(Row{[]byte(r.id), []byte(r.name)}, []byte(r.name))
	}
	var buf bytes.Buffer
	if err := agg.SerializeInto(&buf, dict, "emps"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	order := []string{"alice", "bob", "carol", "dave", "erin"}
	last := -1
	for _, n := range order {
		i := strings.Index(out, ">"+n+"<")
		if i < 0 || i < last {
			t.Fatalf("order wrong at %s: %s", n, out)
		}
		last = i
	}
	if !strings.HasPrefix(out, "<emps>") || !strings.HasSuffix(out, "</emps>") {
		t.Errorf("wrapper missing: %s", out)
	}
}

func TestQuicksortMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		keys := make([][]byte, n)
		rows := make([]Row, n)
		var want []string
		for i := 0; i < n; i++ {
			k := []byte(fmt.Sprintf("%04d", rng.Intn(50)))
			keys[i] = k
			rows[i] = Row{k}
			want = append(want, string(k))
		}
		sort.Strings(want)
		quicksort(rows, keys, 0, n-1)
		for i := 0; i < n; i++ {
			if string(keys[i]) != want[i] {
				t.Fatalf("trial %d: position %d = %s, want %s", trial, i, keys[i], want[i])
			}
			if string(rows[i][0]) != want[i] {
				t.Fatalf("trial %d: rows not permuted with keys", trial)
			}
		}
	}
}

func TestTokenStreamInsertable(t *testing.T) {
	dict := xml.NewDict()
	tpl, _ := Compile(Element("doc", Element("v", Text(0))), dict)
	stream, err := tpl.TokenStream(Row{[]byte("42")})
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 {
		t.Fatal("empty stream")
	}
	// The stream round-trips through the serializer.
	tpl2out, _ := tpl.String(dict, Row{[]byte("42")})
	if tpl2out != `<doc><v>42</v></doc>` {
		t.Errorf("got %s", tpl2out)
	}
}

func BenchmarkTemplateEmit(b *testing.B) {
	dict := xml.NewDict()
	expr := Element("Emp",
		Attributes(Attr("id", 0), Attr("name", 1)),
		Forest(As("hire", 2), As("department", 3)),
	)
	tpl, _ := Compile(expr, dict)
	row := Row{[]byte("1234"), []byte("John Doe"), []byte("2000-05-24"), []byte("Accting")}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tpl.Serialize(&buf, dict, row); err != nil {
			b.Fatal(err)
		}
	}
}
