package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"rx/internal/pagestore"
)

// Backup and restore — the remaining "utilities" of Figure 1. A backup is a
// checkpoint-consistent page-level copy of the whole database: because
// packed XML data lives in ordinary pages, the relational backup format
// covers it with no XML-specific code, which is precisely the reuse the
// paper argues for.
//
// Format: magic u32, page count u32, then each page as 8 KiB raw bytes,
// followed by a CRC32 of everything after the magic.

const backupMagic = 0x52584255 // "RXBU"

// Backup flushes all dirty pages and streams a consistent snapshot to w.
// Concurrent writers must be quiesced by the caller (take collection locks
// or stop transactions), as with any offline backup.
func (db *DB) Backup(w io.Writer) error {
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	n := db.store.NumPages()
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], backupMagic)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	var cnt [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(n))
	crc.Write(cnt[:])
	buf := make([]byte, pagestore.PageSize)
	for id := pagestore.PageID(0); id < n; id++ {
		if err := db.store.ReadPage(id, buf); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		crc.Write(buf)
	}
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return err
}

// Restore reads a backup stream into a fresh store and opens the database.
func Restore(r io.Reader, store pagestore.Store, opts Options) (*DB, error) {
	if store.NumPages() != 0 {
		return nil, errors.New("core: restore target store is not empty")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != backupMagic {
		return nil, errors.New("core: not a backup stream")
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	crc := crc32.NewIEEE()
	crc.Write(hdr[4:8])
	buf := make([]byte, pagestore.PageSize)
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("core: truncated backup at page %d: %w", i, err)
		}
		id, err := store.Allocate()
		if err != nil {
			return nil, err
		}
		if err := store.WritePage(id, buf); err != nil {
			return nil, err
		}
		crc.Write(buf)
	}
	var sum [4]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("core: backup checksum missing: %w", err)
	}
	if binary.BigEndian.Uint32(sum[:]) != crc.Sum32() {
		return nil, errors.New("core: backup checksum mismatch")
	}
	if err := store.Sync(); err != nil {
		return nil, err
	}
	return Open(store, opts)
}
