package core

import (
	"bytes"
	"testing"

	"rx/internal/pagestore"
	"rx/internal/xml"
)

func TestBackupRestore(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.CreateValueIndex("ix", "//v", xml.TDouble)
	var ids []xml.DocID
	for i := 0; i < 20; i++ {
		id, err := col.Insert([]byte(`<r><v>` + itoa(i) + `</v></r>`))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	var backup bytes.Buffer
	if err := db.Backup(&backup); err != nil {
		t.Fatal(err)
	}

	db2, err := Restore(bytes.NewReader(backup.Bytes()), pagestore.NewMemStore(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	col2, err := db2.Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := col2.Count()
	if n != 20 {
		t.Fatalf("restored %d docs", n)
	}
	var buf bytes.Buffer
	if err := col2.Serialize(ids[7], &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != `<r><v>7</v></r>` {
		t.Errorf("restored doc = %s", buf.String())
	}
	res, plan, err := col2.Query("/r[v = 7]")
	if err != nil || len(res) != 1 {
		t.Fatalf("restored query: %v %v (plan %v)", res, err, plan)
	}
	if err := col2.CheckConsistency(); err != nil {
		t.Fatalf("restored consistency: %v", err)
	}
	// Restored databases accept new writes.
	if _, err := col2.Insert([]byte(`<r><v>999</v></r>`)); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("junk")), pagestore.NewMemStore(), Options{}); err == nil {
		t.Error("junk stream should fail")
	}
	db := newDB(t)
	db.CreateCollection("c", CollectionOptions{})
	var backup bytes.Buffer
	if err := db.Backup(&backup); err != nil {
		t.Fatal(err)
	}
	// Truncated stream.
	if _, err := Restore(bytes.NewReader(backup.Bytes()[:backup.Len()/2]), pagestore.NewMemStore(), Options{}); err == nil {
		t.Error("truncated backup should fail")
	}
	// Corrupted page flips the checksum.
	corrupt := append([]byte(nil), backup.Bytes()...)
	corrupt[9000] ^= 0xFF
	if _, err := Restore(bytes.NewReader(corrupt), pagestore.NewMemStore(), Options{}); err == nil {
		t.Error("corrupted backup should fail the checksum")
	}
	// Non-empty target store.
	st := pagestore.NewMemStore()
	st.Allocate()
	if _, err := Restore(bytes.NewReader(backup.Bytes()), st, Options{}); err == nil {
		t.Error("non-empty target should fail")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
