package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rx/internal/btree"
	"rx/internal/pagestore"
	"rx/internal/wal"
	"rx/internal/xml"
)

func batchDoc(i int) []byte {
	return []byte(fmt.Sprintf(
		`<item><sku>SKU-%03d</sku><qty>%d</qty><note>doc number %d</note></item>`,
		i, i*3, i))
}

// dumpTree flattens a B+tree to its logical (key, value) entry list.
func dumpTree(t *testing.T, tr *btree.Tree) []btree.Entry {
	t.Helper()
	var out []btree.Entry
	err := tr.Scan(nil, nil, func(e btree.Entry) bool {
		out = append(out, btree.Entry{
			Key:   append([]byte(nil), e.Key...),
			Value: append([]byte(nil), e.Value...),
		})
		return true
	})
	if err != nil {
		t.Fatalf("tree scan: %v", err)
	}
	return out
}

func treesEqual(t *testing.T, name string, a, b []btree.Entry) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: entry count %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			t.Fatalf("%s: entry %d differs:\n  %x=%x\n  %x=%x",
				name, i, a[i].Key, a[i].Value, b[i].Key, b[i].Value)
		}
	}
}

// setupBatchCol builds the reference collection shape used by the
// equivalence tests: two typed value indexes over the batchDoc schema.
func setupBatchCol(t *testing.T, db *DB, versioned bool) *Collection {
	t.Helper()
	col, err := db.CreateCollection("c", CollectionOptions{Versioned: versioned, PackThreshold: 300})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.CreateValueIndex("ix_qty", "//qty", xml.TDouble); err != nil {
		t.Fatal(err)
	}
	if err := col.CreateValueIndex("ix_sku", "//sku", xml.TString); err != nil {
		t.Fatal(err)
	}
	return col
}

// TestInsertBatchMatchesSequentialInserts is the bulk-loader correctness
// anchor: a batch insert must leave byte-identical logical index contents
// (DocID index, NodeID index, every value index) to N sequential Inserts of
// the same documents, and the batch database must pass full physical and
// structural verification.
func TestInsertBatchMatchesSequentialInserts(t *testing.T) {
	for _, versioned := range []bool{false, true} {
		t.Run(fmt.Sprintf("versioned=%v", versioned), func(t *testing.T) {
			const n = 40
			docs := make([][]byte, n)
			for i := range docs {
				docs[i] = batchDoc(i)
			}

			seqDB, batchDB := newDB(t), newDB(t)
			seqCol := setupBatchCol(t, seqDB, versioned)
			batchCol := setupBatchCol(t, batchDB, versioned)

			seqIDs := make([]xml.DocID, n)
			for i, d := range docs {
				id, err := seqCol.Insert(d)
				if err != nil {
					t.Fatalf("sequential insert %d: %v", i, err)
				}
				seqIDs[i] = id
			}
			batchIDs, err := batchCol.InsertBatch(docs, BatchOptions{})
			if err != nil {
				t.Fatalf("InsertBatch: %v", err)
			}
			if len(batchIDs) != n {
				t.Fatalf("InsertBatch returned %d ids, want %d", len(batchIDs), n)
			}
			for i := range seqIDs {
				if seqIDs[i] != batchIDs[i] {
					t.Fatalf("DocID %d: sequential %d vs batch %d", i, seqIDs[i], batchIDs[i])
				}
			}

			// Logical index contents must match byte for byte. (Physical page
			// layouts may differ — sorted insertion packs leaves differently —
			// which is exactly why the comparison is over entries, not pages.)
			treesEqual(t, "docIx", dumpTree(t, seqCol.docIx), dumpTree(t, batchCol.docIx))
			treesEqual(t, "nodeIx", dumpTree(t, seqCol.nodeIx.Tree()), dumpTree(t, batchCol.nodeIx.Tree()))
			if len(seqCol.valIxs) != 2 || len(batchCol.valIxs) != 2 {
				t.Fatalf("value index count: %d vs %d", len(seqCol.valIxs), len(batchCol.valIxs))
			}
			for i := range seqCol.valIxs {
				treesEqual(t, "valIx "+seqCol.valIxs[i].meta.Name,
					dumpTree(t, seqCol.valIxs[i].ix.Tree()),
					dumpTree(t, batchCol.valIxs[i].ix.Tree()))
			}

			// Documents round-trip from the batch store.
			for i, id := range batchIDs {
				var buf bytes.Buffer
				if err := batchCol.Serialize(id, &buf); err != nil {
					t.Fatalf("serialize batch doc %d: %v", i, err)
				}
				if buf.String() != string(docs[i]) {
					t.Fatalf("batch doc %d round-trip:\n got %s\nwant %s", i, buf.String(), docs[i])
				}
			}

			// Queries resolve through the value indexes.
			hits, plan, err := batchCol.Query("/item[qty = 21]")
			if err != nil || len(hits) != 1 || hits[0].Doc != batchIDs[7] {
				t.Fatalf("indexed query after batch: hits=%v plan=%v err=%v", hits, plan, err)
			}

			// Physical + structural cross-check of the batch database.
			if err := batchDB.VerifyPages(); err != nil {
				t.Fatalf("VerifyPages after batch: %v", err)
			}
			rep, err := batchDB.ScrubPass(nil)
			if err != nil {
				t.Fatalf("ScrubPass after batch: %v", err)
			}
			if !rep.Clean() {
				t.Fatalf("scrub found damage after batch: %+v", rep)
			}
		})
	}
}

// TestInsertBatchSingleCommit verifies the WAL half of the bulk-load win:
// a 10-document batch costs exactly one transaction commit (and is durable).
func TestInsertBatchSingleCommit(t *testing.T) {
	store := pagestore.NewMemStore()
	log, err := wal.Open(&wal.MemDevice{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(store, Options{WAL: log})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := db.CreateCollection("c", CollectionOptions{})
	db.Checkpoint()

	docs := make([][]byte, 10)
	for i := range docs {
		docs[i] = batchDoc(i)
	}
	before := log.CommitCount()
	ids, err := col.InsertBatch(docs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := log.CommitCount() - before; got != 1 {
		t.Errorf("batch of %d docs issued %d commits, want 1", len(docs), got)
	}

	// Crash without flushing pages: recovery must redo the whole batch.
	log.FlushAll()
	db2, err := Recover(store, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col2, err := db2.Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		var buf bytes.Buffer
		if err := col2.Serialize(id, &buf); err != nil {
			t.Fatalf("batch doc %d lost across recovery: %v", i, err)
		}
		if buf.String() != string(docs[i]) {
			t.Fatalf("batch doc %d after recovery = %s", i, buf.String())
		}
	}
}

// TestInsertBatchRejectsBadDocument verifies all-or-nothing parsing: a
// malformed document anywhere in the batch fails the whole batch before any
// mutation, and a later batch starts at an uncontaminated state.
func TestInsertBatchRejectsBadDocument(t *testing.T) {
	db := newDB(t)
	col := setupBatchCol(t, db, false)

	docs := [][]byte{batchDoc(0), []byte(`<broken><unclosed>`), batchDoc(2)}
	if _, err := col.InsertBatch(docs, BatchOptions{}); err == nil {
		t.Fatal("batch with malformed document succeeded")
	} else if !strings.Contains(err.Error(), "batch document 1") {
		t.Errorf("error should name the offending document: %v", err)
	}
	if n, _ := col.Count(); n != 0 {
		t.Fatalf("failed batch left %d documents behind", n)
	}
	if cnt, _ := col.nodeIx.Count(); cnt != 0 {
		t.Fatalf("failed batch left %d node index entries", cnt)
	}

	ids, err := col.InsertBatch([][]byte{batchDoc(0), batchDoc(1)}, BatchOptions{})
	if err != nil {
		t.Fatalf("clean batch after failed batch: %v", err)
	}
	if len(ids) != 2 || !col.Has(ids[0]) || !col.Has(ids[1]) {
		t.Fatalf("clean batch not fully stored: %v", ids)
	}
	if err := db.VerifyPages(); err != nil {
		t.Fatalf("VerifyPages: %v", err)
	}
}

// TestInsertBatchEmpty: a zero-length batch is a no-op, not an error.
func TestInsertBatchEmpty(t *testing.T) {
	db := newDB(t)
	col := setupBatchCol(t, db, false)
	ids, err := col.InsertBatch(nil, BatchOptions{})
	if err != nil || ids != nil {
		t.Fatalf("empty batch: ids=%v err=%v", ids, err)
	}
}
