package core

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// benchDoc builds a ~1.5 KiB product document with mixed attributes and text.
func benchDoc(i int) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<Product pid="%d" cat="tools">`, i)
	fmt.Fprintf(&sb, `<Name>Widget %d</Name><Price>%d.99</Price>`, i, i%97)
	for j := 0; j < 16; j++ {
		fmt.Fprintf(&sb, `<Part num="%d-%d"><Desc>part %d of product %d, standard finish</Desc><Qty>%d</Qty></Part>`,
			i, j, j, i, j*3)
	}
	sb.WriteString(`</Product>`)
	return []byte(sb.String())
}

// BenchmarkBulkLoad measures the full parse→pack→index ingest path through
// InsertBatch (E16's load path). The per-op unit is one 32-document batch.
func BenchmarkBulkLoad(b *testing.B) {
	db, err := OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateCollection("bench", CollectionOptions{})
	if err != nil {
		b.Fatal(err)
	}
	docs := make([][]byte, 32)
	for i := range docs {
		docs[i] = benchDoc(i)
	}
	var bytesPerBatch int64
	for _, d := range docs {
		bytesPerBatch += int64(len(d))
	}
	b.ReportAllocs()
	b.SetBytes(bytesPerBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := col.InsertBatch(docs, BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsert measures the single-document insert path.
func BenchmarkInsert(b *testing.B) {
	db, err := OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateCollection("bench", CollectionOptions{})
	if err != nil {
		b.Fatal(err)
	}
	doc := benchDoc(1)
	b.ReportAllocs()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := col.Insert(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanQuery measures the stored-document scan path (zero-copy
// borrowed reads): a value-returning query evaluated by walking records.
func BenchmarkScanQuery(b *testing.B) {
	db, err := OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateCollection("bench", CollectionOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := col.Insert(benchDoc(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, _, err := col.QueryOpts("/Product/Part/Qty", QueryOptions{NeedValues: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rs) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkSerialize measures document serialization from stored records
// (zero-copy walk feeding the serializer).
func BenchmarkSerialize(b *testing.B) {
	db, err := OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateCollection("bench", CollectionOptions{})
	if err != nil {
		b.Fatal(err)
	}
	id, err := col.Insert(benchDoc(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := col.Serialize(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
