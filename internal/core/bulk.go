package core

// Bulk document loading. InsertBatch amortizes the three per-document costs
// of the regular insert path over a whole batch: (1) index maintenance —
// NodeID-, DocID- and value-index entries are accumulated in memory, sorted,
// and applied with in-order B+tree insertion instead of interleaved
// per-record puts; (2) WAL traffic — the batch commits once, so force-at-
// commit syncs the device once instead of once per document; (3) parse
// failures — every document is parsed (or schema-validated) before anything
// mutates, so a bad document rejects the batch without burning DocIDs.
//
// Atomicity matches the transactional insert path: each document's logical
// undo record is logged before any page effects, so a crash mid-batch makes
// the whole batch a loser that recovery wipes; an in-process error triggers
// the same wipe immediately and logs an abort.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"rx/internal/arena"
	"rx/internal/heap"
	"rx/internal/memgov"
	"rx/internal/nodeid"
	"rx/internal/pack"
	"rx/internal/quickxscan"
	"rx/internal/valueindex"
	"rx/internal/xml"
	"rx/internal/xmlparse"
	"rx/internal/xmlschema"
)

// BatchOptions configures InsertBatch.
type BatchOptions struct {
	// Schema, when non-empty, validates every document against the named
	// registered schema (storing typed token streams) instead of plain
	// parsing.
	Schema string
	// Mem, when non-nil, charges the batch's staging memory (parse arena,
	// ingest arena) against a budget; a breach rejects the batch with
	// rxerr.ErrOverBudget before (parse) or with a full wipe after (ingest)
	// any page effects.
	Mem *memgov.Budget
}

// InsertBatch parses and stores many documents as one atomic batch,
// maintaining all indexes, and returns their DocIDs in input order. See the
// package comment above for what the batch path amortizes.
func (c *Collection) InsertBatch(docs [][]byte, opts BatchOptions) ([]xml.DocID, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	if err := c.db.checkWritable(); err != nil {
		return nil, err
	}
	// One parse arena for the whole batch: every stream lives in it until
	// the batch insert completes (pass 4 re-scans streams for value-index
	// keys), then the lot resets at once. Its chunks are the batch's first
	// real staging allocation, charged against the memory budget as they
	// grow — a document set too big for the budget dies here, before any
	// DocID is burned or page touched.
	pa := parseArenas.Get().(*arena.Arena)
	defer func() { pa.Reset(); parseArenas.Put(pa) }()
	var charged int64
	defer func() { opts.Mem.Release(charged) }()
	foot := int64(pa.Footprint())
	if err := opts.Mem.Reserve(foot); err != nil {
		return nil, err
	}
	charged = foot
	streams := make([][]byte, len(docs))
	for i, doc := range docs {
		var stream []byte
		var err error
		if opts.Schema != "" {
			sch, serr := c.db.compiledSchema(opts.Schema)
			if serr != nil {
				return nil, serr
			}
			stream, err = xmlschema.Validate(doc, sch, c.db.cat)
		} else {
			stream, err = xmlparse.Parse(doc, c.db.cat, xmlparse.Options{Arena: pa})
		}
		if err != nil {
			return nil, fmt.Errorf("core: batch document %d: %w", i, err)
		}
		if now := int64(pa.Footprint()); now > foot {
			if err := opts.Mem.Reserve(now - foot); err != nil {
				return nil, err
			}
			charged += now - foot
			foot = now
		}
		streams[i] = stream
	}
	return c.insertStreamBatch(streams, opts.Mem)
}

// nodeEntry is one deferred NodeID-index insertion.
type nodeEntry struct {
	doc   xml.DocID
	upper nodeid.ID
	rid   heap.RID
}

// valEntry is one deferred value-index insertion, key pre-assembled.
type valEntry struct {
	key []byte
	rid heap.RID
}

// insertStreamBatch stores pre-parsed token streams as one batch, charging
// ingest staging against mem (nil = ungoverned).
func (c *Collection) insertStreamBatch(streams [][]byte, mem *memgov.Budget) (ids []xml.DocID, err error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()

	ids = make([]xml.DocID, len(streams))
	// The error returns below are `return nil, err`, which clears the named
	// ids — the cleanup must range over its own reference to the slice or it
	// would see an empty batch and leave half-inserted documents visible.
	allocated := ids
	var txn uint64
	// Any failure past this point may have mutated pages for some of the
	// documents; wipe whatever exists of each and abort the batch's
	// transaction, exactly as recovery would after a crash mid-batch.
	defer func() {
		if err == nil {
			return
		}
		c.db.noteWriteErr(err)
		for _, id := range allocated {
			if id == 0 {
				continue
			}
			if werr := c.wipeDocLocked(id); werr != nil {
				// The wipe itself failed (full device blocking an eviction's
				// write-ahead flush): park it as compensation debt so the
				// partial document cannot outlive degraded mode.
				c.db.deferCompensation(
					[]logicalOp{{Kind: "insert", Col: c.meta.Name, Doc: id}}, werr)
			}
		}
		if c.db.log != nil && txn != 0 {
			_, _ = c.db.log.Abort(txn)
		}
	}()
	for i := range streams {
		if ids[i], err = c.db.cat.AllocDocID(c.meta); err != nil {
			return nil, err
		}
	}
	if c.db.log != nil {
		txn = txnSeq.Add(1)
		c.db.log.Begin(txn)
		// Undo-before-effects invariant (see txn.go): every document's undo
		// record is durable-ordered before any of the batch's page deltas.
		for _, id := range ids {
			payload, jerr := json.Marshal(logicalOp{Kind: "insert", Col: c.meta.Name, Doc: id})
			if jerr != nil {
				err = jerr
				return nil, err
			}
			c.db.log.Logical(txn, payload)
		}
	}

	// Pass 1 — shred: heap records are inserted document by document (the
	// packer emits them bottom-up), while the NodeID-index entries they
	// produce are only accumulated. Packing and key scratch for the whole
	// batch comes from the ingest arena, reset once per batch: the
	// interval endpoints accumulated in nodes (pass 2) and the assembled
	// value keys (pass 4) stay valid until then.
	a := c.ingestArena()
	defer a.Reset()
	// The ingest arena is the batch's other staging ground (pack scratch,
	// interval endpoints, value keys); charge its growth against the budget
	// at the pass boundaries where it grows.
	ingestFoot := int64(a.Footprint())
	var ingestCharged int64
	defer func() { mem.Release(ingestCharged) }()
	chargeIngest := func() error {
		if now := int64(a.Footprint()); now > ingestFoot {
			if rerr := mem.Reserve(now - ingestFoot); rerr != nil {
				return rerr
			}
			ingestCharged += now - ingestFoot
			ingestFoot = now
		}
		return nil
	}
	var nodes []nodeEntry
	docBytes := make([]int64, len(streams))
	var records int64
	for i, stream := range streams {
		docID := ids[i]
		err = pack.PackStreamArena(stream, c.packThreshold(), a, func(rec pack.EncodedRecord) error {
			docBytes[i] += int64(len(rec.Payload))
			records++
			rid, herr := c.xmlTbl.Insert(xmlRow(docID, rec.MinNodeID, rec.Payload))
			if herr != nil {
				return herr
			}
			for _, upper := range rec.Intervals {
				nodes = append(nodes, nodeEntry{doc: docID, upper: upper, rid: rid})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if err = chargeIngest(); err != nil {
		return nil, err
	}

	// Pass 2 — NodeID index, in key order: (DocID, NodeID) sorts exactly
	// like the tree's composite keys, so the B+tree sees monotone inserts.
	sort.Slice(nodes, func(a, b int) bool {
		if nodes[a].doc != nodes[b].doc {
			return nodes[a].doc < nodes[b].doc
		}
		return bytes.Compare(nodes[a].upper, nodes[b].upper) < 0
	})
	for _, e := range nodes {
		if c.meta.Versioned {
			err = c.nodeIx.PutV(e.doc, 1, e.upper, e.rid)
		} else {
			err = c.nodeIx.Put(e.doc, e.upper, e.rid)
		}
		if err != nil {
			return nil, err
		}
	}

	// Pass 3 — base rows and the DocID index (IDs ascend, so these puts are
	// in key order already).
	for _, id := range ids {
		baseRID, berr := c.base.Insert(c.baseRow(id, 1))
		if berr != nil {
			err = berr
			return nil, err
		}
		var d [8]byte
		binary.BigEndian.PutUint64(d[:], uint64(id))
		if err = c.docIx.Put(d[:], baseRID.Bytes()); err != nil {
			return nil, err
		}
	}

	// Pass 4 — value indexes: accumulate every document's keys per index,
	// sort, insert in order. Needs the NodeID index populated (pass 2) to
	// resolve match nodes to record RIDs.
	ixEntries := map[string]int64{}
	for _, ov := range c.valIxs {
		var entries []valEntry
		for i, stream := range streams {
			matches, merr := quickxscan.EvalTokens(ov.keygen, stream)
			if merr != nil {
				err = merr
				return nil, err
			}
			for _, m := range matches {
				rid, lerr := c.lookupCur(ids[i], m.ID)
				if lerr != nil {
					err = lerr
					return nil, err
				}
				enc, eerr := valueindex.EncodeTypedInto(a.Make(2*len(m.Value)+18), ov.ix.Type(), m.Value)
				if eerr != nil {
					if errors.Is(eerr, valueindex.ErrNotIndexable) {
						continue
					}
					err = eerr
					return nil, err
				}
				key := valueindex.AppendEntryKey(a.Make(len(enc)+8+len(m.ID)), enc, ids[i], m.ID)
				entries = append(entries, valEntry{key: key, rid: rid})
			}
		}
		sort.Slice(entries, func(a, b int) bool {
			return bytes.Compare(entries[a].key, entries[b].key) < 0
		})
		for _, e := range entries {
			if err = ov.ix.PutKey(e.key, e.rid); err != nil {
				return nil, err
			}
		}
		ixEntries[ov.meta.Name] += int64(len(entries))
	}
	if err = chargeIngest(); err != nil {
		return nil, err
	}

	// One commit — one device sync — for the whole batch.
	if c.db.log != nil {
		if _, err = c.db.log.Commit(txn); err != nil {
			return nil, err
		}
	}
	c.noteBatch(docBytes, records, streams, ixEntries)
	return ids, nil
}
