package core

import (
	"errors"
	"fmt"

	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/valueindex"
	"rx/internal/xml"
)

// CheckConsistency verifies the collection's cross-structure invariants —
// the engine's analogue of the "utilities" box in the paper's Figure 1
// (CHECK INDEX and friends):
//
//  1. Every stored record's node-ID intervals have exactly one NodeID-index
//     entry, keyed by the interval's upper endpoint and pointing at the
//     record's RID (current version for versioned collections).
//  2. Every NodeID-index entry resolves back to a record that contains the
//     endpoint node.
//  3. Every XPath value index holds exactly the keys re-derived by
//     evaluating its path over the stored documents.
//  4. Every document in the DocID index serializes without error.
func (c *Collection) CheckConsistency() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	docs, err := c.DocIDs()
	if err != nil {
		return err
	}
	for _, doc := range docs {
		if err := c.checkDoc(doc); err != nil {
			return fmt.Errorf("doc %d: %w", doc, err)
		}
	}
	for _, ov := range c.indexSnapshot() {
		if err := c.checkValueIndex(ov, docs); err != nil {
			return fmt.Errorf("index %q: %w", ov.meta.Name, err)
		}
	}
	return nil
}

func (c *Collection) checkDoc(doc xml.DocID) error {
	// Gather the document's entries (current version).
	type entry struct {
		upper nodeid.ID
		rid   heap.RID
	}
	var entries []entry
	if c.meta.Versioned {
		ver, err := c.currentVersion(doc)
		if err != nil {
			return err
		}
		err = c.nodeIx.ScanVersion(doc, ver, func(upper nodeid.ID, rid heap.RID) bool {
			entries = append(entries, entry{nodeid.Clone(upper), rid})
			return true
		})
		if err != nil {
			return err
		}
	} else {
		err := c.nodeIx.ScanDoc(doc, func(upper nodeid.ID, rid heap.RID) bool {
			entries = append(entries, entry{nodeid.Clone(upper), rid})
			return true
		})
		if err != nil {
			return err
		}
	}
	if len(entries) == 0 {
		return errors.New("no NodeID entries")
	}
	// Invariant 2 + derive per-record intervals for invariant 1.
	perRID := map[heap.RID][]string{}
	for _, e := range entries {
		rec, err := c.fetchRecord(e.rid)
		if err != nil {
			return fmt.Errorf("entry %s → %s: %w", e.upper, e.rid, err)
		}
		n, found, err := rec.Find(e.upper)
		if err != nil {
			return err
		}
		if !found || n.IsProxy() {
			return fmt.Errorf("entry %s → %s: endpoint not in record", e.upper, e.rid)
		}
		perRID[e.rid] = append(perRID[e.rid], e.upper.String())
	}
	// Invariant 1: the entry set per record equals the record's intervals.
	for rid, got := range perRID {
		rec, err := c.fetchRecord(rid)
		if err != nil {
			return err
		}
		uppers, _, err := rec.Intervals()
		if err != nil {
			return err
		}
		if len(uppers) != len(got) {
			return fmt.Errorf("record %s: %d entries for %d intervals", rid, len(got), len(uppers))
		}
		want := map[string]bool{}
		for _, u := range uppers {
			want[u.String()] = true
		}
		for _, g := range got {
			if !want[g] {
				return fmt.Errorf("record %s: stray entry %s", rid, g)
			}
		}
	}
	// Invariant 4: the document walks end to end.
	h := &nodeCountHandler{}
	if err := c.WalkDoc(doc, h); err != nil {
		return fmt.Errorf("walk: %w", err)
	}
	if h.nodes == 0 {
		return errors.New("document walks to zero nodes")
	}
	return nil
}

type nodeCountHandler struct{ nodes int }

func (h *nodeCountHandler) StartDocument() error                           { return nil }
func (h *nodeCountHandler) EndDocument() error                             { return nil }
func (h *nodeCountHandler) StartElement(xml.QName, nodeid.ID) error        { h.nodes++; return nil }
func (h *nodeCountHandler) EndElement(nodeid.ID) error                     { return nil }
func (h *nodeCountHandler) NSDecl(xml.NameID, xml.NameID, nodeid.ID) error { h.nodes++; return nil }
func (h *nodeCountHandler) Attribute(xml.QName, []byte, xml.TypeID, nodeid.ID) error {
	h.nodes++
	return nil
}
func (h *nodeCountHandler) Text([]byte, xml.TypeID, nodeid.ID) error { h.nodes++; return nil }
func (h *nodeCountHandler) Comment([]byte, nodeid.ID) error          { h.nodes++; return nil }
func (h *nodeCountHandler) PI(xml.NameID, []byte, nodeid.ID) error   { h.nodes++; return nil }

// checkValueIndex re-derives every document's keys and compares them
// (positions and encoded values) against the index contents.
func (c *Collection) checkValueIndex(ov *openValueIndex, docs []xml.DocID) error {
	want := map[string]bool{}
	for _, doc := range docs {
		matches, err := c.evalStored(doc, ov.keygen)
		if err != nil {
			return err
		}
		for _, m := range matches {
			enc, err := ov.ix.EncodeValue(m.Value)
			if err != nil {
				if errors.Is(err, valueindex.ErrNotIndexable) {
					continue
				}
				return err
			}
			want[fmt.Sprintf("%x/%d/%s", enc, doc, m.ID)] = true
		}
	}
	got := 0
	var stray string
	err := ov.ix.Scan(valueindex.Range{}, func(e valueindex.Entry) bool {
		got++
		k := fmt.Sprintf("%x/%d/%s", e.EncodedValue, e.Doc, e.Node)
		if !want[k] {
			stray = k
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if stray != "" {
		return fmt.Errorf("stray index entry %s", stray)
	}
	if got != len(want) {
		return fmt.Errorf("index holds %d entries, re-derivation yields %d", got, len(want))
	}
	return nil
}
