package core

import (
	"fmt"
	"strings"
	"testing"

	"rx/internal/xml"
)

// TestConsistencyAfterChurn runs the CHECK-INDEX-style verifier after a
// workload of inserts, updates, fragment insertions, subtree deletions and
// document deletions.
func TestConsistencyAfterChurn(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("churn", CollectionOptions{PackThreshold: 500})
	col.CreateValueIndex("ix_qty", "//qty", xml.TDouble)
	col.CreateValueIndex("ix_sku", "//sku", xml.TString)

	var ids []xml.DocID
	for d := 0; d < 12; d++ {
		var sb strings.Builder
		sb.WriteString("<order><items>")
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&sb, `<item><sku>S%03d</sku><qty>%d</qty><pad>%030d</pad></item>`, i, i%9, i)
		}
		sb.WriteString("</items></order>")
		id, err := col.Insert([]byte(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := col.CheckConsistency(); err != nil {
		t.Fatalf("after load: %v", err)
	}

	// Updates on several docs.
	for _, id := range ids[:4] {
		res, _, _ := col.Query(`//item[sku = 'S005']/qty/text()`)
		for _, r := range res {
			if r.Doc == id {
				if err := col.UpdateText(id, r.Node, []byte("99")); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Subtree deletions.
	for _, id := range ids[4:6] {
		res, _, _ := col.Query(`//item[sku = 'S010']`)
		for _, r := range res {
			if r.Doc == id {
				if err := col.DeleteSubtree(id, r.Node); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Fragment insertions.
	for _, id := range ids[6:8] {
		root, _, _ := col.Query("/order/items")
		for _, r := range root {
			if r.Doc == id {
				if _, err := col.InsertFragment(id, r.Node, AsLastChild,
					[]byte(`<item><sku>SNEW</sku><qty>7</qty></item>`)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Document deletions.
	for _, id := range ids[8:10] {
		if err := col.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.CheckConsistency(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
}

// TestConsistencyVersioned checks the versioned invariants after updates
// and vacuum.
func TestConsistencyVersioned(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("v", CollectionOptions{Versioned: true, PackThreshold: 400})
	col.CreateValueIndex("ix", "//v", xml.TDouble)
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "<e><v>%d</v><pad>%030d</pad></e>", i, i)
	}
	sb.WriteString("</r>")
	id, _ := col.Insert([]byte(sb.String()))
	for round := 0; round < 4; round++ {
		res, _, _ := col.Query(`//e[v = 25]/v/text()`)
		if len(res) == 0 {
			res, _, _ = col.Query(`//e[v = 2525]/v/text()`)
		}
		if err := col.UpdateText(id, res[0].Node, []byte("2525")); err != nil {
			t.Fatal(err)
		}
		if err := col.CheckConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	cur, _ := col.SnapshotVersion(id)
	if err := col.Vacuum(id, cur); err != nil {
		t.Fatal(err)
	}
	if err := col.CheckConsistency(); err != nil {
		t.Fatalf("after vacuum: %v", err)
	}
}
