package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"rx/internal/arena"
	"rx/internal/btree"
	"rx/internal/catalog"
	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/nodeindex"
	"rx/internal/pack"
	"rx/internal/quickxscan"
	"rx/internal/serialize"
	"rx/internal/stats"
	"rx/internal/valueindex"
	"rx/internal/vsax"
	"rx/internal/xml"
	"rx/internal/xmlparse"
	"rx/internal/xmlschema"
	"rx/internal/xpath"
)

// Collection is a base table with one XML column (Figure 2).
type Collection struct {
	db   *DB
	meta *catalog.Collection

	base   *heap.Table
	xmlTbl *heap.Table
	docIx  *btree.Tree
	nodeIx *nodeindex.Index

	// writeMu serializes structural writers (insert/delete/update/index
	// DDL). Readers coordinate through the lock manager / MVCC.
	writeMu sync.Mutex
	// ixMu guards valIxs against concurrent readers (query planning) while
	// CreateValueIndex appends; writers additionally hold writeMu.
	ixMu   sync.RWMutex
	valIxs []*openValueIndex

	// ing is the ingest arena: scratch for packing and key generation,
	// reset per document (per batch in InsertBatch). Guarded by writeMu;
	// lazily created. Its footprint stays bounded by the largest document
	// inserted through this collection.
	ing *arena.Arena

	// statsMu guards the live optimizer statistics; planner reads take a
	// snapshot under it. Ordered after writeMu (writers note mutations while
	// holding writeMu), never the other way around.
	statsMu    sync.Mutex
	live       *stats.CollectionStats
	statsDirty int // doc mutations since last catalog persist
	// pathTab interns element paths for PathCounts (own internal mutex);
	// pathStack is insert-path scratch guarded by writeMu.
	pathTab   pathTable
	pathStack []int32
}

// ingestArena returns the collection's ingest arena (caller holds writeMu).
func (c *Collection) ingestArena() *arena.Arena {
	if c.ing == nil {
		c.ing = arena.New()
	}
	return c.ing
}

// indexSnapshot returns the current value-index list for read-only use by
// the query planner; the slice is a copy, so concurrent index DDL cannot
// race with a query iterating it.
func (c *Collection) indexSnapshot() []*openValueIndex {
	c.ixMu.RLock()
	defer c.ixMu.RUnlock()
	return append([]*openValueIndex(nil), c.valIxs...)
}

type openValueIndex struct {
	meta   catalog.ValueIndexMeta
	ix     *valueindex.Index
	keygen *quickxscan.Eval // guarded by writeMu
}

func createCollection(db *DB, name string, opts CollectionOptions) (*Collection, error) {
	base, err := heap.Create(db.pool)
	if err != nil {
		return nil, err
	}
	xmlTbl, err := heap.Create(db.pool)
	if err != nil {
		return nil, err
	}
	docIx, err := btree.Create(db.pool)
	if err != nil {
		return nil, err
	}
	nodeIx, err := nodeindex.Create(db.pool)
	if err != nil {
		return nil, err
	}
	meta := &catalog.Collection{
		Name:          name,
		BaseTable:     base.FirstPage(),
		XMLTable:      xmlTbl.FirstPage(),
		DocIDIndex:    docIx.MetaPage(),
		NodeIDIndex:   nodeIx.MetaPage(),
		PackThreshold: opts.PackThreshold,
		Versioned:     opts.Versioned,
	}
	if err := db.cat.AddCollection(meta); err != nil {
		return nil, err
	}
	c := &Collection{
		db:     db,
		meta:   meta,
		base:   base,
		xmlTbl: xmlTbl,
		docIx:  docIx,
		nodeIx: nodeIx,
	}
	c.initStats()
	return c, nil
}

func openCollection(db *DB, meta *catalog.Collection) (*Collection, error) {
	// Heap opens are tolerant: a damaged chain page must demote only the
	// documents stored on it (scrub quarantines them; repair relinks the
	// chain), not make the whole collection unopenable.
	base := heap.OpenTolerant(db.pool, meta.BaseTable)
	xmlTbl := heap.OpenTolerant(db.pool, meta.XMLTable)
	docIx, err := btree.Open(db.pool, meta.DocIDIndex)
	if err != nil {
		return nil, err
	}
	nodeIx, err := nodeindex.Open(db.pool, meta.NodeIDIndex)
	if err != nil {
		return nil, err
	}
	c := &Collection{
		db:     db,
		meta:   meta,
		base:   base,
		xmlTbl: xmlTbl,
		docIx:  docIx,
		nodeIx: nodeIx,
	}
	for _, im := range meta.Indexes {
		ov, err := c.openValueIndex(im)
		if err != nil {
			return nil, err
		}
		c.valIxs = append(c.valIxs, ov)
	}
	c.initStats()
	return c, nil
}

func (c *Collection) openValueIndex(im catalog.ValueIndexMeta) (*openValueIndex, error) {
	ix, err := valueindex.Open(c.db.pool, im.Meta, im.Path, im.Type)
	if err != nil {
		return nil, err
	}
	kg, err := c.compileKeygen(ix.Path())
	if err != nil {
		return nil, err
	}
	return &openValueIndex{meta: im, ix: ix, keygen: kg}, nil
}

func (c *Collection) compileKeygen(q *xpath.Query) (*quickxscan.Eval, error) {
	return quickxscan.Compile(q, c.db.cat, nil, quickxscan.Options{NeedValues: true})
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.meta.Name }

// NodeIndex exposes the NodeID index (stats, experiments).
func (c *Collection) NodeIndex() *nodeindex.Index { return c.nodeIx }

// XMLTable exposes the internal XML table (stats, experiments).
func (c *Collection) XMLTable() *heap.Table { return c.xmlTbl }

// packThreshold resolves the collection's record-size target.
func (c *Collection) packThreshold() int {
	if c.meta.PackThreshold > 0 {
		return c.meta.PackThreshold
	}
	return pack.DefaultThreshold
}

// xmlRow encodes an internal XML table row: (DocID, minNodeID, XMLData).
func xmlRow(doc xml.DocID, minID nodeid.ID, payload []byte) []byte {
	row := make([]byte, 0, 8+1+len(minID)+len(payload))
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(doc))
	row = append(row, d[:]...)
	row = binary.AppendUvarint(row, uint64(len(minID)))
	row = append(row, minID...)
	return append(row, payload...)
}

// splitXMLRow decodes an internal XML table row.
func splitXMLRow(row []byte) (xml.DocID, nodeid.ID, []byte, error) {
	if len(row) < 9 {
		return 0, nil, nil, errors.New("core: short XML row")
	}
	doc := xml.DocID(binary.BigEndian.Uint64(row))
	l, n := binary.Uvarint(row[8:])
	if n <= 0 || 8+n+int(l) > len(row) {
		return 0, nil, nil, errors.New("core: corrupt XML row")
	}
	minID := nodeid.ID(row[8+n : 8+n+int(l)])
	return doc, minID, row[8+n+int(l):], nil
}

// parseArenas recycles parse arenas across Insert/InsertBatch calls so the
// steady-state ingest path allocates no fresh chunks. Parsing runs outside
// writeMu, so these cannot share the writeMu-guarded ingest arena; a Pool
// keeps them safe under concurrent inserts.
var parseArenas = sync.Pool{New: func() any { return arena.New() }}

// Insert parses and stores an XML document, maintaining all indexes, and
// returns its DocID.
func (c *Collection) Insert(doc []byte) (xml.DocID, error) {
	// The parse arena is call-local (parsing runs outside writeMu, so it
	// cannot share the ingest arena); the stream it backs lives until the
	// insert below completes, after which the whole arena resets at once.
	pa := parseArenas.Get().(*arena.Arena)
	defer func() { pa.Reset(); parseArenas.Put(pa) }()
	stream, err := xmlparse.Parse(doc, c.db.cat, xmlparse.Options{Arena: pa})
	if err != nil {
		return 0, err
	}
	return c.InsertStream(stream)
}

// InsertStream stores a document given as a buffered token stream (the
// Figure-4 pipeline joins here after parsing or validation).
func (c *Collection) InsertStream(stream []byte) (xml.DocID, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	docID, err := c.db.cat.AllocDocID(c.meta)
	if err != nil {
		return 0, err
	}
	if err := c.insertStreamLocked(docID, stream); err != nil {
		return 0, err
	}
	return docID, nil
}

// allocDoc reserves the next DocID without inserting anything. Transactions
// use it to learn the ID before logging the insert's undo record, which must
// be durable before any of the insertion's page effects can be (a crash may
// otherwise redo an uncommitted insert that recovery cannot compensate). An
// ID reserved but never used is just a gap in the sequence.
func (c *Collection) allocDoc() (xml.DocID, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.db.cat.AllocDocID(c.meta)
}

// insertStreamAt stores a document under a pre-reserved DocID.
func (c *Collection) insertStreamAt(docID xml.DocID, stream []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.insertStreamLocked(docID, stream)
}

// insertStreamLocked does the insert work for a preallocated DocID.
// Caller holds writeMu.
func (c *Collection) insertStreamLocked(docID xml.DocID, stream []byte) error {
	// Tree construction: packed records are generated bottom-up in a
	// streaming fashion, and index keys for the NodeID index are generated
	// per record (§3.2). Packing scratch comes from the ingest arena,
	// recycled once the document's pages and index entries own their own
	// copies of the bytes.
	a := c.ingestArena()
	defer a.Reset()
	var docBytes, records int64
	err := pack.PackStreamArena(stream, c.packThreshold(), a, func(rec pack.EncodedRecord) error {
		docBytes += int64(len(rec.Payload))
		records++
		rid, err := c.xmlTbl.Insert(xmlRow(docID, rec.MinNodeID, rec.Payload))
		if err != nil {
			return err
		}
		for _, upper := range rec.Intervals {
			if c.meta.Versioned {
				err = c.nodeIx.PutV(docID, 1, upper, rid)
			} else {
				err = c.nodeIx.Put(docID, upper, rid)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Base table row: the implicit DocID column (plus the current version
	// for versioned collections).
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(docID))
	baseRID, err := c.base.Insert(c.baseRow(docID, 1))
	if err != nil {
		return err
	}
	if err := c.docIx.Put(d[:], baseRID.Bytes()); err != nil {
		return err
	}
	// XPath value index keys: one streaming pass per index (§3.3).
	var ixEntries map[string]int64
	for _, ov := range c.valIxs {
		n, err := c.addValueKeys(ov, docID, stream)
		if err != nil {
			return err
		}
		if n > 0 {
			if ixEntries == nil {
				ixEntries = map[string]int64{}
			}
			ixEntries[ov.meta.Name] += int64(n)
		}
	}
	c.noteInsert(docBytes, records, stream, ixEntries)
	return nil
}

// addValueKeys generates and inserts one index's keys for a document,
// returning how many entries landed.
func (c *Collection) addValueKeys(ov *openValueIndex, docID xml.DocID, stream []byte) (int, error) {
	matches, err := quickxscan.EvalTokens(ov.keygen, stream)
	if err != nil {
		return 0, err
	}
	added := 0
	for _, m := range matches {
		rid, err := c.lookupCur(docID, m.ID)
		if err != nil {
			return added, err
		}
		err = ov.ix.Put(m.Value, docID, m.ID, rid)
		if err != nil {
			if !errors.Is(err, valueindex.ErrNotIndexable) {
				return added, err
			}
			continue
		}
		added++
	}
	return added, nil
}

// Count returns the number of documents.
func (c *Collection) Count() (int, error) { return c.docIx.Count() }

// Has reports whether the document exists.
func (c *Collection) Has(doc xml.DocID) bool {
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(doc))
	_, err := c.docIx.Get(d[:])
	return err == nil
}

// DocIDs returns all document IDs in order.
func (c *Collection) DocIDs() ([]xml.DocID, error) {
	var out []xml.DocID
	err := c.docIx.Scan(nil, nil, func(e btree.Entry) bool {
		out = append(out, xml.DocID(binary.BigEndian.Uint64(e.Key)))
		return true
	})
	return out, err
}

// fetchRecord loads and decodes the packed record at rid.
func (c *Collection) fetchRecord(rid heap.RID) (*pack.Record, error) {
	row, err := c.xmlTbl.Fetch(rid)
	if err != nil {
		return nil, err
	}
	_, _, payload, err := splitXMLRow(row)
	if err != nil {
		return nil, err
	}
	return pack.Decode(payload)
}

// fetcher returns a pack.Fetch resolving proxies through the NodeID index
// (§3.4).
func (c *Collection) fetcher(doc xml.DocID) pack.Fetch {
	return func(first nodeid.ID) (*pack.Record, error) {
		rid, err := c.lookupCur(doc, first)
		if err != nil {
			return nil, err
		}
		return c.fetchRecord(rid)
	}
}

// fetchRecordBorrowed loads the packed record at rid without copying it out
// of the buffer pool: the returned record's body aliases the pinned,
// read-latched heap frame until release is called. Callers must follow the
// single-borrow rule (heap.FetchBorrowed): never hold two borrows on one
// goroutine, and never touch the B+trees while a borrow is outstanding.
func (c *Collection) fetchRecordBorrowed(rid heap.RID) (*pack.Record, func(), error) {
	row, release, err := c.xmlTbl.FetchBorrowed(rid)
	if err != nil {
		return nil, nil, err
	}
	_, _, payload, err := splitXMLRow(row)
	if err != nil {
		release()
		return nil, nil, err
	}
	rec, err := pack.Decode(payload)
	if err != nil {
		release()
		return nil, nil, err
	}
	return rec, release, nil
}

// borrowFetcher is fetcher over the zero-copy path. The pack walker
// guarantees it is only called with no borrow outstanding, so the index
// lookup inside never nests under a heap-page latch.
func (c *Collection) borrowFetcher(doc xml.DocID) pack.FetchBorrow {
	return func(first nodeid.ID) (*pack.Record, func(), error) {
		rid, err := c.lookupCur(doc, first)
		if err != nil {
			return nil, nil, err
		}
		return c.fetchRecordBorrowed(rid)
	}
}

// rootRecord loads the record containing the document root.
func (c *Collection) rootRecord(doc xml.DocID) (*pack.Record, error) {
	rid, err := c.lookupCur(doc, nodeid.Root)
	if err != nil {
		return nil, lookupErr(err, fmt.Sprintf("document %d", doc))
	}
	return c.fetchRecord(rid)
}

// rootRecordBorrowed is rootRecord over the zero-copy path.
func (c *Collection) rootRecordBorrowed(doc xml.DocID) (*pack.Record, func(), error) {
	rid, err := c.lookupCur(doc, nodeid.Root)
	if err != nil {
		return nil, nil, lookupErr(err, fmt.Sprintf("document %d", doc))
	}
	return c.fetchRecordBorrowed(rid)
}

// handlerVisitor adapts pack.Walk to vsax events.
type handlerVisitor struct {
	h vsax.Handler
}

func (v handlerVisitor) Enter(n pack.Node, r *pack.Record) (bool, error) {
	switch n.Kind {
	case xml.Element:
		return true, v.h.StartElement(n.Name, n.Abs)
	case xml.Attribute:
		return true, v.h.Attribute(n.Name, n.Value, n.Type, n.Abs)
	case xml.Namespace:
		return true, v.h.NSDecl(n.Name.Local, n.Name.URI, n.Abs)
	case xml.Text:
		return true, v.h.Text(n.Value, n.Type, n.Abs)
	case xml.Comment:
		return true, v.h.Comment(n.Value, n.Abs)
	case xml.ProcessingInstruction:
		return true, v.h.PI(n.Name.Local, n.Value, n.Abs)
	}
	return true, nil
}

func (v handlerVisitor) Leave(n pack.Node, r *pack.Record) (bool, error) {
	return true, v.h.EndElement(n.Abs)
}

// WalkDoc drives a vsax.Handler with the stored document's events — the
// persistent-data iterator of Figure 8.
func (c *Collection) WalkDoc(doc xml.DocID, h vsax.Handler) error {
	// Zero-copy: the handler sees values aliased into pinned buffer-pool
	// frames; the walker holds at most one pin at a time and releases it
	// before the handler returns control to the caller. Handlers that keep
	// values beyond the event callback must copy (vsax contract).
	root, release, err := c.rootRecordBorrowed(doc)
	if err != nil {
		return err
	}
	if err := h.StartDocument(); err != nil {
		release()
		return err
	}
	if err := pack.WalkBorrowed(root, release, c.borrowFetcher(doc), handlerVisitor{h}); err != nil {
		return err
	}
	return h.EndDocument()
}

// Serialize writes the stored document as XML text.
func (c *Collection) Serialize(doc xml.DocID, w io.Writer) error {
	s := serialize.New(w, c.db.cat)
	if err := c.WalkDoc(doc, s); err != nil {
		return err
	}
	return s.Err()
}

// Delete removes a document and all of its index entries.
func (c *Collection) Delete(doc xml.DocID) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.deleteLocked(doc)
}

func (c *Collection) deleteLocked(doc xml.DocID) error {
	if c.meta.Versioned {
		return c.deleteVersionedDoc(doc)
	}
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(doc))
	baseRIDBytes, err := c.docIx.Get(d[:])
	if err != nil {
		return lookupErr(err, fmt.Sprintf("document %d", doc))
	}
	// Value index entries: regenerate keys from the stored document and
	// delete them exactly (cheaper than scanning whole indexes).
	ixEntries := map[string]int64{}
	for _, ov := range c.valIxs {
		n, err := c.dropValueKeys(ov, doc)
		if err != nil {
			return err
		}
		ixEntries[ov.meta.Name] += int64(n)
	}
	// XML records: collect distinct RIDs from the NodeID index entries, in
	// scan order — page mutations must happen in a deterministic sequence or
	// a fault schedule's operation indices would not reproduce.
	rids, err := c.docRecordRIDs(doc)
	if err != nil {
		return err
	}
	for _, rid := range rids {
		if err := c.xmlTbl.Delete(rid); err != nil {
			return err
		}
	}
	if _, err := c.nodeIx.DeleteDoc(doc); err != nil {
		return err
	}
	if err := c.base.Delete(heap.RIDFromBytes(baseRIDBytes)); err != nil {
		return err
	}
	if err := c.docIx.Delete(d[:]); err != nil {
		return err
	}
	c.noteDelete(int64(len(rids)), ixEntries)
	return nil
}

// docRecordRIDs returns the distinct record RIDs the NodeID index references
// for a document, in first-appearance scan order (deterministic).
func (c *Collection) docRecordRIDs(doc xml.DocID) ([]heap.RID, error) {
	var rids []heap.RID
	seen := map[heap.RID]bool{}
	err := c.nodeIx.ScanDoc(doc, func(upper nodeid.ID, rid heap.RID) bool {
		if !seen[rid] {
			seen[rid] = true
			rids = append(rids, rid)
		}
		return true
	})
	return rids, err
}

// wipeDoc removes whatever exists of a document — records, NodeID entries,
// base row, DocID entry, value keys — tolerating partial state. Rollback and
// recovery compensation use it instead of Delete: after a crash the document
// may be half-inserted or half-deleted, which the strict path refuses to
// touch. Wiping an absent document is a no-op.
func (c *Collection) wipeDoc(doc xml.DocID) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.wipeDocLocked(doc)
}

// wipeDocLocked is wipeDoc for callers already holding writeMu (batch
// rollback wipes many documents under one lock acquisition).
func (c *Collection) wipeDocLocked(doc xml.DocID) error {
	if c.meta.Versioned {
		// Versioned collections switch whole document versions; compensation
		// goes through the regular path, tolerating an absent document.
		err := c.deleteLocked(doc)
		if errors.Is(err, ErrNotFound) {
			return nil
		}
		return err
	}
	// Value keys cannot be re-derived from the tree here: a half-applied
	// update may leave the stored document walking but stale against the
	// index (or not walking at all while pre-update keys survive). Scan the
	// indexes for the document's entries instead — exact regardless of the
	// tree's state.
	ixEntries := map[string]int64{}
	for _, ov := range c.valIxs {
		n, err := ov.ix.DeleteDocEntries(doc)
		if err != nil {
			return err
		}
		ixEntries[ov.meta.Name] += int64(n)
	}
	rids, err := c.docRecordRIDs(doc)
	if err != nil {
		return err
	}
	for _, rid := range rids {
		// A half-applied delete may have freed the row while its index
		// entries survive; treat the missing row as already wiped.
		if err := c.xmlTbl.Delete(rid); err != nil && !errors.Is(err, heap.ErrNotFound) {
			return err
		}
	}
	if _, err := c.nodeIx.DeleteDoc(doc); err != nil {
		return err
	}
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(doc))
	baseRIDBytes, err := c.docIx.Get(d[:])
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return nil // no DocID entry: nothing (left) to wipe
		}
		// Any other failure (a full device blocking an eviction, say) must
		// surface: reporting success here would leave a ghost document
		// visible in the DocID index.
		return err
	}
	if err := c.base.Delete(heap.RIDFromBytes(baseRIDBytes)); err != nil && !errors.Is(err, heap.ErrNotFound) {
		return err
	}
	if err := c.docIx.Delete(d[:]); err != nil && !errors.Is(err, btree.ErrNotFound) {
		return err
	}
	// The DocID entry existed, so the document was counted (a fully-applied
	// insert); half-inserted wipes return above without an entry to delete
	// and were never noted in the first place.
	c.noteDelete(int64(len(rids)), ixEntries)
	return nil
}

// dropValueKeys removes one index's entries for a document by re-deriving
// them from the stored data, returning how many entries it dropped.
func (c *Collection) dropValueKeys(ov *openValueIndex, doc xml.DocID) (int, error) {
	matches, err := c.evalStored(doc, ov.keygen)
	if err != nil {
		return 0, err
	}
	dropped := 0
	for _, m := range matches {
		err := ov.ix.Delete(m.Value, doc, m.ID)
		if err != nil {
			if !errors.Is(err, valueindex.ErrNotIndexable) && !errors.Is(err, btree.ErrNotFound) {
				return dropped, err
			}
			continue
		}
		dropped++
	}
	return dropped, nil
}

// scanAdapter drives a quickxscan evaluator from vsax events.
type scanAdapter struct {
	e       *quickxscan.Eval
	matches []quickxscan.Match
}

func (a *scanAdapter) StartDocument() error { a.e.StartDocument(); return nil }
func (a *scanAdapter) EndDocument() error {
	ms, err := a.e.EndDocument()
	a.matches = ms
	return err
}
func (a *scanAdapter) StartElement(name xml.QName, id nodeid.ID) error {
	a.e.StartElement(name, id)
	return nil
}
func (a *scanAdapter) EndElement(id nodeid.ID) error { a.e.EndElement(id); return nil }
func (a *scanAdapter) NSDecl(prefix, uri xml.NameID, id nodeid.ID) error {
	return nil
}
func (a *scanAdapter) Attribute(name xml.QName, value []byte, typ xml.TypeID, id nodeid.ID) error {
	a.e.Attribute(name, value, id)
	return nil
}
func (a *scanAdapter) Text(value []byte, typ xml.TypeID, id nodeid.ID) error {
	a.e.Text(value, id)
	return nil
}
func (a *scanAdapter) Comment(value []byte, id nodeid.ID) error {
	a.e.Comment(value, id)
	return nil
}
func (a *scanAdapter) PI(target xml.NameID, value []byte, id nodeid.ID) error { return nil }

// evalStored evaluates a compiled query over a stored document by scanning
// its records in document order (the base scan-based access of §4.2).
func (c *Collection) evalStored(doc xml.DocID, e *quickxscan.Eval) ([]quickxscan.Match, error) {
	e.Reset()
	a := &scanAdapter{e: e}
	if err := c.WalkDoc(doc, a); err != nil {
		return nil, err
	}
	return a.matches, nil
}

// InsertValidated validates the document against a registered schema
// (Figure 4: load the binary schema from the catalog, execute the
// validation VM, store the typed token stream) and inserts it.
func (c *Collection) InsertValidated(schemaName string, doc []byte) (xml.DocID, error) {
	sch, err := c.db.compiledSchema(schemaName)
	if err != nil {
		return 0, err
	}
	stream, err := xmlschema.Validate(doc, sch, c.db.cat)
	if err != nil {
		return 0, err
	}
	return c.InsertStream(stream)
}
