package core

// Per-collection optimizer statistics (internal/stats): incremental
// maintenance on the write paths, a scrub-style full refresh, catalog
// persistence, and the snapshot view the cost-based planner prices plans
// with. The contract mirrors a relational optimizer's: scalar counters
// (documents, records, bytes, index entries) track every mutation exactly;
// distinct counts, histograms, and path counts are rebuilt only by
// RefreshStats and go stale in between — estimation degrades gracefully, it
// never blocks a write.

import (
	"sync"
	"sync/atomic"
	"time"

	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/stats"
	"rx/internal/tokens"
	"rx/internal/valueindex"
	"rx/internal/xml"
)

const (
	// statsPersistEvery is how many document mutations may accumulate before
	// the statistics snapshot is rewritten into the catalog row (the same
	// chunking idea as DocID allocation: bulk work must not rewrite the row
	// per document). DB.Close and RefreshStats persist unconditionally.
	statsPersistEvery = 64
	// maxPathDepth bounds the element depth tracked in PathCounts.
	maxPathDepth = 6
	// maxPaths bounds the number of distinct paths tracked.
	maxPaths = 512
)

// pathTable interns rooted element paths as small integers so the hot insert
// path counts elements without building path strings. Safe for concurrent
// use (inserts under writeMu race with background refresh).
type pathTable struct {
	mu   sync.Mutex
	ids  map[pathStep]int32
	strs []string
}

type pathStep struct {
	parent int32 // index of the parent path, -1 for a root element
	name   xml.NameID
}

// pathSkipped marks elements beyond the depth or cardinality caps.
const pathSkipped int32 = -2

func (pt *pathTable) intern(parent int32, name xml.NameID, names xml.Names) int32 {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.ids == nil {
		pt.ids = map[pathStep]int32{}
	}
	k := pathStep{parent: parent, name: name}
	if id, ok := pt.ids[k]; ok {
		return id
	}
	if len(pt.strs) >= maxPaths {
		return pathSkipped
	}
	local, err := names.Lookup(name)
	if err != nil {
		return pathSkipped
	}
	prefix := ""
	if parent >= 0 {
		prefix = pt.strs[parent]
	}
	id := int32(len(pt.strs))
	pt.strs = append(pt.strs, prefix+"/"+local)
	pt.ids[k] = id
	return id
}

// str returns the interned path string.
func (pt *pathTable) str(id int32) string {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.strs[id]
}

// initStats seeds the collection's live statistics at open/create time
// (single-threaded; no locks needed yet). Counters are reconciled against
// the physical state: the persisted snapshot may be up to statsPersistEvery
// mutations (or a crash) behind. The old planner counted both structures on
// every query; once per open is strictly cheaper.
func (c *Collection) initStats() {
	if c.meta.Stats != nil {
		c.live = c.meta.Stats.Clone()
	} else {
		c.live = stats.New()
	}
	docs := c.live.DocCount
	if n, err := c.docIx.Count(); err == nil {
		docs = int64(n)
	}
	if docs != c.live.DocCount {
		c.live.TotalDocBytes = c.live.AvgDocBytes() * docs
		c.live.DocCount = docs
	}
	c.live.RecordCount = int64(c.xmlTbl.Count())
}

// StatsSnapshot returns a copy of the collection's current statistics.
func (c *Collection) StatsSnapshot() *stats.CollectionStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.live.Clone()
}

// StatsEpoch returns the statistics epoch: it increments on every refresh
// and on index DDL, so cached plans keyed on it invalidate on either.
func (c *Collection) StatsEpoch() uint64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.live.Epoch
}

// bumpStatsEpoch invalidates cached plans (index DDL).
func (c *Collection) bumpStatsEpoch() {
	c.statsMu.Lock()
	c.live.Epoch++
	c.statsMu.Unlock()
}

// countStreamPaths walks a token stream and increments per-path element
// counts in pc. Caller holds statsMu (pc is live.PathCounts) and writeMu
// (c.pathStack is insert scratch).
func (c *Collection) countStreamPaths(pc map[string]int64, stream []byte) {
	r := tokens.NewReader(stream)
	stack := c.pathStack[:0]
	for r.More() {
		t, err := r.Next()
		if err != nil {
			break // stats are advisory; never fail a write over them
		}
		switch t.Kind {
		case tokens.StartElement:
			parent := int32(-1)
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			id := pathSkipped
			if parent != pathSkipped && len(stack) < maxPathDepth {
				id = c.pathTab.intern(parent, t.Name.Local, c.db.cat)
			}
			if id >= 0 {
				pc[c.pathTab.str(id)]++
			}
			stack = append(stack, id)
		case tokens.EndElement:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	c.pathStack = stack[:0]
}

// noteInsert records one inserted document. ixEntries maps index name to the
// number of value keys added. Caller holds writeMu.
func (c *Collection) noteInsert(docBytes, records int64, stream []byte, ixEntries map[string]int64) {
	c.statsMu.Lock()
	c.live.DocCount++
	c.live.RecordCount += records
	c.live.TotalDocBytes += docBytes
	if docBytes > c.live.MaxDocBytes {
		c.live.MaxDocBytes = docBytes
	}
	if c.live.PathCounts == nil {
		c.live.PathCounts = map[string]int64{}
	}
	c.countStreamPaths(c.live.PathCounts, stream)
	for name, n := range ixEntries {
		c.live.EnsureIndex(name).Entries += n
	}
	c.statsDirty++
	dirty := c.statsDirty
	c.statsMu.Unlock()
	if dirty >= statsPersistEvery {
		c.persistStats()
	}
}

// noteBatch records one committed bulk load. Caller holds writeMu.
func (c *Collection) noteBatch(docBytes []int64, records int64, streams [][]byte, ixEntries map[string]int64) {
	c.statsMu.Lock()
	c.live.DocCount += int64(len(streams))
	c.live.RecordCount += records
	for _, b := range docBytes {
		c.live.TotalDocBytes += b
		if b > c.live.MaxDocBytes {
			c.live.MaxDocBytes = b
		}
	}
	if c.live.PathCounts == nil {
		c.live.PathCounts = map[string]int64{}
	}
	for _, stream := range streams {
		c.countStreamPaths(c.live.PathCounts, stream)
	}
	for name, n := range ixEntries {
		c.live.EnsureIndex(name).Entries += n
	}
	c.statsDirty += len(streams)
	dirty := c.statsDirty
	c.statsMu.Unlock()
	if dirty >= statsPersistEvery {
		c.persistStats()
	}
}

// noteDelete records one deleted document. Document bytes are unknown at
// delete time, so the average is subtracted (refresh corrects the drift).
func (c *Collection) noteDelete(records int64, ixEntries map[string]int64) {
	c.statsMu.Lock()
	c.live.TotalDocBytes -= c.live.AvgDocBytes()
	if c.live.TotalDocBytes < 0 {
		c.live.TotalDocBytes = 0
	}
	if c.live.DocCount > 0 {
		c.live.DocCount--
	}
	c.live.RecordCount -= records
	if c.live.RecordCount < 0 {
		c.live.RecordCount = 0
	}
	for name, n := range ixEntries {
		if is := c.live.Index(name); is != nil {
			if is.Entries -= n; is.Entries < 0 {
				is.Entries = 0
			}
		}
	}
	c.statsDirty++
	dirty := c.statsDirty
	c.statsMu.Unlock()
	if dirty >= statsPersistEvery {
		c.persistStats()
	}
}

// persistStats writes the current snapshot into the catalog row. Errors are
// swallowed: statistics are advisory and must never fail the write that
// triggered the checkpoint (a full device already fails the write itself).
func (c *Collection) persistStats() {
	c.statsMu.Lock()
	snap := c.live.Clone()
	c.statsDirty = 0
	c.statsMu.Unlock()
	_ = c.db.cat.UpdateCollectionStats(c.meta, snap)
}

// PersistStats forces the snapshot into the catalog row, surfacing errors
// (DB.Close and RefreshStats use it; tests too).
func (c *Collection) PersistStats() error {
	c.statsMu.Lock()
	snap := c.live.Clone()
	c.statsDirty = 0
	c.statsMu.Unlock()
	return c.db.cat.UpdateCollectionStats(c.meta, snap)
}

// pathCountHandler counts elements per path from stored-document walks
// (vsax events) during RefreshStats.
type pathCountHandler struct {
	c      *Collection
	counts map[string]int64
	stack  []int32
}

func (h *pathCountHandler) StartDocument() error { h.stack = h.stack[:0]; return nil }
func (h *pathCountHandler) EndDocument() error   { return nil }
func (h *pathCountHandler) StartElement(name xml.QName, id nodeid.ID) error {
	parent := int32(-1)
	if len(h.stack) > 0 {
		parent = h.stack[len(h.stack)-1]
	}
	pid := pathSkipped
	if parent != pathSkipped && len(h.stack) < maxPathDepth {
		pid = h.c.pathTab.intern(parent, name.Local, h.c.db.cat)
	}
	if pid >= 0 {
		h.counts[h.c.pathTab.str(pid)]++
	}
	h.stack = append(h.stack, pid)
	return nil
}
func (h *pathCountHandler) EndElement(id nodeid.ID) error {
	if len(h.stack) > 0 {
		h.stack = h.stack[:len(h.stack)-1]
	}
	return nil
}
func (h *pathCountHandler) NSDecl(prefix, uri xml.NameID, id nodeid.ID) error { return nil }
func (h *pathCountHandler) Attribute(name xml.QName, value []byte, typ xml.TypeID, id nodeid.ID) error {
	return nil
}
func (h *pathCountHandler) Text(value []byte, typ xml.TypeID, id nodeid.ID) error    { return nil }
func (h *pathCountHandler) Comment(value []byte, id nodeid.ID) error                 { return nil }
func (h *pathCountHandler) PI(target xml.NameID, value []byte, id nodeid.ID) error   { return nil }

// RefreshStats rebuilds the collection's statistics exactly from the stored
// data — sizes and counts from a heap scan, path counts from document walks,
// per-index cardinalities and equi-depth histograms from index scans — then
// swaps them in (carrying forward counter deltas from writes that landed
// mid-rebuild), bumps the epoch, and persists the snapshot. It runs without
// the write lock: a scrub-style background pass must not stall writers, so a
// document deleted mid-walk is simply skipped.
//
// throttle, when non-nil, is called once per document walked and once per
// index-entry chunk scanned, so a background sampler can rate-limit the pass.
func (c *Collection) RefreshStats(throttle func()) error {
	tick := throttle
	if tick == nil {
		tick = func() {}
	}
	// Baseline for the delta carry-forward.
	c.statsMu.Lock()
	base := c.live.Clone()
	c.statsMu.Unlock()

	fresh := stats.New()

	// Documents and sizes: one pass over the internal XML table.
	docBytes := map[xml.DocID]int64{}
	err := c.xmlTbl.Scan(func(_ heap.RID, row []byte) error {
		doc, _, payload, serr := splitXMLRow(row)
		if serr != nil {
			return nil // damaged row: scrub's problem, not the sampler's
		}
		docBytes[doc] += int64(len(payload))
		fresh.RecordCount++
		return nil
	})
	if err != nil {
		return err
	}
	for _, b := range docBytes {
		fresh.TotalDocBytes += b
		if b > fresh.MaxDocBytes {
			fresh.MaxDocBytes = b
		}
	}

	// Path counts: walk each stored document.
	docs, err := c.DocIDs()
	if err != nil {
		return err
	}
	fresh.DocCount = int64(len(docs))
	h := &pathCountHandler{c: c, counts: fresh.PathCounts}
	for _, doc := range docs {
		tick()
		if werr := c.WalkDoc(doc, h); werr != nil {
			continue // deleted or quarantined mid-pass
		}
	}

	// Per-index cardinalities and histograms: one ordered scan each.
	for _, ov := range c.indexSnapshot() {
		b := stats.NewBuilder(stats.HistogramBuckets)
		seen := 0
		err := ov.ix.Scan(valueindex.Range{}, func(e valueindex.Entry) bool {
			if seen++; seen%ctxCheckEvery == 0 {
				tick()
			}
			b.Add(e.EncodedValue)
			return true
		})
		if err != nil {
			return err
		}
		fresh.Indexes[ov.meta.Name] = &stats.IndexStats{
			Entries:  b.Count(),
			Distinct: b.Distinct(),
			Hist:     b.Build(),
		}
	}

	// Swap in, carrying forward whatever the incremental counters accumulated
	// while the rebuild ran (rebuild reads raced writers by design).
	c.statsMu.Lock()
	fresh.DocCount += c.live.DocCount - base.DocCount
	fresh.RecordCount += c.live.RecordCount - base.RecordCount
	fresh.TotalDocBytes += c.live.TotalDocBytes - base.TotalDocBytes
	if fresh.DocCount < 0 {
		fresh.DocCount = 0
	}
	if fresh.RecordCount < 0 {
		fresh.RecordCount = 0
	}
	if fresh.TotalDocBytes < 0 {
		fresh.TotalDocBytes = 0
	}
	for name, is := range fresh.Indexes {
		if liveIs, baseIs := c.live.Index(name), base.Index(name); liveIs != nil && baseIs != nil {
			if is.Entries += liveIs.Entries - baseIs.Entries; is.Entries < 0 {
				is.Entries = 0
			}
		}
	}
	fresh.Epoch = c.live.Epoch + 1
	c.live = fresh
	c.statsDirty = 0
	snap := fresh.Clone()
	c.statsMu.Unlock()
	return c.db.cat.UpdateCollectionStats(c.meta, snap)
}

// RefreshStats rebuilds statistics for every collection.
func (db *DB) RefreshStats() error {
	var firstErr error
	for _, name := range db.Collections() {
		c, err := db.Collection(name)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := c.RefreshStats(nil); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	atomic.AddUint64(&db.stats.statsRefreshes, 1)
	return firstErr
}

// StartStatsRefresh starts a scrub-style background statistics sampler: one
// full refresh pass over every collection per interval (0 = 10 minutes).
// The returned stop function is idempotent; RegisterCloser it so the sampler
// dies with the database.
func (db *DB) StartStatsRefresh(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Minute
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = db.RefreshStats() // advisory: a failed pass retries next tick
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// NotePlanCache counts a session plan-cache lookup in the engine stats.
func (db *DB) NotePlanCache(hit bool) {
	if hit {
		atomic.AddUint64(&db.stats.planCacheHits, 1)
	} else {
		atomic.AddUint64(&db.stats.planCacheMisses, 1)
	}
}
