package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rx/internal/pagestore"
	"rx/internal/xml"
)

// TestIncrementalStats checks the scalar statistics across every write path:
// insert, delete, bulk load, and reopen.
func TestIncrementalStats(t *testing.T) {
	store := pagestore.NewMemStore()
	db, err := Open(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := db.CreateCollection("c", CollectionOptions{})

	doc := func(i int) []byte {
		return []byte(fmt.Sprintf(`<r><v>%d</v><pad>%030d</pad></r>`, i, i))
	}
	var ids []xml.DocID
	for i := 0; i < 10; i++ {
		id, err := col.Insert(doc(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s := col.StatsSnapshot()
	if s.DocCount != 10 {
		t.Fatalf("DocCount = %d after 10 inserts", s.DocCount)
	}
	if s.RecordCount < 10 {
		t.Fatalf("RecordCount = %d", s.RecordCount)
	}
	if s.TotalDocBytes <= 0 || s.MaxDocBytes <= 0 {
		t.Fatalf("byte counters: total=%d max=%d", s.TotalDocBytes, s.MaxDocBytes)
	}
	if s.PathCounts["/r/v"] != 10 {
		t.Fatalf("PathCounts[/r/v] = %d, want 10", s.PathCounts["/r/v"])
	}

	// Deletes decrement.
	for _, id := range ids[:4] {
		if err := col.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	s = col.StatsSnapshot()
	if s.DocCount != 6 {
		t.Fatalf("DocCount = %d after 4 deletes", s.DocCount)
	}

	// Bulk load adds in one batch.
	var batch [][]byte
	for i := 100; i < 120; i++ {
		batch = append(batch, doc(i))
	}
	if _, err := col.InsertBatch(batch, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	s = col.StatsSnapshot()
	if s.DocCount != 26 {
		t.Fatalf("DocCount = %d after bulk load", s.DocCount)
	}
	if s.PathCounts["/r/v"] != 30 { // 10 inserts + 20 bulk (deletes leave paths stale)
		t.Fatalf("PathCounts[/r/v] = %d, want 30", s.PathCounts["/r/v"])
	}

	// Index creation seeds index statistics and bumps the epoch.
	epoch := col.StatsEpoch()
	if err := col.CreateValueIndex("ix_v", "/r/v", xml.TDouble); err != nil {
		t.Fatal(err)
	}
	if col.StatsEpoch() == epoch {
		t.Fatal("index DDL must bump the stats epoch")
	}
	s = col.StatsSnapshot()
	if is := s.Index("ix_v"); is == nil || is.Entries != 26 || is.Distinct != 26 {
		t.Fatalf("index stats after DDL = %+v", s.Index("ix_v"))
	}

	// Refresh rebuilds the derived statistics exactly (and fixes the stale
	// path counts the deletes left behind).
	if err := col.RefreshStats(nil); err != nil {
		t.Fatal(err)
	}
	s = col.StatsSnapshot()
	if s.DocCount != 26 || s.PathCounts["/r/v"] != 26 {
		t.Fatalf("after refresh: docs=%d paths=%d, want 26/26", s.DocCount, s.PathCounts["/r/v"])
	}
	if is := s.Index("ix_v"); is == nil || is.Entries != 26 || len(is.Hist.Buckets) == 0 {
		t.Fatalf("index stats after refresh = %+v", s.Index("ix_v"))
	}

	// Reopen: persisted statistics come back; counts are reconciled with the
	// actual table contents either way.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	col2, err := db2.Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	s = col2.StatsSnapshot()
	if s.DocCount != 26 {
		t.Fatalf("DocCount after reopen = %d", s.DocCount)
	}
	if is := s.Index("ix_v"); is == nil || is.Entries != 26 || len(is.Hist.Buckets) == 0 {
		t.Fatalf("index stats lost across reopen: %+v", s.Index("ix_v"))
	}
	if s.PathCounts["/r/v"] != 26 {
		t.Fatalf("path counts lost across reopen: %d", s.PathCounts["/r/v"])
	}
}

// flipDoc is a document with 16 <v> entries — many index entries per
// document, the shape where an unselective index walk costs more than
// scanning the documents themselves.
func flipDoc(vals [16]int) []byte {
	doc := `<r>`
	for _, v := range vals {
		doc += fmt.Sprintf(`<v>%d</v>`, v)
	}
	return []byte(doc + `</r>`)
}

// TestPlanFlipAfterRefresh pins the headline planner behavior: while the
// statistics still describe the old (selective) data the planner keeps the
// index, and the refresh that reveals the predicate matches nearly every
// entry flips the same query to a scan.
func TestPlanFlipAfterRefresh(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	// Seed phase: 20 docs x 16 distinct values 0..319, then a refresh so the
	// histogram describes this uniform population, under which `v >= 300`
	// matches only the top ~6% of entries.
	for i := 0; i < 20; i++ {
		var vals [16]int
		for j := range vals {
			vals[j] = i*16 + j
		}
		if _, err := col.Insert(flipDoc(vals)); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.CreateValueIndex("ix", "/r/v", xml.TDouble); err != nil {
		t.Fatal(err)
	}
	if err := col.RefreshStats(nil); err != nil {
		t.Fatal(err)
	}
	_, p, err := col.Query(`/r[v >= 300]`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method == "scan" {
		t.Fatalf("selective range should use the index, got %+v", p)
	}

	// Skew phase: bury the collection in documents whose every entry lands in
	// the formerly sparse tail. The incremental entry counter grows, but the
	// histogram still describes the uniform seed data, so the (drift-scaled)
	// estimate stays modest and the planner keeps the index...
	var batch [][]byte
	for i := 0; i < 400; i++ {
		var vals [16]int
		for j := range vals {
			vals[j] = 300 + j
		}
		batch = append(batch, flipDoc(vals))
	}
	if _, err := col.InsertBatch(batch, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	_, p, err = col.Query(`/r[v >= 300]`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method == "scan" {
		t.Fatalf("pre-refresh estimate should still favor the index, got %+v", p)
	}

	// ...until the refresh rebuilds the histogram: v >= 300 now matches ~6400
	// of 6720 entries, and walking them all costs more than evaluating the
	// 420 documents directly.
	epoch := col.StatsEpoch()
	if err := col.RefreshStats(nil); err != nil {
		t.Fatal(err)
	}
	if col.StatsEpoch() == epoch {
		t.Fatal("refresh must bump the stats epoch")
	}
	res, p, err := col.Query(`/r[v >= 300]`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != "scan" {
		t.Fatalf("after refresh the planner should know v>=300 matches ~everything and scan, got %+v", p)
	}
	if len(res) != 402 { // seed docs 18 and 19 (values 288..319) + the 400 skew docs
		t.Fatalf("results = %d, want 402", len(res))
	}
}

// TestForceMethodValidation pins the ForceMethod contract.
func TestForceMethodValidation(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	for i := 0; i < 5; i++ {
		col.Insert([]byte(fmt.Sprintf(`<r><v>%d</v></r>`, i)))
	}
	col.CreateValueIndex("ix", "/r/v", xml.TDouble)

	// Scan is always available.
	_, p, err := col.QueryOpts(`/r[v = 3]`, QueryOptions{ForceMethod: "scan"})
	if err != nil || p.Method != "scan" {
		t.Fatalf("forced scan: plan=%+v err=%v", p, err)
	}
	// A method the query does not admit fails planning.
	if _, _, err := col.QueryOpts(`/r[v = 3]`, QueryOptions{ForceMethod: "docid-oring"}); err == nil {
		t.Fatal("forcing an unavailable method must fail")
	}
	// The forced plan still records every priced alternative.
	if len(p.Alternatives) < 2 {
		t.Fatalf("alternatives = %+v", p.Alternatives)
	}
}

// TestPlannerDifferential is the planner oracle test: on randomized data and
// a grid of queries, every access method the planner can produce must return
// byte-identical results to the forced full scan.
func TestPlannerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{PackThreshold: 512})

	// Mixed shapes: single-record docs and multi-record docs, duplicate-heavy
	// and distinct fields, so different queries admit different method sets.
	for i := 0; i < 60; i++ {
		items := 1 + rng.Intn(6)
		doc := `<order><hdr><cust>` + fmt.Sprintf("C%02d", rng.Intn(8)) + `</cust>` +
			fmt.Sprintf(`<total>%d</total>`, rng.Intn(1000)) + `</hdr><items>`
		for j := 0; j < items; j++ {
			doc += fmt.Sprintf(`<item><sku>S%03d</sku><qty>%d</qty></item>`, rng.Intn(40), 1+rng.Intn(9))
		}
		doc += `</items></order>`
		if _, err := col.Insert([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(col.CreateValueIndex("ix_cust", "/order/hdr/cust", xml.TString))
	must(col.CreateValueIndex("ix_total", "/order/hdr/total", xml.TDouble))
	must(col.CreateValueIndex("ix_qty", "//qty", xml.TDouble))
	must(col.RefreshStats(nil))

	queries := []string{
		`/order/hdr[cust = 'C03']`,
		`/order/hdr[total < 500]`,
		`/order/hdr[cust = 'C01' and total >= 200]`,
		`/order/hdr[cust = 'C05' or total > 900]`,
		`/order/items/item[qty = 3]`,
		`/order/items/item[qty >= 8]/sku`,
		`/order/hdr[total >= 100 and total < 700]`,
		`//item[qty = 5]`,
	}
	// Randomized equality probes widen the grid.
	for i := 0; i < 10; i++ {
		queries = append(queries, fmt.Sprintf(`/order/hdr[cust = 'C%02d']`, rng.Intn(10)))
		queries = append(queries, fmt.Sprintf(`/order/items/item[qty > %d]`, rng.Intn(10)))
	}

	for _, q := range queries {
		want, wantPlan, err := col.QueryOpts(q, QueryOptions{ForceMethod: "scan", Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: scan oracle: %v", q, err)
		}
		chosen, _, err := col.Query(q)
		if err != nil {
			t.Fatalf("%s: costed plan: %v", q, err)
		}
		compare := func(method string, got []Result) {
			if len(got) != len(want) {
				t.Fatalf("%s via %s: %d results, scan %d", q, method, len(got), len(want))
			}
			for i := range got {
				if got[i].Doc != want[i].Doc || got[i].Node.String() != want[i].Node.String() {
					t.Fatalf("%s via %s: result %d = %v, scan %v", q, method, i, got[i], want[i])
				}
			}
		}
		compare("costed:"+wantPlan.Method, chosen)
		// Every candidate the planner priced must agree with the oracle.
		for _, alt := range wantPlan.Alternatives {
			got, p, err := col.QueryOpts(q, QueryOptions{ForceMethod: alt.Method, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s forced %s: %v", q, alt.Method, err)
			}
			if p.Method != alt.Method {
				t.Fatalf("%s forced %s ran as %s", q, alt.Method, p.Method)
			}
			compare(alt.Method, got)
		}
	}
}

// TestDeterministicProbeOrder pins the satellite: with two usable indexes the
// probe order is by estimated selectivity, ties broken by name, and repeat
// planning yields the identical plan.
func TestDeterministicProbeOrder(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	for i := 0; i < 40; i++ {
		// a: 2 distinct values (unselective); b: 40 distinct (selective).
		doc := fmt.Sprintf(`<r><a>%d</a><b>%d</b></r>`, i%2, i)
		if _, err := col.Insert([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	col.CreateValueIndex("ix_a", "/r/a", xml.TDouble)
	col.CreateValueIndex("ix_b", "/r/b", xml.TDouble)
	if err := col.RefreshStats(nil); err != nil {
		t.Fatal(err)
	}
	var first *Plan
	for i := 0; i < 5; i++ {
		_, p, err := col.Query(`/r[a = 1 and b = 7]`)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Indexes) == 0 || p.Indexes[0] != "ix_b" {
			t.Fatalf("probe order = %v, want ix_b (most selective) first", p.Indexes)
		}
		if first == nil {
			first = p
			continue
		}
		if p.Method != first.Method || len(p.Indexes) != len(first.Indexes) {
			t.Fatalf("plan not deterministic: %+v vs %+v", p, first)
		}
		for j := range p.Indexes {
			if p.Indexes[j] != first.Indexes[j] {
				t.Fatalf("probe order not deterministic: %v vs %v", p.Indexes, first.Indexes)
			}
		}
	}
}

// TestExplainEstimates sanity-checks Plan cost fields end to end in core.
func TestExplainEstimates(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	for i := 0; i < 30; i++ {
		col.Insert([]byte(fmt.Sprintf(`<r><v>%d</v></r>`, i)))
	}
	col.CreateValueIndex("ix", "/r/v", xml.TDouble)
	p, err := col.Plan(`/r[v = 7]`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCost <= 0 {
		t.Fatalf("EstCost = %f", p.EstCost)
	}
	if p.EstDocs < 1 || p.EstDocs > 5 {
		t.Fatalf("EstDocs = %d for a 1-in-30 equality", p.EstDocs)
	}
	if len(p.Alternatives) < 2 {
		t.Fatalf("alternatives = %+v", p.Alternatives)
	}
	// Alternatives come cheapest first and include the chosen method.
	prev := -1.0
	seen := false
	for _, a := range p.Alternatives {
		if a.EstCost < prev {
			t.Fatalf("alternatives not sorted: %+v", p.Alternatives)
		}
		prev = a.EstCost
		if a.Method == p.Method {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("chosen method missing from alternatives: %+v", p)
	}
	if p.Alternatives[0].Method != p.Method {
		t.Fatalf("chosen %s is not the cheapest alternative %+v", p.Method, p.Alternatives[0])
	}
}
