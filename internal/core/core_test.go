package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rx/internal/pagestore"
	"rx/internal/xml"
)

func newDB(t testing.TB) *DB {
	t.Helper()
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func catalogDoc(id int, price, discount float64, name string) string {
	return fmt.Sprintf(
		`<Catalog><Categories><Product pid="%d"><ProductName>%s</ProductName>`+
			`<RegPrice>%.2f</RegPrice><Discount>%.2f</Discount></Product></Categories></Catalog>`,
		id, name, price, discount)
}

func TestInsertSerializeRoundTrip(t *testing.T) {
	db := newDB(t)
	col, err := db.CreateCollection("docs", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := `<a x="1"><b>hello <i>world</i></b><!--c--><c/></a>`
	id, err := col.Insert([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !col.Has(id) {
		t.Fatal("document not found after insert")
	}
	var buf bytes.Buffer
	if err := col.Serialize(id, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != doc {
		t.Errorf("round trip:\n in:  %s\n out: %s", doc, buf.String())
	}
}

func TestMultiRecordDocument(t *testing.T) {
	db := newDB(t)
	col, err := db.CreateCollection("big", CollectionOptions{PackThreshold: 512})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "<item n=\"%d\">value number %d padded</item>", i, i)
	}
	sb.WriteString("</r>")
	id, err := col.Insert([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	pages, _ := col.XMLTable().Pages()
	if pages < 2 {
		t.Errorf("expected multiple XML pages, got %d", pages)
	}
	entries, _ := col.NodeIndex().Count()
	if entries < 3 {
		t.Errorf("expected multiple NodeID intervals, got %d", entries)
	}
	var buf bytes.Buffer
	if err := col.Serialize(id, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != sb.String() {
		t.Error("multi-record round trip mismatch")
	}
}

func TestQueryScan(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("cat", CollectionOptions{})
	for i := 0; i < 20; i++ {
		if _, err := col.Insert([]byte(catalogDoc(i, float64(50+i*10), 0.05*float64(i%4), fmt.Sprintf("P%02d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	results, plan, err := col.Query("/Catalog/Categories/Product[RegPrice > 100]")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != "scan" {
		t.Errorf("plan = %s, want scan (no indexes)", plan.Method)
	}
	if len(results) != 14 { // prices 60..240; >100 means 110..240 → ids 6..19
		t.Errorf("got %d results", len(results))
	}
}

func TestTable2AccessMethods(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("cat", CollectionOptions{})
	for i := 0; i < 30; i++ {
		doc := catalogDoc(i, float64(50+i*10), 0.05*float64(i%4), fmt.Sprintf("P%02d", i))
		if _, err := col.Insert([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	// Table 2, index (1): exact path.
	if err := col.CreateValueIndex("ix_regprice", "/Catalog/Categories/Product/RegPrice", xml.TDouble); err != nil {
		t.Fatal(err)
	}
	// Table 2, index (2): containment path.
	if err := col.CreateValueIndex("ix_discount", "//Discount", xml.TDouble); err != nil {
		t.Fatal(err)
	}

	scanRes, _, err := col.Query("/Catalog/Categories/Product[RegPrice > 100]")
	if err != nil {
		t.Fatal(err)
	}

	// Case 1: exact match → NodeID list, no re-evaluation.
	res1, plan1, err := col.Query("/Catalog/Categories/Product[RegPrice > 100]")
	if err != nil {
		t.Fatal(err)
	}
	if plan1.Method != "nodeid-list" || !plan1.Exact {
		t.Errorf("case 1 plan = %+v, want exact nodeid-list", plan1)
	}
	if len(res1) != len(scanRes) {
		t.Errorf("case 1: %d results vs scan %d", len(res1), len(scanRes))
	}
	for i := range res1 {
		if res1[i].Doc != scanRes[i].Doc || !bytes.Equal(res1[i].Node, scanRes[i].Node) {
			t.Errorf("case 1 result %d differs from scan", i)
		}
	}

	// Case 2: containment → filtering (DocID list + re-evaluation).
	res2, plan2, err := col.Query("/Catalog/Categories/Product[Discount > 0.1]")
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Method != "docid-list" || plan2.Exact {
		t.Errorf("case 2 plan = %+v, want docid-list filtering", plan2)
	}
	wantDocs := 0
	for i := 0; i < 30; i++ {
		if 0.05*float64(i%4) > 0.1 {
			wantDocs++
		}
	}
	if len(res2) != wantDocs {
		t.Errorf("case 2: %d results, want %d", len(res2), wantDocs)
	}
	if plan2.CandidateDocs >= 30 {
		t.Errorf("case 2 did not narrow candidates: %d", plan2.CandidateDocs)
	}

	// Case 3: ANDing across both indexes. Both predicates are selective, so
	// the costed planner keeps both probes (an unselective predicate would be
	// pruned from the intersection — see TestPlannerCostChoices).
	res3, plan3, err := col.Query("/Catalog/Categories/Product[RegPrice > 250 and Discount > 0.1]")
	if err != nil {
		t.Fatal(err)
	}
	if plan3.Method != "docid-anding" {
		t.Errorf("case 3 plan = %+v, want docid-anding", plan3)
	}
	if len(plan3.Indexes) != 2 {
		t.Errorf("case 3 should use both indexes: %v", plan3.Indexes)
	}
	// Verify against scan.
	sc3, _, _ := col.Query("//Product[RegPrice > 250 and Discount > 0.1]")
	if len(res3) != len(sc3) {
		t.Errorf("case 3: %d results vs scan %d", len(res3), len(sc3))
	}

	// ORing.
	res4, plan4, err := col.Query("/Catalog/Categories/Product[RegPrice > 250 or Discount > 0.1]")
	if err != nil {
		t.Fatal(err)
	}
	if plan4.Method != "docid-oring" {
		t.Errorf("case 4 plan = %+v, want docid-oring", plan4)
	}
	plainScan := func(expr string) int {
		// evaluate with a collection scan by disabling index match via //
		results, plan, err := col.Query(expr)
		if err != nil {
			t.Fatal(err)
		}
		_ = plan
		return len(results)
	}
	_ = plainScan
	sc4, _, _ := col.Query("//Product[RegPrice > 250 or Discount > 0.1]")
	if len(res4) != len(sc4) {
		t.Errorf("case 4: %d results vs scan %d", len(res4), len(sc4))
	}

	// NodeID ANDing: both predicates with exact indexes.
	if err := col.CreateValueIndex("ix_discount_exact", "/Catalog/Categories/Product/Discount", xml.TDouble); err != nil {
		t.Fatal(err)
	}
	res5, plan5, err := col.Query("/Catalog/Categories/Product[RegPrice > 250 and Discount > 0.1]")
	if err != nil {
		t.Fatal(err)
	}
	if plan5.Method != "nodeid-anding" || !plan5.Exact {
		t.Errorf("case 5 plan = %+v, want exact nodeid-anding", plan5)
	}
	if len(res5) != len(sc3) {
		t.Errorf("case 5: %d results, want %d", len(res5), len(sc3))
	}
}

func TestQueryValues(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.Insert([]byte(`<r><p><name>anvil</name><price>10</price></p><p><name>rocket</name><price>99</price></p></r>`))
	res, _, err := col.QueryOpts("/r/p[price > 50]/name", QueryOptions{NeedValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || string(res[0].Value) != "rocket" {
		t.Errorf("got %+v", res)
	}
}

func TestNodeStringAndSerializeNode(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	doc := `<r xmlns:p="urn:x"><item id="7">hello <b>nested</b></item></r>`
	id, _ := col.Insert([]byte(doc))
	res, _, err := col.Query("/r/item")
	if err != nil || len(res) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	v, err := col.NodeString(id, res[0].Node)
	if err != nil || string(v) != "hello nested" {
		t.Errorf("NodeString = %q, %v", v, err)
	}
	kind, _, err := col.NodeKind(id, res[0].Node)
	if err != nil || kind != xml.Element {
		t.Errorf("NodeKind = %v, %v", kind, err)
	}
	var buf bytes.Buffer
	if err := col.SerializeNode(id, res[0].Node, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `<item`) || !strings.Contains(buf.String(), "<b>nested</b>") {
		t.Errorf("SerializeNode = %s", buf.String())
	}
}

func TestDelete(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.CreateValueIndex("ix", "//price", xml.TDouble)
	var ids []xml.DocID
	for i := 0; i < 10; i++ {
		id, err := col.Insert([]byte(fmt.Sprintf(`<r><price>%d</price></r>`, i*10)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := col.Delete(ids[3]); err != nil {
		t.Fatal(err)
	}
	if col.Has(ids[3]) {
		t.Error("deleted doc still present")
	}
	if err := col.Delete(ids[3]); err == nil {
		t.Error("double delete should fail")
	}
	n, _ := col.Count()
	if n != 9 {
		t.Errorf("Count = %d", n)
	}
	// The deleted doc's index entries are gone: query must not return it.
	res, plan, err := col.Query("/r[price >= 0]")
	if err != nil {
		t.Fatal(err)
	}
	_ = plan
	for _, r := range res {
		if r.Doc == ids[3] {
			t.Error("query returned deleted document")
		}
	}
	if len(res) != 9 {
		t.Errorf("got %d results", len(res))
	}
	vix := col.ValueIndex("ix")
	cnt, _ := vix.Count()
	if cnt != 9 {
		t.Errorf("value index entries = %d, want 9", cnt)
	}
}

func TestIndexBackfill(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	for i := 0; i < 5; i++ {
		col.Insert([]byte(fmt.Sprintf(`<r><v>%d</v></r>`, i)))
	}
	if err := col.CreateValueIndex("ix", "/r/v", xml.TDouble); err != nil {
		t.Fatal(err)
	}
	cnt, _ := col.ValueIndex("ix").Count()
	if cnt != 5 {
		t.Errorf("backfilled entries = %d", cnt)
	}
	res, plan, err := col.Query("/r[v >= 3]")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method == "scan" {
		t.Errorf("plan = %s, should use the index", plan.Method)
	}
	if len(res) != 2 {
		t.Errorf("got %d results", len(res))
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	store := pagestore.NewMemStore()
	db, err := Open(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.CreateValueIndex("ix", "//price", xml.TDouble)
	id, _ := col.Insert([]byte(`<r><price>42</price></r>`))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col2, err := db2.Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col2.Serialize(id, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != `<r><price>42</price></r>` {
		t.Errorf("reopened doc = %s", buf.String())
	}
	res, plan, err := col2.Query("/r[price = 42]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || plan.Method == "scan" {
		t.Errorf("reopened query: %d results, plan %s", len(res), plan.Method)
	}
	// New inserts keep working with fresh DocIDs.
	id2, err := col2.Insert([]byte(`<r><price>1</price></r>`))
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Error("DocID reused after reopen")
	}
}

func TestFileBackedDB(t *testing.T) {
	path := t.TempDir() + "/rx.db"
	fs, err := pagestore.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := db.CreateCollection("c", CollectionOptions{})
	id, err := col.Insert([]byte(`<doc><x>1</x></doc>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := pagestore.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(fs2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	col2, err := db2.Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col2.Serialize(id, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != `<doc><x>1</x></doc>` {
		t.Errorf("file round trip = %s", buf.String())
	}
}

func TestNamespacedDocuments(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	doc := `<p:r xmlns:p="urn:one"><p:x>7</p:x></p:r>`
	id, err := col.Insert([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.Serialize(id, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != doc {
		t.Errorf("ns round trip = %s", buf.String())
	}
}

func TestManyDocuments(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.CreateValueIndex("ix", "//n", xml.TDouble)
	const N = 500
	for i := 0; i < N; i++ {
		if _, err := col.Insert([]byte(fmt.Sprintf(`<d><n>%d</n><pad>%060d</pad></d>`, i, i))); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := col.Count()
	if n != N {
		t.Fatalf("Count = %d", n)
	}
	res, plan, err := col.Query(fmt.Sprintf("/d[n >= %d]", N-25))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 25 {
		t.Errorf("got %d results (plan %s)", len(res), plan.Method)
	}
}
