package core

// The parallel query executor and streaming cursor. The §4.3 access methods
// that re-evaluate candidate documents (relation scan, DocID-list
// filtering) are embarrassingly parallel: per-document evaluation is
// independent (each worker owns a compiled QuickXScan evaluator and the
// storage read path is concurrency-safe), so the candidate set is
// partitioned dynamically across a worker pool and per-document result
// batches are merged back into document order. Index-only access paths
// (exact NodeID lists, NodeID filtering) stay serial — they are already
// narrowed by the index — and the cursor just iterates their materialized
// results.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rx/internal/memgov"
	"rx/internal/pagestore"
	"rx/internal/quickxscan"
	"rx/internal/xml"
	"rx/internal/xpath"
)

// resultsBytes estimates the working-set bytes a result batch pins: the
// slice headers plus node-ID and value payloads. This is the quantity
// charged against QueryOptions.Mem while the batch sits buffered (parked in
// a parallel source or handed to the cursor) — the real allocation the
// memory budget governs.
func resultsBytes(res []Result) int64 {
	n := int64(0)
	for i := range res {
		n += 48 + int64(len(res[i].Node)) + int64(len(res[i].Value))
	}
	return n
}

// Cursor streams query results in (DocID, NodeID) order without
// materializing the full result set. Usage:
//
//	cur, err := col.Cursor("/a/b", core.QueryOptions{})
//	if err != nil { ... }
//	defer cur.Close()
//	for cur.Next() {
//		r := cur.Result()
//		...
//	}
//	if err := cur.Err(); err != nil { ... }
//
// A Cursor is not safe for concurrent use. Close is idempotent, stops any
// background workers, and must be called even after Next returned false.
type Cursor struct {
	plan   *Plan
	limit  int
	count  int
	cur    Result
	err    error
	closed bool

	src     batcher
	batch   []Result
	bpos    int
	skipped atomic.Int64

	// mem/memHeld hold a budget reservation for results materialized up
	// front (index-only access paths), released when the cursor stops.
	mem     *memgov.Budget
	memHeld int64
}

// batcher yields per-document result batches in document order. ok=false
// with a nil error means the source is exhausted.
type batcher interface {
	nextBatch() (batch []Result, ok bool, err error)
	close()
}

// Next advances to the next result, returning false at the end of the
// result set, on error, after the Limit is reached, or after Close.
func (cu *Cursor) Next() bool {
	if cu.closed || cu.err != nil {
		return false
	}
	if cu.limit > 0 && cu.count >= cu.limit {
		cu.stop()
		return false
	}
	for {
		if cu.bpos < len(cu.batch) {
			cu.cur = cu.batch[cu.bpos]
			cu.bpos++
			cu.count++
			return true
		}
		if cu.src == nil {
			return false
		}
		batch, ok, err := cu.src.nextBatch()
		if err != nil {
			cu.err = err
			cu.stop()
			return false
		}
		if !ok {
			cu.stop()
			return false
		}
		cu.batch, cu.bpos = batch, 0
	}
}

// Result returns the match Next advanced to. Only valid after Next returned
// true.
func (cu *Cursor) Result() Result { return cu.cur }

// Err returns the error that terminated iteration, or nil if the cursor
// was exhausted, limited, or closed early.
func (cu *Cursor) Err() error { return cu.err }

// Plan reports the access method the query used (valid immediately after
// cursor creation).
func (cu *Cursor) Plan() *Plan { return cu.plan }

// Skipped reports how many quarantined documents a Degraded cursor skipped
// so far. Always 0 without QueryOptions.Degraded.
func (cu *Cursor) Skipped() int { return int(cu.skipped.Load()) }

// Close releases the cursor, cancelling and waiting out any background
// workers. It is safe to call multiple times.
func (cu *Cursor) Close() error {
	cu.stop()
	return nil
}

func (cu *Cursor) stop() {
	if cu.closed {
		return
	}
	cu.closed = true
	cu.batch, cu.bpos = nil, 0
	if cu.src != nil {
		cu.src.close()
		cu.src = nil
	}
	cu.mem.Release(cu.memHeld)
	cu.memHeld = 0
}

// newSliceCursor wraps already-materialized results (index-only access).
// The whole result set sits in memory for the cursor's lifetime, so it is
// charged against the budget in one piece.
func newSliceCursor(results []Result, plan *Plan, opts QueryOptions) (*Cursor, error) {
	n := resultsBytes(results)
	if err := opts.Mem.Reserve(n); err != nil {
		return nil, err
	}
	return &Cursor{plan: plan, limit: opts.Limit, batch: results,
		mem: opts.Mem, memHeld: n}, nil
}

// newDocCursor builds a cursor that evaluates the query over docs, either
// lazily on the caller's goroutine (serial) or via a worker pool.
func (c *Collection) newDocCursor(q *xpath.Query, docs []xml.DocID, plan *Plan, opts QueryOptions) (*Cursor, error) {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(docs) {
		par = len(docs)
	}
	cu := &Cursor{plan: plan, limit: opts.Limit}
	if len(docs) == 0 {
		return cu, nil
	}
	eopts := quickxscan.Options{NeedValues: opts.NeedValues}
	if par <= 1 {
		e, err := quickxscan.Compile(q, c.db.cat, nil, eopts)
		if err != nil {
			return nil, err
		}
		cu.src = &serialSource{col: c, eval: e, docs: docs, ctx: opts.context(),
			degraded: opts.Degraded, skipped: &cu.skipped, mem: opts.Mem}
		return cu, nil
	}
	plan.Parallelism = par
	evals := make([]*quickxscan.Eval, par)
	for i := range evals {
		e, err := quickxscan.Compile(q, c.db.cat, nil, eopts)
		if err != nil {
			return nil, err
		}
		evals[i] = e
	}
	ctx, cancel := context.WithCancel(opts.context())
	s := &parallelSource{
		ctx:    ctx,
		cancel: cancel,
		// Buffered to the document count so workers never block on send:
		// an early Close only has to cancel and wait, never drain.
		ch:      make(chan docBatch, len(docs)),
		total:   len(docs),
		pending: make(map[int]docBatch),
		mem:     opts.Mem,
	}
	var next atomic.Int64
	s.wg.Add(par)
	for _, e := range evals {
		go func(e *quickxscan.Eval) {
			defer s.wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) || s.ctx.Err() != nil {
					return
				}
				doc := docs[i]
				res, skip, err := c.evalCursorDoc(doc, e, opts.Degraded)
				if skip {
					cu.skipped.Add(1)
				}
				// The channel buffer is where results accumulate ahead of the
				// consumer, so this is where the memory budget is charged; the
				// reservation travels with the batch and is released when the
				// consumer hands it on (or the source closes).
				var n int64
				if err == nil {
					if n = resultsBytes(res); n > 0 {
						if rerr := opts.Mem.Reserve(n); rerr != nil {
							res, err, n = nil, rerr, 0
						}
					}
				}
				s.ch <- docBatch{idx: i, res: res, err: err, bytes: n}
			}
		}(e)
	}
	cu.src = s
	return cu, nil
}

// evalCursorDoc evaluates one candidate document for a cursor, applying the
// quarantine policy: a quarantined document is skipped (Degraded) or fails
// the cursor with a typed ErrQuarantined; a checksum failure during
// evaluation first quarantines the document — detection-on-read feeds the
// same registry the scrubber fills — then applies the same policy.
func (c *Collection) evalCursorDoc(doc xml.DocID, e *quickxscan.Eval, degraded bool) (res []Result, skipped bool, err error) {
	if q, ok := c.db.quarantined(c.meta.Name, doc); ok {
		if degraded {
			return nil, true, nil
		}
		return nil, false, q.err()
	}
	matches, err := c.evalStored(doc, e)
	if err != nil {
		var pe pagestore.ErrPageChecksum
		if errors.As(err, &pe) {
			c.db.Quarantine(c.meta.Name, doc,
				fmt.Sprintf("page %d failed checksum during query", pe.PageID), pe.PageID)
			if degraded {
				return nil, true, nil
			}
			return nil, false, fmt.Errorf("%w", ErrQuarantined{
				Col: c.meta.Name, Doc: doc,
				Reason: fmt.Sprintf("page %d failed checksum during query", pe.PageID),
			})
		}
		return nil, false, err
	}
	if len(matches) == 0 {
		return nil, false, nil
	}
	res = make([]Result, len(matches))
	for j, m := range matches {
		res[j] = Result{Doc: doc, Node: m.ID, Value: m.Value}
	}
	return res, false, nil
}

// err converts a registry entry into the typed error queries surface.
func (q QuarantineEntry) err() error {
	return fmt.Errorf("%w", ErrQuarantined{Col: q.Col, Doc: q.Doc, Reason: q.Reason})
}

// serialSource evaluates one document per nextBatch call on the caller's
// goroutine — fully lazy, no background work.
type serialSource struct {
	col      *Collection
	eval     *quickxscan.Eval
	docs     []xml.DocID
	pos      int
	ctx      context.Context
	degraded bool
	skipped  *atomic.Int64
	mem      *memgov.Budget
	held     int64 // bytes reserved for the batch currently out with the cursor
}

func (s *serialSource) nextBatch() ([]Result, bool, error) {
	// The previous batch has been fully consumed by the cursor.
	s.mem.Release(s.held)
	s.held = 0
	for s.pos < len(s.docs) {
		if err := s.ctx.Err(); err != nil {
			return nil, false, err
		}
		doc := s.docs[s.pos]
		s.pos++
		rs, skip, err := s.col.evalCursorDoc(doc, s.eval, s.degraded)
		if err != nil {
			return nil, false, err
		}
		if skip {
			s.skipped.Add(1)
			continue
		}
		if len(rs) == 0 {
			continue
		}
		if n := resultsBytes(rs); n > 0 {
			if err := s.mem.Reserve(n); err != nil {
				return nil, false, err
			}
			s.held = n
		}
		return rs, true, nil
	}
	return nil, false, nil
}

func (s *serialSource) close() {
	s.mem.Release(s.held)
	s.held = 0
}

// docBatch is one document's results, tagged with its position in the
// candidate order and the budget bytes reserved for it.
type docBatch struct {
	idx   int
	res   []Result
	err   error
	bytes int64
}

// parallelSource merges worker output back into document order: batches
// arriving early are parked in pending until their turn. Budget
// reservations travel with the batches — made by the producing worker,
// released when the consumer hands the batch to the cursor's successor call
// or when the source closes.
type parallelSource struct {
	ctx     context.Context
	cancel  context.CancelFunc
	ch      chan docBatch
	wg      sync.WaitGroup
	next    int
	total   int
	pending map[int]docBatch
	mem     *memgov.Budget
	held    int64 // bytes reserved for the batch currently out with the cursor
}

func (s *parallelSource) nextBatch() ([]Result, bool, error) {
	// The previous batch has been fully consumed by the cursor.
	s.mem.Release(s.held)
	s.held = 0
	for {
		if s.next >= s.total {
			return nil, false, nil
		}
		b, ok := s.pending[s.next]
		if ok {
			delete(s.pending, s.next)
		} else {
			select {
			case b = <-s.ch:
			case <-s.ctx.Done():
				return nil, false, s.ctx.Err()
			}
			if b.idx != s.next {
				s.pending[b.idx] = b
				continue
			}
		}
		s.next++
		if b.err != nil {
			return nil, false, b.err
		}
		if len(b.res) == 0 {
			continue
		}
		s.held = b.bytes
		return b.res, true, nil
	}
}

func (s *parallelSource) close() {
	s.cancel()
	s.wg.Wait()
	// Workers are gone; return every reservation still travelling with an
	// unconsumed batch (channel buffer, parked in pending, or out with the
	// cursor).
	for {
		select {
		case b := <-s.ch:
			s.mem.Release(b.bytes)
			continue
		default:
		}
		break
	}
	for _, b := range s.pending {
		s.mem.Release(b.bytes)
	}
	s.pending = nil
	s.mem.Release(s.held)
	s.held = 0
}
