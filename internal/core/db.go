// Package core is the System R/X engine: it assembles the relational
// substrate (heap table spaces, B+tree index manager, buffer pool, catalog)
// and the native XML services (token-stream parsing, tree packing, NodeID
// index, XPath value indexes, QuickXScan) into the architecture of Figures
// 1 and 2.
//
// Each collection is a base table with an implicit DocID column and one XML
// column; the XML column's data lives in an internal XML table of
// (DocID, minNodeID, XMLData) rows; a DocID index maps documents to base
// rows, a NodeID index maps logical node IDs to physical records, and any
// number of XPath value indexes map typed node values to (DocID, NodeID,
// RID) positions.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rx/internal/btree"
	"rx/internal/buffer"
	"rx/internal/catalog"
	"rx/internal/lock"
	"rx/internal/memgov"
	"rx/internal/nodeindex"
	"rx/internal/pagestore"
	"rx/internal/rxerr"
	"rx/internal/wal"
	"rx/internal/xml"
	"rx/internal/xmlschema"
)

// Options configure an engine instance.
type Options struct {
	// PoolPages is the buffer pool capacity in pages (default 4096 = 32 MiB).
	PoolPages int
	// LockTimeoutMillis bounds lock waits (default 2000).
	LockTimeoutMillis int
	// WAL, when set, enables write-ahead logging: every page mutation is
	// logged physically and transactions log logical undo records.
	WAL *wal.Log
	// MemBudget caps the engine-wide working memory charged by queries,
	// sessions, and bulk loads, in bytes (0 = unlimited, account only).
	// Breaches fail the offending request with rxerr.ErrOverBudget.
	MemBudget int64
}

// DB is an open database.
type DB struct {
	store pagestore.Store
	pool  *buffer.Pool
	cat   *catalog.Catalog
	locks *lock.Manager
	log   *wal.Log
	mem   *memgov.Budget

	mu      sync.Mutex
	cols    map[string]*Collection
	schemas map[string]*xmlschema.Schema
	closers []func()

	// Degraded read-only mode (see degraded.go): set when the device fills
	// up, cleared when the free-space watchdog recovers the engine.
	degraded  atomic.Bool
	degMu     sync.Mutex
	degReason string
	compDebt  []logicalOp // unresolved undo work, replayed before leaving degraded mode
	spaceFree atomic.Int64 // last watchdog probe (-1 = never probed)
	watchLow  atomic.Int64 // watchdog low-water mark (0 = no watchdog)
	watchHigh atomic.Int64 // watchdog high-water mark
	retryHint atomic.Int64 // retry-after attached to shed writes (ns)

	quarantine quarantineSet
	stats      dbStats
}

// Open opens (bootstrapping if empty) a database over the given store.
func Open(store pagestore.Store, opts Options) (*DB, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 4096
	}
	if opts.LockTimeoutMillis <= 0 {
		opts.LockTimeoutMillis = 2000
	}
	pool := buffer.New(store, opts.PoolPages)
	if opts.WAL != nil {
		pool.SetLogger(opts.WAL)
		pool.SetFlushLSN(opts.WAL.Flush)
	}
	var cat *catalog.Catalog
	var err error
	if store.NumPages() == 0 {
		cat, err = catalog.Bootstrap(pool)
	} else {
		cat, err = catalog.Open(pool)
	}
	if err != nil {
		return nil, err
	}
	db := &DB{
		store: store,
		pool:  pool,
		cat:   cat,
		locks: lock.NewManager(opts.LockTimeoutMillis),
		log:   opts.WAL,
		mem:   memgov.New("server", opts.MemBudget),
		cols:  map[string]*Collection{},
	}
	db.spaceFree.Store(-1)
	db.retryHint.Store(int64(defaultRetryAfter))
	return db, nil
}

// OpenMemory opens a fresh in-memory database.
func OpenMemory() (*DB, error) {
	return Open(pagestore.NewMemStore(), Options{})
}

// Catalog exposes the catalog (name dictionary, schema registry).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Pool exposes the buffer pool (stats).
func (db *DB) Pool() *buffer.Pool { return db.pool }

// Names returns the database-wide name dictionary.
func (db *DB) Names() xml.Names { return db.cat }

// MemBudget returns the engine-wide memory budget root. Sessions and
// queries derive children from it so one global cap governs every
// allocation site (never nil; an unlimited root only accounts).
func (db *DB) MemBudget() *memgov.Budget { return db.mem }

// Flush writes all dirty pages to the store and syncs it.
func (db *DB) Flush() error { return db.pool.FlushAll() }

// VerifyPages flushes dirty pages and then reads back every page of the
// store, returning the first read failure. Over a checksum-enabled store
// this is a full scrub: any page damaged by a torn write or bit rot is
// reported as an ErrPageChecksum rather than waiting to be tripped over.
func (db *DB) VerifyPages() error {
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	buf := make([]byte, pagestore.PageSize)
	for id := pagestore.PageID(0); id < db.store.NumPages(); id++ {
		if err := db.store.ReadPage(id, buf); err != nil {
			return fmt.Errorf("core: verify page %d of %d: %w", id, db.store.NumPages(), err)
		}
	}
	return nil
}

// RegisterCloser adds fn to the set run at the start of Close, in reverse
// registration order. Background services attached to the DB (the scrubber)
// register their shutdown here so Close never races a running pass.
func (db *DB) RegisterCloser(fn func()) {
	db.mu.Lock()
	db.closers = append(db.closers, fn)
	db.mu.Unlock()
}

// Close stops registered background services, flushes, and closes the
// underlying store.
func (db *DB) Close() error {
	db.mu.Lock()
	closers := db.closers
	db.closers = nil
	db.mu.Unlock()
	for i := len(closers) - 1; i >= 0; i-- {
		closers[i]()
	}
	// Checkpoint any statistics accumulated since the last periodic persist
	// (best-effort: a read-only or full-device close still closes).
	db.mu.Lock()
	cols := make([]*Collection, 0, len(db.cols))
	for _, c := range db.cols {
		cols = append(cols, c)
	}
	db.mu.Unlock()
	for _, c := range cols {
		c.statsMu.Lock()
		dirty := c.statsDirty > 0
		c.statsMu.Unlock()
		if dirty {
			c.persistStats()
		}
	}
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.store.Close()
}

// CollectionOptions configure a new collection.
type CollectionOptions struct {
	// PackThreshold is the record-size target for tree packing (0 =
	// pack.DefaultThreshold). It is the packing-factor knob of the §3.1
	// storage analysis.
	PackThreshold int
	// Versioned enables document-level multiversioning (§5.1).
	Versioned bool
}

// CreateCollection creates a collection: base table, internal XML table,
// DocID index and NodeID index (Figure 2).
func (db *DB) CreateCollection(name string, opts CollectionOptions) (*Collection, error) {
	if err := db.checkWritable(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.cat.GetCollection(name) != nil {
		return nil, fmt.Errorf("core: collection %q already exists", name)
	}
	col, err := createCollection(db, name, opts)
	if err != nil {
		return nil, err
	}
	db.cols[name] = col
	return col, nil
}

// Collection opens an existing collection.
func (db *DB) Collection(name string) (*Collection, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if c, ok := db.cols[name]; ok {
		return c, nil
	}
	meta := db.cat.GetCollection(name)
	if meta == nil {
		return nil, fmt.Errorf("core: no collection %q: %w", name, ErrNotFound)
	}
	col, err := openCollection(db, meta)
	if err != nil {
		return nil, err
	}
	db.cols[name] = col
	return col, nil
}

// Collections lists collection names.
func (db *DB) Collections() []string { return db.cat.Collections() }

// ErrNotFound reports a missing document or node. It is the taxonomy
// sentinel rxerr.ErrNotFound, so errors.Is matches it across the engine,
// the facade, and the wire protocol alike.
var ErrNotFound = rxerr.ErrNotFound

// lookupErr maps an index miss onto ErrNotFound while letting every other
// failure through unchanged: an I/O error or checksum mismatch during a
// lookup must surface as such, never masquerade as "does not exist".
func lookupErr(err error, what string) error {
	if errors.Is(err, btree.ErrNotFound) || errors.Is(err, nodeindex.ErrNotFound) || errors.Is(err, ErrNotFound) {
		return fmt.Errorf("%w: %s", ErrNotFound, what)
	}
	return err
}

// RegisterSchema compiles an XML schema document to the binary format and
// stores it in the catalog under name (Figure 4's registration path).
func (db *DB) RegisterSchema(name string, schemaDoc []byte) error {
	sch, err := xmlschema.Compile(schemaDoc)
	if err != nil {
		return err
	}
	if err := db.cat.RegisterSchema(name, sch.Encode()); err != nil {
		return err
	}
	db.mu.Lock()
	if db.schemas == nil {
		db.schemas = map[string]*xmlschema.Schema{}
	}
	db.schemas[name] = sch
	db.mu.Unlock()
	return nil
}

// compiledSchema loads (and caches) a registered schema's compiled form.
func (db *DB) compiledSchema(name string) (*xmlschema.Schema, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if s, ok := db.schemas[name]; ok {
		return s, nil
	}
	bin := db.cat.GetSchema(name)
	if bin == nil {
		return nil, fmt.Errorf("core: no schema %q registered", name)
	}
	s, err := xmlschema.Decode(bin)
	if err != nil {
		return nil, err
	}
	if db.schemas == nil {
		db.schemas = map[string]*xmlschema.Schema{}
	}
	db.schemas[name] = s
	return s, nil
}

// Locks exposes the lock manager (experiments, tests).
func (db *DB) Locks() *lock.Manager { return db.locks }
