package core

// Degraded read-only mode and the free-space watchdog. When the device under
// the WAL or the page file fills up, the failing transaction rolls back
// cleanly (see Txn.Commit) and the engine flips read-only: reads, queries,
// and the scrubber keep serving, every write entry point sheds with the
// typed rxerr.ErrNoSpace plus a retry-after hint. A scrub-style background
// watchdog probes free space on an interval and, once it clears the
// high-water mark, replays the WAL tail and flushes the pool; if both land,
// the engine recovers to read-write on its own — no restart, mirroring how
// the scrubber detects and repairs corruption without operator intervention.
//
// The watermark state machine is deliberately hysteretic: entry at LowWater,
// exit at HighWater > LowWater, so a device hovering at the edge does not
// flap between modes on every probe.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rx/internal/rxerr"
)

// defaultRetryAfter is the retry-after hint attached to shed writes when no
// watchdog has declared its probe interval.
const defaultRetryAfter = time.Second

// checkWritable gates a write entry point: nil in read-write mode, the typed
// no-space error (with the watchdog's probe interval as the retry hint) in
// degraded mode.
func (db *DB) checkWritable() error {
	if !db.degraded.Load() {
		return nil
	}
	atomic.AddUint64(&db.stats.writesShed, 1)
	db.degMu.Lock()
	reason := db.degReason
	db.degMu.Unlock()
	return rxerr.NoSpaceError{
		Reason:     "engine is read-only (degraded): " + reason,
		RetryAfter: time.Duration(db.retryHint.Load()),
	}
}

// noteWriteErr funnels write-path failures into the degraded-mode decision:
// a typed no-space error flips the engine read-only. Any other error passes
// without effect. Call sites are the transactional write methods and the
// points that acknowledge durability (commit, abort, checkpoint, bulk load):
// ENOSPC from a heap extension mid-operation proves the device is full just
// as surely as a failed WAL flush does.
func (db *DB) noteWriteErr(err error) {
	if err == nil || !errors.Is(err, rxerr.ErrNoSpace) {
		return
	}
	db.enterDegraded(err.Error())
}

// enterDegraded flips the engine read-only. Idempotent; only the first
// reason is kept until recovery.
func (db *DB) enterDegraded(reason string) {
	if db.degraded.CompareAndSwap(false, true) {
		db.degMu.Lock()
		db.degReason = reason
		db.degMu.Unlock()
		atomic.AddUint64(&db.stats.degradedEnters, 1)
	}
}

// deferCompensation records undo work that could not be applied in-process —
// typically because rolling a failed transaction back needed a page fetch,
// the fetch needed an eviction, and the eviction's write-ahead flush hit the
// same full device that failed the transaction. The effects of the dead
// transaction are still visible in memory, so the engine MUST go read-only
// regardless of the cause's type: uncommitted state can be read but must not
// be built upon. The debt is replayed (newest-first) by TryRecoverWritable
// once space returns; if the process dies first, write-ahead ordering
// guarantees the durable image never acknowledged the transaction, and
// recovery reaches the same rolled-back state by the WAL route.
//
// undo is the still-unapplied prefix in log order; it is stored reversed so
// the debt list is always in replay (newest-first) order.
func (db *DB) deferCompensation(undo []logicalOp, cause error) {
	db.degMu.Lock()
	for i := len(undo) - 1; i >= 0; i-- {
		db.compDebt = append(db.compDebt, undo[i])
	}
	db.degMu.Unlock()
	db.noteWriteErr(cause)
	db.enterDegraded("unresolved rollback: " + cause.Error())
}

// pendingUndo reports how many undo operations await replay.
func (db *DB) pendingUndo() int {
	db.degMu.Lock()
	defer db.degMu.Unlock()
	return len(db.compDebt)
}

// exitDegraded flips the engine back to read-write.
func (db *DB) exitDegraded() {
	if db.degraded.CompareAndSwap(true, false) {
		db.degMu.Lock()
		db.degReason = ""
		db.degMu.Unlock()
		atomic.AddUint64(&db.stats.degradedExits, 1)
	}
}

// Degraded reports whether the engine is serving read-only, and why.
func (db *DB) Degraded() (bool, string) {
	if !db.degraded.Load() {
		return false, ""
	}
	db.degMu.Lock()
	defer db.degMu.Unlock()
	return true, db.degReason
}

// TryRecoverWritable attempts to leave degraded mode: the WAL tail that
// could not land is flushed, then the pool's dirty pages. Success proves
// the device accepts writes again and re-enables the write path. Safe to
// call in read-write mode (it is then just a flush). Used by the watchdog
// and exposed for operators/tests that freed space out of band.
func (db *DB) TryRecoverWritable() error {
	// Unresolved undo first: in-memory state must reflect only committed
	// transactions before the engine may accept writes again. Replay is in
	// recorded (newest-first) order; a failure re-queues the remainder.
	db.degMu.Lock()
	debt := db.compDebt
	db.compDebt = nil
	db.degMu.Unlock()
	for i, op := range debt {
		if err := db.compensate(op); err != nil {
			db.degMu.Lock()
			db.compDebt = append(debt[i:], db.compDebt...)
			db.degMu.Unlock()
			return fmt.Errorf("core: recover read-write: pending undo (%s %s/%d): %w",
				op.Kind, op.Col, op.Doc, err)
		}
	}
	if db.log != nil {
		if err := db.log.FlushAll(); err != nil {
			return fmt.Errorf("core: recover read-write: wal: %w", err)
		}
	}
	if err := db.pool.FlushAll(); err != nil {
		return fmt.Errorf("core: recover read-write: pool: %w", err)
	}
	db.exitDegraded()
	return nil
}

// SpaceWatchOptions configure the free-space watchdog.
type SpaceWatchOptions struct {
	// Probe returns the device's free bytes. Required. Production uses a
	// filesystem statfs probe (DiskFreeProbe); exhaustion tests use
	// fault.DiskBudget.Free.
	Probe func() (int64, error)
	// LowWater enters degraded mode when free space drops below it.
	LowWater int64
	// HighWater must be >= LowWater; recovery is attempted when free space
	// reaches it. Defaults to 2*LowWater.
	HighWater int64
	// Interval is the probe period (default 1s). It doubles as the
	// retry-after hint attached to shed writes.
	Interval time.Duration
}

// StartSpaceWatch starts the free-space watchdog and returns its stop
// function (also registered with RegisterCloser, so Close stops it; calling
// stop twice is safe).
func (db *DB) StartSpaceWatch(o SpaceWatchOptions) (func(), error) {
	if o.Probe == nil {
		return nil, errors.New("core: space watch needs a probe")
	}
	if o.LowWater <= 0 {
		return nil, errors.New("core: space watch needs a positive low-water mark")
	}
	if o.HighWater <= 0 {
		o.HighWater = 2 * o.LowWater
	}
	if o.HighWater < o.LowWater {
		return nil, fmt.Errorf("core: space watch high water %d below low water %d", o.HighWater, o.LowWater)
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	db.watchLow.Store(o.LowWater)
	db.watchHigh.Store(o.HighWater)
	db.retryHint.Store(int64(o.Interval))

	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(o.Interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				db.probeSpace(o)
			}
		}
	}()

	var once sync.Once
	stop := func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
	db.RegisterCloser(stop)
	return stop, nil
}

// probeSpace runs one watchdog tick: read free space, apply the watermark
// state machine.
func (db *DB) probeSpace(o SpaceWatchOptions) {
	free, err := o.Probe()
	if err != nil {
		return // a failing probe changes nothing; the next tick retries
	}
	db.spaceFree.Store(free)
	switch {
	case free < o.LowWater:
		db.enterDegraded(fmt.Sprintf("free space %d bytes below low water %d", free, o.LowWater))
	case free >= o.HighWater && db.degraded.Load():
		// Space came back: recovery only counts if the deferred bytes
		// actually land. A failed attempt stays degraded for the next tick.
		_ = db.TryRecoverWritable()
	}
}
