package core

// Resource-exhaustion torture harness: a seeded insert/update/delete/bulk
// workload runs with the page store and the WAL device sharing one
// fault.DiskBudget, so the whole engine sees a "device" with N bytes free.
// A profile run measures how many bytes the workload wants; torture runs
// replay it with the budget cut to every intermediate level — ENOSPC then
// surfaces through heap extension, WAL growth, group commit, checkpoint,
// and bulk load at different points — and refill schedules model an
// operator freeing space mid-run. Every schedule must end in one of two
// states, with nothing in between:
//
//   - fully recovered: the engine is read-write and accepts new commits, or
//   - consistently degraded: writes shed with the typed rx.ErrNoSpace
//     while reads, consistency checks, and page verification keep working.
//
// Either way the oracle holds exactly (a commit that returned nil is fully
// present, a failed one fully absent), every error observed is
// ErrNoSpace-typed, and recovering from the durable image afterwards
// reproduces the same oracle — the group-commit watermark never ran ahead
// of a failed flush.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"rx/internal/fault"
	"rx/internal/leakcheck"
	"rx/internal/pagestore"
	"rx/internal/rxerr"
	"rx/internal/wal"
	"rx/internal/xml"
)

const exhaustionIters = 30

func exhaustionDoc(seq int) string {
	return fmt.Sprintf("<d><t>t%d|%s</t><k>k%d</k></d>", seq, strings.Repeat("y", 400+seq%7*120), seq%5)
}

// exhaustionEnv is one workload run over a byte-budgeted device stack.
type exhaustionEnv struct {
	mem    *pagestore.MemStore
	dev    *wal.MemDevice
	budget *fault.DiskBudget
	db     *DB
	col    *Collection

	oracle map[xml.DocID]string // committed docs -> expected serialization
	order  []xml.DocID
	shed   int // operations that failed with the typed no-space error
}

// exhaustionOpen builds the engine over a budgeted store+device pair. The
// budget starts effectively unlimited so setup (collection, index, WAL
// header, checkpoint) always lands; the caller then shrinks it to the
// scheduled level with SetCapacity.
func exhaustionOpen(t *testing.T, groupCommit bool, refills ...fault.Refill) *exhaustionEnv {
	t.Helper()
	env := &exhaustionEnv{
		mem:    pagestore.NewMemStore(),
		dev:    &wal.MemDevice{},
		budget: fault.NewDiskBudget(1<<40, refills...),
		oracle: map[xml.DocID]string{},
	}
	bdev, err := fault.NewBudgetDevice(env.dev, env.budget)
	if err != nil {
		t.Fatalf("budget device: %v", err)
	}
	var wopts []wal.Option
	if groupCommit {
		wopts = append(wopts, wal.WithGroupCommit(200*time.Microsecond))
	}
	log, err := wal.Open(bdev, wopts...)
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	env.db, err = Open(fault.NewBudgetStore(env.mem, env.budget), Options{
		WAL: log, PoolPages: torturePool, LockTimeoutMillis: 500,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if env.col, err = env.db.CreateCollection("c", CollectionOptions{}); err != nil {
		t.Fatalf("create collection: %v", err)
	}
	if err := env.col.CreateValueIndex("kix", "/d/k", xml.TString); err != nil {
		t.Fatalf("create index: %v", err)
	}
	if err := env.db.Checkpoint(); err != nil {
		t.Fatalf("setup checkpoint: %v", err)
	}
	return env
}

// noteErr asserts the exhaustion invariant on a failed operation: the only
// error class a byte-exhausted device may surface is the typed no-space
// error. Anything else — a raw syscall error, a consistency failure, a
// partial-effect artifact — is an engine bug.
func (env *exhaustionEnv) noteErr(t *testing.T, label string, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if !errors.Is(err, rxerr.ErrNoSpace) {
		t.Fatalf("%s: non-ENOSPC failure under exhaustion: %v", label, err)
	}
	env.shed++
	// Space may have come back (a refill schedule fired). Play the
	// watchdog's role: a successful recovery re-enables the write path, a
	// failed attempt leaves the engine degraded for the next probe.
	if deg, _ := env.db.Degraded(); deg && env.budget.Free() > 4*pagestore.PageSize {
		_ = env.db.TryRecoverWritable()
	}
	if os.Getenv("EXH_DEBUG") != "" {
		ids, _ := env.col.DocIDs()
		deg, _ := env.db.Degraded()
		t.Logf("  shed %s: %v (live=%d oracle=%d pending=%d free=%d deg=%v)",
			label, err, len(ids), len(env.oracle), env.db.Stats().PendingUndo, env.budget.Free(), deg)
	}
}

// exhaustionWorkload drives the seeded mixed workload: transactional
// inserts/updates/deletes, bulk batches, checkpoints. It never fatals on a
// typed shed; the oracle tracks exactly the operations that reported
// success.
func (env *exhaustionEnv) exhaustionWorkload(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seq := 0
	for it := 0; it < exhaustionIters; it++ {
		pick := rng.Float64()
		switch {
		case pick < 0.10:
			env.noteErr(t, "checkpoint", env.db.Checkpoint())

		case pick < 0.30:
			// Bulk load: all-or-nothing across the batch.
			n := 2 + rng.Intn(3)
			docs := make([][]byte, n)
			contents := make([]string, n)
			for i := range docs {
				seq++
				contents[i] = exhaustionDoc(seq)
				docs[i] = []byte(contents[i])
			}
			ids, err := env.col.InsertBatch(docs, BatchOptions{})
			if err != nil {
				env.noteErr(t, "bulk", err)
				continue
			}
			for i, id := range ids {
				env.oracle[id] = contents[i]
				env.order = append(env.order, id)
			}

		case pick < 0.80 || len(env.order) == 0:
			// Transactional insert (sometimes two per txn).
			tx := env.db.Begin()
			nops := 1 + rng.Intn(2)
			type staged struct {
				id      xml.DocID
				content string
			}
			var stagedDocs []staged
			var failed bool
			for o := 0; o < nops; o++ {
				seq++
				content := exhaustionDoc(seq)
				id, err := tx.Insert(env.col, []byte(content))
				if err != nil {
					env.noteErr(t, "insert", err)
					env.noteErr(t, "rollback after failed insert", tx.Rollback())
					failed = true
					break
				}
				stagedDocs = append(stagedDocs, staged{id, content})
			}
			if failed {
				continue
			}
			if err := tx.Commit(); err != nil {
				env.noteErr(t, "commit", err)
				continue
			}
			for _, s := range stagedDocs {
				env.oracle[s.id] = s.content
				env.order = append(env.order, s.id)
			}

		default:
			id := env.order[rng.Intn(len(env.order))]
			tx := env.db.Begin()
			if err := tx.Delete(env.col, id); err != nil {
				env.noteErr(t, "delete", err)
				env.noteErr(t, "rollback after failed delete", tx.Rollback())
				continue
			}
			if err := tx.Commit(); err != nil {
				env.noteErr(t, "delete commit", err)
				continue
			}
			delete(env.oracle, id)
			for i, o := range env.order {
				if o == id {
					env.order = append(env.order[:i], env.order[i+1:]...)
					break
				}
			}
		}
		if os.Getenv("EXH_DEBUG") != "" {
			ids, err := env.col.DocIDs()
			t.Logf("iter %d pick=%.2f: live=%d oracle=%d err=%v pending=%d",
				it, pick, len(ids), len(env.oracle), err, env.db.Stats().PendingUndo)
		}
	}
}

// exhaustionVerify checks the end state of a schedule: the oracle holds
// exactly, storage passes verification, and the engine is either writable
// or sheds with the typed error — then proves the durable image alone
// (pages + WAL) recovers to the same oracle.
func (env *exhaustionEnv) exhaustionVerify(t *testing.T, label string) {
	t.Helper()
	// Reads must serve the committed state. One carve-out: with zero free
	// bytes, evicting a dirty page first needs a WAL flush (write-ahead
	// rule), so a read can itself surface the typed no-space error. That is
	// the only failure shape a read may take, and the recovery pass below
	// still proves the full oracle from the durable image.
	pinned := func(err error) bool { return errors.Is(err, rxerr.ErrNoSpace) }
	// Second carve-out: when an in-process rollback itself hit the full
	// device, its unapplied undo is parked as compensation debt and the
	// engine is pinned read-only. Until that debt replays, the dead
	// transaction's effects are still visible — the live image may disagree
	// with the oracle, but ONLY while Stats reports the pending undo. The
	// recovery pass below must erase the difference unconditionally.
	deg, _ := env.db.Degraded()
	indoubt := deg && env.db.Stats().PendingUndo > 0
	for id, want := range env.oracle {
		var buf bytes.Buffer
		if err := env.col.Serialize(id, &buf); err != nil {
			if pinned(err) || indoubt {
				continue
			}
			t.Fatalf("%s: serialize %d: %v", label, id, err)
		}
		if buf.String() != want && !indoubt {
			t.Fatalf("%s: doc %d content mismatch", label, id)
		}
	}
	if err := env.col.CheckConsistency(); err != nil && !pinned(err) && !indoubt {
		t.Fatalf("%s: consistency: %v", label, err)
	}
	if err := env.db.VerifyPages(); err != nil && !pinned(err) {
		t.Fatalf("%s: verify pages: %v", label, err)
	}
	if ids, err := env.col.DocIDs(); err == nil && len(ids) != len(env.oracle) {
		if !indoubt {
			t.Fatalf("%s: live doc count %d, oracle %d", label, len(ids), len(env.oracle))
		}
	} else if err != nil && !pinned(err) && !indoubt {
		t.Fatalf("%s: live doc ids: %v", label, err)
	}

	// Probe the write path once: it either works (recovered) or sheds typed
	// (consistently degraded). Nothing else is acceptable.
	tx := env.db.Begin()
	id, err := tx.Insert(env.col, []byte(`<d><t>probe</t><k>probe</k></d>`))
	if err == nil {
		err = tx.Commit()
	} else {
		_ = tx.Rollback()
	}
	switch {
	case err == nil:
		env.oracle[id] = `<d><t>probe</t><k>probe</k></d>`
	case errors.Is(err, rxerr.ErrNoSpace):
		// Consistently degraded; the probe left no trace (checked below by
		// recovery against the unchanged oracle).
	default:
		t.Fatalf("%s: probe write failed untyped: %v", label, err)
	}

	// Recovery composition: reopen the durable image with no budget in the
	// way. Committed work must be exactly present — in particular nothing a
	// failed group commit acknowledged may be missing, and nothing a
	// compensated commit rolled back may reappear.
	_ = env.db.Close() // best effort; a full device may fail the final flush
	log, err := wal.Open(env.dev)
	if err != nil {
		t.Fatalf("%s: reopen wal: %v", label, err)
	}
	rdb, err := Recover(env.mem, log, Options{PoolPages: 64, LockTimeoutMillis: 500})
	if err != nil {
		t.Fatalf("%s: recover: %v", label, err)
	}
	defer rdb.Close()
	rcol, err := rdb.Collection("c")
	if err != nil {
		t.Fatalf("%s: collection after recovery: %v", label, err)
	}
	ids, err := rcol.DocIDs()
	if err != nil {
		t.Fatalf("%s: doc ids after recovery: %v", label, err)
	}
	if len(ids) != len(env.oracle) {
		t.Fatalf("%s: recovered %d docs, oracle has %d", label, len(ids), len(env.oracle))
	}
	for id, want := range env.oracle {
		var buf bytes.Buffer
		if err := rcol.Serialize(id, &buf); err != nil {
			t.Fatalf("%s: recovered serialize %d: %v", label, id, err)
		}
		if buf.String() != want {
			t.Fatalf("%s: recovered doc %d content mismatch", label, id)
		}
	}
	if err := rcol.CheckConsistency(); err != nil {
		t.Fatalf("%s: recovered consistency: %v", label, err)
	}
	// Liveness: with space back, the recovered engine accepts new work.
	tx = rdb.Begin()
	if _, err := tx.Insert(rcol, []byte(`<d><t>alive</t><k>alive</k></d>`)); err != nil {
		t.Fatalf("%s: post-recovery insert: %v", label, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("%s: post-recovery commit: %v", label, err)
	}
}

func exhaustionSeeds() []int64 {
	if s := os.Getenv("TORTURE_SEEDS"); s != "" {
		return tortureSeeds() // same JSON list the crash harness takes
	}
	seeds := []int64{7, 77, 777}
	if testing.Short() {
		seeds = seeds[:1]
	}
	return seeds
}

// exhaustionArtifact dumps a failing seed for offline reproduction when
// TORTURE_ARTIFACT names a file (the CI exhaustion-torture job sets it).
// Appends, so a multi-seed run collects every red seed.
func exhaustionArtifact(t *testing.T, seed int64, groupCommit bool) {
	path := os.Getenv("TORTURE_ARTIFACT")
	if path == "" {
		return
	}
	blob, _ := json.Marshal(map[string]any{"seed": seed, "groupcommit": groupCommit})
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("writing %s: %v", path, err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s\n", blob)
	t.Logf("failing seed written to %s", path)
}

func TestExhaustionTorture(t *testing.T) {
	leakcheck.Check(t)
	schedules, shed := 0, 0
	for si, seed := range exhaustionSeeds() {
		seed := seed
		groupCommit := si%2 == 1 // odd seeds rerun the matrix under group commit
		if !t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			schedules, shed = runExhaustionSeed(t, seed, groupCommit, schedules, shed)
		}) {
			exhaustionArtifact(t, seed, groupCommit)
		}
	}
	t.Logf("exhaustion: %d schedules, %d typed sheds survived", schedules, shed)
	if shed == 0 && !t.Failed() {
		t.Fatal("no schedule exercised the no-space path")
	}
}

// runExhaustionSeed runs one seed's full matrix (profile, headroom cuts,
// refill schedules), returning the updated schedule/shed tallies.
func runExhaustionSeed(t *testing.T, seed int64, groupCommit bool, schedules, shed int) (int, int) {
	{
		// Profile: unlimited budget measures the workload's appetite.
		profile := exhaustionOpen(t, groupCommit)
		setupUsed := profile.budget.Used()
		profile.exhaustionWorkload(t, seed)
		if profile.shed != 0 {
			t.Fatalf("seed %d: profile run shed %d ops with unlimited budget", seed, profile.shed)
		}
		span := profile.budget.Used() - setupUsed
		if span <= 0 {
			t.Fatalf("seed %d: workload consumed no bytes", seed)
		}
		profile.exhaustionVerify(t, fmt.Sprintf("seed %d (profile)", seed))

		// Exhaustion matrix: cut the headroom to every eighth of the span.
		// Low fractions starve the first inserts; high fractions hit group
		// commit and checkpoint tails.
		for k := 0; k <= 7; k++ {
			schedules++
			label := fmt.Sprintf("seed %d gc=%v headroom %d/8", seed, groupCommit, k)
			if os.Getenv("EXH_DEBUG") != "" {
				t.Logf("=== %s", label)
			}
			env := exhaustionOpen(t, groupCommit)
			env.budget.SetCapacity(env.budget.Used() + span*int64(k)/8)
			env.exhaustionWorkload(t, seed)
			if k < 7 && env.shed == 0 {
				t.Logf("%s: no op shed (workload fit)", label)
			}
			shed += env.shed
			env.exhaustionVerify(t, label)
		}

		// Refill matrix: same starvation, but space comes back after the
		// Nth denial — the run must recover mid-flight and finish writable.
		for _, denial := range []uint64{1, 3, 6} {
			schedules++
			label := fmt.Sprintf("seed %d gc=%v refill@%d", seed, groupCommit, denial)
			env := exhaustionOpen(t, groupCommit, fault.Refill{Denial: denial, Bytes: 1 << 40})
			env.budget.SetCapacity(env.budget.Used() + span/3)
			env.exhaustionWorkload(t, seed)
			if env.shed == 0 {
				t.Fatalf("%s: schedule never fired", label)
			}
			shed += env.shed
			// With the refill applied the engine must end fully recovered:
			// the verify probe write below has to succeed, so assert the
			// mode directly first.
			if err := env.db.TryRecoverWritable(); err != nil {
				t.Fatalf("%s: recovery with space back: %v", label, err)
			}
			if deg, reason := env.db.Degraded(); deg {
				t.Fatalf("%s: still degraded after refill: %s", label, reason)
			}
			env.exhaustionVerify(t, label)
		}
	}
	return schedules, shed
}

// TestExhaustionDegradedModeSheds pins the degraded-mode contract on one
// deterministic schedule: exhaust the device, watch a commit fail typed and
// roll back, then verify every write entry point sheds with ErrNoSpace +
// retry hint while reads serve, and that freeing space plus
// TryRecoverWritable restores read-write without a restart.
func TestExhaustionDegradedModeSheds(t *testing.T) {
	leakcheck.Check(t)
	env := exhaustionOpen(t, false)

	// Commit a baseline document with room to spare.
	tx := env.db.Begin()
	id, err := tx.Insert(env.col, []byte(exhaustionDoc(1)))
	if err != nil || tx.Commit() != nil {
		t.Fatalf("baseline insert: %v", err)
	}

	// Exhaust the device and write until something gives.
	env.budget.SetCapacity(env.budget.Used())
	var shedErr error
	for i := 2; i < 200 && shedErr == nil; i++ {
		tx := env.db.Begin()
		if _, err := tx.Insert(env.col, []byte(exhaustionDoc(i))); err != nil {
			shedErr = err
			_ = tx.Rollback()
		} else if err := tx.Commit(); err != nil {
			shedErr = err
		}
	}
	if !errors.Is(shedErr, rxerr.ErrNoSpace) {
		t.Fatalf("exhaustion surfaced %v, want ErrNoSpace", shedErr)
	}
	if deg, reason := env.db.Degraded(); !deg || reason == "" {
		t.Fatalf("engine not degraded after ENOSPC (deg=%v reason=%q)", deg, reason)
	}

	// Every write entry point sheds typed; the detail type carries a hint.
	if _, err := env.db.CreateCollection("c2", CollectionOptions{}); !errors.Is(err, rxerr.ErrNoSpace) {
		t.Fatalf("CreateCollection = %v, want ErrNoSpace", err)
	}
	if _, err := env.col.InsertBatch([][]byte{[]byte(exhaustionDoc(900))}, BatchOptions{}); !errors.Is(err, rxerr.ErrNoSpace) {
		t.Fatalf("InsertBatch = %v, want ErrNoSpace", err)
	}
	tx = env.db.Begin()
	_, err = tx.Insert(env.col, []byte(exhaustionDoc(901)))
	if !errors.Is(err, rxerr.ErrNoSpace) {
		t.Fatalf("Insert = %v, want ErrNoSpace", err)
	}
	var ns rxerr.NoSpaceError
	if !errors.As(err, &ns) || ns.RetryAfter <= 0 {
		t.Fatalf("shed error carries no retry hint: %v", err)
	}
	if hint := rxerr.RetryAfter(err); hint != ns.RetryAfter {
		t.Fatalf("RetryAfter() = %v, want %v", hint, ns.RetryAfter)
	}
	_ = tx.Rollback()

	// Reads and stats keep serving.
	var buf bytes.Buffer
	if err := env.col.Serialize(id, &buf); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	s := env.db.Stats()
	if !s.DegradedReadOnly || s.WritesShed == 0 || s.DegradedEnters != 1 {
		t.Fatalf("stats = degraded:%v shed:%d enters:%d", s.DegradedReadOnly, s.WritesShed, s.DegradedEnters)
	}

	// Free space; recovery restores read-write and commits land again.
	env.budget.SetCapacity(1 << 40)
	if err := env.db.TryRecoverWritable(); err != nil {
		t.Fatalf("TryRecoverWritable: %v", err)
	}
	if deg, _ := env.db.Degraded(); deg {
		t.Fatal("still degraded after recovery")
	}
	tx = env.db.Begin()
	if _, err := tx.Insert(env.col, []byte(exhaustionDoc(950))); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
	if s := env.db.Stats(); s.DegradedExits != 1 {
		t.Fatalf("DegradedExits = %d, want 1", s.DegradedExits)
	}
	if err := env.db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestSpaceWatchdog drives the hysteretic watermark state machine end to
// end against the budget's own free-space probe: dipping under the
// low-water mark flips the engine read-only, climbing back over the
// high-water mark flips it back, all from the background goroutine.
func TestSpaceWatchdog(t *testing.T) {
	leakcheck.Check(t)
	env := exhaustionOpen(t, false)
	defer env.db.Close()

	stop, err := env.db.StartSpaceWatch(SpaceWatchOptions{
		Probe:     func() (int64, error) { return env.budget.Free(), nil },
		LowWater:  1 << 20,
		HighWater: 4 << 20,
		Interval:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("start watch: %v", err)
	}
	defer stop()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if deg, _ := env.db.Degraded(); deg == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("watchdog never observed %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Proactive entry: free space dips below low water with no write failing.
	env.budget.SetCapacity(env.budget.Used() + (1 << 19))
	waitFor(true, "low water")
	tx := env.db.Begin()
	_, err = tx.Insert(env.col, []byte(exhaustionDoc(1)))
	if !errors.Is(err, rxerr.ErrNoSpace) {
		t.Fatalf("write under low water = %v, want ErrNoSpace", err)
	}
	var ns rxerr.NoSpaceError
	if !errors.As(err, &ns) || ns.RetryAfter != 2*time.Millisecond {
		t.Fatalf("retry hint = %v, want the probe interval", ns.RetryAfter)
	}
	_ = tx.Rollback()
	if s := env.db.Stats(); s.SpaceLowWater != 1<<20 || s.SpaceHighWater != 4<<20 || s.SpaceFree < 0 {
		t.Fatalf("stats watermarks = %d/%d free %d", s.SpaceLowWater, s.SpaceHighWater, s.SpaceFree)
	}

	// Hysteresis: space between the marks must NOT recover.
	env.budget.SetCapacity(env.budget.Used() + (2 << 20))
	time.Sleep(20 * time.Millisecond)
	if deg, _ := env.db.Degraded(); !deg {
		t.Fatal("recovered between the watermarks (hysteresis broken)")
	}

	// Above high water: the watchdog recovers on its own.
	env.budget.SetCapacity(env.budget.Used() + (8 << 20))
	waitFor(false, "high water recovery")
	tx = env.db.Begin()
	if _, err := tx.Insert(env.col, []byte(exhaustionDoc(2))); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
}

// TestInsertBatchMidBatchDeviceFailure pins batch atomicity under a device
// failure partway through the batch: the failed batch leaves no partial
// documents behind (DocIDs, consistency, and value-index results are exactly
// the pre-batch state once space returns), and the engine accepts the next
// batch after recovery.
func TestInsertBatchMidBatchDeviceFailure(t *testing.T) {
	leakcheck.Check(t)
	env := exhaustionOpen(t, false)

	// Baseline batch whose query results anchor the oracle.
	base := [][]byte{
		[]byte(exhaustionDoc(1)), []byte(exhaustionDoc(2)), []byte(exhaustionDoc(3)),
	}
	baseIDs, err := env.col.InsertBatch(base, BatchOptions{})
	if err != nil {
		t.Fatalf("baseline batch: %v", err)
	}
	if err := env.db.Checkpoint(); err != nil {
		t.Fatalf("baseline checkpoint: %v", err)
	}
	before, err := env.col.DocIDs()
	if err != nil {
		t.Fatalf("baseline doc ids: %v", err)
	}
	wantHits, _, err := env.col.Query(`/d[k = "k2"]`)
	if err != nil || len(wantHits) != 1 || wantHits[0].Doc != baseIDs[1] {
		t.Fatalf("baseline query: hits=%v err=%v", wantHits, err)
	}

	// Choke the device so a 20-document batch dies partway through its page
	// effects, then verify the failure is typed.
	env.budget.SetCapacity(env.budget.Used() + pagestore.PageSize)
	var big [][]byte
	for i := 10; i < 30; i++ {
		big = append(big, []byte(exhaustionDoc(i)))
	}
	if _, err := env.col.InsertBatch(big, BatchOptions{}); err == nil {
		t.Fatal("batch on a choked device reported success")
	} else if !errors.Is(err, rxerr.ErrNoSpace) {
		t.Fatalf("mid-batch failure = %v, want ErrNoSpace", err)
	}

	// Space returns; the engine must recover and show zero trace of the
	// failed batch.
	env.budget.SetCapacity(1 << 40)
	if err := env.db.TryRecoverWritable(); err != nil {
		t.Fatalf("recover after refill: %v", err)
	}
	if deg, reason := env.db.Degraded(); deg {
		t.Fatalf("still degraded after refill: %s", reason)
	}
	after, err := env.col.DocIDs()
	if err != nil {
		t.Fatalf("doc ids after failed batch: %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("doc count after failed batch = %d, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("doc ids changed: %v -> %v", before, after)
		}
	}
	if err := env.col.CheckConsistency(); err != nil {
		t.Fatalf("consistency after failed batch: %v", err)
	}
	if err := env.db.VerifyPages(); err != nil {
		t.Fatalf("verify pages after failed batch: %v", err)
	}
	hits, _, err := env.col.Query(`/d[k = "k2"]`)
	if err != nil || len(hits) != len(wantHits) || hits[0].Doc != wantHits[0].Doc {
		t.Fatalf("query after failed batch: hits=%v err=%v", hits, err)
	}

	// The engine is fully usable: the same batch lands once space is back.
	ids, err := env.col.InsertBatch(big, BatchOptions{})
	if err != nil {
		t.Fatalf("batch after recovery: %v", err)
	}
	if len(ids) != len(big) {
		t.Fatalf("recovered batch stored %d docs, want %d", len(ids), len(big))
	}
	var buf bytes.Buffer
	if err := env.col.Serialize(ids[len(ids)-1], &buf); err != nil {
		t.Fatalf("serialize recovered batch doc: %v", err)
	}
	if buf.String() != string(big[len(big)-1]) {
		t.Fatal("recovered batch doc content mismatch")
	}
	_ = env.db.Close()
}
