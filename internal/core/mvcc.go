package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"rx/internal/btree"
	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/nodeindex"
	"rx/internal/pack"
	"rx/internal/serialize"
	"rx/internal/vsax"
	"rx/internal/xml"
)

// Document-level multiversioning (§5.1): versioned collections keep the
// most up-to-date data in the XPath value indexes but versions for the XML
// data and the NodeID index. Updates are copy-on-write at record
// granularity — edited records become new rows, untouched records are
// shared — and each new version writes a complete NodeID-index entry set,
// so a reader pinned to a snapshot version never blocks and never misses
// (the paper's "reader's deferred access is guaranteed to be successful").

// Versioned reports whether the collection is multiversioned.
func (c *Collection) Versioned() bool { return c.meta.Versioned }

// baseRow encodes the base table row: DocID plus, for versioned
// collections, the current version.
func (c *Collection) baseRow(doc xml.DocID, ver uint64) []byte {
	var d [16]byte
	binary.BigEndian.PutUint64(d[:8], uint64(doc))
	if !c.meta.Versioned {
		return d[:8]
	}
	binary.BigEndian.PutUint64(d[8:], ver)
	return d[:]
}

// currentVersion reads a versioned document's newest version number.
func (c *Collection) currentVersion(doc xml.DocID) (uint64, error) {
	if !c.meta.Versioned {
		return 0, nil
	}
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(doc))
	ridBytes, err := c.docIx.Get(d[:])
	if err != nil {
		return 0, lookupErr(err, fmt.Sprintf("document %d", doc))
	}
	row, err := c.base.Fetch(heap.RIDFromBytes(ridBytes))
	if err != nil {
		return 0, err
	}
	if len(row) < 16 {
		return 0, errors.New("core: short versioned base row")
	}
	return binary.BigEndian.Uint64(row[8:16]), nil
}

// setVersion bumps a versioned document's current version.
func (c *Collection) setVersion(doc xml.DocID, ver uint64) error {
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(doc))
	ridBytes, err := c.docIx.Get(d[:])
	if err != nil {
		return lookupErr(err, fmt.Sprintf("document %d", doc))
	}
	return c.base.Update(heap.RIDFromBytes(ridBytes), c.baseRow(doc, ver))
}

// SnapshotVersion returns the document's current version for use as a
// reader snapshot. The returned version remains readable until vacuumed.
func (c *Collection) SnapshotVersion(doc xml.DocID) (uint64, error) {
	if !c.meta.Versioned {
		return 0, errors.New("core: collection is not versioned")
	}
	return c.currentVersion(doc)
}

// lookupCur resolves (doc, id) to a record at the document's current
// version (or plainly, for unversioned collections).
func (c *Collection) lookupCur(doc xml.DocID, id nodeid.ID) (heap.RID, error) {
	if !c.meta.Versioned {
		return c.nodeIx.Lookup(doc, id)
	}
	ver, err := c.currentVersion(doc)
	if err != nil {
		return heap.InvalidRID, err
	}
	return c.nodeIx.LookupV(doc, ver, id)
}

// lookupAt resolves (doc, id) at a snapshot version.
func (c *Collection) lookupAt(doc xml.DocID, ver uint64, id nodeid.ID) (heap.RID, error) {
	if !c.meta.Versioned {
		return c.nodeIx.Lookup(doc, id)
	}
	return c.nodeIx.LookupV(doc, ver, id)
}

// fetcherAt returns a proxy resolver pinned to a snapshot version.
func (c *Collection) fetcherAt(doc xml.DocID, ver uint64) pack.Fetch {
	return func(first nodeid.ID) (*pack.Record, error) {
		rid, err := c.lookupAt(doc, ver, first)
		if err != nil {
			return nil, err
		}
		return c.fetchRecord(rid)
	}
}

// WalkDocAt drives a handler with a snapshot version's events.
func (c *Collection) WalkDocAt(doc xml.DocID, ver uint64, h vsax.Handler) error {
	rid, err := c.lookupAt(doc, ver, nodeid.Root)
	if err != nil {
		return err
	}
	root, err := c.fetchRecord(rid)
	if err != nil {
		return err
	}
	if err := h.StartDocument(); err != nil {
		return err
	}
	if err := pack.Walk(root, c.fetcherAt(doc, ver), handlerVisitor{h}); err != nil {
		return err
	}
	return h.EndDocument()
}

// SerializeAt writes a snapshot version of the document as XML text — a
// reader that never blocks behind writers (§5.1).
func (c *Collection) SerializeAt(doc xml.DocID, ver uint64, w io.Writer) error {
	s := serialize.New(w, c.db.cat)
	if err := c.WalkDocAt(doc, ver, s); err != nil {
		return err
	}
	return s.Err()
}

// verEdit accumulates one versioned update's copy-on-write effects.
type verEdit struct {
	doc xml.DocID
	cur uint64
	// edited maps replaced records (old RID) to their new row and interval
	// uppers.
	edited map[heap.RID]verNewRec
	// dropped marks records whose content leaves the new version entirely.
	dropped map[heap.RID]bool
}

type verNewRec struct {
	rid    heap.RID
	uppers []nodeid.ID
}

func (c *Collection) beginVerEdit(doc xml.DocID) (*verEdit, error) {
	cur, err := c.currentVersion(doc)
	if err != nil {
		return nil, err
	}
	return &verEdit{doc: doc, cur: cur, edited: map[heap.RID]verNewRec{}, dropped: map[heap.RID]bool{}}, nil
}

// rewriteCOW re-encodes an edited record as a new row and registers it.
func (c *Collection) rewriteCOW(ve *verEdit, oldRID heap.RID, rec *pack.Record, tops []*pack.MutNode) error {
	payload := rec.Encode(tops)
	newRec, err := pack.Decode(payload)
	if err != nil {
		return err
	}
	uppers, minID, err := newRec.Intervals()
	if err != nil {
		return err
	}
	rid, err := c.xmlTbl.Insert(xmlRow(ve.doc, minID, payload))
	if err != nil {
		return err
	}
	ve.edited[oldRID] = verNewRec{rid: rid, uppers: uppers}
	return nil
}

// commitVerEdit writes the new version's complete entry set and bumps the
// document's current version.
func (c *Collection) commitVerEdit(ve *verEdit) error {
	newVer := ve.cur + 1
	// Collect the carried-over entries first: inserting while scanning
	// would self-deadlock on the index tree's latch.
	type carry struct {
		upper nodeid.ID
		rid   heap.RID
	}
	var carried []carry
	err := c.nodeIx.ScanVersion(ve.doc, ve.cur, func(upper nodeid.ID, rid heap.RID) bool {
		if ve.dropped[rid] {
			return true
		}
		if _, ok := ve.edited[rid]; ok {
			return true
		}
		carried = append(carried, carry{upper: nodeid.Clone(upper), rid: rid})
		return true
	})
	if err != nil {
		return err
	}
	for _, e := range carried {
		if err := c.nodeIx.PutV(ve.doc, newVer, e.upper, e.rid); err != nil {
			return err
		}
	}
	for _, nr := range ve.edited {
		for _, u := range nr.uppers {
			if err := c.nodeIx.PutV(ve.doc, newVer, u, nr.rid); err != nil {
				return err
			}
		}
	}
	return c.setVersion(ve.doc, newVer)
}

// updateTextVersioned is the copy-on-write UpdateText.
func (c *Collection) updateTextVersioned(doc xml.DocID, id nodeid.ID, newValue []byte) error {
	ve, err := c.beginVerEdit(doc)
	if err != nil {
		return err
	}
	rid, err := c.nodeIx.LookupV(doc, ve.cur, id)
	if err != nil {
		return fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	rec, err := c.fetchRecord(rid)
	if err != nil {
		return err
	}
	tops, err := rec.Mutable()
	if err != nil {
		return err
	}
	_, _, node, err := pack.FindMut(tops, rec.ContextID, id)
	if err != nil {
		return fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	if node.Kind != xml.Text && node.Kind != xml.Attribute {
		return fmt.Errorf("core: UpdateText target %s is a %v", id, node.Kind)
	}
	node.Value = append([]byte(nil), newValue...)
	if err := c.rewriteCOW(ve, rid, rec, tops); err != nil {
		return err
	}
	return c.commitVerEdit(ve)
}

// insertFragmentVersioned is the copy-on-write InsertFragment record edit:
// the caller (InsertFragment) has already decided the target record, the
// parent and the new subtree.
func (c *Collection) insertFragmentVersioned(doc xml.DocID, rid heap.RID, rec *pack.Record, tops []*pack.MutNode) error {
	ve, err := c.beginVerEdit(doc)
	if err != nil {
		return err
	}
	if err := c.rewriteCOW(ve, rid, rec, tops); err != nil {
		return err
	}
	return c.commitVerEdit(ve)
}

// deleteSubtreeVersioned is the copy-on-write DeleteSubtree.
func (c *Collection) deleteSubtreeVersioned(doc xml.DocID, id nodeid.ID) error {
	ve, err := c.beginVerEdit(doc)
	if err != nil {
		return err
	}
	rid0, err := c.nodeIx.LookupV(doc, ve.cur, id)
	if err != nil {
		return fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	rec0, err := c.fetchRecord(rid0)
	if err != nil {
		return err
	}
	tops, err := rec0.Mutable()
	if err != nil {
		return err
	}
	parent, idx, _, err := pack.FindMut(tops, rec0.ContextID, id)
	if err != nil {
		return fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	// Records fully inside the subtree leave the new version (their rows
	// stay for older snapshots until vacuum).
	err = c.nodeIx.ScanVersion(doc, ve.cur, func(upper nodeid.ID, rid heap.RID) bool {
		if rid != rid0 && nodeid.IsAncestorOrSelf(id, upper) {
			ve.dropped[rid] = true
		}
		return true
	})
	if err != nil {
		return err
	}
	if parent == nil {
		tops = append(tops[:idx], tops[idx+1:]...)
	} else {
		parent.Children = append(parent.Children[:idx], parent.Children[idx+1:]...)
	}
	if len(tops) == 0 {
		// The record emptied: drop it from the new version and shrink the
		// proxy in the (copy-on-write edited) parent record.
		ve.dropped[rid0] = true
		if err := c.dropProxyVersioned(ve, id); err != nil {
			return err
		}
	} else {
		if err := c.rewriteCOW(ve, rid0, rec0, tops); err != nil {
			return err
		}
	}
	return c.commitVerEdit(ve)
}

// dropProxyVersioned removes/shrinks the covering proxy via copy-on-write.
func (c *Collection) dropProxyVersioned(ve *verEdit, id nodeid.ID) error {
	parentID, err := nodeid.Parent(id)
	if err != nil {
		return err
	}
	rid, err := c.nodeIx.LookupV(ve.doc, ve.cur, parentID)
	if err != nil {
		return nil
	}
	rec, err := c.fetchRecord(rid)
	if err != nil {
		return err
	}
	tops, err := rec.Mutable()
	if err != nil {
		return err
	}
	rel, err := nodeid.LastRel(id)
	if err != nil {
		return err
	}
	removeProxy := func(list []*pack.MutNode) ([]*pack.MutNode, bool) {
		best := -1
		for i, m := range list {
			if m.Kind == xml.Proxy && bytes.Compare(m.Rel, rel) <= 0 {
				best = i
			}
		}
		if best < 0 {
			return list, false
		}
		if list[best].ProxyCount > 1 {
			list[best].ProxyCount--
			return list, true
		}
		return append(list[:best], list[best+1:]...), true
	}
	changed := false
	if nodeid.Equal(rec.ContextID, parentID) {
		tops, changed = removeProxy(tops)
	} else {
		_, _, parent, err := pack.FindMut(tops, rec.ContextID, parentID)
		if err == nil && parent != nil {
			parent.Children, changed = removeProxy(parent.Children)
		}
	}
	if !changed {
		return nil
	}
	return c.rewriteCOW(ve, rid, rec, tops)
}

// deleteVersionedDoc removes every version of a document.
func (c *Collection) deleteVersionedDoc(doc xml.DocID) error {
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(doc))
	baseRIDBytes, err := c.docIx.Get(d[:])
	if err != nil {
		return lookupErr(err, fmt.Sprintf("document %d", doc))
	}
	ixEntries := map[string]int64{}
	for _, ov := range c.valIxs {
		n, err := c.dropValueKeys(ov, doc)
		if err != nil {
			return err
		}
		ixEntries[ov.meta.Name] += int64(n)
	}
	// All entries across all versions.
	rids := map[heap.RID]bool{}
	var keys [][]byte
	lo := nodeindex.VKey(doc, ^uint64(0), nodeid.Root)
	hi := nodeindex.VKey(doc+1, ^uint64(0), nodeid.Root)
	err = c.nodeIx.Tree().Scan(lo, hi, func(e btree.Entry) bool {
		rids[heap.RIDFromBytes(e.Value)] = true
		keys = append(keys, e.Key)
		return true
	})
	if err != nil {
		return err
	}
	for rid := range rids {
		if err := c.xmlTbl.Delete(rid); err != nil && !errors.Is(err, heap.ErrNotFound) {
			return err
		}
	}
	for _, k := range keys {
		if err := c.nodeIx.Tree().Delete(k); err != nil {
			return err
		}
	}
	if err := c.base.Delete(heap.RIDFromBytes(baseRIDBytes)); err != nil {
		return err
	}
	if err := c.docIx.Delete(d[:]); err != nil {
		return err
	}
	c.noteDelete(int64(len(rids)), ixEntries)
	return nil
}

// Vacuum discards versions older than keep, reclaiming rows no remaining
// version references. Callers must ensure no reader still uses versions
// below keep.
func (c *Collection) Vacuum(doc xml.DocID, keep uint64) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if !c.meta.Versioned {
		return errors.New("core: collection is not versioned")
	}
	_, released, err := c.nodeIx.DropVersionsBefore(doc, keep)
	if err != nil {
		return err
	}
	// Delete in RID order so Vacuum's I/O sequence is deterministic for a
	// given history (fault schedules are replayed by operation index).
	rids := make([]heap.RID, 0, len(released))
	for rid := range released {
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool {
		if rids[i].Page != rids[j].Page {
			return rids[i].Page < rids[j].Page
		}
		return rids[i].Slot < rids[j].Slot
	})
	for _, rid := range rids {
		if err := c.xmlTbl.Delete(rid); err != nil && !errors.Is(err, heap.ErrNotFound) {
			return err
		}
	}
	return nil
}
