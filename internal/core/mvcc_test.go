package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"rx/internal/xml"
)

func TestVersionedSnapshotReads(t *testing.T) {
	db := newDB(t)
	col, err := db.CreateCollection("v", CollectionOptions{Versioned: true})
	if err != nil {
		t.Fatal(err)
	}
	id, err := col.Insert([]byte(`<doc><status>draft</status></doc>`))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := col.SnapshotVersion(id)
	if err != nil || v1 != 1 {
		t.Fatalf("initial version = %d, %v", v1, err)
	}

	// Update the text: version 2.
	res, _, _ := col.Query("//status/text()")
	if err := col.UpdateText(id, res[0].Node, []byte("published")); err != nil {
		t.Fatal(err)
	}
	v2, _ := col.SnapshotVersion(id)
	if v2 != 2 {
		t.Fatalf("version after update = %d", v2)
	}

	// The old snapshot still reads the old content.
	var buf bytes.Buffer
	if err := col.SerializeAt(id, v1, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != `<doc><status>draft</status></doc>` {
		t.Errorf("snapshot v1 = %s", buf.String())
	}
	buf.Reset()
	if err := col.SerializeAt(id, v2, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != `<doc><status>published</status></doc>` {
		t.Errorf("snapshot v2 = %s", buf.String())
	}
	// Current reads see the newest version.
	buf.Reset()
	col.Serialize(id, &buf)
	if buf.String() != `<doc><status>published</status></doc>` {
		t.Errorf("current = %s", buf.String())
	}
}

func TestVersionedSubtreeOps(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("v", CollectionOptions{Versioned: true})
	id, _ := col.Insert([]byte(`<r><a/><b/></r>`))
	v1, _ := col.SnapshotVersion(id)

	aRes, _, _ := col.Query("/r/a")
	if _, err := col.InsertFragment(id, aRes[0].Node, AfterNode, []byte(`<mid>x</mid>`)); err != nil {
		t.Fatal(err)
	}
	bRes, _, _ := col.Query("/r/b")
	if err := col.DeleteSubtree(id, bRes[0].Node); err != nil {
		t.Fatal(err)
	}
	v3, _ := col.SnapshotVersion(id)
	if v3 != 3 {
		t.Fatalf("version = %d", v3)
	}

	var buf bytes.Buffer
	col.SerializeAt(id, v1, &buf)
	if buf.String() != `<r><a/><b/></r>` {
		t.Errorf("v1 = %s", buf.String())
	}
	buf.Reset()
	col.SerializeAt(id, 2, &buf)
	if buf.String() != `<r><a/><mid>x</mid><b/></r>` {
		t.Errorf("v2 = %s", buf.String())
	}
	buf.Reset()
	col.SerializeAt(id, v3, &buf)
	if buf.String() != `<r><a/><mid>x</mid></r>` {
		t.Errorf("v3 = %s", buf.String())
	}
}

func TestVersionedCOWSharesRecords(t *testing.T) {
	// Multi-record document: a small update must not copy untouched records.
	db := newDB(t)
	col, _ := db.CreateCollection("v", CollectionOptions{Versioned: true, PackThreshold: 400})
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, "<e k=\"%d\">%030d</e>", i, i)
	}
	sb.WriteString("</r>")
	id, _ := col.Insert([]byte(sb.String()))
	rows1 := col.XMLTable().Count()

	res, _, _ := col.Query(`//e[@k = '30']/text()`)
	if err := col.UpdateText(id, res[0].Node, []byte("NEW")); err != nil {
		t.Fatal(err)
	}
	rows2 := col.XMLTable().Count()
	// Copy-on-write adds exactly one new record row.
	if rows2 != rows1+1 {
		t.Errorf("rows %d -> %d; COW should add exactly 1", rows1, rows2)
	}
}

func TestVacuum(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("v", CollectionOptions{Versioned: true, PackThreshold: 400})
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, "<e k=\"%d\">%030d</e>", i, i)
	}
	sb.WriteString("</r>")
	id, _ := col.Insert([]byte(sb.String()))
	for v := 0; v < 5; v++ {
		res, _, _ := col.Query(`//e[@k = '10']/text()`)
		if err := col.UpdateText(id, res[0].Node, []byte(fmt.Sprintf("v%d", v))); err != nil {
			t.Fatal(err)
		}
	}
	rowsBefore := col.XMLTable().Count()
	cur, _ := col.SnapshotVersion(id)
	if err := col.Vacuum(id, cur); err != nil {
		t.Fatal(err)
	}
	rowsAfter := col.XMLTable().Count()
	if rowsAfter >= rowsBefore {
		t.Errorf("vacuum reclaimed nothing: %d -> %d", rowsBefore, rowsAfter)
	}
	// Current version still reads fine; old versions are gone.
	var buf bytes.Buffer
	if err := col.SerializeAt(id, cur, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "v4") {
		t.Error("current version damaged by vacuum")
	}
	if err := col.SerializeAt(id, 1, &buf); err == nil {
		t.Error("vacuumed version still readable")
	}
}

func TestVersionedDelete(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("v", CollectionOptions{Versioned: true})
	id, _ := col.Insert([]byte(`<a>x</a>`))
	res, _, _ := col.Query("/a/text()")
	col.UpdateText(id, res[0].Node, []byte("y"))
	if err := col.Delete(id); err != nil {
		t.Fatal(err)
	}
	if col.Has(id) {
		t.Error("deleted versioned doc still present")
	}
	if col.XMLTable().Count() != 0 {
		t.Errorf("rows remain: %d", col.XMLTable().Count())
	}
}

// TestReadersNeverBlockWriter: snapshot readers proceed concurrently with a
// writer installing new versions — the §5.1 "multiversioning ... avoids
// locking by readers" claim.
func TestReadersNeverBlockWriter(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("v", CollectionOptions{Versioned: true})
	id, _ := col.Insert([]byte(`<doc><counter>0</counter></doc>`))
	res, _, _ := col.Query("//counter/text()")
	textID := res[0].Node

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer: continuous version installs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := col.UpdateText(id, textID, []byte(fmt.Sprint(i))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Readers: each pins a snapshot and must see a consistent document.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ver, err := col.SnapshotVersion(id)
				if err != nil {
					t.Error(err)
					return
				}
				var buf bytes.Buffer
				if err := col.SerializeAt(id, ver, &buf); err != nil {
					t.Errorf("snapshot read at v%d: %v", ver, err)
					return
				}
				if !strings.HasPrefix(buf.String(), "<doc><counter>") {
					t.Errorf("inconsistent snapshot: %s", buf.String())
					return
				}
			}
		}()
	}
	// Let readers finish, then stop the writer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Simple coordination: wait for all readers via the shared WaitGroup by
	// closing stop after a short busy period.
	for i := 0; i < 100; i++ {
		if _, err := col.SnapshotVersion(id); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
}

func TestUnversionedSnapshotRejected(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	id, _ := col.Insert([]byte(`<a/>`))
	if _, err := col.SnapshotVersion(id); err == nil {
		t.Error("SnapshotVersion on unversioned collection should fail")
	}
	if err := col.Vacuum(id, 1); err == nil {
		t.Error("Vacuum on unversioned collection should fail")
	}
	_ = xml.DocID(0)
}
