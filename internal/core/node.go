package core

import (
	"fmt"
	"io"

	"rx/internal/nodeid"
	"rx/internal/pack"
	"rx/internal/serialize"
	"rx/internal/vsax"
	"rx/internal/xml"
)

// findNode locates a node by (doc, id) through the NodeID index (§3.4:
// "when a (docid, nodeid) is given from an XPath value index, to find the
// record containing the corresponding node, use this pair as the key on the
// node ID index").
func (c *Collection) findNode(doc xml.DocID, id nodeid.ID) (*pack.Record, pack.Node, error) {
	rid, err := c.lookupCur(doc, id)
	if err != nil {
		return nil, pack.Node{}, fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	rec, err := c.fetchRecord(rid)
	if err != nil {
		return nil, pack.Node{}, err
	}
	n, found, err := rec.Find(id)
	if err != nil {
		return nil, pack.Node{}, err
	}
	if !found {
		return nil, pack.Node{}, fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	return rec, n, nil
}

// findNodeBorrowed is findNode over the zero-copy path: the record (and the
// node's Value) alias a pinned heap frame until release is called. The
// node-ID index maps every node to the record that physically contains it,
// so Find never needs to cross into another record here.
func (c *Collection) findNodeBorrowed(doc xml.DocID, id nodeid.ID) (*pack.Record, func(), pack.Node, error) {
	rid, err := c.lookupCur(doc, id)
	if err != nil {
		return nil, nil, pack.Node{}, fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	rec, release, err := c.fetchRecordBorrowed(rid)
	if err != nil {
		return nil, nil, pack.Node{}, err
	}
	n, found, err := rec.Find(id)
	if err != nil {
		release()
		return nil, nil, pack.Node{}, err
	}
	if !found {
		release()
		return nil, nil, pack.Node{}, fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	return rec, release, n, nil
}

// stringValueVisitor accumulates descendant text.
type stringValueVisitor struct {
	out []byte
}

func (v *stringValueVisitor) Enter(n pack.Node, r *pack.Record) (bool, error) {
	if n.Kind == xml.Text {
		v.out = append(v.out, n.Value...)
	}
	return true, nil
}

func (v *stringValueVisitor) Leave(pack.Node, *pack.Record) (bool, error) { return true, nil }

// NodeString returns the XPath string value of a stored node: the value of
// attribute/text/comment/PI nodes, or the concatenated descendant text of an
// element.
func (c *Collection) NodeString(doc xml.DocID, id nodeid.ID) ([]byte, error) {
	rec, release, n, err := c.findNodeBorrowed(doc, id)
	if err != nil {
		return nil, err
	}
	switch n.Kind {
	case xml.Attribute, xml.Text, xml.Comment, xml.ProcessingInstruction:
		// Copy-on-escape: n.Value aliases the pinned frame.
		out := append([]byte(nil), n.Value...)
		release()
		return out, nil
	case xml.Element:
		v := &stringValueVisitor{}
		if err := pack.WalkSubtreeBorrowed(rec, release, n, c.borrowFetcher(doc), v); err != nil {
			return nil, err
		}
		return v.out, nil
	default:
		release()
		return nil, fmt.Errorf("core: node %s has no string value (kind %v)", id, n.Kind)
	}
}

// NodeKind returns a stored node's kind and name.
func (c *Collection) NodeKind(doc xml.DocID, id nodeid.ID) (xml.Kind, xml.QName, error) {
	_, release, n, err := c.findNodeBorrowed(doc, id)
	if err != nil {
		return 0, xml.QName{}, err
	}
	release()
	return n.Kind, n.Name, nil
}

// SerializeNode writes a stored subtree as XML text. The record header's
// in-scope namespaces make the fragment self-contained (§3.1: "being
// self-contained when accessed from an XPath value index").
func (c *Collection) SerializeNode(doc xml.DocID, id nodeid.ID, w io.Writer) error {
	rec, release, n, err := c.findNodeBorrowed(doc, id)
	if err != nil {
		return err
	}
	s := serialize.New(w, c.db.cat)
	if err := s.StartDocument(); err != nil {
		release()
		return err
	}
	// Make the record's in-scope namespaces visible to the fragment. The
	// serializer declares any that the fragment actually uses. rec.NS is
	// decoded into owned structs, so seeding it past the walk is safe.
	h := &nsSeedingHandler{Handler: s, seed: rec.NS, names: c.db.cat}
	if err := pack.WalkSubtreeBorrowed(rec, release, n, c.borrowFetcher(doc), handlerVisitor{h}); err != nil {
		return err
	}
	if err := s.EndDocument(); err != nil {
		return err
	}
	return s.Err()
}

// nsSeedingHandler injects the context node's in-scope namespace bindings as
// declarations on the fragment's outermost element.
type nsSeedingHandler struct {
	vsax.Handler
	seed   []pack.NSBinding
	names  xml.Names
	seeded bool
}

func (h *nsSeedingHandler) StartElement(name xml.QName, id nodeid.ID) error {
	if err := h.Handler.StartElement(name, id); err != nil {
		return err
	}
	if !h.seeded {
		h.seeded = true
		for _, b := range h.seed {
			if err := h.Handler.NSDecl(b.Prefix, b.URI, nil); err != nil {
				return err
			}
		}
	}
	return nil
}
