package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"rx/internal/dom"
	"rx/internal/xml"
	"rx/internal/xmlparse"
	"rx/internal/xpath"
	"rx/internal/xpathdom"
)

// TestQueryOracleAfterChurn is the engine's capstone property test: after a
// random workload of inserts, updates, fragment insertions, subtree
// deletions and document deletions, every query — whatever access method
// the planner picks — must return exactly what a DOM oracle computes over
// the serialized state of every document.
func TestQueryOracleAfterChurn(t *testing.T) {
	queries := []string{
		`/order/items/item[qty = 5]`,
		`/order/items/item[qty > 6]/sku`,
		`//item[qty >= 3 and qty <= 4]`,
		`//sku`,
		`/order/items/item[sku = 'SNEW']`,
		`//item[not(qty)]`,
	}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := newDB(t)
		col, _ := db.CreateCollection("c", CollectionOptions{PackThreshold: 300 + rng.Intn(2000)})
		col.CreateValueIndex("ix_qty", "//qty", xml.TDouble)
		col.CreateValueIndex("ix_sku", "/order/items/item/sku", xml.TString)

		live := map[xml.DocID]bool{}
		var ids []xml.DocID
		newDoc := func() {
			var sb bytes.Buffer
			sb.WriteString("<order><items>")
			for i := 0; i < 5+rng.Intn(30); i++ {
				fmt.Fprintf(&sb, `<item><sku>S%03d</sku><qty>%d</qty></item>`, rng.Intn(200), rng.Intn(9))
			}
			sb.WriteString("</items></order>")
			id, err := col.Insert(sb.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			live[id] = true
			ids = append(ids, id)
		}
		for i := 0; i < 8; i++ {
			newDoc()
		}
		pickLive := func() (xml.DocID, bool) {
			perm := rng.Perm(len(ids))
			for _, i := range perm {
				if live[ids[i]] {
					return ids[i], true
				}
			}
			return 0, false
		}

		for op := 0; op < 60; op++ {
			switch rng.Intn(5) {
			case 0:
				newDoc()
			case 1: // update a qty text
				if id, ok := pickLive(); ok {
					res, _, _ := col.Query("//qty/text()")
					for _, r := range res {
						if r.Doc == id {
							if err := col.UpdateText(id, r.Node, []byte(fmt.Sprint(rng.Intn(9)))); err != nil {
								t.Fatal(err)
							}
							break
						}
					}
				}
			case 2: // insert a fragment
				if id, ok := pickLive(); ok {
					root, _, _ := col.Query("/order/items")
					for _, r := range root {
						if r.Doc == id {
							if _, err := col.InsertFragment(id, r.Node, AsLastChild,
								[]byte(fmt.Sprintf(`<item><sku>SNEW</sku><qty>%d</qty></item>`, rng.Intn(9)))); err != nil {
								t.Fatal(err)
							}
							break
						}
					}
				}
			case 3: // delete a subtree
				if id, ok := pickLive(); ok {
					res, _, _ := col.Query("//item")
					for _, r := range res {
						if r.Doc == id {
							if err := col.DeleteSubtree(id, r.Node); err != nil {
								t.Fatal(err)
							}
							break
						}
					}
				}
			case 4: // delete a whole document (keep at least 2)
				if len(liveCount(live)) > 2 {
					if id, ok := pickLive(); ok {
						if err := col.Delete(id); err != nil {
							t.Fatal(err)
						}
						live[id] = false
					}
				}
			}
		}

		if err := col.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: consistency: %v", seed, err)
		}

		// Oracle comparison per query.
		dict := db.Catalog()
		for _, qs := range queries {
			got, plan, err := col.Query(qs)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, qs, err)
			}
			var want []Result
			for _, id := range ids {
				if !live[id] {
					continue
				}
				var buf bytes.Buffer
				if err := col.Serialize(id, &buf); err != nil {
					t.Fatal(err)
				}
				stream, err := xmlparse.Parse(buf.Bytes(), dict, xmlparse.Options{})
				if err != nil {
					t.Fatal(err)
				}
				tree, err := dom.Build(stream)
				if err != nil {
					t.Fatal(err)
				}
				q, _ := xpath.Parse(qs)
				ce, err := xpathdom.Compile(q, dict, nil)
				if err != nil {
					t.Fatal(err)
				}
				for range ce.Evaluate(tree) {
					want = append(want, Result{Doc: id})
				}
			}
			// Node IDs differ between the stored document and a re-parse
			// (updates assign Between-IDs), so compare counts per document.
			gotPerDoc := map[xml.DocID]int{}
			for _, r := range got {
				gotPerDoc[r.Doc]++
			}
			wantPerDoc := map[xml.DocID]int{}
			for _, r := range want {
				wantPerDoc[r.Doc]++
			}
			if len(gotPerDoc) != len(wantPerDoc) {
				t.Fatalf("seed %d %q (plan %s): docs %v vs oracle %v", seed, qs, plan.Method, gotPerDoc, wantPerDoc)
			}
			for d, n := range wantPerDoc {
				if gotPerDoc[d] != n {
					t.Fatalf("seed %d %q (plan %s): doc %d has %d results, oracle %d",
						seed, qs, plan.Method, d, gotPerDoc[d], n)
				}
			}
		}
	}
}

func liveCount(m map[xml.DocID]bool) []xml.DocID {
	var out []xml.DocID
	for id, ok := range m {
		if ok {
			out = append(out, id)
		}
	}
	return out
}
