package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"rx/internal/nodeid"
	"rx/internal/xml"
)

func seedCatalog(t testing.TB, col *Collection, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		doc := catalogDoc(i, float64(100+i*10), 0.1, fmt.Sprintf("Widget %03d", i))
		if _, err := col.Insert([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelScanMatchesSerial checks that the parallel executor returns
// exactly the serial result set, in the same (DocID, NodeID) order.
func TestParallelScanMatchesSerial(t *testing.T) {
	db := newDB(t)
	col, err := db.CreateCollection("cat", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seedCatalog(t, col, 40)
	const q = "/Catalog/Categories/Product[RegPrice > 250]/ProductName"

	serial, plan, err := col.QueryOpts(q, QueryOptions{Parallelism: 1, NeedValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != "scan" {
		t.Fatalf("expected scan plan, got %s", plan.Method)
	}
	if len(serial) == 0 {
		t.Fatal("serial query returned no results")
	}
	par, pplan, err := col.QueryOpts(q, QueryOptions{Parallelism: 8, NeedValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if pplan.Parallelism < 2 {
		t.Fatalf("expected parallel plan, got parallelism=%d", pplan.Parallelism)
	}
	if len(par) != len(serial) {
		t.Fatalf("parallel returned %d results, serial %d", len(par), len(serial))
	}
	for i := range serial {
		if par[i].Doc != serial[i].Doc || nodeid.Compare(par[i].Node, serial[i].Node) != 0 ||
			string(par[i].Value) != string(serial[i].Value) {
			t.Fatalf("result %d differs: parallel %v serial %v", i, par[i], serial[i])
		}
	}
}

// TestParallelDocListPath checks the parallel executor on the docid-list
// access method (index narrows candidates, evaluation is re-run per doc).
func TestParallelDocListPath(t *testing.T) {
	db := newDB(t)
	col, err := db.CreateCollection("cat", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seedCatalog(t, col, 40)
	if err := col.CreateValueIndex("by_price", "/Catalog/Categories/Product/RegPrice", xml.TDouble); err != nil {
		t.Fatal(err)
	}
	const q = "/Catalog/Categories/Product[RegPrice > 250]/ProductName"
	serial, plan, err := col.QueryOpts(q, QueryOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != "docid-list" {
		t.Skipf("planner chose %s, not docid-list", plan.Method)
	}
	par, _, err := col.QueryOpts(q, QueryOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("parallel returned %d results, serial %d", len(par), len(serial))
	}
	for i := range serial {
		if par[i].Doc != serial[i].Doc || nodeid.Compare(par[i].Node, serial[i].Node) != 0 {
			t.Fatalf("result %d differs: parallel %v serial %v", i, par[i], serial[i])
		}
	}
}

// TestConcurrentReadersOneWriter runs parallel queries from several
// goroutines while a writer keeps inserting — the read path must be
// race-free (run under -race) and every query must see whole documents.
func TestConcurrentReadersOneWriter(t *testing.T) {
	db := newDB(t)
	col, err := db.CreateCollection("cat", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seedCatalog(t, col, 10)
	const q = "/Catalog/Categories/Product[RegPrice > 0]/ProductName"

	var wg sync.WaitGroup
	stop := make(chan struct{})
	const readers = 4
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				rs, _, err := col.QueryOpts(q, QueryOptions{Parallelism: 4})
				if err != nil {
					errs <- err
					return
				}
				// Inserts only add matches; counts must never shrink.
				if len(rs) < prev {
					errs <- fmt.Errorf("result count shrank: %d -> %d", prev, len(rs))
					return
				}
				prev = len(rs)
			}
		}()
	}
	for i := 10; i < 60; i++ {
		doc := catalogDoc(i, float64(100+i*10), 0.1, fmt.Sprintf("Widget %03d", i))
		if _, err := col.Insert([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	rs, _, err := col.QueryOpts(q, QueryOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 60 {
		t.Fatalf("expected 60 matches after writer finished, got %d", len(rs))
	}
}

// TestQueryCtxCancel checks that a cancelled context aborts both the serial
// and the parallel path promptly with ctx.Err().
func TestQueryCtxCancel(t *testing.T) {
	db := newDB(t)
	col, err := db.CreateCollection("cat", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seedCatalog(t, col, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const q = "/Catalog/Categories/Product/ProductName"
	for _, par := range []int{1, 4} {
		_, _, err := col.QueryOpts(q, QueryOptions{Ctx: ctx, Parallelism: par})
		if err != context.Canceled {
			t.Errorf("parallelism %d: expected context.Canceled, got %v", par, err)
		}
	}
}

// TestCursorSemantics exercises the streaming contract: empty results,
// early Close, exhaustion, and Limit.
func TestCursorSemantics(t *testing.T) {
	db := newDB(t)
	col, err := db.CreateCollection("cat", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seedCatalog(t, col, 12)

	t.Run("empty", func(t *testing.T) {
		cur, err := col.Cursor("/Nope/Nothing", QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		if cur.Next() {
			t.Fatal("Next returned true on empty result set")
		}
		if cur.Err() != nil {
			t.Fatalf("Err after exhaustion: %v", cur.Err())
		}
	})

	t.Run("early close", func(t *testing.T) {
		for _, par := range []int{1, 4} {
			cur, err := col.Cursor("/Catalog/Categories/Product/ProductName",
				QueryOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !cur.Next() {
				t.Fatalf("parallelism %d: expected at least one result", par)
			}
			if err := cur.Close(); err != nil {
				t.Fatal(err)
			}
			if cur.Next() {
				t.Fatal("Next returned true after Close")
			}
			if cur.Err() != nil {
				t.Fatalf("Err after early Close: %v", cur.Err())
			}
			if err := cur.Close(); err != nil {
				t.Fatal("second Close errored:", err)
			}
		}
	})

	t.Run("exhaustion", func(t *testing.T) {
		cur, err := col.Cursor("/Catalog/Categories/Product/ProductName",
			QueryOptions{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		n := 0
		for cur.Next() {
			if len(cur.Result().Node) == 0 {
				t.Fatal("result with empty node ID")
			}
			n++
		}
		if n != 12 {
			t.Fatalf("expected 12 results, got %d", n)
		}
		if cur.Next() {
			t.Fatal("Next returned true after exhaustion")
		}
		if cur.Err() != nil {
			t.Fatalf("Err after exhaustion: %v", cur.Err())
		}
	})

	t.Run("limit", func(t *testing.T) {
		for _, par := range []int{1, 4} {
			cur, err := col.Cursor("/Catalog/Categories/Product/ProductName",
				QueryOptions{Parallelism: par, Limit: 5})
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for cur.Next() {
				n++
			}
			if n != 5 {
				t.Fatalf("parallelism %d: Limit 5 yielded %d results", par, n)
			}
			if cur.Err() != nil {
				t.Fatalf("Err after limit: %v", cur.Err())
			}
			cur.Close()
		}
	})
}
