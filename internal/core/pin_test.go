package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"rx/internal/pagestore"
	"rx/internal/xml"
)

// pinDoc builds a document whose every value encodes its document number, so
// aliased or recycled bytes are detectable.
func pinDoc(i int) []byte {
	return []byte(fmt.Sprintf(
		`<doc n="%d"><k>key-%06d</k><v>value-%06d-%s</v></doc>`,
		i, i, i, strings.Repeat("x", 64)))
}

// TestCursorValueHeldAcrossNextUnderEviction is the pin-misuse test: it
// opens a cursor over many documents on a pool far too small to hold them,
// retains every Result.Value across subsequent Next calls (each of which
// borrows more frames and forces evictions of the earlier ones), and then
// verifies every retained value. If cursor values aliased pinned frames
// instead of being copied out before release, the evicted-and-reused frames
// would corrupt the retained slices.
func TestCursorValueHeldAcrossNextUnderEviction(t *testing.T) {
	db, err := Open(pagestore.NewMemStore(), Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateCollection("pins", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const docs = 200
	for i := 0; i < docs; i++ {
		if _, err := col.Insert(pinDoc(i)); err != nil {
			t.Fatal(err)
		}
	}

	cur, err := col.Cursor("/doc/v", QueryOptions{NeedValues: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var held [][]byte // values retained across Next — the misuse under test
	for cur.Next() {
		held = append(held, cur.Result().Value)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if len(held) != docs {
		t.Fatalf("cursor returned %d values, want %d", len(held), docs)
	}
	seen := map[string]bool{}
	for _, v := range held {
		if !bytes.HasPrefix(v, []byte("value-")) || !bytes.HasSuffix(v, []byte(strings.Repeat("x", 64))) {
			t.Fatalf("retained value corrupted (frame alias escaped?): %q", v)
		}
		seen[string(v)] = true
	}
	if len(seen) != docs {
		t.Fatalf("retained values collapsed to %d distinct (frame reuse overwrote aliases?)", len(seen))
	}
}

// TestNodeStringCopiesOutOfFrame verifies the copy-on-escape contract of the
// borrowed read path: bytes returned by NodeString stay intact after the
// frame they were read from has been evicted and its page re-fetched by
// other traffic.
func TestNodeStringCopiesOutOfFrame(t *testing.T) {
	db, err := Open(pagestore.NewMemStore(), Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateCollection("pins", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const docs = 100
	for i := 0; i < docs; i++ {
		if _, err := col.Insert(pinDoc(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Take the string value of doc 0's <v>, then churn the pool by querying
	// everything else, then re-check the retained bytes.
	rs, _, err := col.QueryOpts("/doc/v", QueryOptions{NeedValues: true, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
	val, err := col.NodeString(rs[0].Doc, rs[0].Node)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), val...)
	for round := 0; round < 3; round++ {
		if _, _, err := col.QueryOpts("/doc/k", QueryOptions{NeedValues: true}); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(val, want) {
		t.Fatalf("NodeString bytes changed after eviction churn: %q != %q", val, want)
	}
}

// TestConcurrentReadersUnderEviction runs parallel borrowed-read traffic
// (serialization, node reads, queries) on a tiny pool so pins, evictions and
// frame reuse race across shards; meaningful mainly under -race.
func TestConcurrentReadersUnderEviction(t *testing.T) {
	db, err := Open(pagestore.NewMemStore(), Options{PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateCollection("pins", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const docs = 64
	ids := make([]xml.DocID, 0, docs)
	for i := 0; i < docs; i++ {
		id, err := col.Insert(pinDoc(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch g % 3 {
				case 0:
					rs, _, err := col.QueryOpts("/doc/v", QueryOptions{NeedValues: true})
					if err != nil {
						t.Error(err)
						return
					}
					for _, r := range rs {
						if !bytes.HasPrefix(r.Value, []byte("value-")) {
							t.Errorf("corrupt value %q", r.Value)
							return
						}
					}
				case 1:
					var sb strings.Builder
					if err := col.Serialize(ids[(g*31+i)%docs], &sb); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, _, err := col.QueryOpts("/doc/k", QueryOptions{NeedValues: true}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if pinned := db.Stats().PoolPinned; pinned != 0 {
		t.Errorf("PoolPinned = %d after all readers finished, want 0", pinned)
	}
}
