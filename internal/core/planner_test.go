package core

import (
	"fmt"
	"testing"

	"rx/internal/xml"
)

func plannerDB(t *testing.T) *Collection {
	t.Helper()
	db := newDB(t)
	col, _ := db.CreateCollection("emp", CollectionOptions{})
	for i := 0; i < 30; i++ {
		doc := fmt.Sprintf(
			`<emp><name>Emp %02d</name><hire>%d-0%d-15</hire><salary>%d.50</salary></emp>`,
			i, 1990+i, i%9+1, 30000+i*1000)
		if _, err := col.Insert([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(col.CreateValueIndex("ix_name", "/emp/name", xml.TString))
	must(col.CreateValueIndex("ix_hire", "/emp/hire", xml.TDate))
	must(col.CreateValueIndex("ix_salary", "/emp/salary", xml.TDecimal))
	return col
}

func TestPlannerStringIndex(t *testing.T) {
	col := plannerDB(t)
	res, plan, err := col.Query(`/emp[name = 'Emp 07']`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != "nodeid-list" || len(plan.Indexes) != 1 || plan.Indexes[0] != "ix_name" {
		t.Errorf("plan = %+v", plan)
	}
	if len(res) != 1 {
		t.Errorf("results = %d", len(res))
	}
	// Range over strings.
	res, plan, _ = col.Query(`/emp[name < 'Emp 03']`)
	if plan.Method == "scan" {
		t.Errorf("string range should use the index: %+v", plan)
	}
	if len(res) != 3 {
		t.Errorf("results = %d", len(res))
	}
}

func TestPlannerDateIndex(t *testing.T) {
	col := plannerDB(t)
	res, plan, err := col.Query(`/emp[hire >= '2015-01-01']`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != "nodeid-list" || plan.Indexes[0] != "ix_hire" {
		t.Errorf("plan = %+v", plan)
	}
	if len(res) != 5 { // 2015..2019
		t.Errorf("results = %d", len(res))
	}
	// A string literal that is not a date cannot use the date index.
	_, plan2, err := col.Query(`/emp[hire = 'not-a-date']`)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Method != "scan" {
		t.Errorf("non-date literal should fall back to scan, got %s", plan2.Method)
	}
}

func TestPlannerDecimalIndex(t *testing.T) {
	col := plannerDB(t)
	res, plan, err := col.Query(`/emp[salary >= 55000]`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != "nodeid-list" || plan.Indexes[0] != "ix_salary" {
		t.Errorf("plan = %+v", plan)
	}
	scan, _, _ := col.Query(`//emp[salary >= 55000]`)
	if len(res) != len(scan) {
		t.Errorf("decimal index results %d vs scan %d", len(res), len(scan))
	}
}

func TestPlannerNERejected(t *testing.T) {
	col := plannerDB(t)
	_, plan, err := col.Query(`/emp[name != 'Emp 07']`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != "scan" {
		t.Errorf("!= has no index range; plan = %s", plan.Method)
	}
}

func TestPlannerExistencePredicateForcesReeval(t *testing.T) {
	col := plannerDB(t)
	// [name] existence is not indexable (unparsable values would be missed);
	// with an extra indexed conjunct the plan may narrow docs but must not
	// claim exactness.
	res, plan, err := col.Query(`/emp[salary >= 55000 and name]`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Exact {
		t.Errorf("existence conjunct must force re-evaluation: %+v", plan)
	}
	scan, _, _ := col.Query(`//emp[salary >= 55000 and name]`)
	if len(res) != len(scan) {
		t.Errorf("results %d vs scan %d", len(res), len(scan))
	}
}

func TestPlannerDescendantSpineNotExact(t *testing.T) {
	col := plannerDB(t)
	// A descendant spine cannot use node-level prefixes; it must still get
	// the right answer through doc-level filtering.
	res, plan, err := col.Query(`//emp[name = 'Emp 07']`)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Exact {
		t.Errorf("descendant spine must not be exact: %+v", plan)
	}
	if len(res) != 1 {
		t.Errorf("results = %d", len(res))
	}
}
