package core

// Corruption registry and document quarantine. When the scrubber (or a
// degraded query) finds a damaged page, the damage is attributed to the
// documents whose records live on it and only those DocIDs are demoted to
// ErrQuarantined — the rest of the collection keeps serving. Repair clears
// quarantine entries as documents are restored; a document salvaged with
// subtree loss stays readable but is flagged lossy, never silently dropped.
//
// The registry is in-memory: it is a cache of a property that is re-derivable
// from storage, so a restart simply re-detects on the next scrub pass. That
// is also what makes crash-mid-repair safe — repair is idempotent and the
// work list is recomputed, not persisted.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rx/internal/pagestore"
	"rx/internal/rxerr"
	"rx/internal/xml"
)

// ErrQuarantined reports an operation touching a document quarantined by the
// corruption registry. Retrieve details with errors.As; it matches
// rxerr.ErrQuarantined under errors.Is.
type ErrQuarantined struct {
	Col    string
	Doc    xml.DocID
	Reason string
}

func (e ErrQuarantined) Error() string {
	return fmt.Sprintf("core: document %d in %q quarantined: %s", e.Doc, e.Col, e.Reason)
}

func (e ErrQuarantined) Is(target error) bool { return target == rxerr.ErrQuarantined }

// QuarantineEntry is one quarantined document in the corruption registry.
type QuarantineEntry struct {
	Col    string
	Doc    xml.DocID
	Reason string
	// Page is the damaged page the quarantine was attributed to
	// (pagestore.InvalidPage when the damage was structural, not physical).
	Page pagestore.PageID
}

// LossyDoc records a document that survived repair only partially: salvage
// from the NodeID index recovered what was readable and dropped the subtrees
// whose records were lost.
type LossyDoc struct {
	Col          string
	Doc          xml.DocID
	LostSubtrees int
}

// quarantineSet is the DB-wide corruption registry.
type quarantineSet struct {
	mu    sync.Mutex
	docs  map[string]map[xml.DocID]QuarantineEntry
	lossy map[string]map[xml.DocID]LossyDoc
}

// Quarantine demotes a document: reads of it fail with ErrQuarantined (or
// are skipped under QueryOptions.Degraded) until repair clears it. Returns
// true if the document was not already quarantined.
func (db *DB) Quarantine(col string, doc xml.DocID, reason string, page pagestore.PageID) bool {
	q := &db.quarantine
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.docs == nil {
		q.docs = map[string]map[xml.DocID]QuarantineEntry{}
	}
	if q.docs[col] == nil {
		q.docs[col] = map[xml.DocID]QuarantineEntry{}
	}
	if _, ok := q.docs[col][doc]; ok {
		return false
	}
	q.docs[col][doc] = QuarantineEntry{Col: col, Doc: doc, Reason: reason, Page: page}
	atomic.AddUint64(&db.stats.docsQuarantined, 1)
	return true
}

// quarantined looks a document up in the registry.
func (db *DB) quarantined(col string, doc xml.DocID) (QuarantineEntry, bool) {
	q := &db.quarantine
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.docs[col][doc]
	return e, ok
}

// ClearQuarantine removes a document from the registry (repair done, or an
// operator override). Returns true if it was present.
func (db *DB) ClearQuarantine(col string, doc xml.DocID) bool {
	q := &db.quarantine
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.docs[col][doc]; !ok {
		return false
	}
	delete(q.docs[col], doc)
	return true
}

// Quarantined lists the registry, ordered by collection then DocID.
func (db *DB) Quarantined() []QuarantineEntry {
	q := &db.quarantine
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []QuarantineEntry
	for _, docs := range q.docs {
		for _, e := range docs {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// markLossy records a document salvaged with subtree loss.
func (db *DB) markLossy(col string, doc xml.DocID, lostSubtrees int) {
	q := &db.quarantine
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.lossy == nil {
		q.lossy = map[string]map[xml.DocID]LossyDoc{}
	}
	if q.lossy[col] == nil {
		q.lossy[col] = map[xml.DocID]LossyDoc{}
	}
	q.lossy[col][doc] = LossyDoc{Col: col, Doc: doc, LostSubtrees: lostSubtrees}
	atomic.AddUint64(&db.stats.docsLossy, 1)
}

// LossyDocs lists documents flagged lossy by salvage, ordered by collection
// then DocID. The flag persists until the document is overwritten or deleted
// (ClearLossy), so an operator can find what needs restoring from backups.
func (db *DB) LossyDocs() []LossyDoc {
	q := &db.quarantine
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []LossyDoc
	for _, docs := range q.lossy {
		for _, e := range docs {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Doc < out[j].Doc
	})
	return out
}

// ClearLossy drops a document's lossy flag. Returns true if it was set.
func (db *DB) ClearLossy(col string, doc xml.DocID) bool {
	q := &db.quarantine
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.lossy[col][doc]; !ok {
		return false
	}
	delete(q.lossy[col], doc)
	return true
}

// Stats is a snapshot of the engine's observability counters.
type Stats struct {
	// Scrub subsystem.
	ScrubPasses      uint64 // completed scrub passes
	PagesVerified    uint64 // pages read and checked across all passes
	CorruptionsFound uint64 // page read failures found by scrubbing
	DocsQuarantined  uint64 // documents ever demoted to quarantine
	DocsRepaired     uint64 // documents restored by repair
	DocsLossy        uint64 // repaired documents flagged lossy
	IndexesRebuilt   uint64 // index structures rebuilt by repair
	QuarantinedNow   int    // current registry size

	// Engine resilience.
	WriteBackRetries uint64 // buffer-pool write-back retries (transient I/O)
	DeadlockReruns   uint64 // transactions re-run after a deadlock abort

	// Buffer pool.
	PoolHits           uint64
	PoolMisses         uint64
	PoolEvictions      uint64
	PoolWriteBacks     uint64
	PoolShards         int
	PoolResident       int
	PoolPinned         int // frames pinned right now (borrowed reads, cursors)
	PoolPinnedHW       int // peak simultaneously pinned frames
	PoolShardOccupancy []int

	// WAL (zero when the database runs without a log).
	WALCommits uint64 // transactions committed
	WALSyncs   uint64 // device syncs issued; < WALCommits means group commit batched

	// Resource governance (degraded.go, memgov).
	DegradedReadOnly bool   // engine currently sheds writes (disk exhausted)
	DegradedReason   string // why, empty when read-write
	WritesShed       uint64 // write requests rejected while degraded
	DegradedEnters   uint64 // times the engine flipped read-only
	DegradedExits    uint64 // times the watchdog recovered it to read-write
	PendingUndo      int    // unresolved rollback operations awaiting replay
	SpaceFree        int64  // last free-space probe in bytes (-1 = never probed)
	SpaceLowWater    int64  // watchdog enter-degraded threshold (0 = no watchdog)
	SpaceHighWater   int64  // watchdog recovery threshold
	MemLimit         int64  // engine memory budget in bytes (0 = unlimited)
	MemUsed          int64  // bytes currently reserved against the budget
	MemHighWater     int64  // peak bytes ever reserved
	MemDenials       uint64 // reservations denied at the engine root

	// Query planning (colstats.go, session plan cache).
	PlanCacheHits      uint64 // session plan-cache lookups answered from cache
	PlanCacheMisses    uint64 // lookups that had to plan from scratch
	StatsRefreshPasses uint64 // completed statistics refresh passes
}

// dbStats holds the DB's atomic counters behind Stats().
type dbStats struct {
	scrubPasses     uint64
	pagesVerified   uint64
	corruptions     uint64
	docsQuarantined uint64
	docsRepaired    uint64
	docsLossy       uint64
	indexesRebuilt  uint64
	deadlockReruns  uint64
	writesShed      uint64
	degradedEnters  uint64
	degradedExits   uint64
	planCacheHits   uint64
	planCacheMisses uint64
	statsRefreshes  uint64
}

// Stats returns a consistent-enough snapshot of the engine counters (each
// counter is read atomically; the set is not cross-counter atomic).
func (db *DB) Stats() Stats {
	ps := db.pool.Stats()
	s := Stats{
		ScrubPasses:        atomic.LoadUint64(&db.stats.scrubPasses),
		PagesVerified:      atomic.LoadUint64(&db.stats.pagesVerified),
		CorruptionsFound:   atomic.LoadUint64(&db.stats.corruptions),
		DocsQuarantined:    atomic.LoadUint64(&db.stats.docsQuarantined),
		DocsRepaired:       atomic.LoadUint64(&db.stats.docsRepaired),
		DocsLossy:          atomic.LoadUint64(&db.stats.docsLossy),
		IndexesRebuilt:     atomic.LoadUint64(&db.stats.indexesRebuilt),
		WriteBackRetries:   ps.WriteRetries,
		DeadlockReruns:     atomic.LoadUint64(&db.stats.deadlockReruns),
		PoolHits:           ps.Hits,
		PoolMisses:         ps.Misses,
		PoolEvictions:      ps.Evictions,
		PoolWriteBacks:     ps.WriteBacks,
		PoolShards:         ps.Shards,
		PoolResident:       ps.Resident,
		PoolPinned:         ps.Pinned,
		PoolPinnedHW:       ps.PinnedHighWater,
		PoolShardOccupancy: ps.ShardOccupancy,
	}
	if db.log != nil {
		s.WALCommits = db.log.CommitCount()
		s.WALSyncs = db.log.SyncCount()
	}
	s.DegradedReadOnly, s.DegradedReason = db.Degraded()
	s.WritesShed = atomic.LoadUint64(&db.stats.writesShed)
	s.DegradedEnters = atomic.LoadUint64(&db.stats.degradedEnters)
	s.DegradedExits = atomic.LoadUint64(&db.stats.degradedExits)
	s.PendingUndo = db.pendingUndo()
	s.SpaceFree = db.spaceFree.Load()
	s.SpaceLowWater = db.watchLow.Load()
	s.SpaceHighWater = db.watchHigh.Load()
	s.MemLimit = db.mem.Limit()
	s.MemUsed = db.mem.Used()
	s.MemHighWater = db.mem.HighWater()
	s.MemDenials = db.mem.Denials()
	s.PlanCacheHits = atomic.LoadUint64(&db.stats.planCacheHits)
	s.PlanCacheMisses = atomic.LoadUint64(&db.stats.planCacheMisses)
	s.StatsRefreshPasses = atomic.LoadUint64(&db.stats.statsRefreshes)
	q := &db.quarantine
	q.mu.Lock()
	for _, docs := range q.docs {
		s.QuarantinedNow += len(docs)
	}
	q.mu.Unlock()
	return s
}
