package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"rx/internal/catalog"
	"rx/internal/memgov"
	"rx/internal/nodeid"
	"rx/internal/quickxscan"
	"rx/internal/stats"
	"rx/internal/valueindex"
	"rx/internal/xml"
	"rx/internal/xpath"
)

// Result is one query match.
type Result struct {
	Doc  xml.DocID
	Node nodeid.ID
	// Value is the node's string value when requested via QueryValues.
	Value []byte
}

// Plan reports the access method chosen for a query (§4.3, Table 2).
type Plan struct {
	// Method is one of "scan", "nodeid-list", "nodeid-anding",
	// "nodeid-filtering", "docid-list", "docid-anding", "docid-oring".
	Method string
	// Indexes names the XPath value indexes used, in probe order (the
	// planner probes the most selective first).
	Indexes []string
	// Exact is true when the index result needed no re-evaluation on the
	// documents.
	Exact bool
	// CandidateDocs is the number of documents re-evaluated (0 for exact
	// node-level access; the collection size for a scan).
	CandidateDocs int
	// Parallelism is the number of workers used for document
	// re-evaluation (1 for index-only access and serial execution).
	Parallelism int
	// EstDocs is the planner's cardinality estimate: documents (or, for
	// node-level plans, subtrees/result nodes) the plan expects to touch.
	EstDocs int
	// EstCost is the plan's estimated cost in the planner's abstract units
	// (roughly: one unit per record fetched).
	EstCost float64
	// Alternatives lists every candidate the planner priced, cheapest
	// first; the chosen plan is among them. EXPLAIN surfaces this.
	Alternatives []PlanAlt

	q  *xpath.Query
	pq *plannedQuery
}

// PlanAlt is one candidate access path the planner considered.
type PlanAlt struct {
	Method  string
	EstDocs int
	EstCost float64
}

// QueryOptions tune one query execution.
type QueryOptions struct {
	// Parallelism caps the worker goroutines that re-evaluate candidate
	// documents: 0 picks runtime.NumCPU(), 1 forces serial execution.
	// Index-only access paths (exact NodeID lists) ignore it.
	Parallelism int
	// Limit stops the query after this many results (0 = unlimited).
	Limit int
	// Ctx cancels the query between documents; nil means
	// context.Background().
	Ctx context.Context
	// NeedValues includes each result node's string value.
	NeedValues bool
	// Degraded keeps a query running over a partially damaged collection:
	// quarantined documents are skipped (counted in Cursor.Skipped) instead
	// of failing the cursor, and a checksum error during evaluation
	// auto-quarantines the document and continues. Without it, touching a
	// quarantined document fails the cursor with a typed ErrQuarantined.
	Degraded bool
	// Mem, when non-nil, charges the cursor's buffered result batches
	// against a memory budget; a breach fails the cursor with
	// rxerr.ErrOverBudget instead of buffering without bound.
	Mem *memgov.Budget
	// MemLimit, when positive, caps this one query: Cursor derives a
	// per-query child of Mem (scope "query") so an oversized result set is
	// denied at the query even when the session and server budgets still
	// have room.
	MemLimit int64
	// ForceMethod, when set, bypasses cost-based selection and executes the
	// named access method. The method must be among the candidates the
	// query admits ("scan" always is) or planning fails. Used by the
	// differential planner tests and benchmarks; EXPLAIN still reports the
	// full candidate list.
	ForceMethod string
}

func (o QueryOptions) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// ctxCheckEvery is how many index entries a scan visits between
// cancellation checks.
const ctxCheckEvery = 1024

// CreateValueIndex creates an XPath value index (§3.3) and backfills it from
// the stored documents. The path must be a simple XPath expression without
// predicates; typ is one of xml.TString, TDouble, TDate, TDecimal.
func (c *Collection) CreateValueIndex(name, path string, typ xml.TypeID) error {
	if err := c.db.checkWritable(); err != nil {
		return err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	for _, ov := range c.valIxs {
		if ov.meta.Name == name {
			return fmt.Errorf("core: index %q already exists on %s", name, c.meta.Name)
		}
	}
	ix, err := valueindex.Create(c.db.pool, path, typ)
	if err != nil {
		return err
	}
	im := catalog.ValueIndexMeta{Name: name, Path: path, Type: typ, Meta: ix.MetaPage()}
	kg, err := c.compileKeygen(ix.Path())
	if err != nil {
		return err
	}
	ov := &openValueIndex{meta: im, ix: ix, keygen: kg}
	// Backfill from existing documents.
	docs, err := c.DocIDs()
	if err != nil {
		return err
	}
	for _, doc := range docs {
		matches, err := c.evalStored(doc, kg)
		if err != nil {
			return err
		}
		for _, m := range matches {
			rid, err := c.nodeIx.Lookup(doc, m.ID)
			if err != nil {
				return err
			}
			if err := ix.Put(m.Value, doc, m.ID, rid); err != nil && !errors.Is(err, valueindex.ErrNotIndexable) {
				return err
			}
		}
	}
	c.ixMu.Lock()
	c.valIxs = append(c.valIxs, ov)
	c.ixMu.Unlock()
	c.meta.Indexes = append(c.meta.Indexes, im)
	// Seed the new index's statistics exactly from the backfilled entries
	// (the backfill just wrote them; one ordered scan builds cardinality and
	// histogram), bump the stats epoch so cached plans replan against the
	// new index, and persist index list + statistics in one row write.
	b := stats.NewBuilder(stats.HistogramBuckets)
	if err := ix.Scan(valueindex.Range{}, func(e valueindex.Entry) bool {
		b.Add(e.EncodedValue)
		return true
	}); err != nil {
		return err
	}
	c.statsMu.Lock()
	is := c.live.EnsureIndex(name)
	is.Entries = b.Count()
	is.Distinct = b.Distinct()
	is.Hist = b.Build()
	c.live.Epoch++
	c.statsDirty = 0
	snap := c.live.Clone()
	c.statsMu.Unlock()
	return c.db.cat.UpdateCollectionStats(c.meta, snap)
}

// ValueIndexes lists the collection's value index names.
func (c *Collection) ValueIndexes() []string {
	var names []string
	for _, ov := range c.indexSnapshot() {
		names = append(names, ov.meta.Name)
	}
	return names
}

// ValueIndex returns an open value index by name (stats, experiments).
func (c *Collection) ValueIndex(name string) *valueindex.Index {
	for _, ov := range c.indexSnapshot() {
		if ov.meta.Name == name {
			return ov.ix
		}
	}
	return nil
}

// Query evaluates an XPath query over the collection, using value indexes
// when they apply (§4.3) and falling back to a QuickXScan relation-scan
// otherwise. It is the legacy convenience shim kept for a release; new code
// uses the context-first session API (session.Session.Query) or, inside the
// engine, QueryOpts/Cursor with explicit options.
func (c *Collection) Query(expr string) ([]Result, *Plan, error) {
	return c.QueryOpts(expr, QueryOptions{})
}

// QueryOpts evaluates the query with explicit options, materializing every
// result. Use Cursor to stream results instead.
func (c *Collection) QueryOpts(expr string, opts QueryOptions) ([]Result, *Plan, error) {
	cur, err := c.Cursor(expr, opts)
	if err != nil {
		return nil, nil, err
	}
	defer cur.Close()
	var results []Result
	for cur.Next() {
		results = append(results, cur.Result())
	}
	if err := cur.Err(); err != nil {
		return nil, nil, err
	}
	return results, cur.Plan(), nil
}

// Cursor plans the query and returns a streaming cursor over its results in
// (DocID, NodeID) order. Scan and DocID-filtering access paths evaluate
// candidate documents lazily — in parallel when opts.Parallelism allows —
// so callers iterate without materializing the full result set. The caller
// must Close the cursor.
func (c *Collection) Cursor(expr string, opts QueryOptions) (*Cursor, error) {
	p, err := c.Plan(expr, opts)
	if err != nil {
		return nil, err
	}
	return c.CursorPlanned(p, opts)
}

// Plan parses expr and runs access-path selection without executing the
// query: the returned Plan carries the chosen method, its cost estimates,
// and every alternative considered. EXPLAIN and the session plan cache are
// built on it; pass it to CursorPlanned to execute.
func (c *Collection) Plan(expr string, opts QueryOptions) (*Plan, error) {
	q, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	if !q.Rooted {
		return nil, errors.New("core: collection queries must be rooted paths")
	}
	return c.selectAccessPath(q, c.indexSnapshot(), opts)
}

// CursorPlanned executes a plan produced by Plan. The plan is not consumed:
// execution works on a copy, so a cached plan can be executed repeatedly.
func (c *Collection) CursorPlanned(p *Plan, opts QueryOptions) (*Cursor, error) {
	if err := opts.context().Err(); err != nil {
		return nil, err
	}
	if opts.MemLimit > 0 {
		opts.Mem = opts.Mem.Child("query", opts.MemLimit)
	}
	cp := *p
	cp.Indexes = append([]string(nil), p.Indexes...)
	cp.Alternatives = append([]PlanAlt(nil), p.Alternatives...)
	plan := &cp
	plan.Parallelism = 1
	q := plan.q
	switch plan.Method {
	case "nodeid-list", "nodeid-anding":
		results, err := c.execNodeList(q, plan, opts)
		if err != nil {
			return nil, err
		}
		return newSliceCursor(results, plan, opts)
	case "nodeid-filtering":
		results, err := c.execNodeFilter(q, plan, opts)
		if err != nil {
			return nil, err
		}
		return newSliceCursor(results, plan, opts)
	case "docid-list", "docid-anding", "docid-oring":
		docs, err := c.docCandidates(plan, opts)
		if err != nil {
			return nil, err
		}
		return c.newDocCursor(q, docs, plan, opts)
	default:
		docs, err := c.DocIDs()
		if err != nil {
			return nil, err
		}
		plan.CandidateDocs = len(docs)
		return c.newDocCursor(q, docs, plan, opts)
	}
}

// planConjunct is one usable comparison conjunct with its matched index.
type planConjunct struct {
	ov    *openValueIndex
	rng   valueindex.Range
	exact bool
	// level is the spine level the predicate anchors at (1-based).
	level int
}

// plannedQuery carries the planning work product between selection and
// execution.
type plannedQuery struct {
	conjuncts []planConjunct
	orParts   []planConjunct // both sides of a top-level OR
	spineLen  int
}

// Cost model constants. Units are abstract ("roughly one record fetch");
// only ratios matter. They price the work each access path actually does:
// scans evaluate every document (fetch its records, run QuickXScan);
// index paths pay a probe to position the B+tree, a per-entry cost to walk
// matching entries, and — for node-level paths — a per-entry cost to derive
// and deduplicate result/subtree prefixes; filtering paths then re-evaluate
// candidate documents or subtrees.
const (
	costFetchRecord = 1.0  // fetch + decode one packed record
	costEvalRecord  = 2.0  // fixed per-document evaluation overhead (setup)
	costEvalPerKB   = 12.0 // evaluate one KiB of document content (walk, match)
	costIndexEntry  = 0.25 // visit one value-index entry in a range scan
	costIndexProbe  = 2.0  // position one B+tree range scan
	costNodeEntry   = 0.25 // derive + dedupe a node-ID prefix per entry
	costResultValue = 0.5  // materialize one result node's string value
	costSubtreeBase = 0.5  // per-subtree setup (NodeID probe, record seek)
)

// selectAccessPath implements §4.3 access-path selection, costed: it builds
// every candidate the query admits — exact DocID/NodeID lists when index and
// predicate match exactly, filtering when the index path merely contains the
// query path, ANDing/ORing across multiple indexes, and always the parallel
// scan — prices each against the collection's statistics, and returns the
// cheapest (or the candidate named by opts.ForceMethod). valIxs is the
// caller's snapshot of the collection's value indexes.
func (c *Collection) selectAccessPath(q *xpath.Query, valIxs []*openValueIndex, opts QueryOptions) (*Plan, error) {
	spine := spineSteps(q)
	// Predicates on any spine step can narrow the candidate documents; only
	// result-step predicates can support exact node-level access (the
	// result node is then a node-ID prefix of the predicate node).
	type anchored struct {
		stepIdx int
		expr    xpath.Expr
	}
	var conjuncts []anchored
	for i, s := range spine {
		for _, p := range s.Preds {
			for _, e := range flattenAnd(p) {
				conjuncts = append(conjuncts, anchored{stepIdx: i, expr: e})
			}
		}
	}
	var matched []planConjunct
	var orParts []planConjunct
	unindexed := 0
	resultIdx := len(spine) - 1
	allOnResult := true
	for _, conj := range conjuncts {
		switch e := conj.expr.(type) {
		case xpath.Cmp:
			if pc, ok := matchIndex(valIxs, spine[:conj.stepIdx+1], e); ok {
				matched = append(matched, pc)
				if conj.stepIdx != resultIdx {
					allOnResult = false
				}
				continue
			}
		case xpath.Or:
			// ORing applies when both sides are indexable comparisons and
			// this is the only conjunct (otherwise treat as unindexed).
			l, lok := e.L.(xpath.Cmp)
			r, rok := e.R.(xpath.Cmp)
			if lok && rok && len(matched) == 0 && len(conjuncts) == 1 {
				pl, okl := matchIndex(valIxs, spine[:conj.stepIdx+1], l)
				pr, okr := matchIndex(valIxs, spine[:conj.stepIdx+1], r)
				if okl && okr {
					orParts = []planConjunct{pl, pr}
					continue
				}
			}
		}
		unindexed++
	}

	allExact := len(matched) > 0
	for _, pc := range matched {
		if !pc.exact {
			allExact = false
		}
	}
	// Eligibility of the node-level candidates (§4.3): exact lists need
	// every conjunct exact and anchored at the result step over a pure
	// child-axis spine; subtree filtering needs a single conjunct whose
	// anchor is reachable by a pure child-axis prefix and no predicate
	// residue outside the subtree.
	nodeListOK := allExact && allOnResult && unindexed == 0 &&
		len(orParts) == 0 && pureChildSpine(spine)
	anchor := 0
	filterOK := len(matched) == 1 && unindexed == 0 && len(orParts) == 0
	if filterOK {
		anchor = matched[0].level
		filterOK = pureChildSpine(spine[:anchor])
	}

	// Statistics snapshot: everything the cost formulas need, read under
	// one short critical section (histogram probes are pure functions of
	// immutable buckets).
	c.statsMu.Lock()
	n := float64(c.live.DocCount)
	rpd := c.live.RecordsPerDoc()
	avgKB := float64(c.live.AvgDocBytes()) / 1024
	ests := make([]float64, len(matched))
	for i, pc := range matched {
		ests[i] = estimateConjunct(c.live.Index(pc.ov.meta.Name), pc.rng)
	}
	var orEsts [2]float64
	if len(orParts) == 2 {
		orEsts[0] = estimateConjunct(c.live.Index(orParts[0].ov.meta.Name), orParts[0].rng)
		orEsts[1] = estimateConjunct(c.live.Index(orParts[1].ov.meta.Name), orParts[1].rng)
	}
	var anchorCount float64
	if filterOK {
		anchorCount = float64(c.live.PathCounts[spinePath(spine[:anchor])])
	}
	c.statsMu.Unlock()

	// Evaluating a document costs a fetch per packed record plus an
	// evaluation pass over its content: a large document is proportionally
	// more expensive to rehydrate and walk than a small one, whether its
	// bulk sits in one packed record or many.
	perDoc := rpd*costFetchRecord + costEvalRecord + costEvalPerKB*avgKB
	spineLen := len(spine)
	var cands []*Plan

	// Parallel full scan: always a candidate (and the differential oracle).
	cands = append(cands, &Plan{
		Method:  "scan",
		EstDocs: int(math.Round(n)),
		EstCost: n * perDoc,
	})

	if len(orParts) == 2 {
		e := orEsts[0] + orEsts[1]
		d := math.Min(n, e)
		cands = append(cands, &Plan{
			Method:  "docid-oring",
			Indexes: []string{orParts[0].ov.meta.Name, orParts[1].ov.meta.Name},
			EstDocs: int(math.Round(d)),
			EstCost: 2*costIndexProbe + e*costIndexEntry + d*perDoc,
			pq:      &plannedQuery{orParts: orParts, spineLen: spineLen},
		})
	}

	if len(matched) > 0 && len(orParts) == 0 {
		// DocID filtering: probe the most selective index first, then add
		// further indexes greedily — an index joins the intersection only
		// when its probe costs less than the document evaluations it is
		// expected to save (this prunes the wasteful members of the old
		// always-AND-everything plan and fixes its arbitrary order).
		order := make([]int, len(matched))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ia, ib := order[a], order[b]
			if ests[ia] != ests[ib] {
				return ests[ia] < ests[ib]
			}
			return matched[ia].ov.meta.Name < matched[ib].ov.meta.Name
		})
		first := order[0]
		included := []planConjunct{matched[first]}
		names := []string{matched[first].ov.meta.Name}
		cost := costIndexProbe + ests[first]*costIndexEntry
		d := math.Min(n, ests[first])
		for _, i := range order[1:] {
			sel := 1.0
			if n > 0 {
				sel = math.Min(n, ests[i]) / n
			}
			saving := d * (1 - sel) * perDoc
			probe := costIndexProbe + ests[i]*costIndexEntry
			if probe < saving {
				included = append(included, matched[i])
				names = append(names, matched[i].ov.meta.Name)
				cost += probe
				d *= sel
			}
		}
		method := "docid-list"
		if len(included) > 1 {
			method = "docid-anding"
		}
		cands = append(cands, &Plan{
			Method:  method,
			Indexes: names,
			EstDocs: int(math.Round(d)),
			EstCost: cost + d*perDoc,
			pq:      &plannedQuery{conjuncts: included, spineLen: spineLen},
		})
	}

	if nodeListOK {
		// Exact node-level access: every conjunct's entries are walked and
		// intersected at the node level; no document is re-evaluated. All
		// conjuncts participate (dropping one would widen the exact result).
		cost := 0.0
		res := math.Inf(1)
		var names []string
		for i, pc := range matched {
			cost += costIndexProbe + ests[i]*(costIndexEntry+costNodeEntry)
			names = append(names, pc.ov.meta.Name)
			res = math.Min(res, ests[i])
		}
		for i := range matched {
			if n > 0 && ests[i] > res {
				res *= math.Min(n, ests[i]) / n
			}
		}
		if opts.NeedValues {
			cost += res * costResultValue
		}
		method := "nodeid-list"
		if len(matched) > 1 {
			method = "nodeid-anding"
		}
		cands = append(cands, &Plan{
			Method:  method,
			Indexes: names,
			Exact:   true,
			EstDocs: int(math.Round(res)),
			EstCost: cost,
			pq:      &plannedQuery{conjuncts: matched, spineLen: spineLen},
		})
	}

	if filterOK {
		// NodeID filtering: re-evaluate only the anchor subtrees. A subtree
		// is priced as the anchor's share of a document (per-path element
		// counts give anchors-per-document) plus a fixed seek cost.
		e := ests[0]
		subtrees := e
		perSub := costSubtreeBase + perDoc
		if anchorCount > 0 && n > 0 {
			subtrees = math.Min(subtrees, anchorCount)
			perSub = costSubtreeBase + perDoc/(anchorCount/n)
		}
		cands = append(cands, &Plan{
			Method:  "nodeid-filtering",
			Indexes: []string{matched[0].ov.meta.Name},
			EstDocs: int(math.Round(subtrees)),
			EstCost: costIndexProbe + e*(costIndexEntry+costNodeEntry) + subtrees*perSub,
			pq:      &plannedQuery{conjuncts: matched, spineLen: spineLen},
		})
	}

	// Cheapest wins; ties break on method name so plans are deterministic.
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].EstCost != cands[b].EstCost {
			return cands[a].EstCost < cands[b].EstCost
		}
		return cands[a].Method < cands[b].Method
	})
	alts := make([]PlanAlt, len(cands))
	for i, p := range cands {
		alts[i] = PlanAlt{Method: p.Method, EstDocs: p.EstDocs, EstCost: p.EstCost}
	}
	chosen := cands[0]
	if opts.ForceMethod != "" {
		chosen = nil
		for _, p := range cands {
			if p.Method == opts.ForceMethod {
				chosen = p
				break
			}
		}
		if chosen == nil {
			return nil, fmt.Errorf("core: access method %q not available for this query", opts.ForceMethod)
		}
	}
	chosen.Alternatives = alts
	chosen.q = q
	if chosen.pq == nil {
		chosen.pq = &plannedQuery{spineLen: spineLen}
	}
	return chosen, nil
}

// estimateConjunct estimates how many index entries a conjunct's range scan
// will visit. Caller holds statsMu.
func estimateConjunct(is *stats.IndexStats, rng valueindex.Range) float64 {
	if rng.Lo != nil && rng.Hi != nil && !rng.LoStrict && !rng.HiStrict && bytes.Equal(rng.Lo, rng.Hi) {
		return is.EstimateEq(rng.Lo)
	}
	return is.EstimateRange(rng.Lo, rng.Hi, rng.LoStrict, rng.HiStrict)
}

// spinePath renders a pure child-axis spine prefix as a PathCounts key.
func spinePath(spine []*xpath.Step) string {
	var b strings.Builder
	for _, s := range spine {
		b.WriteByte('/')
		b.WriteString(s.Local)
	}
	return b.String()
}

// matchIndex finds an index usable for the comparison predicate anchored at
// the last step of prefix: the full predicate path (spine prefix + leaf
// path) must be covered by the index path and the literal must be
// comparable under the index's key type.
func matchIndex(valIxs []*openValueIndex, prefix []*xpath.Step, cmp xpath.Cmp) (planConjunct, bool) {
	if cmp.Op == xpath.NE {
		return planConjunct{}, false // no contiguous range
	}
	full := fullPredicatePath(prefix, cmp.Path)
	if full == nil {
		return planConjunct{}, false
	}
	var best *planConjunct
	for _, ov := range valIxs {
		if !typeCompatible(ov.meta.Type, cmp.Lit) {
			continue
		}
		exact := xpath.Equivalent(ov.ix.Path(), full)
		if !exact && !xpath.Covers(ov.ix.Path(), full) {
			continue
		}
		rng, err := ov.ix.RangeForOp(cmp.Op, cmp.Lit)
		if err != nil {
			continue
		}
		pc := planConjunct{ov: ov, rng: rng, exact: exact, level: len(prefix)}
		if best == nil || (exact && !best.exact) {
			b := pc
			best = &b
		}
	}
	if best == nil {
		return planConjunct{}, false
	}
	return *best, true
}

// typeCompatible: numeric literals need a numeric index; string literals a
// string or date index.
func typeCompatible(typ xml.TypeID, lit xpath.Literal) bool {
	if lit.IsNum {
		return typ == xml.TDouble || typ == xml.TDecimal
	}
	return typ == xml.TString || typ == xml.TDate
}

// spineSteps lists the query's spine steps.
func spineSteps(q *xpath.Query) []*xpath.Step {
	var out []*xpath.Step
	for s := q.Steps; s != nil; s = s.Next {
		out = append(out, s)
	}
	return out
}

// pureChildSpine reports whether every spine step is a child-axis name test.
func pureChildSpine(spine []*xpath.Step) bool {
	for _, s := range spine {
		if s.Axis != xpath.Child || s.Test != xpath.TestName {
			return false
		}
	}
	return true
}

// flattenAnd decomposes nested conjunctions.
func flattenAnd(e xpath.Expr) []xpath.Expr {
	if a, ok := e.(xpath.And); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []xpath.Expr{e}
}

// fullPredicatePath builds the rooted path "spine-prefix/leaf" used for
// index matching: the anchoring steps (without predicates) followed by the
// predicate's leaf path. Self-axis leaf paths use the prefix itself.
func fullPredicatePath(prefix []*xpath.Step, leaf *xpath.Step) *xpath.Query {
	var steps []xpath.Step
	for _, s := range prefix {
		cp := *s
		cp.Preds = nil
		cp.Next = nil
		steps = append(steps, cp)
	}
	for s := leaf; s != nil; s = s.Next {
		if s.Axis == xpath.Self {
			if s.Test != xpath.TestNode || s.Next != nil || len(s.Preds) > 0 {
				return nil
			}
			continue // [. op lit]: the spine node's own value
		}
		if len(s.Preds) > 0 {
			return nil
		}
		cp := *s
		cp.Next = nil
		steps = append(steps, cp)
	}
	if len(steps) == 0 {
		return nil
	}
	out := &xpath.Query{Rooted: true}
	for i := range steps {
		if i > 0 {
			steps[i-1].Next = &steps[i]
		}
	}
	out.Steps = &steps[0]
	return out
}

// execNodeList answers the query from index entries alone: the result node
// is the spine-length prefix of each matching predicate node; multiple
// exact indexes are ANDed at the node level (§4.3 access methods 1 and 3).
func (c *Collection) execNodeList(q *xpath.Query, plan *Plan, opts QueryOptions) ([]Result, error) {
	ctx := opts.context()
	pq := plan.pq
	type key struct {
		doc  xml.DocID
		node string
	}
	var sets []map[key]bool
	for _, pc := range pq.conjuncts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		set := map[key]bool{}
		seen := 0
		err := pc.ov.ix.Scan(pc.rng, func(e valueindex.Entry) bool {
			if seen++; seen%ctxCheckEvery == 0 && ctx.Err() != nil {
				return false
			}
			prefix, ok := prefixAtLevel(e.Node, pq.spineLen)
			if ok {
				set[key{e.Doc, string(prefix)}] = true
			}
			return true
		})
		if err == nil {
			err = ctx.Err()
		}
		if err != nil {
			return nil, err
		}
		sets = append(sets, set)
	}
	// Intersect.
	base := sets[0]
	for _, s := range sets[1:] {
		for k := range base {
			if !s[k] {
				delete(base, k)
			}
		}
	}
	var results []Result
	for k := range base {
		results = append(results, Result{Doc: k.doc, Node: nodeid.ID(k.node)})
	}
	sortResults(results)
	if opts.Limit > 0 && len(results) > opts.Limit {
		results = results[:opts.Limit]
	}
	if opts.NeedValues {
		if err := c.fillValues(ctx, results); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// docCandidates computes the candidate DocID set for the filtering access
// paths: intersected across conjuncts for ANDing, unioned for ORing (§4.3
// access method 2). The documents come back sorted.
func (c *Collection) docCandidates(plan *Plan, opts QueryOptions) ([]xml.DocID, error) {
	ctx := opts.context()
	pq := plan.pq
	docSet := func(pc planConjunct) (map[xml.DocID]bool, error) {
		set := map[xml.DocID]bool{}
		seen := 0
		err := pc.ov.ix.Scan(pc.rng, func(e valueindex.Entry) bool {
			if seen++; seen%ctxCheckEvery == 0 && ctx.Err() != nil {
				return false
			}
			set[e.Doc] = true
			return true
		})
		if err == nil {
			err = ctx.Err()
		}
		return set, err
	}
	var candidates map[xml.DocID]bool
	if len(pq.orParts) == 2 {
		l, err := docSet(pq.orParts[0])
		if err != nil {
			return nil, err
		}
		r, err := docSet(pq.orParts[1])
		if err != nil {
			return nil, err
		}
		for d := range r {
			l[d] = true
		}
		candidates = l
	} else {
		for _, pc := range pq.conjuncts {
			s, err := docSet(pc)
			if err != nil {
				return nil, err
			}
			if candidates == nil {
				candidates = s
				continue
			}
			for d := range candidates {
				if !s[d] {
					delete(candidates, d)
				}
			}
		}
	}
	plan.CandidateDocs = len(candidates)
	docs := make([]xml.DocID, 0, len(candidates))
	for d := range candidates {
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	return docs, nil
}

// prefixAtLevel returns the first n levels of a node ID.
func prefixAtLevel(id nodeid.ID, n int) (nodeid.ID, bool) {
	rels, err := nodeid.Split(id)
	if err != nil || len(rels) < n {
		return nil, false
	}
	length := 0
	for _, r := range rels[:n] {
		length += len(r)
	}
	return id[:length], true
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Doc != rs[j].Doc {
			return rs[i].Doc < rs[j].Doc
		}
		return nodeid.Compare(rs[i].Node, rs[j].Node) < 0
	})
}

// fillValues computes string values for exact node-list results.
func (c *Collection) fillValues(ctx context.Context, rs []Result) error {
	for i := range rs {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := c.NodeString(rs[i].Doc, rs[i].Node)
		if err != nil {
			return err
		}
		rs[i].Value = v
	}
	return nil
}

// largeDocs reports whether documents in this collection typically span
// multiple records — the §4.3 condition for preferring NodeID-level access.
func (c *Collection) largeDocs() bool {
	docs, err := c.Count()
	if err != nil || docs == 0 {
		return false
	}
	return int(c.xmlTbl.Count())/docs >= 4
}

// execNodeFilter implements NodeID-list filtering (§4.3): candidate result
// subtrees are derived from the index entries and the query is re-evaluated
// on each subtree alone, synthesizing ancestor context from the records'
// headers — the rest of the document is never touched.
func (c *Collection) execNodeFilter(q *xpath.Query, plan *Plan, opts QueryOptions) ([]Result, error) {
	ctx := opts.context()
	pq := plan.pq
	pc := pq.conjuncts[0]
	anchor := pc.level
	type key struct {
		doc  xml.DocID
		node string
	}
	seen := map[key]bool{}
	type cand struct {
		doc  xml.DocID
		node nodeid.ID
	}
	var cands []cand
	visited := 0
	err := pc.ov.ix.Scan(pc.rng, func(e valueindex.Entry) bool {
		if visited++; visited%ctxCheckEvery == 0 && ctx.Err() != nil {
			return false
		}
		prefix, ok := prefixAtLevel(e.Node, anchor)
		if !ok {
			return true
		}
		k := key{e.Doc, string(prefix)}
		if !seen[k] {
			seen[k] = true
			cands = append(cands, cand{doc: e.Doc, node: nodeid.Clone(prefix)})
		}
		return true
	})
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return nil, err
	}
	plan.CandidateDocs = len(seen)
	e, err := quickxscan.Compile(q, c.db.cat, nil, quickxscan.Options{NeedValues: opts.NeedValues})
	if err != nil {
		return nil, err
	}
	var results []Result
	for _, cd := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		matches, err := c.evalSubtree(cd.doc, cd.node, e)
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			results = append(results, Result{Doc: cd.doc, Node: m.ID, Value: m.Value})
		}
	}
	sortResults(results)
	return results, nil
}
