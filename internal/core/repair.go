package core

// Self-healing repair. Everything except the catalog and the heap data
// itself is a derivation: the DocID index, NodeID index, and value indexes
// can all be rebuilt from a heap scan, base rows can be re-derived from the
// NodeID index, and checksum sidecars can be re-derived from the data they
// cover. Repair exploits that: it attributes each damaged page to the
// structure that owns it, rebuilds rebuildable structures in place (the
// tree/table objects keep their durable identity — meta page, first page —
// so concurrent readers never see a stale handle), and salvages documents
// whose heap records were lost from whatever the NodeID index still reaches,
// flagging them lossy rather than dropping them.
//
// Repair is idempotent and checkpointed between collections: a crash
// mid-repair loses nothing but progress, because the work list (the damaged
// page set and the quarantine registry) is re-derived from storage on the
// next pass, not persisted.
//
// Not repairable, by design: catalog pages (the root of trust — repair
// refuses and asks for a backup restore) and the NodeID index of a
// *versioned* collection (version numbers exist only in the index keys, not
// in the heap rows, so a heap scan cannot reconstruct the version mapping).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"rx/internal/btree"
	"rx/internal/heap"
	"rx/internal/pack"
	"rx/internal/pagestore"
	"rx/internal/tokens"
	"rx/internal/valueindex"
	"rx/internal/vsax"
	"rx/internal/xml"
	"rx/internal/xmlparse"
)

// RepairedDoc records one document repair restored.
type RepairedDoc struct {
	Col string
	Doc xml.DocID
	// Lossy is set when salvage could not recover the whole document:
	// LostSubtrees subtrees (or the entire content, when the root record was
	// lost) were replaced by nothing.
	Lossy        bool
	LostSubtrees int
}

// RepairReport summarizes a Repair run.
type RepairReport struct {
	Passes            int
	SidecarsRederived bool
	PagesReformatted  []pagestore.PageID
	DocsRepaired      []RepairedDoc
	IndexesRebuilt    []string
	// Remaining lists documents still quarantined after repair (damage repair
	// cannot undo, e.g. a versioned collection's NodeID index).
	Remaining []QuarantineEntry
	// Clean is set when the final verification pass found no damage.
	Clean bool
}

// maxRepairPasses bounds the heal-verify loop: each pass either makes
// progress (reformats pages, rebuilds structures, restores documents) or
// the loop stops.
const maxRepairPasses = 3

// Repair heals the database in place: re-derives checksum sidecars when the
// damage pattern implicates them, rebuilds damaged secondary structures from
// the heap, reformats and relinks damaged heap pages, and restores affected
// documents from salvage. throttle (optional) is called once per page read
// during verification scans, bounding repair's read rate like the
// scrubber's. Safe to run concurrently with readers; writers are held out
// of a collection only while its structures are being rebuilt.
func (db *DB) Repair(throttle func()) (*RepairReport, error) {
	rep := &RepairReport{}
	for pass := 1; pass <= maxRepairPasses; pass++ {
		rep.Passes = pass
		_, errs, err := db.ScanPages(throttle)
		if err != nil {
			return rep, err
		}
		errs, err = db.maybeRederiveSidecars(rep, errs, throttle)
		if err != nil {
			return rep, err
		}
		if len(errs) == 0 && len(db.Quarantined()) == 0 {
			rep.Clean = true
			break
		}
		progress, err := db.healPass(rep, errs, throttle)
		// Checkpoint regardless of error: partial repairs are durable and a
		// re-run resumes from the re-derived damage set.
		if cerr := db.Checkpoint(); err == nil {
			err = cerr
		}
		if err != nil {
			return rep, err
		}
		if !progress {
			break
		}
	}
	rep.Remaining = db.Quarantined()
	return rep, nil
}

// maybeRederiveSidecars applies the lost-sidecar heuristic: a dense cluster
// of checksum failures within a single sidecar group (8+ failures covering
// at least half the group's pages) implicates the sidecar page itself, not
// dozens of independently damaged data pages. Re-deriving the sidecars from
// the data blesses the current images; the structural scrub that follows
// re-detects any page whose *contents* are actually damaged.
func (db *DB) maybeRederiveSidecars(rep *RepairReport, errs []PageError, throttle func()) ([]PageError, error) {
	cs, ok := db.store.(*pagestore.ChecksumStore)
	if !ok || len(errs) == 0 {
		return errs, nil
	}
	failPer := map[pagestore.PageID]int{}
	for _, pe := range errs {
		failPer[pagestore.SidecarPage(pe.Page)]++
	}
	allocPer := map[pagestore.PageID]int{}
	for p := pagestore.PageID(0); p < db.store.NumPages(); p++ {
		allocPer[pagestore.SidecarPage(p)]++
	}
	suspect := false
	for g, n := range failPer {
		if n >= 8 && 2*n >= allocPer[g] {
			suspect = true
			break
		}
	}
	if !suspect {
		return errs, nil
	}
	if err := cs.Rederive(); err != nil {
		return errs, err
	}
	rep.SidecarsRederived = true
	_, errs, err := db.ScanPages(throttle)
	return errs, err
}

// healPass runs one heal iteration over the given damage set. Returns
// whether any repair action was taken.
func (db *DB) healPass(rep *RepairReport, errs []PageError, throttle func()) (bool, error) {
	bad := map[pagestore.PageID]bool{}
	for _, pe := range errs {
		bad[pe.Page] = true
	}
	owned := map[pagestore.PageID]bool{}
	for _, p := range db.cat.Pages() {
		owned[p] = true
		if bad[p] {
			return false, fmt.Errorf("core: repair: catalog page %d is damaged; the catalog is not auto-repairable, restore from backup", p)
		}
	}
	progress := false
	openFailed := false
	for _, name := range db.Collections() {
		c, err := db.Collection(name)
		if err != nil {
			// Unopenable collection (e.g. damaged index meta page): its pages
			// could not be attributed, so the orphan sweep below must not run —
			// it would reformat pages that are really owned.
			openFailed = true
			continue
		}
		p, err := db.healCollection(c, bad, owned, rep, throttle)
		progress = progress || p
		if err != nil {
			return progress, err
		}
	}
	if openFailed {
		return progress, nil
	}
	// Damaged pages no structure owns (abandoned by an earlier rebuild, or
	// free space): reformat to zeros so they verify again. The written bit in
	// the sidecar is refreshed on write-back.
	for _, pe := range errs {
		if owned[pe.Page] {
			continue
		}
		f, err := db.pool.FetchZeroed(pe.Page)
		if err != nil {
			return progress, err
		}
		db.pool.Unpin(f, false)
		rep.PagesReformatted = append(rep.PagesReformatted, pe.Page)
		progress = true
	}
	return progress, nil
}

// healCollection repairs one collection against the damage set, in order:
// damage assessment (read-only, tolerant) → heap reformat+relink → index
// rebuilds (writers held out) → document salvage+restore (writers admitted;
// restore locks per document). Adds every page the collection owns to owned.
func (db *DB) healCollection(c *Collection, bad, owned map[pagestore.PageID]bool, rep *RepairReport, throttle func()) (bool, error) {
	name := c.meta.Name
	sets := c.structurePages()
	inter := func(m map[pagestore.PageID]bool) []pagestore.PageID {
		var out []pagestore.PageID
		for p := range m {
			owned[p] = true
			if bad[p] {
				out = append(out, p)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	damagedBase := inter(sets.base)
	damagedXML := inter(sets.xmlT)
	damagedDocIx := inter(sets.docIx)
	damagedNodeIx := inter(sets.nodeIx)
	damagedVal := map[string][]pagestore.PageID{}
	for _, ov := range c.indexSnapshot() {
		if d := inter(sets.valIx[ov.meta.Name]); len(d) > 0 {
			damagedVal[ov.meta.Name] = d
		}
	}

	if c.meta.Versioned && len(damagedNodeIx) > 0 {
		// The version mapping lives only in the index keys; a heap scan sees
		// version-less rows. Quarantine the whole collection rather than
		// fabricate history.
		for _, doc := range c.scrubDocList() {
			db.Quarantine(name, doc, "versioned NodeID index damaged: not rebuildable, restore from backup", damagedNodeIx[0])
		}
		return false, nil
	}

	// Damage assessment before any mutation: which documents reference a
	// damaged page (through the index state as it still is), plus whatever
	// the registry already holds.
	affected := map[xml.DocID]bool{}
	for _, qe := range db.Quarantined() {
		if qe.Col == name {
			affected[qe.Doc] = true
		}
	}
	docs := c.scrubDocList()
	for _, doc := range docs {
		rids, serr := c.scanDocRIDsTolerant(doc)
		if serr != nil {
			affected[doc] = true
		}
		for _, rid := range rids {
			if bad[rid.Page] {
				affected[doc] = true
				break
			}
		}
	}

	progress := false
	reformat := func(pages []pagestore.PageID) error {
		for _, p := range pages {
			f, err := db.pool.FetchZeroed(p)
			if err != nil {
				return err
			}
			err = db.pool.Modify(f, func(d []byte) error {
				heap.InitPageImage(d)
				return nil
			})
			db.pool.Unpin(f, false)
			if err != nil {
				return err
			}
			rep.PagesReformatted = append(rep.PagesReformatted, p)
		}
		return nil
	}
	relink := func(t *heap.Table, members map[pagestore.PageID]bool) error {
		first := t.FirstPage()
		pages := []pagestore.PageID{first}
		var rest []pagestore.PageID
		for p := range members {
			if p != first {
				rest = append(rest, p)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
		return t.Relink(append(pages, rest...))
	}

	c.writeMu.Lock()
	healErr := func() error {
		// Heap surgery: reformat the unreadable pages, then rewrite the page
		// chain over the full membership (reformatted pages become empty
		// members; orphaned tails severed by a damaged link are re-attached
		// because their pages are referenced by index RIDs).
		if len(damagedXML) > 0 {
			if err := reformat(damagedXML); err != nil {
				return err
			}
			if err := relink(c.xmlTbl, sets.xmlT); err != nil {
				return err
			}
			progress = true
		}
		if len(damagedBase) > 0 {
			if err := reformat(damagedBase); err != nil {
				return err
			}
			if err := relink(c.base, sets.base); err != nil {
				return err
			}
			progress = true
		}

		// Index rebuilds. The NodeID index first: the others derive from it.
		if len(damagedNodeIx) > 0 {
			if err := c.rebuildNodeIndex(throttle); err != nil {
				return err
			}
			if err := zeroPages(db, damagedNodeIx, rep); err != nil {
				return err
			}
			rep.IndexesRebuilt = append(rep.IndexesRebuilt, name+"/nodeid-index")
			atomic.AddUint64(&db.stats.indexesRebuilt, 1)
			progress = true
		}
		if len(damagedDocIx) > 0 || len(damagedBase) > 0 {
			if err := c.rebuildBaseAndDocIndex(); err != nil {
				return err
			}
			if err := zeroPages(db, damagedDocIx, rep); err != nil {
				return err
			}
			rep.IndexesRebuilt = append(rep.IndexesRebuilt, name+"/docid-index")
			atomic.AddUint64(&db.stats.indexesRebuilt, 1)
			progress = true
		}
		for _, ov := range c.indexSnapshot() {
			dpages, ok := damagedVal[ov.meta.Name]
			if !ok {
				continue
			}
			if err := c.rebuildValueIndex(ov, throttle); err != nil {
				return err
			}
			if err := zeroPages(db, dpages, rep); err != nil {
				return err
			}
			rep.IndexesRebuilt = append(rep.IndexesRebuilt, name+"/value-index("+ov.meta.Name+")")
			atomic.AddUint64(&db.stats.indexesRebuilt, 1)
			progress = true
		}
		return nil
	}()
	c.writeMu.Unlock()
	if healErr != nil {
		return progress, healErr
	}

	// Document salvage and restore. At this point the structures are
	// consistent; what is lost is lost. Each affected document is re-read
	// through the (rebuilt) NodeID index — proxies to records that lived on
	// reformatted pages come back as misses and their subtrees are skipped —
	// and rewritten wholesale. A document whose pages turned out fine (e.g.
	// quarantined before a sidecar re-derivation) is restored losslessly.
	order := make([]xml.DocID, 0, len(affected))
	for doc := range affected {
		order = append(order, doc)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, doc := range order {
		if throttle != nil {
			throttle()
		}
		stream, lost, err := c.salvageStream(doc)
		if err != nil {
			// Root record or a decodable prefix is gone: keep the document's
			// identity alive with a placeholder so it is never silently
			// dropped.
			stream, err = placeholderStream(c)
			if err != nil {
				return progress, err
			}
			lost = -1
		}
		if err := c.restoreDoc(doc, stream); err != nil {
			// Leave it quarantined; the registry keeps the original reason.
			continue
		}
		db.ClearQuarantine(name, doc)
		atomic.AddUint64(&db.stats.docsRepaired, 1)
		rd := RepairedDoc{Col: name, Doc: doc}
		if lost != 0 {
			n := lost
			if n < 0 {
				n = 1
			}
			db.markLossy(name, doc, n)
			rd.Lossy, rd.LostSubtrees = true, n
		}
		rep.DocsRepaired = append(rep.DocsRepaired, rd)
		progress = true
	}
	return progress, nil
}

// zeroPages reformats abandoned index pages to zeros so they verify again.
func zeroPages(db *DB, pages []pagestore.PageID, rep *RepairReport) error {
	for _, p := range pages {
		f, err := db.pool.FetchZeroed(p)
		if err != nil {
			return err
		}
		db.pool.Unpin(f, false)
		rep.PagesReformatted = append(rep.PagesReformatted, p)
	}
	return nil
}

// rebuildNodeIndex rebuilds an unversioned NodeID index in place from a
// full XML-table scan: every row re-announces its intervals. Caller holds
// writeMu.
func (c *Collection) rebuildNodeIndex(throttle func()) error {
	if err := c.nodeIx.Tree().Reset(); err != nil {
		return err
	}
	return c.xmlTbl.Scan(func(rid heap.RID, row []byte) error {
		if throttle != nil {
			throttle()
		}
		doc, _, payload, err := splitXMLRow(row)
		if err != nil {
			return nil // a garbled row indexes nothing
		}
		rec, err := pack.Decode(payload)
		if err != nil {
			return nil
		}
		intervals, _, err := rec.Intervals()
		if err != nil {
			return nil
		}
		for _, upper := range intervals {
			if err := c.nodeIx.Put(doc, upper, rid); err != nil {
				return err
			}
		}
		return nil
	})
}

// rebuildBaseAndDocIndex re-derives base rows and the DocID index from the
// NodeID index: the document set is whatever the NodeID index knows, base
// rows that survived keep their version, missing ones are re-inserted (a
// versioned document's current version is recovered from its newest index
// key). Caller holds writeMu.
func (c *Collection) rebuildBaseAndDocIndex() error {
	type baseInfo struct {
		rid heap.RID
		ver uint64
	}
	have := map[xml.DocID]baseInfo{}
	_ = c.base.Scan(func(rid heap.RID, row []byte) error {
		if len(row) < 8 {
			return nil
		}
		doc := xml.DocID(binary.BigEndian.Uint64(row))
		ver := uint64(1)
		if c.meta.Versioned && len(row) >= 16 {
			ver = binary.BigEndian.Uint64(row[8:16])
		}
		have[doc] = baseInfo{rid: rid, ver: ver}
		return nil
	})
	if err := c.docIx.Reset(); err != nil {
		return err
	}
	for _, doc := range c.nodeIxDocs() {
		bi, ok := have[doc]
		if !ok {
			ver := uint64(1)
			if c.meta.Versioned {
				ver = c.maxVersionFromIndex(doc)
			}
			rid, err := c.base.Insert(c.baseRow(doc, ver))
			if err != nil {
				return err
			}
			bi = baseInfo{rid: rid, ver: ver}
		}
		var d [8]byte
		binary.BigEndian.PutUint64(d[:], uint64(doc))
		if err := c.docIx.Put(d[:], bi.rid.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// rebuildValueIndex rebuilds one value index in place by re-evaluating its
// path over every document. Documents that cannot be walked (still damaged;
// they are restored later, which re-adds their keys) contribute nothing.
// Caller holds writeMu.
func (c *Collection) rebuildValueIndex(ov *openValueIndex, throttle func()) error {
	if err := ov.ix.Tree().Reset(); err != nil {
		return err
	}
	for _, doc := range c.nodeIxDocs() {
		if throttle != nil {
			throttle()
		}
		matches, err := c.evalStored(doc, ov.keygen)
		if err != nil {
			continue
		}
		for _, m := range matches {
			rid, err := c.lookupCur(doc, m.ID)
			if err != nil {
				continue
			}
			if err := ov.ix.Put(m.Value, doc, m.ID, rid); err != nil &&
				!errors.Is(err, valueindex.ErrNotIndexable) {
				return err
			}
		}
	}
	return nil
}

// salvageStream re-encodes a stored document as a token stream, skipping
// subtrees whose records are unreachable. lost counts the skipped subtrees;
// 0 means a complete, lossless capture.
func (c *Collection) salvageStream(doc xml.DocID) ([]byte, int, error) {
	root, err := c.rootRecord(doc)
	if err != nil {
		return nil, 0, err
	}
	w := tokens.NewWriter(4096)
	sink := &vsax.TokenSink{W: w}
	if err := sink.StartDocument(); err != nil {
		return nil, 0, err
	}
	lost, err := pack.WalkPartial(root, c.fetcher(doc), handlerVisitor{sink})
	if err != nil {
		return nil, lost, err
	}
	if err := sink.EndDocument(); err != nil {
		return nil, lost, err
	}
	return append([]byte(nil), w.Bytes()...), lost, nil
}

// placeholderStream builds the stand-in document stored for a document
// whose root record was lost.
func placeholderStream(c *Collection) ([]byte, error) {
	return xmlparse.Parse([]byte("<lost-document/>"), c.db.cat, xmlparse.Options{})
}

// nodeIxDocs enumerates documents straight from the NodeID index keys
// (first 8 bytes of both plain and versioned keys are the DocID), sorted.
func (c *Collection) nodeIxDocs() []xml.DocID {
	set := map[xml.DocID]bool{}
	_ = c.nodeIx.Tree().Scan(nil, nil, func(e btree.Entry) bool {
		if len(e.Key) >= 8 {
			set[xml.DocID(binary.BigEndian.Uint64(e.Key))] = true
		}
		return true
	})
	out := make([]xml.DocID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// maxVersionFromIndex recovers a versioned document's newest version from
// its first (highest-version; versions sort descending) NodeID index key.
func (c *Collection) maxVersionFromIndex(doc xml.DocID) uint64 {
	var from [8]byte
	binary.BigEndian.PutUint64(from[:], uint64(doc))
	e, err := c.nodeIx.Tree().Ceiling(from[:])
	if err == nil && len(e.Key) >= 16 &&
		binary.BigEndian.Uint64(e.Key[:8]) == uint64(doc) {
		return ^binary.BigEndian.Uint64(e.Key[8:16])
	}
	return 1
}
