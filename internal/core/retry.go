package core

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"rx/internal/lock"
)

// Graceful degradation under contention: deadlocks are resolved by bounded
// lock waits (lock.ErrTimeout picks a victim), and RunTxn turns victimhood
// into a retry instead of a caller-visible failure.

// TxnOption configures RunTxn.
type TxnOption func(*txnConfig)

type txnConfig struct {
	deadlockRetries int
	backoffBase     time.Duration
}

// WithDeadlockRetry re-runs a transaction aborted as a deadlock victim
// (lock.ErrTimeout) up to max more times, backing off with jitter between
// attempts so the competing transactions interleave differently.
func WithDeadlockRetry(max int) TxnOption {
	return func(c *txnConfig) { c.deadlockRetries = max }
}

// withRetryBackoff tunes the first retry backoff (doubled per attempt,
// jittered ±50%). Exposed for tests.
func withRetryBackoff(d time.Duration) TxnOption {
	return func(c *txnConfig) { c.backoffBase = d }
}

// RunTxn runs fn inside a transaction and commits it. If fn fails, the
// transaction is rolled back and the error returned. With WithDeadlockRetry,
// a lock.ErrTimeout abort rolls back, backs off, and re-runs fn in a fresh
// transaction. fn must not call Commit or Rollback itself, and must be safe
// to re-run (all engine mutations through the Txn are undone by rollback;
// side effects outside the engine are fn's problem).
func (db *DB) RunTxn(fn func(*Txn) error, opts ...TxnOption) error {
	cfg := txnConfig{backoffBase: 2 * time.Millisecond}
	for _, o := range opts {
		o(&cfg)
	}
	for attempt := 0; ; attempt++ {
		t := db.Begin()
		err := fn(t)
		if err == nil {
			if err = t.Commit(); err == nil {
				return nil
			}
		} else if rbErr := t.Rollback(); rbErr != nil {
			return errors.Join(err, rbErr)
		}
		if !errors.Is(err, lock.ErrTimeout) || attempt >= cfg.deadlockRetries {
			return err
		}
		atomic.AddUint64(&db.stats.deadlockReruns, 1)
		// Jittered exponential backoff: desynchronize the former deadlock
		// partners before the rematch.
		backoff := cfg.backoffBase << attempt
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff)+1))
		time.Sleep(sleep)
	}
}
