package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rx/internal/lock"
	"rx/internal/xml"
)

func TestRunTxnCommits(t *testing.T) {
	db, _, _ := newLoggedDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	var id xml.DocID
	err := db.RunTxn(func(tx *Txn) error {
		var err error
		id, err = tx.Insert(col, []byte(`<a>1</a>`))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !col.Has(id) {
		t.Error("RunTxn commit lost")
	}
}

func TestRunTxnRollsBackOnError(t *testing.T) {
	db, _, _ := newLoggedDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	boom := errors.New("boom")
	var id xml.DocID
	err := db.RunTxn(func(tx *Txn) error {
		id, _ = tx.Insert(col, []byte(`<a>1</a>`))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if col.Has(id) {
		t.Error("failed RunTxn left its insert behind")
	}
}

func TestRunTxnDeadlockRetryBothCommit(t *testing.T) {
	// Two writers update two documents in opposite order: without retries
	// one would fail as a deadlock victim; with WithDeadlockRetry both must
	// eventually commit.
	db, _, _ := newLoggedDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	idA, _ := col.Insert([]byte(`<a>0</a>`))
	idB, _ := col.Insert([]byte(`<a>0</a>`))
	nodeA := mustTextNode2(t, col, idA)
	nodeB := mustTextNode2(t, col, idB)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	run := func(i int, first, second xml.DocID, firstNode, secondNode []byte) {
		defer wg.Done()
		errs[i] = db.RunTxn(func(tx *Txn) error {
			if err := tx.UpdateText(col, first, firstNode, []byte(fmt.Sprint(i))); err != nil {
				return err
			}
			time.Sleep(30 * time.Millisecond) // let the other writer grab its first lock
			return tx.UpdateText(col, second, secondNode, []byte(fmt.Sprint(i)))
		}, WithDeadlockRetry(5), withRetryBackoff(5*time.Millisecond))
	}
	wg.Add(2)
	go run(0, idA, idB, nodeA, nodeB)
	go run(1, idB, idA, nodeB, nodeA)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d failed despite deadlock retry: %v", i, err)
		}
	}
	// Both documents carry one writer's value (the last committer's).
	var buf bytes.Buffer
	if err := col.Serialize(idA, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunTxnNoRetryWithoutOption(t *testing.T) {
	db, _, _ := newLoggedDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	id, _ := col.Insert([]byte(`<a>0</a>`))
	node := mustTextNode2(t, col, id)

	// A holds the X lock; RunTxn without the retry option fails fast.
	blocker := db.Begin()
	if err := blocker.UpdateText(col, id, node, []byte("x")); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	err := db.RunTxn(func(tx *Txn) error {
		attempts++
		return tx.UpdateText(col, id, node, []byte("y"))
	})
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("err = %v, want lock.ErrTimeout", err)
	}
	if attempts != 1 {
		t.Errorf("fn ran %d times without WithDeadlockRetry", attempts)
	}
	blocker.Commit()
}

func mustTextNode2(t *testing.T, col *Collection, id xml.DocID) []byte {
	t.Helper()
	res, _, err := col.Query("/a/text()")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Doc == id {
			return r.Node
		}
	}
	t.Fatalf("no text node for doc %d", id)
	return nil
}
