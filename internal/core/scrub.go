package core

// The online integrity scrubber: a background-safe pass that reads every
// page of the store (catching checksum failures and I/O errors), then
// cross-checks the logical structures — does every NodeID index entry for a
// document resolve to a decodable heap record? — and quarantines exactly
// the documents whose data is damaged. Structural damage (an index whose own
// pages fail) is reported per structure so repair knows what to rebuild.
//
// A pass holds no long-lived locks: it reads through the same store/pool
// paths queries use, so it runs concurrently with readers and writers. The
// caller-supplied throttle hook is invoked once per page read and once per
// document cross-checked, which is where a rate limiter plugs in.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"rx/internal/btree"
	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/pagestore"
	"rx/internal/xml"
)

// PageError records one page that failed verification during a scan.
type PageError struct {
	Page pagestore.PageID
	Err  error
}

// StructureRef names an on-disk structure the scrubber found damaged.
type StructureRef struct {
	Col  string // collection name ("" for the catalog)
	Kind string // "catalog", "base", "xml", "docid-index", "nodeid-index", "value-index", "unopenable"
	Name string // value-index name, otherwise ""
}

func (s StructureRef) String() string {
	switch {
	case s.Kind == "catalog":
		return "catalog"
	case s.Name != "":
		return fmt.Sprintf("%s/%s(%s)", s.Col, s.Kind, s.Name)
	default:
		return fmt.Sprintf("%s/%s", s.Col, s.Kind)
	}
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	PagesScanned      int
	PageErrors        []PageError
	NewQuarantined    []QuarantineEntry
	CorruptStructures []StructureRef
	CatalogDamaged    bool
}

// Clean reports whether the pass found nothing wrong.
func (r *ScrubReport) Clean() bool {
	return len(r.PageErrors) == 0 && len(r.NewQuarantined) == 0 &&
		len(r.CorruptStructures) == 0
}

// ScanPages flushes dirty pages and reads back every page of the store,
// collecting every failure (VerifyPages stops at the first — this is the
// scrubber's variant, which needs the full damage picture). throttle, if
// non-nil, is called before each page read; the scrubber's rate limiter
// sleeps there.
func (db *DB) ScanPages(throttle func()) (scanned int, errs []PageError, err error) {
	if err := db.pool.FlushAll(); err != nil {
		return 0, nil, err
	}
	buf := make([]byte, pagestore.PageSize)
	n := db.store.NumPages()
	for id := pagestore.PageID(0); id < n; id++ {
		if throttle != nil {
			throttle()
		}
		if rerr := db.store.ReadPage(id, buf); rerr != nil {
			errs = append(errs, PageError{Page: id, Err: rerr})
		}
		scanned++
	}
	return scanned, errs, nil
}

// ScrubPass runs one full integrity pass: physical page scan, then a
// structural cross-check of every collection. Damaged documents are
// quarantined; damaged structures are reported for repair. The pass itself
// never mutates data.
func (db *DB) ScrubPass(throttle func()) (*ScrubReport, error) {
	rep := &ScrubReport{}
	scanned, errs, err := db.ScanPages(throttle)
	if err != nil {
		return nil, err
	}
	rep.PagesScanned = scanned
	rep.PageErrors = errs
	atomic.AddUint64(&db.stats.pagesVerified, uint64(scanned))
	atomic.AddUint64(&db.stats.corruptions, uint64(len(errs)))

	bad := map[pagestore.PageID]bool{}
	for _, pe := range errs {
		bad[pe.Page] = true
	}
	for _, p := range db.cat.Pages() {
		if bad[p] {
			rep.CatalogDamaged = true
			rep.CorruptStructures = append(rep.CorruptStructures, StructureRef{Kind: "catalog"})
			break
		}
	}
	for _, name := range db.Collections() {
		c, err := db.Collection(name)
		if err != nil {
			rep.CorruptStructures = append(rep.CorruptStructures,
				StructureRef{Col: name, Kind: "unopenable"})
			continue
		}
		db.scrubCollection(c, bad, rep, throttle)
	}
	atomic.AddUint64(&db.stats.scrubPasses, 1)
	return rep, nil
}

// scrubCollection attributes page damage to the collection's structures and
// cross-checks every document's index entries against its heap records.
func (db *DB) scrubCollection(c *Collection, bad map[pagestore.PageID]bool, rep *ScrubReport, throttle func()) {
	name := c.meta.Name
	sets := c.structurePages()
	addRef := func(kind, ixName string, pages map[pagestore.PageID]bool) bool {
		for p := range pages {
			if bad[p] {
				rep.CorruptStructures = append(rep.CorruptStructures,
					StructureRef{Col: name, Kind: kind, Name: ixName})
				return true
			}
		}
		return false
	}
	addRef("base", "", sets.base)
	addRef("xml", "", sets.xmlT)
	addRef("docid-index", "", sets.docIx)
	addRef("nodeid-index", "", sets.nodeIx)
	for _, ov := range c.indexSnapshot() {
		if !addRef("value-index", ov.meta.Name, sets.valIx[ov.meta.Name]) {
			// Pages clean — still walk the index so logical damage (a
			// scribbled-but-checksummed page) is caught.
			if err := ov.ix.Tree().Scan(nil, nil, func(e btree.Entry) bool { return true }); err != nil {
				rep.CorruptStructures = append(rep.CorruptStructures,
					StructureRef{Col: name, Kind: "value-index", Name: ov.meta.Name})
			}
		}
	}

	for _, doc := range c.scrubDocList() {
		if throttle != nil {
			throttle()
		}
		if _, ok := db.quarantined(name, doc); ok {
			continue
		}
		reason, page := c.scrubDoc(doc, bad)
		if reason == "" {
			continue
		}
		if db.Quarantine(name, doc, reason, page) {
			e, _ := db.quarantined(name, doc)
			rep.NewQuarantined = append(rep.NewQuarantined, e)
		}
	}
}

// scrubDoc cross-checks one document: every distinct record RID its NodeID
// index entries reference must fetch and decode. Returns a non-empty reason
// (and the damaged page, when physical) if the document should be
// quarantined.
func (c *Collection) scrubDoc(doc xml.DocID, bad map[pagestore.PageID]bool) (string, pagestore.PageID) {
	rids, serr := c.scanDocRIDsTolerant(doc)
	for _, rid := range rids {
		if bad[rid.Page] {
			return fmt.Sprintf("record page %d failed verification", rid.Page), rid.Page
		}
		if _, ferr := c.fetchRecord(rid); ferr != nil {
			var pe pagestore.ErrPageChecksum
			if errors.As(ferr, &pe) {
				return fmt.Sprintf("record page %d failed checksum", pe.PageID), pe.PageID
			}
			return fmt.Sprintf("record %s unreadable: %v", rid, ferr), rid.Page
		}
	}
	if serr != nil {
		var pe pagestore.ErrPageChecksum
		if errors.As(serr, &pe) {
			return fmt.Sprintf("NodeID index entries unreadable (page %d)", pe.PageID), pe.PageID
		}
		return fmt.Sprintf("NodeID index entries unreadable: %v", serr), pagestore.InvalidPage
	}
	if len(rids) == 0 {
		return "document has no readable records", pagestore.InvalidPage
	}
	return "", pagestore.InvalidPage
}

// colPageSets is the page-ownership map of one collection's structures,
// computed tolerantly: unreadable pages are included (they are exactly the
// interesting ones), broken walks contribute what they reached.
type colPageSets struct {
	base   map[pagestore.PageID]bool
	xmlT   map[pagestore.PageID]bool
	docIx  map[pagestore.PageID]bool
	nodeIx map[pagestore.PageID]bool
	valIx  map[string]map[pagestore.PageID]bool // by index name
}

// structurePages computes which pages each of the collection's structures
// owns. Heap membership is the chain walk union every page referenced by
// the structure's index values (RIDs survive in the indexes even when the
// chain is severed) union forwarding-stub targets.
func (c *Collection) structurePages() colPageSets {
	limit := c.db.store.NumPages()
	mk := func() map[pagestore.PageID]bool { return map[pagestore.PageID]bool{} }
	add := func(m map[pagestore.PageID]bool, pages []pagestore.PageID) {
		for _, p := range pages {
			if p != pagestore.InvalidPage && p < limit {
				m[p] = true
			}
		}
	}
	s := colPageSets{base: mk(), xmlT: mk(), docIx: mk(), nodeIx: mk(),
		valIx: map[string]map[pagestore.PageID]bool{}}

	pgs, _ := c.docIx.Pages()
	add(s.docIx, pgs)
	pgs, _ = c.nodeIx.Tree().Pages()
	add(s.nodeIx, pgs)
	for _, ov := range c.indexSnapshot() {
		m := mk()
		pgs, _ = ov.ix.Tree().Pages()
		add(m, pgs)
		s.valIx[ov.meta.Name] = m
	}

	// Base heap: chain walk plus DocID-index value RIDs.
	pgs, _ = c.base.ChainPages()
	add(s.base, pgs)
	_ = c.docIx.Scan(nil, nil, func(e btree.Entry) bool {
		add(s.base, []pagestore.PageID{heap.RIDFromBytes(e.Value).Page})
		return true
	})

	// XML heap: chain walk plus NodeID-index value RIDs plus stub targets.
	pgs, _ = c.xmlTbl.ChainPages()
	add(s.xmlT, pgs)
	_ = c.nodeIx.Tree().Scan(nil, nil, func(e btree.Entry) bool {
		add(s.xmlT, []pagestore.PageID{heap.RIDFromBytes(e.Value).Page})
		return true
	})
	if targets, err := c.xmlTbl.ForwardTargets(); err == nil || len(targets) > 0 {
		for _, rid := range targets {
			add(s.xmlT, []pagestore.PageID{rid.Page})
		}
	}
	return s
}

// scrubDocList enumerates the collection's documents from both the DocID
// index and the NodeID index (tolerantly — either may be damaged), sorted.
func (c *Collection) scrubDocList() []xml.DocID {
	set := map[xml.DocID]bool{}
	_ = c.docIx.Scan(nil, nil, func(e btree.Entry) bool {
		if len(e.Key) == 8 {
			set[xml.DocID(binary.BigEndian.Uint64(e.Key))] = true
		}
		return true
	})
	_ = c.nodeIx.Tree().Scan(nil, nil, func(e btree.Entry) bool {
		if len(e.Key) >= 8 {
			set[xml.DocID(binary.BigEndian.Uint64(e.Key))] = true
		}
		return true
	})
	out := make([]xml.DocID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scanDocRIDsTolerant returns the distinct record RIDs the NodeID index
// references for a document, in first-appearance order. For versioned
// collections only the current version's entries are checked. An index read
// error ends the scan early; the partial list is still returned.
func (c *Collection) scanDocRIDsTolerant(doc xml.DocID) ([]heap.RID, error) {
	var rids []heap.RID
	seen := map[heap.RID]bool{}
	fn := func(upper nodeid.ID, rid heap.RID) bool {
		if !seen[rid] {
			seen[rid] = true
			rids = append(rids, rid)
		}
		return true
	}
	var err error
	if c.meta.Versioned {
		var ver uint64
		if ver, err = c.currentVersion(doc); err == nil {
			err = c.nodeIx.ScanVersion(doc, ver, fn)
		}
	} else {
		err = c.nodeIx.ScanDoc(doc, fn)
	}
	return rids, err
}
