package core

// Scrub → quarantine → repair end-to-end tests. Each corruption class is
// injected into the physical store underneath a checksummed stack, then the
// subsystem must walk the whole arc: the scrubber detects and quarantines
// exactly the damaged documents, degraded queries keep serving the healthy
// ones, repair restores the collection to a clean VerifyPages +
// CheckConsistency, and anything lost is flagged lossy — never silently
// dropped.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"rx/internal/fault"
	"rx/internal/pagestore"
	"rx/internal/wal"
	"rx/internal/xml"
)

// scrubDocXML builds a multi-page document whose serialization round-trips
// byte-identically (elements and text only).
func scrubDocXML(i int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<doc><k>k%d</k>", i)
	pad := strings.Repeat(fmt.Sprintf("x%d", i), 40)
	for j := 0; j < 120; j++ {
		fmt.Fprintf(&b, "<item>%03d-%s</item>", j, pad)
	}
	b.WriteString("</doc>")
	return b.String()
}

// scrubTestDB builds a checksummed in-memory database with ndocs multi-page
// documents and one value index, flushed so the on-disk image is current.
func scrubTestDB(t testing.TB, ndocs int) (*DB, *Collection, *pagestore.MemStore, []xml.DocID, []string) {
	t.Helper()
	mem := pagestore.NewMemStore()
	db, err := Open(pagestore.NewChecksumStore(mem), Options{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	col, err := db.CreateCollection("c", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := col.CreateValueIndex("kix", "/doc/k", xml.TString); err != nil {
		t.Fatal(err)
	}
	var ids []xml.DocID
	var contents []string
	for i := 0; i < ndocs; i++ {
		src := scrubDocXML(i)
		id, err := col.Insert([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		contents = append(contents, src)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	return db, col, mem, ids, contents
}

// corruptPhysical damages the physical image of a logical page behind the
// checksum layer's back, the way a failing disk would.
func corruptPhysical(t *testing.T, mem *pagestore.MemStore, logical pagestore.PageID, mode string) {
	t.Helper()
	phys := pagestore.PhysicalPage(logical)
	buf := make([]byte, pagestore.PageSize)
	if err := mem.ReadPage(phys, buf); err != nil {
		t.Fatal(err)
	}
	switch mode {
	case "bitflip":
		buf[137] ^= 0x10
	case "torn":
		for i := pagestore.PageSize / 2; i < pagestore.PageSize; i++ {
			buf[i] = byte(i*7 + 3)
		}
	case "zero":
		for i := range buf {
			buf[i] = 0
		}
	default:
		t.Fatalf("unknown corruption mode %q", mode)
	}
	if err := mem.WritePage(phys, buf); err != nil {
		t.Fatal(err)
	}
}

// exclusiveRecordPage finds a heap page holding records of victim and of no
// other document (so quarantine attribution is exact), excluding avoid.
func exclusiveRecordPage(t *testing.T, c *Collection, victim xml.DocID, avoid map[pagestore.PageID]bool) pagestore.PageID {
	t.Helper()
	others := map[pagestore.PageID]bool{}
	for _, doc := range c.scrubDocList() {
		if doc == victim {
			continue
		}
		rids, err := c.scanDocRIDsTolerant(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, rid := range rids {
			others[rid.Page] = true
		}
	}
	rids, err := c.scanDocRIDsTolerant(victim)
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range rids {
		if !others[rid.Page] && !avoid[rid.Page] {
			return rid.Page
		}
	}
	t.Fatal("no heap page is exclusive to the victim document")
	return pagestore.InvalidPage
}

func TestScrubQuarantineRepairCorruptionClasses(t *testing.T) {
	for _, mode := range []string{"bitflip", "torn", "zero"} {
		t.Run(mode, func(t *testing.T) {
			db, col, mem, ids, contents := scrubTestDB(t, 6)
			defer db.Close()
			victim := ids[2]
			rootRID, err := col.nodeIx.RootRID(victim)
			if err != nil {
				t.Fatal(err)
			}
			page := exclusiveRecordPage(t, col, victim,
				map[pagestore.PageID]bool{rootRID.Page: true})
			corruptPhysical(t, mem, page, mode)

			// Scrub detects and quarantines exactly the victim.
			rep, err := db.ScrubPass(nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.PageErrors) == 0 {
				t.Fatal("scrub found no page errors on a corrupted store")
			}
			if _, ok := db.quarantined("c", victim); !ok {
				t.Fatal("victim document not quarantined")
			}
			if got := db.Quarantined(); len(got) != 1 {
				t.Fatalf("quarantined %d documents, want exactly the victim: %v", len(got), got)
			}

			// Degraded queries skip the victim and serve the rest.
			cur, err := col.Cursor("/doc/k", QueryOptions{Degraded: true, Parallelism: 4, NeedValues: true})
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for cur.Next() {
				if cur.Result().Doc == victim {
					t.Error("degraded query returned a quarantined document")
				}
				n++
			}
			if err := cur.Err(); err != nil {
				t.Fatalf("degraded query: %v", err)
			}
			if n != len(ids)-1 {
				t.Fatalf("degraded query returned %d results, want %d", n, len(ids)-1)
			}
			if cur.Skipped() != 1 {
				t.Fatalf("Skipped() = %d, want 1", cur.Skipped())
			}
			cur.Close()

			// Non-degraded queries surface the typed error instead.
			cur2, err := col.Cursor("/doc/k", QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for cur2.Next() {
			}
			var qe ErrQuarantined
			if !errors.As(cur2.Err(), &qe) || qe.Doc != victim || qe.Col != "c" {
				t.Fatalf("non-degraded query error = %v, want ErrQuarantined for doc %d", cur2.Err(), victim)
			}
			cur2.Close()

			// Unaffected documents read back exactly.
			var buf bytes.Buffer
			if err := col.Serialize(ids[0], &buf); err != nil {
				t.Fatalf("healthy doc unreadable: %v", err)
			}
			if buf.String() != contents[0] {
				t.Fatal("healthy doc content changed")
			}

			// Repair: clean pages, consistent structures, empty registry.
			rrep, err := db.Repair(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !rrep.Clean {
				t.Fatalf("repair did not converge: %+v", rrep)
			}
			if err := db.VerifyPages(); err != nil {
				t.Fatalf("VerifyPages after repair: %v", err)
			}
			if err := col.CheckConsistency(); err != nil {
				t.Fatalf("CheckConsistency after repair: %v", err)
			}
			if q := db.Quarantined(); len(q) != 0 {
				t.Fatalf("registry not empty after repair: %v", q)
			}

			// The victim survives — lossy, never dropped.
			buf.Reset()
			if err := col.Serialize(victim, &buf); err != nil {
				t.Fatalf("repaired doc unreadable: %v", err)
			}
			lossy := db.LossyDocs()
			found := false
			for _, l := range lossy {
				if l.Doc == victim {
					found = true
				}
			}
			if !found {
				t.Fatalf("victim lost records but is not flagged lossy: %v", lossy)
			}

			// Counters moved.
			s := db.Stats()
			if s.ScrubPasses == 0 || s.PagesVerified == 0 || s.CorruptionsFound == 0 ||
				s.DocsQuarantined == 0 || s.DocsRepaired == 0 || s.DocsLossy == 0 {
				t.Fatalf("stats counters did not move: %+v", s)
			}
			if s.QuarantinedNow != 0 {
				t.Fatalf("QuarantinedNow = %d after repair", s.QuarantinedNow)
			}

			// A fresh scrub pass agrees the store is clean.
			rep2, err := db.ScrubPass(nil)
			if err != nil {
				t.Fatal(err)
			}
			if !rep2.Clean() {
				t.Fatalf("post-repair scrub not clean: %+v", rep2)
			}
		})
	}
}

func TestRepairRootLossKeepsPlaceholder(t *testing.T) {
	db, col, mem, ids, _ := scrubTestDB(t, 6)
	defer db.Close()
	victim := ids[3]
	rootRID, err := col.nodeIx.RootRID(victim)
	if err != nil {
		t.Fatal(err)
	}
	corruptPhysical(t, mem, rootRID.Page, "zero")

	if _, err := db.ScrubPass(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.quarantined("c", victim); !ok {
		t.Fatal("victim not quarantined after root-page loss")
	}
	rep, err := db.Repair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("repair did not converge: %+v", rep)
	}
	var buf bytes.Buffer
	if err := col.Serialize(victim, &buf); err != nil {
		t.Fatalf("victim dropped instead of salvaged: %v", err)
	}
	if !strings.Contains(buf.String(), "lost-document") {
		t.Fatalf("root-lost doc serialized as %q, want placeholder", buf.String())
	}
	foundLossy := false
	for _, l := range db.LossyDocs() {
		if l.Doc == victim {
			foundLossy = true
		}
	}
	if !foundLossy {
		t.Fatal("root-lost doc not flagged lossy")
	}
	if err := col.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if err := db.VerifyPages(); err != nil {
		t.Fatalf("VerifyPages: %v", err)
	}
}

// pickTreePage returns a non-meta page of the tree to damage.
func pickTreePage(t *testing.T, pages []pagestore.PageID, meta pagestore.PageID) pagestore.PageID {
	t.Helper()
	for _, p := range pages {
		if p != meta {
			return p
		}
	}
	t.Fatal("tree has no non-meta page")
	return pagestore.InvalidPage
}

func TestRepairRebuildsNodeIndex(t *testing.T) {
	db, col, mem, ids, contents := scrubTestDB(t, 4)
	defer db.Close()
	pages, err := col.nodeIx.Tree().Pages()
	if err != nil {
		t.Fatal(err)
	}
	corruptPhysical(t, mem, pickTreePage(t, pages, col.nodeIx.MetaPage()), "torn")

	rep, err := db.ScrubPass(nil)
	if err != nil {
		t.Fatal(err)
	}
	flagged := false
	for _, sr := range rep.CorruptStructures {
		if sr.Kind == "nodeid-index" {
			flagged = true
		}
	}
	if !flagged {
		t.Fatalf("nodeid-index damage not attributed: %+v", rep.CorruptStructures)
	}

	rrep, err := db.Repair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.Clean {
		t.Fatalf("repair did not converge: %+v", rrep)
	}
	rebuilt := false
	for _, ix := range rrep.IndexesRebuilt {
		if strings.Contains(ix, "nodeid-index") {
			rebuilt = true
		}
	}
	if !rebuilt {
		t.Fatalf("NodeID index not rebuilt: %v", rrep.IndexesRebuilt)
	}
	// The heap was intact, so every document must come back byte-identical
	// and nothing may be lossy.
	for i, id := range ids {
		var buf bytes.Buffer
		if err := col.Serialize(id, &buf); err != nil {
			t.Fatalf("doc %d after index rebuild: %v", id, err)
		}
		if buf.String() != contents[i] {
			t.Fatalf("doc %d content changed after index rebuild", id)
		}
	}
	if l := db.LossyDocs(); len(l) != 0 {
		t.Fatalf("lossless rebuild flagged lossy docs: %v", l)
	}
	if err := col.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if err := db.VerifyPages(); err != nil {
		t.Fatalf("VerifyPages: %v", err)
	}
}

func TestRepairRebuildsDocIndexAndBase(t *testing.T) {
	db, col, mem, ids, contents := scrubTestDB(t, 4)
	defer db.Close()
	pages, err := col.docIx.Pages()
	if err != nil {
		t.Fatal(err)
	}
	corruptPhysical(t, mem, pickTreePage(t, pages, col.docIx.MetaPage()), "zero")

	rep, err := db.ScrubPass(nil)
	if err != nil {
		t.Fatal(err)
	}
	flagged := false
	for _, sr := range rep.CorruptStructures {
		if sr.Kind == "docid-index" {
			flagged = true
		}
	}
	if !flagged {
		t.Fatalf("docid-index damage not attributed: %+v", rep.CorruptStructures)
	}
	rrep, err := db.Repair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.Clean {
		t.Fatalf("repair did not converge: %+v", rrep)
	}
	got, err := col.DocIDs()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(ids) {
		t.Fatalf("DocIDs after rebuild = %v, want %v", got, ids)
	}
	for i, id := range ids {
		var buf bytes.Buffer
		if err := col.Serialize(id, &buf); err != nil {
			t.Fatal(err)
		}
		if buf.String() != contents[i] {
			t.Fatalf("doc %d content changed", id)
		}
	}
	if err := col.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if err := db.VerifyPages(); err != nil {
		t.Fatalf("VerifyPages: %v", err)
	}
}

func TestRepairRebuildsValueIndex(t *testing.T) {
	db, col, mem, _, _ := scrubTestDB(t, 4)
	defer db.Close()
	ov := col.indexSnapshot()[0]
	pages, err := ov.ix.Tree().Pages()
	if err != nil {
		t.Fatal(err)
	}
	corruptPhysical(t, mem, pickTreePage(t, pages, ov.ix.MetaPage()), "bitflip")

	rep, err := db.ScrubPass(nil)
	if err != nil {
		t.Fatal(err)
	}
	flagged := false
	for _, sr := range rep.CorruptStructures {
		if sr.Kind == "value-index" && sr.Name == "kix" {
			flagged = true
		}
	}
	if !flagged {
		t.Fatalf("value-index damage not attributed: %+v", rep.CorruptStructures)
	}
	rrep, err := db.Repair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.Clean {
		t.Fatalf("repair did not converge: %+v", rrep)
	}
	// CheckConsistency re-derives every value key and compares against the
	// rebuilt index — the strongest possible check of the rebuild.
	if err := col.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if err := db.VerifyPages(); err != nil {
		t.Fatalf("VerifyPages: %v", err)
	}
}

// TestSidecarLossRepairRederives exercises the lost-sidecar recovery flow: a
// scribbled sidecar page fails a dense cluster of data pages, the database
// still opens (tolerant heap opens), and Repair's cluster heuristic
// re-derives the sidecar from the data instead of treating dozens of pages
// as independently damaged.
func TestSidecarLossRepairRederives(t *testing.T) {
	db, col, mem, ids, contents := scrubTestDB(t, 8)

	// Collect the heap record pages — pure data, not needed to open the
	// database — while it is still open.
	recPages := map[pagestore.PageID]bool{}
	for _, doc := range col.scrubDocList() {
		rids, err := col.scanDocRIDsTolerant(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, rid := range rids {
			if pagestore.SidecarPage(rid.Page) == pagestore.SidecarPage(0) {
				recPages[rid.Page] = true
			}
		}
	}
	// The cluster heuristic needs a dense failure set: 8+ pages covering at
	// least half the sidecar group.
	if len(recPages) < 8 || 2*len(recPages) < int(db.store.NumPages()) {
		t.Fatalf("workload too small for the cluster heuristic: %d record pages of %d total",
			len(recPages), db.store.NumPages())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Scribble those pages' CRC entries in the first sidecar — a partially
	// lost sidecar page. Catalog and structure-root entries stay verifiable
	// so the database still opens; the dense data-page cluster fails.
	buf := make([]byte, pagestore.PageSize)
	if err := mem.ReadPage(pagestore.SidecarPage(0), buf); err != nil {
		t.Fatal(err)
	}
	for p := range recPages {
		buf[4*int(p)] ^= 0xA5 // group 0: CRC slot index == logical page ID
	}
	if err := mem.WritePage(pagestore.SidecarPage(0), buf); err != nil {
		t.Fatal(err)
	}

	// Heap opens are tolerant, so the database still opens — the damage
	// demotes documents, not the whole store.
	db3, err := Open(pagestore.NewChecksumStore(mem), Options{PoolPages: 256})
	if err != nil {
		t.Fatalf("reopen over a lost sidecar: %v", err)
	}
	defer db3.Close()
	col3, err := db3.Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	srep, err := db3.ScrubPass(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(srep.PageErrors) < 8 {
		t.Fatalf("expected a dense failure cluster, got %d page errors", len(srep.PageErrors))
	}

	// Repair's cluster heuristic implicates the sidecar, re-derives it, and
	// restores the quarantined documents.
	rrep, err := db3.Repair(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.SidecarsRederived {
		t.Fatalf("sidecar cluster not re-derived: %+v", rrep)
	}
	if !rrep.Clean {
		t.Fatalf("repair did not converge: %+v", rrep)
	}
	rep, err := db3.ScrubPass(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("scrub after re-derivation not clean: %+v", rep)
	}
	// The data was never damaged — every document must be intact and
	// nothing lossy.
	for i, id := range ids {
		var out bytes.Buffer
		if err := col3.Serialize(id, &out); err != nil {
			t.Fatalf("doc %d after sidecar re-derivation: %v", id, err)
		}
		if out.String() != contents[i] {
			t.Fatalf("doc %d content changed after sidecar re-derivation", id)
		}
	}
	if l := db3.LossyDocs(); len(l) != 0 {
		t.Fatalf("sidecar-only damage flagged lossy docs: %v", l)
	}
	if err := col3.CheckConsistency(); err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if err := db3.VerifyPages(); err != nil {
		t.Fatalf("VerifyPages: %v", err)
	}
	_ = col
}

// TestRederiveSidecarClusterHeuristic unit-tests the in-engine lost-sidecar
// heuristic: a dense checksum-failure cluster within one sidecar group
// implicates the sidecar page and triggers re-derivation; sparse failures
// (genuinely damaged data pages) must not bless the data.
func TestRederiveSidecarClusterHeuristic(t *testing.T) {
	db, _, _, _, _ := scrubTestDB(t, 4)
	defer db.Close()
	var errs []PageError
	for p := pagestore.PageID(1); p < db.store.NumPages(); p++ {
		errs = append(errs, PageError{Page: p, Err: pagestore.ErrPageChecksum{PageID: p}})
	}
	if len(errs) < 8 {
		t.Fatalf("workload too small: %d pages", len(errs))
	}

	// Sparse failures: no re-derivation, error set passed through.
	repSparse := &RepairReport{}
	out, err := db.maybeRederiveSidecars(repSparse, errs[:3], nil)
	if err != nil {
		t.Fatal(err)
	}
	if repSparse.SidecarsRederived {
		t.Fatal("3 sparse failures blessed the sidecar group")
	}
	if len(out) != 3 {
		t.Fatalf("sparse error set rewritten: %d errors", len(out))
	}

	// Dense cluster: re-derive and rescan; the data is actually fine, so
	// the rescan comes back clean.
	repDense := &RepairReport{}
	out, err = db.maybeRederiveSidecars(repDense, errs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !repDense.SidecarsRederived {
		t.Fatal("dense failure cluster did not trigger sidecar re-derivation")
	}
	if len(out) != 0 {
		t.Fatalf("rescan after re-derivation still failing: %v", out)
	}
}

// TestTortureSidecarWALCrashRecovery crashes the checksummed, WAL-logged
// stack at every sync boundary (and a sample of write indices) and requires
// that after recovery every page — data and sidecar — verifies: the
// all-or-nothing durability boundary must keep the sidecars in the same
// epoch as the data across any crash point.
func TestTortureSidecarWALCrashRecovery(t *testing.T) {
	seeds := []int64{11, 22}
	if s := os.Getenv("TORTURE_SEEDS"); s != "" {
		var override []int64
		if err := json.Unmarshal([]byte(s), &override); err == nil && len(override) > 0 {
			seeds = override
		}
	}
	if testing.Short() {
		seeds = seeds[:1]
	}
	schedules := 0
	for _, seed := range seeds {
		profile := tortureWorkload(t, seed, nil, true)
		profile.inj.Crash()
		if err := tortureVerifyErr(profile); err != nil {
			t.Fatalf("seed %d (clean): %v", seed, err)
		}
		var rules []fault.Rule
		for n := profile.setupS + 1; n <= profile.endS; n++ {
			rules = append(rules, fault.CrashOnSync(n))
		}
		for n := profile.setupW + 1; n <= profile.endW; n += 3 {
			rules = append(rules, fault.CrashOnWrite(n))
		}
		for _, rule := range rules {
			label := fmt.Sprintf("seed %d %s", seed, rule)
			env := tortureWorkload(t, seed, []fault.Rule{rule}, true)
			if !env.inj.Crashed() {
				t.Fatalf("%s: schedule never fired (profile drift)", label)
			}
			env.pending = nil
			if err := tortureVerifyErr(env); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			// Logical recovery passed; now the physical layer: every page
			// must verify against its sidecar checksum.
			log, err := wal.Open(env.dev)
			if err != nil {
				t.Fatalf("%s: reopen wal: %v", label, err)
			}
			rdb, err := Recover(pagestore.NewChecksumStore(env.mem), log, Options{PoolPages: 64, LockTimeoutMillis: 500})
			if err != nil {
				t.Fatalf("%s: recover: %v", label, err)
			}
			_, errsP, err := rdb.ScanPages(nil)
			if err != nil {
				t.Fatalf("%s: scan: %v", label, err)
			}
			if len(errsP) != 0 {
				t.Fatalf("%s: %d pages fail verification after crash recovery (first: page %d: %v)",
					label, len(errsP), errsP[0].Page, errsP[0].Err)
			}
			srep, err := rdb.ScrubPass(nil)
			if err != nil {
				t.Fatalf("%s: scrub: %v", label, err)
			}
			if !srep.Clean() {
				t.Fatalf("%s: scrub not clean after crash recovery: %+v", label, srep)
			}
			schedules++
		}
	}
	t.Logf("sidecar crash schedules verified clean: %d", schedules)
}
