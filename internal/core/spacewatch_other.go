//go:build !linux && !darwin

package core

import "errors"

// DiskFreeProbe has no statfs on this platform; the returned probe always
// errors, which the watchdog treats as "no new information" — the engine
// still degrades and recovers through the write-path ENOSPC funnel and
// TryRecoverWritable, it just cannot anticipate exhaustion by watermark.
func DiskFreeProbe(path string) func() (int64, error) {
	return func() (int64, error) {
		return 0, errors.New("core: free-space probe unsupported on this platform")
	}
}
