//go:build linux || darwin

package core

import "syscall"

// DiskFreeProbe returns a watchdog probe reporting the free bytes available
// to unprivileged writers on the filesystem holding path (statfs Bavail, the
// number the engine's own appends compete for — not Bfree, which counts the
// root-reserved blocks too).
func DiskFreeProbe(path string) func() (int64, error) {
	return func() (int64, error) {
		var st syscall.Statfs_t
		if err := syscall.Statfs(path, &st); err != nil {
			return 0, err
		}
		return int64(st.Bavail) * int64(st.Bsize), nil
	}
}
