package core

import (
	"fmt"

	"rx/internal/nodeid"
	"rx/internal/pack"
	"rx/internal/quickxscan"
	"rx/internal/vsax"
	"rx/internal/xml"
)

// Subtree-scoped evaluation (§4.3: "For large documents, the DocID list
// access is no longer efficient. Instead, the NodeID list access applies").
// A candidate node reached through a value index is re-evaluated without
// touching the rest of the document: the record header's context path and
// in-scope namespaces make the record self-contained (§3.1), so the
// ancestor StartElement events of a rooted query can be synthesized and the
// walk restricted to the candidate subtree.

// ancestorChain returns the element names from the root down to (and
// including) the node's parent.
func (c *Collection) ancestorChain(doc xml.DocID, id nodeid.ID) ([]xml.QName, error) {
	rid, err := c.lookupCur(doc, id)
	if err != nil {
		return nil, fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	rec, err := c.fetchRecord(rid)
	if err != nil {
		return nil, err
	}
	// Names root→context come from the header; the rest from the in-record
	// descent.
	names := append([]xml.QName(nil), rec.Path...)
	cur := rec.ContextID
	for !nodeid.Equal(cur, id) {
		// Walk one level at a time from cur toward id, recording names.
		next, err := childOnPath(rec, cur, id)
		if err != nil {
			return nil, err
		}
		if next == nil {
			return nil, fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
		}
		if nodeid.Equal(next.Abs, id) {
			break
		}
		names = append(names, next.Name)
		cur = next.Abs
	}
	return names, nil
}

// childOnPath finds the record entry under parent that is id or an ancestor
// of id.
func childOnPath(rec *pack.Record, parent nodeid.ID, id nodeid.ID) (*pack.Node, error) {
	var out *pack.Node
	visit := func(n pack.Node) (bool, error) {
		if n.IsProxy() {
			return true, nil
		}
		if nodeid.IsAncestorOrSelf(n.Abs, id) {
			cp := n
			out = &cp
			return false, nil
		}
		return true, nil
	}
	if nodeid.Equal(rec.ContextID, parent) {
		if err := rec.Top(visit); err != nil {
			return nil, err
		}
		return out, nil
	}
	p, found, err := rec.Find(parent)
	if err != nil || !found {
		return nil, fmt.Errorf("core: parent %s not in record", parent)
	}
	if err := rec.Children(&p, visit); err != nil {
		return nil, err
	}
	return out, nil
}

// evalSubtree runs a compiled rooted query against a single subtree,
// synthesizing the ancestor element events so rooted spines match. Only
// valid for queries whose predicates all hang on the result step: ancestor
// predicates would need content outside the subtree.
func (c *Collection) evalSubtree(doc xml.DocID, rootID nodeid.ID, e *quickxscan.Eval) ([]quickxscan.Match, error) {
	// The ancestor chain needs its own index lookups, so derive it before
	// taking the zero-copy borrow on the candidate's record: a borrow must
	// never be held across B+tree access (single-borrow rule).
	ancestors, err := c.ancestorChain(doc, rootID)
	if err != nil {
		return nil, err
	}
	e.Reset()
	a := &scanAdapter{e: e}
	if err := a.StartDocument(); err != nil {
		return nil, err
	}
	// Synthesize the ancestors with their true node IDs (prefixes of
	// rootID), so matches report real positions.
	rels, err := nodeid.Split(rootID)
	if err != nil {
		return nil, err
	}
	if len(rels)-1 != len(ancestors) {
		return nil, fmt.Errorf("core: ancestor chain mismatch at %s (%d names for %d levels)",
			rootID, len(ancestors), len(rels)-1)
	}
	prefix := nodeid.ID{}
	for i, name := range ancestors {
		prefix = nodeid.Append(prefix, rels[i])
		if err := a.StartElement(name, nodeid.Clone(prefix)); err != nil {
			return nil, err
		}
	}
	rec, release, node, err := c.findNodeBorrowed(doc, rootID)
	if err != nil {
		return nil, err
	}
	if err := pack.WalkSubtreeBorrowed(rec, release, node, c.borrowFetcher(doc), handlerVisitor{a}); err != nil {
		return nil, err
	}
	for i := len(ancestors) - 1; i >= 0; i-- {
		var id nodeid.ID
		if err := a.EndElement(id); err != nil {
			return nil, err
		}
	}
	if err := a.EndDocument(); err != nil {
		return nil, err
	}
	return a.matches, nil
}

// handlerVisitor is reused from collection.go; vsax import is needed there.
var _ vsax.Handler = (*scanAdapter)(nil)
