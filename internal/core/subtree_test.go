package core

import (
	"fmt"
	"strings"
	"testing"

	"rx/internal/xml"
)

// bigOrderDoc builds a multi-record document: many items under one order.
func bigOrderDoc(items int) []byte {
	var sb strings.Builder
	sb.WriteString("<order><items>")
	for i := 0; i < items; i++ {
		fmt.Fprintf(&sb, `<item><sku>S%04d</sku><qty>%d</qty><note>%040d</note></item>`, i, i%9+1, i)
	}
	sb.WriteString("</items></order>")
	return []byte(sb.String())
}

func TestNodeIDFilteringOnLargeDocs(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("orders", CollectionOptions{PackThreshold: 600})
	const docs, items = 8, 120
	for d := 0; d < docs; d++ {
		if _, err := col.Insert(bigOrderDoc(items)); err != nil {
			t.Fatal(err)
		}
	}
	// A containment-path (covering, not exact) index.
	if err := col.CreateValueIndex("ix_qty", "//qty", xml.TDouble); err != nil {
		t.Fatal(err)
	}
	if !col.largeDocs() {
		t.Fatal("workload should qualify as large documents")
	}

	// Scan answer for ground truth.
	scanRes, _, err := col.Query("/order/items/item[qty = 7]/sku")
	if err != nil {
		t.Fatal(err)
	}
	if len(scanRes) == 0 {
		t.Fatal("ground truth empty")
	}

	res, plan, err := col.Query("/order/items/item[qty = 7]/sku")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != "nodeid-filtering" {
		t.Fatalf("plan = %s, want nodeid-filtering", plan.Method)
	}
	if len(res) != len(scanRes) {
		t.Fatalf("nodeid-filtering: %d results, scan: %d", len(res), len(scanRes))
	}
	for i := range res {
		if res[i].Doc != scanRes[i].Doc || res[i].Node.String() != scanRes[i].Node.String() {
			t.Fatalf("result %d differs: %v vs %v", i, res[i], scanRes[i])
		}
	}
	// Values come from the subtree evaluation.
	resV, _, err := col.QueryOpts("/order/items/item[qty = 7]/sku", QueryOptions{NeedValues: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resV {
		if !strings.HasPrefix(string(r.Value), "S") {
			t.Errorf("value = %q", r.Value)
		}
	}
}

func TestNodeIDFilteringRejectsNonMatchingPaths(t *testing.T) {
	// The covering index also matches qty nodes outside the query's spine;
	// subtree re-evaluation must filter those out.
	db := newDB(t)
	col, _ := db.CreateCollection("mix", CollectionOptions{PackThreshold: 400})
	var sb strings.Builder
	sb.WriteString("<order><items>")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, `<item><qty>7</qty><pad>%030d</pad></item>`, i)
	}
	// qty under a different spine: must not appear in results.
	sb.WriteString("</items><summary><qty>7</qty></summary></order>")
	for d := 0; d < 6; d++ {
		if _, err := col.Insert([]byte(sb.String())); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.CreateValueIndex("ix", "//qty", xml.TDouble); err != nil {
		t.Fatal(err)
	}
	// Every qty matches, so the costed planner rightly prefers a scan here;
	// force the filtering executor — this test checks its spine filtering,
	// not plan choice.
	res, plan, err := col.QueryOpts("/order/items/item[qty = 7]",
		QueryOptions{ForceMethod: "nodeid-filtering"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != "nodeid-filtering" {
		t.Fatalf("plan = %s", plan.Method)
	}
	if len(res) != 6*60 {
		t.Errorf("got %d results, want %d (summary/qty must be filtered out)", len(res), 6*60)
	}
}

func TestAncestorChain(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{PackThreshold: 300})
	id, _ := col.Insert(bigOrderDoc(80))
	res, _, err := col.Query("//sku")
	if err != nil || len(res) == 0 {
		t.Fatalf("%v %v", res, err)
	}
	// sku's ancestors are order/items/item.
	names, err := col.ancestorChain(id, res[40].Node)
	if err != nil {
		t.Fatal(err)
	}
	var rendered []string
	for _, q := range names {
		s, _ := db.Catalog().Lookup(q.Local)
		rendered = append(rendered, s)
	}
	want := "order/items/item"
	if strings.Join(rendered, "/") != want {
		t.Errorf("chain = %v, want %s", rendered, want)
	}
}
