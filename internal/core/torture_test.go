package core

// Crash-recovery torture harness: a seeded insert/update/delete workload
// runs over fault-wrapped storage (internal/fault), a crash-stop fault is
// injected at every sync boundary and at sampled write indices, and after
// each simulated power loss the engine is recovered from the durable image
// and checked against a client-side oracle:
//
//   - every transaction whose Commit returned nil is fully present,
//   - every transaction that did not commit is fully invisible,
//   - CheckConsistency passes, and the engine accepts new writes.
//
// The schedule mechanism is profile-then-replay: a fault-free run of the
// same seed counts the I/O operations the workload performs, and each
// torture run replays the identical operation sequence with a crash armed
// at one specific write or sync index. This only works because record
// placement and index maintenance are deterministic functions of the
// operation history (see heap.Insert, Collection.Vacuum,
// reconcileValueKeys).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"rx/internal/fault"
	"rx/internal/nodeid"
	"rx/internal/pagestore"
	"rx/internal/wal"
	"rx/internal/xml"
)

const (
	tortureIters = 24
	torturePool  = 6 // small pool forces mid-transaction eviction write-backs
)

// torturePad bulks up <t> text so documents span pages and the small pool
// evicts (and WAL-flushes) in the middle of operations — the window where
// undo-ordering bugs live.
func torturePad(tag string, seq int) string {
	return fmt.Sprintf("%s%d|%s", tag, seq, strings.Repeat("x", 600+seq%5*160))
}

// tortureDoc is the oracle's view of one committed document.
type tortureDoc struct {
	tval  string    // current text of <t>
	kval  string    // text of <k> (never updated; covered by a value index)
	tnode nodeid.ID // node ID of the text under <t>, for update ops
}

func (d tortureDoc) expect() string {
	return fmt.Sprintf("<d><t>%s</t><k>%s</k></d>", d.tval, d.kval)
}

// pendOp is one model mutation staged by an uncommitted transaction.
// A nil doc is a delete. Ops are kept in execution order: the oracle must
// replay them identically in profile and torture runs.
type pendOp struct {
	id  xml.DocID
	doc *tortureDoc
}

func findPend(pend []pendOp, id xml.DocID) int {
	for i := len(pend) - 1; i >= 0; i-- { // latest op for the doc wins
		if pend[i].id == id {
			return i
		}
	}
	return -1
}

// tortureEnv is the outcome of one workload run: the durable storage image
// at crash time plus the oracle of committed state.
type tortureEnv struct {
	mem   *pagestore.MemStore
	dev   *wal.MemDevice
	inj   *fault.Injector
	docs  map[xml.DocID]tortureDoc
	order []xml.DocID // committed docs in insertion order (for rng picks)

	// pending holds the ops of the transaction whose Commit was in flight
	// when the crash hit. Under crash-stop faults that transaction is
	// always a loser; under Tear faults a prefix of the commit batch can
	// land durably, leaving it in doubt (see tortureVerify).
	pending []pendOp

	checksums      bool   // storage stack includes a ChecksumStore
	setupW, setupS uint64 // injector counts after fault-free setup
	endW, endS     uint64 // counts at workload end (profile runs only)
}

// applyCommitted replays a committed transaction's ops into the oracle, in
// execution order: a later op on the same doc overrides an earlier one.
func (e *tortureEnv) applyCommitted(pend []pendOp) {
	for _, p := range pend {
		if p.doc == nil {
			delete(e.docs, p.id)
			for i, o := range e.order {
				if o == p.id {
					e.order = append(e.order[:i], e.order[i+1:]...)
					break
				}
			}
		} else {
			if _, ok := e.docs[p.id]; !ok {
				e.order = append(e.order, p.id)
			}
			e.docs[p.id] = *p.doc
		}
	}
}

// tortureWorkload drives the seeded workload until it completes or the
// injector crashes. Any non-crash failure is a test failure: the schedules
// only arm crash-stop faults, so every other error is an engine bug.
func tortureWorkload(t *testing.T, seed int64, rules []fault.Rule, checksums bool) *tortureEnv {
	t.Helper()
	env := &tortureEnv{
		mem:       pagestore.NewMemStore(),
		dev:       &wal.MemDevice{},
		inj:       fault.NewInjector(rules...),
		docs:      map[xml.DocID]tortureDoc{},
		checksums: checksums,
	}
	// Checksums sit above the fault layer: torn or flipped pages produced
	// by the injector must be caught on the way back up.
	var st pagestore.Store = fault.NewStore(env.mem, env.inj)
	if checksums {
		st = pagestore.NewChecksumStore(st)
	}
	// TORTURE_GROUPCOMMIT reruns every schedule with commit batching armed:
	// the workloads are single-writer, so the window must change no
	// durability outcome — only add bounded wait. The fault layer sits under
	// the group-commit logic, so injected sync crashes land mid-group too.
	var wopts []wal.Option
	if os.Getenv("TORTURE_GROUPCOMMIT") != "" {
		wopts = append(wopts, wal.WithGroupCommit(200*time.Microsecond))
	}
	log, err := wal.Open(fault.NewDevice(env.dev, env.inj), wopts...)
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	db, err := Open(st, Options{WAL: log, PoolPages: torturePool, LockTimeoutMillis: 500})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	col, err := db.CreateCollection("c", CollectionOptions{})
	if err != nil {
		t.Fatalf("create collection: %v", err)
	}
	if err := col.CreateValueIndex("kix", "/d/k", xml.TString); err != nil {
		t.Fatalf("create index: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("setup checkpoint: %v", err)
	}
	env.setupW, env.setupS, _ = env.inj.Counts()

	// Every rng draw below happens on a path determined only by the
	// committed model, so a crashed run consumes an exact prefix of the
	// profile run's draws.
	rng := rand.New(rand.NewSource(seed))
	seq := 0
	crashed := func(format string, a ...any) bool {
		if env.inj.Crashed() {
			return true // crash ends the run; durable image is the result
		}
		t.Fatalf(format, a...)
		return false
	}
	for it := 0; it < tortureIters; it++ {
		if rng.Float64() < 0.10 {
			if err := db.Checkpoint(); err != nil {
				if crashed("checkpoint: %v", err) {
					return env
				}
			}
			continue
		}
		tx := db.Begin()
		nops := 1 + rng.Intn(2)
		var pend []pendOp
		for o := 0; o < nops; o++ {
			seq++
			pick := rng.Float64()
			switch {
			case pick < 0.40 || len(env.order) == 0:
				d := tortureDoc{tval: torturePad("v", seq), kval: fmt.Sprintf("k%d", seq%7)}
				id, err := tx.Insert(col, []byte(d.expect()))
				if err != nil {
					if crashed("insert: %v", err) {
						return env
					}
				}
				pend = append(pend, pendOp{id, &d})
			case pick < 0.75:
				id := env.order[rng.Intn(len(env.order))]
				d := env.docs[id] // committed docs always have tnode resolved
				if i := findPend(pend, id); i >= 0 {
					if pend[i].doc == nil {
						continue // this txn already deleted it; skip the op
					}
					d = *pend[i].doc
				}
				d.tval = torturePad("u", seq)
				if err := tx.UpdateText(col, id, d.tnode, []byte(d.tval)); err != nil {
					if crashed("update %d: %v", id, err) {
						return env
					}
				}
				pend = append(pend, pendOp{id, &d})
			default:
				id := env.order[rng.Intn(len(env.order))]
				if i := findPend(pend, id); i >= 0 && pend[i].doc == nil {
					continue // already deleted in this txn
				}
				if err := tx.Delete(col, id); err != nil {
					if crashed("delete %d: %v", id, err) {
						return env
					}
				}
				pend = append(pend, pendOp{id, nil})
			}
		}
		if rng.Float64() < 0.15 {
			if err := tx.Rollback(); err != nil {
				if crashed("rollback: %v", err) {
					return env
				}
			}
			continue
		}
		env.pending = pend
		if err := tx.Commit(); err != nil {
			if crashed("commit: %v", err) {
				return env
			}
		}
		env.pending = nil
		env.applyCommitted(pend)
		// Resolve the <t> text node ID of freshly inserted docs; a crash
		// here (eviction write-back during the scan) ends the run, with
		// the committed model already up to date.
		for _, p := range pend {
			if p.doc == nil || len(p.doc.tnode) != 0 {
				continue
			}
			if _, ok := env.docs[p.id]; !ok {
				continue // inserted then deleted in the same txn
			}
			res, _, err := col.Query("/d/t/text()")
			if err != nil {
				if crashed("post-commit query: %v", err) {
					return env
				}
			}
			for _, r := range res {
				if r.Doc == p.id {
					p.doc.tnode = r.Node
					break
				}
			}
			if len(p.doc.tnode) == 0 {
				t.Fatalf("committed doc %d has no /d/t/text() node", p.id)
			}
			env.docs[p.id] = *p.doc
		}
	}
	env.endW, env.endS, _ = env.inj.Counts()
	return env
}

// tortureVerify recovers the engine from the durable image and checks it
// against the oracle. A non-nil pending set marks one in-doubt transaction
// whose effects may be either fully present or fully absent (Tear faults
// can persist a prefix of the commit batch, up to and including the commit
// record itself).
func tortureVerify(t *testing.T, env *tortureEnv, label string) {
	t.Helper()
	if err := tortureVerifyErr(env); err != nil {
		t.Errorf("%s: %v", label, err)
	}
}

// tortureViolation marks an oracle mismatch — recovered state that is wrong
// without any I/O error having been reported. Fault modes that may
// legitimately lose pages (torn writes without full-page images) still must
// never produce one of these: they have to surface as ErrPageChecksum.
type tortureViolation struct{ msg string }

func (v tortureViolation) Error() string { return v.msg }

func violationf(format string, a ...any) error {
	return tortureViolation{fmt.Sprintf(format, a...)}
}

func tortureVerifyErr(env *tortureEnv) error {
	log, err := wal.Open(env.dev)
	if err != nil {
		return fmt.Errorf("reopen wal: %w", err)
	}
	var st pagestore.Store = env.mem
	if env.checksums {
		st = pagestore.NewChecksumStore(env.mem)
	}
	db, err := Recover(st, log, Options{PoolPages: 64, LockTimeoutMillis: 500})
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	col, err := db.Collection("c")
	if err != nil {
		return fmt.Errorf("collection after recovery: %w", err)
	}

	model := env.docs
	if env.pending != nil {
		// Disambiguate the in-doubt transaction by whether any of its
		// effects are visible, then hold the engine to that choice
		// atomically: the checks below fail on a partial application.
		committed := false
		for _, p := range env.pending {
			old, existed := env.docs[p.id]
			has := col.Has(p.id)
			switch {
			case p.doc == nil && !has:
				committed = true
			case p.doc != nil && !existed && has:
				committed = true
			case p.doc != nil && existed:
				var buf bytes.Buffer
				if err := col.Serialize(p.id, &buf); err == nil && buf.String() != old.expect() {
					committed = true
				}
			}
		}
		if committed {
			alt := &tortureEnv{docs: map[xml.DocID]tortureDoc{}}
			for id, d := range env.docs {
				alt.docs[id] = d
			}
			alt.applyCommitted(env.pending)
			model = alt.docs
		}
	}

	ids, err := col.DocIDs()
	if err != nil {
		return fmt.Errorf("doc ids: %w", err)
	}
	var want []xml.DocID
	for id := range model {
		want = append(want, id)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		return violationf("recovered docs %v, want %v", ids, want)
	}
	for id, d := range model {
		var buf bytes.Buffer
		if err := col.Serialize(id, &buf); err != nil {
			return fmt.Errorf("serialize %d: %w", id, err)
		}
		if got := buf.String(); got != d.expect() {
			return violationf("doc %d content mismatch (got %d bytes, want %d)", id, len(got), len(d.expect()))
		}
	}
	if err := col.CheckConsistency(); err != nil {
		return fmt.Errorf("consistency after recovery: %w", err)
	}
	// Liveness: the recovered engine must accept and persist new work.
	tx := db.Begin()
	id, err := tx.Insert(col, []byte(`<d><t>alive</t><k>alive</k></d>`))
	if err == nil {
		err = tx.Commit()
	}
	if err != nil {
		return fmt.Errorf("post-recovery insert: %w", err)
	}
	if !col.Has(id) {
		return violationf("post-recovery insert invisible")
	}
	return nil
}

// tortureArtifact dumps the failing schedule for offline reproduction when
// TORTURE_ARTIFACT names a file (the CI crash-torture job sets it).
func tortureArtifact(t *testing.T, seed int64, rule fault.Rule, label string) {
	path := os.Getenv("TORTURE_ARTIFACT")
	if path == "" {
		return
	}
	blob, _ := json.MarshalIndent(map[string]any{
		"seed":     seed,
		"schedule": rule.String(),
		"label":    label,
		"rule":     rule,
	}, "", "  ")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Logf("writing %s: %v", path, err)
	} else {
		t.Logf("failing schedule written to %s", path)
	}
}

func tortureSeeds() []int64 {
	if s := os.Getenv("TORTURE_SEEDS"); s != "" {
		var seeds []int64
		if err := json.Unmarshal([]byte(s), &seeds); err == nil && len(seeds) > 0 {
			return seeds
		}
	}
	seeds := []int64{101, 202, 303, 404, 505}
	if testing.Short() {
		seeds = seeds[:2]
	}
	return seeds
}

func TestCrashRecoveryTorture(t *testing.T) {
	total := 0
	for _, seed := range tortureSeeds() {
		// Profile run: no faults; also verifies recovery from a crash that
		// falls after the final operation.
		profile := tortureWorkload(t, seed, nil, false)
		if profile.endS <= profile.setupS {
			t.Fatalf("seed %d: workload performed no syncs", seed)
		}
		profile.inj.Crash()
		tortureVerify(t, profile, fmt.Sprintf("seed %d (clean)", seed))
		if t.Failed() {
			t.FailNow()
		}

		// Crash at every sync boundary and at every write index the
		// profile observed: the workload's I/O span is small enough
		// (~40 writes, ~30 syncs) that coverage can be exhaustive.
		var rules []fault.Rule
		for n := profile.setupS + 1; n <= profile.endS; n++ {
			rules = append(rules, fault.CrashOnSync(n))
		}
		for n := profile.setupW + 1; n <= profile.endW; n++ {
			rules = append(rules, fault.CrashOnWrite(n))
		}

		for _, rule := range rules {
			total++
			label := fmt.Sprintf("seed %d %s", seed, rule)
			env := tortureWorkload(t, seed, []fault.Rule{rule}, false)
			if !env.inj.Crashed() {
				t.Fatalf("%s: schedule never fired (profile drift)", label)
			}
			// Crash-stop faults are all-or-nothing at the durability
			// boundary: a commit that returned an error is always a loser,
			// so the oracle is checked strictly, with no in-doubt window.
			env.pending = nil
			tortureVerify(t, env, label)
			if t.Failed() {
				tortureArtifact(t, seed, rule, label)
				t.FailNow()
			}
		}
	}
	t.Logf("torture: %d crash schedules survived", total)
	if !testing.Short() && total < 50 {
		t.Fatalf("only %d crash schedules exercised, want >= 50", total)
	}
}

// isChecksumErr reports whether err is (or carries) a page-checksum
// mismatch. Error chains that cross a fmt.Errorf("%v") boundary lose the
// concrete type, so the message is matched as a fallback.
func isChecksumErr(err error) bool {
	var ce pagestore.ErrPageChecksum
	if errors.As(err, &ce) {
		return true
	}
	return err != nil && strings.Contains(err.Error(), "checksum mismatch")
}

// TestTortureTornPageDetection runs the workload over a checksummed stack
// and tears a write (power loss mid-write: a prefix lands durably) at every
// other write index. Torn data pages are not recoverable without full-page
// images, so the requirement is detection, not repair: every schedule must
// either recover to the exact oracle state or fail with ErrPageChecksum —
// never report success over silently corrupt data.
func TestTortureTornPageDetection(t *testing.T) {
	seeds := []int64{11, 22}
	if testing.Short() {
		seeds = seeds[:1]
	}
	clean, detected := 0, 0
	for _, seed := range seeds {
		profile := tortureWorkload(t, seed, nil, true)
		profile.inj.Crash()
		if err := tortureVerifyErr(profile); err != nil {
			t.Fatalf("seed %d (clean, checksummed): %v", seed, err)
		}
		for n := profile.setupW + 1; n <= profile.endW; n += 2 {
			rule := fault.TearWrite(n, pagestore.PageSize/2)
			label := fmt.Sprintf("seed %d %s", seed, rule)
			env := tortureWorkload(t, seed, []fault.Rule{rule}, true)
			if !env.inj.Crashed() {
				t.Fatalf("%s: tear never fired (profile drift)", label)
			}
			err := tortureVerifyErr(env)
			switch {
			case err == nil:
				clean++
			case isChecksumErr(err):
				detected++
			default:
				tortureArtifact(t, seed, rule, label)
				t.Fatalf("%s: %v", label, err)
			}
		}
	}
	t.Logf("torn-write schedules: %d recovered fully, %d detected via checksum", clean, detected)
}

// TestTortureBitFlipDetection flips one bit on the Nth page read, for every
// read index a fault-free profile observes, and requires that no flip ever
// surfaces as valid-looking data: each run either returns every document
// byte-identical to the original or reports ErrPageChecksum.
func TestTortureBitFlipDetection(t *testing.T) {
	mem := pagestore.NewMemStore()
	build, err := Open(pagestore.NewChecksumStore(mem), Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	col, err := build.CreateCollection("c", CollectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[xml.DocID]string{}
	for i := 0; i < 6; i++ {
		d := tortureDoc{tval: torturePad("v", i), kval: fmt.Sprintf("k%d", i)}
		id, err := col.Insert([]byte(d.expect()))
		if err != nil {
			t.Fatal(err)
		}
		want[id] = d.expect()
	}
	if err := build.Flush(); err != nil {
		t.Fatal(err)
	}

	// readAll reopens the database over the given injector and serializes
	// every document, returning the I/O errors it hit and flagging any
	// content that differs from the original as silent corruption.
	readAll := func(inj *fault.Injector) (errs []error) {
		st := pagestore.NewChecksumStore(fault.NewStore(mem, inj))
		db, err := Open(st, Options{PoolPages: 64})
		if err != nil {
			return []error{err}
		}
		c, err := db.Collection("c")
		if err != nil {
			return []error{err}
		}
		for id, w := range want {
			var buf bytes.Buffer
			if err := c.Serialize(id, &buf); err != nil {
				errs = append(errs, err)
				continue
			}
			if buf.String() != w {
				t.Fatalf("silent corruption: doc %d returned wrong bytes without an error", id)
			}
		}
		return errs
	}

	profile := fault.NewInjector()
	if errs := readAll(profile); len(errs) != 0 {
		t.Fatalf("fault-free reopen failed: %v", errs)
	}
	_, _, reads := profile.Counts()
	if reads == 0 {
		t.Fatal("profile observed no reads")
	}
	detected := 0
	for k := uint64(1); k <= reads; k++ {
		errs := readAll(fault.NewInjector(fault.FlipOnRead(k, 8*777+3)))
		for _, err := range errs {
			if !isChecksumErr(err) {
				t.Fatalf("flip on read #%d: non-checksum failure: %v", k, err)
			}
		}
		if len(errs) > 0 {
			detected++
		}
	}
	if detected == 0 {
		t.Fatalf("no flip across %d read indices was detected", reads)
	}
	t.Logf("bit flips: %d/%d read indices surfaced ErrPageChecksum, rest unaffected", detected, reads)
}
