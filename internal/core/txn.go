package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"rx/internal/lock"
	"rx/internal/nodeid"
	"rx/internal/pagestore"
	"rx/internal/tokens"
	"rx/internal/vsax"
	"rx/internal/wal"
	"rx/internal/xml"
	"rx/internal/xmlparse"
)

// Transactions: document-level ACID on top of the shared infrastructure.
// Physical redo comes for free from the buffer pool's WAL hook; this file
// adds logical operation records with engine-level inverses (ARIES-style
// logical undo) and two-phase document locking via the lock manager (§5.1).
//
// Undo ordering invariant: every operation logs its logical undo record
// BEFORE mutating any page. The log is flushed sequentially, and a mid-
// operation flush (an eviction's WAL-before-data flush, or another
// transaction's commit) can make a prefix of the log durable at any record
// boundary — if the undo record trailed the operation's page deltas, a crash
// inside that window would redo uncommitted effects that recovery has no
// record to compensate. Logging undo first means any durable prefix that
// contains an operation's deltas also contains its undo record; compensation
// in turn tolerates partially-applied operations (the durable prefix may end
// mid-operation), see compensate.

var txnSeq atomic.Uint64

// Txn is an open transaction.
type Txn struct {
	db   *DB
	id   uint64
	lk   *lock.Txn
	undo []logicalOp
	done bool
}

// logicalOp is the JSON-encoded logical record and its inverse description.
type logicalOp struct {
	Kind string // "insert", "delete", "update-text", "insert-frag", "delete-subtree"
	Col  string
	Doc  xml.DocID
	// Node is the target node (hex).
	Node string
	// Data carries the op-specific undo payload: the document token stream
	// (delete), the old text value (update-text), or the subtree fragment
	// XML (delete-subtree).
	Data []byte
	// Anchor/Pos describe where a deleted subtree is re-inserted on undo.
	Anchor string
	Pos    Position
	// Stream is the full pre-operation document token stream, captured for
	// in-place mutations of non-versioned collections. Physical redo of a
	// torn log tail can leave an operation half-applied, beyond what a
	// targeted inverse can repair; compensation then rebuilds the document
	// from this snapshot instead.
	Stream []byte
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	t := &Txn{db: db, id: txnSeq.Add(1), lk: db.locks.Begin()}
	if db.log != nil {
		db.log.Begin(t.id)
	}
	return t
}

func (t *Txn) record(op logicalOp) error {
	t.undo = append(t.undo, op)
	if t.db.log != nil {
		payload, err := json.Marshal(op)
		if err != nil {
			return err
		}
		t.db.log.Logical(t.id, payload)
	}
	return nil
}

// Insert stores a document under an X document lock. The DocID is reserved
// (and the undo record logged) before the insertion itself runs.
func (t *Txn) Insert(col *Collection, doc []byte) (xml.DocID, error) {
	id, err := t.insert(col, doc)
	t.db.noteWriteErr(err)
	return id, err
}

func (t *Txn) insert(col *Collection, doc []byte) (xml.DocID, error) {
	if t.done {
		return 0, errTxnDone
	}
	if err := t.db.checkWritable(); err != nil {
		return 0, err
	}
	// Parse first: a malformed document must not burn an ID or log anything.
	stream, err := xmlparse.Parse(doc, col.db.cat, xmlparse.Options{})
	if err != nil {
		return 0, err
	}
	id, err := col.allocDoc()
	if err != nil {
		return 0, err
	}
	if err := t.lk.LockDoc(col.Name(), id, lock.X); err != nil {
		return 0, err
	}
	if err := t.record(logicalOp{Kind: "insert", Col: col.Name(), Doc: id}); err != nil {
		return 0, err
	}
	if err := col.insertStreamAt(id, stream); err != nil {
		return 0, err
	}
	return id, nil
}

// Delete removes a document under an X lock, capturing its content for undo
// before the deletion runs.
func (t *Txn) Delete(col *Collection, doc xml.DocID) error {
	err := t.deleteDoc(col, doc)
	t.db.noteWriteErr(err)
	return err
}

func (t *Txn) deleteDoc(col *Collection, doc xml.DocID) error {
	if t.done {
		return errTxnDone
	}
	if err := t.db.checkWritable(); err != nil {
		return err
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.X); err != nil {
		return err
	}
	stream, err := col.DocStream(doc)
	if err != nil {
		return err
	}
	if err := t.record(logicalOp{Kind: "delete", Col: col.Name(), Doc: doc, Data: stream}); err != nil {
		return err
	}
	return col.Delete(doc)
}

// UpdateText updates a text or attribute node under an X document lock.
func (t *Txn) UpdateText(col *Collection, doc xml.DocID, id nodeid.ID, newValue []byte) error {
	err := t.updateText(col, doc, id, newValue)
	t.db.noteWriteErr(err)
	return err
}

func (t *Txn) updateText(col *Collection, doc xml.DocID, id nodeid.ID, newValue []byte) error {
	if t.done {
		return errTxnDone
	}
	if err := t.db.checkWritable(); err != nil {
		return err
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.X); err != nil {
		return err
	}
	// Validate the target before logging: a doomed operation must not leave
	// an undo record that compensation would then try to apply.
	kind, _, err := col.NodeKind(doc, id)
	if err != nil {
		return err
	}
	if kind != xml.Text && kind != xml.Attribute {
		return fmt.Errorf("core: UpdateText target %s is a %v", id, kind)
	}
	old, err := col.NodeString(doc, id)
	if err != nil {
		return err
	}
	snap, err := col.undoSnapshot(doc)
	if err != nil {
		return err
	}
	if err := t.record(logicalOp{Kind: "update-text", Col: col.Name(), Doc: doc, Node: id.String(), Data: old, Stream: snap}); err != nil {
		return err
	}
	return col.UpdateText(doc, id, newValue)
}

// InsertFragment inserts a fragment under an X document lock. The new node's
// ID is planned (and the undo record logged) before the insertion runs.
func (t *Txn) InsertFragment(col *Collection, doc xml.DocID, anchor nodeid.ID, pos Position, fragment []byte) (nodeid.ID, error) {
	id, err := t.insertFragment(col, doc, anchor, pos, fragment)
	t.db.noteWriteErr(err)
	return id, err
}

func (t *Txn) insertFragment(col *Collection, doc xml.DocID, anchor nodeid.ID, pos Position, fragment []byte) (nodeid.ID, error) {
	if t.done {
		return nil, errTxnDone
	}
	if err := t.db.checkWritable(); err != nil {
		return nil, err
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.X); err != nil {
		return nil, err
	}
	newID, err := col.planFragmentID(doc, anchor, pos, fragment)
	if err != nil {
		return nil, err
	}
	snap, err := col.undoSnapshot(doc)
	if err != nil {
		return nil, err
	}
	if err := t.record(logicalOp{Kind: "insert-frag", Col: col.Name(), Doc: doc, Node: newID.String(), Stream: snap}); err != nil {
		return nil, err
	}
	got, err := col.InsertFragment(doc, anchor, pos, fragment)
	if err != nil {
		return nil, err
	}
	if !nodeid.Equal(got, newID) {
		return nil, fmt.Errorf("core: fragment landed at %s, planned %s", got, newID)
	}
	return got, nil
}

// DeleteSubtree deletes a subtree under an X document lock, capturing the
// fragment and its position for undo before the deletion runs. (Undo
// restores content; the restored nodes get fresh IDs, which no committed
// state can have observed.)
func (t *Txn) DeleteSubtree(col *Collection, doc xml.DocID, id nodeid.ID) error {
	err := t.deleteSubtree(col, doc, id)
	t.db.noteWriteErr(err)
	return err
}

func (t *Txn) deleteSubtree(col *Collection, doc xml.DocID, id nodeid.ID) error {
	if t.done {
		return errTxnDone
	}
	if len(id) == 0 || nodeid.Level(id) == 1 {
		return errors.New("core: cannot delete the document root; use Delete")
	}
	if err := t.db.checkWritable(); err != nil {
		return err
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.X); err != nil {
		return err
	}
	var frag bytes.Buffer
	if err := col.SerializeNode(doc, id, &frag); err != nil {
		return err
	}
	anchor, pos, err := col.undoAnchor(doc, id)
	if err != nil {
		return err
	}
	snap, err := col.undoSnapshot(doc)
	if err != nil {
		return err
	}
	if err := t.record(logicalOp{
		Kind: "delete-subtree", Col: col.Name(), Doc: doc, Node: id.String(),
		Data: frag.Bytes(), Anchor: anchor.String(), Pos: pos, Stream: snap,
	}); err != nil {
		return err
	}
	return col.DeleteSubtree(doc, id)
}

// Serialize reads a document under an S lock (repeatable read at document
// granularity).
func (t *Txn) Serialize(col *Collection, doc xml.DocID, w *bytes.Buffer) error {
	if t.done {
		return errTxnDone
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.S); err != nil {
		return err
	}
	return col.Serialize(doc, w)
}

// Query runs a query under an S collection lock.
func (t *Txn) Query(col *Collection, expr string) ([]Result, *Plan, error) {
	if t.done {
		return nil, nil, errTxnDone
	}
	if err := t.lk.Lock(lock.CollectionRes(col.Name()), lock.S); err != nil {
		return nil, nil, err
	}
	return col.Query(expr)
}

// Cursor opens a streaming cursor under an S collection lock. The lock is
// held until the transaction finishes (two-phase locking), not until the
// cursor closes, so the result set stays stable for the transaction's
// lifetime.
func (t *Txn) Cursor(col *Collection, expr string, opts QueryOptions) (*Cursor, error) {
	if t.done {
		return nil, errTxnDone
	}
	if err := t.lk.Lock(lock.CollectionRes(col.Name()), lock.S); err != nil {
		return nil, err
	}
	return col.Cursor(expr, opts)
}

// Commit makes the transaction durable and releases its locks. A commit
// whose log flush fails (a full device, a dying disk) is NOT left in limbo:
// the transaction's effects are compensated in-process before the locks are
// released, so the caller observes a clean rollback with the typed error.
// The WAL's durable watermark was already rolled back by the failed flush,
// so no acknowledgement can ever run ahead of the bytes that never landed;
// the pending tail then holds [Commit(T), compensation deltas, Abort(T)],
// which redo resolves to the rolled-back state after any later successful
// flush. A crash before that reflush leaves a torn tail that recovery treats
// as a loser — the same rolled-back outcome by the logical-undo route.
func (t *Txn) Commit() error {
	if t.done {
		return errTxnDone
	}
	t.done = true
	defer t.lk.ReleaseAll()
	if t.db.log != nil {
		if _, err := t.db.log.Commit(t.id); err != nil {
			t.db.noteWriteErr(err)
			for i := len(t.undo) - 1; i >= 0; i-- {
				if cerr := t.db.compensate(t.undo[i]); cerr != nil {
					// The in-process rollback hit the same wall (usually an
					// eviction's write-ahead flush on the full device). Park
					// the unapplied undo as compensation debt; the engine is
					// read-only until TryRecoverWritable replays it.
					t.db.deferCompensation(t.undo[:i+1], cerr)
					return fmt.Errorf("core: commit txn %d failed (%v); undo deferred to recovery: %w", t.id, err, cerr)
				}
			}
			// Best effort: on a full device the abort record may not fit
			// either; recovery then classifies the transaction by its torn
			// tail, with the same rolled-back outcome.
			_, _ = t.db.log.Abort(t.id)
			return fmt.Errorf("core: commit txn %d rolled back: %w", t.id, err)
		}
	}
	return nil
}

// Rollback compensates the transaction's operations in reverse order and
// releases its locks.
func (t *Txn) Rollback() error {
	if t.done {
		return errTxnDone
	}
	t.done = true
	defer t.lk.ReleaseAll()
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.db.compensate(t.undo[i]); err != nil {
			t.db.deferCompensation(t.undo[:i+1], err)
			return fmt.Errorf("core: rollback txn %d: undo deferred to recovery: %w", t.id, err)
		}
	}
	if t.db.log != nil {
		if _, err := t.db.log.Abort(t.id); err != nil {
			t.db.noteWriteErr(err)
			return err
		}
	}
	return nil
}

var errTxnDone = fmt.Errorf("core: transaction already finished")

// compensate runs the inverse of one logical operation. Because undo records
// are logged before their operations execute, the durable log may end
// anywhere inside an operation — compensation therefore tolerates the
// never-applied and partially-applied states a crash can leave behind.
func (db *DB) compensate(op logicalOp) error {
	col, err := db.Collection(op.Col)
	if err != nil {
		return err
	}
	switch op.Kind {
	case "insert":
		// The insert may have applied fully, partially, or not at all; wipe
		// whatever of the document exists.
		return col.wipeDoc(op.Doc)
	case "delete":
		// Clear any partial remains of the delete first, then restore the
		// captured content under the same DocID.
		return col.restoreDoc(op.Doc, op.Data)
	case "update-text":
		if len(op.Stream) > 0 {
			return col.restoreDoc(op.Doc, op.Stream)
		}
		id, err := nodeid.Parse(op.Node)
		if err != nil {
			return err
		}
		err = col.UpdateText(op.Doc, id, op.Data)
		if errors.Is(err, ErrNotFound) {
			// The enclosing document is already compensated away (a loser
			// that inserted it and then updated it); nothing to restore.
			return nil
		}
		return err
	case "insert-frag":
		if len(op.Stream) > 0 {
			return col.restoreDoc(op.Doc, op.Stream)
		}
		id, err := nodeid.Parse(op.Node)
		if err != nil {
			return err
		}
		err = col.DeleteSubtree(op.Doc, id)
		if errors.Is(err, ErrNotFound) {
			return nil // the insertion never (durably) applied
		}
		return err
	case "delete-subtree":
		if len(op.Stream) > 0 {
			return col.restoreDoc(op.Doc, op.Stream)
		}
		id, err := nodeid.Parse(op.Node)
		if err != nil {
			return err
		}
		if _, _, err := col.findNode(op.Doc, id); err == nil {
			return nil // the deletion never (durably) applied
		}
		anchor, err := nodeid.Parse(op.Anchor)
		if err != nil {
			return err
		}
		_, err = col.InsertFragment(op.Doc, anchor, op.Pos, op.Data)
		return err
	default:
		return fmt.Errorf("core: unknown logical op %q", op.Kind)
	}
}

// undoAnchor computes where a subtree would be re-inserted: before its next
// sibling if it has one, else as the parent's last child.
func (c *Collection) undoAnchor(doc xml.DocID, id nodeid.ID) (nodeid.ID, Position, error) {
	parentID, err := nodeid.Parent(id)
	if err != nil {
		return nil, 0, err
	}
	sibs, err := c.childEntries(doc, parentID)
	if err != nil {
		return nil, 0, err
	}
	rel, err := nodeid.LastRel(id)
	if err != nil {
		return nil, 0, err
	}
	for i, s := range sibs {
		if bytes.Equal(s.rel, rel) {
			if i+1 < len(sibs) {
				return nodeid.Append(parentID, sibs[i+1].rel), BeforeNode, nil
			}
			break
		}
	}
	return parentID, AsLastChild, nil
}

// undoSnapshot captures the pre-operation document state for full-state
// compensation. Versioned collections return nil: their in-place mutations
// build a new version and flip the current-version pointer, so compensation
// keeps the targeted inverse (a snapshot restore would erase history).
func (c *Collection) undoSnapshot(doc xml.DocID) ([]byte, error) {
	if c.meta.Versioned {
		return nil, nil
	}
	return c.DocStream(doc)
}

// restoreDoc rebuilds a document from a captured token stream, first wiping
// whatever of it exists. Unlike a targeted inverse it is safe against any
// partially-applied state: redo of a log whose tail was torn mid-operation
// can replay an arbitrary record-boundary prefix of the operation's page
// deltas, leaving cross-structure links (NodeID index, value keys, record
// chains) out of step with each other.
func (c *Collection) restoreDoc(doc xml.DocID, stream []byte) error {
	if err := c.wipeDoc(doc); err != nil {
		return err
	}
	return c.insertStreamAt(doc, stream)
}

// DocStream re-encodes a stored document as a buffered token stream (used
// for undo capture and for feeding other pipeline stages).
func (c *Collection) DocStream(doc xml.DocID) ([]byte, error) {
	w := tokens.NewWriter(4096)
	sink := &vsax.TokenSink{W: w}
	if err := c.WalkDoc(doc, sink); err != nil {
		return nil, err
	}
	return append([]byte(nil), w.Bytes()...), nil
}

// Checkpoint flushes all pages and writes a checkpoint record, bounding
// redo work after a crash.
func (db *DB) Checkpoint() error {
	if err := db.pool.FlushAll(); err != nil {
		db.noteWriteErr(err)
		return err
	}
	if db.log != nil {
		if _, err := db.log.Checkpoint(); err != nil {
			db.noteWriteErr(err)
			return err
		}
	}
	return nil
}

// Recover performs crash recovery: physical redo of the WAL against the
// store, then logical compensation of loser transactions, then a fresh
// checkpoint. It returns the opened database.
func Recover(store pagestore.Store, log *wal.Log, opts Options) (*DB, error) {
	res, err := wal.Recover(log, store)
	if err != nil {
		return nil, err
	}
	opts.WAL = log
	db, err := Open(store, opts)
	if err != nil {
		return nil, err
	}
	// Compensate losers: each transaction's logical ops in reverse order.
	for txn, ops := range res.Losers {
		for i := len(ops) - 1; i >= 0; i-- {
			var op logicalOp
			if err := json.Unmarshal(ops[i], &op); err != nil {
				return nil, fmt.Errorf("core: recovery txn %d: %v", txn, err)
			}
			if err := db.compensate(op); err != nil {
				return nil, fmt.Errorf("core: recovery compensation txn %d (%s %s/%d): %w", txn, op.Kind, op.Col, op.Doc, err)
			}
		}
		if _, err := log.Abort(txn); err != nil {
			return nil, err
		}
	}
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	return db, nil
}
