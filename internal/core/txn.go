package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"rx/internal/lock"
	"rx/internal/nodeid"
	"rx/internal/pagestore"
	"rx/internal/tokens"
	"rx/internal/vsax"
	"rx/internal/wal"
	"rx/internal/xml"
)

// Transactions: document-level ACID on top of the shared infrastructure.
// Physical redo comes for free from the buffer pool's WAL hook; this file
// adds logical operation records with engine-level inverses (ARIES-style
// logical undo) and two-phase document locking via the lock manager (§5.1).

var txnSeq atomic.Uint64

// Txn is an open transaction.
type Txn struct {
	db   *DB
	id   uint64
	lk   *lock.Txn
	undo []logicalOp
	done bool
}

// logicalOp is the JSON-encoded logical record and its inverse description.
type logicalOp struct {
	Kind string // "insert", "delete", "update-text", "insert-frag", "delete-subtree"
	Col  string
	Doc  xml.DocID
	// Node is the target node (hex).
	Node string
	// Data carries the op-specific undo payload: the document token stream
	// (delete), the old text value (update-text), or the subtree fragment
	// XML (delete-subtree).
	Data []byte
	// Anchor/Pos describe where a deleted subtree is re-inserted on undo.
	Anchor string
	Pos    Position
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	t := &Txn{db: db, id: txnSeq.Add(1), lk: db.locks.Begin()}
	if db.log != nil {
		db.log.Begin(t.id)
	}
	return t
}

func (t *Txn) record(op logicalOp) error {
	t.undo = append(t.undo, op)
	if t.db.log != nil {
		payload, err := json.Marshal(op)
		if err != nil {
			return err
		}
		t.db.log.Logical(t.id, payload)
	}
	return nil
}

// Insert stores a document under an X document lock.
func (t *Txn) Insert(col *Collection, doc []byte) (xml.DocID, error) {
	if t.done {
		return 0, errTxnDone
	}
	id, err := col.Insert(doc)
	if err != nil {
		return 0, err
	}
	if err := t.lk.LockDoc(col.Name(), id, lock.X); err != nil {
		return 0, err
	}
	return id, t.record(logicalOp{Kind: "insert", Col: col.Name(), Doc: id})
}

// Delete removes a document under an X lock, capturing its content for undo.
func (t *Txn) Delete(col *Collection, doc xml.DocID) error {
	if t.done {
		return errTxnDone
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.X); err != nil {
		return err
	}
	stream, err := col.DocStream(doc)
	if err != nil {
		return err
	}
	if err := col.Delete(doc); err != nil {
		return err
	}
	return t.record(logicalOp{Kind: "delete", Col: col.Name(), Doc: doc, Data: stream})
}

// UpdateText updates a text or attribute node under an X document lock.
func (t *Txn) UpdateText(col *Collection, doc xml.DocID, id nodeid.ID, newValue []byte) error {
	if t.done {
		return errTxnDone
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.X); err != nil {
		return err
	}
	old, err := col.NodeString(doc, id)
	if err != nil {
		return err
	}
	if err := col.UpdateText(doc, id, newValue); err != nil {
		return err
	}
	return t.record(logicalOp{Kind: "update-text", Col: col.Name(), Doc: doc, Node: id.String(), Data: old})
}

// InsertFragment inserts a fragment under an X document lock.
func (t *Txn) InsertFragment(col *Collection, doc xml.DocID, anchor nodeid.ID, pos Position, fragment []byte) (nodeid.ID, error) {
	if t.done {
		return nil, errTxnDone
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.X); err != nil {
		return nil, err
	}
	newID, err := col.InsertFragment(doc, anchor, pos, fragment)
	if err != nil {
		return nil, err
	}
	return newID, t.record(logicalOp{Kind: "insert-frag", Col: col.Name(), Doc: doc, Node: newID.String()})
}

// DeleteSubtree deletes a subtree under an X document lock, capturing the
// fragment and its position for undo. (Undo restores content; the restored
// nodes get fresh IDs, which no committed state can have observed.)
func (t *Txn) DeleteSubtree(col *Collection, doc xml.DocID, id nodeid.ID) error {
	if t.done {
		return errTxnDone
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.X); err != nil {
		return err
	}
	var frag bytes.Buffer
	if err := col.SerializeNode(doc, id, &frag); err != nil {
		return err
	}
	anchor, pos, err := col.undoAnchor(doc, id)
	if err != nil {
		return err
	}
	if err := col.DeleteSubtree(doc, id); err != nil {
		return err
	}
	return t.record(logicalOp{
		Kind: "delete-subtree", Col: col.Name(), Doc: doc, Node: id.String(),
		Data: frag.Bytes(), Anchor: anchor.String(), Pos: pos,
	})
}

// Serialize reads a document under an S lock (repeatable read at document
// granularity).
func (t *Txn) Serialize(col *Collection, doc xml.DocID, w *bytes.Buffer) error {
	if t.done {
		return errTxnDone
	}
	if err := t.lk.LockDoc(col.Name(), doc, lock.S); err != nil {
		return err
	}
	return col.Serialize(doc, w)
}

// Query runs a query under an S collection lock.
func (t *Txn) Query(col *Collection, expr string) ([]Result, *Plan, error) {
	if t.done {
		return nil, nil, errTxnDone
	}
	if err := t.lk.Lock(lock.CollectionRes(col.Name()), lock.S); err != nil {
		return nil, nil, err
	}
	return col.Query(expr)
}

// Commit makes the transaction durable and releases its locks.
func (t *Txn) Commit() error {
	if t.done {
		return errTxnDone
	}
	t.done = true
	defer t.lk.ReleaseAll()
	if t.db.log != nil {
		if _, err := t.db.log.Commit(t.id); err != nil {
			return err
		}
	}
	return nil
}

// Rollback compensates the transaction's operations in reverse order and
// releases its locks.
func (t *Txn) Rollback() error {
	if t.done {
		return errTxnDone
	}
	t.done = true
	defer t.lk.ReleaseAll()
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.db.compensate(t.undo[i]); err != nil {
			return fmt.Errorf("core: rollback txn %d: %w", t.id, err)
		}
	}
	if t.db.log != nil {
		if _, err := t.db.log.Abort(t.id); err != nil {
			return err
		}
	}
	return nil
}

var errTxnDone = fmt.Errorf("core: transaction already finished")

// compensate runs the inverse of one logical operation.
func (db *DB) compensate(op logicalOp) error {
	col, err := db.Collection(op.Col)
	if err != nil {
		return err
	}
	switch op.Kind {
	case "insert":
		return col.Delete(op.Doc)
	case "delete":
		col.writeMu.Lock()
		defer col.writeMu.Unlock()
		return col.insertStreamLocked(op.Doc, op.Data)
	case "update-text":
		id, err := nodeid.Parse(op.Node)
		if err != nil {
			return err
		}
		return col.UpdateText(op.Doc, id, op.Data)
	case "insert-frag":
		id, err := nodeid.Parse(op.Node)
		if err != nil {
			return err
		}
		return col.DeleteSubtree(op.Doc, id)
	case "delete-subtree":
		anchor, err := nodeid.Parse(op.Anchor)
		if err != nil {
			return err
		}
		_, err = col.InsertFragment(op.Doc, anchor, op.Pos, op.Data)
		return err
	default:
		return fmt.Errorf("core: unknown logical op %q", op.Kind)
	}
}

// undoAnchor computes where a subtree would be re-inserted: before its next
// sibling if it has one, else as the parent's last child.
func (c *Collection) undoAnchor(doc xml.DocID, id nodeid.ID) (nodeid.ID, Position, error) {
	parentID, err := nodeid.Parent(id)
	if err != nil {
		return nil, 0, err
	}
	sibs, err := c.childEntries(doc, parentID)
	if err != nil {
		return nil, 0, err
	}
	rel, err := nodeid.LastRel(id)
	if err != nil {
		return nil, 0, err
	}
	for i, s := range sibs {
		if bytes.Equal(s.rel, rel) {
			if i+1 < len(sibs) {
				return nodeid.Append(parentID, sibs[i+1].rel), BeforeNode, nil
			}
			break
		}
	}
	return parentID, AsLastChild, nil
}

// DocStream re-encodes a stored document as a buffered token stream (used
// for undo capture and for feeding other pipeline stages).
func (c *Collection) DocStream(doc xml.DocID) ([]byte, error) {
	w := tokens.NewWriter(4096)
	sink := &vsax.TokenSink{W: w}
	if err := c.WalkDoc(doc, sink); err != nil {
		return nil, err
	}
	return append([]byte(nil), w.Bytes()...), nil
}

// Checkpoint flushes all pages and writes a checkpoint record, bounding
// redo work after a crash.
func (db *DB) Checkpoint() error {
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if db.log != nil {
		if _, err := db.log.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// Recover performs crash recovery: physical redo of the WAL against the
// store, then logical compensation of loser transactions, then a fresh
// checkpoint. It returns the opened database.
func Recover(store pagestore.Store, log *wal.Log, opts Options) (*DB, error) {
	res, err := wal.Recover(log, store)
	if err != nil {
		return nil, err
	}
	opts.WAL = log
	db, err := Open(store, opts)
	if err != nil {
		return nil, err
	}
	// Compensate losers: each transaction's logical ops in reverse order.
	for txn, ops := range res.Losers {
		for i := len(ops) - 1; i >= 0; i-- {
			var op logicalOp
			if err := json.Unmarshal(ops[i], &op); err != nil {
				return nil, fmt.Errorf("core: recovery txn %d: %v", txn, err)
			}
			if err := db.compensate(op); err != nil {
				return nil, fmt.Errorf("core: recovery compensation txn %d: %w", txn, err)
			}
		}
		if _, err := log.Abort(txn); err != nil {
			return nil, err
		}
	}
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	return db, nil
}
