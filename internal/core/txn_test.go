package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"rx/internal/lock"
	"rx/internal/pagestore"
	"rx/internal/wal"
	"rx/internal/xml"
)

func newLoggedDB(t *testing.T) (*DB, pagestore.Store, *wal.Log) {
	t.Helper()
	store := pagestore.NewMemStore()
	log, err := wal.Open(&wal.MemDevice{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(store, Options{WAL: log, LockTimeoutMillis: 200})
	if err != nil {
		t.Fatal(err)
	}
	return db, store, log
}

func TestTxnCommit(t *testing.T) {
	db, _, _ := newLoggedDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	tx := db.Begin()
	id, err := tx.Insert(col, []byte(`<a>1</a>`))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !col.Has(id) {
		t.Error("committed doc missing")
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit should fail")
	}
}

func TestTxnRollbackInsert(t *testing.T) {
	db, _, _ := newLoggedDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	tx := db.Begin()
	id, _ := tx.Insert(col, []byte(`<a>1</a>`))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if col.Has(id) {
		t.Error("rolled-back insert still present")
	}
}

func TestTxnRollbackDeleteAndUpdates(t *testing.T) {
	db, _, _ := newLoggedDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.CreateValueIndex("ix", "//v", xml.TDouble)
	id, _ := col.Insert([]byte(`<r><p><v>1</v></p><q><v>2</v></q></r>`))

	tx := db.Begin()
	if err := tx.Delete(col, id); err != nil {
		t.Fatal(err)
	}
	if col.Has(id) {
		t.Fatal("delete did not take effect inside txn")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.Serialize(id, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != `<r><p><v>1</v></p><q><v>2</v></q></r>` {
		t.Errorf("after rollback: %s", buf.String())
	}
	// Indexes consistent after undo.
	hits, _, _ := col.Query("//p[v = 1]")
	if len(hits) != 1 {
		t.Errorf("index broken after rollback: %v", hits)
	}

	// Text update + subtree delete + fragment insert, all rolled back.
	tRes, _, _ := col.Query("//p/v/text()")
	qRes, _, _ := col.Query("/r/q")
	pRes, _, _ := col.Query("/r/p")
	tx2 := db.Begin()
	if err := tx2.UpdateText(col, id, tRes[0].Node, []byte("99")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.DeleteSubtree(col, id, qRes[0].Node); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.InsertFragment(col, id, pRes[0].Node, AfterNode, []byte(`<new/>`)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	col.Serialize(id, &buf)
	if buf.String() != `<r><p><v>1</v></p><q><v>2</v></q></r>` {
		t.Errorf("after complex rollback: %s", buf.String())
	}
}

func TestCrashRecoveryCommittedSurvives(t *testing.T) {
	store := pagestore.NewMemStore()
	log, _ := wal.Open(&wal.MemDevice{})
	db, err := Open(store, Options{WAL: log})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.CreateValueIndex("ix", "//v", xml.TDouble)
	db.Checkpoint()

	tx := db.Begin()
	id, _ := tx.Insert(col, []byte(`<r><v>42</v></r>`))
	tx.Commit()

	tx2 := db.Begin()
	id2, _ := tx2.Insert(col, []byte(`<r><v>666</v></r>`))
	// tx2 never commits: crash now. Pages were never flushed to the store.
	log.FlushAll()
	_ = id2

	db2, err := Recover(store, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col2, err := db2.Collection("c")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col2.Serialize(id, &buf); err != nil {
		t.Fatalf("committed doc lost: %v", err)
	}
	if buf.String() != `<r><v>42</v></r>` {
		t.Errorf("committed doc = %s", buf.String())
	}
	if col2.Has(id2) {
		t.Error("uncommitted doc survived recovery")
	}
	// Query via index works post-recovery.
	hits, _, err := col2.Query("/r[v = 42]")
	if err != nil || len(hits) != 1 {
		t.Errorf("post-recovery query: %v, %v", hits, err)
	}
	hits, _, _ = col2.Query("/r[v = 666]")
	if len(hits) != 0 {
		t.Error("uncommitted data visible via index after recovery")
	}
}

func TestCrashRecoveryUncommittedUpdateUndone(t *testing.T) {
	store := pagestore.NewMemStore()
	log, _ := wal.Open(&wal.MemDevice{})
	db, _ := Open(store, Options{WAL: log})
	col, _ := db.CreateCollection("c", CollectionOptions{})
	id, _ := col.Insert([]byte(`<r><v>old</v></r>`))
	db.Checkpoint()

	tRes, _, _ := col.Query("//v/text()")
	tx := db.Begin()
	if err := tx.UpdateText(col, id, tRes[0].Node, []byte("new")); err != nil {
		t.Fatal(err)
	}
	log.FlushAll() // crash before commit

	db2, err := Recover(store, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col2, _ := db2.Collection("c")
	var buf bytes.Buffer
	col2.Serialize(id, &buf)
	if buf.String() != `<r><v>old</v></r>` {
		t.Errorf("uncommitted update not undone: %s", buf.String())
	}
}

func TestDocLockConflict(t *testing.T) {
	db, _, _ := newLoggedDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	id, _ := col.Insert([]byte(`<a>1</a>`))

	tx1 := db.Begin()
	if err := tx1.UpdateText(col, id, mustTextNode(t, col, id), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A second writer times out on the X lock.
	tx2 := db.Begin()
	err := tx2.UpdateText(col, id, mustTextNode(t, col, id), []byte("y"))
	if !errors.Is(err, lock.ErrTimeout) {
		t.Errorf("expected lock timeout, got %v", err)
	}
	tx2.Rollback()
	tx1.Commit()
	// After release, a new writer proceeds.
	tx3 := db.Begin()
	if err := tx3.UpdateText(col, id, mustTextNode(t, col, id), []byte("z")); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
}

func mustTextNode(t *testing.T, col *Collection, id xml.DocID) []byte {
	t.Helper()
	res, _, err := col.Query("/a/text()")
	if err != nil || len(res) == 0 {
		t.Fatalf("text node: %v %v", res, err)
	}
	return res[0].Node
}

func TestConcurrentReaders(t *testing.T) {
	db, _, _ := newLoggedDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	id, _ := col.Insert([]byte(`<a><b>x</b></a>`))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := db.Begin()
				var buf bytes.Buffer
				if err := tx.Serialize(col, id, &buf); err != nil {
					t.Error(err)
				}
				tx.Commit()
			}
		}()
	}
	wg.Wait()
}
