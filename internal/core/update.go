package core

import (
	"bytes"
	"errors"
	"fmt"

	"rx/internal/btree"
	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/nodeindex"
	"rx/internal/pack"
	"rx/internal/quickxscan"
	"rx/internal/valueindex"
	"rx/internal/xml"
	"rx/internal/xmlparse"
)

// Subdocument updates (§3.1, §5.2). Node IDs are stable: deletions never
// relabel survivors and insertions take fresh IDs Between their siblings, so
// index entries for untouched nodes stay valid. The paper's LOB comparison
// is exactly this capability: a LOB column would rewrite the whole document.

// UpdateText replaces the value of a text or attribute node in place.
func (c *Collection) UpdateText(doc xml.DocID, id nodeid.ID, newValue []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	before, err := c.captureValueKeys(doc)
	if err != nil {
		return err
	}
	if c.meta.Versioned {
		if err := c.updateTextVersioned(doc, id, newValue); err != nil {
			return err
		}
		return c.reconcileValueKeys(doc, before)
	}
	rid, err := c.nodeIx.Lookup(doc, id)
	if err != nil {
		return fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	rec, err := c.fetchRecord(rid)
	if err != nil {
		return err
	}
	tops, err := rec.Mutable()
	if err != nil {
		return err
	}
	_, _, node, err := pack.FindMut(tops, rec.ContextID, id)
	if err != nil {
		return fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	if node.Kind != xml.Text && node.Kind != xml.Attribute {
		return fmt.Errorf("core: UpdateText target %s is a %v", id, node.Kind)
	}
	node.Value = append([]byte(nil), newValue...)
	if err := c.rewriteRecord(doc, rid, rec, tops); err != nil {
		return err
	}
	return c.reconcileValueKeys(doc, before)
}

// DeleteSubtree removes a node and its entire subtree. The document root
// element cannot be deleted (drop the document instead).
func (c *Collection) DeleteSubtree(doc xml.DocID, id nodeid.ID) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if len(id) == 0 || nodeid.Level(id) == 1 {
		return errors.New("core: cannot delete the document root; use Delete")
	}
	before, err := c.captureValueKeys(doc)
	if err != nil {
		return err
	}
	if c.meta.Versioned {
		if err := c.deleteSubtreeVersioned(doc, id); err != nil {
			return err
		}
		return c.reconcileValueKeys(doc, before)
	}
	rid0, err := c.nodeIx.Lookup(doc, id)
	if err != nil {
		return fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	rec0, err := c.fetchRecord(rid0)
	if err != nil {
		return err
	}
	tops, err := rec0.Mutable()
	if err != nil {
		return err
	}
	parent, idx, _, err := pack.FindMut(tops, rec0.ContextID, id)
	if err != nil {
		return fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}

	// Collect and remove all NodeID-index entries whose interval upper lies
	// inside the subtree; records other than rec0 referenced by them are
	// fully contained in the subtree and are dropped whole.
	type entry struct {
		upper nodeid.ID
		rid   heap.RID
	}
	var inside []entry
	err = c.nodeIx.Tree().Scan(nodeindex.Key(doc, id), nil, func(e btree.Entry) bool {
		d, upper, err := nodeindex.SplitKey(e.Key)
		if err != nil || d != doc || !nodeid.IsAncestorOrSelf(id, upper) {
			return false
		}
		inside = append(inside, entry{upper: nodeid.Clone(upper), rid: heap.RIDFromBytes(e.Value)})
		return true
	})
	if err != nil {
		return err
	}
	dropped := map[heap.RID]bool{}
	for _, e := range inside {
		if e.rid != rid0 && !dropped[e.rid] {
			if err := c.xmlTbl.Delete(e.rid); err != nil {
				return err
			}
			dropped[e.rid] = true
		}
		if err := c.nodeIx.Delete(doc, e.upper); err != nil && !errors.Is(err, btree.ErrNotFound) {
			return err
		}
	}

	// Remove the subtree from rec0.
	if parent == nil {
		tops = append(tops[:idx], tops[idx+1:]...)
	} else {
		parent.Children = append(parent.Children[:idx], parent.Children[idx+1:]...)
	}
	if len(tops) == 0 {
		// rec0 held only this subtree run: drop the record and remove (or
		// shrink) the proxy that referenced it from the parent's record.
		for _, u := range recordUppers(rec0) {
			if err := c.nodeIx.Delete(doc, u); err != nil && !errors.Is(err, btree.ErrNotFound) {
				return err
			}
		}
		if err := c.xmlTbl.Delete(rid0); err != nil {
			return err
		}
		if err := c.dropProxyFor(doc, id); err != nil {
			return err
		}
	} else {
		if err := c.rewriteRecord(doc, rid0, rec0, tops); err != nil {
			return err
		}
	}
	return c.reconcileValueKeys(doc, before)
}

// Position selects where an inserted fragment goes relative to its anchor.
type Position int

// Insertion positions.
const (
	// AsLastChild appends under the anchor element.
	AsLastChild Position = iota
	// BeforeNode inserts as the anchor's preceding sibling.
	BeforeNode
	// AfterNode inserts as the anchor's following sibling.
	AfterNode
)

// fragmentSite computes where a fragment inserted at (anchor, pos) goes: the
// parent node, the new node's relative ID, the parent's child entries, and
// the insertion site index (-1 = first child). It is read-only, so the new
// node's ID is known before the insertion touches any page — transactions
// rely on this to log the undo record ahead of the operation's effects.
// Caller holds writeMu.
func (c *Collection) fragmentSite(doc xml.DocID, anchor nodeid.ID, pos Position) (parentID nodeid.ID, newRel nodeid.Rel, sibs []childEntry, site int, err error) {
	switch pos {
	case AsLastChild:
		parentID = anchor
	default:
		parentID, err = nodeid.Parent(anchor)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		if nodeid.Equal(parentID, nodeid.Root) {
			return nil, nil, nil, 0, errors.New("core: cannot insert siblings of the document root")
		}
	}
	sibs, err = c.childEntries(doc, parentID)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	// Decide the new relative ID and the insertion site.
	var lo, hi nodeid.Rel
	site = -1 // index in sibs after which to insert (-1 = first)
	switch pos {
	case AsLastChild:
		if len(sibs) > 0 {
			lo = sibs[len(sibs)-1].rel
			site = len(sibs) - 1
		}
	case BeforeNode, AfterNode:
		aRel, err := nodeid.LastRel(anchor)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		ai := -1
		for i, s := range sibs {
			if bytes.Equal(s.rel, aRel) {
				ai = i
				break
			}
		}
		if ai < 0 {
			return nil, nil, nil, 0, fmt.Errorf("%w: anchor %s not found among siblings", ErrNotFound, anchor)
		}
		if pos == BeforeNode {
			hi = sibs[ai].rel
			if ai > 0 {
				lo = sibs[ai-1].rel
			}
			site = ai - 1
		} else {
			lo = sibs[ai].rel
			if ai+1 < len(sibs) {
				hi = sibs[ai+1].rel
			}
			site = ai
		}
	}
	newRel, err = nodeid.Between(lo, hi)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return parentID, newRel, sibs, site, nil
}

// planFragmentID predicts the node ID InsertFragment will assign for
// (anchor, pos), validating the fragment and the anchor without modifying
// anything. The prediction is exact: the ID depends only on the current
// sibling layout, which the caller's X document lock holds still.
func (c *Collection) planFragmentID(doc xml.DocID, anchor nodeid.ID, pos Position, fragment []byte) (nodeid.ID, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if _, err := xmlparse.Parse(fragment, c.db.cat, xmlparse.Options{}); err != nil {
		return nil, err
	}
	parentID, newRel, _, _, err := c.fragmentSite(doc, anchor, pos)
	if err != nil {
		return nil, err
	}
	return nodeid.Append(parentID, newRel), nil
}

// InsertFragment parses an XML fragment (one element) and inserts it at the
// given position relative to the anchor node.
func (c *Collection) InsertFragment(doc xml.DocID, anchor nodeid.ID, pos Position, fragment []byte) (nodeid.ID, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	before, err := c.captureValueKeys(doc)
	if err != nil {
		return nil, err
	}
	stream, err := xmlparse.Parse(fragment, c.db.cat, xmlparse.Options{})
	if err != nil {
		return nil, err
	}
	parentID, newRel, sibs, site, err := c.fragmentSite(doc, anchor, pos)
	if err != nil {
		return nil, err
	}
	sub, err := pack.BuildMutFromTokens(stream, newRel)
	if err != nil {
		return nil, err
	}
	newID := nodeid.Append(parentID, newRel)

	// Choose the record to edit: the record holding the neighbouring entry,
	// or the record holding the parent element for a first child.
	var rid heap.RID
	if site >= 0 {
		rid = sibs[site].rid
	} else if len(sibs) > 0 {
		rid = sibs[0].rid
	} else {
		rid, err = c.lookupCur(doc, parentID)
		if err != nil {
			return nil, fmt.Errorf("%w: parent %s", ErrNotFound, parentID)
		}
	}
	rec, err := c.fetchRecord(rid)
	if err != nil {
		return nil, err
	}
	tops, err := rec.Mutable()
	if err != nil {
		return nil, err
	}
	if err := insertMut(tops, rec, parentID, newRel, sub, func(newTops []*pack.MutNode) { tops = newTops }); err != nil {
		return nil, err
	}
	if c.meta.Versioned {
		if err := c.insertFragmentVersioned(doc, rid, rec, tops); err != nil {
			return nil, err
		}
	} else if err := c.rewriteRecord(doc, rid, rec, tops); err != nil {
		return nil, err
	}
	if err := c.reconcileValueKeys(doc, before); err != nil {
		return nil, err
	}
	return newID, nil
}

// insertMut places sub under parentID within the decoded record, keeping
// sibling order by relative ID.
func insertMut(tops []*pack.MutNode, rec *pack.Record, parentID nodeid.ID, newRel nodeid.Rel, sub *pack.MutNode, setTops func([]*pack.MutNode)) error {
	insertOrdered := func(list []*pack.MutNode) []*pack.MutNode {
		at := len(list)
		for i, m := range list {
			if bytes.Compare(m.Rel, newRel) > 0 {
				at = i
				break
			}
		}
		list = append(list, nil)
		copy(list[at+1:], list[at:])
		list[at] = sub
		return list
	}
	if nodeid.Equal(parentID, rec.ContextID) {
		setTops(insertOrdered(tops))
		return nil
	}
	_, _, parent, err := pack.FindMut(tops, rec.ContextID, parentID)
	if err != nil {
		return err
	}
	if parent.Kind != xml.Element {
		return fmt.Errorf("core: insert parent %s is a %v", parentID, parent.Kind)
	}
	parent.Children = insertOrdered(parent.Children)
	return nil
}

// childEntry is one child slot of a node, with the record that stores it.
type childEntry struct {
	rel     nodeid.Rel
	rid     heap.RID
	isProxy bool
}

// childEntries enumerates a node's child entries in order across records,
// resolving proxies to the records holding their runs.
func (c *Collection) childEntries(doc xml.DocID, parentID nodeid.ID) ([]childEntry, error) {
	rid, err := c.lookupCur(doc, parentID)
	if err != nil {
		if len(parentID) == 0 {
			return nil, lookupErr(err, fmt.Sprintf("document %d", doc))
		}
		return nil, lookupErr(err, fmt.Sprintf("node %s", parentID))
	}
	rec, err := c.fetchRecord(rid)
	if err != nil {
		return nil, err
	}
	var list func(rec *pack.Record, rid heap.RID, entries []pack.Node) ([]childEntry, error)
	collect := func(rec *pack.Record, rid heap.RID) ([]pack.Node, error) {
		var ns []pack.Node
		err := rec.Top(func(n pack.Node) (bool, error) {
			ns = append(ns, n)
			return true, nil
		})
		return ns, err
	}
	list = func(rec *pack.Record, rid heap.RID, entries []pack.Node) ([]childEntry, error) {
		var out []childEntry
		for _, n := range entries {
			if n.IsProxy() {
				childRID, err := c.lookupCur(doc, n.Abs)
				if err != nil {
					return nil, err
				}
				childRec, err := c.fetchRecord(childRID)
				if err != nil {
					return nil, err
				}
				subEntries, err := collect(childRec, childRID)
				if err != nil {
					return nil, err
				}
				subs, err := list(childRec, childRID, subEntries)
				if err != nil {
					return nil, err
				}
				out = append(out, subs...)
				continue
			}
			out = append(out, childEntry{rel: append(nodeid.Rel(nil), n.Rel...), rid: rid})
		}
		return out, nil
	}
	if nodeid.Equal(rec.ContextID, parentID) {
		entries, err := collect(rec, rid)
		if err != nil {
			return nil, err
		}
		return list(rec, rid, entries)
	}
	n, found, err := rec.Find(parentID)
	if err != nil || !found {
		return nil, fmt.Errorf("%w: node %s", ErrNotFound, parentID)
	}
	if n.Kind != xml.Element {
		return nil, fmt.Errorf("core: node %s is a %v, not an element", parentID, n.Kind)
	}
	var entries []pack.Node
	err = rec.Children(&n, func(cn pack.Node) (bool, error) {
		entries = append(entries, cn)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return list(rec, rid, entries)
}

// rewriteRecord re-encodes an edited record, updates its heap row, and
// refreshes its NodeID-index interval entries.
func (c *Collection) rewriteRecord(doc xml.DocID, rid heap.RID, rec *pack.Record, tops []*pack.MutNode) error {
	oldUppers := recordUppers(rec)
	payload := rec.Encode(tops)
	newRec, err := pack.Decode(payload)
	if err != nil {
		return err
	}
	newUppers, minID, err := newRec.Intervals()
	if err != nil {
		return err
	}
	if err := c.xmlTbl.Update(rid, xmlRow(doc, minID, payload)); err != nil {
		return err
	}
	for _, u := range oldUppers {
		if err := c.nodeIx.Delete(doc, u); err != nil && !errors.Is(err, btree.ErrNotFound) {
			return err
		}
	}
	for _, u := range newUppers {
		if err := c.nodeIx.Put(doc, u, rid); err != nil {
			return err
		}
	}
	return nil
}

// recordUppers computes a record's current interval upper endpoints.
func recordUppers(rec *pack.Record) []nodeid.ID {
	uppers, _, err := rec.Intervals()
	if err != nil {
		return nil
	}
	return uppers
}

// dropProxyFor removes (or shrinks) the proxy entry that covered the run a
// now-empty record used to hold. id is the first deleted subtree's ID.
func (c *Collection) dropProxyFor(doc xml.DocID, id nodeid.ID) error {
	parentID, err := nodeid.Parent(id)
	if err != nil {
		return err
	}
	rid, err := c.nodeIx.Lookup(doc, parentID)
	if err != nil {
		return nil // parent record may itself be gone (cascading delete)
	}
	rec, err := c.fetchRecord(rid)
	if err != nil {
		return err
	}
	tops, err := rec.Mutable()
	if err != nil {
		return err
	}
	rel, err := nodeid.LastRel(id)
	if err != nil {
		return err
	}
	removeProxy := func(list []*pack.MutNode) ([]*pack.MutNode, bool) {
		// The covering proxy is the last proxy with Rel <= rel.
		best := -1
		for i, m := range list {
			if m.Kind == xml.Proxy && bytes.Compare(m.Rel, rel) <= 0 {
				best = i
			}
		}
		if best < 0 {
			return list, false
		}
		if list[best].ProxyCount > 1 {
			list[best].ProxyCount--
			// The proxy may now start at a later subtree; its Rel is
			// advisory (resolution goes through the NodeID index), so it is
			// left unchanged.
			return list, true
		}
		return append(list[:best], list[best+1:]...), true
	}
	changed := false
	if nodeid.Equal(rec.ContextID, parentID) {
		tops, changed = removeProxy(tops)
	} else {
		_, _, parent, err := pack.FindMut(tops, rec.ContextID, parentID)
		if err == nil && parent != nil {
			parent.Children, changed = removeProxy(parent.Children)
		}
	}
	if !changed {
		return nil
	}
	return c.rewriteRecord(doc, rid, rec, tops)
}

// valueKeySnapshot is one index's (value, node) key set for a document.
type valueKeySnapshot struct {
	ov      *openValueIndex
	matches []quickxscan.Match
}

// captureValueKeys records every value index's keys for the document before
// an update.
func (c *Collection) captureValueKeys(doc xml.DocID) ([]valueKeySnapshot, error) {
	var out []valueKeySnapshot
	for _, ov := range c.valIxs {
		ms, err := c.evalStored(doc, ov.keygen)
		if err != nil {
			return nil, err
		}
		out = append(out, valueKeySnapshot{ov: ov, matches: ms})
	}
	return out, nil
}

// reconcileValueKeys diffs each index's keys after an update against the
// snapshot, applying only the changes.
func (c *Collection) reconcileValueKeys(doc xml.DocID, before []valueKeySnapshot) error {
	for _, snap := range before {
		after, err := c.evalStored(doc, snap.ov.keygen)
		if err != nil {
			return err
		}
		// Apply the diff by walking the eval-ordered slices (the maps are
		// membership sets only): index mutations must happen in a
		// history-determined order so fault schedules replay exactly.
		key := func(m quickxscan.Match) string { return string(m.ID) + "\x00" + string(m.Value) }
		oldSet := map[string]bool{}
		for _, m := range snap.matches {
			oldSet[key(m)] = true
		}
		newSet := map[string]bool{}
		for _, m := range after {
			newSet[key(m)] = true
		}
		for _, m := range snap.matches {
			if newSet[key(m)] {
				continue
			}
			err := snap.ov.ix.Delete(m.Value, doc, m.ID)
			if err != nil && !errors.Is(err, valueindex.ErrNotIndexable) && !errors.Is(err, btree.ErrNotFound) {
				return err
			}
		}
		for _, m := range after {
			if oldSet[key(m)] {
				continue
			}
			rid, err := c.lookupCur(doc, m.ID)
			if err != nil {
				return err
			}
			if err := snap.ov.ix.Put(m.Value, doc, m.ID, rid); err != nil && !errors.Is(err, valueindex.ErrNotIndexable) {
				return err
			}
		}
	}
	return nil
}
