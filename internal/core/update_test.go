package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rx/internal/xml"
)

func serializeStr(t *testing.T, col *Collection, id xml.DocID) string {
	t.Helper()
	var buf bytes.Buffer
	if err := col.Serialize(id, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestUpdateText(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.CreateValueIndex("ix", "//price", xml.TDouble)
	id, _ := col.Insert([]byte(`<r><p a="old"><price>10</price></p></r>`))

	res, _, _ := col.Query("//price/text()")
	if len(res) != 1 {
		t.Fatal("text node not found")
	}
	if err := col.UpdateText(id, res[0].Node, []byte("99")); err != nil {
		t.Fatal(err)
	}
	if got := serializeStr(t, col, id); got != `<r><p a="old"><price>99</price></p></r>` {
		t.Errorf("after UpdateText: %s", got)
	}
	// The value index reflects the change.
	hits, plan, _ := col.Query("/r/p[price = 99]")
	if len(hits) != 1 {
		t.Errorf("index stale after text update (plan %s): %v", plan.Method, hits)
	}
	hits, _, _ = col.Query("/r/p[price = 10]")
	if len(hits) != 0 {
		t.Errorf("old value still indexed: %v", hits)
	}

	// Attribute update.
	ares, _, _ := col.Query("//p/@a")
	if err := col.UpdateText(id, ares[0].Node, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got := serializeStr(t, col, id); !strings.Contains(got, `a="new"`) {
		t.Errorf("after attr update: %s", got)
	}
	// Element target is rejected.
	eres, _, _ := col.Query("//p")
	if err := col.UpdateText(id, eres[0].Node, []byte("x")); err == nil {
		t.Error("UpdateText on an element should fail")
	}
}

func TestDeleteSubtreeSimple(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.CreateValueIndex("ix", "//v", xml.TDouble)
	id, _ := col.Insert([]byte(`<r><a><v>1</v></a><b><v>2</v></b><c><v>3</v></c></r>`))

	res, _, _ := col.Query("/r/b")
	if err := col.DeleteSubtree(id, res[0].Node); err != nil {
		t.Fatal(err)
	}
	if got := serializeStr(t, col, id); got != `<r><a><v>1</v></a><c><v>3</v></c></r>` {
		t.Errorf("after delete: %s", got)
	}
	hits, _, _ := col.Query("/r/*[v = 2]")
	if len(hits) != 0 {
		t.Errorf("deleted subtree still queryable: %v", hits)
	}
	hits, _, _ = col.Query("/r/*[v = 3]")
	if len(hits) != 1 {
		t.Errorf("sibling lost: %v", hits)
	}
	// Root deletion is rejected.
	root, _, _ := col.Query("/r")
	if err := col.DeleteSubtree(id, root[0].Node); err == nil {
		t.Error("root deletion should be rejected")
	}
}

func TestDeleteSubtreeMultiRecord(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{PackThreshold: 400})
	var sb strings.Builder
	sb.WriteString("<r><head/>")
	sb.WriteString("<big>")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "<e>%040d</e>", i)
	}
	sb.WriteString("</big><tail/></r>")
	id, _ := col.Insert([]byte(sb.String()))

	rows0 := col.XMLTable().Count()
	res, _, _ := col.Query("/r/big")
	if len(res) != 1 {
		t.Fatal("big not found")
	}
	if err := col.DeleteSubtree(id, res[0].Node); err != nil {
		t.Fatal(err)
	}
	if got := serializeStr(t, col, id); got != `<r><head/><tail/></r>` {
		t.Errorf("after multi-record delete: %s", got)
	}
	rows1 := col.XMLTable().Count()
	if rows1 >= rows0 {
		t.Errorf("child records not reclaimed: %d -> %d", rows0, rows1)
	}
	// Remaining structure is fully navigable.
	hits, _, _ := col.Query("//e")
	if len(hits) != 0 {
		t.Errorf("descendants of deleted subtree remain: %d", len(hits))
	}
}

func TestInsertFragmentPositions(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	id, _ := col.Insert([]byte(`<r><a/><c/></r>`))

	cRes, _, _ := col.Query("/r/c")
	if _, err := col.InsertFragment(id, cRes[0].Node, BeforeNode, []byte(`<b>mid</b>`)); err != nil {
		t.Fatal(err)
	}
	if got := serializeStr(t, col, id); got != `<r><a/><b>mid</b><c/></r>` {
		t.Errorf("BeforeNode: %s", got)
	}

	aRes, _, _ := col.Query("/r/a")
	if _, err := col.InsertFragment(id, aRes[0].Node, BeforeNode, []byte(`<first/>`)); err != nil {
		t.Fatal(err)
	}
	if got := serializeStr(t, col, id); got != `<r><first/><a/><b>mid</b><c/></r>` {
		t.Errorf("Before first: %s", got)
	}

	cRes, _, _ = col.Query("/r/c")
	if _, err := col.InsertFragment(id, cRes[0].Node, AfterNode, []byte(`<last x="1"/>`)); err != nil {
		t.Fatal(err)
	}
	if got := serializeStr(t, col, id); got != `<r><first/><a/><b>mid</b><c/><last x="1"/></r>` {
		t.Errorf("AfterNode: %s", got)
	}

	// AsLastChild under an inner element.
	bRes, _, _ := col.Query("/r/b")
	newID, err := col.InsertFragment(id, bRes[0].Node, AsLastChild, []byte(`<sub>deep</sub>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := serializeStr(t, col, id); got != `<r><first/><a/><b>mid<sub>deep</sub></b><c/><last x="1"/></r>` {
		t.Errorf("AsLastChild: %s", got)
	}
	v, err := col.NodeString(id, newID)
	if err != nil || string(v) != "deep" {
		t.Errorf("new node value = %q, %v", v, err)
	}
}

func TestInsertFragmentMaintainsIndexes(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	col.CreateValueIndex("ix", "/r/item/price", xml.TDouble)
	id, _ := col.Insert([]byte(`<r><item><price>10</price></item></r>`))

	root, _, _ := col.Query("/r")
	if _, err := col.InsertFragment(id, root[0].Node, AsLastChild, []byte(`<item><price>55</price></item>`)); err != nil {
		t.Fatal(err)
	}
	hits, plan, err := col.Query("/r/item[price = 55]")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method == "scan" {
		t.Errorf("index not used: %s", plan.Method)
	}
	if len(hits) != 1 {
		t.Errorf("inserted item not indexed: %v", hits)
	}
}

func TestManySiblingInsertions(t *testing.T) {
	// Repeated insertion at the same position exercises Between-based ID
	// assignment: IDs must stay ordered and unique with no relabeling.
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{})
	id, _ := col.Insert([]byte(`<r><a/><z/></r>`))
	aRes, _, _ := col.Query("/r/a")
	anchor := aRes[0].Node
	for i := 0; i < 40; i++ {
		if _, err := col.InsertFragment(id, anchor, AfterNode, []byte(fmt.Sprintf("<m i=\"%d\"/>", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	got := serializeStr(t, col, id)
	// Inserting after <a/> each time reverses the order: 39, 38, ..., 0.
	for i := 0; i < 39; i++ {
		hi := fmt.Sprintf(`i="%d"`, 39-i)
		lo := fmt.Sprintf(`i="%d"`, 38-i)
		if strings.Index(got, hi) > strings.Index(got, lo) {
			t.Fatalf("sibling order wrong around %d: %s", i, got)
		}
	}
	res, _, _ := col.Query("//m")
	if len(res) != 40 {
		t.Errorf("got %d m elements", len(res))
	}
}

func TestUpdateOnMultiRecordDocument(t *testing.T) {
	db := newDB(t)
	col, _ := db.CreateCollection("c", CollectionOptions{PackThreshold: 300})
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 80; i++ {
		fmt.Fprintf(&sb, "<e k=\"%d\">%030d</e>", i, i)
	}
	sb.WriteString("</r>")
	id, _ := col.Insert([]byte(sb.String()))

	// Update a text deep in some middle record.
	res, _, _ := col.Query(`//e[@k = '40']/text()`)
	if len(res) != 1 {
		t.Fatalf("text not found: %v", res)
	}
	if err := col.UpdateText(id, res[0].Node, []byte("CHANGED")); err != nil {
		t.Fatal(err)
	}
	got := serializeStr(t, col, id)
	if !strings.Contains(got, `<e k="40">CHANGED</e>`) {
		t.Error("update lost")
	}
	// Insert a sibling in the middle.
	eRes, _, _ := col.Query(`//e[@k = '40']`)
	if _, err := col.InsertFragment(id, eRes[0].Node, AfterNode, []byte(`<inserted/>`)); err != nil {
		t.Fatal(err)
	}
	got = serializeStr(t, col, id)
	if !strings.Contains(got, `CHANGED</e><inserted/>`) {
		t.Errorf("mid-record insert misplaced: %.200s", got)
	}
	// Document still has all elements.
	all, _, _ := col.Query("//e")
	if len(all) != 80 {
		t.Errorf("element count = %d", len(all))
	}
}
