// Package dom builds an in-memory tree from a token stream. It exists as
// the baseline the paper measures QuickXScan against ("orders of magnitude
// better than some DOM-based algorithm", §4.2): materialize everything,
// then navigate. Node IDs are assigned exactly as the packer assigns them,
// so DOM-based results are comparable node-for-node with streaming and
// stored evaluation.
package dom

import (
	"errors"

	"rx/internal/nodeid"
	"rx/internal/tokens"
	"rx/internal/xml"
)

// Node is one node of the in-memory tree.
type Node struct {
	Kind   xml.Kind
	Name   xml.QName // element/attribute name; PI target; ns prefix in Local
	Value  []byte
	Type   xml.TypeID
	ID     nodeid.ID
	Parent *Node
	// Attrs holds attribute and namespace nodes; Kids holds element, text,
	// comment and PI children. Both are in document order.
	Attrs []*Node
	Kids  []*Node
}

// Build materializes a token stream into a document node.
func Build(stream []byte) (*Node, error) {
	r := tokens.NewReader(stream)
	var doc *Node
	var stack []*Node
	var counters []int
	alloc := func() nodeid.ID {
		parent := stack[len(stack)-1]
		rel := nodeid.RelAt(counters[len(counters)-1])
		counters[len(counters)-1]++
		return nodeid.Append(parent.ID, rel)
	}
	for r.More() {
		t, err := r.Next()
		if err != nil {
			return nil, err
		}
		switch t.Kind {
		case tokens.StartDocument:
			doc = &Node{Kind: xml.Document, ID: nodeid.Root}
			stack = append(stack[:0], doc)
			counters = append(counters[:0], 0)
		case tokens.EndDocument:
			if len(stack) != 1 {
				return nil, errors.New("dom: unbalanced document")
			}
			return doc, nil
		case tokens.StartElement:
			n := &Node{Kind: xml.Element, Name: t.Name, ID: alloc(), Parent: stack[len(stack)-1]}
			n.Parent.Kids = append(n.Parent.Kids, n)
			stack = append(stack, n)
			counters = append(counters, 0)
		case tokens.EndElement:
			stack = stack[:len(stack)-1]
			counters = counters[:len(counters)-1]
		case tokens.Attr:
			n := &Node{Kind: xml.Attribute, Name: t.Name, Value: append([]byte(nil), t.Value...),
				Type: t.Type, ID: alloc(), Parent: stack[len(stack)-1]}
			n.Parent.Attrs = append(n.Parent.Attrs, n)
		case tokens.NSDecl:
			n := &Node{Kind: xml.Namespace, Name: xml.QName{URI: t.URI, Local: t.Prefix},
				ID: alloc(), Parent: stack[len(stack)-1]}
			n.Parent.Attrs = append(n.Parent.Attrs, n)
		case tokens.Text:
			n := &Node{Kind: xml.Text, Value: append([]byte(nil), t.Value...), Type: t.Type,
				ID: alloc(), Parent: stack[len(stack)-1]}
			n.Parent.Kids = append(n.Parent.Kids, n)
		case tokens.Comment:
			n := &Node{Kind: xml.Comment, Value: append([]byte(nil), t.Value...),
				ID: alloc(), Parent: stack[len(stack)-1]}
			n.Parent.Kids = append(n.Parent.Kids, n)
		case tokens.PI:
			n := &Node{Kind: xml.ProcessingInstruction, Name: t.Name,
				Value: append([]byte(nil), t.Value...), ID: alloc(), Parent: stack[len(stack)-1]}
			n.Parent.Kids = append(n.Parent.Kids, n)
		}
	}
	return nil, errors.New("dom: stream ended before EndDocument")
}

// StringValue computes the node's XPath string value: the attribute/text
// value, or the concatenation of all descendant text for elements and
// documents.
func (n *Node) StringValue() []byte {
	switch n.Kind {
	case xml.Attribute, xml.Text, xml.Comment, xml.ProcessingInstruction, xml.Namespace:
		return n.Value
	}
	var out []byte
	var rec func(*Node)
	rec = func(x *Node) {
		if x.Kind == xml.Text {
			out = append(out, x.Value...)
			return
		}
		for _, k := range x.Kids {
			rec(k)
		}
	}
	rec(n)
	return out
}

// Walk visits the subtree in document order (attributes and namespace nodes
// before element content).
func (n *Node) Walk(fn func(*Node) bool) bool {
	if n.Kind != xml.Document {
		if !fn(n) {
			return false
		}
	}
	for _, a := range n.Attrs {
		if !fn(a) {
			return false
		}
	}
	for _, k := range n.Kids {
		if !k.Walk(fn) {
			return false
		}
	}
	return true
}

// CountNodes counts the nodes in the subtree (excluding the document node).
func (n *Node) CountNodes() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}
