package dom

import (
	"testing"

	"rx/internal/nodeid"
	"rx/internal/xml"
	"rx/internal/xmlparse"
)

func build(t *testing.T, doc string) (*Node, *xml.Dict) {
	t.Helper()
	dict := xml.NewDict()
	stream, err := xmlparse.Parse([]byte(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(stream)
	if err != nil {
		t.Fatal(err)
	}
	return tree, dict
}

func TestBuildStructure(t *testing.T) {
	tree, dict := build(t, `<a x="1"><b>hi</b><!--c--><?p d?></a>`)
	if tree.Kind != xml.Document || len(tree.Kids) != 1 {
		t.Fatalf("doc = %+v", tree)
	}
	a := tree.Kids[0]
	name, _ := dict.Lookup(a.Name.Local)
	if a.Kind != xml.Element || name != "a" {
		t.Fatalf("root = %+v", a)
	}
	if len(a.Attrs) != 1 || string(a.Attrs[0].Value) != "1" {
		t.Errorf("attrs = %+v", a.Attrs)
	}
	if len(a.Kids) != 3 {
		t.Fatalf("kids = %d", len(a.Kids))
	}
	if a.Kids[1].Kind != xml.Comment || a.Kids[2].Kind != xml.ProcessingInstruction {
		t.Errorf("kid kinds: %v %v", a.Kids[1].Kind, a.Kids[2].Kind)
	}
	if a.Kids[0].Parent != a || a.Attrs[0].Parent != a {
		t.Error("parent links broken")
	}
}

func TestIDsMatchPacker(t *testing.T) {
	tree, _ := build(t, `<a x="1"><b>hi</b></a>`)
	a := tree.Kids[0]
	if !nodeid.Equal(a.ID, nodeid.ID{0x02}) {
		t.Errorf("a.ID = %s", a.ID)
	}
	if !nodeid.Equal(a.Attrs[0].ID, nodeid.ID{0x02, 0x02}) {
		t.Errorf("@x.ID = %s", a.Attrs[0].ID)
	}
	if !nodeid.Equal(a.Kids[0].ID, nodeid.ID{0x02, 0x04}) {
		t.Errorf("b.ID = %s", a.Kids[0].ID)
	}
	if !nodeid.Equal(a.Kids[0].Kids[0].ID, nodeid.ID{0x02, 0x04, 0x02}) {
		t.Errorf("text.ID = %s", a.Kids[0].Kids[0].ID)
	}
}

func TestStringValue(t *testing.T) {
	tree, _ := build(t, `<a>one <b>two</b> three</a>`)
	if got := string(tree.Kids[0].StringValue()); got != "one two three" {
		t.Errorf("StringValue = %q", got)
	}
	b := tree.Kids[0].Kids[1]
	if got := string(b.StringValue()); got != "two" {
		t.Errorf("b StringValue = %q", got)
	}
}

func TestWalkAndCount(t *testing.T) {
	tree, _ := build(t, `<a x="1"><b>t</b><c/></a>`)
	// a, @x, b, text, c = 5
	if n := tree.CountNodes(); n != 5 {
		t.Errorf("CountNodes = %d", n)
	}
	var kinds []xml.Kind
	tree.Walk(func(n *Node) bool {
		kinds = append(kinds, n.Kind)
		return true
	})
	want := []xml.Kind{xml.Element, xml.Attribute, xml.Element, xml.Text, xml.Element}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("kind %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Early stop.
	n := 0
	tree.Walk(func(*Node) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop at %d", n)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]byte{0xEE}); err == nil {
		t.Error("garbage stream should fail")
	}
}
