// Package experiments implements the reproduction of every evaluation
// artifact in the paper (see DESIGN.md's per-experiment index, E1–E12).
// Each experiment returns a Table that cmd/rxbench renders; the root-level
// benchmarks drive the same code through testing.B.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"rx/internal/buffer"
	"rx/internal/core"
	"rx/internal/dom"
	"rx/internal/nodeid"
	"rx/internal/pagestore"
	"rx/internal/quickxscan"
	"rx/internal/shred"
	"rx/internal/xml"
	"rx/internal/xmlgen"
	"rx/internal/xmlparse"
	"rx/internal/xpath"
	"rx/internal/xpathdom"
	"rx/internal/xpathnaive"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being checked
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render prints the table in aligned text form.
func (t *Table) Render(w *strings.Builder) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "paper: %s\n", t.Claim)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "  %-*s", widths[i], c)
		}
		w.WriteString("\n")
	}
	line(t.Headers)
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	w.WriteString("\n")
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func i0(v int) string     { return fmt.Sprintf("%d", v) }
func dms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// buildPacked loads one Shaped(k, n) document into a fresh collection with
// the given pack threshold, returning the collection and its DocID.
func buildPacked(k, n, threshold int) (*core.DB, *core.Collection, xml.DocID, error) {
	db, err := core.OpenMemory()
	if err != nil {
		return nil, nil, 0, err
	}
	col, err := db.CreateCollection("e", core.CollectionOptions{PackThreshold: threshold})
	if err != nil {
		return nil, nil, 0, err
	}
	id, err := col.Insert(xmlgen.Shaped(k, n))
	if err != nil {
		return nil, nil, 0, err
	}
	return db, col, id, nil
}

// E1 reproduces the §3.1 storage model: bytes and NodeID-index entries per
// node as the packing factor grows, against the one-node-per-row baseline.
func E1(k, n int) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("storage vs packing factor (k=%d elements, n=%d-byte values)", k, n),
		Claim:   "packed storage ≈ k(n + h/p) vs node-per-row k(n+h); index entries ≤ 2k/p vs k (§3.1)",
		Headers: []string{"scheme", "threshold", "records", "p=nodes/rec", "heap KiB", "index entries", "entries/node", "total store KiB", "total bytes/node"},
	}
	nodes := 2*k + 1 // elements + text nodes + root

	// Baseline: one node per row.
	pool := buffer.New(pagestore.NewMemStore(), 1<<14)
	ss, err := shred.Create(pool)
	if err != nil {
		return nil, err
	}
	dict := xml.NewDict()
	stream, err := xmlparse.Parse(xmlgen.Shaped(k, n), dict, xmlparse.Options{})
	if err != nil {
		return nil, err
	}
	sn, err := ss.Insert(1, stream)
	if err != nil {
		return nil, err
	}
	_, sPages, sEntries, err := ss.Stats()
	if err != nil {
		return nil, err
	}
	sBytes := sPages * pagestore.PageSize
	sTotal := int(pool.Store().NumPages()) * pagestore.PageSize
	t.Rows = append(t.Rows, []string{
		"node-per-row", "-", i0(sn), "1.0", i0(sBytes / 1024),
		i0(sEntries), f2(float64(sEntries) / float64(sn)),
		i0(sTotal / 1024), f1(float64(sTotal) / float64(sn)),
	})

	for _, th := range []int{200, 400, 800, 1600, 3200, 7700} {
		db, col, _, err := buildPacked(k, n, th)
		if err != nil {
			return nil, err
		}
		recs := int(col.XMLTable().Count())
		pages, err := col.XMLTable().Pages()
		if err != nil {
			return nil, err
		}
		entries, err := col.NodeIndex().Count()
		if err != nil {
			return nil, err
		}
		bytes := pages * pagestore.PageSize
		total := int(db.Pool().Store().NumPages()) * pagestore.PageSize
		t.Rows = append(t.Rows, []string{
			"tree-packed", i0(th), i0(recs), f1(float64(nodes) / float64(recs)),
			i0(bytes / 1024),
			i0(entries), f2(float64(entries) / float64(nodes)),
			i0(total / 1024), f1(float64(total) / float64(nodes)),
		})
	}
	t.Notes = append(t.Notes,
		"index entries fall as ~2/p vs 1 per node; the total store (heap + B+tree) shows the full k·h/p vs k·h gap")
	return t, nil
}

// nodeCounter counts nodes during a stored-document walk.
type nodeCounter struct{ nodes int }

func (h *nodeCounter) StartDocument() error                           { return nil }
func (h *nodeCounter) EndDocument() error                             { return nil }
func (h *nodeCounter) StartElement(xml.QName, nodeid.ID) error        { h.nodes++; return nil }
func (h *nodeCounter) EndElement(nodeid.ID) error                     { return nil }
func (h *nodeCounter) NSDecl(xml.NameID, xml.NameID, nodeid.ID) error { h.nodes++; return nil }
func (h *nodeCounter) Attribute(xml.QName, []byte, xml.TypeID, nodeid.ID) error {
	h.nodes++
	return nil
}
func (h *nodeCounter) Text([]byte, xml.TypeID, nodeid.ID) error { h.nodes++; return nil }
func (h *nodeCounter) Comment([]byte, nodeid.ID) error          { h.nodes++; return nil }
func (h *nodeCounter) PI(xml.NameID, []byte, nodeid.ID) error   { h.nodes++; return nil }

// E2 reproduces the §3.1 traversal model: full-document traversal time per
// node for packed storage vs the per-node-join baseline (ratio ≈ 1/p).
func E2(k, n, iters int) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("document-order traversal (k=%d elements, n=%d-byte values)", k, n),
		Claim:   "packed traversal ≈ k·t/p vs node-per-row k·t: the larger p, the cheaper (§3.1)",
		Headers: []string{"scheme", "threshold", "p=nodes/rec", "ns/node", "speedup vs node-per-row"},
	}
	nodes := 2*k + 1

	// Baseline.
	pool := buffer.New(pagestore.NewMemStore(), 1<<14)
	ss, err := shred.Create(pool)
	if err != nil {
		return nil, err
	}
	dict := xml.NewDict()
	stream, _ := xmlparse.Parse(xmlgen.Shaped(k, n), dict, xmlparse.Options{})
	if _, err := ss.Insert(1, stream); err != nil {
		return nil, err
	}
	start := time.Now()
	for it := 0; it < iters; it++ {
		count := 0
		if err := ss.Traverse(1, func(shred.Node) error { count++; return nil }); err != nil {
			return nil, err
		}
	}
	baseNs := float64(time.Since(start).Nanoseconds()) / float64(iters*nodes)
	t.Rows = append(t.Rows, []string{"node-per-row", "-", "1.0", f1(baseNs), "1.0x"})

	for _, th := range []int{200, 800, 3200, 7700} {
		_, col, id, err := buildPacked(k, n, th)
		if err != nil {
			return nil, err
		}
		recs := int(col.XMLTable().Count())
		start := time.Now()
		for it := 0; it < iters; it++ {
			h := &nodeCounter{}
			if err := col.WalkDoc(id, h); err != nil {
				return nil, err
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters*nodes)
		t.Rows = append(t.Rows, []string{
			"tree-packed", i0(th), f1(float64(nodes) / float64(recs)),
			f1(ns), fmt.Sprintf("%.1fx", baseNs/ns),
		})
	}
	return t, nil
}

// E3 reproduces the §3.1 update model: single-node update cost vs packing
// factor (touched bytes ≈ p·n).
func E3(k, n, updates int) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("single text-node update (k=%d elements, n=%d-byte values)", k, n),
		Claim:   "updating one node touches ~p·n bytes under packing vs n per node-per-row; 'touching a relatively large size may not be too bad, since the I/O unit is a page' (§3.1)",
		Headers: []string{"threshold", "p=nodes/rec", "avg record bytes", "µs/update"},
	}
	rng := rand.New(rand.NewSource(9))
	for _, th := range []int{200, 800, 3200, 7700} {
		_, col, id, err := buildPacked(k, n, th)
		if err != nil {
			return nil, err
		}
		recs := int(col.XMLTable().Count())
		pages, _ := col.XMLTable().Pages()
		res, _, err := col.Query("/r/e/text()")
		if err != nil {
			return nil, err
		}
		newVal := []byte(strings.Repeat("w", n))
		start := time.Now()
		for u := 0; u < updates; u++ {
			target := res[rng.Intn(len(res))]
			if err := col.UpdateText(id, target.Node, newVal); err != nil {
				return nil, err
			}
		}
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			i0(th), f1(float64(2*k+1) / float64(recs)),
			i0(pages * pagestore.PageSize / recs),
			f2(float64(el.Microseconds()) / float64(updates)),
		})
	}
	t.Notes = append(t.Notes, "update cost grows with record size (decode+re-encode of the packed record), the counter-factor of §3.1")
	return t, nil
}

// E4 reproduces the §4.2 linearity claim: QuickXScan elapsed time vs
// document size for a fixed query.
func E4() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "QuickXScan elapsed time vs document size |D|",
		Claim:   "linear performance with regard to the document size (§4.2: O(|Q|·r·|D|), small r)",
		Headers: []string{"products", "stream KiB", "ms/scan", "ns/KiB"},
	}
	dict := xml.NewDict()
	q, _ := xpath.Parse("/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.1]/ProductName")
	e, err := quickxscan.Compile(q, dict, nil, quickxscan.Options{})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(3))
	for _, products := range []int{500, 2000, 8000, 32000} {
		doc := xmlgen.Catalog(rng, products, 200)
		stream, err := xmlparse.Parse(doc, dict, xmlparse.Options{})
		if err != nil {
			return nil, err
		}
		iters := 3
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := quickxscan.EvalTokens(e, stream); err != nil {
				return nil, err
			}
		}
		el := time.Since(start) / time.Duration(iters)
		t.Rows = append(t.Rows, []string{
			i0(products), i0(len(stream) / 1024), dms(el),
			f1(float64(el.Nanoseconds()) / (float64(len(stream)) / 1024)),
		})
	}
	t.Notes = append(t.Notes, "ns/KiB stays flat across a 64x size range = linear scaling")
	return t, nil
}

// E5 reproduces Figure 7: live matching state of QuickXScan vs the
// state-set automaton baseline on //a//a//a over recursive documents.
func E5() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "active matching state on //a//a//a vs recursion degree r (Figure 7)",
		Claim:   "QuickXScan keeps O(|Q|·r) matching instances; automata keep 'potentially exponential' active states (§4.2, Fig. 7)",
		Headers: []string{"recursion r", "QuickXScan max live", "naive automaton max active", "ratio"},
	}
	dict := xml.NewDict()
	q, _ := xpath.Parse("//a//a//a")
	qe, err := quickxscan.Compile(q, dict, nil, quickxscan.Options{})
	if err != nil {
		return nil, err
	}
	ne, err := xpathnaive.Compile(q, dict, nil)
	if err != nil {
		return nil, err
	}
	for _, r := range []int{2, 4, 8, 16, 32, 64} {
		stream, _ := xmlparse.Parse(xmlgen.Recursive(r), dict, xmlparse.Options{})
		if _, err := quickxscan.EvalTokens(qe, stream); err != nil {
			return nil, err
		}
		if _, err := ne.EvalTokens(stream); err != nil {
			return nil, err
		}
		ql := qe.Stats().MaxLive
		nl := ne.Stats().MaxActive
		t.Rows = append(t.Rows, []string{i0(r), i0(ql), i0(nl), f1(float64(nl) / float64(ql))})
	}
	t.Notes = append(t.Notes, "QuickXScan grows linearly in r; the automaton's state set grows superlinearly (polynomial of degree |Q|)")
	return t, nil
}

// E6 reproduces the §4.2 comparison: QuickXScan vs the naive streaming
// automaton vs DOM-based evaluation, in elapsed time and allocated memory,
// over both a flat catalog and a recursive document.
func E6(products int) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("evaluator comparison (catalog with %d products; recursive document r=192)", products),
		Claim:   "QuickXScan outperforms streaming automata in elapsed time and memory and is orders of magnitude better than DOM-based evaluation once materialization is paid (§4.2)",
		Headers: []string{"workload / query", "evaluator", "ms", "alloc MiB"},
	}
	dict := xml.NewDict()
	rng := rand.New(rand.NewSource(13))
	catalog, err := xmlparse.Parse(xmlgen.Catalog(rng, products, 1000), dict, xmlparse.Options{})
	if err != nil {
		return nil, err
	}
	recursive, err := xmlparse.Parse(xmlgen.Recursive(192), dict, xmlparse.Options{})
	if err != nil {
		return nil, err
	}

	measure := func(iters int, fn func() error) (time.Duration, float64, error) {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return 0, 0, err
			}
		}
		el := time.Since(start) / time.Duration(iters)
		runtime.ReadMemStats(&ms1)
		alloc := float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters) / (1 << 20)
		return el, alloc, nil
	}

	type workload struct {
		name   string
		stream []byte
		query  string
		iters  int
	}
	workloads := []workload{
		{"catalog //Product[RegPrice > 500]/ProductName", catalog, "//Product[RegPrice > 500]/ProductName", 5},
		{"catalog /Catalog/Categories/Product/RegPrice", catalog, "/Catalog/Categories/Product/RegPrice", 5},
		{"recursive //a//a//a (r=192)", recursive, "//a//a//a", 5},
	}
	for _, wl := range workloads {
		q, err := xpath.Parse(wl.query)
		if err != nil {
			return nil, err
		}
		qe, err := quickxscan.Compile(q, dict, nil, quickxscan.Options{})
		if err != nil {
			return nil, err
		}
		el, al, err := measure(wl.iters, func() error {
			_, err := quickxscan.EvalTokens(qe, wl.stream)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{wl.name, "QuickXScan", dms(el), f2(al)})

		if ne, err := xpathnaive.Compile(q, dict, nil); err == nil {
			el, al, err := measure(wl.iters, func() error {
				_, err := ne.EvalTokens(wl.stream)
				return err
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{"", "naive state-set automaton", dms(el), f2(al)})
		} else {
			t.Rows = append(t.Rows, []string{"", "naive state-set automaton", "n/a (predicates unsupported)", "-"})
		}

		ce, err := xpathdom.Compile(q, dict, nil)
		if err != nil {
			return nil, err
		}
		el, al, err = measure(wl.iters, func() error {
			tree, err := dom.Build(wl.stream)
			if err != nil {
				return err
			}
			ce.Evaluate(tree)
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"", "DOM (materialize + navigate)", dms(el), f2(al)})
	}
	t.Notes = append(t.Notes,
		"QuickXScan needs no materialization (DOM allocates the whole tree per evaluation) and no state-set growth (the automaton's states explode on the recursive document)")
	return t, nil
}
