package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rx/internal/construct"
	"rx/internal/core"
	"rx/internal/dom"
	"rx/internal/lock"
	"rx/internal/nodeid"
	"rx/internal/pack"
	"rx/internal/pagestore"
	"rx/internal/quickxscan"
	"rx/internal/serialize"
	"rx/internal/tokens"
	"rx/internal/wal"
	"rx/internal/xml"
	"rx/internal/xmlgen"
	"rx/internal/xmlparse"
	"rx/internal/xmlschema"
	"rx/internal/xpath"
)

// E7 reproduces Table 2: the three index access methods against the scan
// baseline, over a selectivity sweep.
func E7(docs, productsPerDoc int) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("access methods over %d catalog docs × %d products (Table 2)", docs, productsPerDoc),
		Claim:   "value indexes identify a small candidate set: DocID/NodeID list for exact matches, filtering for containment, ANDing/ORing for multiple predicates (§4.3, Table 2)",
		Headers: []string{"query", "selectivity", "method", "exact", "candidates", "results", "ms"},
	}
	db, err := core.OpenMemory()
	if err != nil {
		return nil, err
	}
	col, err := db.CreateCollection("cat", core.CollectionOptions{})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(21))
	for d := 0; d < docs; d++ {
		if _, err := col.Insert(xmlgen.Catalog(rng, productsPerDoc, 1000)); err != nil {
			return nil, err
		}
	}
	queries := []struct {
		q   string
		sel string
	}{
		{`/Catalog/Categories/Product[RegPrice > 990]`, "~1%"},
		{`/Catalog/Categories/Product[RegPrice > 900]`, "~10%"},
		{`/Catalog/Categories/Product[RegPrice > 500]`, "~50%"},
		{`/Catalog/Categories/Product[Discount > 0.2]`, "~25%"},
		{`/Catalog/Categories/Product[RegPrice > 900 and Discount > 0.2]`, "~2.5%"},
		{`/Catalog/Categories/Product[RegPrice > 990 or Discount > 0.2]`, "~26%"},
	}
	run := func(label string) error {
		for _, qs := range queries {
			start := time.Now()
			results, plan, err := col.Query(qs.q)
			if err != nil {
				return err
			}
			el := time.Since(start)
			t.Rows = append(t.Rows, []string{
				qs.q, qs.sel, plan.Method, fmt.Sprint(plan.Exact),
				i0(plan.CandidateDocs), i0(len(results)), dms(el),
			})
		}
		_ = label
		return nil
	}
	// Scan baseline (no indexes yet).
	if err := run("scan"); err != nil {
		return nil, err
	}
	if err := col.CreateValueIndex("ix_regprice", "/Catalog/Categories/Product/RegPrice", xml.TDouble); err != nil {
		return nil, err
	}
	if err := col.CreateValueIndex("ix_discount", "//Discount", xml.TDouble); err != nil {
		return nil, err
	}
	if err := run("indexed"); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "first block: scan (no indexes); second block: index access — the gap widens as selectivity sharpens")
	return t, nil
}

// E8 reproduces the Figure-5 constructor optimization: tagging templates vs
// naive per-row tree materialization, and XMLAGG's in-memory quicksort.
func E8(rows int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("constructor functions over %d rows (Figure 5)", rows),
		Claim:   "flattened tagging templates avoid repeating tagging per row — 'very effective for generating XML for large numbers of repeated rows or XMLAGG' (§4.1)",
		Headers: []string{"strategy", "ms total", "µs/row", "allocs/row", "output KiB"},
	}
	dict := xml.NewDict()
	expr := construct.Element("Emp",
		construct.Attributes(construct.Attr("id", 0), construct.Attr("name", 1)),
		construct.Forest(construct.As("hire", 2), construct.As("department", 3)),
	)
	tpl, err := construct.Compile(expr, dict)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(17))
	data := make([]construct.Row, rows)
	keys := make([][]byte, rows)
	for i := range data {
		name := xmlgen.ProductName(rng)
		data[i] = construct.Row{
			[]byte(fmt.Sprint(rng.Intn(100000))), []byte(name),
			[]byte("2004-05-24"), []byte("Accounting"),
		}
		keys[i] = []byte(name)
	}

	allocsPerRow := func(fn func() error) (time.Duration, float64, error) {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := fn(); err != nil {
			return 0, 0, err
		}
		el := time.Since(start)
		runtime.ReadMemStats(&m1)
		return el, float64(m1.Mallocs-m0.Mallocs) / float64(rows), nil
	}

	// Template path: one shared template, (template, args) intermediates.
	var out bytes.Buffer
	tplTime, tplAllocs, err := allocsPerRow(func() error {
		s := serialize.New(&out, dict)
		for _, row := range data {
			if _, err := tpl.Emit(s, row, nil, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"tagging template", dms(tplTime),
		f2(float64(tplTime.Microseconds()) / float64(rows)), f1(tplAllocs), i0(out.Len() / 1024)})

	// Naive path: build a DOM subtree per row (copies + per-node allocs),
	// then serialize it.
	var out2 bytes.Buffer
	naiveTime, naiveAllocs, err := allocsPerRow(func() error {
		s2 := serialize.New(&out2, dict)
		for _, row := range data {
			n, err := naiveEmpNode(dict, row)
			if err != nil {
				return err
			}
			if err := vsaxFromDOM(n, s2); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"per-row tree materialization", dms(naiveTime),
		f2(float64(naiveTime.Microseconds()) / float64(rows)), f1(naiveAllocs), i0(out2.Len() / 1024)})

	// XMLAGG with ORDER BY: in-memory quicksort of the row list.
	agg := construct.NewAgg(tpl)
	for i, row := range data {
		agg.Add(row, keys[i])
	}
	var out3 bytes.Buffer
	aggTime, aggAllocs, err := allocsPerRow(func() error {
		return agg.SerializeInto(&out3, dict, "emps")
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"XMLAGG ORDER BY (quicksort + template)", dms(aggTime),
		f2(float64(aggTime.Microseconds()) / float64(rows)), f1(aggAllocs), i0(out3.Len() / 1024)})
	return t, nil
}

func naiveEmpNode(dict *xml.Dict, row construct.Row) (*dom.Node, error) {
	intern := func(s string) xml.NameID {
		id, _ := dict.Intern(s)
		return id
	}
	emp := &dom.Node{Kind: xml.Element, Name: xml.QName{Local: intern("Emp")}, ID: nodeid.ID{0x02}}
	emp.Attrs = append(emp.Attrs,
		&dom.Node{Kind: xml.Attribute, Name: xml.QName{Local: intern("id")}, Value: append([]byte(nil), row[0]...), ID: nodeid.ID{0x02, 0x02}},
		&dom.Node{Kind: xml.Attribute, Name: xml.QName{Local: intern("name")}, Value: append([]byte(nil), row[1]...), ID: nodeid.ID{0x02, 0x04}},
	)
	mk := func(name string, v []byte, slot byte) *dom.Node {
		e := &dom.Node{Kind: xml.Element, Name: xml.QName{Local: intern(name)}, ID: nodeid.ID{0x02, slot}}
		e.Kids = append(e.Kids, &dom.Node{Kind: xml.Text, Value: append([]byte(nil), v...), ID: nodeid.ID{0x02, slot, 0x02}})
		return e
	}
	emp.Kids = append(emp.Kids, mk("hire", row[2], 0x06), mk("department", row[3], 0x08))
	return emp, nil
}

// vsaxFromDOM is a tiny local bridge (keeps the experiment explicit).
func vsaxFromDOM(n *dom.Node, s *serialize.Serializer) error {
	if err := s.StartElement(n.Name, n.ID); err != nil {
		return err
	}
	for _, a := range n.Attrs {
		if err := s.Attribute(a.Name, a.Value, a.Type, a.ID); err != nil {
			return err
		}
	}
	for _, k := range n.Kids {
		switch k.Kind {
		case xml.Element:
			if err := vsaxFromDOM(k, s); err != nil {
				return err
			}
		case xml.Text:
			if err := s.Text(k.Value, k.Type, k.ID); err != nil {
				return err
			}
		}
	}
	return s.EndElement(n.ID)
}

const e9XSD = `
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Catalog">
    <xs:complexType><xs:sequence>
      <xs:element name="Categories">
        <xs:complexType><xs:sequence>
          <xs:element ref="Product" minOccurs="0" maxOccurs="unbounded"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="Product">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="ProductName" type="xs:string"/>
        <xs:element name="RegPrice" type="xs:double"/>
        <xs:element name="Discount" type="xs:double" minOccurs="0"/>
      </xs:sequence>
      <xs:attribute name="pid" type="xs:integer" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>`

// perEventSink simulates a SAX-style interface: one virtual call and one
// small allocation per event, the overhead §3.2 blames application-domain
// interfaces for.
type perEventSink interface {
	OnEvent(kind tokens.Kind, payload []byte)
}

type countingSink struct {
	events int
	last   *eventObj
}

type eventObj struct {
	kind    tokens.Kind
	payload []byte
}

func (c *countingSink) OnEvent(kind tokens.Kind, payload []byte) {
	c.events++
	c.last = &eventObj{kind: kind, payload: payload} // per-event allocation
}

// E9 reproduces the Figure-4 / §3.2 parsing and validation costs.
func E9(products int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("parsing and validation over a %d-product catalog (Figure 4, §3.2)", products),
		Claim:   "buffered token streams cut per-event call overhead; compiled-schema validation adds bounded cost over raw parsing (§3.2)",
		Headers: []string{"pipeline", "doc MiB", "ms", "MiB/s"},
	}
	rng := rand.New(rand.NewSource(29))
	doc := xmlgen.Catalog(rng, products, 200)
	mib := float64(len(doc)) / (1 << 20)
	dict := xml.NewDict()
	const iters = 5

	row := func(name string, el time.Duration) {
		t.Rows = append(t.Rows, []string{name, f2(mib), dms(el), f1(mib / el.Seconds())})
	}

	// Non-validating parse to a buffered token stream.
	start := time.Now()
	var stream []byte
	for i := 0; i < iters; i++ {
		var err error
		stream, err = xmlparse.Parse(doc, dict, xmlparse.Options{})
		if err != nil {
			return nil, err
		}
	}
	row("parse → buffered token stream", time.Since(start)/iters)

	// Parse + per-event callback dispatch (the SAX-style overhead).
	start = time.Now()
	for i := 0; i < iters; i++ {
		s2, err := xmlparse.Parse(doc, dict, xmlparse.Options{})
		if err != nil {
			return nil, err
		}
		var sink perEventSink = &countingSink{}
		r := tokens.NewReader(s2)
		for r.More() {
			tok, err := r.Next()
			if err != nil {
				return nil, err
			}
			sink.OnEvent(tok.Kind, tok.Value)
		}
	}
	row("parse + per-event callbacks (SAX-style)", time.Since(start)/iters)

	// Validating parse (compiled schema executed by the VM).
	sch, err := xmlschema.Compile([]byte(e9XSD))
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := xmlschema.Validate(doc, sch, dict); err != nil {
			return nil, err
		}
	}
	row("parse + schema validation (typed stream)", time.Since(start)/iters)

	// Full insert pipeline: parse + pack + NodeID keys.
	start = time.Now()
	for i := 0; i < iters; i++ {
		db, _ := core.OpenMemory()
		col, _ := db.CreateCollection("c", core.CollectionOptions{})
		if _, err := col.InsertStream(stream); err != nil {
			return nil, err
		}
	}
	row("insert: pack + store + NodeID index", time.Since(start)/iters)
	return t, nil
}

// E10 reproduces the §3.2/§6 insertion pipeline breakdown and the "XML
// processing is highly CPU-intensive" observation.
func E10(docs, productsPerDoc int) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("bulk load of %d docs × %d products: per-phase CPU breakdown (§3.2, §6)", docs, productsPerDoc),
		Claim:   "XML processing is highly CPU-intensive, with major contributors being parsing and validation, traversal, and serialization (§6)",
		Headers: []string{"phase", "ms total", "share"},
	}
	rng := rand.New(rand.NewSource(31))
	var raws [][]byte
	for d := 0; d < docs; d++ {
		raws = append(raws, xmlgen.Catalog(rng, productsPerDoc, 200))
	}
	dict := xml.NewDict()

	var parseT, packT, keyT time.Duration
	q, _ := xpath.Parse("/Catalog/Categories/Product/RegPrice")
	kg, err := quickxscan.Compile(q, dict, nil, quickxscan.Options{NeedValues: true})
	if err != nil {
		return nil, err
	}
	var streams [][]byte
	start := time.Now()
	for _, raw := range raws {
		s, err := xmlparse.Parse(raw, dict, xmlparse.Options{})
		if err != nil {
			return nil, err
		}
		streams = append(streams, s)
	}
	parseT = time.Since(start)

	start = time.Now()
	for _, s := range streams {
		if err := pack.PackStream(s, 0, func(pack.EncodedRecord) error { return nil }); err != nil {
			return nil, err
		}
	}
	packT = time.Since(start)

	start = time.Now()
	for _, s := range streams {
		if _, err := quickxscan.EvalTokens(kg, s); err != nil {
			return nil, err
		}
	}
	keyT = time.Since(start)

	// Full engine insert (storage + indexes included).
	db, _ := core.OpenMemory()
	col, _ := db.CreateCollection("c", core.CollectionOptions{})
	if err := col.CreateValueIndex("ix", "/Catalog/Categories/Product/RegPrice", xml.TDouble); err != nil {
		return nil, err
	}
	start = time.Now()
	for _, s := range streams {
		if _, err := col.InsertStream(s); err != nil {
			return nil, err
		}
	}
	fullT := time.Since(start)

	cpu := parseT + packT + keyT
	share := func(d time.Duration, total time.Duration) string {
		return fmt.Sprintf("%2.0f%%", 100*float64(d)/float64(total))
	}
	t.Rows = append(t.Rows,
		[]string{"parse → token stream", dms(parseT), share(parseT, fullT+parseT)},
		[]string{"tree packing (CPU only)", dms(packT), share(packT, fullT+parseT)},
		[]string{"value index key generation (CPU only)", dms(keyT), share(keyT, fullT+parseT)},
		[]string{"full insert incl. storage + B+trees", dms(fullT), share(fullT, fullT+parseT)},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("pure XML CPU work (parse+pack+keygen) is %.0f%% of a full parse+insert — confirming the §6 claim", 100*float64(cpu)/float64(fullT+parseT)))
	return t, nil
}

// E11 reproduces the §5.1 concurrency comparison: document-level locking vs
// multiversioning under a read-mostly workload, plus the §5.2 subdocument
// locking behaviours.
func E11(readers int, window time.Duration) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   fmt.Sprintf("document concurrency: locking vs MVCC (%d readers + 1 writer, %v window)", readers, window),
		Claim:   "multiversioning avoids locking by readers, 'more efficient for mostly read workload' (§5.1)",
		Headers: []string{"scheme", "reads", "writes", "reads/s", "read errors (lock timeouts)"},
	}
	doc := []byte(`<page><title>T</title><body>content content content</body></page>`)

	runLocking := func() (reads, writes, errs int64, err error) {
		log, _ := wal.Open(&wal.MemDevice{})
		db, err := core.Open(pagestore.NewMemStore(), core.Options{WAL: log, LockTimeoutMillis: 50})
		if err != nil {
			return 0, 0, 0, err
		}
		col, _ := db.CreateCollection("c", core.CollectionOptions{})
		id, _ := col.Insert(doc)
		tRes, _, _ := col.Query("/page/body/text()")
		textID := tRes[0].Node
		var r, w, e int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					tx := db.Begin()
					var buf bytes.Buffer
					if err := tx.Serialize(col, id, &buf); err != nil {
						atomic.AddInt64(&e, 1)
						tx.Rollback()
						continue
					}
					tx.Commit()
					atomic.AddInt64(&r, 1)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin()
				if err := tx.UpdateText(col, id, textID, []byte(fmt.Sprintf("content v%d", i))); err != nil {
					tx.Rollback()
					continue
				}
				tx.Commit()
				atomic.AddInt64(&w, 1)
				i++
				time.Sleep(time.Millisecond) // read-mostly mix: throttled writer
			}
		}()
		time.Sleep(window)
		close(stop)
		wg.Wait()
		return r, w, e, nil
	}

	runMVCC := func() (reads, writes int64, err error) {
		db, err := core.OpenMemory()
		if err != nil {
			return 0, 0, err
		}
		col, _ := db.CreateCollection("c", core.CollectionOptions{Versioned: true})
		id, _ := col.Insert(doc)
		tRes, _, _ := col.Query("/page/body/text()")
		textID := tRes[0].Node
		var r, w int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					ver, err := col.SnapshotVersion(id)
					if err != nil {
						continue
					}
					if err := col.SerializeAt(id, ver, io.Discard); err != nil {
						continue
					}
					atomic.AddInt64(&r, 1)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := col.UpdateText(id, textID, []byte(fmt.Sprintf("content v%d", i))); err != nil {
					continue
				}
				atomic.AddInt64(&w, 1)
				i++
				time.Sleep(time.Millisecond) // read-mostly mix: throttled writer
				if i%256 == 0 {
					cur, _ := col.SnapshotVersion(id)
					col.Vacuum(id, cur-1)
				}
			}
		}()
		time.Sleep(window)
		close(stop)
		wg.Wait()
		return r, w, nil
	}

	lr, lw, le, err := runLocking()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"DocID S/X locking", fmt.Sprint(lr), fmt.Sprint(lw),
		f1(float64(lr) / window.Seconds()), fmt.Sprint(le)})
	mr, mw, err := runMVCC()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"document MVCC (snapshots)", fmt.Sprint(mr), fmt.Sprint(mw),
		f1(float64(mr) / window.Seconds()), "0"})
	t.Notes = append(t.Notes,
		"under locking, readers and the writer serialize on the document lock (either side can starve or time out);",
		"under MVCC, readers pin snapshots and never interact with the writer — both make progress and reads are faster")
	return t, nil
}

// E11Locks demonstrates the §5.2 subdocument multigranularity protocol:
// disjoint-subtree writers proceed concurrently; ancestor/descendant
// conflicts block.
func E11Locks() (*Table, error) {
	t := &Table{
		ID:      "E11b",
		Title:   "subdocument NodeID-prefix locking (§5.2)",
		Claim:   "prefix-encoded node IDs make multigranularity locking efficient: ancestor/descendant conflicts are prefix tests",
		Headers: []string{"scenario", "txn A holds", "txn B requests", "grantable"},
	}
	db, err := core.OpenMemory()
	if err != nil {
		return nil, err
	}
	col, _ := db.CreateCollection("c", core.CollectionOptions{})
	id, _ := col.Insert([]byte(`<r><left><x/></left><right><y/></right></r>`))
	left, _, _ := col.Query("/r/left")
	leftX, _, _ := col.Query("/r/left/x")
	right, _, _ := col.Query("/r/right")

	mgr := db.Locks()
	scenario := func(name string, aNode, bNode nodeid.ID, bMode string) {
		a := mgr.Begin()
		b := mgr.Begin()
		if err := a.LockNode("c", id, aNode, lock.X); err != nil {
			t.Rows = append(t.Rows, []string{name, "error", err.Error(), "-"})
			return
		}
		granted := b.TryLockNodeX("c", id, bNode)
		t.Rows = append(t.Rows, []string{name, "X " + aNode.String(), "X " + bNode.String(), fmt.Sprint(granted)})
		a.ReleaseAll()
		b.ReleaseAll()
		_ = bMode
	}
	scenario("disjoint subtrees", left[0].Node, right[0].Node, "X")
	scenario("descendant of held subtree", left[0].Node, leftX[0].Node, "X")
	scenario("ancestor of held subtree", leftX[0].Node, left[0].Node, "X")
	return t, nil
}

// E7Large reproduces the second half of §4.3's access-method discussion:
// "For large documents, the DocID list access is no longer efficient.
// Instead, the NodeID list access applies." Few large multi-record
// documents; candidate subtrees are re-evaluated without touching the rest
// of the document.
func E7Large(docs, itemsPerDoc int) (*Table, error) {
	t := &Table{
		ID:      "E7b",
		Title:   fmt.Sprintf("NodeID-list access on large documents (%d docs × %d items)", docs, itemsPerDoc),
		Claim:   "for large documents, NodeID-level access beats whole-document filtering (§4.3)",
		Headers: []string{"query", "method", "candidates", "results", "ms"},
	}
	build := func(threshold int) (*core.Collection, error) {
		db, err := core.OpenMemory()
		if err != nil {
			return nil, err
		}
		col, err := db.CreateCollection("orders", core.CollectionOptions{PackThreshold: threshold})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(37))
		for d := 0; d < docs; d++ {
			var sb bytes.Buffer
			sb.WriteString("<order><items>")
			for i := 0; i < itemsPerDoc; i++ {
				fmt.Fprintf(&sb, `<item><sku>S%06d</sku><qty>%d</qty><note>%060d</note></item>`,
					rng.Intn(1000000), rng.Intn(100), i)
			}
			sb.WriteString("</items></order>")
			if _, err := col.Insert(sb.Bytes()); err != nil {
				return nil, err
			}
		}
		return col, nil
	}
	col, err := build(0)
	if err != nil {
		return nil, err
	}
	query := "/order/items/item[qty = 42]/sku"
	run := func(label string) error {
		start := time.Now()
		results, plan, err := col.Query(query)
		if err != nil {
			return err
		}
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			query + " (" + label + ")", plan.Method, i0(plan.CandidateDocs), i0(len(results)), dms(el),
		})
		return nil
	}
	if err := run("no index: scan"); err != nil {
		return nil, err
	}
	if err := col.CreateValueIndex("ix_qty", "//qty", xml.TDouble); err != nil {
		return nil, err
	}
	if err := run("covering index"); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"with the index, only the matching item subtrees are decoded (ancestor context synthesized from the self-contained record headers); the scan walks every record of every document")
	return t, nil
}
