package experiments

// E15 and E16: the write-path throughput artifacts. E15 measures WAL group
// commit (shared log syncs across concurrent committers); E16 measures the
// bulk document loader against the one-commit-per-document insert path.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rx/internal/core"
	"rx/internal/pagestore"
	"rx/internal/wal"
	"rx/internal/xml"
)

// e15DB opens a fresh memory-paged, file-logged database — the log device is
// a real file so every sync pays the OS fsync cost being amortized.
func e15DB(dir string, n int, groupDelay time.Duration) (*core.DB, *wal.Log, error) {
	dev, err := wal.OpenFileDevice(filepath.Join(dir, fmt.Sprintf("e15-%d-%d.wal", n, groupDelay)))
	if err != nil {
		return nil, nil, err
	}
	var wopts []wal.Option
	if groupDelay > 0 {
		wopts = append(wopts, wal.WithGroupCommit(groupDelay))
	}
	log, err := wal.Open(dev, wopts...)
	if err != nil {
		return nil, nil, err
	}
	db, err := core.Open(pagestore.NewMemStore(), core.Options{WAL: log})
	if err != nil {
		return nil, nil, err
	}
	return db, log, nil
}

// E15 measures commit batching: W concurrent writers each commit small
// transactions against a file-backed log, with and without a group-commit
// window. The counters on the log give exact syncs-per-commit ratios.
func E15(commitsPerWriter int, window time.Duration) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   fmt.Sprintf("WAL group commit (%d commits/writer, %v window)", commitsPerWriter, window),
		Claim:   "logging inherited from the relational substrate scales to concurrent writers (§5): one log sync serves a group of committers",
		Headers: []string{"writers", "mode", "commits", "syncs", "syncs/commit", "commits/sec"},
	}
	dir, err := os.MkdirTemp("", "rx-e15-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	run := func(writers int, groupDelay time.Duration) error {
		db, log, err := e15DB(dir, writers, groupDelay)
		if err != nil {
			return err
		}
		defer db.Close()
		col, err := db.CreateCollection("c", core.CollectionOptions{})
		if err != nil {
			return err
		}
		c0, s0 := log.CommitCount(), log.SyncCount()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < commitsPerWriter; i++ {
					tx := db.Begin()
					if _, err := tx.Insert(col, []byte(fmt.Sprintf("<r><w>%d</w><i>%d</i></r>", w, i))); err != nil {
						errs <- err
						return
					}
					if err := tx.Commit(); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		el := time.Since(start)
		select {
		case err := <-errs:
			return err
		default:
		}
		commits := log.CommitCount() - c0
		syncs := log.SyncCount() - s0
		mode := "sync per commit"
		if groupDelay > 0 {
			mode = fmt.Sprintf("group commit %v", groupDelay)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(writers), mode, fmt.Sprint(commits), fmt.Sprint(syncs),
			fmt.Sprintf("%.3f", float64(syncs)/float64(commits)),
			f1(float64(commits) / el.Seconds()),
		})
		return nil
	}
	for _, writers := range []int{1, 2, 4, 8} {
		if err := run(writers, 0); err != nil {
			return nil, err
		}
		if err := run(writers, window); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"syncs/commit < 1 means committers shared durability syncs; the single-writer group row pays only the window latency, never extra syncs")
	return t, nil
}

// E16 measures bulk loading: the same document set ingested one commit per
// document versus InsertBatch (sorted index insertion + one commit per
// batch), both over a file-backed log.
func E16(docs, batchSize int) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("bulk document loading (%d docs, batches of %d)", docs, batchSize),
		Claim:   "batch shredding with sorted index insertion and one commit per batch amortizes the per-document write-path cost",
		Headers: []string{"path", "docs", "commits", "syncs", "ms", "MB/s", "docs/sec"},
	}
	dir, err := os.MkdirTemp("", "rx-e16-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	payloads := make([][]byte, docs)
	var totalBytes int
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf(
			"<item><sku>SKU-%06d</sku><qty>%d</qty><price>%d.%02d</price><note>bulk load subject %d of the ingest corpus</note></item>",
			i, i%97, i%500, i%100, i))
		totalBytes += len(payloads[i])
	}

	run := func(label string, ingest func(*core.DB, *core.Collection) error) error {
		db, log, err := e15DB(dir, len(label), 0)
		if err != nil {
			return err
		}
		defer db.Close()
		col, err := db.CreateCollection("c", core.CollectionOptions{})
		if err != nil {
			return err
		}
		if err := col.CreateValueIndex("ix_qty", "//qty", xml.TDouble); err != nil {
			return err
		}
		if err := col.CreateValueIndex("ix_sku", "//sku", xml.TString); err != nil {
			return err
		}
		c0, s0 := log.CommitCount(), log.SyncCount()
		start := time.Now()
		if err := ingest(db, col); err != nil {
			return err
		}
		el := time.Since(start)
		if n, err := col.Count(); err != nil || n != docs {
			return fmt.Errorf("E16 %s: %d of %d docs stored (%v)", label, n, docs, err)
		}
		t.Rows = append(t.Rows, []string{
			label, fmt.Sprint(docs),
			fmt.Sprint(log.CommitCount() - c0), fmt.Sprint(log.SyncCount() - s0),
			dms(el),
			fmt.Sprintf("%.1f", float64(totalBytes)/1e6/el.Seconds()),
			f1(float64(docs) / el.Seconds()),
		})
		return nil
	}

	if err := run("per-document commits", func(db *core.DB, col *core.Collection) error {
		for _, p := range payloads {
			tx := db.Begin()
			if _, err := tx.Insert(col, p); err != nil {
				return err
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := run(fmt.Sprintf("InsertBatch(%d)", batchSize), func(db *core.DB, col *core.Collection) error {
		for off := 0; off < len(payloads); off += batchSize {
			end := off + batchSize
			if end > len(payloads) {
				end = len(payloads)
			}
			if _, err := col.InsertBatch(payloads[off:end], core.BatchOptions{}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the batch path stores the same documents with identical logical index contents (see TestInsertBatchMatchesSequentialInserts); the win is one sorted insertion pass per index and one log sync per batch")
	return t, nil
}
