// Disk-space exhaustion injection: a byte budget shared by a page-store
// wrapper and a WAL-device wrapper, so a test can run the whole engine
// against a "device" with N bytes free and watch ENOSPC surface through the
// WAL, the buffer pool, and the transaction layer at exact, reproducible
// points. The budget only meters growth — overwriting bytes that already
// exist on the device is free, exactly like a real filesystem — and refill
// schedules model an operator freeing space after the Nth failure, which is
// what the engine's free-space watchdog needs to observe to leave degraded
// mode.
//
// Unlike the crash wrappers in this package, the budget wrappers have no
// durability boundary of their own: they pass operations straight through to
// the inner store/device. Compose them with Store/Device when a schedule
// needs both exhaustion and power loss.

package fault

import (
	"fmt"
	"sync"

	"rx/internal/pagestore"
	"rx/internal/rxerr"
)

// Refill grows the budget's capacity by Bytes immediately after the Nth
// (1-based) denied reservation: the failing operation still fails — space
// frees after the error, not during it — but the next attempt sees the new
// capacity. A schedule of refills models an operator (or log rotation)
// freeing disk space while the engine is degraded.
type Refill struct {
	Denial uint64
	Bytes  int64
}

// DiskBudget is a byte budget shared by every wrapper participating in one
// exhaustion schedule, mirroring how Injector is shared by the crash
// wrappers. Reservations that do not fit are denied; denials are counted so
// refill schedules fire at exact indices.
type DiskBudget struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	denials  uint64
	refills  []Refill
}

// NewDiskBudget builds a budget with capacity bytes free and an optional
// refill schedule.
func NewDiskBudget(capacity int64, refills ...Refill) *DiskBudget {
	return &DiskBudget{capacity: capacity, refills: refills}
}

// Reserve charges n bytes against the budget, reporting whether they fit.
// A denial counts toward the refill schedule and applies any refill due.
func (b *DiskBudget) Reserve(n int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n <= b.capacity {
		b.used += n
		return true
	}
	b.denyLocked()
	return false
}

// denyLocked records a denied reservation and applies due refills.
func (b *DiskBudget) denyLocked() {
	b.denials++
	for _, r := range b.refills {
		if r.Denial == b.denials {
			b.capacity += r.Bytes
		}
	}
}

// Release returns n bytes to the budget (truncation, file deletion).
func (b *DiskBudget) Release(n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
}

// SetCapacity resizes the device; shrinking below the bytes already used
// leaves Free at zero until enough is released.
func (b *DiskBudget) SetCapacity(n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.capacity = n
}

// Free returns the unreserved bytes remaining — the number a statfs-style
// probe would report. The engine's free-space watchdog takes this method as
// its probe in tests.
func (b *DiskBudget) Free() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := b.capacity - b.used
	if f < 0 {
		f = 0
	}
	return f
}

// Used returns the bytes currently reserved.
func (b *DiskBudget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Capacity returns the current capacity (initial plus applied refills).
func (b *DiskBudget) Capacity() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// Denials returns how many reservations have been denied.
func (b *DiskBudget) Denials() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denials
}

// BudgetStore wraps a pagestore.Store so that extending the page file
// (Allocate) charges the shared budget and fails with a typed no-space error
// when the device is full. Overwriting an existing page is free, like a real
// filesystem.
type BudgetStore struct {
	inner  pagestore.Store
	budget *DiskBudget
}

// NewBudgetStore wraps inner, attaching it to the budget.
func NewBudgetStore(inner pagestore.Store, budget *DiskBudget) *BudgetStore {
	return &BudgetStore{inner: inner, budget: budget}
}

// ReadPage implements pagestore.Store.
func (s *BudgetStore) ReadPage(id pagestore.PageID, buf []byte) error {
	return s.inner.ReadPage(id, buf)
}

// WritePage implements pagestore.Store. Pages are preallocated by Allocate,
// so overwrites are free.
func (s *BudgetStore) WritePage(id pagestore.PageID, buf []byte) error {
	return s.inner.WritePage(id, buf)
}

// Allocate implements pagestore.Store, charging one page against the budget.
func (s *BudgetStore) Allocate() (pagestore.PageID, error) {
	if !s.budget.Reserve(pagestore.PageSize) {
		return pagestore.InvalidPage, fmt.Errorf("%w: page file extend (budget full)", rxerr.ErrNoSpace)
	}
	id, err := s.inner.Allocate()
	if err != nil {
		s.budget.Release(pagestore.PageSize)
	}
	return id, err
}

// NumPages implements pagestore.Store.
func (s *BudgetStore) NumPages() pagestore.PageID { return s.inner.NumPages() }

// Sync implements pagestore.Store.
func (s *BudgetStore) Sync() error { return s.inner.Sync() }

// Close implements pagestore.Store.
func (s *BudgetStore) Close() error { return s.inner.Close() }

// Inner returns the wrapped store.
func (s *BudgetStore) Inner() pagestore.Store { return s.inner }

// BudgetDevice wraps a WAL device so that growing the file charges the
// shared budget. A write that only partially fits persists its affordable
// prefix and then fails — the partial-write-then-ENOSPC case the WAL's
// restore-unflushed path must survive. With ChargeOnSync set the device
// models delayed allocation instead: writes are accepted optimistically and
// the charge lands (and can fail) at Sync.
type BudgetDevice struct {
	inner  BlockDevice
	budget *DiskBudget

	// ChargeOnSync defers extension charges to Sync (delayed-allocation
	// filesystems report ENOSPC at fsync). Set before first use.
	ChargeOnSync bool

	mu    sync.Mutex
	alloc int64 // bytes already allocated on the device (its high-water size)
	debt  int64 // extension bytes accepted but not yet charged (ChargeOnSync)
}

// NewBudgetDevice wraps inner, attaching it to the budget. Bytes already on
// the device are treated as allocated (they consumed real space before the
// schedule started).
func NewBudgetDevice(inner BlockDevice, budget *DiskBudget) (*BudgetDevice, error) {
	size, err := inner.Size()
	if err != nil {
		return nil, err
	}
	return &BudgetDevice{inner: inner, budget: budget, alloc: size}, nil
}

// WriteAt implements io.WriterAt. Overwrites within the allocated size are
// free; the extension beyond it is charged, and on a shortfall the prefix
// that fits is persisted before the typed error returns.
func (d *BudgetDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	end := off + int64(len(p))
	grow := end - d.alloc
	if grow <= 0 {
		return d.inner.WriteAt(p, off)
	}
	if d.ChargeOnSync {
		n, err := d.inner.WriteAt(p, off)
		if err == nil {
			d.debt += grow
			d.alloc = end
		}
		return n, err
	}
	// Snapshot free space before reserving: a denial can trigger a refill,
	// and the prefix persisted by a failing write must reflect the space
	// that existed when the write hit the device, not the space freed after.
	free := d.budget.Free()
	if d.budget.Reserve(grow) {
		n, err := d.inner.WriteAt(p, off)
		if err == nil {
			d.alloc = end
		} else {
			d.budget.Release(grow)
		}
		return n, err
	}
	// Partial-write-then-ENOSPC: persist the affordable prefix, charge it,
	// and fail. The prefix may be zero when the device is already at the
	// budget edge.
	fit := free
	if fit > grow {
		fit = grow
	}
	prefix := int64(len(p)) - (grow - fit)
	if prefix < 0 {
		prefix = 0
	}
	if prefix > 0 {
		if !d.budget.Reserve(fit) {
			prefix, fit = 0, 0
		}
	}
	if prefix > 0 {
		n, err := d.inner.WriteAt(p[:prefix], off)
		if err != nil {
			d.budget.Release(fit)
			return n, err
		}
		if e := off + prefix; e > d.alloc {
			d.alloc = e
		}
	}
	return int(prefix), fmt.Errorf("%w: device write at %d (budget full after %d of %d bytes)",
		rxerr.ErrNoSpace, off, prefix, len(p))
}

// ReadAt implements io.ReaderAt.
func (d *BudgetDevice) ReadAt(p []byte, off int64) (int, error) {
	return d.inner.ReadAt(p, off)
}

// Size implements the device contract.
func (d *BudgetDevice) Size() (int64, error) { return d.inner.Size() }

// Sync implements the device contract, settling any deferred charges first:
// a shortfall fails the sync with the typed no-space error and keeps the
// debt, so a retry after a refill succeeds.
func (d *BudgetDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.debt > 0 {
		if !d.budget.Reserve(d.debt) {
			return fmt.Errorf("%w: device sync (%d deferred bytes over budget)", rxerr.ErrNoSpace, d.debt)
		}
		d.debt = 0
	}
	return d.inner.Sync()
}

// Close implements the device contract.
func (d *BudgetDevice) Close() error { return d.inner.Close() }

// Inner returns the wrapped device.
func (d *BudgetDevice) Inner() BlockDevice { return d.inner }
