package fault

import (
	"bytes"
	"errors"
	"testing"

	"rx/internal/pagestore"
	"rx/internal/rxerr"
	"rx/internal/wal"
)

func TestDiskBudgetReserveDenyRefill(t *testing.T) {
	b := NewDiskBudget(100, Refill{Denial: 2, Bytes: 50})
	if !b.Reserve(60) {
		t.Fatal("60 of 100 denied")
	}
	if b.Reserve(50) {
		t.Fatal("110 of 100 granted")
	}
	if got := b.Denials(); got != 1 {
		t.Fatalf("denials = %d, want 1", got)
	}
	// Second denial triggers the refill — but the denied op still failed.
	if b.Reserve(50) {
		t.Fatal("pre-refill reservation granted")
	}
	if got := b.Capacity(); got != 150 {
		t.Fatalf("capacity after refill = %d, want 150", got)
	}
	// The NEXT attempt sees the refilled capacity.
	if !b.Reserve(50) {
		t.Fatal("post-refill reservation denied")
	}
	b.Release(60)
	if got := b.Used(); got != 50 {
		t.Fatalf("used after release = %d, want 50", got)
	}
	if got := b.Free(); got != 100 {
		t.Fatalf("free = %d, want 100", got)
	}
}

func TestBudgetStoreAllocate(t *testing.T) {
	b := NewDiskBudget(2 * pagestore.PageSize)
	st := NewBudgetStore(pagestore.NewMemStore(), b)
	if _, err := st.Allocate(); err != nil {
		t.Fatalf("first allocate: %v", err)
	}
	if _, err := st.Allocate(); err != nil {
		t.Fatalf("second allocate: %v", err)
	}
	_, err := st.Allocate()
	if !errors.Is(err, rxerr.ErrNoSpace) {
		t.Fatalf("third allocate = %v, want ErrNoSpace", err)
	}
	// Overwrites of existing pages stay free on a full device.
	buf := make([]byte, pagestore.PageSize)
	if err := st.WritePage(0, buf); err != nil {
		t.Fatalf("overwrite on full device: %v", err)
	}
}

func TestBudgetDevicePartialWrite(t *testing.T) {
	b := NewDiskBudget(10)
	dev, err := NewBudgetDevice(&wal.MemDevice{}, b)
	if err != nil {
		t.Fatal(err)
	}
	// 16 bytes into an empty device: 10 fit, 6 do not.
	n, err := dev.WriteAt(bytes.Repeat([]byte{0xaa}, 16), 0)
	if !errors.Is(err, rxerr.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if n != 10 {
		t.Fatalf("persisted prefix = %d, want 10", n)
	}
	if size, _ := dev.Inner().Size(); size != 10 {
		t.Fatalf("inner size = %d, want 10", size)
	}
	// Overwriting the persisted prefix is free.
	if _, err := dev.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	// Growth resumes after space frees.
	b.SetCapacity(32)
	if _, err := dev.WriteAt(bytes.Repeat([]byte{0xbb}, 6), 10); err != nil {
		t.Fatalf("post-refill write: %v", err)
	}
}

func TestBudgetDeviceChargeOnSync(t *testing.T) {
	b := NewDiskBudget(8)
	dev, err := NewBudgetDevice(&wal.MemDevice{}, b)
	if err != nil {
		t.Fatal(err)
	}
	dev.ChargeOnSync = true
	// Delayed allocation: the write is accepted beyond the budget...
	if _, err := dev.WriteAt(bytes.Repeat([]byte{1}, 16), 0); err != nil {
		t.Fatalf("buffered write: %v", err)
	}
	// ...and the shortfall surfaces at sync.
	if err := dev.Sync(); !errors.Is(err, rxerr.ErrNoSpace) {
		t.Fatalf("sync = %v, want ErrNoSpace", err)
	}
	// The debt survives the failure: freeing space lets a retry settle it.
	b.SetCapacity(32)
	if err := dev.Sync(); err != nil {
		t.Fatalf("sync after refill: %v", err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatalf("idempotent sync: %v", err)
	}
}
