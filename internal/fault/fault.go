// Package fault provides deterministic fault injection for the storage
// layer: a Store wrapping any pagestore.Store and a Device wrapping the WAL
// device, both driven by a shared, scriptable Injector. The injector fires
// rules at exact operation indices (the Nth write, the Nth sync, ...), so a
// failing schedule is reproducible from its rule list alone.
//
// The crash model is crash-stop power loss with an explicit durability
// boundary: every write is buffered by the wrapper and reaches the inner
// store/device only on a successful Sync. A crash (injected or explicit)
// discards everything buffered since the last successful Sync, so reopening
// the inner store afterwards sees exactly what a power loss would leave.
// Sync itself is all-or-nothing: a crash or error injected on the sync
// operation persists none of the pending writes.
//
// Supported faults:
//
//   - Error: the Nth write or sync fails with ErrInjected and has no effect
//     (a transient I/O error — retrying the operation succeeds).
//   - Crash: the Nth write or sync simulates power loss; this and all
//     unsynced writes are lost and every later operation fails ErrCrashed.
//   - Tear: power loss strikes during the Nth write: the first Keep bytes
//     reach the inner store/device durably (those sectors were already on
//     their way), the rest of the write and everything unsynced is lost, and
//     the injector transitions to the crashed state.
//   - Flip: the Nth read returns data with one bit flipped (transient media
//     corruption; nothing on the inner store changes).
package fault

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"rx/internal/pagestore"
)

// ErrInjected reports a scripted transient I/O error; the operation had no
// effect and may be retried.
var ErrInjected = errors.New("fault: injected I/O error")

// ErrCrashed reports that the injector simulated a crash-stop; the wrapped
// store/device accepts no further operations. Reopen the inner store to
// observe the post-crash state.
var ErrCrashed = errors.New("fault: simulated crash-stop (power loss)")

// Op classifies operations for rule matching. Write and Sync counters are
// shared between the Store and Device attached to one Injector, so a single
// schedule addresses "the Nth write the engine performs" regardless of
// whether it lands on the page file or the log.
type Op uint8

// Operation classes.
const (
	Write Op = iota + 1
	Sync
	Read
)

func (o Op) String() string {
	switch o {
	case Write:
		return "write"
	case Sync:
		return "sync"
	case Read:
		return "read"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Action selects what a rule does when it fires.
type Action uint8

// Rule actions.
const (
	// Error fails the operation with ErrInjected (no effect).
	Error Action = iota + 1
	// Crash simulates power loss at this operation.
	Crash
	// Tear crashes during this write, durably persisting only its first
	// Keep bytes.
	Tear
	// Flip flips bit Bit of the data returned by this read.
	Flip
)

func (a Action) String() string {
	switch a {
	case Error:
		return "error"
	case Crash:
		return "crash"
	case Tear:
		return "tear"
	case Flip:
		return "flip"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// Rule fires Act on the Nth (1-based) operation of class Op.
type Rule struct {
	Op  Op
	N   uint64
	Act Action
	// Keep is the persisted prefix length for Tear.
	Keep int
	// Bit is the bit index (into the read buffer) for Flip.
	Bit int
}

func (r Rule) String() string {
	switch r.Act {
	case Tear:
		return fmt.Sprintf("%s@%s#%d(keep=%d)", r.Act, r.Op, r.N, r.Keep)
	case Flip:
		return fmt.Sprintf("%s@%s#%d(bit=%d)", r.Act, r.Op, r.N, r.Bit)
	}
	return fmt.Sprintf("%s@%s#%d", r.Act, r.Op, r.N)
}

// Rule constructors for common schedules.

// CrashOnWrite crashes on the Nth write.
func CrashOnWrite(n uint64) Rule { return Rule{Op: Write, N: n, Act: Crash} }

// CrashOnSync crashes on the Nth sync.
func CrashOnSync(n uint64) Rule { return Rule{Op: Sync, N: n, Act: Crash} }

// ErrorOnWrite fails the Nth write transiently.
func ErrorOnWrite(n uint64) Rule { return Rule{Op: Write, N: n, Act: Error} }

// ErrorOnSync fails the Nth sync transiently.
func ErrorOnSync(n uint64) Rule { return Rule{Op: Sync, N: n, Act: Error} }

// TearWrite crashes on the Nth write after durably persisting only its
// first keep bytes (a torn write).
func TearWrite(n uint64, keep int) Rule { return Rule{Op: Write, N: n, Act: Tear, Keep: keep} }

// FlipOnRead flips bit bit of the Nth read's result.
func FlipOnRead(n uint64, bit int) Rule { return Rule{Op: Read, N: n, Act: Flip, Bit: bit} }

// Injector counts operations and fires rules at exact indices. One Injector
// is shared by every wrapper participating in a schedule.
type Injector struct {
	mu      sync.Mutex
	rules   []Rule
	counts  map[Op]uint64
	crashed bool
}

// NewInjector builds an injector over a schedule. An empty schedule only
// counts operations (useful for profiling a workload's op budget).
func NewInjector(rules ...Rule) *Injector {
	return &Injector{rules: rules, counts: map[Op]uint64{}}
}

// Crashed reports whether a crash rule (or an explicit Crash call) fired.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Crash simulates power loss now, independent of any rule.
func (i *Injector) Crash() {
	i.mu.Lock()
	i.crashed = true
	i.mu.Unlock()
}

// Counts returns how many operations of each class have been observed.
func (i *Injector) Counts() (writes, syncs, reads uint64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[Write], i.counts[Sync], i.counts[Read]
}

// step records one operation and returns the rule that fires on it, if any.
// It returns ErrCrashed if a crash has already happened (without counting
// the operation) and marks the injector crashed when a Crash rule fires.
func (i *Injector) step(op Op) (Rule, bool, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return Rule{}, false, ErrCrashed
	}
	i.counts[op]++
	n := i.counts[op]
	for _, r := range i.rules {
		if r.Op == op && r.N == n {
			if r.Act == Crash {
				i.crashed = true
			}
			return r, true, nil
		}
	}
	return Rule{}, false, nil
}

// Store wraps a pagestore.Store with fault injection and an explicit
// durability boundary: writes and allocations buffer in memory and reach the
// inner store only on a successful Sync. After a crash the inner store holds
// exactly the last synced state.
type Store struct {
	inj *Injector

	mu      sync.Mutex
	inner   pagestore.Store
	pending map[pagestore.PageID][]byte
	pages   pagestore.PageID // logical page count incl. unsynced allocations
}

// NewStore wraps inner, attaching it to the injector's schedule.
func NewStore(inner pagestore.Store, inj *Injector) *Store {
	return &Store{
		inj:     inj,
		inner:   inner,
		pending: map[pagestore.PageID][]byte{},
		pages:   inner.NumPages(),
	}
}

// visibleLocked returns the page's current contents as the OS cache would:
// pending write if any, else inner store, else zeros for pages allocated but
// never persisted.
func (s *Store) visibleLocked(id pagestore.PageID, buf []byte) error {
	if p, ok := s.pending[id]; ok {
		copy(buf[:pagestore.PageSize], p)
		return nil
	}
	if id < s.inner.NumPages() {
		return s.inner.ReadPage(id, buf)
	}
	for i := range buf[:pagestore.PageSize] {
		buf[i] = 0
	}
	return nil
}

// ReadPage implements pagestore.Store.
func (s *Store) ReadPage(id pagestore.PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id >= s.pages {
		return fmt.Errorf("%w: read page %d of %d", pagestore.ErrPageRange, id, s.pages)
	}
	if err := s.visibleLocked(id, buf); err != nil {
		return err
	}
	r, ok, err := s.inj.step(Read)
	if err != nil {
		return err
	}
	if ok && r.Act == Flip {
		bit := r.Bit % (pagestore.PageSize * 8)
		buf[bit/8] ^= 1 << (bit % 8)
	}
	return nil
}

// WritePage implements pagestore.Store. The write buffers until the next
// successful Sync.
func (s *Store) WritePage(id pagestore.PageID, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id >= s.pages {
		return fmt.Errorf("%w: write page %d of %d", pagestore.ErrPageRange, id, s.pages)
	}
	r, ok, err := s.inj.step(Write)
	if err != nil {
		return err
	}
	if ok {
		switch r.Act {
		case Error:
			return fmt.Errorf("%w: write page %d", ErrInjected, id)
		case Crash:
			return ErrCrashed
		case Tear:
			// Power loss mid-write: the first Keep bytes hit the platter over
			// the last DURABLE image (pending writes never made it), the rest
			// of this write and everything unsynced is lost.
			torn := make([]byte, pagestore.PageSize)
			if id < s.inner.NumPages() {
				if err := s.inner.ReadPage(id, torn); err != nil {
					return err
				}
			}
			keep := r.Keep
			if keep > pagestore.PageSize {
				keep = pagestore.PageSize
			}
			copy(torn[:keep], buf[:keep])
			for s.inner.NumPages() <= id {
				if _, err := s.inner.Allocate(); err != nil {
					return err
				}
			}
			if err := s.inner.WritePage(id, torn); err != nil {
				return err
			}
			if err := s.inner.Sync(); err != nil {
				return err
			}
			s.inj.Crash()
			return ErrCrashed
		}
	}
	img := make([]byte, pagestore.PageSize)
	copy(img, buf)
	s.pending[id] = img
	return nil
}

// Allocate implements pagestore.Store. The allocation is buffered like a
// write: it reaches the inner store on the next successful Sync and is lost
// on a crash.
func (s *Store) Allocate() (pagestore.PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inj.Crashed() {
		return pagestore.InvalidPage, ErrCrashed
	}
	id := s.pages
	s.pages++
	return id, nil
}

// NumPages implements pagestore.Store.
func (s *Store) NumPages() pagestore.PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// Sync implements pagestore.Store: all-or-nothing persistence of every
// buffered allocation and write, in page order.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok, err := s.inj.step(Sync)
	if err != nil {
		return err
	}
	if ok {
		switch r.Act {
		case Error:
			return fmt.Errorf("%w: sync", ErrInjected)
		case Crash:
			return ErrCrashed
		}
	}
	for s.inner.NumPages() < s.pages {
		if _, err := s.inner.Allocate(); err != nil {
			return err
		}
	}
	ids := make([]pagestore.PageID, 0, len(s.pending))
	for id := range s.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		if err := s.inner.WritePage(id, s.pending[id]); err != nil {
			return err
		}
	}
	if err := s.inner.Sync(); err != nil {
		return err
	}
	s.pending = map[pagestore.PageID][]byte{}
	return nil
}

// Close implements pagestore.Store. Unsynced writes are NOT flushed — a
// close without sync persists nothing, like a crash with a clean inner
// store handle.
func (s *Store) Close() error { return s.inner.Close() }

// Inner returns the wrapped store (reopen it after a crash to observe the
// durable state).
func (s *Store) Inner() pagestore.Store { return s.inner }

// BlockDevice is the log-device contract (structurally identical to
// wal.Device, declared here to keep this package below the WAL).
type BlockDevice interface {
	io.WriterAt
	io.ReaderAt
	Size() (int64, error)
	Sync() error
	Close() error
}

type devWrite struct {
	off  int64
	data []byte
}

// Device wraps a WAL device with the same fault schedule and durability
// boundary as Store: WriteAt buffers until a successful Sync; a crash
// discards everything unsynced.
type Device struct {
	inj *Injector

	mu      sync.Mutex
	inner   BlockDevice
	pending []devWrite
}

// NewDevice wraps inner, attaching it to the injector's schedule.
func NewDevice(inner BlockDevice, inj *Injector) *Device {
	return &Device{inj: inj, inner: inner}
}

// WriteAt implements io.WriterAt, buffering until Sync.
func (d *Device) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok, err := d.inj.step(Write)
	if err != nil {
		return 0, err
	}
	if ok {
		switch r.Act {
		case Error:
			return 0, fmt.Errorf("%w: device write at %d", ErrInjected, off)
		case Crash:
			return 0, ErrCrashed
		case Tear:
			// Power loss mid-write: the prefix lands durably, unsynced pending
			// writes are lost with the crash.
			keep := r.Keep
			if keep > len(p) {
				keep = len(p)
			}
			if keep > 0 {
				if _, err := d.inner.WriteAt(p[:keep], off); err != nil {
					return 0, err
				}
				if err := d.inner.Sync(); err != nil {
					return 0, err
				}
			}
			d.inj.Crash()
			return 0, ErrCrashed
		}
	}
	d.pending = append(d.pending, devWrite{off, append([]byte(nil), p...)})
	return len(p), nil
}

// sizeLocked is the virtual size: inner size extended by pending writes.
func (d *Device) sizeLocked() (int64, error) {
	size, err := d.inner.Size()
	if err != nil {
		return 0, err
	}
	for _, w := range d.pending {
		if end := w.off + int64(len(w.data)); end > size {
			size = end
		}
	}
	return size, nil
}

// ReadAt implements io.ReaderAt over the inner device overlaid with pending
// writes (the OS cache view).
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inj.Crashed() {
		return 0, ErrCrashed
	}
	vsize, err := d.sizeLocked()
	if err != nil {
		return 0, err
	}
	if off >= vsize {
		return 0, io.EOF
	}
	n := len(p)
	if off+int64(n) > vsize {
		n = int(vsize - off)
	}
	for i := range p[:n] {
		p[i] = 0
	}
	if isize, err := d.inner.Size(); err != nil {
		return 0, err
	} else if off < isize {
		want := n
		if off+int64(want) > isize {
			want = int(isize - off)
		}
		if _, err := d.inner.ReadAt(p[:want], off); err != nil && err != io.EOF {
			return 0, err
		}
	}
	for _, w := range d.pending {
		lo, hi := w.off, w.off+int64(len(w.data))
		if hi <= off || lo >= off+int64(n) {
			continue
		}
		from, to := lo, hi
		if from < off {
			from = off
		}
		if to > off+int64(n) {
			to = off + int64(n)
		}
		copy(p[from-off:to-off], w.data[from-lo:to-lo])
	}
	r, ok, err := d.inj.step(Read)
	if err != nil {
		return 0, err
	}
	if ok && r.Act == Flip && n > 0 {
		bit := r.Bit % (n * 8)
		p[bit/8] ^= 1 << (bit % 8)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size implements the device contract (virtual size incl. pending writes).
func (d *Device) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inj.Crashed() {
		return 0, ErrCrashed
	}
	return d.sizeLocked()
}

// Sync implements the device contract: all-or-nothing persistence of
// pending writes in order.
func (d *Device) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok, err := d.inj.step(Sync)
	if err != nil {
		return err
	}
	if ok {
		switch r.Act {
		case Error:
			return fmt.Errorf("%w: device sync", ErrInjected)
		case Crash:
			return ErrCrashed
		}
	}
	for _, w := range d.pending {
		if _, err := d.inner.WriteAt(w.data, w.off); err != nil {
			return err
		}
	}
	if err := d.inner.Sync(); err != nil {
		return err
	}
	d.pending = nil
	return nil
}

// Close implements the device contract without flushing pending writes.
func (d *Device) Close() error { return d.inner.Close() }

// Inner returns the wrapped device.
func (d *Device) Inner() BlockDevice { return d.inner }
