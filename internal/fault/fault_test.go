package fault

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rx/internal/pagestore"
)

func page(b byte) []byte {
	p := make([]byte, pagestore.PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestStoreCrashDiscardsUnsyncedWrites(t *testing.T) {
	mem := pagestore.NewMemStore()
	inj := NewInjector()
	st := NewStore(mem, inj)

	id, _ := st.Allocate()
	if err := st.WritePage(id, page(0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.WritePage(id, page(0xBB)); err != nil {
		t.Fatal(err)
	}
	// Unsynced write is visible through the wrapper (OS cache semantics)...
	buf := make([]byte, pagestore.PageSize)
	if err := st.ReadPage(id, buf); err != nil || buf[100] != 0xBB {
		t.Fatalf("pre-crash read = %x, %v", buf[100], err)
	}
	inj.Crash()
	if err := st.WritePage(id, page(0xCC)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	// ...but the durable state is the last sync.
	if err := mem.ReadPage(id, buf); err != nil || buf[100] != 0xAA {
		t.Fatalf("durable read = %x, %v", buf[100], err)
	}
}

func TestStoreCrashRevertsAllocations(t *testing.T) {
	mem := pagestore.NewMemStore()
	inj := NewInjector()
	st := NewStore(mem, inj)
	st.Allocate()
	st.Sync()
	st.Allocate()
	st.Allocate()
	if st.NumPages() != 3 {
		t.Fatalf("pre-crash pages = %d", st.NumPages())
	}
	inj.Crash()
	if mem.NumPages() != 1 {
		t.Fatalf("durable pages = %d, want 1", mem.NumPages())
	}
}

func TestStoreTransientWriteError(t *testing.T) {
	mem := pagestore.NewMemStore()
	st := NewStore(mem, NewInjector(ErrorOnWrite(1)))
	id, _ := st.Allocate()
	err := st.WritePage(id, page(1))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first write err = %v", err)
	}
	// The retry (write #2) succeeds: the error was transient.
	if err := st.WritePage(id, page(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pagestore.PageSize)
	if err := mem.ReadPage(id, buf); err != nil || buf[0] != 1 {
		t.Fatalf("after retry: %x, %v", buf[0], err)
	}
}

func TestStoreTornWritePersistsPrefix(t *testing.T) {
	mem := pagestore.NewMemStore()
	inj := NewInjector(TearWrite(2, 512))
	st := NewStore(mem, inj)
	id, _ := st.Allocate()
	if err := st.WritePage(id, page(0x11)); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	// Write #2 is torn: power loss after its first 512 bytes hit the platter.
	if err := st.WritePage(id, page(0x22)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write err = %v, want ErrCrashed", err)
	}
	if !inj.Crashed() {
		t.Fatal("tear did not crash the injector")
	}
	buf := make([]byte, pagestore.PageSize)
	mem.ReadPage(id, buf)
	if buf[0] != 0x22 || buf[511] != 0x22 {
		t.Errorf("torn prefix not persisted: %x %x", buf[0], buf[511])
	}
	if buf[512] != 0x11 || buf[pagestore.PageSize-1] != 0x11 {
		t.Errorf("torn suffix should keep the last durable image: %x %x", buf[512], buf[pagestore.PageSize-1])
	}
}

func TestStoreBitFlipOnReadIsTransient(t *testing.T) {
	mem := pagestore.NewMemStore()
	st := NewStore(mem, NewInjector(FlipOnRead(1, 8*100)))
	id, _ := st.Allocate()
	st.WritePage(id, page(0))
	st.Sync()
	buf := make([]byte, pagestore.PageSize)
	if err := st.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[100] != 1 {
		t.Errorf("bit not flipped: %x", buf[100])
	}
	if err := st.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[100] != 0 {
		t.Errorf("flip persisted: %x", buf[100])
	}
}

func TestStoreCrashOnNthWrite(t *testing.T) {
	mem := pagestore.NewMemStore()
	inj := NewInjector(CrashOnWrite(3))
	st := NewStore(mem, inj)
	id, _ := st.Allocate()
	st.WritePage(id, page(1))
	st.Sync()
	st.WritePage(id, page(2))
	err := st.WritePage(id, page(3))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("write #3 err = %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed")
	}
	buf := make([]byte, pagestore.PageSize)
	mem.ReadPage(id, buf)
	if buf[0] != 1 {
		t.Errorf("durable state = %x, want last-synced 1", buf[0])
	}
}

func TestSyncIsAllOrNothing(t *testing.T) {
	mem := pagestore.NewMemStore()
	st := NewStore(mem, NewInjector(CrashOnSync(2)))
	id, _ := st.Allocate()
	st.WritePage(id, page(1))
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	st.WritePage(id, page(2))
	if err := st.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync #2 err = %v", err)
	}
	buf := make([]byte, pagestore.PageSize)
	mem.ReadPage(id, buf)
	if buf[0] != 1 {
		t.Errorf("crashed sync leaked writes: %x", buf[0])
	}
}

func TestDeviceCrashDiscardsUnsynced(t *testing.T) {
	var mem memDevice
	inj := NewInjector()
	dev := NewDevice(&mem, inj)
	if _, err := dev.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt([]byte("world"), 5); err != nil {
		t.Fatal(err)
	}
	// Overlay read sees both.
	buf := make([]byte, 10)
	if _, err := dev.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "helloworld" {
		t.Fatalf("overlay read = %q", buf)
	}
	inj.Crash()
	if !bytes.Equal(mem.buf, []byte("hello")) {
		t.Fatalf("durable device = %q", mem.buf)
	}
}

func TestDeviceTornWrite(t *testing.T) {
	var mem memDevice
	dev := NewDevice(&mem, NewInjector(TearWrite(1, 3)))
	if _, err := dev.WriteAt([]byte("abcdef"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn device write err = %v, want ErrCrashed", err)
	}
	if !bytes.Equal(mem.buf, []byte("abc")) {
		t.Fatalf("torn device write = %q", mem.buf)
	}
}

// memDevice is a minimal in-memory BlockDevice for tests (mirrors
// wal.MemDevice without importing it).
type memDevice struct{ buf []byte }

func (d *memDevice) WriteAt(p []byte, off int64) (int, error) {
	if end := int(off) + len(p); end > len(d.buf) {
		d.buf = append(d.buf, make([]byte, end-len(d.buf))...)
	}
	copy(d.buf[off:], p)
	return len(p), nil
}

func (d *memDevice) ReadAt(p []byte, off int64) (int, error) {
	if int(off) >= len(d.buf) {
		return 0, io.EOF
	}
	n := copy(p, d.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (d *memDevice) Size() (int64, error) { return int64(len(d.buf)), nil }
func (d *memDevice) Sync() error          { return nil }
func (d *memDevice) Close() error         { return nil }
