package fault

// Network fault injection, mirroring the storage Injector for the wire
// layer: a Conn/Listener wrapper family plus a byte-level TCP proxy, all
// driven by scripted rules that fire at exact operation indices (the Nth
// read, the Nth write on one connection). A schedule can also be derived
// deterministically from a seed (NetSchedule), so a failing chaos run is
// reproducible from its seed alone — exactly how the crash-torture harness
// addresses storage schedules.
//
// Supported network faults:
//
//   - NetDelay: the Nth operation is delayed by Delay before proceeding
//     (injected latency; the op then succeeds normally).
//   - NetErr: the Nth operation fails with ErrNetInjected and the
//     connection is closed — the peer sees EOF/reset, the local side a
//     typed error. On a write this models a send into a dead socket.
//   - NetPartial: the Nth write delivers only its first Keep bytes, then
//     the connection dies — a mid-frame reset, the hardest transport fault
//     for a framed protocol (the peer must detect the torn frame, never
//     misparse it).
//   - NetReset: the connection is closed before the Nth operation runs
//     (a clean reset between frames).
//   - NetStall: the Nth operation black-holes — it blocks until the
//     connection is closed (by the peer's deadline/keepalive machinery or
//     the test) and then fails. Models a peer that stops draining without
//     closing, the fault that wedges servers lacking write deadlines.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrNetInjected reports a scripted connection fault; the connection is dead.
var ErrNetInjected = errors.New("fault: injected connection fault")

// NetOp classifies connection operations for rule matching. Reads and
// writes are counted per wrapped connection.
type NetOp uint8

// Network operation classes.
const (
	NetRead NetOp = iota + 1
	NetWrite
)

func (o NetOp) String() string {
	switch o {
	case NetRead:
		return "read"
	case NetWrite:
		return "write"
	}
	return fmt.Sprintf("NetOp(%d)", uint8(o))
}

// NetAction selects what a network rule does when it fires.
type NetAction uint8

// Network rule actions.
const (
	// NetDelay sleeps Delay, then performs the operation normally.
	NetDelay NetAction = iota + 1
	// NetErr fails the operation with ErrNetInjected and closes the conn.
	NetErr
	// NetPartial writes only the first Keep bytes, then closes the conn
	// (mid-frame reset). On a read it behaves like NetErr.
	NetPartial
	// NetReset closes the connection before the operation runs.
	NetReset
	// NetStall blocks the operation until the connection is closed.
	NetStall
)

func (a NetAction) String() string {
	switch a {
	case NetDelay:
		return "delay"
	case NetErr:
		return "error"
	case NetPartial:
		return "partial"
	case NetReset:
		return "reset"
	case NetStall:
		return "stall"
	}
	return fmt.Sprintf("NetAction(%d)", uint8(a))
}

// NetRule fires Act on the Nth (1-based) operation of class Op.
type NetRule struct {
	Op  NetOp
	N   uint64
	Act NetAction
	// Delay is the injected latency for NetDelay.
	Delay time.Duration
	// Keep is the delivered prefix length for NetPartial.
	Keep int
}

func (r NetRule) String() string {
	switch r.Act {
	case NetDelay:
		return fmt.Sprintf("%s@%s#%d(%s)", r.Act, r.Op, r.N, r.Delay)
	case NetPartial:
		return fmt.Sprintf("%s@%s#%d(keep=%d)", r.Act, r.Op, r.N, r.Keep)
	}
	return fmt.Sprintf("%s@%s#%d", r.Act, r.Op, r.N)
}

// NetProfile shapes a seed-derived schedule: how many faults to draw, over
// how many operations, from which action pool.
type NetProfile struct {
	// Ops is the operation-index range faults are drawn from [1, Ops]
	// (default 64).
	Ops uint64
	// Faults is how many rules to generate (default 2).
	Faults int
	// MaxDelay bounds NetDelay latency (default 10ms).
	MaxDelay time.Duration
	// MaxKeep bounds the NetPartial delivered prefix (default 64 bytes).
	MaxKeep int
	// Actions is the pool rules draw from (default: all actions).
	Actions []NetAction
}

func (p *NetProfile) fill() {
	if p.Ops == 0 {
		p.Ops = 64
	}
	if p.Faults == 0 {
		p.Faults = 2
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 10 * time.Millisecond
	}
	if p.MaxKeep == 0 {
		p.MaxKeep = 64
	}
	if len(p.Actions) == 0 {
		p.Actions = []NetAction{NetDelay, NetErr, NetPartial, NetReset, NetStall}
	}
}

// NetSchedule derives a fault schedule deterministically from a seed: the
// same seed and profile always produce the same rules, so a chaos failure
// is reproducible from the seed alone.
func NetSchedule(seed int64, profile NetProfile) []NetRule {
	profile.fill()
	rng := rand.New(rand.NewSource(seed))
	rules := make([]NetRule, 0, profile.Faults)
	for i := 0; i < profile.Faults; i++ {
		r := NetRule{
			N:   uint64(rng.Int63n(int64(profile.Ops))) + 1,
			Act: profile.Actions[rng.Intn(len(profile.Actions))],
		}
		if rng.Intn(2) == 0 {
			r.Op = NetRead
		} else {
			r.Op = NetWrite
		}
		switch r.Act {
		case NetDelay:
			r.Delay = time.Duration(rng.Int63n(int64(profile.MaxDelay))) + time.Millisecond
		case NetPartial:
			r.Op = NetWrite // partials are a write fault
			r.Keep = rng.Intn(profile.MaxKeep)
		}
		rules = append(rules, r)
	}
	return rules
}

// NetInjector counts one connection's reads and writes and fires rules at
// exact indices. Unlike the storage Injector it is per-connection: two
// connections sharing a schedule would make rule indices depend on
// goroutine interleaving, destroying determinism.
type NetInjector struct {
	mu     sync.Mutex
	rules  []NetRule
	counts map[NetOp]uint64
}

// NewNetInjector builds an injector over a schedule. An empty schedule only
// counts operations.
func NewNetInjector(rules ...NetRule) *NetInjector {
	return &NetInjector{rules: rules, counts: map[NetOp]uint64{}}
}

// Counts reports how many reads and writes the connection has performed.
func (i *NetInjector) Counts() (reads, writes uint64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[NetRead], i.counts[NetWrite]
}

// step records one operation and returns the rule firing on it, if any.
func (i *NetInjector) step(op NetOp) (NetRule, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts[op]++
	n := i.counts[op]
	for _, r := range i.rules {
		if r.Op == op && r.N == n {
			return r, true
		}
	}
	return NetRule{}, false
}

// Conn wraps a net.Conn with fault injection. Deadline and address methods
// pass through; Read/Write consult the injector first. All faults except
// NetDelay kill the connection, so a fired fault is observed by both ends
// (the local caller gets a typed error, the peer an EOF or reset).
type Conn struct {
	net.Conn
	inj *NetInjector

	closeOnce sync.Once
	closed    chan struct{}
}

// NewConn wraps nc with the injector's schedule.
func NewConn(nc net.Conn, inj *NetInjector) *Conn {
	return &Conn{Conn: nc, inj: inj, closed: make(chan struct{})}
}

// Close closes the wrapped connection and releases any stalled operation.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// kill closes the connection from inside a fired rule.
func (c *Conn) kill() {
	_ = c.Close()
}

// sleep waits d or until the connection closes.
func (c *Conn) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

// stall blocks until the connection is closed.
func (c *Conn) stall() {
	<-c.closed
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if r, ok := c.inj.step(NetRead); ok {
		switch r.Act {
		case NetDelay:
			c.sleep(r.Delay)
		case NetReset:
			c.kill()
			return 0, fmt.Errorf("%w: %s", ErrNetInjected, r)
		case NetErr, NetPartial:
			c.kill()
			return 0, fmt.Errorf("%w: %s", ErrNetInjected, r)
		case NetStall:
			c.stall()
			c.kill()
			return 0, fmt.Errorf("%w: %s", ErrNetInjected, r)
		}
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if r, ok := c.inj.step(NetWrite); ok {
		switch r.Act {
		case NetDelay:
			c.sleep(r.Delay)
		case NetReset, NetErr:
			c.kill()
			return 0, fmt.Errorf("%w: %s", ErrNetInjected, r)
		case NetPartial:
			keep := r.Keep
			if keep > len(p) {
				keep = len(p)
			}
			n := 0
			if keep > 0 {
				n, _ = c.Conn.Write(p[:keep])
			}
			c.kill()
			return n, fmt.Errorf("%w: %s", ErrNetInjected, r)
		case NetStall:
			c.stall()
			c.kill()
			return 0, fmt.Errorf("%w: %s", ErrNetInjected, r)
		}
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener, attaching a fresh injector to each
// accepted connection. Make receives the 0-based accept index, so a seeded
// matrix can give every connection its own deterministic schedule.
type Listener struct {
	net.Listener
	Make func(i int) *NetInjector

	mu sync.Mutex
	n  int
}

// NewListener wraps lis; make builds the injector for the i-th accepted
// connection (nil means no faults for that connection).
func NewListener(lis net.Listener, mk func(i int) *NetInjector) *Listener {
	return &Listener{Listener: lis, Make: mk}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.n
	l.n++
	l.mu.Unlock()
	inj := l.Make(i)
	if inj == nil {
		return nc, nil
	}
	return NewConn(nc, inj), nil
}

// Proxy is a byte-level TCP proxy that pipes every accepted connection to a
// backend through a fault-injected Conn, so a real client and a real server
// exchange real traffic while the schedule tears at the stream between
// them. Faults are injected on the client-facing side: a NetRead rule hits
// the client→server direction, a NetWrite rule the server→client direction.
type Proxy struct {
	lis     *Listener
	backend string

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a fresh localhost port in front of backend.
// make builds the injector for the i-th accepted connection.
func NewProxy(backend string, mk func(i int) *NetInjector) (*Proxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		lis:     NewListener(lis, mk),
		backend: backend,
		conns:   map[net.Conn]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address; point clients here.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cc, err := p.lis.Accept()
		if err != nil {
			return
		}
		sc, err := net.Dial("tcp", p.backend)
		if err != nil {
			cc.Close()
			continue
		}
		if !p.track(cc, sc) {
			cc.Close()
			sc.Close()
			return
		}
		p.wg.Add(1)
		go p.pipe(cc, sc)
	}
}

func (p *Proxy) track(cs ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	for _, c := range cs {
		p.conns[c] = struct{}{}
	}
	return true
}

func (p *Proxy) untrack(cs ...net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range cs {
		delete(p.conns, c)
	}
}

// pipe copies both directions until either side dies, then closes both.
func (p *Proxy) pipe(cc, sc net.Conn) {
	defer p.wg.Done()
	defer p.untrack(cc, sc)
	var inner sync.WaitGroup
	inner.Add(2)
	pump := func(dst, src net.Conn) {
		defer inner.Done()
		buf := make([]byte, 32<<10)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		// Half-close semantics are unnecessary for a strict request/response
		// protocol: one dead direction means the conversation is over.
		cc.Close()
		sc.Close()
	}
	go pump(sc, cc)
	go pump(cc, sc)
	inner.Wait()
}

// Close stops the proxy and severs every proxied connection, then waits for
// the pipe goroutines (so leak checks see a clean shutdown).
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}
