package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair builds a connected TCP pair so wrapped-conn tests exercise a real
// socket (net.Pipe has no buffering, which would deadlock partial writes).
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = lis.Accept()
	}()
	client, derr := net.Dial("tcp", lis.Addr().String())
	<-done
	if derr != nil {
		t.Fatal(derr)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestNetScheduleDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a := NetSchedule(seed, NetProfile{})
		b := NetSchedule(seed, NetProfile{})
		if len(a) != len(b) {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d rule %d: %v != %v", seed, i, a[i], b[i])
			}
		}
		for _, r := range a {
			if r.N == 0 {
				t.Fatalf("seed %d: rule with N=0 (never fires): %v", seed, r)
			}
			if r.Act == NetPartial && r.Op != NetWrite {
				t.Fatalf("seed %d: partial on a read: %v", seed, r)
			}
		}
	}
	// Seeds must actually vary the schedule.
	if s1, s2 := NetSchedule(1, NetProfile{Faults: 8}), NetSchedule(2, NetProfile{Faults: 8}); func() bool {
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestNetErrFiresAtExactIndex(t *testing.T) {
	cc, sc := tcpPair(t)
	fc := NewConn(cc, NewNetInjector(NetRule{Op: NetWrite, N: 2, Act: NetErr}))

	if _, err := fc.Write([]byte("one")); err != nil {
		t.Fatalf("write #1: %v", err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(sc, buf); err != nil || string(buf) != "one" {
		t.Fatalf("peer read: %q %v", buf, err)
	}
	_, err := fc.Write([]byte("two"))
	if !errors.Is(err, ErrNetInjected) {
		t.Fatalf("write #2: %v", err)
	}
	// The fault kills the connection: the peer observes it too.
	if _, err := sc.Read(buf); err == nil {
		t.Fatal("peer read after injected error: no error")
	}
	reads, writes := fc.inj.Counts()
	if reads != 0 || writes != 2 {
		t.Fatalf("counts: %d reads, %d writes", reads, writes)
	}
}

func TestNetPartialDeliversPrefixThenDies(t *testing.T) {
	cc, sc := tcpPair(t)
	fc := NewConn(cc, NewNetInjector(NetRule{Op: NetWrite, N: 1, Act: NetPartial, Keep: 3}))

	n, err := fc.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrNetInjected) {
		t.Fatalf("partial write: %v", err)
	}
	if n != 3 {
		t.Fatalf("partial write reported %d bytes", n)
	}
	got, _ := io.ReadAll(sc)
	if !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("peer received %q, want the 3-byte prefix", got)
	}
}

func TestNetStallUnblocksOnClose(t *testing.T) {
	cc, _ := tcpPair(t)
	fc := NewConn(cc, NewNetInjector(NetRule{Op: NetRead, N: 1, Act: NetStall}))

	errc := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		errc <- err
	}()
	select {
	case err := <-errc:
		t.Fatalf("stalled read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrNetInjected) {
			t.Fatalf("stalled read: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled read did not unblock on close")
	}
}

func TestNetDelayThenSucceeds(t *testing.T) {
	cc, sc := tcpPair(t)
	fc := NewConn(cc, NewNetInjector(NetRule{Op: NetWrite, N: 1, Act: NetDelay, Delay: 30 * time.Millisecond}))

	start := time.Now()
	if _, err := fc.Write([]byte("hi")); err != nil {
		t.Fatalf("delayed write: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("write returned after %s, delay not injected", d)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(sc, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("peer read: %q %v", buf, err)
	}
}

// TestProxyInjectsPerConnection runs an echo backend behind the proxy: the
// first connection is fault-free and echoes, the second dies on its first
// client→server transfer (a NetRead rule on the client-facing conn).
func TestProxyInjectsPerConnection(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	p, err := NewProxy(lis.Addr().String(), func(i int) *NetInjector {
		if i == 0 {
			return nil
		}
		return NewNetInjector(NetRule{Op: NetRead, N: 1, Act: NetReset})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c0, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	if _, err := c0.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c0, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through proxy: %q %v", buf, err)
	}

	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c1.Write([]byte("doomed"))
	if err := c1.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Read(buf); err == nil {
		t.Fatal("faulted proxy conn still echoed")
	}
}
