// Package heap implements slotted-page heap tables over the buffer pool —
// the "regular table space" of the paper's Figure 2. Both the base tables
// (with DocID and XML columns) and the internal XML tables (DocID, minNodeID,
// XMLData) are heap tables of variable-length VARBINARY rows addressed by
// record IDs (RIDs). To this layer, packed XML data looks exactly like
// relational rows, which is the central reuse claim of the paper (§2).
//
// Page layout:
//
//	[0:8)   pageLSN (maintained by buffer.Pool.Modify)
//	[8:10)  slot count
//	[10:12) free-space pointer (offset of the byte after the last record,
//	        records grow downward from the end of the page)
//	[12:16) next page in the table's chain (InvalidPage if last)
//	[16:..) slot array, 4 bytes per slot: offset uint16, length uint16;
//	        offset 0 marks a dead slot
//
// Updates that no longer fit on the home page leave a forwarding stub so RIDs
// stay stable — the NodeID and XPath value indexes store RIDs and must not be
// invalidated by record growth (§3.1: "maximum flexibility of record
// placement").
//
// All page mutations go through buffer.Pool.Modify, which feeds the WAL when
// one is attached; the heap itself contains no logging code, mirroring how
// the paper's XML storage inherits logging from the relational data manager.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"rx/internal/buffer"
	"rx/internal/pagestore"
)

// RID is a record identifier: physical page plus slot number.
type RID struct {
	Page pagestore.PageID
	Slot uint16
}

// InvalidRID never addresses a record.
var InvalidRID = RID{Page: pagestore.InvalidPage}

// String renders the RID as page:slot.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// Bytes encodes the RID into 6 bytes.
func (r RID) Bytes() []byte {
	var b [6]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(r.Page))
	binary.BigEndian.PutUint16(b[4:6], r.Slot)
	return b[:]
}

// RIDFromBytes decodes a RID encoded by Bytes.
func RIDFromBytes(b []byte) RID {
	return RID{
		Page: pagestore.PageID(binary.BigEndian.Uint32(b[0:4])),
		Slot: binary.BigEndian.Uint16(b[4:6]),
	}
}

const (
	hdrSlots    = 8
	hdrFreePtr  = 10
	hdrNextPage = 12
	hdrSize     = 16
	slotSize    = 4

	recNormal  = 0 // flag byte: ordinary record
	recForward = 1 // flag byte: 6-byte forwarding RID follows
	recHome    = 2 // flag byte: record moved here from another home page
)

// MaxRecord is the largest record payload a single page can hold.
const MaxRecord = pagestore.PageSize - hdrSize - slotSize - 8

// ErrNotFound reports a missing record.
var ErrNotFound = errors.New("heap: record not found")

// ErrTooLarge reports a record payload exceeding MaxRecord.
var ErrTooLarge = errors.New("heap: record too large")

// Table is a heap table: an unordered collection of variable-length records.
type Table struct {
	pool *buffer.Pool

	mu        sync.Mutex
	firstPage pagestore.PageID
	lastPage  pagestore.PageID
	count     uint64 // records (approximate under concurrency)
	// freeCache maps pages believed to have free space to the free byte
	// count observed; consulted before extending the table.
	freeCache map[pagestore.PageID]int
}

// Create allocates a new empty table and returns it. The table is identified
// durably by its first page ID (store it in a catalog).
func Create(pool *buffer.Pool) (*Table, error) {
	f, err := pool.NewPage()
	if err != nil {
		return nil, err
	}
	err = pool.Modify(f, func(d []byte) error {
		initPage(d)
		return nil
	})
	id := f.ID
	pool.Unpin(f, false)
	if err != nil {
		return nil, err
	}
	return &Table{
		pool:      pool,
		firstPage: id,
		lastPage:  id,
		freeCache: make(map[pagestore.PageID]int),
	}, nil
}

// Open attaches to an existing table by its first page ID, walking the chain
// to find the last page.
func Open(pool *buffer.Pool, first pagestore.PageID) (*Table, error) {
	t := &Table{
		pool:      pool,
		firstPage: first,
		lastPage:  first,
		freeCache: make(map[pagestore.PageID]int),
	}
	pg := first
	for pg != pagestore.InvalidPage {
		f, err := pool.Fetch(pg)
		if err != nil {
			return nil, err
		}
		f.RLock()
		next := pageNext(f.Data)
		free := pageFree(f.Data)
		slots := int(binary.BigEndian.Uint16(f.Data[hdrSlots:]))
		f.RUnlock()
		pool.Unpin(f, false)
		if free > 64 {
			t.freeCache[pg] = free
		}
		t.count += uint64(slots) // approximation; dead slots over-count
		t.lastPage = pg
		pg = next
	}
	return t, nil
}

// FirstPage returns the table's identifying first page.
func (t *Table) FirstPage() pagestore.PageID { return t.firstPage }

// Count returns the approximate number of live records.
func (t *Table) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

func initPage(d []byte) {
	for i := 8; i < len(d); i++ {
		d[i] = 0
	}
	binary.BigEndian.PutUint16(d[hdrSlots:], 0)
	binary.BigEndian.PutUint16(d[hdrFreePtr:], pagestore.PageSize)
	binary.BigEndian.PutUint32(d[hdrNextPage:], uint32(pagestore.InvalidPage))
}

func pageNext(d []byte) pagestore.PageID {
	return pagestore.PageID(binary.BigEndian.Uint32(d[hdrNextPage:]))
}

func setPageNext(d []byte, id pagestore.PageID) {
	binary.BigEndian.PutUint32(d[hdrNextPage:], uint32(id))
}

// pageFree returns the contiguous free bytes available for one more record
// (including its slot).
func pageFree(d []byte) int {
	slots := int(binary.BigEndian.Uint16(d[hdrSlots:]))
	freePtr := int(binary.BigEndian.Uint16(d[hdrFreePtr:]))
	if freePtr == 0 {
		freePtr = pagestore.PageSize
	}
	used := hdrSize + slots*slotSize
	return freePtr - used - slotSize
}

func slotAt(d []byte, i int) (off, length int) {
	base := hdrSize + i*slotSize
	return int(binary.BigEndian.Uint16(d[base:])), int(binary.BigEndian.Uint16(d[base+2:]))
}

func setSlot(d []byte, i, off, length int) {
	base := hdrSize + i*slotSize
	binary.BigEndian.PutUint16(d[base:], uint16(off))
	binary.BigEndian.PutUint16(d[base+2:], uint16(length))
}

// insertInPage places payload (with flag prefix) in the page if it fits,
// returning the slot, or -1 if there is no room. Reuses dead slots.
func insertInPage(d []byte, flag byte, payload []byte) int {
	need := len(payload) + 1
	slots := int(binary.BigEndian.Uint16(d[hdrSlots:]))
	// Find a dead slot to reuse (doesn't need a new slot entry).
	slot := -1
	for i := 0; i < slots; i++ {
		if off, _ := slotAt(d, i); off == 0 {
			slot = i
			break
		}
	}
	freePtr := int(binary.BigEndian.Uint16(d[hdrFreePtr:]))
	if freePtr == 0 {
		freePtr = pagestore.PageSize
	}
	used := hdrSize + slots*slotSize
	avail := freePtr - used
	if slot == -1 {
		avail -= slotSize
	}
	if avail < need {
		// Try compaction: dead slots may have left holes.
		if compact(d) {
			return insertInPage(d, flag, payload)
		}
		return -1
	}
	off := freePtr - need
	d[off] = flag
	copy(d[off+1:], payload)
	binary.BigEndian.PutUint16(d[hdrFreePtr:], uint16(off))
	if slot == -1 {
		slot = slots
		binary.BigEndian.PutUint16(d[hdrSlots:], uint16(slots+1))
	}
	setSlot(d, slot, off, need)
	return slot
}

// compactScratch recycles the page-sized scratch buffer compaction packs
// live records into, so page defragmentation does not allocate.
var compactScratch = sync.Pool{New: func() any {
	b := make([]byte, pagestore.PageSize)
	return &b
}}

// compact squeezes out holes left by deleted or shrunk records. Returns true
// if any space was reclaimed.
func compact(d []byte) bool {
	slots := int(binary.BigEndian.Uint16(d[hdrSlots:]))
	type live struct{ slot, off, length int }
	var recs []live
	for i := 0; i < slots; i++ {
		if off, l := slotAt(d, i); off != 0 {
			recs = append(recs, live{i, off, l})
		}
	}
	// Sort by offset descending and re-pack from the page end.
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j-1].off < recs[j].off; j-- {
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
	oldFree := int(binary.BigEndian.Uint16(d[hdrFreePtr:]))
	if oldFree == 0 {
		oldFree = pagestore.PageSize
	}
	tb := compactScratch.Get().(*[]byte)
	tmp := *tb
	defer compactScratch.Put(tb)
	w := pagestore.PageSize
	for _, r := range recs {
		w -= r.length
		copy(tmp[w:], d[r.off:r.off+r.length])
	}
	if w == oldFree {
		return false // nothing to reclaim
	}
	w = pagestore.PageSize
	for _, r := range recs {
		w -= r.length
		copy(d[w:], tmp[w:w+r.length])
		setSlot(d, r.slot, w, r.length)
	}
	binary.BigEndian.PutUint16(d[hdrFreePtr:], uint16(w))
	return true
}

// Insert appends a record and returns its RID.
func (t *Table) Insert(payload []byte) (RID, error) {
	return t.insert(recNormal, payload, true)
}

func (t *Table) insert(flag byte, payload []byte, countIt bool) (RID, error) {
	if len(payload) > MaxRecord {
		return InvalidRID, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// First try pages known to have space, then the last page, then extend.
	// Candidates are visited in page order: record placement must be a pure
	// function of the operation history so that crash-recovery torture runs
	// replay the exact I/O sequence profiled for a given seed.
	var cands []pagestore.PageID
	for pg, free := range t.freeCache {
		if free >= len(payload)+1+slotSize {
			cands = append(cands, pg)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, pg := range cands {
		if rid, ok, err := t.tryInsert(pg, flag, payload, countIt); err != nil {
			return InvalidRID, err
		} else if ok {
			return rid, nil
		}
		delete(t.freeCache, pg)
	}
	if rid, ok, err := t.tryInsert(t.lastPage, flag, payload, countIt); err != nil {
		return InvalidRID, err
	} else if ok {
		return rid, nil
	}
	// Extend the chain. Allocation is where a full device bites the heap:
	// keep the typed error (%w) so errors.Is(err, rxerr.ErrNoSpace)
	// classification survives to the transaction layer, with the table
	// context attached.
	nf, err := t.pool.NewPage()
	if err != nil {
		return InvalidRID, fmt.Errorf("heap: extend table %d: %w", t.firstPage, err)
	}
	slot := -1
	err = t.pool.Modify(nf, func(d []byte) error {
		initPage(d)
		slot = insertInPage(d, flag, payload)
		return nil
	})
	newID := nf.ID
	t.pool.Unpin(nf, false)
	if err != nil {
		return InvalidRID, err
	}
	if slot < 0 {
		return InvalidRID, fmt.Errorf("heap: record does not fit an empty page (%d bytes)", len(payload))
	}

	lf, err := t.pool.Fetch(t.lastPage)
	if err != nil {
		return InvalidRID, err
	}
	err = t.pool.Modify(lf, func(d []byte) error {
		setPageNext(d, newID)
		return nil
	})
	t.pool.Unpin(lf, false)
	if err != nil {
		return InvalidRID, err
	}
	t.lastPage = newID
	if countIt {
		t.count++
	}
	return RID{Page: newID, Slot: uint16(slot)}, nil
}

// tryInsert attempts an insert into page pg, updating the free cache.
// Called with t.mu held.
func (t *Table) tryInsert(pg pagestore.PageID, flag byte, payload []byte, countIt bool) (RID, bool, error) {
	f, err := t.pool.Fetch(pg)
	if err != nil {
		return InvalidRID, false, err
	}
	slot, free := -1, 0
	err = t.pool.Modify(f, func(d []byte) error {
		slot = insertInPage(d, flag, payload)
		free = pageFree(d)
		return nil
	})
	t.pool.Unpin(f, false)
	if err != nil {
		return InvalidRID, false, err
	}
	if slot < 0 {
		delete(t.freeCache, pg)
		return InvalidRID, false, nil
	}
	if free > 64 {
		t.freeCache[pg] = free
	} else {
		delete(t.freeCache, pg)
	}
	if countIt {
		t.count++
	}
	return RID{Page: pg, Slot: uint16(slot)}, true, nil
}

// Fetch returns a copy of the record's payload, following forwarding stubs.
func (t *Table) Fetch(rid RID) ([]byte, error) {
	payload, fwd, err := t.fetchRaw(rid)
	if err != nil {
		return nil, err
	}
	if fwd != InvalidRID {
		payload, fwd2, err := t.fetchRaw(fwd)
		if err != nil {
			return nil, err
		}
		if fwd2 != InvalidRID {
			return nil, fmt.Errorf("heap: forwarding chain longer than one hop at %s", rid)
		}
		return payload, nil
	}
	return payload, nil
}

// FetchBorrowed returns the record's payload as a slice aliasing the
// buffer-pool frame itself — no copy — plus a release function. Until
// release is called the page stays pinned (immune to eviction) and
// share-latched (writers to the page block), so the payload bytes are
// stable. Forwarding stubs are followed; the borrow is always on the page
// that holds the record body.
//
// Lifetime rules (see DESIGN.md "The byte path"):
//   - release must be called exactly once, and the payload must not be read
//     after it.
//   - a goroutine holds at most ONE heap borrow at a time. Borrows nest with
//     B+tree reads (heap → index order) but never with another heap borrow:
//     two goroutines borrowing overlapping page sets in opposite orders,
//     with writers queued between them, can deadlock.
//   - the caller must not write through the payload slice.
func (t *Table) FetchBorrowed(rid RID) ([]byte, func(), error) {
	payload, release, fwd, err := t.fetchBorrowedRaw(rid)
	if err != nil {
		return nil, nil, err
	}
	if fwd != InvalidRID {
		payload, release, fwd2, err := t.fetchBorrowedRaw(fwd)
		if err != nil {
			return nil, nil, err
		}
		if fwd2 != InvalidRID {
			release()
			return nil, nil, fmt.Errorf("heap: forwarding chain longer than one hop at %s", rid)
		}
		return payload, release, nil
	}
	return payload, release, nil
}

// fetchBorrowedRaw is fetchRaw without the copy-out: on success the returned
// payload aliases the frame, which stays pinned and share-latched until
// release. A forwarding stub releases the page immediately and returns the
// target RID instead (stub bytes are decoded before the release).
func (t *Table) fetchBorrowedRaw(rid RID) ([]byte, func(), RID, error) {
	f, err := t.pool.Fetch(rid.Page)
	if err != nil {
		return nil, nil, InvalidRID, err
	}
	f.RLock()
	drop := func() {
		f.RUnlock()
		t.pool.Unpin(f, false)
	}
	slots := int(binary.BigEndian.Uint16(f.Data[hdrSlots:]))
	if int(rid.Slot) >= slots {
		drop()
		return nil, nil, InvalidRID, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	off, length := slotAt(f.Data, int(rid.Slot))
	if off == 0 {
		drop()
		return nil, nil, InvalidRID, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	flag := f.Data[off]
	body := f.Data[off+1 : off+length : off+length]
	if flag == recForward {
		fwd := RIDFromBytes(body)
		drop()
		return nil, nil, fwd, nil
	}
	return body, drop, InvalidRID, nil
}

// fetchRaw reads the record at rid; if it is a forwarding stub, returns the
// target RID instead of a payload.
func (t *Table) fetchRaw(rid RID) ([]byte, RID, error) {
	f, err := t.pool.Fetch(rid.Page)
	if err != nil {
		return nil, InvalidRID, err
	}
	defer t.pool.Unpin(f, false)
	f.RLock()
	defer f.RUnlock()
	slots := int(binary.BigEndian.Uint16(f.Data[hdrSlots:]))
	if int(rid.Slot) >= slots {
		return nil, InvalidRID, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	off, length := slotAt(f.Data, int(rid.Slot))
	if off == 0 {
		return nil, InvalidRID, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	flag := f.Data[off]
	body := f.Data[off+1 : off+length]
	if flag == recForward {
		return nil, RIDFromBytes(body), nil
	}
	out := make([]byte, len(body))
	copy(out, body)
	return out, InvalidRID, nil
}

// Delete removes the record, following and removing a forwarding stub.
func (t *Table) Delete(rid RID) error {
	fwd, err := t.deleteAt(rid)
	if err != nil {
		return err
	}
	if fwd != InvalidRID {
		if _, err := t.deleteAt(fwd); err != nil {
			return err
		}
	}
	t.mu.Lock()
	t.count--
	t.mu.Unlock()
	return nil
}

// deleteAt kills the slot at rid; returns the forward target if the record
// was a stub.
func (t *Table) deleteAt(rid RID) (RID, error) {
	f, err := t.pool.Fetch(rid.Page)
	if err != nil {
		return InvalidRID, err
	}
	fwd := InvalidRID
	notFound := false
	err = t.pool.Modify(f, func(d []byte) error {
		slots := int(binary.BigEndian.Uint16(d[hdrSlots:]))
		if int(rid.Slot) >= slots {
			notFound = true
			return nil
		}
		off, length := slotAt(d, int(rid.Slot))
		if off == 0 {
			notFound = true
			return nil
		}
		if d[off] == recForward {
			fwd = RIDFromBytes(d[off+1 : off+length])
		}
		setSlot(d, int(rid.Slot), 0, 0)
		return nil
	})
	t.pool.Unpin(f, false)
	if err != nil {
		return InvalidRID, err
	}
	if notFound {
		return InvalidRID, fmt.Errorf("%w: %s", ErrNotFound, rid)
	}
	t.mu.Lock()
	t.freeCache[rid.Page] = 1 << 12 // rough hint; refreshed on next tryInsert
	t.mu.Unlock()
	return fwd, nil
}

// Update replaces the record's payload in place when possible; otherwise it
// moves the record and leaves a forwarding stub so rid stays valid.
func (t *Table) Update(rid RID, payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	f, err := t.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	const (
		outcomeDone = iota
		outcomeNotFound
		outcomeForward
		outcomeMove
	)
	outcome := outcomeDone
	target := InvalidRID
	err = t.pool.Modify(f, func(d []byte) error {
		slots := int(binary.BigEndian.Uint16(d[hdrSlots:]))
		if int(rid.Slot) >= slots {
			outcome = outcomeNotFound
			return nil
		}
		off, length := slotAt(d, int(rid.Slot))
		if off == 0 {
			outcome = outcomeNotFound
			return nil
		}
		flag := d[off]
		if flag == recForward {
			outcome = outcomeForward
			target = RIDFromBytes(d[off+1 : off+length])
			return nil
		}
		// In place if the new payload fits the current slot.
		if len(payload)+1 <= length {
			copy(d[off+1:], payload)
			setSlot(d, int(rid.Slot), off, len(payload)+1)
			return nil
		}
		// The record can stay on its home page if, after freeing its old
		// copy, the page has room (compaction reclaims holes).
		if pageFree(d)+length >= len(payload)+1 {
			setSlot(d, int(rid.Slot), 0, 0)
			s := insertInPage(d, flag, payload)
			if s < 0 {
				return fmt.Errorf("heap: free-space accounting error at %s", rid)
			}
			// Force the record into our slot number so the RID is unchanged.
			if s != int(rid.Slot) {
				o2, l2 := slotAt(d, s)
				setSlot(d, int(rid.Slot), o2, l2)
				setSlot(d, s, 0, 0)
			}
			return nil
		}
		outcome = outcomeMove
		return nil
	})
	t.pool.Unpin(f, false)
	if err != nil {
		return err
	}
	switch outcome {
	case outcomeDone:
		return nil
	case outcomeNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, rid)
	case outcomeForward:
		// Update the moved copy; if it no longer fits there either, relocate
		// again and rewrite the home stub.
		if err := t.updateDirect(target, recHome, payload); err == nil {
			return nil
		}
		if _, err := t.deleteAt(target); err != nil {
			return err
		}
		newRID, err := t.insert(recHome, payload, false)
		if err != nil {
			return err
		}
		return t.updateDirect(rid, recForward, newRID.Bytes())
	default: // outcomeMove
		// Move the record elsewhere and leave a stub at home. The stub (7
		// bytes) replaces the old record, which is at least as large in all
		// but degenerate cases; updateDirect compacts if needed.
		newRID, err := t.insert(recHome, payload, false)
		if err != nil {
			return err
		}
		return t.updateDirect(rid, recForward, newRID.Bytes())
	}
}

// updateDirect rewrites the record at rid with the given flag and payload,
// in place or via page-local relocation only (no forwarding). Used to
// rewrite stubs and moved copies.
func (t *Table) updateDirect(rid RID, flag byte, payload []byte) error {
	f, err := t.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	var opErr error
	err = t.pool.Modify(f, func(d []byte) error {
		off, length := slotAt(d, int(rid.Slot))
		if off == 0 {
			opErr = fmt.Errorf("%w: %s", ErrNotFound, rid)
			return nil
		}
		if len(payload)+1 <= length {
			d[off] = flag
			copy(d[off+1:], payload)
			setSlot(d, int(rid.Slot), off, len(payload)+1)
			return nil
		}
		if pageFree(d)+length < len(payload)+1 {
			opErr = fmt.Errorf("heap: no room for direct update at %s", rid)
			return nil
		}
		setSlot(d, int(rid.Slot), 0, 0)
		s := insertInPage(d, flag, payload)
		if s < 0 {
			return fmt.Errorf("heap: free-space accounting error at %s", rid)
		}
		if s != int(rid.Slot) {
			o2, l2 := slotAt(d, s)
			setSlot(d, int(rid.Slot), o2, l2)
			setSlot(d, s, 0, 0)
		}
		return nil
	})
	t.pool.Unpin(f, false)
	if err != nil {
		return err
	}
	return opErr
}

// Scan calls fn for every live record in the table, in physical order,
// skipping forwarding stubs (each logical record is visited exactly once, at
// its moved location if it has one). Scanning stops early if fn returns an
// error, which is then returned.
func (t *Table) Scan(fn func(rid RID, payload []byte) error) error {
	pg := t.firstPage
	for pg != pagestore.InvalidPage {
		f, err := t.pool.Fetch(pg)
		if err != nil {
			return err
		}
		f.RLock()
		slots := int(binary.BigEndian.Uint16(f.Data[hdrSlots:]))
		type rec struct {
			slot    uint16
			payload []byte
		}
		var recs []rec
		for i := 0; i < slots; i++ {
			off, length := slotAt(f.Data, i)
			if off == 0 || f.Data[off] == recForward {
				continue
			}
			body := make([]byte, length-1)
			copy(body, f.Data[off+1:off+length])
			recs = append(recs, rec{uint16(i), body})
		}
		next := pageNext(f.Data)
		f.RUnlock()
		t.pool.Unpin(f, false)
		for _, r := range recs {
			if err := fn(RID{Page: pg, Slot: r.slot}, r.payload); err != nil {
				return err
			}
		}
		pg = next
	}
	return nil
}

// Pages returns the number of pages in the table's chain.
func (t *Table) Pages() (int, error) {
	n := 0
	pg := t.firstPage
	for pg != pagestore.InvalidPage {
		f, err := t.pool.Fetch(pg)
		if err != nil {
			return 0, err
		}
		f.RLock()
		next := pageNext(f.Data)
		f.RUnlock()
		t.pool.Unpin(f, false)
		n++
		pg = next
	}
	return n, nil
}
