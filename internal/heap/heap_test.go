package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rx/internal/buffer"
	"rx/internal/pagestore"
)

func newTable(t testing.TB, capacity int) *Table {
	t.Helper()
	pool := buffer.New(pagestore.NewMemStore(), capacity)
	tbl, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestInsertFetch(t *testing.T) {
	tbl := newTable(t, 16)
	data := []byte("hello, world")
	rid, err := tbl.Insert(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("Fetch = %q, want %q", got, data)
	}
}

func TestFetchMissing(t *testing.T) {
	tbl := newTable(t, 16)
	if _, err := tbl.Fetch(RID{Page: tbl.FirstPage(), Slot: 9}); err == nil {
		t.Error("expected error for missing record")
	}
}

func TestManyRecordsSpanPages(t *testing.T) {
	tbl := newTable(t, 64)
	type kv struct {
		rid  RID
		data []byte
	}
	var recs []kv
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		data := make([]byte, 20+rng.Intn(400))
		rng.Read(data)
		rid, err := tbl.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, kv{rid, data})
	}
	pages, err := tbl.Pages()
	if err != nil {
		t.Fatal(err)
	}
	if pages < 2 {
		t.Errorf("expected multiple pages, got %d", pages)
	}
	for i, r := range recs {
		got, err := tbl.Fetch(r.rid)
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		if !bytes.Equal(got, r.data) {
			t.Fatalf("rec %d mismatch", i)
		}
	}
}

func TestDeleteAndReuse(t *testing.T) {
	tbl := newTable(t, 16)
	rid, err := tbl.Insert([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Fetch(rid); err == nil {
		t.Error("fetch after delete should fail")
	}
	if err := tbl.Delete(rid); err == nil {
		t.Error("double delete should fail")
	}
	// Slot is reused by a later insert.
	rid2, err := tbl.Insert([]byte("def"))
	if err != nil {
		t.Fatal(err)
	}
	if rid2 != rid {
		t.Logf("slot not reused (%v vs %v) — acceptable but unexpected", rid2, rid)
	}
}

func TestUpdateInPlace(t *testing.T) {
	tbl := newTable(t, 16)
	rid, _ := tbl.Insert([]byte("aaaa"))
	if err := tbl.Update(rid, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Fetch(rid)
	if string(got) != "bb" {
		t.Errorf("got %q", got)
	}
	if err := tbl.Update(rid, []byte("cccccccc")); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Fetch(rid)
	if string(got) != "cccccccc" {
		t.Errorf("got %q", got)
	}
}

func TestUpdateForwarding(t *testing.T) {
	tbl := newTable(t, 64)
	// Fill a page almost completely, then grow one record so it must move.
	big := make([]byte, 2500)
	var rids []RID
	for i := 0; i < 3; i++ {
		for j := range big {
			big[j] = byte('a' + i)
		}
		rid, err := tbl.Insert(big)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	grown := make([]byte, 5000)
	for j := range grown {
		grown[j] = 'Z'
	}
	if err := tbl.Update(rids[1], grown); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Fetch(rids[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, grown) {
		t.Error("grown record mismatch after forwarding")
	}
	// Other records untouched.
	got0, _ := tbl.Fetch(rids[0])
	if got0[0] != 'a' || len(got0) != 2500 {
		t.Error("record 0 damaged")
	}
	// Update the forwarded record again, growing more.
	grown2 := make([]byte, 7000)
	for j := range grown2 {
		grown2[j] = 'Y'
	}
	if err := tbl.Update(rids[1], grown2); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Fetch(rids[1])
	if !bytes.Equal(got, grown2) {
		t.Error("twice-grown record mismatch")
	}
	// Shrink it back; still reachable via the same RID.
	if err := tbl.Update(rids[1], []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Fetch(rids[1])
	if string(got) != "tiny" {
		t.Errorf("got %q", got)
	}
	// Delete through the forwarding stub.
	if err := tbl.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Fetch(rids[1]); err == nil {
		t.Error("fetch after forwarded delete should fail")
	}
}

func TestScan(t *testing.T) {
	tbl := newTable(t, 64)
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		s := fmt.Sprintf("record-%04d", i)
		if _, err := tbl.Insert([]byte(s)); err != nil {
			t.Fatal(err)
		}
		want[s] = true
	}
	got := map[string]bool{}
	err := tbl.Scan(func(rid RID, payload []byte) error {
		got[string(payload)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d records, want %d", len(got), len(want))
	}
}

func TestScanSkipsForwardStubs(t *testing.T) {
	tbl := newTable(t, 64)
	var rids []RID
	for i := 0; i < 3; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 2500)
		rid, _ := tbl.Insert(data)
		rids = append(rids, rid)
	}
	grown := bytes.Repeat([]byte{'Z'}, 6000)
	if err := tbl.Update(rids[1], grown); err != nil {
		t.Fatal(err)
	}
	n := 0
	err := tbl.Scan(func(rid RID, payload []byte) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("scan saw %d logical records, want 3", n)
	}
}

func TestTooLarge(t *testing.T) {
	tbl := newTable(t, 16)
	if _, err := tbl.Insert(make([]byte, MaxRecord+1)); err == nil {
		t.Error("oversized insert should fail")
	}
	rid, _ := tbl.Insert([]byte("x"))
	if err := tbl.Update(rid, make([]byte, MaxRecord+1)); err == nil {
		t.Error("oversized update should fail")
	}
}

func TestOpenExisting(t *testing.T) {
	pool := buffer.New(pagestore.NewMemStore(), 64)
	tbl, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 300; i++ {
		rid, err := tbl.Insert([]byte(fmt.Sprintf("row %d padded to some length %d", i, i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	reopened, err := Open(pool, tbl.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Fetch(rids[137])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != fmt.Sprintf("row %d padded to some length %d", 137, 137) {
		t.Errorf("reopened fetch = %q", got)
	}
	// Inserts continue to work after reopen.
	if _, err := reopened.Insert([]byte("after reopen")); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionPersistence(t *testing.T) {
	// Tiny pool forces eviction; records must survive write-back.
	pool := buffer.New(pagestore.NewMemStore(), 3)
	tbl, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 200; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 500)
		rid, err := tbl.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := tbl.Fetch(rid)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 500 || got[0] != byte(i) {
			t.Fatalf("record %d corrupted after eviction", i)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tbl := newTable(b, 1024)
	data := make([]byte, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Insert(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetch(b *testing.B) {
	tbl := newTable(b, 1024)
	var rids []RID
	data := make([]byte, 200)
	for i := 0; i < 10000; i++ {
		rid, _ := tbl.Insert(data)
		rids = append(rids, rid)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Fetch(rids[i%len(rids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFetchBorrowed(t *testing.T) {
	pool := buffer.New(pagestore.NewMemStore(), 16)
	tbl, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tbl.Insert([]byte("hello borrowed world"))
	if err != nil {
		t.Fatal(err)
	}
	payload, release, err := tbl.FetchBorrowed(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "hello borrowed world" {
		t.Fatalf("payload = %q", payload)
	}
	release()
	// After release the record is still fetchable the ordinary way.
	got, err := tbl.Fetch(rid)
	if err != nil || string(got) != "hello borrowed world" {
		t.Fatalf("Fetch after release = %q, %v", got, err)
	}
}

func TestFetchBorrowedFollowsForwarding(t *testing.T) {
	pool := buffer.New(pagestore.NewMemStore(), 32)
	tbl, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the first page so the grown record must move off-page.
	rid, err := tbl.Insert(make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, err := tbl.tryInsert(rid.Page, recNormal, make([]byte, 512), true); err != nil {
			t.Fatal(err)
		} else {
			f, _ := pool.Fetch(rid.Page)
			f.RLock()
			free := pageFree(f.Data)
			f.RUnlock()
			pool.Unpin(f, false)
			if free < 600 {
				break
			}
		}
	}
	big := make([]byte, 4096)
	for i := range big {
		big[i] = byte(i)
	}
	if err := tbl.Update(rid, big); err != nil {
		t.Fatal(err)
	}
	payload, release, err := tbl.FetchBorrowed(rid)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != len(big) {
		t.Fatalf("len = %d, want %d", len(payload), len(big))
	}
	for i := range big {
		if payload[i] != big[i] {
			t.Fatalf("byte %d = %d, want %d", i, payload[i], big[i])
		}
	}
	release()
}

func TestFetchBorrowedBlocksWriters(t *testing.T) {
	pool := buffer.New(pagestore.NewMemStore(), 16)
	tbl, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tbl.Insert([]byte("stable"))
	if err != nil {
		t.Fatal(err)
	}
	payload, release, err := tbl.FetchBorrowed(rid)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Update on the same page must block until release.
		done <- tbl.Update(rid, []byte("mutated"))
	}()
	select {
	case <-done:
		t.Fatal("update completed while page was borrowed")
	case <-time.After(50 * time.Millisecond):
	}
	if string(payload) != "stable" {
		t.Fatalf("payload changed under borrow: %q", payload)
	}
	release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Fetch(rid)
	if err != nil || string(got) != "mutated" {
		t.Fatalf("after release: %q, %v", got, err)
	}
}
