package heap

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"rx/internal/buffer"
	"rx/internal/pagestore"
)

func newTable(t testing.TB, capacity int) *Table {
	t.Helper()
	pool := buffer.New(pagestore.NewMemStore(), capacity)
	tbl, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestInsertFetch(t *testing.T) {
	tbl := newTable(t, 16)
	data := []byte("hello, world")
	rid, err := tbl.Insert(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Fetch(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("Fetch = %q, want %q", got, data)
	}
}

func TestFetchMissing(t *testing.T) {
	tbl := newTable(t, 16)
	if _, err := tbl.Fetch(RID{Page: tbl.FirstPage(), Slot: 9}); err == nil {
		t.Error("expected error for missing record")
	}
}

func TestManyRecordsSpanPages(t *testing.T) {
	tbl := newTable(t, 64)
	type kv struct {
		rid  RID
		data []byte
	}
	var recs []kv
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		data := make([]byte, 20+rng.Intn(400))
		rng.Read(data)
		rid, err := tbl.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, kv{rid, data})
	}
	pages, err := tbl.Pages()
	if err != nil {
		t.Fatal(err)
	}
	if pages < 2 {
		t.Errorf("expected multiple pages, got %d", pages)
	}
	for i, r := range recs {
		got, err := tbl.Fetch(r.rid)
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		if !bytes.Equal(got, r.data) {
			t.Fatalf("rec %d mismatch", i)
		}
	}
}

func TestDeleteAndReuse(t *testing.T) {
	tbl := newTable(t, 16)
	rid, err := tbl.Insert([]byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Fetch(rid); err == nil {
		t.Error("fetch after delete should fail")
	}
	if err := tbl.Delete(rid); err == nil {
		t.Error("double delete should fail")
	}
	// Slot is reused by a later insert.
	rid2, err := tbl.Insert([]byte("def"))
	if err != nil {
		t.Fatal(err)
	}
	if rid2 != rid {
		t.Logf("slot not reused (%v vs %v) — acceptable but unexpected", rid2, rid)
	}
}

func TestUpdateInPlace(t *testing.T) {
	tbl := newTable(t, 16)
	rid, _ := tbl.Insert([]byte("aaaa"))
	if err := tbl.Update(rid, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Fetch(rid)
	if string(got) != "bb" {
		t.Errorf("got %q", got)
	}
	if err := tbl.Update(rid, []byte("cccccccc")); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Fetch(rid)
	if string(got) != "cccccccc" {
		t.Errorf("got %q", got)
	}
}

func TestUpdateForwarding(t *testing.T) {
	tbl := newTable(t, 64)
	// Fill a page almost completely, then grow one record so it must move.
	big := make([]byte, 2500)
	var rids []RID
	for i := 0; i < 3; i++ {
		for j := range big {
			big[j] = byte('a' + i)
		}
		rid, err := tbl.Insert(big)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	grown := make([]byte, 5000)
	for j := range grown {
		grown[j] = 'Z'
	}
	if err := tbl.Update(rids[1], grown); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Fetch(rids[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, grown) {
		t.Error("grown record mismatch after forwarding")
	}
	// Other records untouched.
	got0, _ := tbl.Fetch(rids[0])
	if got0[0] != 'a' || len(got0) != 2500 {
		t.Error("record 0 damaged")
	}
	// Update the forwarded record again, growing more.
	grown2 := make([]byte, 7000)
	for j := range grown2 {
		grown2[j] = 'Y'
	}
	if err := tbl.Update(rids[1], grown2); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Fetch(rids[1])
	if !bytes.Equal(got, grown2) {
		t.Error("twice-grown record mismatch")
	}
	// Shrink it back; still reachable via the same RID.
	if err := tbl.Update(rids[1], []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Fetch(rids[1])
	if string(got) != "tiny" {
		t.Errorf("got %q", got)
	}
	// Delete through the forwarding stub.
	if err := tbl.Delete(rids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Fetch(rids[1]); err == nil {
		t.Error("fetch after forwarded delete should fail")
	}
}

func TestScan(t *testing.T) {
	tbl := newTable(t, 64)
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		s := fmt.Sprintf("record-%04d", i)
		if _, err := tbl.Insert([]byte(s)); err != nil {
			t.Fatal(err)
		}
		want[s] = true
	}
	got := map[string]bool{}
	err := tbl.Scan(func(rid RID, payload []byte) error {
		got[string(payload)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d records, want %d", len(got), len(want))
	}
}

func TestScanSkipsForwardStubs(t *testing.T) {
	tbl := newTable(t, 64)
	var rids []RID
	for i := 0; i < 3; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 2500)
		rid, _ := tbl.Insert(data)
		rids = append(rids, rid)
	}
	grown := bytes.Repeat([]byte{'Z'}, 6000)
	if err := tbl.Update(rids[1], grown); err != nil {
		t.Fatal(err)
	}
	n := 0
	err := tbl.Scan(func(rid RID, payload []byte) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("scan saw %d logical records, want 3", n)
	}
}

func TestTooLarge(t *testing.T) {
	tbl := newTable(t, 16)
	if _, err := tbl.Insert(make([]byte, MaxRecord+1)); err == nil {
		t.Error("oversized insert should fail")
	}
	rid, _ := tbl.Insert([]byte("x"))
	if err := tbl.Update(rid, make([]byte, MaxRecord+1)); err == nil {
		t.Error("oversized update should fail")
	}
}

func TestOpenExisting(t *testing.T) {
	pool := buffer.New(pagestore.NewMemStore(), 64)
	tbl, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 300; i++ {
		rid, err := tbl.Insert([]byte(fmt.Sprintf("row %d padded to some length %d", i, i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	reopened, err := Open(pool, tbl.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Fetch(rids[137])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != fmt.Sprintf("row %d padded to some length %d", 137, 137) {
		t.Errorf("reopened fetch = %q", got)
	}
	// Inserts continue to work after reopen.
	if _, err := reopened.Insert([]byte("after reopen")); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionPersistence(t *testing.T) {
	// Tiny pool forces eviction; records must survive write-back.
	pool := buffer.New(pagestore.NewMemStore(), 3)
	tbl, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 200; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 500)
		rid, err := tbl.Insert(data)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := tbl.Fetch(rid)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 500 || got[0] != byte(i) {
			t.Fatalf("record %d corrupted after eviction", i)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tbl := newTable(b, 1024)
	data := make([]byte, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Insert(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetch(b *testing.B) {
	tbl := newTable(b, 1024)
	var rids []RID
	data := make([]byte, 200)
	for i := 0; i < 10000; i++ {
		rid, _ := tbl.Insert(data)
		rids = append(rids, rid)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Fetch(rids[i%len(rids)]); err != nil {
			b.Fatal(err)
		}
	}
}
