package heap

// Repair support: the scrub/repair subsystem (internal/core, internal/scrub)
// reformats heap pages that failed checksum verification and relinks the
// page chain around them. The helpers here expose just enough of the page
// format for that, without letting repair code re-implement the layout.

import (
	"encoding/binary"
	"fmt"

	"rx/internal/buffer"
	"rx/internal/pagestore"
)

// InitPageImage formats d (PageSize bytes) as an empty heap page with no next
// pointer. Used by repair to reformat a page whose contents were lost; call
// it inside buffer.Pool.Modify so the change is logged and checksummed.
func InitPageImage(d []byte) { initPage(d) }

// PageNextID returns the next-page pointer of a heap page image.
func PageNextID(d []byte) pagestore.PageID { return pageNext(d) }

// SetPageNextID rewrites the next-page pointer of a heap page image.
func SetPageNextID(d []byte, id pagestore.PageID) { setPageNext(d, id) }

// ForwardTargetsInPage returns the targets of every forwarding stub on a heap
// page image. Slot bounds are validated so a garbage page yields an empty
// list rather than a panic.
func ForwardTargetsInPage(d []byte) []RID {
	slots := int(binary.BigEndian.Uint16(d[hdrSlots:]))
	if slots > (pagestore.PageSize-hdrSize)/slotSize {
		return nil
	}
	var out []RID
	for i := 0; i < slots; i++ {
		off, length := slotAt(d, i)
		if off < hdrSize || off+length > pagestore.PageSize || length < 7 {
			continue
		}
		if d[off] == recForward {
			out = append(out, RIDFromBytes(d[off+1:off+7]))
		}
	}
	return out
}

// OpenTolerant opens a table whose chain may contain unreadable pages.
// The walk stops at the first page that fails to load, leaving lastPage AT
// that page: reads of intact pages work normally, and appends that would
// extend the chain fail with the page's error instead of severing the
// damaged tail (inserts into earlier free space still succeed — the chain
// is never mutated). After repair reformats and relinks the chain,
// Reattach re-derives the full insertion state.
func OpenTolerant(pool *buffer.Pool, first pagestore.PageID) *Table {
	t := &Table{
		pool:      pool,
		firstPage: first,
		lastPage:  first,
		freeCache: make(map[pagestore.PageID]int),
	}
	seen := map[pagestore.PageID]bool{}
	pg := first
	for pg != pagestore.InvalidPage && !seen[pg] {
		seen[pg] = true
		f, err := pool.Fetch(pg)
		if err != nil {
			t.lastPage = pg
			return t
		}
		f.RLock()
		next := pageNext(f.Data)
		free := pageFree(f.Data)
		slots := int(binary.BigEndian.Uint16(f.Data[hdrSlots:]))
		f.RUnlock()
		pool.Unpin(f, false)
		if free > 64 {
			t.freeCache[pg] = free
		}
		t.count += uint64(slots)
		t.lastPage = pg
		pg = next
	}
	return t
}

// ChainPages walks the table's page chain and returns every page it reaches.
// The walk is fault-tolerant: a page that cannot be read is still included
// (it belongs to the table) but ends the walk with the error, so the caller
// sees both the readable prefix and where the chain broke. A cycle (possible
// only with corrupt next pointers) also ends the walk.
func (t *Table) ChainPages() ([]pagestore.PageID, error) {
	var pages []pagestore.PageID
	seen := map[pagestore.PageID]bool{}
	pg := t.firstPage
	for pg != pagestore.InvalidPage && !seen[pg] {
		seen[pg] = true
		pages = append(pages, pg)
		f, err := t.pool.Fetch(pg)
		if err != nil {
			return pages, err
		}
		f.RLock()
		next := pageNext(f.Data)
		f.RUnlock()
		t.pool.Unpin(f, false)
		pg = next
	}
	return pages, nil
}

// ForwardTargets collects the targets of all forwarding stubs reachable on
// the chain. Like ChainPages, the walk stops at the first unreadable page and
// returns the targets found so far along with the error.
func (t *Table) ForwardTargets() ([]RID, error) {
	var out []RID
	seen := map[pagestore.PageID]bool{}
	pg := t.firstPage
	for pg != pagestore.InvalidPage && !seen[pg] {
		seen[pg] = true
		f, err := t.pool.Fetch(pg)
		if err != nil {
			return out, err
		}
		f.RLock()
		out = append(out, ForwardTargetsInPage(f.Data)...)
		next := pageNext(f.Data)
		f.RUnlock()
		t.pool.Unpin(f, false)
		pg = next
	}
	return out, nil
}

// Relink rewrites the table's chain to consist of exactly the given pages in
// the given order. The first element must be the table's identifying first
// page and every page must be readable (repair reformats damaged members
// before calling this). The in-memory insertion state is refreshed from the
// new chain afterwards.
func (t *Table) Relink(pages []pagestore.PageID) error {
	if len(pages) == 0 || pages[0] != t.firstPage {
		return fmt.Errorf("heap: relink must start at first page %d", t.firstPage)
	}
	for i, pg := range pages {
		next := pagestore.InvalidPage
		if i+1 < len(pages) {
			next = pages[i+1]
		}
		f, err := t.pool.Fetch(pg)
		if err != nil {
			return err
		}
		err = t.pool.Modify(f, func(d []byte) error {
			setPageNext(d, next)
			return nil
		})
		t.pool.Unpin(f, false)
		if err != nil {
			return err
		}
	}
	return t.Reattach()
}

// Reattach re-derives the table's in-memory insertion state (last page, free
// cache, record count) by re-walking the chain, exactly as Open does. Called
// after repair has changed the chain underneath an open Table.
func (t *Table) Reattach() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.freeCache = make(map[pagestore.PageID]int)
	t.count = 0
	t.lastPage = t.firstPage
	pg := t.firstPage
	for pg != pagestore.InvalidPage {
		f, err := t.pool.Fetch(pg)
		if err != nil {
			return err
		}
		f.RLock()
		next := pageNext(f.Data)
		free := pageFree(f.Data)
		slots := int(binary.BigEndian.Uint16(f.Data[hdrSlots:]))
		f.RUnlock()
		t.pool.Unpin(f, false)
		if free > 64 {
			t.freeCache[pg] = free
		}
		t.count += uint64(slots)
		t.lastPage = pg
		pg = next
	}
	return nil
}
