// Package keycodec builds order-preserving byte-string encodings for B+tree
// keys. The XPath value indexes of §3.3/§4.3 store composite keys
// (keyval, DocID, NodeID, RID) whose byte order must equal the value order of
// each component; this package provides the component codecs:
//
//   - strings (escaped so they self-delimit inside composite keys),
//   - float64 (IEEE 754 total order),
//   - int64/uint64,
//   - dates (days since epoch),
//   - decimal — the paper uses IEEE 754r decimal floating point "which
//     provides precise values within its range" (§4.3); Decimal here is an
//     arbitrary-precision base-10 value with an order-preserving encoding.
package keycodec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"
)

// String appends an order-preserving, self-delimiting encoding of s to dst.
// 0x00 bytes are escaped as 0x00 0xFF and the value is terminated by
// 0x00 0x01, so that no encoded string is a prefix of another and byte order
// equals string order.
func String(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x01)
}

// DecodeString decodes a String-encoded value from b, returning the value
// and the remaining bytes.
func DecodeString(b []byte) (string, []byte, error) {
	var sb strings.Builder
	for i := 0; i < len(b); {
		c := b[i]
		if c != 0x00 {
			sb.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(b) {
			return "", nil, errors.New("keycodec: truncated string")
		}
		switch b[i+1] {
		case 0xFF:
			sb.WriteByte(0x00)
			i += 2
		case 0x01:
			return sb.String(), b[i+2:], nil
		default:
			return "", nil, fmt.Errorf("keycodec: bad string escape 0x%02x", b[i+1])
		}
	}
	return "", nil, errors.New("keycodec: unterminated string")
}

// Uint64 appends a big-endian uint64 (already order-preserving).
func Uint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

// DecodeUint64 decodes a Uint64-encoded value.
func DecodeUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errors.New("keycodec: truncated uint64")
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// Int64 appends an order-preserving encoding of a signed integer (sign bit
// flipped so negative values sort first).
func Int64(dst []byte, v int64) []byte {
	return Uint64(dst, uint64(v)^(1<<63))
}

// DecodeInt64 decodes an Int64-encoded value.
func DecodeInt64(b []byte) (int64, []byte, error) {
	u, rest, err := DecodeUint64(b)
	if err != nil {
		return 0, nil, err
	}
	return int64(u ^ (1 << 63)), rest, nil
}

// Float64 appends an order-preserving encoding of an IEEE 754 double:
// positive values get the sign bit set; negative values are bit-inverted.
// NaN is rejected (XPath comparisons with NaN never match, so NaN values
// are simply not indexed).
func Float64(dst []byte, v float64) ([]byte, error) {
	if math.IsNaN(v) {
		return nil, errors.New("keycodec: NaN is not indexable")
	}
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return Uint64(dst, bits), nil
}

// DecodeFloat64 decodes a Float64-encoded value.
func DecodeFloat64(b []byte) (float64, []byte, error) {
	u, rest, err := DecodeUint64(b)
	if err != nil {
		return 0, nil, err
	}
	if u&(1<<63) != 0 {
		u &^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u), rest, nil
}

// Date appends an order-preserving encoding of an ISO date (yyyy-mm-dd) as
// days since the Unix epoch.
func Date(dst []byte, iso string) ([]byte, error) {
	t, err := time.Parse("2006-01-02", strings.TrimSpace(iso))
	if err != nil {
		return nil, fmt.Errorf("keycodec: bad date %q: %v", iso, err)
	}
	days := t.Unix() / 86400
	if t.Unix() < 0 && t.Unix()%86400 != 0 {
		days--
	}
	return Int64(dst, days), nil
}

// DecodeDate decodes a Date-encoded value back to ISO form.
func DecodeDate(b []byte) (string, []byte, error) {
	days, rest, err := DecodeInt64(b)
	if err != nil {
		return "", nil, err
	}
	return time.Unix(days*86400, 0).UTC().Format("2006-01-02"), rest, nil
}

// Bytes appends a self-delimiting encoding of an arbitrary byte string using
// the same escaping as String.
func Bytes(dst []byte, v []byte) []byte {
	for _, c := range v {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x01)
}

// DecodeBytes decodes a Bytes-encoded value.
func DecodeBytes(b []byte) ([]byte, []byte, error) {
	s, rest, err := DecodeString(b)
	return []byte(s), rest, err
}

// Decimal is an arbitrary-precision base-10 number in the spirit of the
// IEEE 754r decimal type the paper adopts for numeric value indexing: it
// represents decimal literals exactly (no binary rounding).
//
// Normal form: Neg flag, Digits (no leading or trailing zeros; empty means
// zero), and Exp such that the value is 0.Digits × 10^Exp.
type Decimal struct {
	Neg    bool
	Digits string
	Exp    int32
}

// ParseDecimal parses a decimal literal: optional sign, digits, optional
// fraction ("-12.0340" etc.). Exponents ("1e5") are not part of XPath decimal
// literals and are rejected.
func ParseDecimal(s string) (Decimal, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Decimal{}, errors.New("keycodec: empty decimal")
	}
	var d Decimal
	i := 0
	switch s[0] {
	case '-':
		d.Neg = true
		i++
	case '+':
		i++
	}
	intPart, fracPart := "", ""
	j := i
	for j < len(s) && s[j] >= '0' && s[j] <= '9' {
		j++
	}
	intPart = s[i:j]
	if j < len(s) {
		if s[j] != '.' {
			return Decimal{}, fmt.Errorf("keycodec: bad decimal %q", s)
		}
		k := j + 1
		for k < len(s) && s[k] >= '0' && s[k] <= '9' {
			k++
		}
		if k != len(s) {
			return Decimal{}, fmt.Errorf("keycodec: bad decimal %q", s)
		}
		fracPart = s[j+1 : k]
	}
	if intPart == "" && fracPart == "" {
		return Decimal{}, fmt.Errorf("keycodec: bad decimal %q", s)
	}
	digits := intPart + fracPart
	exp := int32(len(intPart))
	// Strip leading zeros (adjusting the exponent) and trailing zeros.
	lead := 0
	for lead < len(digits) && digits[lead] == '0' {
		lead++
	}
	digits = digits[lead:]
	exp -= int32(lead)
	trail := len(digits)
	for trail > 0 && digits[trail-1] == '0' {
		trail--
	}
	digits = digits[:trail]
	if digits == "" {
		return Decimal{}, nil // zero: Neg normalized away
	}
	d.Digits = digits
	d.Exp = exp
	return d, nil
}

// IsZero reports whether d is zero.
func (d Decimal) IsZero() bool { return d.Digits == "" }

// String renders the decimal in plain notation.
func (d Decimal) String() string {
	if d.IsZero() {
		return "0"
	}
	var sb strings.Builder
	if d.Neg {
		sb.WriteByte('-')
	}
	switch {
	case d.Exp <= 0:
		sb.WriteString("0.")
		for i := int32(0); i < -d.Exp; i++ {
			sb.WriteByte('0')
		}
		sb.WriteString(d.Digits)
	case int(d.Exp) >= len(d.Digits):
		sb.WriteString(d.Digits)
		for i := len(d.Digits); i < int(d.Exp); i++ {
			sb.WriteByte('0')
		}
	default:
		sb.WriteString(d.Digits[:d.Exp])
		sb.WriteByte('.')
		sb.WriteString(d.Digits[d.Exp:])
	}
	return sb.String()
}

// Cmp compares two decimals: -1, 0 or +1.
func (d Decimal) Cmp(o Decimal) int {
	if d.IsZero() || o.IsZero() {
		switch {
		case d.IsZero() && o.IsZero():
			return 0
		case d.IsZero():
			if o.Neg {
				return 1
			}
			return -1
		default:
			if d.Neg {
				return -1
			}
			return 1
		}
	}
	if d.Neg != o.Neg {
		if d.Neg {
			return -1
		}
		return 1
	}
	mag := d.cmpMagnitude(o)
	if d.Neg {
		return -mag
	}
	return mag
}

func (d Decimal) cmpMagnitude(o Decimal) int {
	if d.Exp != o.Exp {
		if d.Exp < o.Exp {
			return -1
		}
		return 1
	}
	a, b := d.Digits, o.Digits
	if c := strings.Compare(a, b); c != 0 {
		// Same-length prefix comparison is fine because digits have no
		// leading zeros; longer digit strings with an equal prefix are
		// larger in magnitude.
		return c
	}
	return 0
}

// EncodeDecimal appends an order-preserving encoding of d.
//
// Layout: sign class byte (0x01 negative, 0x02 zero, 0x03 positive), then
// for positive values the biased exponent (uint32 BE) followed by digit
// bytes ('0'+digit) and a 0x00 terminator; for negative values the same with
// every byte complemented (so larger magnitudes sort first) and a 0xFF
// terminator.
func EncodeDecimal(dst []byte, d Decimal) []byte {
	if d.IsZero() {
		return append(dst, 0x02)
	}
	biased := uint32(int64(d.Exp) + (1 << 31))
	if !d.Neg {
		dst = append(dst, 0x03)
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], biased)
		dst = append(dst, e[:]...)
		for i := 0; i < len(d.Digits); i++ {
			dst = append(dst, d.Digits[i])
		}
		return append(dst, 0x00)
	}
	dst = append(dst, 0x01)
	var e [4]byte
	binary.BigEndian.PutUint32(e[:], biased)
	for _, c := range e {
		dst = append(dst, ^c)
	}
	for i := 0; i < len(d.Digits); i++ {
		dst = append(dst, ^d.Digits[i])
	}
	return append(dst, 0xFF)
}

// DecodeDecimal decodes an EncodeDecimal value.
func DecodeDecimal(b []byte) (Decimal, []byte, error) {
	if len(b) == 0 {
		return Decimal{}, nil, errors.New("keycodec: truncated decimal")
	}
	switch b[0] {
	case 0x02:
		return Decimal{}, b[1:], nil
	case 0x03:
		if len(b) < 6 {
			return Decimal{}, nil, errors.New("keycodec: truncated decimal")
		}
		exp := int32(int64(binary.BigEndian.Uint32(b[1:5])) - (1 << 31))
		i := 5
		var sb strings.Builder
		for i < len(b) && b[i] != 0x00 {
			sb.WriteByte(b[i])
			i++
		}
		if i == len(b) {
			return Decimal{}, nil, errors.New("keycodec: unterminated decimal")
		}
		return Decimal{Digits: sb.String(), Exp: exp}, b[i+1:], nil
	case 0x01:
		if len(b) < 6 {
			return Decimal{}, nil, errors.New("keycodec: truncated decimal")
		}
		var e [4]byte
		for i := 0; i < 4; i++ {
			e[i] = ^b[1+i]
		}
		exp := int32(int64(binary.BigEndian.Uint32(e[:])) - (1 << 31))
		i := 5
		var sb strings.Builder
		for i < len(b) && b[i] != 0xFF {
			sb.WriteByte(^b[i])
			i++
		}
		if i == len(b) {
			return Decimal{}, nil, errors.New("keycodec: unterminated decimal")
		}
		return Decimal{Neg: true, Digits: sb.String(), Exp: exp}, b[i+1:], nil
	default:
		return Decimal{}, nil, fmt.Errorf("keycodec: bad decimal class 0x%02x", b[0])
	}
}

// Compare is a convenience wrapper over bytes.Compare for encoded keys.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }
