package keycodec

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestStringRoundTripAndOrder(t *testing.T) {
	cases := []string{"", "a", "abc", "ab\x00cd", "\x00", "zz", "ab", "abc\x00"}
	for _, s := range cases {
		enc := String(nil, s)
		dec, rest, err := DecodeString(enc)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if dec != s || len(rest) != 0 {
			t.Errorf("%q: round trip got %q (rest %d)", s, dec, len(rest))
		}
	}
	f := func(a, b string) bool {
		ea, eb := String(nil, a), String(nil, b)
		return (strings.Compare(a, b) < 0) == (bytes.Compare(ea, eb) < 0) || a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Prefix freedom: "ab" must not be a prefix of "abc"'s encoding in a way
	// that breaks composite ordering.
	comp1 := String(nil, "ab")
	comp1 = Uint64(comp1, 999)
	comp2 := String(nil, "abc")
	comp2 = Uint64(comp2, 0)
	if bytes.Compare(comp1, comp2) >= 0 {
		t.Error("composite keys with string prefix misordered")
	}
}

func TestIntFloatOrder(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := Int64(nil, a), Int64(nil, b)
		return (a < b) == (bytes.Compare(ea, eb) < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, _ := Float64(nil, a)
		eb, _ := Float64(nil, b)
		if a == b {
			return bytes.Equal(ea, eb) || (a == 0 && b == 0) // ±0 encode differently; XPath treats them equal but index order is harmless
		}
		return (a < b) == (bytes.Compare(ea, eb) < 0)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Float64(nil, math.NaN()); err == nil {
		t.Error("NaN should be rejected")
	}
}

func TestFloatSpecials(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -1e-300, 0, 1e-300, 1, 1e300, math.Inf(1)}
	var prev []byte
	for _, v := range vals {
		enc, err := Float64(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && bytes.Compare(prev, enc) >= 0 {
			t.Errorf("order violated at %g", v)
		}
		dec, _, err := DecodeFloat64(enc)
		if err != nil || dec != v {
			t.Errorf("round trip %g -> %g (%v)", v, dec, err)
		}
		prev = enc
	}
}

func TestIntRoundTrip(t *testing.T) {
	for _, v := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
		enc := Int64(nil, v)
		dec, _, err := DecodeInt64(enc)
		if err != nil || dec != v {
			t.Errorf("%d -> %d (%v)", v, dec, err)
		}
	}
}

func TestDate(t *testing.T) {
	enc1, err := Date(nil, "2005-06-16") // the paper's workshop date
	if err != nil {
		t.Fatal(err)
	}
	enc2, _ := Date(nil, "2005-06-17")
	if bytes.Compare(enc1, enc2) >= 0 {
		t.Error("date order broken")
	}
	s, _, err := DecodeDate(enc1)
	if err != nil || s != "2005-06-16" {
		t.Errorf("round trip = %q, %v", s, err)
	}
	if _, err := Date(nil, "not-a-date"); err == nil {
		t.Error("bad date should fail")
	}
	old, err := Date(nil, "1905-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Compare(old, enc1) >= 0 {
		t.Error("pre-epoch date order broken")
	}
	s, _, _ = DecodeDate(old)
	if s != "1905-01-01" {
		t.Errorf("pre-epoch round trip = %q", s)
	}
}

func TestParseDecimal(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"0", "0"}, {"-0", "0"}, {"0.0", "0"}, {"00.00", "0"},
		{"1", "1"}, {"-1", "-1"}, {"1.5", "1.5"}, {"-12.0340", "-12.034"},
		{"0.001", "0.001"}, {"1000", "1000"}, {"+3.14", "3.14"},
		{".5", "0.5"}, {"5.", "5"},
	}
	for _, c := range cases {
		d, err := ParseDecimal(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if d.String() != c.want {
			t.Errorf("%q -> %q, want %q", c.in, d.String(), c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1.2.3", "1e5", "--1", "."} {
		if _, err := ParseDecimal(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestDecimalCmpAndEncodeOrder(t *testing.T) {
	vals := []string{"-1000", "-999.999", "-1", "-0.5", "-0.055", "-0.0001",
		"0", "0.0001", "0.055", "0.5", "0.55", "1", "1.0001", "2", "999.999", "1000"}
	for i := 0; i < len(vals); i++ {
		for j := 0; j < len(vals); j++ {
			a, _ := ParseDecimal(vals[i])
			b, _ := ParseDecimal(vals[j])
			wantCmp := 0
			if i < j {
				wantCmp = -1
			} else if i > j {
				wantCmp = 1
			}
			if got := a.Cmp(b); got != wantCmp {
				t.Errorf("Cmp(%s, %s) = %d, want %d", vals[i], vals[j], got, wantCmp)
			}
			ea := EncodeDecimal(nil, a)
			eb := EncodeDecimal(nil, b)
			if got := bytes.Compare(ea, eb); got != wantCmp {
				t.Errorf("encoded Compare(%s, %s) = %d, want %d", vals[i], vals[j], got, wantCmp)
			}
		}
	}
}

func TestDecimalRoundTrip(t *testing.T) {
	for _, s := range []string{"0", "1.5", "-12.034", "0.001", "123456789.987654321"} {
		d, _ := ParseDecimal(s)
		enc := EncodeDecimal(nil, d)
		back, rest, err := DecodeDecimal(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%s: %v rest=%d", s, err, len(rest))
		}
		if back.Cmp(d) != 0 || back.String() != d.String() {
			t.Errorf("%s -> %s", d, back)
		}
	}
}

// Property: decimal encoding order matches numeric order for random decimals.
func TestDecimalOrderProperty(t *testing.T) {
	gen := func(rng *rand.Rand) Decimal {
		s := fmt.Sprintf("%d.%04d", rng.Intn(20001)-10000, rng.Intn(10000))
		d, err := ParseDecimal(s)
		if err != nil {
			panic(err)
		}
		return d
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		a, b := gen(rng), gen(rng)
		ea := EncodeDecimal(nil, a)
		eb := EncodeDecimal(nil, b)
		if a.Cmp(b) != bytes.Compare(ea, eb) {
			t.Fatalf("order mismatch: %s vs %s (cmp %d, bytes %d)", a, b, a.Cmp(b), bytes.Compare(ea, eb))
		}
	}
}

func TestBytesCodec(t *testing.T) {
	v := []byte{1, 0, 2, 0, 0, 3}
	enc := Bytes(nil, v)
	enc = Uint64(enc, 7)
	dec, rest, err := DecodeBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, v) {
		t.Errorf("got %x", dec)
	}
	u, _, _ := DecodeUint64(rest)
	if u != 7 {
		t.Errorf("suffix = %d", u)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeString([]byte{0x61}); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, _, err := DecodeUint64([]byte{1, 2}); err == nil {
		t.Error("short uint64 should fail")
	}
	if _, _, err := DecodeDecimal(nil); err == nil {
		t.Error("empty decimal should fail")
	}
	if _, _, err := DecodeDecimal([]byte{0x09}); err == nil {
		t.Error("bad class should fail")
	}
	if _, _, err := DecodeDecimal([]byte{0x03, 1, 2, 3, 4, '5'}); err == nil {
		t.Error("unterminated positive decimal should fail")
	}
}
