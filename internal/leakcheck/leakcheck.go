// Package leakcheck fails a test that leaks goroutines. Servers, clients,
// and fault proxies all spawn background goroutines (workers, watchdogs,
// keepalive tickers, proxy pumps); a resilience bug that strands one shows
// up here as a named stack instead of a slow buildup across the suite.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB leakcheck needs.
type TB interface {
	Cleanup(func())
	Errorf(format string, args ...any)
	Helper()
}

// Check snapshots the goroutine count and registers a cleanup that fails
// the test if, after everything the test started has had time to wind
// down, goroutines remain above the baseline. Call it first in the test so
// the baseline excludes the test's own machinery.
func Check(t TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		t.Helper()
		// Goroutines unwind asynchronously after Close/Shutdown return
		// (conn handlers draining, timers firing); retry until the count
		// converges rather than flaking on scheduler timing.
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if n > base {
			t.Errorf("leaked %d goroutine(s) (%d -> %d):\n%s",
				n-base, base, n, interestingStacks())
		}
	})
}

// interestingStacks dumps all goroutine stacks, dropping the runtime and
// testing frames that are always present, so the report points at the leak.
func interestingStacks() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var keep []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "testing.") ||
			strings.Contains(g, "runtime.goexit") && !strings.Contains(g, "rx/") {
			continue
		}
		keep = append(keep, g)
	}
	if len(keep) == 0 {
		return string(buf)
	}
	return fmt.Sprintf("%d suspicious stack(s):\n%s", len(keep), strings.Join(keep, "\n\n"))
}
