// Package lock implements the lock manager of §5: multiple-granularity
// locking (IS/IX/S/SIX/X) over a hierarchy of collection → document →
// node resources. Node resources are identified by prefix-encoded node IDs,
// so the ancestor/descendant relationships the multigranularity protocol
// needs reduce to prefix tests (§5.2): locking a node takes intention locks
// on the collection, the document, and every ancestor node (each proper
// prefix of the node ID), then the requested lock on the node itself.
//
// Deadlocks are resolved by bounded waits: a request that cannot be granted
// within the manager's timeout fails with ErrTimeout and the caller aborts.
package lock

import (
	"fmt"
	"sync"
	"time"

	"rx/internal/nodeid"
	"rx/internal/rxerr"
	"rx/internal/xml"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes in increasing strength order for upgrades.
const (
	IS Mode = iota + 1
	IX
	S
	SIX
	X
)

var modeNames = [...]string{IS: "IS", IX: "IX", S: "S", SIX: "SIX", X: "X"}

func (m Mode) String() string {
	if int(m) < len(modeNames) && modeNames[m] != "" {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// compatible is the standard multigranularity compatibility matrix.
var compatible = map[Mode]map[Mode]bool{
	IS:  {IS: true, IX: true, S: true, SIX: true, X: false},
	IX:  {IS: true, IX: true, S: false, SIX: false, X: false},
	S:   {IS: true, IX: false, S: true, SIX: false, X: false},
	SIX: {IS: true, IX: false, S: false, SIX: false, X: false},
	X:   {IS: false, IX: false, S: false, SIX: false, X: false},
}

// supremum[a][b] is the weakest mode covering both a and b (for upgrades).
var supremum = map[Mode]map[Mode]Mode{
	IS:  {IS: IS, IX: IX, S: S, SIX: SIX, X: X},
	IX:  {IS: IX, IX: IX, S: SIX, SIX: SIX, X: X},
	S:   {IS: S, IX: SIX, S: S, SIX: SIX, X: X},
	SIX: {IS: SIX, IX: SIX, S: SIX, SIX: SIX, X: X},
	X:   {IS: X, IX: X, S: X, SIX: X, X: X},
}

// Resource identifies a lockable object. The zero Node means the whole
// document; the zero Doc means the whole collection.
type Resource struct {
	Col  string
	Doc  xml.DocID
	Node string // string(nodeid.ID); "" for document-level
}

func (r Resource) String() string {
	switch {
	case r.Doc == 0:
		return "col:" + r.Col
	case r.Node == "":
		return fmt.Sprintf("doc:%s/%d", r.Col, r.Doc)
	default:
		return fmt.Sprintf("node:%s/%d/%s", r.Col, r.Doc, nodeid.ID(r.Node))
	}
}

// CollectionRes builds a collection resource.
func CollectionRes(col string) Resource { return Resource{Col: col} }

// DocRes builds a document resource.
func DocRes(col string, doc xml.DocID) Resource { return Resource{Col: col, Doc: doc} }

// NodeRes builds a node resource.
func NodeRes(col string, doc xml.DocID, id nodeid.ID) Resource {
	return Resource{Col: col, Doc: doc, Node: string(id)}
}

// ErrTimeout reports a lock wait that exceeded the manager's bound; the
// caller should treat it as a deadlock victim and abort. It matches
// rxerr.ErrLockTimeout under errors.Is, linking it into the engine-wide
// error taxonomy.
var ErrTimeout error = &timeoutError{}

type timeoutError struct{}

func (*timeoutError) Error() string { return "lock: wait timeout (possible deadlock)" }

func (*timeoutError) Is(target error) bool { return target == rxerr.ErrLockTimeout }

// Manager is the lock manager.
type Manager struct {
	timeout time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	table   map[Resource]map[*Txn]Mode
	seq     uint64
	waiters int
}

// NewManager creates a manager with the given wait timeout in milliseconds.
func NewManager(timeoutMillis int) *Manager {
	m := &Manager{
		timeout: time.Duration(timeoutMillis) * time.Millisecond,
		table:   map[Resource]map[*Txn]Mode{},
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Txn is a lock owner.
type Txn struct {
	mgr  *Manager
	id   uint64
	held map[Resource]Mode
}

// Begin starts a new lock owner.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	m.seq++
	t := &Txn{mgr: m, id: m.seq, held: map[Resource]Mode{}}
	m.mu.Unlock()
	return t
}

// ID returns the owner's identifier.
func (t *Txn) ID() uint64 { return t.id }

// Lock acquires (or upgrades to) mode on the resource, waiting up to the
// manager's timeout.
func (t *Txn) Lock(res Resource, mode Mode) error {
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := t.held[res]; ok {
		mode = supremum[cur][mode]
		if mode == cur {
			return nil
		}
	}
	deadline := time.Now().Add(m.timeout)
	for !m.grantableLocked(t, res, mode) {
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: %s %s by txn %d", ErrTimeout, mode, res, t.id)
		}
		// Bounded wait: wake on any release, re-check, give up at deadline.
		m.waiters++
		waitWithDeadline(m.cond, deadline)
		m.waiters--
	}
	g := m.table[res]
	if g == nil {
		g = map[*Txn]Mode{}
		m.table[res] = g
	}
	g[t] = mode
	t.held[res] = mode
	return nil
}

// waitWithDeadline waits on cond but no longer than the deadline. The
// condition's lock must be held.
func waitWithDeadline(cond *sync.Cond, deadline time.Time) {
	timer := time.AfterFunc(time.Until(deadline), func() {
		cond.L.Lock()
		cond.Broadcast()
		cond.L.Unlock()
	})
	cond.Wait()
	timer.Stop()
}

// grantableLocked checks compatibility against all other holders.
func (m *Manager) grantableLocked(t *Txn, res Resource, mode Mode) bool {
	for holder, held := range m.table[res] {
		if holder == t {
			continue
		}
		if !compatible[held][mode] {
			return false
		}
	}
	return true
}

// TryLock acquires the lock only if immediately grantable.
func (t *Txn) TryLock(res Resource, mode Mode) bool {
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := t.held[res]; ok {
		mode = supremum[cur][mode]
		if mode == cur {
			return true
		}
	}
	if !m.grantableLocked(t, res, mode) {
		return false
	}
	g := m.table[res]
	if g == nil {
		g = map[*Txn]Mode{}
		m.table[res] = g
	}
	g[t] = mode
	t.held[res] = mode
	return true
}

// LockDoc takes an intention lock on the collection and the requested lock
// on the document (document-level concurrency, §5.1).
func (t *Txn) LockDoc(col string, doc xml.DocID, mode Mode) error {
	intent := IS
	if mode == IX || mode == X || mode == SIX {
		intent = IX
	}
	if err := t.Lock(CollectionRes(col), intent); err != nil {
		return err
	}
	return t.Lock(DocRes(col, doc), mode)
}

// LockNode takes the full multigranularity ladder for a node: intention
// locks on the collection, the document and every ancestor node (each
// proper prefix of the node ID), then the requested lock on the node
// (subdocument concurrency, §5.2).
func (t *Txn) LockNode(col string, doc xml.DocID, id nodeid.ID, mode Mode) error {
	intent := IS
	if mode == IX || mode == X || mode == SIX {
		intent = IX
	}
	if err := t.Lock(CollectionRes(col), intent); err != nil {
		return err
	}
	if err := t.Lock(DocRes(col, doc), intent); err != nil {
		return err
	}
	rels, err := nodeid.Split(id)
	if err != nil {
		return err
	}
	prefix := nodeid.ID{}
	for i := 0; i < len(rels)-1; i++ {
		prefix = nodeid.Append(prefix, rels[i])
		if err := t.Lock(NodeRes(col, doc, prefix), intent); err != nil {
			return err
		}
	}
	return t.Lock(NodeRes(col, doc, id), mode)
}

// ReleaseAll drops every lock the owner holds and wakes waiters.
func (t *Txn) ReleaseAll() {
	m := t.mgr
	m.mu.Lock()
	for res := range t.held {
		g := m.table[res]
		delete(g, t)
		if len(g) == 0 {
			delete(m.table, res)
		}
	}
	t.held = map[Resource]Mode{}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Waiting reports how many lock requests are currently blocked waiting for
// a grant. It is the manager's saturation signal: a deep wait queue means
// the workload is lock-bound, and admission control can shed new work
// instead of queuing more waiters behind the same conflicts.
func (m *Manager) Waiting() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.waiters
}

// Held returns the number of locks the owner holds (tests).
func (t *Txn) Held() int {
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(t.held)
}

// TryLockNodeX attempts the full node-lock ladder in X mode without
// waiting; it reports whether every lock (intentions included) was
// immediately grantable. Locks acquired before a refusal are kept (release
// with ReleaseAll).
func (t *Txn) TryLockNodeX(col string, doc xml.DocID, id nodeid.ID) bool {
	if !t.TryLock(CollectionRes(col), IX) || !t.TryLock(DocRes(col, doc), IX) {
		return false
	}
	rels, err := nodeid.Split(id)
	if err != nil {
		return false
	}
	prefix := nodeid.ID{}
	for i := 0; i < len(rels)-1; i++ {
		prefix = nodeid.Append(prefix, rels[i])
		if !t.TryLock(NodeRes(col, doc, prefix), IX) {
			return false
		}
	}
	return t.TryLock(NodeRes(col, doc, id), X)
}
