package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"rx/internal/nodeid"
)

func TestCompatibilityMatrix(t *testing.T) {
	m := NewManager(50)
	cases := []struct {
		a, b Mode
		ok   bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, SIX, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, SIX, false}, {IX, X, false},
		{S, S, true}, {S, IX, false}, {S, X, false},
		{SIX, IS, true}, {SIX, S, false}, {SIX, SIX, false},
		{X, IS, false}, {X, X, false},
	}
	for _, c := range cases {
		res := DocRes("c", 1)
		a := m.Begin()
		b := m.Begin()
		if err := a.Lock(res, c.a); err != nil {
			t.Fatalf("%v/%v: %v", c.a, c.b, err)
		}
		got := b.TryLock(res, c.b)
		if got != c.ok {
			t.Errorf("holding %v, requesting %v: grantable = %v, want %v", c.a, c.b, got, c.ok)
		}
		a.ReleaseAll()
		b.ReleaseAll()
	}
}

func TestUpgrade(t *testing.T) {
	m := NewManager(50)
	res := DocRes("c", 1)
	a := m.Begin()
	if err := a.Lock(res, S); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(res, X); err != nil {
		t.Fatalf("self-upgrade S→X: %v", err)
	}
	b := m.Begin()
	if b.TryLock(res, S) {
		t.Error("S should not be grantable against an upgraded X")
	}
	// S + IX = SIX supremum.
	a.ReleaseAll()
	a.Lock(res, S)
	a.Lock(res, IX)
	if a.held[res] != SIX {
		t.Errorf("S+IX = %v, want SIX", a.held[res])
	}
}

func TestTimeout(t *testing.T) {
	m := NewManager(30)
	res := DocRes("c", 1)
	a := m.Begin()
	a.Lock(res, X)
	b := m.Begin()
	start := time.Now()
	err := b.Lock(res, S)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("timed out too early")
	}
}

func TestWaitersWakeOnRelease(t *testing.T) {
	m := NewManager(2000)
	res := DocRes("c", 1)
	a := m.Begin()
	a.Lock(res, X)
	done := make(chan error, 1)
	go func() {
		b := m.Begin()
		done <- b.Lock(res, S)
	}()
	time.Sleep(20 * time.Millisecond)
	a.ReleaseAll()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken")
	}
}

func TestLockDocHierarchy(t *testing.T) {
	m := NewManager(30)
	a := m.Begin()
	if err := a.LockDoc("col", 5, X); err != nil {
		t.Fatal(err)
	}
	// Another writer on a different doc in the same collection proceeds
	// (IX-IX compatible).
	b := m.Begin()
	if err := b.LockDoc("col", 6, X); err != nil {
		t.Errorf("different doc should not conflict: %v", err)
	}
	// A whole-collection S lock conflicts with the IX intents.
	c := m.Begin()
	if c.TryLock(CollectionRes("col"), S) {
		t.Error("collection S should conflict with document writers")
	}
	a.ReleaseAll()
	b.ReleaseAll()
}

func TestNodePrefixLadder(t *testing.T) {
	m := NewManager(30)
	doc := nodeid.ID{0x02}
	left := nodeid.Append(doc, nodeid.RelAt(0))   // 0202
	right := nodeid.Append(doc, nodeid.RelAt(1))  // 0204
	inner := nodeid.Append(left, nodeid.RelAt(0)) // 020202

	a := m.Begin()
	if err := a.LockNode("c", 1, left, X); err != nil {
		t.Fatal(err)
	}
	b := m.Begin()
	if !b.TryLockNodeX("c", 1, right) {
		t.Error("disjoint subtree should be grantable")
	}
	b.ReleaseAll()
	if b.TryLockNodeX("c", 1, inner) {
		t.Error("descendant of an X-locked node should be blocked")
	}
	b.ReleaseAll()
	if b.TryLockNodeX("c", 1, doc) {
		t.Error("ancestor of an X-locked node should be blocked (IX conflicts with X)")
	}
	b.ReleaseAll()
	a.ReleaseAll()
}

func TestReleaseAllCount(t *testing.T) {
	m := NewManager(30)
	a := m.Begin()
	a.LockNode("c", 1, nodeid.ID{0x02, 0x02, 0x02}, X)
	if a.Held() != 5 { // collection, doc, 2 ancestors, node
		t.Errorf("held = %d, want 5", a.Held())
	}
	a.ReleaseAll()
	if a.Held() != 0 {
		t.Errorf("held after release = %d", a.Held())
	}
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager(500)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tx := m.Begin()
				mode := S
				if (g+i)%4 == 0 {
					mode = X
				}
				if err := tx.LockDoc("c", 1, mode); err != nil && !errors.Is(err, ErrTimeout) {
					t.Error(err)
				}
				tx.ReleaseAll()
			}
		}(g)
	}
	wg.Wait()
}

func TestDeadlockVictimUnderRealContention(t *testing.T) {
	// Two goroutines acquire the same two resources in opposite order — a
	// textbook deadlock. Bounded waits must victimize exactly one (it sees
	// ErrTimeout and releases), after which the survivor completes both
	// acquisitions. The victim's second lock is requested well before the
	// survivor's so the victim's deadline expires first, making the outcome
	// deterministic.
	m := NewManager(400)
	r1 := CollectionRes("r1")
	r2 := CollectionRes("r2")
	victim, survivor := m.Begin(), m.Begin()

	if err := victim.Lock(r1, X); err != nil {
		t.Fatal(err)
	}
	if err := survivor.Lock(r2, X); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		err := victim.Lock(r2, X) // blocks on survivor
		if err != nil {
			victim.ReleaseAll() // abort: give the survivor its lock
		}
		errs <- err
	}()
	go func() {
		defer wg.Done()
		time.Sleep(150 * time.Millisecond) // request after the victim
		err := survivor.Lock(r1, X)
		if err == nil {
			survivor.ReleaseAll()
		}
		errs <- err
	}()
	wg.Wait()
	close(errs)

	var timeouts, successes int
	for err := range errs {
		switch {
		case err == nil:
			successes++
		case errors.Is(err, ErrTimeout):
			timeouts++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if timeouts != 1 || successes != 1 {
		t.Fatalf("got %d timeouts and %d successes, want exactly 1 of each", timeouts, successes)
	}
}
