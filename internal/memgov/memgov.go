// Package memgov implements hierarchical byte budgets for memory
// governance: a server-wide budget with per-session and per-query children,
// charged at the engine's real allocation sites (cursor batch buffers,
// parse/ingest arenas, bulk-load staging, result framing) rather than
// estimated. A reservation that does not fit anywhere on the chain fails
// with the typed rxerr.OverBudgetError naming the breached scope, so one
// oversized query dies with a clean error while the session, the
// connection, and the server keep running.
//
// The package is a leaf (it imports only rxerr) so every layer — core,
// session, server — can thread a *Budget without dependency knots. A nil
// *Budget is valid everywhere and accounts nothing, mirroring the nil
// *arena.Arena convention: call sites charge unconditionally and ungoverned
// configurations pay only a nil check.
package memgov

import (
	"sync"
	"sync/atomic"

	"rx/internal/rxerr"
)

// Budget is one node in a budget hierarchy. Reservations charge this node
// and then walk up to the root; releases walk the same chain. A limit of 0
// means unlimited — usage is still tracked for stats, nothing is denied at
// this node (ancestors may still deny).
type Budget struct {
	scope  string
	limit  int64
	parent *Budget

	mu   sync.Mutex
	used int64
	hw   int64

	denials atomic.Uint64
}

// New builds a root budget. limit 0 = unlimited (account only).
func New(scope string, limit int64) *Budget {
	return &Budget{scope: scope, limit: limit}
}

// Child derives a sub-budget whose reservations also charge this budget.
// A nil receiver returns a parentless budget, so ungoverned layers can
// still hand their callees a scoped budget.
func (b *Budget) Child(scope string, limit int64) *Budget {
	return &Budget{scope: scope, limit: limit, parent: b}
}

// Reserve charges n bytes against this budget and every ancestor. On a
// breach anywhere on the chain nothing stays charged and the typed
// rxerr.OverBudgetError names the scope that denied. Reserving on a nil
// budget always succeeds. n <= 0 is a no-op.
func (b *Budget) Reserve(n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	if err := b.reserveOne(n); err != nil {
		return err
	}
	if err := b.parent.Reserve(n); err != nil {
		b.releaseOne(n)
		return err
	}
	return nil
}

func (b *Budget) reserveOne(n int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit > 0 && b.used+n > b.limit {
		b.denials.Add(1)
		return rxerr.OverBudgetError{Scope: b.scope, Limit: b.limit, Used: b.used, Need: n}
	}
	b.used += n
	if b.used > b.hw {
		b.hw = b.used
	}
	return nil
}

// Release returns n bytes to this budget and every ancestor. Releasing on a
// nil budget is a no-op.
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.releaseOne(n)
	b.parent.Release(n)
}

func (b *Budget) releaseOne(n int64) {
	b.mu.Lock()
	b.used -= n
	if b.used < 0 {
		// Over-release is a call-site bug; clamp so stats stay sane.
		b.used = 0
	}
	b.mu.Unlock()
}

// Used returns the bytes currently charged at this node.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// HighWater returns the peak bytes ever charged at this node.
func (b *Budget) HighWater() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hw
}

// Limit returns the node's byte cap (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Scope returns the node's name.
func (b *Budget) Scope() string {
	if b == nil {
		return ""
	}
	return b.scope
}

// Denials returns how many reservations this node has denied.
func (b *Budget) Denials() uint64 {
	if b == nil {
		return 0
	}
	return b.denials.Load()
}
