package memgov

import (
	"errors"
	"testing"

	"rx/internal/rxerr"
)

func TestReserveReleaseHierarchy(t *testing.T) {
	root := New("server", 100)
	sess := root.Child("session", 80)
	q := sess.Child("query", 50)

	if err := q.Reserve(40); err != nil {
		t.Fatalf("reserve 40: %v", err)
	}
	if got := root.Used(); got != 40 {
		t.Fatalf("root used = %d, want 40 (charges walk to the root)", got)
	}
	// Query cap denies first.
	err := q.Reserve(20)
	if !errors.Is(err, rxerr.ErrOverBudget) {
		t.Fatalf("reserve 20 = %v, want ErrOverBudget", err)
	}
	var ob rxerr.OverBudgetError
	if !errors.As(err, &ob) || ob.Scope != "query" {
		t.Fatalf("denying scope = %q, want query", ob.Scope)
	}
	// A denial anywhere on the chain leaves nothing charged.
	sibling := sess.Child("query", 50)
	if err := sibling.Reserve(45); !errors.Is(err, rxerr.ErrOverBudget) {
		t.Fatalf("sibling reserve = %v, want ErrOverBudget (session cap)", err)
	}
	var sob rxerr.OverBudgetError
	errors.As(sibling.Reserve(45), &sob)
	if sob.Scope != "session" {
		t.Fatalf("denying scope = %q, want session", sob.Scope)
	}
	if got := sibling.Used(); got != 0 {
		t.Fatalf("sibling used after denial = %d, want 0 (rollback)", got)
	}
	if got := sess.Used(); got != 40 {
		t.Fatalf("session used after denial = %d, want 40", got)
	}

	q.Release(40)
	if root.Used() != 0 || sess.Used() != 0 || q.Used() != 0 {
		t.Fatalf("used after release = %d/%d/%d, want 0/0/0",
			root.Used(), sess.Used(), q.Used())
	}
	if got := root.HighWater(); got != 40 {
		t.Fatalf("root high water = %d, want 40", got)
	}
	if got := sess.Denials(); got != 2 {
		t.Fatalf("session denials = %d, want 2", got)
	}
}

func TestUnlimitedTracksOnly(t *testing.T) {
	b := New("server", 0)
	if err := b.Reserve(1 << 40); err != nil {
		t.Fatalf("unlimited budget denied: %v", err)
	}
	if got := b.Used(); got != 1<<40 {
		t.Fatalf("used = %d", got)
	}
}

func TestNilBudgetIsSafe(t *testing.T) {
	var b *Budget
	if err := b.Reserve(1 << 30); err != nil {
		t.Fatalf("nil reserve: %v", err)
	}
	b.Release(1 << 30)
	if b.Used() != 0 || b.Limit() != 0 || b.HighWater() != 0 || b.Denials() != 0 || b.Scope() != "" {
		t.Fatal("nil accessors must all zero out")
	}
	// A child of nil is a working parentless budget.
	c := b.Child("query", 10)
	if err := c.Reserve(20); !errors.Is(err, rxerr.ErrOverBudget) {
		t.Fatalf("child of nil reserve = %v, want ErrOverBudget", err)
	}
	if err := c.Reserve(10); err != nil {
		t.Fatalf("child of nil within limit: %v", err)
	}
}

func TestOverReleaseClamps(t *testing.T) {
	b := New("server", 100)
	if err := b.Reserve(10); err != nil {
		t.Fatal(err)
	}
	b.Release(50)
	if got := b.Used(); got != 0 {
		t.Fatalf("used after over-release = %d, want 0", got)
	}
}
