// Package nodeid implements the prefix-encoded Dewey node IDs of System R/X
// (Zhang, SIGMOD/XIME-P 2005, §3.1).
//
// A node's absolute ID is the concatenation of relative IDs along the path
// from the root to the node. The root's ID is always 00 and therefore implicit:
// the root's absolute ID is the empty byte string. Each relative ID is a
// self-terminating byte string: every byte except the last is odd, and the
// last byte is even. This encoding has three properties the engine relies on:
//
//   - Plain byte-string comparison of absolute IDs yields document order
//     (an ancestor sorts immediately before its descendants).
//   - Ancestor/descendant relationships reduce to prefix tests, because no
//     relative ID is a proper prefix of another (a proper prefix would end in
//     an odd byte, which cannot terminate a relative ID).
//   - There is always room to insert a new ID strictly between two existing
//     sibling IDs by extending the ID length, so IDs are stable under update:
//     an insertion never relabels existing nodes.
package nodeid

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
)

// ID is an absolute node ID: the concatenation of relative IDs from the root
// (exclusive) down to the node. The root itself has the empty ID.
type ID []byte

// Rel is a single relative ID: one or more bytes, all odd except the final
// even byte.
type Rel []byte

// Root is the absolute ID of the document root node.
var Root = ID{}

// ErrInvalid reports a malformed node ID.
var ErrInvalid = errors.New("nodeid: invalid node ID")

// Compare orders two absolute IDs in document order. An ancestor compares
// less than all of its descendants.
func Compare(a, b ID) int { return bytes.Compare(a, b) }

// Equal reports whether a and b identify the same node.
func Equal(a, b ID) bool { return bytes.Equal(a, b) }

// IsAncestorOrSelf reports whether a is b or an ancestor of b.
// Both IDs must be valid; validity makes the prefix test exact because a
// valid ID can only be a prefix of another at a level boundary.
func IsAncestorOrSelf(a, b ID) bool { return bytes.HasPrefix(b, a) }

// IsAncestor reports whether a is a proper ancestor of b.
func IsAncestor(a, b ID) bool { return len(a) < len(b) && bytes.HasPrefix(b, a) }

// Valid reports whether id is a well-formed absolute node ID, i.e. a
// concatenation of zero or more valid relative IDs.
func Valid(id ID) bool {
	i := 0
	for i < len(id) {
		n := relLen(id[i:])
		if n == 0 {
			return false
		}
		i += n
	}
	return true
}

// relLen returns the length of the relative ID at the front of b, or 0 if b
// does not start with a complete relative ID.
func relLen(b []byte) int {
	for i, c := range b {
		if c%2 == 0 {
			if c == 0 {
				return 0 // 0x00 is reserved for the implicit root
			}
			return i + 1
		}
	}
	return 0
}

// ValidRel reports whether r is a well-formed relative ID.
func ValidRel(r Rel) bool { return len(r) > 0 && relLen(r) == len(r) }

// Split decomposes an absolute ID into its relative IDs, one per level below
// the root. Split(Root) returns nil.
func Split(id ID) ([]Rel, error) {
	var out []Rel
	i := 0
	for i < len(id) {
		n := relLen(id[i:])
		if n == 0 {
			return nil, fmt.Errorf("%w: %s at offset %d", ErrInvalid, id, i)
		}
		out = append(out, Rel(id[i:i+n]))
		i += n
	}
	return out, nil
}

// Level returns the depth of the node below the root (root = 0), or -1 if id
// is malformed.
func Level(id ID) int {
	lvl, i := 0, 0
	for i < len(id) {
		n := relLen(id[i:])
		if n == 0 {
			return -1
		}
		i += n
		lvl++
	}
	return lvl
}

// Parent returns the absolute ID of the node's parent. Parent of the root is
// the root itself.
func Parent(id ID) (ID, error) {
	if len(id) == 0 {
		return Root, nil
	}
	rels, err := Split(id)
	if err != nil {
		return nil, err
	}
	n := 0
	for _, r := range rels[:len(rels)-1] {
		n += len(r)
	}
	return id[:n], nil
}

// Append returns the absolute ID formed by descending from id along rel.
// The result shares no storage with id.
func Append(id ID, rel Rel) ID {
	out := make(ID, 0, len(id)+len(rel))
	out = append(out, id...)
	out = append(out, rel...)
	return out
}

// relSingles caches the 127 single-byte relative IDs; callers must treat
// RelAt results as immutable (every API that stores one copies it).
var relSingles = func() [127]Rel {
	var t [127]Rel
	for i := range t {
		t[i] = Rel{byte(2*i + 2)}
	}
	return t
}()

// RelAt returns the relative ID assigned to the i-th (0-based) child slot
// when children are labeled sequentially at initial construction. RelAt is
// strictly increasing in i under byte comparison and its length grows
// logarithmically in i, so wide fan-outs stay compact:
//
//	level 0 (1 byte):  i in [0, 127)            → E(i)
//	level 1 (3 bytes): next 126·127 values      → FF  O(d) E(e)
//	level 2 (5 bytes): next 126²·127 values     → FF FD O(d) O(d) E(e)
//	level L:           FF FD×(L-1) O-digits×L E(e)
//
// where E(v) = 2v+2 (even terminator, base 127) and O(d) = 2d+1 with
// d < 126 (odd continuation digits; 0xFD and 0xFF are reserved as the
// level-escalation markers, which is what makes longer codes sort after
// all shorter ones). Results are shared for i < 127 and must not be
// mutated.
func RelAt(i int) Rel {
	if i < 0 {
		panic("nodeid: negative child index")
	}
	if i < 127 {
		return relSingles[i]
	}
	i -= 127
	digits := 1
	capacity := 126 * 127
	r := Rel{0xFF}
	for i >= capacity {
		i -= capacity
		capacity *= 126
		digits++
		r = append(r, 0xFD)
	}
	// Encode i as `digits` base-126 O-digits followed by a base-127 E digit.
	e := i % 127
	i /= 127
	ds := make([]int, digits)
	for d := digits - 1; d >= 0; d-- {
		ds[d] = i % 126
		i /= 126
	}
	for _, d := range ds {
		r = append(r, byte(2*d+1))
	}
	return append(r, byte(2*e+2))
}

// Next returns the relative ID that sorts immediately into the open slot
// after r when appending at the end of a sibling list: the successor used by
// updates that append after the current last child.
func Next(r Rel) Rel {
	if len(r) == 0 {
		return Rel{0x02}
	}
	last := r[len(r)-1]
	if last <= 0xFC {
		out := make(Rel, len(r))
		copy(out, r)
		out[len(out)-1] = last + 2
		return out
	}
	// ...FE: extend with FF 02.
	out := make(Rel, 0, len(r)+1)
	out = append(out, r[:len(r)-1]...)
	out = append(out, 0xFF, 0x02)
	return out
}

// Between returns a valid relative ID x with lo < x < hi in byte order.
// An empty lo means "no lower bound" (insert before the first sibling); an
// empty hi means "no upper bound" (insert after the last sibling). lo and hi
// must be valid relative IDs when non-empty, and lo < hi. Between always
// succeeds: the encoding guarantees space can be made by extending length.
func Between(lo, hi Rel) (Rel, error) {
	if len(lo) > 0 && !ValidRel(lo) {
		return nil, fmt.Errorf("%w: lo %x", ErrInvalid, []byte(lo))
	}
	if len(hi) > 0 && !ValidRel(hi) {
		return nil, fmt.Errorf("%w: hi %x", ErrInvalid, []byte(hi))
	}
	if len(lo) > 0 && len(hi) > 0 && bytes.Compare(lo, hi) >= 0 {
		return nil, fmt.Errorf("nodeid: Between bounds out of order: %x >= %x", []byte(lo), []byte(hi))
	}
	x := between(lo, hi)
	return x, nil
}

// between computes a byte string strictly between lo and hi such that every
// byte but the last is odd and the last is even. Empty bounds are open.
// Precondition: lo < hi when both are non-empty (and neither is a prefix of
// the other, which validity of relative IDs guarantees).
func between(lo, hi []byte) []byte {
	switch {
	case len(lo) == 0 && len(hi) == 0:
		return []byte{0x02}
	case len(lo) == 0:
		return before(hi)
	case len(hi) == 0:
		return Next(Rel(lo))
	}
	// Find the first differing byte. Validity ⇒ neither is a prefix of the
	// other, so i < min(len(lo), len(hi)).
	i := 0
	for lo[i] == hi[i] {
		i++
	}
	a, b := lo[i], hi[i]
	if b-a >= 2 {
		// Prefer an even byte strictly between a and b; the result ends here.
		m := a + 2
		if m%2 != 0 {
			m = a + 1
		}
		if m < b {
			out := make([]byte, 0, i+1)
			out = append(out, lo[:i]...)
			return append(out, m)
		}
		// Gap of exactly 2 with a even: only a+1 (odd) lies between; use it
		// as a continuation byte and terminate with 02.
		out := make([]byte, 0, i+2)
		out = append(out, lo[:i]...)
		return append(out, a+1, 0x02)
	}
	// b == a+1: no room at this byte.
	if a%2 == 1 {
		// lo continues past i; stay equal to lo at i and go after lo's suffix.
		out := make([]byte, 0, i+1)
		out = append(out, lo[:i+1]...)
		return append(out, Next(Rel(lo[i+1:]))...)
	}
	// a even ⇒ lo ends at i; b odd ⇒ hi continues. Stay equal to hi at i and
	// go before hi's suffix.
	out := make([]byte, 0, i+1)
	out = append(out, hi[:i+1]...)
	return append(out, before(hi[i+1:])...)
}

// before returns a valid relative ID strictly less than hi (non-empty, valid).
func before(hi []byte) []byte {
	c := hi[0]
	switch {
	case c >= 0x04:
		// An even byte strictly below c terminates immediately.
		if c%2 == 0 {
			return []byte{c - 2}
		}
		return []byte{c - 1}
	case c == 0x03:
		return []byte{0x02}
	case c == 0x02:
		// hi is exactly {0x02}: descend below it with an odd prefix.
		return []byte{0x01, 0x02}
	default: // c == 0x01: hi continues; recurse under the 0x01 prefix.
		return append([]byte{0x01}, before(hi[1:])...)
	}
}

// String renders the ID as lowercase hex, with the implicit root shown as
// "00" to match the paper's figures.
func (id ID) String() string {
	if len(id) == 0 {
		return "00"
	}
	return hex.EncodeToString(id)
}

// String renders the relative ID as lowercase hex.
func (r Rel) String() string { return hex.EncodeToString(r) }

// Parse converts a hex string (as produced by String) back into an ID.
func Parse(s string) (ID, error) {
	if s == "00" || s == "" {
		return Root, nil
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	id := ID(b)
	if !Valid(id) {
		return nil, fmt.Errorf("%w: %s", ErrInvalid, s)
	}
	return id, nil
}

// Clone returns a copy of id with its own backing storage.
func Clone(id ID) ID {
	if id == nil {
		return nil
	}
	out := make(ID, len(id))
	copy(out, id)
	return out
}

// LastRel returns the final relative ID of id. The root has no relative ID.
func LastRel(id ID) (Rel, error) {
	if len(id) == 0 {
		return nil, fmt.Errorf("%w: root has no relative ID", ErrInvalid)
	}
	rels, err := Split(id)
	if err != nil {
		return nil, err
	}
	return rels[len(rels)-1], nil
}
