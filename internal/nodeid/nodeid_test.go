package nodeid

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRelAtMonotonic(t *testing.T) {
	var prev Rel
	for i := 0; i < 200000; i++ {
		r := RelAt(i)
		if !ValidRel(r) {
			t.Fatalf("RelAt(%d) = %x invalid", i, []byte(r))
		}
		if prev != nil && bytes.Compare(prev, r) >= 0 {
			t.Fatalf("RelAt not increasing at %d: %x >= %x", i, []byte(prev), []byte(r))
		}
		prev = r
	}
}

func TestRelAtBoundaries(t *testing.T) {
	cases := []struct {
		i    int
		want Rel
	}{
		{0, Rel{0x02}},
		{1, Rel{0x04}},
		{126, Rel{0xFE}},
		{127, Rel{0xFF, 0x01, 0x02}},
		{253, Rel{0xFF, 0x01, 0xFE}},
		{254, Rel{0xFF, 0x03, 0x02}},
		{127 + 126*127 - 1, Rel{0xFF, 0xFB, 0xFE}},
		{127 + 126*127, Rel{0xFF, 0xFD, 0x01, 0x01, 0x02}},
	}
	for _, c := range cases {
		if got := RelAt(c.i); !bytes.Equal(got, c.want) {
			t.Errorf("RelAt(%d) = %x, want %x", c.i, []byte(got), []byte(c.want))
		}
	}
}

func TestNext(t *testing.T) {
	cases := []struct{ in, want Rel }{
		{nil, Rel{0x02}},
		{Rel{0x02}, Rel{0x04}},
		{Rel{0xFC}, Rel{0xFE}},
		{Rel{0xFE}, Rel{0xFF, 0x02}},
		{Rel{0xFF, 0xFE}, Rel{0xFF, 0xFF, 0x02}},
		{Rel{0x03, 0x02}, Rel{0x03, 0x04}},
	}
	for _, c := range cases {
		got := Next(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("Next(%x) = %x, want %x", []byte(c.in), []byte(got), []byte(c.want))
		}
		if len(c.in) > 0 && bytes.Compare(c.in, got) >= 0 {
			t.Errorf("Next(%x) = %x not greater", []byte(c.in), []byte(got))
		}
	}
}

func TestValid(t *testing.T) {
	valid := []ID{{}, {0x02}, {0x02, 0x04}, {0x03, 0x02}, {0xFF, 0xFF, 0x02, 0x04}}
	for _, id := range valid {
		if !Valid(id) {
			t.Errorf("Valid(%x) = false, want true", []byte(id))
		}
	}
	invalid := []ID{{0x03}, {0x01}, {0x02, 0x03}, {0x00}, {0x02, 0x00}}
	for _, id := range invalid {
		if Valid(id) {
			t.Errorf("Valid(%x) = true, want false", []byte(id))
		}
	}
}

func TestSplitLevelParent(t *testing.T) {
	id := ID{0x02, 0x03, 0x04, 0xFF, 0x06}
	rels, err := Split(id)
	if err != nil {
		t.Fatal(err)
	}
	want := []Rel{{0x02}, {0x03, 0x04}, {0xFF, 0x06}}
	if len(rels) != len(want) {
		t.Fatalf("Split levels = %d, want %d", len(rels), len(want))
	}
	for i := range want {
		if !bytes.Equal(rels[i], want[i]) {
			t.Errorf("level %d = %x, want %x", i, []byte(rels[i]), []byte(want[i]))
		}
	}
	if got := Level(id); got != 3 {
		t.Errorf("Level = %d, want 3", got)
	}
	p, err := Parent(id)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(p, ID{0x02, 0x03, 0x04}) {
		t.Errorf("Parent = %s", p)
	}
	root, err := Parent(Root)
	if err != nil || !Equal(root, Root) {
		t.Errorf("Parent(root) = %s, %v", root, err)
	}
	last, err := LastRel(id)
	if err != nil || !bytes.Equal(last, Rel{0xFF, 0x06}) {
		t.Errorf("LastRel = %x, %v", []byte(last), err)
	}
	if _, err := LastRel(Root); err == nil {
		t.Error("LastRel(root) should fail")
	}
}

func TestAncestor(t *testing.T) {
	a := ID{0x02}
	b := ID{0x02, 0x04}
	c := ID{0x02, 0x04, 0x06}
	d := ID{0x04}
	if !IsAncestor(a, b) || !IsAncestor(a, c) || !IsAncestor(b, c) {
		t.Error("expected ancestor relationships missing")
	}
	if IsAncestor(b, a) || IsAncestor(d, b) || IsAncestor(a, a) {
		t.Error("unexpected ancestor relationships")
	}
	if !IsAncestorOrSelf(a, a) || !IsAncestorOrSelf(Root, c) {
		t.Error("ancestor-or-self failures")
	}
	// Document order: ancestor sorts before descendants.
	if Compare(a, b) >= 0 || Compare(b, c) >= 0 {
		t.Error("ancestors must precede descendants in document order")
	}
}

func TestBetweenSimple(t *testing.T) {
	cases := []struct{ lo, hi Rel }{
		{Rel{0x02}, Rel{0x04}},
		{Rel{0x02}, Rel{0x03, 0x02}},
		{Rel{0x03, 0x02}, Rel{0x04}},
		{nil, Rel{0x02}},
		{nil, Rel{0x01, 0x02}},
		{Rel{0xFE}, nil},
		{nil, nil},
		{Rel{0x02}, Rel{0x06}},
		{Rel{0x05, 0x02}, Rel{0x05, 0x04}},
		{Rel{0x03, 0x02}, Rel{0x03, 0x03, 0x02}},
	}
	for _, c := range cases {
		x, err := Between(c.lo, c.hi)
		if err != nil {
			t.Fatalf("Between(%x, %x): %v", []byte(c.lo), []byte(c.hi), err)
		}
		if !ValidRel(x) {
			t.Fatalf("Between(%x, %x) = %x invalid", []byte(c.lo), []byte(c.hi), []byte(x))
		}
		if len(c.lo) > 0 && bytes.Compare(c.lo, x) >= 0 {
			t.Errorf("Between(%x, %x) = %x not above lo", []byte(c.lo), []byte(c.hi), []byte(x))
		}
		if len(c.hi) > 0 && bytes.Compare(x, c.hi) >= 0 {
			t.Errorf("Between(%x, %x) = %x not below hi", []byte(c.lo), []byte(c.hi), []byte(x))
		}
	}
}

func TestBetweenErrors(t *testing.T) {
	if _, err := Between(Rel{0x04}, Rel{0x02}); err == nil {
		t.Error("out-of-order bounds should fail")
	}
	if _, err := Between(Rel{0x03}, Rel{0x04}); err == nil {
		t.Error("invalid lo should fail")
	}
	if _, err := Between(Rel{0x02}, Rel{0x05}); err == nil {
		t.Error("invalid hi should fail")
	}
}

// TestBetweenRepeatedInsertion simulates the paper's claim that there is
// always space for insertion in the middle: repeatedly split the same gap and
// verify order and validity hold throughout.
func TestBetweenRepeatedInsertion(t *testing.T) {
	ids := []Rel{{0x02}, {0x04}}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		j := rng.Intn(len(ids) + 1)
		var lo, hi Rel
		if j > 0 {
			lo = ids[j-1]
		}
		if j < len(ids) {
			hi = ids[j]
		}
		x, err := Between(lo, hi)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		ids = append(ids[:j], append([]Rel{x}, ids[j:]...)...)
	}
	for i := 1; i < len(ids); i++ {
		if bytes.Compare(ids[i-1], ids[i]) >= 0 {
			t.Fatalf("order violated at %d: %x >= %x", i, []byte(ids[i-1]), []byte(ids[i]))
		}
		if !ValidRel(ids[i]) {
			t.Fatalf("invalid rel at %d: %x", i, []byte(ids[i]))
		}
	}
}

// Property: Between output is always valid and strictly inside its bounds for
// arbitrary valid bounds generated from child indexes and refinement.
func TestBetweenProperty(t *testing.T) {
	f := func(seed int64, splits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := RelAt(rng.Intn(300))
		hi := RelAt(rng.Intn(300) + 301)
		for s := 0; s < int(splits%16)+1; s++ {
			x, err := Between(lo, hi)
			if err != nil || !ValidRel(x) {
				return false
			}
			if bytes.Compare(lo, x) >= 0 || bytes.Compare(x, hi) >= 0 {
				return false
			}
			if rng.Intn(2) == 0 {
				hi = x
			} else {
				lo = x
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: absolute IDs built from RelAt paths sort in document order, i.e.
// pre-order of the implied tree equals byte order.
func TestDocumentOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Generate random tree paths and check that sorting by bytes equals
		// sorting by path (lexicographic on child indexes, prefix first).
		type pathID struct {
			path []int
			id   ID
		}
		var nodes []pathID
		for i := 0; i < 50; i++ {
			depth := rng.Intn(5)
			path := make([]int, depth)
			id := Root
			for d := 0; d < depth; d++ {
				path[d] = rng.Intn(6)
				id = Append(id, RelAt(path[d]))
			}
			nodes = append(nodes, pathID{path, id})
		}
		byBytes := make([]pathID, len(nodes))
		copy(byBytes, nodes)
		sort.Slice(byBytes, func(i, j int) bool { return Compare(byBytes[i].id, byBytes[j].id) < 0 })
		byPath := make([]pathID, len(nodes))
		copy(byPath, nodes)
		sort.Slice(byPath, func(i, j int) bool { return pathLess(byPath[i].path, byPath[j].path) })
		for i := range byBytes {
			if Compare(byBytes[i].id, byPath[i].id) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func pathLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func TestStringParseRoundTrip(t *testing.T) {
	ids := []ID{Root, {0x02}, {0x02, 0x04, 0x06}, {0x03, 0x02, 0xFF, 0x08}}
	for _, id := range ids {
		s := id.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !Equal(id, back) {
			t.Errorf("round trip %q -> %s", s, back)
		}
	}
	if Root.String() != "00" {
		t.Errorf("root string = %q, want 00", Root.String())
	}
	if _, err := Parse("zz"); err == nil {
		t.Error("Parse(zz) should fail")
	}
	if _, err := Parse("03"); err == nil {
		t.Error("Parse(03) should fail: odd terminator")
	}
}

func TestClone(t *testing.T) {
	id := ID{0x02, 0x04}
	c := Clone(id)
	c[0] = 0x06
	if id[0] != 0x02 {
		t.Error("Clone shares storage")
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func BenchmarkBetween(b *testing.B) {
	lo, hi := Rel{0x02}, Rel{0x04}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x, err := Between(lo, hi)
		if err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 {
			lo = x
		} else {
			hi = x
		}
		if len(lo) > 64 {
			lo, hi = Rel{0x02}, Rel{0x04}
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	x := Append(Append(Root, RelAt(5)), RelAt(100))
	y := Append(Append(Root, RelAt(5)), RelAt(101))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(x, y)
	}
}
