// Package nodeindex implements the NodeID index of §3.1/§3.4: a B+tree that
// maps logical node IDs to physical record IDs. For each contiguous interval
// of node IDs within a record (in document order) there is exactly one
// entry, keyed by the interval's upper endpoint; looking up a node searches
// for the successor key, which lands on the entry of the interval containing
// the node.
//
// Keys are (DocID, upper-endpoint NodeID); values are 6-byte RIDs. The
// versioned variant of §5.1 — (DocID, ver#, NodeID, RID) with ver# ordered
// so newer versions come first — is provided for multiversioning.
package nodeindex

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rx/internal/btree"
	"rx/internal/buffer"
	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/pagestore"
	"rx/internal/xml"
)

// ErrNotFound reports that no interval covers the requested node.
var ErrNotFound = errors.New("nodeindex: node not found")

// Index is a non-versioned NodeID index.
type Index struct {
	tree *btree.Tree
}

// Create makes a new empty index.
func Create(pool *buffer.Pool) (*Index, error) {
	t, err := btree.Create(pool)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t}, nil
}

// Open attaches to an existing index by its meta page.
func Open(pool *buffer.Pool, meta pagestore.PageID) (*Index, error) {
	t, err := btree.Open(pool, meta)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t}, nil
}

// MetaPage returns the index's durable identity.
func (ix *Index) MetaPage() pagestore.PageID { return ix.tree.MetaPage() }

// Tree exposes the underlying B+tree (for stats).
func (ix *Index) Tree() *btree.Tree { return ix.tree }

// Key builds the composite (DocID, NodeID) key.
func Key(doc xml.DocID, id nodeid.ID) []byte {
	k := make([]byte, 8, 8+len(id))
	binary.BigEndian.PutUint64(k, uint64(doc))
	return append(k, id...)
}

// SplitKey decomposes a composite key.
func SplitKey(k []byte) (xml.DocID, nodeid.ID, error) {
	if len(k) < 8 {
		return 0, nil, errors.New("nodeindex: short key")
	}
	return xml.DocID(binary.BigEndian.Uint64(k)), nodeid.ID(k[8:]), nil
}

// Put inserts (or replaces) the entry for an interval upper endpoint.
func (ix *Index) Put(doc xml.DocID, upper nodeid.ID, rid heap.RID) error {
	return ix.tree.Put(Key(doc, upper), rid.Bytes())
}

// Delete removes the entry for an interval upper endpoint.
func (ix *Index) Delete(doc xml.DocID, upper nodeid.ID) error {
	return ix.tree.Delete(Key(doc, upper))
}

// Lookup finds the RID of the record containing (doc, id): the successor
// search of §3.4. It returns ErrNotFound when id is beyond the document's
// last interval.
func (ix *Index) Lookup(doc xml.DocID, id nodeid.ID) (heap.RID, error) {
	e, err := ix.tree.Ceiling(Key(doc, id))
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return heap.InvalidRID, fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
		}
		return heap.InvalidRID, err
	}
	gotDoc, _, err := SplitKey(e.Key)
	if err != nil {
		return heap.InvalidRID, err
	}
	if gotDoc != doc {
		return heap.InvalidRID, fmt.Errorf("%w: doc %d node %s", ErrNotFound, doc, id)
	}
	return heap.RIDFromBytes(e.Value), nil
}

// RootRID returns the record containing the document root (node ID 00),
// which by the successor rule is the record of the first interval.
func (ix *Index) RootRID(doc xml.DocID) (heap.RID, error) {
	return ix.Lookup(doc, nodeid.Root)
}

// DeleteDoc removes every entry for the document, returning how many were
// removed.
func (ix *Index) DeleteDoc(doc xml.DocID) (int, error) {
	var keys [][]byte
	lo := Key(doc, nodeid.Root)
	hi := Key(doc+1, nodeid.Root)
	err := ix.tree.Scan(lo, hi, func(e btree.Entry) bool {
		keys = append(keys, e.Key)
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		if err := ix.tree.Delete(k); err != nil {
			return 0, err
		}
	}
	return len(keys), nil
}

// ScanDoc visits the document's interval entries in node-ID order.
func (ix *Index) ScanDoc(doc xml.DocID, fn func(upper nodeid.ID, rid heap.RID) bool) error {
	lo := Key(doc, nodeid.Root)
	hi := Key(doc+1, nodeid.Root)
	return ix.tree.Scan(lo, hi, func(e btree.Entry) bool {
		_, id, err := SplitKey(e.Key)
		if err != nil {
			return false
		}
		return fn(id, heap.RIDFromBytes(e.Value))
	})
}

// Count returns the total number of interval entries in the index.
func (ix *Index) Count() (int, error) { return ix.tree.Count() }
