package nodeindex

import (
	"testing"

	"rx/internal/buffer"
	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/pagestore"
	"rx/internal/xml"
)

func newIndex(t *testing.T) *Index {
	t.Helper()
	pool := buffer.New(pagestore.NewMemStore(), 128)
	ix, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func rid(p uint32, s uint16) heap.RID {
	return heap.RID{Page: pagestore.PageID(p), Slot: s}
}

// TestPaperExample reproduces the exact Figure-3 example: two records with
// three interval entries (02, rid1), (020206, rid2), (020602, rid1).
func TestPaperExample(t *testing.T) {
	ix := newIndex(t)
	rid1, rid2 := rid(10, 0), rid(10, 1)
	doc := xml.DocID(7)
	mustPut := func(id string, r heap.RID) {
		nid, err := nodeid.Parse(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Put(doc, nid, r); err != nil {
			t.Fatal(err)
		}
	}
	mustPut("02", rid1)
	mustPut("020206", rid2)
	mustPut("020602", rid1)

	cases := []struct {
		node string
		want heap.RID
	}{
		{"00", rid1},     // root → first interval's record
		{"02", rid1},     // Node1
		{"0202", rid2},   // Node2 (packed subtree)
		{"020204", rid2}, // Node4
		{"020206", rid2}, // Node5
		{"0204", rid1},   // Node6
		{"0206", rid1},   // Node7
		{"020602", rid1}, // Node8
	}
	for _, c := range cases {
		nid, _ := nodeid.Parse(c.node)
		got, err := ix.Lookup(doc, nid)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", c.node, err)
		}
		if got != c.want {
			t.Errorf("Lookup(%s) = %v, want %v", c.node, got, c.want)
		}
	}
	// Beyond the last interval: not found.
	past, _ := nodeid.Parse("04")
	if _, err := ix.Lookup(doc, past); err == nil {
		t.Error("lookup past the document should fail")
	}
	// Other documents don't interfere.
	if _, err := ix.Lookup(doc+1, nodeid.Root); err == nil {
		t.Error("lookup in a different doc should fail")
	}
}

func TestRootRID(t *testing.T) {
	ix := newIndex(t)
	doc := xml.DocID(3)
	up, _ := nodeid.Parse("0208")
	ix.Put(doc, up, rid(5, 2))
	got, err := ix.RootRID(doc)
	if err != nil || got != rid(5, 2) {
		t.Errorf("RootRID = %v, %v", got, err)
	}
}

func TestDeleteDocIsolation(t *testing.T) {
	ix := newIndex(t)
	for d := xml.DocID(1); d <= 3; d++ {
		for i := 0; i < 10; i++ {
			ix.Put(d, nodeid.Append(nodeid.Root, nodeid.RelAt(i)), rid(uint32(d), uint16(i)))
		}
	}
	n, err := ix.DeleteDoc(2)
	if err != nil || n != 10 {
		t.Fatalf("DeleteDoc = %d, %v", n, err)
	}
	if _, err := ix.Lookup(2, nodeid.Root); err == nil {
		t.Error("doc 2 entries remain")
	}
	if _, err := ix.Lookup(1, nodeid.Root); err != nil {
		t.Errorf("doc 1 damaged: %v", err)
	}
	if _, err := ix.Lookup(3, nodeid.Root); err != nil {
		t.Errorf("doc 3 damaged: %v", err)
	}
	count := 0
	ix.ScanDoc(3, func(upper nodeid.ID, r heap.RID) bool { count++; return true })
	if count != 10 {
		t.Errorf("ScanDoc(3) = %d entries", count)
	}
}

func TestPutDelete(t *testing.T) {
	ix := newIndex(t)
	up := nodeid.ID{0x02, 0x04}
	ix.Put(1, up, rid(1, 1))
	if err := ix.Delete(1, up); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Lookup(1, up); err == nil {
		t.Error("entry survives delete")
	}
	total, _ := ix.Count()
	if total != 0 {
		t.Errorf("Count = %d", total)
	}
}
