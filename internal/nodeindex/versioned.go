package nodeindex

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rx/internal/btree"
	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/xml"
)

// Versioned NodeID index entries (§5.1): "with versioning, the entries will
// also include a version number, i.e. ... (DocID, ver#, NodeID, RID), with
// ver# in descending order. This will guarantee a reader's deferred access
// to be successful." Every version writes a complete entry set for the
// document, so a reader pinned to snapshot version V resolves the newest
// version W <= V with a single successor search and then looks nodes up
// within W.
//
// The descending order is realized by keying with the bitwise complement of
// the version number.

// VKey builds the composite (DocID, ^ver, NodeID) key.
func VKey(doc xml.DocID, ver uint64, id nodeid.ID) []byte {
	k := make([]byte, 16, 16+len(id))
	binary.BigEndian.PutUint64(k, uint64(doc))
	binary.BigEndian.PutUint64(k[8:], ^ver)
	return append(k, id...)
}

// SplitVKey decomposes a versioned key.
func SplitVKey(k []byte) (xml.DocID, uint64, nodeid.ID, error) {
	if len(k) < 16 {
		return 0, 0, nil, errors.New("nodeindex: short versioned key")
	}
	return xml.DocID(binary.BigEndian.Uint64(k)),
		^binary.BigEndian.Uint64(k[8:16]),
		nodeid.ID(k[16:]), nil
}

// PutV inserts an interval entry under a version.
func (ix *Index) PutV(doc xml.DocID, ver uint64, upper nodeid.ID, rid heap.RID) error {
	return ix.tree.Put(VKey(doc, ver, upper), rid.Bytes())
}

// VisibleVersion resolves the newest version <= snapshot for the document,
// or ErrNotFound if none exists.
func (ix *Index) VisibleVersion(doc xml.DocID, snapshot uint64) (uint64, error) {
	e, err := ix.tree.Ceiling(VKey(doc, snapshot, nodeid.Root))
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return 0, fmt.Errorf("%w: doc %d at snapshot %d", ErrNotFound, doc, snapshot)
		}
		return 0, err
	}
	d, w, _, err := SplitVKey(e.Key)
	if err != nil {
		return 0, err
	}
	if d != doc {
		return 0, fmt.Errorf("%w: doc %d at snapshot %d", ErrNotFound, doc, snapshot)
	}
	return w, nil
}

// LookupV finds the record containing (doc, id) as of the snapshot version.
func (ix *Index) LookupV(doc xml.DocID, snapshot uint64, id nodeid.ID) (heap.RID, error) {
	w, err := ix.VisibleVersion(doc, snapshot)
	if err != nil {
		return heap.InvalidRID, err
	}
	e, err := ix.tree.Ceiling(VKey(doc, w, id))
	if err != nil {
		if errors.Is(err, btree.ErrNotFound) {
			return heap.InvalidRID, fmt.Errorf("%w: doc %d node %s @%d", ErrNotFound, doc, id, w)
		}
		return heap.InvalidRID, err
	}
	d, ver, _, err := SplitVKey(e.Key)
	if err != nil {
		return heap.InvalidRID, err
	}
	if d != doc || ver != w {
		return heap.InvalidRID, fmt.Errorf("%w: doc %d node %s @%d", ErrNotFound, doc, id, w)
	}
	return heap.RIDFromBytes(e.Value), nil
}

// ScanVersion visits the entries of exactly the given version, in node
// order.
func (ix *Index) ScanVersion(doc xml.DocID, ver uint64, fn func(upper nodeid.ID, rid heap.RID) bool) error {
	lo := VKey(doc, ver, nodeid.Root)
	hi := VKey(doc, ver-1, nodeid.Root) // ^(ver-1) > ^ver: next key group
	return ix.tree.Scan(lo, hi, func(e btree.Entry) bool {
		_, _, id, err := SplitVKey(e.Key)
		if err != nil {
			return false
		}
		return fn(id, heap.RIDFromBytes(e.Value))
	})
}

// DropVersionsBefore removes entries of versions older than keep, returning
// the RIDs still referenced by remaining versions and those released.
func (ix *Index) DropVersionsBefore(doc xml.DocID, keep uint64) (kept, released map[heap.RID]bool, err error) {
	var dropKeys [][]byte
	kept = map[heap.RID]bool{}
	dropRIDs := map[heap.RID]bool{}
	lo := VKey(doc, ^uint64(0), nodeid.Root) // newest version first
	hi := VKey(doc+1, ^uint64(0), nodeid.Root)
	err = ix.tree.Scan(lo, hi, func(e btree.Entry) bool {
		_, ver, _, err := SplitVKey(e.Key)
		if err != nil {
			return false
		}
		rid := heap.RIDFromBytes(e.Value)
		if ver < keep {
			dropKeys = append(dropKeys, e.Key)
			dropRIDs[rid] = true
		} else {
			kept[rid] = true
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	for _, k := range dropKeys {
		if err := ix.tree.Delete(k); err != nil {
			return nil, nil, err
		}
	}
	released = map[heap.RID]bool{}
	for rid := range dropRIDs {
		if !kept[rid] {
			released[rid] = true
		}
	}
	return kept, released, nil
}
