package nodeindex

import (
	"testing"

	"rx/internal/buffer"
	"rx/internal/heap"
	"rx/internal/nodeid"
	"rx/internal/pagestore"
	"rx/internal/xml"
)

func newVIndex(t *testing.T) *Index {
	t.Helper()
	pool := buffer.New(pagestore.NewMemStore(), 128)
	ix, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func vrid(p uint32) heap.RID { return heap.RID{Page: pagestore.PageID(p)} }

func TestVersionedLookup(t *testing.T) {
	ix := newVIndex(t)
	doc := xml.DocID(5)
	n1 := nodeid.ID{0x02, 0x04}
	n2 := nodeid.ID{0x02, 0x08}
	// Version 1: two intervals.
	ix.PutV(doc, 1, n1, vrid(10))
	ix.PutV(doc, 1, n2, vrid(11))
	// Version 2: first interval's record replaced.
	ix.PutV(doc, 2, n1, vrid(20))
	ix.PutV(doc, 2, n2, vrid(11))

	// Snapshot 1 sees version 1.
	if w, err := ix.VisibleVersion(doc, 1); err != nil || w != 1 {
		t.Fatalf("VisibleVersion(1) = %d, %v", w, err)
	}
	rid, err := ix.LookupV(doc, 1, nodeid.ID{0x02, 0x02})
	if err != nil || rid != vrid(10) {
		t.Errorf("v1 lookup = %v, %v", rid, err)
	}
	// Snapshot 2 (and any later snapshot) sees version 2.
	for _, snap := range []uint64{2, 3, 99} {
		w, err := ix.VisibleVersion(doc, snap)
		if err != nil || w != 2 {
			t.Fatalf("VisibleVersion(%d) = %d, %v", snap, w, err)
		}
		rid, err := ix.LookupV(doc, snap, nodeid.ID{0x02, 0x02})
		if err != nil || rid != vrid(20) {
			t.Errorf("v%d lookup = %v, %v", snap, rid, err)
		}
	}
	// Snapshot 0: nothing visible.
	if _, err := ix.VisibleVersion(doc, 0); err == nil {
		t.Error("snapshot 0 should see nothing")
	}
	// Other documents don't leak in.
	if _, err := ix.VisibleVersion(doc+1, 5); err == nil {
		t.Error("other doc should see nothing")
	}
	// Past the last interval of the visible version.
	if _, err := ix.LookupV(doc, 2, nodeid.ID{0x04}); err == nil {
		t.Error("lookup past the document should fail")
	}
}

func TestScanVersion(t *testing.T) {
	ix := newVIndex(t)
	doc := xml.DocID(1)
	for v := uint64(1); v <= 3; v++ {
		for i := 0; i < 4; i++ {
			ix.PutV(doc, v, nodeid.Append(nodeid.Root, nodeid.RelAt(i)), vrid(uint32(v*10+uint64(i))))
		}
	}
	for v := uint64(1); v <= 3; v++ {
		count := 0
		var prev nodeid.ID
		err := ix.ScanVersion(doc, v, func(upper nodeid.ID, rid heap.RID) bool {
			if prev != nil && nodeid.Compare(prev, upper) >= 0 {
				t.Fatal("version scan out of node order")
			}
			prev = nodeid.Clone(upper)
			if rid.Page != pagestore.PageID(v*10+uint64(count)) {
				t.Fatalf("v%d entry %d rid = %v", v, count, rid)
			}
			count++
			return true
		})
		if err != nil || count != 4 {
			t.Fatalf("v%d: %d entries, %v", v, count, err)
		}
	}
}

func TestDropVersionsBefore(t *testing.T) {
	ix := newVIndex(t)
	doc := xml.DocID(1)
	shared := vrid(100) // referenced by every version
	for v := uint64(1); v <= 3; v++ {
		ix.PutV(doc, v, nodeid.ID{0x02}, shared)
		ix.PutV(doc, v, nodeid.ID{0x04}, vrid(uint32(v))) // per-version record
	}
	kept, released, err := ix.DropVersionsBefore(doc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !kept[shared] || !kept[vrid(3)] {
		t.Errorf("kept = %v", kept)
	}
	if !released[vrid(1)] || !released[vrid(2)] || released[shared] {
		t.Errorf("released = %v", released)
	}
	// Old versions are gone; current remains.
	if _, err := ix.VisibleVersion(doc, 2); err == nil {
		t.Error("version <= 2 should be gone")
	}
	if w, err := ix.VisibleVersion(doc, 3); err != nil || w != 3 {
		t.Errorf("current version = %d, %v", w, err)
	}
}
