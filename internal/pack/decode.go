package pack

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rx/internal/arena"
	"rx/internal/nodeid"
	"rx/internal/xml"
)

// ErrCorrupt reports a malformed packed record.
var ErrCorrupt = errors.New("pack: corrupt record")

// Record is a decoded record header plus its (still encoded) node body.
// Records are self-contained (§3.1): the header carries the context node's
// absolute ID, its path from the root, and the namespaces in scope, so a
// record reached directly from an XPath value index can be interpreted
// without touching its ancestors.
type Record struct {
	// ContextID is the absolute node ID of the common parent of the
	// record's top-level subtrees (empty = the document node).
	ContextID nodeid.ID
	// Path holds the element names from the root element to the context
	// node, one per level (empty for the root record).
	Path []xml.QName
	// NS holds the namespace bindings in scope at the context node.
	NS []NSBinding
	// SubtreeCount is the number of top-level entries in the record body.
	SubtreeCount int

	body []byte
}

// Node is a decoded view of one node (or proxy) inside a record.
type Node struct {
	Kind xml.Kind
	// Rel is the node's relative ID; Abs its absolute ID.
	Rel nodeid.Rel
	Abs nodeid.ID
	// Name is the element/attribute name; for PIs the target is Name.Local;
	// for namespace nodes Name.Local holds the prefix and Name.URI the URI.
	Name xml.QName
	Type xml.TypeID
	// Value is the attribute/text/comment/PI value (aliases the record).
	Value []byte
	// EntryCount and BodyLen describe an element's encoded children.
	EntryCount int
	BodyLen    int
	// ProxyCount is the number of subtrees a proxy stands for.
	ProxyCount int

	// start and end delimit the node's full encoding in the record body;
	// bodyStart is where an element's children begin.
	start, end, bodyStart int
}

// IsProxy reports whether the node is a placeholder for subtrees stored in
// another record.
func (n *Node) IsProxy() bool { return n.Kind == xml.Proxy }

// Detach copies the record's borrowed byte ranges (ContextID and the encoded
// body) into owned memory, so the record stays valid after the underlying
// buffer-pool frame is released. Offsets are preserved: Nodes decoded after a
// Detach are indistinguishable from ones decoded before it, but Nodes decoded
// BEFORE the Detach keep aliases (Rel, Value) into the old buffer — only
// their Abs IDs are owned (nodeid.Append always allocates). Callers that hold
// pre-detach Nodes across a Detach must restrict themselves to Abs.
func (r *Record) Detach() {
	r.ContextID = nodeid.Clone(r.ContextID)
	r.body = append([]byte(nil), r.body...)
}

// Decode parses a record payload.
func Decode(payload []byte) (*Record, error) {
	d := decoder{buf: payload}
	ctxLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if d.pos+int(ctxLen) > len(payload) {
		return nil, ErrCorrupt
	}
	r := &Record{ContextID: nodeid.ID(payload[d.pos : d.pos+int(ctxLen)])}
	d.pos += int(ctxLen)
	pathLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(pathLen); i++ {
		uri, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		local, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		r.Path = append(r.Path, xml.QName{URI: xml.NameID(uri), Local: xml.NameID(local)})
	}
	nsLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nsLen); i++ {
		p, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		r.NS = append(r.NS, NSBinding{Prefix: xml.NameID(p), URI: xml.NameID(u)})
	}
	cnt, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	r.SubtreeCount = int(cnt)
	r.body = payload[d.pos:]
	return r, nil
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.pos += n
	return v, nil
}

// relID scans a self-terminating relative node ID.
func (d *decoder) relID() (nodeid.Rel, error) {
	start := d.pos
	for d.pos < len(d.buf) {
		c := d.buf[d.pos]
		d.pos++
		if c%2 == 0 {
			if c == 0 {
				return nil, ErrCorrupt
			}
			return nodeid.Rel(d.buf[start:d.pos]), nil
		}
	}
	return nil, ErrCorrupt
}

// DecodeNodeAt decodes the node starting at offset off in the record body,
// under the given parent absolute ID. Returns the node; n.end is the offset
// just past the node's entire encoding (including element children).
func (r *Record) DecodeNodeAt(off int, parentAbs nodeid.ID) (Node, error) {
	return r.decodeNodeAt(nil, off, parentAbs)
}

// decodeNodeAt is DecodeNodeAt with the node's absolute ID allocated from
// the arena when one is given (nil: the Go heap).
func (r *Record) decodeNodeAt(a *arena.Arena, off int, parentAbs nodeid.ID) (Node, error) {
	d := decoder{buf: r.body, pos: off}
	if d.pos >= len(d.buf) {
		return Node{}, ErrCorrupt
	}
	kind := xml.Kind(d.buf[d.pos])
	d.pos++
	rel, err := d.relID()
	if err != nil {
		return Node{}, err
	}
	n := Node{Kind: kind, Rel: rel, Abs: appendID(a, parentAbs, rel), start: off}
	switch kind {
	case xml.Element:
		uri, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		local, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		typ, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		ec, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		bl, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		n.Name = xml.QName{URI: xml.NameID(uri), Local: xml.NameID(local)}
		n.Type = xml.TypeID(typ)
		n.EntryCount = int(ec)
		n.BodyLen = int(bl)
		n.bodyStart = d.pos
		n.end = d.pos + int(bl)
		if n.end > len(r.body) {
			return Node{}, ErrCorrupt
		}
	case xml.Attribute:
		uri, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		local, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		typ, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		n.Name = xml.QName{URI: xml.NameID(uri), Local: xml.NameID(local)}
		n.Type = xml.TypeID(typ)
		if n.Value, err = d.value(); err != nil {
			return Node{}, err
		}
		n.end = d.pos
	case xml.Text:
		typ, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		n.Type = xml.TypeID(typ)
		if n.Value, err = d.value(); err != nil {
			return Node{}, err
		}
		n.end = d.pos
	case xml.Comment:
		if n.Value, err = d.value(); err != nil {
			return Node{}, err
		}
		n.end = d.pos
	case xml.ProcessingInstruction:
		target, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		n.Name = xml.QName{Local: xml.NameID(target)}
		if n.Value, err = d.value(); err != nil {
			return Node{}, err
		}
		n.end = d.pos
	case xml.Namespace:
		p, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		u, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		n.Name = xml.QName{URI: xml.NameID(u), Local: xml.NameID(p)}
		n.end = d.pos
	case xml.Proxy:
		cnt, err := d.uvarint()
		if err != nil {
			return Node{}, err
		}
		n.ProxyCount = int(cnt)
		n.end = d.pos
	default:
		return Node{}, fmt.Errorf("%w: node kind %d at %d", ErrCorrupt, kind, off)
	}
	return n, nil
}

func (d *decoder) value() ([]byte, error) {
	l, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if d.pos+int(l) > len(d.buf) {
		return nil, ErrCorrupt
	}
	v := d.buf[d.pos : d.pos+int(l)]
	d.pos += int(l)
	return v, nil
}

// Top iterates the record's top-level subtrees in order.
func (r *Record) Top(fn func(n Node) (bool, error)) error {
	off := 0
	for i := 0; i < r.SubtreeCount; i++ {
		n, err := r.DecodeNodeAt(off, r.ContextID)
		if err != nil {
			return err
		}
		ok, err := fn(n)
		if err != nil || !ok {
			return err
		}
		off = n.end
	}
	return nil
}

// Children iterates an element node's child entries (attributes, namespace
// nodes, child nodes and proxies) in document order. fn returning false
// stops the iteration.
func (r *Record) Children(elem *Node, fn func(n Node) (bool, error)) error {
	if elem.Kind != xml.Element {
		return nil
	}
	off := elem.bodyStart
	for i := 0; i < elem.EntryCount; i++ {
		n, err := r.DecodeNodeAt(off, elem.Abs)
		if err != nil {
			return err
		}
		ok, err := fn(n)
		if err != nil || !ok {
			return err
		}
		off = n.end
	}
	return nil
}

// FirstChildOffset returns the offset of an element's first child entry, or
// -1 when it has none.
func (r *Record) FirstChildOffset(elem *Node) int {
	if elem.Kind != xml.Element || elem.EntryCount == 0 {
		return -1
	}
	return elem.bodyStart
}

// Find locates the node with absolute ID target within this record,
// descending from the top-level subtrees. If the path descends into a proxy,
// Find returns the proxy node and found=false (the caller resolves it via
// the NodeID index). If the target does not exist, found=false and node.Kind
// is zero.
func (r *Record) Find(target nodeid.ID) (Node, bool, error) {
	if !nodeid.IsAncestorOrSelf(r.ContextID, target) {
		return Node{}, false, fmt.Errorf("%w: target %s outside record context %s", ErrCorrupt, target, r.ContextID)
	}
	var cur Node
	curSet := false
	// Scan top-level entries for the subtree containing target.
	err := r.Top(func(n Node) (bool, error) {
		if n.IsProxy() {
			// The proxy covers [its ID .. next sibling); conservatively match
			// if target is >= proxy start. Correct resolution is decided by
			// the caller through the NodeID index, so only remember it if
			// nothing better follows.
			if nodeid.Compare(n.Abs, target) <= 0 {
				cur = n
				curSet = true
			}
			return true, nil
		}
		if nodeid.IsAncestorOrSelf(n.Abs, target) {
			cur = n
			curSet = true
			return false, nil
		}
		if nodeid.Compare(n.Abs, target) > 0 {
			return false, nil // past it
		}
		return true, nil
	})
	if err != nil {
		return Node{}, false, err
	}
	if !curSet {
		return Node{}, false, nil
	}
	for {
		if cur.IsProxy() {
			return cur, false, nil
		}
		if nodeid.Equal(cur.Abs, target) {
			return cur, true, nil
		}
		if cur.Kind != xml.Element {
			return Node{}, false, nil
		}
		var next Node
		nextSet := false
		err := r.Children(&cur, func(n Node) (bool, error) {
			if n.IsProxy() {
				if nodeid.Compare(n.Abs, target) <= 0 {
					next = n
					nextSet = true
				}
				return true, nil
			}
			if nodeid.IsAncestorOrSelf(n.Abs, target) {
				next = n
				nextSet = true
				return false, nil
			}
			if nodeid.Compare(n.Abs, target) > 0 {
				return false, nil
			}
			return true, nil
		})
		if err != nil {
			return Node{}, false, err
		}
		if !nextSet {
			return Node{}, false, nil
		}
		cur = next
	}
}

// Intervals computes the record's contiguous node-ID intervals, returning
// the ascending list of interval upper endpoints and the record's minimum
// node ID. Proxies break intervals: the nodes they stand for live in another
// record (§3.1: "for each contiguous interval of node IDs for nodes within a
// record in document order, only one entry is in the node ID index").
func (r *Record) Intervals() ([]nodeid.ID, nodeid.ID, error) {
	return r.IntervalsArena(nil)
}

// IntervalsArena is Intervals with every returned (and intermediate) node ID
// allocated from the arena when one is given; the result is valid until the
// arena's next Reset.
func (r *Record) IntervalsArena(a *arena.Arena) ([]nodeid.ID, nodeid.ID, error) {
	var uppers []nodeid.ID
	var minID nodeid.ID
	var last nodeid.ID // last real node ID in the current interval
	inInterval := false

	var walk func(off int, parentAbs nodeid.ID, entries int) (int, error)
	walk = func(off int, parentAbs nodeid.ID, entries int) (int, error) {
		for i := 0; i < entries; i++ {
			n, err := r.decodeNodeAt(a, off, parentAbs)
			if err != nil {
				return 0, err
			}
			if n.IsProxy() {
				if inInterval {
					uppers = append(uppers, cloneID(a, last))
					inInterval = false
				}
			} else {
				if minID == nil {
					minID = cloneID(a, n.Abs)
				}
				last = n.Abs
				inInterval = true
				if n.Kind == xml.Element && n.EntryCount > 0 {
					if _, err := walk(n.bodyStart, n.Abs, n.EntryCount); err != nil {
						return 0, err
					}
				}
			}
			off = n.end
		}
		return off, nil
	}
	if _, err := walk(0, r.ContextID, r.SubtreeCount); err != nil {
		return nil, nil, err
	}
	if inInterval {
		uppers = append(uppers, cloneID(a, last))
	}
	return uppers, minID, nil
}

// cloneID copies an ID, from the arena when one is given.
func cloneID(a *arena.Arena, id nodeid.ID) nodeid.ID {
	if a == nil {
		return nodeid.Clone(id)
	}
	return nodeid.ID(append(a.Make(len(id)), id...))
}

// CountNodes returns the number of real nodes stored in the record.
func (r *Record) CountNodes() (int, error) {
	count := 0
	var walk func(off int, parentAbs nodeid.ID, entries int) error
	walk = func(off int, parentAbs nodeid.ID, entries int) error {
		for i := 0; i < entries; i++ {
			n, err := r.DecodeNodeAt(off, parentAbs)
			if err != nil {
				return err
			}
			if !n.IsProxy() {
				count++
				if n.Kind == xml.Element && n.EntryCount > 0 {
					if err := walk(n.bodyStart, n.Abs, n.EntryCount); err != nil {
						return err
					}
				}
			}
			off = n.end
		}
		return nil
	}
	err := walk(0, r.ContextID, r.SubtreeCount)
	return count, err
}
