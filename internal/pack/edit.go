package pack

import (
	"bytes"
	"errors"
	"fmt"

	"rx/internal/nodeid"
	"rx/internal/tokens"
	"rx/internal/xml"
)

// MutNode is a mutable, decoded node used by subdocument updates (§3.1:
// "simple move and copy operations of subtrees"; §5.2 subdocument
// concurrency): a record is decoded into mutable trees, edited, and
// re-encoded. Node IDs are never re-assigned — the prefix encoding
// guarantees room for insertions — so index entries for untouched nodes
// remain valid.
type MutNode struct {
	Kind       xml.Kind
	Rel        nodeid.Rel
	Name       xml.QName
	Type       xml.TypeID
	Value      []byte
	ProxyCount int
	Children   []*MutNode
}

// Mutable decodes the record body into mutable top-level subtrees.
func (r *Record) Mutable() ([]*MutNode, error) {
	var tops []*MutNode
	off := 0
	for i := 0; i < r.SubtreeCount; i++ {
		n, err := r.DecodeNodeAt(off, r.ContextID)
		if err != nil {
			return nil, err
		}
		m, err := r.toMutable(n)
		if err != nil {
			return nil, err
		}
		tops = append(tops, m)
		off = n.end
	}
	return tops, nil
}

func (r *Record) toMutable(n Node) (*MutNode, error) {
	m := &MutNode{
		Kind:       n.Kind,
		Rel:        append(nodeid.Rel(nil), n.Rel...),
		Name:       n.Name,
		Type:       n.Type,
		Value:      append([]byte(nil), n.Value...),
		ProxyCount: n.ProxyCount,
	}
	if n.Kind == xml.Element {
		off := n.bodyStart
		for i := 0; i < n.EntryCount; i++ {
			c, err := r.DecodeNodeAt(off, n.Abs)
			if err != nil {
				return nil, err
			}
			cm, err := r.toMutable(c)
			if err != nil {
				return nil, err
			}
			m.Children = append(m.Children, cm)
			off = c.end
		}
	}
	return m, nil
}

// encodeMut serializes a mutable node.
func encodeMut(m *MutNode) []byte {
	switch m.Kind {
	case xml.Element:
		var body []byte
		for _, c := range m.Children {
			body = append(body, encodeMut(c)...)
		}
		var b []byte
		b = append(b, byte(xml.Element))
		b = append(b, m.Rel...)
		b = appendUvarint(b, uint64(m.Name.URI))
		b = appendUvarint(b, uint64(m.Name.Local))
		b = appendUvarint(b, uint64(m.Type))
		b = appendUvarint(b, uint64(len(m.Children)))
		b = appendUvarint(b, uint64(len(body)))
		return append(b, body...)
	case xml.Attribute:
		return encodeLeaf(nil, xml.Attribute, m.Rel, m.Name, m.Type, m.Value, 0, 0)
	case xml.Text:
		return encodeLeaf(nil, xml.Text, m.Rel, xml.QName{}, m.Type, m.Value, 0, 0)
	case xml.Comment:
		return encodeLeaf(nil, xml.Comment, m.Rel, xml.QName{}, 0, m.Value, 0, 0)
	case xml.ProcessingInstruction:
		return encodeLeaf(nil, xml.ProcessingInstruction, m.Rel, m.Name, 0, m.Value, 0, 0)
	case xml.Namespace:
		return encodeNamespace(nil, m.Rel, m.Name.Local, m.Name.URI)
	case xml.Proxy:
		var b []byte
		b = append(b, byte(xml.Proxy))
		b = append(b, m.Rel...)
		return appendUvarint(b, uint64(m.ProxyCount))
	default:
		panic(fmt.Sprintf("pack: encodeMut bad kind %v", m.Kind))
	}
}

// Encode re-assembles a record payload from mutable subtrees, preserving the
// original header fields.
func (r *Record) Encode(tops []*MutNode) []byte {
	var payload []byte
	payload = appendHeader(payload, r.ContextID, r.Path, r.NS, len(tops))
	for _, m := range tops {
		payload = append(payload, encodeMut(m)...)
	}
	return payload
}

// ErrNoSuchNode reports an edit target missing from the record.
var ErrNoSuchNode = errors.New("pack: no such node in record")

// FindMut locates the node with the given absolute ID among tops (the
// record's mutable subtrees under contextID), returning the node and its
// parent's child slice index (parent nil for a top-level subtree).
func FindMut(tops []*MutNode, contextID, target nodeid.ID) (parent *MutNode, idx int, node *MutNode, err error) {
	find := func(list []*MutNode, base nodeid.ID) (int, *MutNode, bool) {
		for i, m := range list {
			abs := nodeid.Append(base, m.Rel)
			if m.Kind == xml.Proxy {
				continue
			}
			if nodeid.Equal(abs, target) {
				return i, m, true
			}
			if nodeid.IsAncestor(abs, target) {
				return i, m, false // descend
			}
		}
		return -1, nil, false
	}
	base := contextID
	var list []*MutNode = tops
	var par *MutNode
	for {
		i, m, exact := find(list, base)
		if m == nil {
			return nil, 0, nil, fmt.Errorf("%w: %s", ErrNoSuchNode, target)
		}
		if exact {
			return par, i, m, nil
		}
		par = m
		base = nodeid.Append(base, m.Rel)
		list = m.Children
	}
}

// LastChildRel returns the relative ID of an element's last child entry
// (including proxies, whose relative ID is their first subtree's — callers
// resolving append positions must chase trailing proxies through their
// records). ok is false for childless elements.
func LastChildRel(m *MutNode) (nodeid.Rel, bool, bool) {
	if len(m.Children) == 0 {
		return nil, false, false
	}
	last := m.Children[len(m.Children)-1]
	return last.Rel, last.Kind == xml.Proxy, true
}

// LastTopRel returns the relative ID of the record's last top-level subtree
// relative to the context node.
func (r *Record) LastTopRel() (nodeid.Rel, bool, error) {
	var rel nodeid.Rel
	isProxy := false
	err := r.Top(func(n Node) (bool, error) {
		rel = append(nodeid.Rel(nil), n.Rel...)
		isProxy = n.IsProxy()
		return true, nil
	})
	if err != nil {
		return nil, false, err
	}
	if rel == nil {
		return nil, false, errors.New("pack: empty record")
	}
	return rel, isProxy, nil
}

// BuildMutFromTokens constructs a mutable subtree from a token stream
// holding exactly one element (a parsed fragment). The root element gets
// rootRel; descendants get fresh sequential IDs.
func BuildMutFromTokens(stream []byte, rootRel nodeid.Rel) (*MutNode, error) {
	type frame struct {
		node *MutNode
		next int
	}
	var root *MutNode
	var stack []frame
	alloc := func() nodeid.Rel {
		f := &stack[len(stack)-1]
		rel := nodeid.RelAt(f.next)
		f.next++
		return rel
	}
	push := func(m *MutNode) {
		if len(stack) > 0 {
			f := &stack[len(stack)-1]
			f.node.Children = append(f.node.Children, m)
		}
	}
	r := tokens.NewReader(stream)
	for r.More() {
		t, err := r.Next()
		if err != nil {
			return nil, err
		}
		switch t.Kind {
		case tokens.StartDocument, tokens.EndDocument:
		case tokens.StartElement:
			m := &MutNode{Kind: xml.Element, Name: t.Name}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("pack: fragment must have exactly one root element")
				}
				m.Rel = append(nodeid.Rel(nil), rootRel...)
				root = m
			} else {
				m.Rel = alloc()
				push(m)
			}
			stack = append(stack, frame{node: m})
		case tokens.EndElement:
			stack = stack[:len(stack)-1]
		case tokens.Attr:
			if len(stack) == 0 {
				return nil, errors.New("pack: attribute outside element in fragment")
			}
			push(&MutNode{Kind: xml.Attribute, Rel: alloc(), Name: t.Name, Type: t.Type, Value: append([]byte(nil), t.Value...)})
		case tokens.NSDecl:
			if len(stack) == 0 {
				return nil, errors.New("pack: namespace outside element in fragment")
			}
			push(&MutNode{Kind: xml.Namespace, Rel: alloc(), Name: xml.QName{URI: t.URI, Local: t.Prefix}})
		case tokens.Text:
			if len(stack) == 0 {
				continue // ignore whitespace around the fragment root
			}
			push(&MutNode{Kind: xml.Text, Rel: alloc(), Type: t.Type, Value: append([]byte(nil), t.Value...)})
		case tokens.Comment:
			if len(stack) == 0 {
				continue
			}
			push(&MutNode{Kind: xml.Comment, Rel: alloc(), Value: append([]byte(nil), t.Value...)})
		case tokens.PI:
			if len(stack) == 0 {
				continue
			}
			push(&MutNode{Kind: xml.ProcessingInstruction, Rel: alloc(), Name: t.Name, Value: append([]byte(nil), t.Value...)})
		}
	}
	if root == nil {
		return nil, errors.New("pack: fragment has no element")
	}
	return root, nil
}

// EqualMut reports deep equality of mutable nodes (tests).
func EqualMut(a, b *MutNode) bool {
	if a.Kind != b.Kind || !bytes.Equal(a.Rel, b.Rel) || a.Name != b.Name ||
		a.Type != b.Type || !bytes.Equal(a.Value, b.Value) ||
		a.ProxyCount != b.ProxyCount || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !EqualMut(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
