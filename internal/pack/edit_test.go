package pack

import (
	"bytes"
	"testing"

	"rx/internal/nodeid"
	"rx/internal/xml"
	"rx/internal/xmlparse"
)

func singleRecord(t *testing.T, doc string) (*Record, *xml.Dict) {
	t.Helper()
	dict := xml.NewDict()
	stream, err := xmlparse.Parse([]byte(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var recs []EncodedRecord
	if err := PackStream(stream, 0, func(r EncodedRecord) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	r, err := Decode(recs[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	return r, dict
}

func TestMutableRoundTrip(t *testing.T) {
	rec, _ := singleRecord(t, `<a x="1"><b>hi</b><c><d/></c></a>`)
	tops, err := rec.Mutable()
	if err != nil {
		t.Fatal(err)
	}
	payload := rec.Encode(tops)
	rec2, err := Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	tops2, err := rec2.Mutable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tops) != len(tops2) || !EqualMut(tops[0], tops2[0]) {
		t.Error("mutable round trip changed the record")
	}
}

func TestFindMut(t *testing.T) {
	rec, _ := singleRecord(t, `<a><b>hi</b><c><d/></c></a>`)
	tops, _ := rec.Mutable()
	// /a/c/d = 02 04 02
	target := nodeid.ID{0x02, 0x04, 0x02}
	parent, idx, node, err := FindMut(tops, rec.ContextID, target)
	if err != nil {
		t.Fatal(err)
	}
	if node.Kind != xml.Element || parent == nil || idx != 0 {
		t.Errorf("node=%+v parent=%v idx=%d", node, parent, idx)
	}
	// Root of the record.
	p2, idx2, n2, err := FindMut(tops, rec.ContextID, nodeid.ID{0x02})
	if err != nil || p2 != nil || idx2 != 0 || n2.Kind != xml.Element {
		t.Errorf("root find: %v %d %+v %v", p2, idx2, n2, err)
	}
	// Missing node.
	if _, _, _, err := FindMut(tops, rec.ContextID, nodeid.ID{0x02, 0xEE}); err == nil {
		t.Error("missing node should fail")
	}
}

func TestBuildMutFromTokens(t *testing.T) {
	dict := xml.NewDict()
	stream, err := xmlparse.Parse([]byte(`<frag k="v">text<inner/></frag>`), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel := nodeid.Rel{0x06}
	m, err := BuildMutFromTokens(stream, rel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Rel, rel) || m.Kind != xml.Element || len(m.Children) != 3 {
		t.Errorf("m = %+v", m)
	}
	if m.Children[0].Kind != xml.Attribute || m.Children[1].Kind != xml.Text || m.Children[2].Kind != xml.Element {
		t.Errorf("children = %v %v %v", m.Children[0].Kind, m.Children[1].Kind, m.Children[2].Kind)
	}
	// Two roots rejected.
	bad, _ := xmlparse.Parse([]byte(`<x/>`), dict, xmlparse.Options{})
	two := append(append([]byte(nil), bad...), bad...)
	_ = two // a stream with two documents is not constructible via Parse; test the nil case instead
	if _, err := BuildMutFromTokens(nil, rel); err == nil {
		t.Error("empty fragment should fail")
	}
}

func TestLastTopRelAndLastChildRel(t *testing.T) {
	rec, _ := singleRecord(t, `<a><b/><c/></a>`)
	rel, isProxy, err := rec.LastTopRel()
	if err != nil || isProxy || !bytes.Equal(rel, nodeid.Rel{0x02}) {
		t.Errorf("LastTopRel = %x proxy=%v err=%v", []byte(rel), isProxy, err)
	}
	tops, _ := rec.Mutable()
	crel, isProxy, ok := LastChildRel(tops[0])
	if !ok || isProxy || !bytes.Equal(crel, nodeid.Rel{0x04}) {
		t.Errorf("LastChildRel = %x proxy=%v ok=%v", []byte(crel), isProxy, ok)
	}
	leaf := tops[0].Children[0]
	if _, _, ok := LastChildRel(leaf); ok {
		t.Error("childless element should report no last child")
	}
}
