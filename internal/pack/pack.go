// Package pack implements the tree-packing storage scheme of §3.1 (Figure
// 3): XML trees are packed into variable-length records ("XMLData"
// VARBINARY values) using structure nesting for parent-child relationships.
// Each non-leaf node carries its entry count and subtree byte length so a
// traversal can do firstChild/nextSibling and skip whole subtrees without
// decoding them. When a tree outgrows one record, consecutive subtrees that
// share a parent are packed into a separate record bottom-up and replaced by
// a proxy node in the containing record; records are linked only logically,
// through node IDs and the NodeID index — never by physical pointers.
//
// Record layout (all integers uvarint, node IDs self-terminating):
//
//	header:
//	  context node absolute ID (len + bytes) — the common parent of the
//	      record's top-level subtrees ("context node", §3.1)
//	  context path: count, then (uri, local) name IDs from root to context
//	  in-scope namespaces at context: count, then (prefix, uri) ID pairs
//	  top-level subtree entry count
//	body: node encodings, recursively nested
//
// Node encodings:
//
//	element:   kind, relID, uri, local, type, entryCount, bodyLen, body
//	attribute: kind, relID, uri, local, type, valueLen, value
//	text:      kind, relID, type, valueLen, value
//	comment:   kind, relID, valueLen, value
//	pi:        kind, relID, target, valueLen, value
//	namespace: kind, relID, prefix, uri
//	proxy:     kind, relID (of first subtree root), subtree count
//
// A proxy stands for a maximal run of consecutive sibling subtrees that were
// packed into exactly one other record.
package pack

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rx/internal/arena"
	"rx/internal/nodeid"
	"rx/internal/tokens"
	"rx/internal/xml"
)

// DefaultThreshold is the default target record payload size. It leaves room
// for the heap's per-record overhead within an 8 KiB page.
const DefaultThreshold = 7700

// NSBinding is one in-scope namespace binding (dictionary-encoded).
type NSBinding struct {
	Prefix xml.NameID
	URI    xml.NameID
}

// EncodedRecord is one packed record ready for storage, along with the
// NodeID-index information derived from it (§3.1: interval upper endpoints).
type EncodedRecord struct {
	// MinNodeID is the smallest node ID contained in the record; together
	// with DocID it is the paper's clustering key (DocID, minNodeID).
	MinNodeID nodeid.ID
	// Intervals holds the upper endpoint of each contiguous node-ID interval
	// in the record, in ascending order. The NodeID index stores one entry
	// per interval.
	Intervals []nodeid.ID
	// Payload is the record bytes (the XMLData column value).
	Payload []byte
}

// Packer packs a token stream into records, emitting completed records
// bottom-up through the emit callback (child records before their parents,
// the root record last).
type Packer struct {
	threshold int
	emit      func(EncodedRecord) error
	// a supplies scratch for node encodings and record payloads; nil falls
	// back to the Go heap. Emitted payloads are copied into heap pages by
	// the storage layer, so the caller may Reset the arena once the
	// document (or batch) is fully inserted.
	a *arena.Arena

	stack []*openElem
	// free recycles closed openElems (and their entries/ns capacity) within
	// the document, so sibling turnover does not allocate.
	free []*openElem
	err  error
	done bool
}

// newElem takes an openElem from the free list (or allocates one).
func (p *Packer) newElem() *openElem {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free = p.free[:n-1]
		*e = openElem{ns: e.ns[:0], entries: e.entries[:0]}
		return e
	}
	return &openElem{}
}

// freeElem returns a closed element to the free list. The caller must be
// done with every field, including the entries' encoded bytes (they are
// copied into the parent's encoding or a record payload before the element
// closes).
func (p *Packer) freeElem(e *openElem) { p.free = append(p.free, e) }

// appendID concatenates parent+rel into a fresh absolute ID, from the arena
// when one is set.
func appendID(a *arena.Arena, parent nodeid.ID, rel nodeid.Rel) nodeid.ID {
	if a == nil {
		return nodeid.Append(parent, rel)
	}
	b := a.Make(len(parent) + len(rel))
	b = append(b, parent...)
	return nodeid.ID(append(b, rel...))
}

type openElem struct {
	name    xml.QName
	typ     xml.TypeID
	rel     nodeid.Rel
	abs     nodeid.ID // absolute ID (concatenated once at start; shared prefix)
	ns      []NSBinding
	entries []segment
	size    int // total bytes of entries
	next    int // next child ordinal for RelAt
}

// segment is one completed child entry of an open element: the encoding of a
// whole subtree, or a proxy for flushed subtrees.
type segment struct {
	bytes   []byte
	isProxy bool
	rel     nodeid.Rel // rel ID of (first) subtree root
	count   int        // proxy: number of subtrees represented
}

// NewPacker creates a Packer with the given record-size threshold (the
// packing-factor control of §3.1's analysis; <= 0 means DefaultThreshold).
func NewPacker(threshold int, emit func(EncodedRecord) error) *Packer {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Packer{threshold: threshold, emit: emit}
}

// PackStream packs a whole token stream (one document) with a fresh Packer.
func PackStream(stream []byte, threshold int, emit func(EncodedRecord) error) error {
	return PackStreamArena(stream, threshold, nil, emit)
}

// PackStreamArena is PackStream with node encodings and record payloads
// allocated from a (nil: the Go heap). Payloads handed to emit are valid
// until the arena's next Reset; the storage layer copies them into pages on
// insert, so resetting after the document is stored is safe.
func PackStreamArena(stream []byte, threshold int, a *arena.Arena, emit func(EncodedRecord) error) error {
	p := NewPacker(threshold, emit)
	p.a = a
	r := tokens.NewReader(stream)
	for r.More() {
		t, err := r.Next()
		if err != nil {
			return err
		}
		if err := p.Feed(t); err != nil {
			return err
		}
	}
	return p.Close()
}

// Feed consumes one token.
func (p *Packer) Feed(t *tokens.Token) error {
	if p.err != nil {
		return p.err
	}
	switch t.Kind {
	case tokens.StartDocument:
		if len(p.stack) != 0 {
			return p.fail(errors.New("pack: nested StartDocument"))
		}
		// The document node is the implicit root: open a pseudo-element with
		// the empty absolute ID.
		root := p.newElem()
		root.abs = nodeid.Root
		p.stack = append(p.stack, root)
	case tokens.EndDocument:
		if len(p.stack) != 1 {
			return p.fail(errors.New("pack: EndDocument with open elements"))
		}
		root := p.stack[0]
		p.stack = p.stack[:0]
		p.done = true
		err := p.emitRecord(root, root.entries)
		p.freeElem(root)
		return err
	case tokens.StartElement:
		parent := p.top()
		if parent == nil {
			return p.fail(errors.New("pack: element outside document"))
		}
		rel := nodeid.RelAt(parent.next)
		parent.next++
		e := p.newElem()
		e.name = t.Name
		e.rel = rel
		e.abs = appendID(p.a, parent.abs, rel)
		p.stack = append(p.stack, e)
	case tokens.EndElement:
		if len(p.stack) < 2 {
			return p.fail(errors.New("pack: unmatched EndElement"))
		}
		e := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		// If the element's accumulated content exceeds the threshold, flush
		// runs of leading entries into separate records (bottom-up packing).
		if err := p.reduce(e); err != nil {
			return err
		}
		enc := encodeElement(p.a, e)
		parent := p.top()
		parent.entries = append(parent.entries, segment{bytes: enc, rel: e.rel})
		parent.size += len(enc)
		p.freeElem(e)
	case tokens.Attr:
		e := p.top()
		if e == nil || len(p.stack) < 2 {
			return p.fail(errors.New("pack: attribute outside element"))
		}
		rel := nodeid.RelAt(e.next)
		e.next++
		enc := encodeLeaf(p.a, xml.Attribute, rel, t.Name, t.Type, t.Value, 0, 0)
		e.entries = append(e.entries, segment{bytes: enc, rel: rel})
		e.size += len(enc)
	case tokens.NSDecl:
		e := p.top()
		if e == nil || len(p.stack) < 2 {
			return p.fail(errors.New("pack: namespace outside element"))
		}
		e.ns = append(e.ns, NSBinding{Prefix: t.Prefix, URI: t.URI})
		rel := nodeid.RelAt(e.next)
		e.next++
		enc := encodeNamespace(p.a, rel, t.Prefix, t.URI)
		e.entries = append(e.entries, segment{bytes: enc, rel: rel})
		e.size += len(enc)
	case tokens.Text:
		e := p.top()
		if e == nil {
			return p.fail(errors.New("pack: text outside document"))
		}
		rel := nodeid.RelAt(e.next)
		e.next++
		enc := encodeLeaf(p.a, xml.Text, rel, xml.QName{}, t.Type, t.Value, 0, 0)
		e.entries = append(e.entries, segment{bytes: enc, rel: rel})
		e.size += len(enc)
	case tokens.Comment:
		e := p.top()
		if e == nil {
			return p.fail(errors.New("pack: comment outside document"))
		}
		rel := nodeid.RelAt(e.next)
		e.next++
		enc := encodeLeaf(p.a, xml.Comment, rel, xml.QName{}, 0, t.Value, 0, 0)
		e.entries = append(e.entries, segment{bytes: enc, rel: rel})
		e.size += len(enc)
	case tokens.PI:
		e := p.top()
		if e == nil {
			return p.fail(errors.New("pack: PI outside document"))
		}
		rel := nodeid.RelAt(e.next)
		e.next++
		enc := encodeLeaf(p.a, xml.ProcessingInstruction, rel, t.Name, 0, t.Value, 0, 0)
		e.entries = append(e.entries, segment{bytes: enc, rel: rel})
		e.size += len(enc)
	default:
		return p.fail(fmt.Errorf("pack: unexpected token %v", t.Kind))
	}
	return nil
}

// Close verifies the stream completed. (EndDocument emits the root record.)
func (p *Packer) Close() error {
	if p.err != nil {
		return p.err
	}
	if !p.done {
		return errors.New("pack: incomplete document")
	}
	return nil
}

func (p *Packer) top() *openElem {
	if len(p.stack) == 0 {
		return nil
	}
	return p.stack[len(p.stack)-1]
}

func (p *Packer) fail(err error) error {
	p.err = err
	return err
}

// maxRunBytes bounds a flushed record so it always fits a heap page even
// when the threshold is tiny.
const maxRunBytes = 7600

// reduce flushes leading runs of e's entries into separate records until the
// remaining encoded size fits the threshold. Flushed runs are replaced by
// proxy segments. This is the paper's "simple size-based grouping method".
//
// For extreme fan-outs the run size is scaled up beyond the threshold so
// that the kept proxy list itself stays well under a page (at most ~1000
// proxies): a record must hold either the content or a proxy per run, so a
// parent with hundreds of thousands of children forces larger runs
// regardless of the configured threshold.
func (p *Packer) reduce(e *openElem) error {
	if e.size <= p.threshold {
		return nil
	}
	runTarget := p.threshold
	if t := e.size / 1000; t > runTarget {
		runTarget = t
	}
	if runTarget > maxRunBytes {
		runTarget = maxRunBytes
	}
	var kept []segment
	keptSize, consumed := 0, 0
	i := 0
	for i < len(e.entries) {
		seg := e.entries[i]
		if seg.isProxy {
			kept = append(kept, seg)
			keptSize += len(seg.bytes)
			consumed += len(seg.bytes)
			i++
			continue
		}
		// Stop flushing once what's kept plus what's left already fits.
		remaining := e.size - consumed
		if keptSize+remaining <= p.threshold {
			kept = append(kept, e.entries[i:]...)
			for _, s := range e.entries[i:] {
				keptSize += len(s.bytes)
			}
			break
		}
		// Greedily extend a run of consecutive non-proxy entries up to the
		// run target and flush it as one record.
		runStart := i
		runBytes := 0
		for i < len(e.entries) && !e.entries[i].isProxy && runBytes+len(e.entries[i].bytes) <= runTarget {
			runBytes += len(e.entries[i].bytes)
			i++
		}
		if i == runStart {
			// A single entry larger than the threshold: it cannot be split
			// further (its own subtrees were already reduced), so keep it
			// and let the heap reject it if it exceeds the page.
			kept = append(kept, e.entries[i])
			keptSize += len(e.entries[i].bytes)
			consumed += len(e.entries[i].bytes)
			i++
			continue
		}
		run := e.entries[runStart:i]
		consumed += runBytes
		if err := p.flushRun(e, run); err != nil {
			return err
		}
		proxy := makeProxy(p.a, run)
		kept = append(kept, proxy)
		keptSize += len(proxy.bytes)
	}
	e.entries = kept
	e.size = keptSize
	return nil
}

// flushRun emits one record containing the run's subtrees with e as context.
func (p *Packer) flushRun(e *openElem, run []segment) error {
	path := p.pathTo(e)
	ns := p.inScopeNS(e)
	size := 0
	for _, s := range run {
		size += len(s.bytes)
	}
	payload := p.a.Make(4*maxVar + len(e.abs) + 2*maxVar*(len(path)+len(ns)) + size)
	payload = appendHeader(payload, e.abs, path, ns, len(run))
	for _, s := range run {
		payload = append(payload, s.bytes...)
	}
	rec, err := finishRecord(p.a, e.abs, payload)
	if err != nil {
		return p.fail(err)
	}
	return p.emit(rec)
}

// emitRecord emits the root record: context is the document node.
func (p *Packer) emitRecord(root *openElem, entries []segment) error {
	size := 0
	for _, s := range entries {
		size += len(s.bytes)
	}
	payload := p.a.Make(4*maxVar + size)
	payload = appendHeader(payload, nodeid.Root, nil, nil, len(entries))
	for _, s := range entries {
		payload = append(payload, s.bytes...)
	}
	rec, err := finishRecord(p.a, nodeid.Root, payload)
	if err != nil {
		return p.fail(err)
	}
	return p.emit(rec)
}

// pathTo returns the element names from the root element down to e.
func (p *Packer) pathTo(e *openElem) []xml.QName {
	var path []xml.QName
	for _, oe := range p.stack[1:] { // stack[0] is the document pseudo-element
		path = append(path, oe.name)
	}
	return append(path, e.name)
}

// inScopeNS returns the namespace bindings in scope at e (innermost wins).
func (p *Packer) inScopeNS(e *openElem) []NSBinding {
	seen := map[xml.NameID]bool{}
	var out []NSBinding
	add := func(bs []NSBinding) {
		for i := len(bs) - 1; i >= 0; i-- {
			if !seen[bs[i].Prefix] {
				seen[bs[i].Prefix] = true
				out = append(out, bs[i])
			}
		}
	}
	add(e.ns)
	for i := len(p.stack) - 1; i >= 1; i-- {
		add(p.stack[i].ns)
	}
	return out
}

func makeProxy(a *arena.Arena, run []segment) segment {
	count := 0
	for _, s := range run {
		if s.isProxy {
			count += s.count
		} else {
			count++
		}
	}
	b := a.Make(1 + len(run[0].rel) + maxVar)
	b = append(b, byte(xml.Proxy))
	b = append(b, run[0].rel...)
	b = appendUvarint(b, uint64(count))
	return segment{bytes: b, isProxy: true, rel: run[0].rel, count: count}
}

// finishRecord computes MinNodeID and the node-ID intervals of a payload.
func finishRecord(a *arena.Arena, contextID nodeid.ID, payload []byte) (EncodedRecord, error) {
	rec, err := Decode(payload)
	if err != nil {
		return EncodedRecord{}, err
	}
	intervals, minID, err := rec.IntervalsArena(a)
	if err != nil {
		return EncodedRecord{}, err
	}
	return EncodedRecord{MinNodeID: minID, Intervals: intervals, Payload: payload}, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendHeader(b []byte, ctx nodeid.ID, path []xml.QName, ns []NSBinding, count int) []byte {
	b = appendUvarint(b, uint64(len(ctx)))
	b = append(b, ctx...)
	b = appendUvarint(b, uint64(len(path)))
	for _, q := range path {
		b = appendUvarint(b, uint64(q.URI))
		b = appendUvarint(b, uint64(q.Local))
	}
	b = appendUvarint(b, uint64(len(ns)))
	for _, n := range ns {
		b = appendUvarint(b, uint64(n.Prefix))
		b = appendUvarint(b, uint64(n.URI))
	}
	return appendUvarint(b, uint64(count))
}

// maxVar bounds one uvarint field for arena capacity pre-sizing.
const maxVar = binary.MaxVarintLen64

// encodeElement assembles an element's encoding from its reduced entries.
func encodeElement(a *arena.Arena, e *openElem) []byte {
	b := a.Make(1 + len(e.rel) + 5*maxVar + e.size)
	b = append(b, byte(xml.Element))
	b = append(b, e.rel...)
	b = appendUvarint(b, uint64(e.name.URI))
	b = appendUvarint(b, uint64(e.name.Local))
	b = appendUvarint(b, uint64(e.typ))
	b = appendUvarint(b, uint64(len(e.entries)))
	b = appendUvarint(b, uint64(e.size))
	for _, s := range e.entries {
		b = append(b, s.bytes...)
	}
	return b
}

// encodeLeaf encodes attribute, text, comment and PI nodes.
func encodeLeaf(a *arena.Arena, kind xml.Kind, rel nodeid.Rel, name xml.QName, typ xml.TypeID, value []byte, _, _ int) []byte {
	b := a.Make(1 + len(rel) + 4*maxVar + len(value))
	b = append(b, byte(kind))
	b = append(b, rel...)
	switch kind {
	case xml.Attribute:
		b = appendUvarint(b, uint64(name.URI))
		b = appendUvarint(b, uint64(name.Local))
		b = appendUvarint(b, uint64(typ))
	case xml.Text:
		b = appendUvarint(b, uint64(typ))
	case xml.ProcessingInstruction:
		b = appendUvarint(b, uint64(name.Local))
	case xml.Comment:
	default:
		panic("pack: encodeLeaf bad kind")
	}
	b = appendUvarint(b, uint64(len(value)))
	return append(b, value...)
}

func encodeNamespace(a *arena.Arena, rel nodeid.Rel, prefix, uri xml.NameID) []byte {
	b := a.Make(1 + len(rel) + 2*maxVar)
	b = append(b, byte(xml.Namespace))
	b = append(b, rel...)
	b = appendUvarint(b, uint64(prefix))
	b = appendUvarint(b, uint64(uri))
	return b
}
