package pack

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rx/internal/nodeid"
	"rx/internal/tokens"
	"rx/internal/xml"
	"rx/internal/xmlparse"
)

// packDoc parses and packs a document, returning the emitted records in
// emission order (bottom-up; root record last) and the dictionary.
func packDoc(t testing.TB, doc string, threshold int) ([]EncodedRecord, *xml.Dict) {
	t.Helper()
	dict := xml.NewDict()
	stream, err := xmlparse.Parse([]byte(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var recs []EncodedRecord
	err = PackStream(stream, threshold, func(r EncodedRecord) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, dict
}

// fetcher builds a Fetch over a set of records using their intervals,
// emulating the NodeID index with a linear scan (tests only).
func fetcher(t testing.TB, recs []EncodedRecord) Fetch {
	type entry struct {
		upper nodeid.ID
		rec   *Record
	}
	var entries []entry
	for i := range recs {
		r, err := Decode(recs[i].Payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range recs[i].Intervals {
			entries = append(entries, entry{u, r})
		}
	}
	return func(first nodeid.ID) (*Record, error) {
		var best *entry
		for i := range entries {
			e := &entries[i]
			if nodeid.Compare(e.upper, first) >= 0 && (best == nil || nodeid.Compare(e.upper, best.upper) < 0) {
				best = e
			}
		}
		if best == nil {
			return nil, fmt.Errorf("no record for %s", first)
		}
		return best.rec, nil
	}
}

// collector records walk events as a compact trace.
type collector struct {
	dict *xml.Dict
	sb   strings.Builder
	ids  []nodeid.ID
}

func (c *collector) Enter(n Node, r *Record) (bool, error) {
	c.ids = append(c.ids, nodeid.Clone(n.Abs))
	switch n.Kind {
	case xml.Element:
		name, _ := c.dict.Lookup(n.Name.Local)
		fmt.Fprintf(&c.sb, "<%s", name)
	case xml.Attribute:
		name, _ := c.dict.Lookup(n.Name.Local)
		fmt.Fprintf(&c.sb, " @%s=%s", name, n.Value)
	case xml.Text:
		fmt.Fprintf(&c.sb, "T[%s]", n.Value)
	case xml.Comment:
		fmt.Fprintf(&c.sb, "C[%s]", n.Value)
	case xml.ProcessingInstruction:
		name, _ := c.dict.Lookup(n.Name.Local)
		fmt.Fprintf(&c.sb, "PI[%s %s]", name, n.Value)
	case xml.Namespace:
		pfx, _ := c.dict.Lookup(n.Name.Local)
		uri, _ := c.dict.Lookup(n.Name.URI)
		fmt.Fprintf(&c.sb, " ns:%s=%s", pfx, uri)
	}
	return true, nil
}

func (c *collector) Leave(n Node, r *Record) (bool, error) {
	c.sb.WriteString(">")
	return true, nil
}

// walkTrace walks a packed document and returns the trace.
func walkTrace(t testing.TB, recs []EncodedRecord, dict *xml.Dict) (string, []nodeid.ID) {
	t.Helper()
	root, err := Decode(recs[len(recs)-1].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.ContextID) != 0 {
		t.Fatalf("last emitted record is not the root record (context %s)", root.ContextID)
	}
	c := &collector{dict: dict}
	if err := Walk(root, fetcher(t, recs), c); err != nil {
		t.Fatal(err)
	}
	return c.sb.String(), c.ids
}

// tokenTrace renders the original token stream in the same compact form.
func tokenTrace(t testing.TB, doc string, dict *xml.Dict) string {
	t.Helper()
	stream, err := xmlparse.Parse([]byte(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r := tokens.NewReader(stream)
	for r.More() {
		tok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		switch tok.Kind {
		case tokens.StartElement:
			name, _ := dict.Lookup(tok.Name.Local)
			fmt.Fprintf(&sb, "<%s", name)
		case tokens.EndElement:
			sb.WriteString(">")
		case tokens.Attr:
			name, _ := dict.Lookup(tok.Name.Local)
			fmt.Fprintf(&sb, " @%s=%s", name, tok.Value)
		case tokens.NSDecl:
			pfx, _ := dict.Lookup(tok.Prefix)
			uri, _ := dict.Lookup(tok.URI)
			fmt.Fprintf(&sb, " ns:%s=%s", pfx, uri)
		case tokens.Text:
			fmt.Fprintf(&sb, "T[%s]", tok.Value)
		case tokens.Comment:
			fmt.Fprintf(&sb, "C[%s]", tok.Value)
		case tokens.PI:
			name, _ := dict.Lookup(tok.Name.Local)
			fmt.Fprintf(&sb, "PI[%s %s]", name, tok.Value)
		}
	}
	return sb.String()
}

func TestSingleRecordRoundTrip(t *testing.T) {
	doc := `<a x="1"><b>hi</b><c><d>deep</d></c><!--note--><?app data?></a>`
	recs, dict := packDoc(t, doc, 0)
	if len(recs) != 1 {
		t.Fatalf("expected 1 record, got %d", len(recs))
	}
	got, _ := walkTrace(t, recs, dict)
	want := tokenTrace(t, doc, dict)
	if got != want {
		t.Errorf("walk = %q\nwant   %q", got, want)
	}
}

func TestMultiRecordRoundTrip(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<catalog>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, `<product id="%d"><name>Item %d with some padding text</name><price>%d.50</price></product>`, i, i, i)
	}
	sb.WriteString("</catalog>")
	doc := sb.String()
	recs, dict := packDoc(t, doc, 600)
	if len(recs) < 5 {
		t.Fatalf("expected many records at threshold 600, got %d", len(recs))
	}
	got, ids := walkTrace(t, recs, dict)
	want := tokenTrace(t, doc, dict)
	if got != want {
		a, b := got, want
		if len(a) > 200 {
			a = a[:200]
		}
		if len(b) > 200 {
			b = b[:200]
		}
		t.Errorf("walk != tokens:\n got %q\nwant %q", a, b)
	}
	// Node IDs strictly increase in document order.
	for i := 1; i < len(ids); i++ {
		if nodeid.Compare(ids[i-1], ids[i]) >= 0 {
			t.Fatalf("node IDs out of order at %d: %s >= %s", i, ids[i-1], ids[i])
		}
	}
}

func TestRecordSizesRespectThreshold(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "<e>%030d</e>", i)
	}
	sb.WriteString("</r>")
	for _, th := range []int{300, 1000, 4000} {
		recs, _ := packDoc(t, sb.String(), th)
		for i, r := range recs {
			// Records may exceed the threshold only by one node's overhead
			// (a single entry larger than the threshold is kept whole).
			if len(r.Payload) > th+200 {
				t.Errorf("threshold %d: record %d is %d bytes", th, i, len(r.Payload))
			}
		}
	}
}

func TestFindEveryNode(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, `<s k="%d"><t>v%d</t></s>`, i, i)
	}
	sb.WriteString("</r>")
	recs, dict := packDoc(t, sb.String(), 400)
	_ = dict
	_, ids := walkTrace(t, recs, dict)
	fetch := fetcher(t, recs)
	for _, id := range ids {
		rec, err := fetch(id)
		if err != nil {
			t.Fatalf("fetch %s: %v", id, err)
		}
		n, found, err := rec.Find(id)
		for err == nil && !found && n.IsProxy() {
			rec, err = fetch(id)
			if err != nil {
				break
			}
			n, found, err = rec.Find(id)
			break // fetch is interval-exact in this harness; one hop is enough
		}
		if err != nil {
			t.Fatalf("find %s: %v", id, err)
		}
		if !found {
			t.Fatalf("node %s not found in its record", id)
		}
		if !nodeid.Equal(n.Abs, id) {
			t.Fatalf("found %s, want %s", n.Abs, id)
		}
	}
	// A non-existent ID is not found.
	bogus := nodeid.Append(nodeid.ID{0x02}, nodeid.Rel{0xEE})
	rec, err := fetch(bogus)
	if err == nil {
		if _, found, _ := rec.Find(bogus); found {
			t.Error("bogus node reported found")
		}
	}
}

func TestIntervalsSingleRecord(t *testing.T) {
	recs, _ := packDoc(t, `<a><b/><c/></a>`, 0)
	if len(recs) != 1 {
		t.Fatal("want 1 record")
	}
	if len(recs[0].Intervals) != 1 {
		t.Fatalf("single record should have 1 interval, got %d", len(recs[0].Intervals))
	}
	// Upper endpoint is the last node in document order: <c> = 02 04.
	want := nodeid.ID{0x02, 0x04}
	if !nodeid.Equal(recs[0].Intervals[0], want) {
		t.Errorf("upper = %s, want %s", recs[0].Intervals[0], want)
	}
	if !nodeid.Equal(recs[0].MinNodeID, nodeid.ID{0x02}) {
		t.Errorf("min = %s", recs[0].MinNodeID)
	}
}

func TestIntervalsBreakAtProxies(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r><head/>")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "<e>%050d</e>", i)
	}
	sb.WriteString("<tail/></r>")
	recs, _ := packDoc(t, sb.String(), 500)
	if len(recs) < 3 {
		t.Fatalf("expected multiple records, got %d", len(recs))
	}
	root := recs[len(recs)-1]
	if len(root.Intervals) < 2 {
		t.Errorf("root record should have multiple intervals (proxy breaks), got %d", len(root.Intervals))
	}
	// Intervals across all records are disjoint and each upper endpoint is
	// >= its record's min.
	for _, r := range recs {
		if len(r.Intervals) == 0 {
			t.Error("record with no intervals")
		}
		for i := 1; i < len(r.Intervals); i++ {
			if nodeid.Compare(r.Intervals[i-1], r.Intervals[i]) >= 0 {
				t.Error("record intervals not ascending")
			}
		}
	}
}

func TestHeaderSelfContained(t *testing.T) {
	doc := `<a xmlns:p="urn:x"><b><c><p:d attr="v">text</p:d></c></b></a>`
	recs, dict := packDoc(t, doc, 40) // force aggressive splitting
	if len(recs) < 2 {
		t.Skipf("threshold did not split (got %d records)", len(recs))
	}
	// Every non-root record's header carries its context path and in-scope
	// namespaces.
	for _, er := range recs[:len(recs)-1] {
		r, err := Decode(er.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.ContextID) == 0 {
			continue
		}
		if len(r.Path) != nodeidLevel(t, r.ContextID) {
			t.Errorf("context path length %d != level %d", len(r.Path), nodeidLevel(t, r.ContextID))
		}
		for _, q := range r.Path {
			if _, err := dict.Lookup(q.Local); err != nil {
				t.Errorf("bad name in path: %v", err)
			}
		}
	}
}

func nodeidLevel(t *testing.T, id nodeid.ID) int {
	lvl := nodeid.Level(id)
	if lvl < 0 {
		t.Fatalf("bad id %s", id)
	}
	return lvl
}

func TestNamespaceInScope(t *testing.T) {
	// A record split below a namespace declaration must carry the binding.
	var sb strings.Builder
	sb.WriteString(`<a xmlns:p="urn:deep">`)
	sb.WriteString("<b>")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "<p:e>%040d</p:e>", i)
	}
	sb.WriteString("</b></a>")
	recs, dict := packDoc(t, sb.String(), 400)
	if len(recs) < 2 {
		t.Fatal("expected split")
	}
	urnID, _ := dict.Intern("urn:deep")
	pID, _ := dict.Intern("p")
	foundChild := false
	for _, er := range recs[:len(recs)-1] {
		r, _ := Decode(er.Payload)
		if len(r.ContextID) == 0 {
			continue
		}
		foundChild = true
		ok := false
		for _, ns := range r.NS {
			if ns.Prefix == pID && ns.URI == urnID {
				ok = true
			}
		}
		if !ok {
			t.Errorf("record context %s missing in-scope namespace p=urn:deep (has %v)", r.ContextID, r.NS)
		}
	}
	if !foundChild {
		t.Error("no child records to check")
	}
}

func TestCountNodes(t *testing.T) {
	doc := `<a><b x="1">t</b><c/></a>` // a, b, @x, t, c = 5 nodes
	recs, _ := packDoc(t, doc, 0)
	r, _ := Decode(recs[0].Payload)
	n, err := r.CountNodes()
	if err != nil || n != 5 {
		t.Errorf("CountNodes = %d, %v; want 5", n, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0xFF}); err == nil {
		t.Error("garbage header should fail")
	}
	recs, _ := packDoc(t, `<a>x</a>`, 0)
	// Truncate the payload.
	if _, err := Decode(recs[0].Payload[:2]); err == nil {
		t.Error("truncated payload should fail")
	}
	r, _ := Decode(recs[0].Payload)
	if _, err := r.DecodeNodeAt(len(r.body)+5, nodeid.Root); err == nil {
		t.Error("out-of-range decode should fail")
	}
}

func TestPackerStreamErrors(t *testing.T) {
	p := NewPacker(0, func(EncodedRecord) error { return nil })
	if err := p.Feed(&tokens.Token{Kind: tokens.EndElement}); err == nil {
		t.Error("EndElement before document should fail")
	}
	p2 := NewPacker(0, func(EncodedRecord) error { return nil })
	p2.Feed(&tokens.Token{Kind: tokens.StartDocument})
	if err := p2.Close(); err == nil {
		t.Error("Close before EndDocument should fail")
	}
}

// Property: for random documents and random thresholds, pack+walk
// reproduces the exact token trace and node IDs are strictly increasing.
func TestPackWalkProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 0, 4)
		threshold := 100 + rng.Intn(3000)
		dict := xml.NewDict()
		stream, err := xmlparse.Parse([]byte(doc), dict, xmlparse.Options{})
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		var recs []EncodedRecord
		if err := PackStream(stream, threshold, func(r EncodedRecord) error {
			recs = append(recs, r)
			return nil
		}); err != nil {
			t.Fatalf("seed %d: pack: %v", seed, err)
		}
		got, ids := walkTrace(t, recs, dict)
		want := tokenTrace(t, doc, dict)
		if got != want {
			t.Fatalf("seed %d threshold %d: round trip mismatch\ndoc: %.120s", seed, threshold, doc)
		}
		for i := 1; i < len(ids); i++ {
			if nodeid.Compare(ids[i-1], ids[i]) >= 0 {
				t.Fatalf("seed %d: IDs out of order", seed)
			}
		}
	}
}

func randomDoc(rng *rand.Rand, depth, maxDepth int) string {
	var sb strings.Builder
	name := fmt.Sprintf("e%d", rng.Intn(8))
	sb.WriteString("<" + name)
	for a := 0; a < rng.Intn(3); a++ {
		fmt.Fprintf(&sb, ` a%d="%d"`, a, rng.Intn(1000))
	}
	sb.WriteString(">")
	kids := rng.Intn(6)
	if depth >= maxDepth {
		kids = 0
	}
	for k := 0; k < kids; k++ {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&sb, "text%d ", rng.Intn(100))
		case 1:
			fmt.Fprintf(&sb, "<!--c%d-->", rng.Intn(10))
		default:
			sb.WriteString(randomDoc(rng, depth+1, maxDepth))
		}
	}
	fmt.Fprintf(&sb, "padding%020d", rng.Intn(1000))
	sb.WriteString("</" + name + ">")
	return sb.String()
}

func BenchmarkPack(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<catalog>")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, `<product id="%d"><name>Widget %d</name><price>%d.99</price></product>`, i, i, i%500)
	}
	sb.WriteString("</catalog>")
	dict := xml.NewDict()
	stream, err := xmlparse.Parse([]byte(sb.String()), dict, xmlparse.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := PackStream(stream, 0, func(EncodedRecord) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
