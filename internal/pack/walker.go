package pack

import (
	"fmt"

	"rx/internal/nodeid"
	"rx/internal/xml"
)

// Fetch resolves a proxy: given the absolute node ID of the first subtree in
// a packed-away run, it returns the record holding that run. Implementations
// search the NodeID index (§3.4).
type Fetch func(first nodeid.ID) (*Record, error)

// Visitor receives document-order traversal events. Enter is called for
// every real node; Leave is called for elements after their content. Either
// may return false to stop the walk early.
type Visitor interface {
	Enter(n Node, r *Record) (bool, error)
	Leave(n Node, r *Record) (bool, error)
}

// Walk traverses the subtrees of rec in document order, fetching proxied
// records as needed. This is the stored-data traversal of §3.4: the records
// form a block-based tree walked depth-first, with fetch order matching the
// (DocID, minNodeID) clustering order.
func Walk(rec *Record, fetch Fetch, v Visitor) error {
	_, err := walkEntries(rec, 0, rec.ContextID, rec.SubtreeCount, fetch, v, nil)
	return err
}

// WalkPartial is Walk, except that a proxy whose record cannot be fetched is
// skipped (its whole subtree is omitted from the traversal) instead of
// failing the walk. It returns the number of subtrees lost this way. This is
// the best-effort salvage traversal: when a heap page is gone, everything
// still reachable is recovered and the loss is reported, never silent.
func WalkPartial(rec *Record, fetch Fetch, v Visitor) (lost int, err error) {
	_, err = walkEntries(rec, 0, rec.ContextID, rec.SubtreeCount, fetch, v, &lost)
	return lost, err
}

// walkEntries walks a run of sibling entries; returns false to stop. A
// non-nil lost pointer makes proxy-resolution failures non-fatal: the
// failure is counted and the proxied subtree skipped.
func walkEntries(rec *Record, off int, parentAbs nodeid.ID, entries int, fetch Fetch, v Visitor, lost *int) (bool, error) {
	for i := 0; i < entries; i++ {
		n, err := rec.DecodeNodeAt(off, parentAbs)
		if err != nil {
			return false, err
		}
		off = n.end
		if n.IsProxy() {
			child, err := fetch(n.Abs)
			if err != nil {
				if lost != nil {
					*lost++
					continue
				}
				return false, fmt.Errorf("pack: resolving proxy %s: %w", n.Abs, err)
			}
			cont, err := walkEntries(child, 0, child.ContextID, child.SubtreeCount, fetch, v, lost)
			if err != nil || !cont {
				return cont, err
			}
			continue
		}
		cont, err := v.Enter(n, rec)
		if err != nil || !cont {
			return cont, err
		}
		if n.Kind == xml.Element && n.EntryCount > 0 {
			cont, err := walkEntries(rec, n.bodyStart, n.Abs, n.EntryCount, fetch, v, lost)
			if err != nil || !cont {
				return cont, err
			}
		}
		if n.Kind == xml.Element {
			cont, err := v.Leave(n, rec)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// WalkSubtree traverses one node's subtree (the node itself included),
// resolving proxies. Used for node-scoped serialization and string-value
// computation of query results reached through the NodeID index.
func WalkSubtree(rec *Record, n Node, fetch Fetch, v Visitor) error {
	cont, err := v.Enter(n, rec)
	if err != nil || !cont {
		return err
	}
	if n.Kind == xml.Element && n.EntryCount > 0 {
		cont, err := walkEntries(rec, n.bodyStart, n.Abs, n.EntryCount, fetch, v, nil)
		if err != nil || !cont {
			return err
		}
	}
	if n.Kind == xml.Element {
		if _, err := v.Leave(n, rec); err != nil {
			return err
		}
	}
	return nil
}
