package pack

import (
	"fmt"

	"rx/internal/nodeid"
	"rx/internal/xml"
)

// Fetch resolves a proxy: given the absolute node ID of the first subtree in
// a packed-away run, it returns the record holding that run. Implementations
// search the NodeID index (§3.4).
type Fetch func(first nodeid.ID) (*Record, error)

// Visitor receives document-order traversal events. Enter is called for
// every real node; Leave is called for elements after their content. Either
// may return false to stop the walk early.
type Visitor interface {
	Enter(n Node, r *Record) (bool, error)
	Leave(n Node, r *Record) (bool, error)
}

// Walk traverses the subtrees of rec in document order, fetching proxied
// records as needed. This is the stored-data traversal of §3.4: the records
// form a block-based tree walked depth-first, with fetch order matching the
// (DocID, minNodeID) clustering order.
func Walk(rec *Record, fetch Fetch, v Visitor) error {
	_, err := walkEntries(rec, 0, rec.ContextID, rec.SubtreeCount, fetch, v, nil)
	return err
}

// WalkPartial is Walk, except that a proxy whose record cannot be fetched is
// skipped (its whole subtree is omitted from the traversal) instead of
// failing the walk. It returns the number of subtrees lost this way. This is
// the best-effort salvage traversal: when a heap page is gone, everything
// still reachable is recovered and the loss is reported, never silent.
func WalkPartial(rec *Record, fetch Fetch, v Visitor) (lost int, err error) {
	_, err = walkEntries(rec, 0, rec.ContextID, rec.SubtreeCount, fetch, v, &lost)
	return lost, err
}

// walkEntries walks a run of sibling entries; returns false to stop. A
// non-nil lost pointer makes proxy-resolution failures non-fatal: the
// failure is counted and the proxied subtree skipped.
func walkEntries(rec *Record, off int, parentAbs nodeid.ID, entries int, fetch Fetch, v Visitor, lost *int) (bool, error) {
	for i := 0; i < entries; i++ {
		n, err := rec.DecodeNodeAt(off, parentAbs)
		if err != nil {
			return false, err
		}
		off = n.end
		if n.IsProxy() {
			child, err := fetch(n.Abs)
			if err != nil {
				if lost != nil {
					*lost++
					continue
				}
				return false, fmt.Errorf("pack: resolving proxy %s: %w", n.Abs, err)
			}
			cont, err := walkEntries(child, 0, child.ContextID, child.SubtreeCount, fetch, v, lost)
			if err != nil || !cont {
				return cont, err
			}
			continue
		}
		cont, err := v.Enter(n, rec)
		if err != nil || !cont {
			return cont, err
		}
		if n.Kind == xml.Element && n.EntryCount > 0 {
			cont, err := walkEntries(rec, n.bodyStart, n.Abs, n.EntryCount, fetch, v, lost)
			if err != nil || !cont {
				return cont, err
			}
		}
		if n.Kind == xml.Element {
			cont, err := v.Leave(n, rec)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// FetchBorrow resolves a proxy like Fetch, but may return a record whose
// bytes are borrowed from a pinned buffer-pool frame. The returned release
// function (nil when the record is owned) unpins the frame; the walker calls
// it exactly once, either directly or after a Detach.
type FetchBorrow func(first nodeid.ID) (*Record, func(), error)

// borrowWalker threads the single outstanding frame borrow through a
// depth-first walk. The invariant — at most ONE borrowed record at any
// instant — keeps the walk deadlock-free against heap writers: a goroutine
// never holds two heap-page read latches at once (see heap.FetchBorrowed).
// Before fetching a proxy's record, the current borrow is detached (its bytes
// copied to owned memory, frame released); when a fetched record's subtree
// walk completes, its frame is released without the copy.
type borrowWalker struct {
	fetch   FetchBorrow
	v       Visitor
	rec     *Record // record whose bytes are currently borrowed (nil: none)
	release func()
}

// borrow registers rec as the outstanding borrow. release may be nil (owned
// record); the walker still tracks rec so drop stays idempotent.
func (w *borrowWalker) borrow(rec *Record, release func()) {
	w.rec, w.release = rec, release
}

// detach promotes the outstanding borrow to owned memory and releases its
// frame. Nodes already decoded from it keep stale Rel/Value aliases; the
// engine's visitors only use Abs after this point (see Record.Detach).
func (w *borrowWalker) detach() {
	if w.release != nil {
		w.rec.Detach()
		w.release()
	}
	w.rec, w.release = nil, nil
}

// drop releases rec's frame without copying, if rec is still the outstanding
// borrow. Its bytes must not be used afterwards.
func (w *borrowWalker) drop(rec *Record) {
	if w.rec == rec {
		if w.release != nil {
			w.release()
		}
		w.rec, w.release = nil, nil
	}
}

// dropAny releases whatever borrow is still outstanding (walk exit path).
func (w *borrowWalker) dropAny() {
	if w.release != nil {
		w.release()
	}
	w.rec, w.release = nil, nil
}

// WalkBorrowed is Walk over borrowed records: rec's bytes may live in a
// pinned buffer-pool frame, released by calling release (nil if rec is
// owned). Proxy records are fetched through fetch and their frames released
// as soon as each subtree completes, so the walk holds at most one frame pin
// at any instant regardless of document size.
func WalkBorrowed(rec *Record, release func(), fetch FetchBorrow, v Visitor) error {
	w := &borrowWalker{fetch: fetch, v: v}
	w.borrow(rec, release)
	defer w.dropAny()
	_, err := w.walkEntries(rec, 0, rec.ContextID, rec.SubtreeCount)
	return err
}

// WalkSubtreeBorrowed is WalkSubtree over borrowed records; same lifetime
// contract as WalkBorrowed. n must have been decoded from rec.
func WalkSubtreeBorrowed(rec *Record, release func(), n Node, fetch FetchBorrow, v Visitor) error {
	w := &borrowWalker{fetch: fetch, v: v}
	w.borrow(rec, release)
	defer w.dropAny()
	cont, err := w.v.Enter(n, rec)
	if err != nil || !cont {
		return err
	}
	if n.Kind == xml.Element && n.EntryCount > 0 {
		cont, err := w.walkEntries(rec, n.bodyStart, n.Abs, n.EntryCount)
		if err != nil || !cont {
			return err
		}
	}
	if n.Kind == xml.Element {
		if _, err := w.v.Leave(n, rec); err != nil {
			return err
		}
	}
	return nil
}

// walkEntries is walkEntries (above) under the single-borrow protocol.
func (w *borrowWalker) walkEntries(rec *Record, off int, parentAbs nodeid.ID, entries int) (bool, error) {
	for i := 0; i < entries; i++ {
		n, err := rec.DecodeNodeAt(off, parentAbs)
		if err != nil {
			return false, err
		}
		off = n.end
		if n.IsProxy() {
			// Release the current frame before taking another: the fetch
			// descends into the node-ID index and then borrows a new heap
			// page, and holding two page latches across that would risk
			// deadlock. rec's body survives via the detach copy, so the
			// continued decode of this run (off onwards) stays valid.
			w.detach()
			child, childRelease, err := w.fetch(n.Abs)
			if err != nil {
				return false, fmt.Errorf("pack: resolving proxy %s: %w", n.Abs, err)
			}
			w.borrow(child, childRelease)
			cont, err := w.walkEntries(child, 0, child.ContextID, child.SubtreeCount)
			w.drop(child)
			if err != nil || !cont {
				return cont, err
			}
			continue
		}
		cont, err := w.v.Enter(n, rec)
		if err != nil || !cont {
			return cont, err
		}
		if n.Kind == xml.Element && n.EntryCount > 0 {
			cont, err := w.walkEntries(rec, n.bodyStart, n.Abs, n.EntryCount)
			if err != nil || !cont {
				return cont, err
			}
		}
		if n.Kind == xml.Element {
			cont, err := w.v.Leave(n, rec)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// WalkSubtree traverses one node's subtree (the node itself included),
// resolving proxies. Used for node-scoped serialization and string-value
// computation of query results reached through the NodeID index.
func WalkSubtree(rec *Record, n Node, fetch Fetch, v Visitor) error {
	cont, err := v.Enter(n, rec)
	if err != nil || !cont {
		return err
	}
	if n.Kind == xml.Element && n.EntryCount > 0 {
		cont, err := walkEntries(rec, n.bodyStart, n.Abs, n.EntryCount, fetch, v, nil)
		if err != nil || !cont {
			return err
		}
	}
	if n.Kind == xml.Element {
		if _, err := v.Leave(n, rec); err != nil {
			return err
		}
	}
	return nil
}
