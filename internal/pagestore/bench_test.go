package pagestore

import "testing"

func BenchmarkStoreRead(b *testing.B) {
	for _, tc := range []struct {
		name string
		cs   bool
	}{{"raw", false}, {"checksum", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var s Store = NewMemStore()
			if tc.cs {
				s = NewChecksumStore(s)
			}
			id, _ := s.Allocate()
			page := make([]byte, PageSize)
			for i := range page {
				page[i] = byte(i)
			}
			s.WritePage(id, page)
			buf := make([]byte, PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.ReadPage(0, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreWrite(b *testing.B) {
	for _, tc := range []struct {
		name string
		cs   bool
	}{{"raw", false}, {"checksum", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var s Store = NewMemStore()
			if tc.cs {
				s = NewChecksumStore(s)
			}
			id, _ := s.Allocate()
			page := make([]byte, PageSize)
			for i := range page {
				page[i] = byte(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.WritePage(id, page); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
