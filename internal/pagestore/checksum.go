package pagestore

import (
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"

	"rx/internal/rxerr"
)

// Torn-page detection: ChecksumStore wraps any Store and maintains a CRC32
// plus a "written" bit per data page in sidecar checksum pages, verified on
// every read. The sidecar layout (rather than a per-page trailer) keeps the
// full PageSize usable by upper layers: the underlying store interleaves one
// checksum page before every run of crcPerPage data pages and the wrapper
// remaps logical page IDs over the gaps, so the engine never sees the
// sidecars.
//
// Crash consistency: checksum entries are buffered in memory and written to
// their sidecar pages during Sync, immediately before the inner sync. Under
// the engine's WAL discipline every durability boundary is a Sync, so a
// data page and its checksum entry always persist in the same sync epoch; a
// mismatch on read therefore means real corruption (a torn page write, bit
// rot, or a checksum page lost to a partial sync) — never a benign ordering
// artifact.
//
// The written bit distinguishes a never-written page (which legitimately
// reads as zeros) from a written page torn back to zeros: once a page's
// first write is durable its bit stays set, so an all-zero read of that
// page — or a corruption that zeroes its CRC entry — fails verification
// instead of masquerading as a fresh page.

// crcPerPage is the number of data pages a sidecar page covers. Each entry
// needs 4 CRC bytes plus one bit in the written bitmap, so the count is the
// largest multiple of 8 with 4*n + n/8 <= PageSize.
const crcPerPage = 1984

// crcBytes is the size of the CRC entry array; the written bitmap follows.
const crcBytes = 4 * crcPerPage

// verOff is the offset of the sidecar version byte, in the spare bytes after
// the written bitmap.
const verOff = crcBytes + crcPerPage/8

// sidecarVersion 1 marks sidecars whose entries use the Castagnoli
// polynomial. Version 0 (the zero value, as written by earlier builds) means
// IEEE entries; such groups are migrated in place on first load.
const sidecarVersion = 1

// ErrPageChecksum reports a page whose contents do not match its stored
// CRC32 — a torn write or silent media corruption. Retrieve the page with
// errors.As; it matches rxerr.ErrChecksum under errors.Is.
type ErrPageChecksum struct {
	PageID PageID
}

func (e ErrPageChecksum) Error() string {
	return fmt.Sprintf("pagestore: checksum mismatch on page %d (torn write or corruption)", e.PageID)
}

func (e ErrPageChecksum) Is(target error) bool { return target == rxerr.ErrChecksum }

// ChecksumStore is a Store wrapper that checksums every page. It must own
// the inner store exclusively (all reads and writes go through it).
//
// Reads take mu only shared: verification reads the cached group image, which
// writers mutate exclusively, so concurrent reads proceed in parallel and the
// read path never re-derives the page count from the inner store (pages is
// authoritative because the store is owned exclusively).
type ChecksumStore struct {
	mu     sync.RWMutex
	inner  Store
	pages  PageID               // cached logical page count
	groups map[PageID]*crcGroup // group index → cached checksum page image

	// writeGen is bumped (under mu, before the inner write) by every data-page
	// write. The optimistic read path uses it to tell a benign race from real
	// corruption: a verification failure with writeGen unchanged across the
	// unlocked window cannot be a concurrent writer's doing and is reported
	// immediately, without a re-read that could mask transient corruption.
	writeGen atomic.Uint64
}

type crcGroup struct {
	data  []byte // PageSize bytes: crcPerPage uint32 CRCs, then the written bitmap
	dirty bool
}

// NewChecksumStore wraps inner. An empty inner store is formatted lazily;
// a non-empty one must have been written through a ChecksumStore (the
// sidecar layout is not self-identifying — opening a raw store with
// checksums, or vice versa, fails on first read).
func NewChecksumStore(inner Store) *ChecksumStore {
	return &ChecksumStore{
		inner:  inner,
		pages:  logicalPages(inner.NumPages()),
		groups: map[PageID]*crcGroup{},
	}
}

// groupOf maps a logical page to its checksum group.
func groupOf(id PageID) PageID { return id / crcPerPage }

// physOf maps a logical page ID to its physical ID in the inner store.
func physOf(id PageID) PageID {
	g := id / crcPerPage
	return g*(crcPerPage+1) + 1 + id%crcPerPage
}

// crcPhys is the physical ID of group g's checksum page.
func crcPhys(g PageID) PageID { return g * (crcPerPage + 1) }

// PhysicalPage maps a logical page ID to its physical ID in the inner
// store. Exported for fault-injection adversaries and scrub tooling that
// corrupt or inspect the raw store underneath the wrapper.
func PhysicalPage(id PageID) PageID { return physOf(id) }

// SidecarPage returns the physical inner-store ID of the sidecar checksum
// page covering the given logical page.
func SidecarPage(id PageID) PageID { return crcPhys(groupOf(id)) }

// logicalPages converts an inner page count to the logical count.
func logicalPages(phys PageID) PageID {
	q := phys / (crcPerPage + 1)
	r := phys % (crcPerPage + 1)
	n := q * crcPerPage
	if r > 0 {
		n += r - 1
	}
	return n
}

// castagnoli is the CRC32-C table; hash/crc32 dispatches to the SSE4.2 /
// ARMv8 CRC instructions for it, making verification several times faster
// than the software IEEE computation.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// pageCRC is the stored checksum of a page image: CRC32-C (Castagnoli),
// remapped away from 0 so a stored entry of 0 (zero-filled sidecar region,
// or a corruption that zeroed the entry) can never verify a written page.
func pageCRC(buf []byte) uint32 {
	c := crc32.Checksum(buf[:PageSize], castagnoli)
	if c == 0 {
		c = 1
	}
	return c
}

// pageCRCIEEE is the pre-version-1 checksum, kept for sidecar migration.
func pageCRCIEEE(buf []byte) uint32 {
	c := crc32.ChecksumIEEE(buf[:PageSize])
	if c == 0 {
		c = 1
	}
	return c
}

// newGroup returns a fresh (never-persisted) group image, already stamped
// with the current sidecar version.
func newGroup(dirty bool) *crcGroup {
	g := &crcGroup{data: make([]byte, PageSize), dirty: dirty}
	g.data[verOff] = sidecarVersion
	return g
}

// groupLocked returns group g's cached checksum page, loading it from the
// inner store on first touch and migrating pre-Castagnoli sidecars in place.
func (c *ChecksumStore) groupLocked(g PageID) (*crcGroup, error) {
	if grp, ok := c.groups[g]; ok {
		return grp, nil
	}
	var grp *crcGroup
	if crcPhys(g) < c.inner.NumPages() {
		grp = &crcGroup{data: make([]byte, PageSize)}
		if err := c.inner.ReadPage(crcPhys(g), grp.data); err != nil {
			return nil, err
		}
		if grp.data[verOff] != sidecarVersion {
			if err := c.migrateGroupLocked(g, grp); err != nil {
				return nil, err
			}
		}
	} else {
		grp = newGroup(false)
	}
	c.groups[g] = grp
	return grp, nil
}

// migrateGroupLocked rewrites a version-0 (IEEE) group's entries as
// Castagnoli. Each written page is read and verified against its old IEEE
// entry first; a page that fails the old checksum keeps its stale entry, so
// the corruption is still reported when the page itself is read (under the
// new polynomial a stale IEEE entry can only verify by a 2^-32 accident).
// The migration mutates only the cached image — it becomes durable with the
// next Sync, and a crash before that simply re-runs it on reopen.
func (c *ChecksumStore) migrateGroupLocked(g PageID, grp *crcGroup) error {
	lo := g * crcPerPage
	hi := lo + crcPerPage
	if hi > c.pages {
		hi = c.pages
	}
	buf := make([]byte, PageSize)
	for id := lo; id < hi; id++ {
		idx := id % crcPerPage
		if !grp.written(idx) {
			continue
		}
		if physOf(id) >= c.inner.NumPages() {
			continue
		}
		if err := c.inner.ReadPage(physOf(id), buf); err != nil {
			return err
		}
		if pageCRCIEEE(buf) == grp.get(idx) {
			grp.set(idx, pageCRC(buf))
		}
	}
	grp.data[verOff] = sidecarVersion
	grp.dirty = true
	return nil
}

func (g *crcGroup) get(idx PageID) uint32 {
	d := g.data[idx*4:]
	return uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3])
}

func (g *crcGroup) set(idx PageID, crc uint32) {
	d := g.data[idx*4:]
	d[0], d[1], d[2], d[3] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	g.dirty = true
}

// written reports the page's written bit from the bitmap after the CRC array.
func (g *crcGroup) written(idx PageID) bool {
	return g.data[crcBytes+idx/8]&(1<<(idx%8)) != 0
}

func (g *crcGroup) setWritten(idx PageID, w bool) {
	if w {
		g.data[crcBytes+idx/8] |= 1 << (idx % 8)
	} else {
		g.data[crcBytes+idx/8] &^= 1 << (idx % 8)
	}
	g.dirty = true
}

// ReadPage implements Store, verifying the page against its stored CRC.
//
// Fast path: the expected CRC and written bit are snapshotted under the
// shared lock, then the inner read and the CRC computation run with no lock
// held at all, so verification never serializes against sidecar updates. A
// mismatch with writeGen unchanged across the unlocked window is real
// corruption (no writer could have raced) and fails immediately; only when a
// write did run concurrently does the slow path re-read and re-verify under
// the exclusive lock, where the store is quiescent.
func (c *ChecksumStore) ReadPage(id PageID, buf []byte) error {
	c.mu.RLock()
	if id >= c.pages {
		n := c.pages
		c.mu.RUnlock()
		return fmt.Errorf("%w: read page %d of %d", ErrPageRange, id, n)
	}
	grp, ok := c.groups[groupOf(id)]
	if !ok {
		// First touch of this group: load its sidecar page exclusively.
		// Groups are never evicted, so the reload can't miss.
		c.mu.RUnlock()
		c.mu.Lock()
		_, err := c.groupLocked(groupOf(id))
		c.mu.Unlock()
		if err != nil {
			return err
		}
		c.mu.RLock()
		grp = c.groups[groupOf(id)]
	}
	idx := id % crcPerPage
	want := grp.get(idx)
	written := grp.written(idx)
	gen := c.writeGen.Load()
	c.mu.RUnlock()
	if err := c.inner.ReadPage(physOf(id), buf); err != nil {
		return err
	}
	if written {
		if pageCRC(buf) == want {
			return nil
		}
	} else if allZero(buf[:PageSize]) {
		// Never durably written: only an untouched (all-zero) page is
		// acceptable. Anything else is a write that escaped its sync epoch.
		return nil
	}
	if c.writeGen.Load() == gen {
		// No write ran during the unlocked window, so the mismatch cannot be
		// a racing writer. Report the bytes the device actually returned —
		// re-reading here would mask transient read corruption.
		return fmt.Errorf("%w", ErrPageChecksum{PageID: id})
	}
	return c.readPageSlow(id, buf)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// readPageSlow re-reads and re-verifies a page under the exclusive lock,
// after an optimistic verification failed. With the lock held no writer can
// be between its inner write and its sidecar update, so a mismatch here is
// a torn write or media corruption, never a benign race.
func (c *ChecksumStore) readPageSlow(id PageID, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	grp, err := c.groupLocked(groupOf(id))
	if err != nil {
		return err
	}
	if err := c.inner.ReadPage(physOf(id), buf); err != nil {
		return err
	}
	idx := id % crcPerPage
	if !grp.written(idx) {
		if allZero(buf[:PageSize]) {
			return nil
		}
		return fmt.Errorf("%w", ErrPageChecksum{PageID: id})
	}
	if pageCRC(buf) != grp.get(idx) {
		return fmt.Errorf("%w", ErrPageChecksum{PageID: id})
	}
	return nil
}

// WritePage implements Store, updating the page's CRC entry and written bit
// (made durable at the next Sync, in the same epoch as the data page).
func (c *ChecksumStore) WritePage(id PageID, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= c.pages {
		return fmt.Errorf("%w: write page %d of %d", ErrPageRange, id, c.pages)
	}
	// Bumped before the inner write: a reader whose inner read observed this
	// write's bytes is then guaranteed to observe the new generation too.
	c.writeGen.Add(1)
	if err := c.inner.WritePage(physOf(id), buf); err != nil {
		return err
	}
	grp, err := c.groupLocked(groupOf(id))
	if err != nil {
		return err
	}
	grp.set(id%crcPerPage, pageCRC(buf))
	grp.setWritten(id%crcPerPage, true)
	return nil
}

// Allocate implements Store, interposing a checksum page at the start of
// each new group.
func (c *ChecksumStore) Allocate() (PageID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.pages
	if id%crcPerPage == 0 {
		// First page of a new group: allocate its checksum page.
		cp, err := c.inner.Allocate()
		if err != nil {
			return InvalidPage, err
		}
		if cp != crcPhys(groupOf(id)) {
			return InvalidPage, fmt.Errorf("pagestore: checksum layout broken: sidecar at %d, want %d", cp, crcPhys(groupOf(id)))
		}
		c.groups[groupOf(id)] = newGroup(true)
	}
	dp, err := c.inner.Allocate()
	if err != nil {
		return InvalidPage, err
	}
	if dp != physOf(id) {
		return InvalidPage, fmt.Errorf("pagestore: checksum layout broken: data page at %d, want %d", dp, physOf(id))
	}
	grp, err := c.groupLocked(groupOf(id))
	if err != nil {
		return InvalidPage, err
	}
	grp.set(id%crcPerPage, 0)
	grp.setWritten(id%crcPerPage, false)
	c.pages++
	return id, nil
}

// NumPages implements Store (logical pages, sidecars excluded).
func (c *ChecksumStore) NumPages() PageID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pages
}

// Rederive rebuilds every sidecar page from the current contents of the
// inner store: each data page's CRC is recomputed from its on-disk image,
// with an all-zero page marked unwritten. This is the repair path for a
// lost or corrupted sidecar page. It blesses whatever the data pages
// currently hold — torn-write history in the rederived groups is gone — so
// a structural consistency check must follow.
func (c *ChecksumStore) Rederive() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.pages
	buf := make([]byte, PageSize)
	for id := PageID(0); id < n; id++ {
		if id%crcPerPage == 0 {
			c.groups[groupOf(id)] = newGroup(true)
		}
		if err := c.inner.ReadPage(physOf(id), buf); err != nil {
			return err
		}
		grp := c.groups[groupOf(id)]
		idx := id % crcPerPage
		zero := true
		for _, b := range buf[:PageSize] {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			grp.set(idx, 0)
			grp.setWritten(idx, false)
		} else {
			grp.set(idx, pageCRC(buf))
			grp.setWritten(idx, true)
		}
	}
	if err := c.flushGroupsLocked(); err != nil {
		return err
	}
	return c.inner.Sync()
}

// flushGroupsLocked writes every dirty checksum page to the inner store in
// group order.
func (c *ChecksumStore) flushGroupsLocked() error {
	gs := make([]PageID, 0, len(c.groups))
	for g, grp := range c.groups {
		if grp.dirty {
			gs = append(gs, g)
		}
	}
	sort.Slice(gs, func(a, b int) bool { return gs[a] < gs[b] })
	for _, g := range gs {
		if err := c.inner.WritePage(crcPhys(g), c.groups[g].data); err != nil {
			return err
		}
		c.groups[g].dirty = false
	}
	return nil
}

// Sync implements Store: dirty checksum pages are written first so data and
// checksums persist in the same sync epoch.
func (c *ChecksumStore) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushGroupsLocked(); err != nil {
		return err
	}
	return c.inner.Sync()
}

// Close implements Store, flushing checksum pages first.
func (c *ChecksumStore) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushGroupsLocked(); err != nil {
		return err
	}
	return c.inner.Close()
}

// Inner returns the wrapped store.
func (c *ChecksumStore) Inner() Store { return c.inner }
