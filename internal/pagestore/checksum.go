package pagestore

import (
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
)

// Torn-page detection: ChecksumStore wraps any Store and maintains a CRC32
// per data page in sidecar checksum pages, verified on every read. The
// sidecar layout (rather than a per-page trailer) keeps the full PageSize
// usable by upper layers: the underlying store interleaves one checksum
// page before every run of crcPerPage data pages and the wrapper remaps
// logical page IDs over the gaps, so the engine never sees the sidecars.
//
// Crash consistency: checksum entries are buffered in memory and written to
// their sidecar pages during Sync, immediately before the inner sync. Under
// the engine's WAL discipline every durability boundary is a Sync, so a
// data page and its checksum entry always persist in the same sync epoch; a
// mismatch on read therefore means real corruption (a torn page write, bit
// rot, or a checksum page lost to a partial sync) — never a benign ordering
// artifact.

// crcPerPage is the number of CRC32 entries a checksum page holds.
const crcPerPage = PageSize / 4

// ErrPageChecksum reports a page whose contents do not match its stored
// CRC32 — a torn write or silent media corruption. Retrieve the page with
// errors.As.
type ErrPageChecksum struct {
	PageID PageID
}

func (e ErrPageChecksum) Error() string {
	return fmt.Sprintf("pagestore: checksum mismatch on page %d (torn write or corruption)", e.PageID)
}

// ChecksumStore is a Store wrapper that checksums every page. It must own
// the inner store exclusively (all reads and writes go through it).
type ChecksumStore struct {
	mu     sync.Mutex
	inner  Store
	groups map[PageID]*crcGroup // group index → cached checksum page image
}

type crcGroup struct {
	data  []byte // PageSize bytes: crcPerPage big-endian-free uint32 slots
	dirty bool
}

// NewChecksumStore wraps inner. An empty inner store is formatted lazily;
// a non-empty one must have been written through a ChecksumStore (the
// sidecar layout is not self-identifying — opening a raw store with
// checksums, or vice versa, fails on first read).
func NewChecksumStore(inner Store) *ChecksumStore {
	return &ChecksumStore{inner: inner, groups: map[PageID]*crcGroup{}}
}

// groupOf maps a logical page to its checksum group.
func groupOf(id PageID) PageID { return id / crcPerPage }

// physOf maps a logical page ID to its physical ID in the inner store.
func physOf(id PageID) PageID {
	g := id / crcPerPage
	return g*(crcPerPage+1) + 1 + id%crcPerPage
}

// crcPhys is the physical ID of group g's checksum page.
func crcPhys(g PageID) PageID { return g * (crcPerPage + 1) }

// logicalPages converts an inner page count to the logical count.
func logicalPages(phys PageID) PageID {
	q := phys / (crcPerPage + 1)
	r := phys % (crcPerPage + 1)
	n := q * crcPerPage
	if r > 0 {
		n += r - 1
	}
	return n
}

// pageCRC is the stored checksum of a page image. CRC32(IEEE) is remapped
// away from 0: a stored entry of 0 means "never written" and is accepted
// only for an all-zero page.
func pageCRC(buf []byte) uint32 {
	c := crc32.ChecksumIEEE(buf[:PageSize])
	if c == 0 {
		c = 1
	}
	return c
}

// zeroCRC is the checksum of a freshly allocated (all-zero) page.
var zeroCRC = pageCRC(make([]byte, PageSize))

// groupLocked returns group g's cached checksum page, loading it from the
// inner store on first touch.
func (c *ChecksumStore) groupLocked(g PageID) (*crcGroup, error) {
	if grp, ok := c.groups[g]; ok {
		return grp, nil
	}
	grp := &crcGroup{data: make([]byte, PageSize)}
	if crcPhys(g) < c.inner.NumPages() {
		if err := c.inner.ReadPage(crcPhys(g), grp.data); err != nil {
			return nil, err
		}
	}
	c.groups[g] = grp
	return grp, nil
}

func (g *crcGroup) get(idx PageID) uint32 {
	d := g.data[idx*4:]
	return uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3])
}

func (g *crcGroup) set(idx PageID, crc uint32) {
	d := g.data[idx*4:]
	d[0], d[1], d[2], d[3] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	g.dirty = true
}

// ReadPage implements Store, verifying the page against its stored CRC.
func (c *ChecksumStore) ReadPage(id PageID, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= c.numPagesLocked() {
		return fmt.Errorf("%w: read page %d of %d", ErrPageRange, id, c.numPagesLocked())
	}
	if err := c.inner.ReadPage(physOf(id), buf); err != nil {
		return err
	}
	grp, err := c.groupLocked(groupOf(id))
	if err != nil {
		return err
	}
	want := grp.get(id % crcPerPage)
	if want == 0 {
		// Never checksummed: only an untouched (all-zero) page is acceptable.
		for _, b := range buf[:PageSize] {
			if b != 0 {
				return fmt.Errorf("%w", ErrPageChecksum{PageID: id})
			}
		}
		return nil
	}
	if got := pageCRC(buf); got != want {
		return fmt.Errorf("%w", ErrPageChecksum{PageID: id})
	}
	return nil
}

// WritePage implements Store, updating the page's CRC entry (made durable
// at the next Sync, in the same epoch as the data page).
func (c *ChecksumStore) WritePage(id PageID, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= c.numPagesLocked() {
		return fmt.Errorf("%w: write page %d of %d", ErrPageRange, id, c.numPagesLocked())
	}
	if err := c.inner.WritePage(physOf(id), buf); err != nil {
		return err
	}
	grp, err := c.groupLocked(groupOf(id))
	if err != nil {
		return err
	}
	grp.set(id%crcPerPage, pageCRC(buf))
	return nil
}

// Allocate implements Store, interposing a checksum page at the start of
// each new group.
func (c *ChecksumStore) Allocate() (PageID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.numPagesLocked()
	if id%crcPerPage == 0 {
		// First page of a new group: allocate its checksum page.
		cp, err := c.inner.Allocate()
		if err != nil {
			return InvalidPage, err
		}
		if cp != crcPhys(groupOf(id)) {
			return InvalidPage, fmt.Errorf("pagestore: checksum layout broken: sidecar at %d, want %d", cp, crcPhys(groupOf(id)))
		}
		c.groups[groupOf(id)] = &crcGroup{data: make([]byte, PageSize), dirty: true}
	}
	dp, err := c.inner.Allocate()
	if err != nil {
		return InvalidPage, err
	}
	if dp != physOf(id) {
		return InvalidPage, fmt.Errorf("pagestore: checksum layout broken: data page at %d, want %d", dp, physOf(id))
	}
	grp, err := c.groupLocked(groupOf(id))
	if err != nil {
		return InvalidPage, err
	}
	grp.set(id%crcPerPage, zeroCRC)
	return id, nil
}

// NumPages implements Store (logical pages, sidecars excluded).
func (c *ChecksumStore) NumPages() PageID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.numPagesLocked()
}

func (c *ChecksumStore) numPagesLocked() PageID { return logicalPages(c.inner.NumPages()) }

// flushGroupsLocked writes every dirty checksum page to the inner store in
// group order.
func (c *ChecksumStore) flushGroupsLocked() error {
	gs := make([]PageID, 0, len(c.groups))
	for g, grp := range c.groups {
		if grp.dirty {
			gs = append(gs, g)
		}
	}
	sort.Slice(gs, func(a, b int) bool { return gs[a] < gs[b] })
	for _, g := range gs {
		if err := c.inner.WritePage(crcPhys(g), c.groups[g].data); err != nil {
			return err
		}
		c.groups[g].dirty = false
	}
	return nil
}

// Sync implements Store: dirty checksum pages are written first so data and
// checksums persist in the same sync epoch.
func (c *ChecksumStore) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushGroupsLocked(); err != nil {
		return err
	}
	return c.inner.Sync()
}

// Close implements Store, flushing checksum pages first.
func (c *ChecksumStore) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushGroupsLocked(); err != nil {
		return err
	}
	return c.inner.Close()
}

// Inner returns the wrapped store.
func (c *ChecksumStore) Inner() Store { return c.inner }
