package pagestore

import (
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"rx/internal/rxerr"
)

// Torn-page detection: ChecksumStore wraps any Store and maintains a CRC32
// plus a "written" bit per data page in sidecar checksum pages, verified on
// every read. The sidecar layout (rather than a per-page trailer) keeps the
// full PageSize usable by upper layers: the underlying store interleaves one
// checksum page before every run of crcPerPage data pages and the wrapper
// remaps logical page IDs over the gaps, so the engine never sees the
// sidecars.
//
// Crash consistency: checksum entries are buffered in memory and written to
// their sidecar pages during Sync, immediately before the inner sync. Under
// the engine's WAL discipline every durability boundary is a Sync, so a
// data page and its checksum entry always persist in the same sync epoch; a
// mismatch on read therefore means real corruption (a torn page write, bit
// rot, or a checksum page lost to a partial sync) — never a benign ordering
// artifact.
//
// The written bit distinguishes a never-written page (which legitimately
// reads as zeros) from a written page torn back to zeros: once a page's
// first write is durable its bit stays set, so an all-zero read of that
// page — or a corruption that zeroes its CRC entry — fails verification
// instead of masquerading as a fresh page.

// crcPerPage is the number of data pages a sidecar page covers. Each entry
// needs 4 CRC bytes plus one bit in the written bitmap, so the count is the
// largest multiple of 8 with 4*n + n/8 <= PageSize.
const crcPerPage = 1984

// crcBytes is the size of the CRC entry array; the written bitmap follows.
const crcBytes = 4 * crcPerPage

// ErrPageChecksum reports a page whose contents do not match its stored
// CRC32 — a torn write or silent media corruption. Retrieve the page with
// errors.As; it matches rxerr.ErrChecksum under errors.Is.
type ErrPageChecksum struct {
	PageID PageID
}

func (e ErrPageChecksum) Error() string {
	return fmt.Sprintf("pagestore: checksum mismatch on page %d (torn write or corruption)", e.PageID)
}

func (e ErrPageChecksum) Is(target error) bool { return target == rxerr.ErrChecksum }

// ChecksumStore is a Store wrapper that checksums every page. It must own
// the inner store exclusively (all reads and writes go through it).
//
// Reads take mu only shared: verification reads the cached group image, which
// writers mutate exclusively, so concurrent reads proceed in parallel and the
// read path never re-derives the page count from the inner store (pages is
// authoritative because the store is owned exclusively).
type ChecksumStore struct {
	mu     sync.RWMutex
	inner  Store
	pages  PageID               // cached logical page count
	groups map[PageID]*crcGroup // group index → cached checksum page image
}

type crcGroup struct {
	data  []byte // PageSize bytes: crcPerPage uint32 CRCs, then the written bitmap
	dirty bool
}

// NewChecksumStore wraps inner. An empty inner store is formatted lazily;
// a non-empty one must have been written through a ChecksumStore (the
// sidecar layout is not self-identifying — opening a raw store with
// checksums, or vice versa, fails on first read).
func NewChecksumStore(inner Store) *ChecksumStore {
	return &ChecksumStore{
		inner:  inner,
		pages:  logicalPages(inner.NumPages()),
		groups: map[PageID]*crcGroup{},
	}
}

// groupOf maps a logical page to its checksum group.
func groupOf(id PageID) PageID { return id / crcPerPage }

// physOf maps a logical page ID to its physical ID in the inner store.
func physOf(id PageID) PageID {
	g := id / crcPerPage
	return g*(crcPerPage+1) + 1 + id%crcPerPage
}

// crcPhys is the physical ID of group g's checksum page.
func crcPhys(g PageID) PageID { return g * (crcPerPage + 1) }

// PhysicalPage maps a logical page ID to its physical ID in the inner
// store. Exported for fault-injection adversaries and scrub tooling that
// corrupt or inspect the raw store underneath the wrapper.
func PhysicalPage(id PageID) PageID { return physOf(id) }

// SidecarPage returns the physical inner-store ID of the sidecar checksum
// page covering the given logical page.
func SidecarPage(id PageID) PageID { return crcPhys(groupOf(id)) }

// logicalPages converts an inner page count to the logical count.
func logicalPages(phys PageID) PageID {
	q := phys / (crcPerPage + 1)
	r := phys % (crcPerPage + 1)
	n := q * crcPerPage
	if r > 0 {
		n += r - 1
	}
	return n
}

// pageCRC is the stored checksum of a page image. CRC32(IEEE) is remapped
// away from 0 so a stored entry of 0 (zero-filled sidecar region, or a
// corruption that zeroed the entry) can never verify a written page.
func pageCRC(buf []byte) uint32 {
	c := crc32.ChecksumIEEE(buf[:PageSize])
	if c == 0 {
		c = 1
	}
	return c
}

// groupLocked returns group g's cached checksum page, loading it from the
// inner store on first touch.
func (c *ChecksumStore) groupLocked(g PageID) (*crcGroup, error) {
	if grp, ok := c.groups[g]; ok {
		return grp, nil
	}
	grp := &crcGroup{data: make([]byte, PageSize)}
	if crcPhys(g) < c.inner.NumPages() {
		if err := c.inner.ReadPage(crcPhys(g), grp.data); err != nil {
			return nil, err
		}
	}
	c.groups[g] = grp
	return grp, nil
}

func (g *crcGroup) get(idx PageID) uint32 {
	d := g.data[idx*4:]
	return uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3])
}

func (g *crcGroup) set(idx PageID, crc uint32) {
	d := g.data[idx*4:]
	d[0], d[1], d[2], d[3] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	g.dirty = true
}

// written reports the page's written bit from the bitmap after the CRC array.
func (g *crcGroup) written(idx PageID) bool {
	return g.data[crcBytes+idx/8]&(1<<(idx%8)) != 0
}

func (g *crcGroup) setWritten(idx PageID, w bool) {
	if w {
		g.data[crcBytes+idx/8] |= 1 << (idx % 8)
	} else {
		g.data[crcBytes+idx/8] &^= 1 << (idx % 8)
	}
	g.dirty = true
}

// ReadPage implements Store, verifying the page against its stored CRC.
func (c *ChecksumStore) ReadPage(id PageID, buf []byte) error {
	c.mu.RLock()
	if id >= c.pages {
		n := c.pages
		c.mu.RUnlock()
		return fmt.Errorf("%w: read page %d of %d", ErrPageRange, id, n)
	}
	grp, ok := c.groups[groupOf(id)]
	if !ok {
		// First touch of this group: load its sidecar page exclusively, then
		// resume shared. Groups are never evicted, so the reload can't miss.
		c.mu.RUnlock()
		c.mu.Lock()
		_, err := c.groupLocked(groupOf(id))
		c.mu.Unlock()
		if err != nil {
			return err
		}
		c.mu.RLock()
		grp = c.groups[groupOf(id)]
	}
	defer c.mu.RUnlock()
	if err := c.inner.ReadPage(physOf(id), buf); err != nil {
		return err
	}
	idx := id % crcPerPage
	if !grp.written(idx) {
		// Never durably written: only an untouched (all-zero) page is
		// acceptable. Anything else is a write that escaped its sync epoch.
		for _, b := range buf[:PageSize] {
			if b != 0 {
				return fmt.Errorf("%w", ErrPageChecksum{PageID: id})
			}
		}
		return nil
	}
	if got := pageCRC(buf); got != grp.get(idx) {
		return fmt.Errorf("%w", ErrPageChecksum{PageID: id})
	}
	return nil
}

// WritePage implements Store, updating the page's CRC entry and written bit
// (made durable at the next Sync, in the same epoch as the data page).
func (c *ChecksumStore) WritePage(id PageID, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id >= c.pages {
		return fmt.Errorf("%w: write page %d of %d", ErrPageRange, id, c.pages)
	}
	if err := c.inner.WritePage(physOf(id), buf); err != nil {
		return err
	}
	grp, err := c.groupLocked(groupOf(id))
	if err != nil {
		return err
	}
	grp.set(id%crcPerPage, pageCRC(buf))
	grp.setWritten(id%crcPerPage, true)
	return nil
}

// Allocate implements Store, interposing a checksum page at the start of
// each new group.
func (c *ChecksumStore) Allocate() (PageID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.pages
	if id%crcPerPage == 0 {
		// First page of a new group: allocate its checksum page.
		cp, err := c.inner.Allocate()
		if err != nil {
			return InvalidPage, err
		}
		if cp != crcPhys(groupOf(id)) {
			return InvalidPage, fmt.Errorf("pagestore: checksum layout broken: sidecar at %d, want %d", cp, crcPhys(groupOf(id)))
		}
		c.groups[groupOf(id)] = &crcGroup{data: make([]byte, PageSize), dirty: true}
	}
	dp, err := c.inner.Allocate()
	if err != nil {
		return InvalidPage, err
	}
	if dp != physOf(id) {
		return InvalidPage, fmt.Errorf("pagestore: checksum layout broken: data page at %d, want %d", dp, physOf(id))
	}
	grp, err := c.groupLocked(groupOf(id))
	if err != nil {
		return InvalidPage, err
	}
	grp.set(id%crcPerPage, 0)
	grp.setWritten(id%crcPerPage, false)
	c.pages++
	return id, nil
}

// NumPages implements Store (logical pages, sidecars excluded).
func (c *ChecksumStore) NumPages() PageID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pages
}

// Rederive rebuilds every sidecar page from the current contents of the
// inner store: each data page's CRC is recomputed from its on-disk image,
// with an all-zero page marked unwritten. This is the repair path for a
// lost or corrupted sidecar page. It blesses whatever the data pages
// currently hold — torn-write history in the rederived groups is gone — so
// a structural consistency check must follow.
func (c *ChecksumStore) Rederive() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.pages
	buf := make([]byte, PageSize)
	for id := PageID(0); id < n; id++ {
		if id%crcPerPage == 0 {
			c.groups[groupOf(id)] = &crcGroup{data: make([]byte, PageSize), dirty: true}
		}
		if err := c.inner.ReadPage(physOf(id), buf); err != nil {
			return err
		}
		grp := c.groups[groupOf(id)]
		idx := id % crcPerPage
		zero := true
		for _, b := range buf[:PageSize] {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			grp.set(idx, 0)
			grp.setWritten(idx, false)
		} else {
			grp.set(idx, pageCRC(buf))
			grp.setWritten(idx, true)
		}
	}
	if err := c.flushGroupsLocked(); err != nil {
		return err
	}
	return c.inner.Sync()
}

// flushGroupsLocked writes every dirty checksum page to the inner store in
// group order.
func (c *ChecksumStore) flushGroupsLocked() error {
	gs := make([]PageID, 0, len(c.groups))
	for g, grp := range c.groups {
		if grp.dirty {
			gs = append(gs, g)
		}
	}
	sort.Slice(gs, func(a, b int) bool { return gs[a] < gs[b] })
	for _, g := range gs {
		if err := c.inner.WritePage(crcPhys(g), c.groups[g].data); err != nil {
			return err
		}
		c.groups[g].dirty = false
	}
	return nil
}

// Sync implements Store: dirty checksum pages are written first so data and
// checksums persist in the same sync epoch.
func (c *ChecksumStore) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushGroupsLocked(); err != nil {
		return err
	}
	return c.inner.Sync()
}

// Close implements Store, flushing checksum pages first.
func (c *ChecksumStore) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushGroupsLocked(); err != nil {
		return err
	}
	return c.inner.Close()
}

// Inner returns the wrapped store.
func (c *ChecksumStore) Inner() Store { return c.inner }
