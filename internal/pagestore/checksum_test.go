package pagestore

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestChecksumStoreRoundTrip(t *testing.T) {
	cs := NewChecksumStore(NewMemStore())
	testStore(t, cs)
}

func TestChecksumStoreLayoutMapping(t *testing.T) {
	for _, tc := range []struct{ logical, phys PageID }{
		{0, 1}, {1, 2}, {crcPerPage - 1, crcPerPage},
		{crcPerPage, crcPerPage + 2}, {2 * crcPerPage, 2*(crcPerPage+1) + 1},
	} {
		if got := physOf(tc.logical); got != tc.phys {
			t.Errorf("physOf(%d) = %d, want %d", tc.logical, got, tc.phys)
		}
	}
	for _, tc := range []struct{ phys, logical PageID }{
		{0, 0}, {1, 0}, {2, 1}, {crcPerPage + 1, crcPerPage},
		{crcPerPage + 2, crcPerPage}, {2 * (crcPerPage + 1), 2 * crcPerPage},
	} {
		if got := logicalPages(tc.phys); got != tc.logical {
			t.Errorf("logicalPages(%d) = %d, want %d", tc.phys, got, tc.logical)
		}
	}
}

func TestChecksumStoreAcrossGroupBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a full checksum group")
	}
	cs := NewChecksumStore(NewMemStore())
	n := PageID(crcPerPage + 3)
	buf := make([]byte, PageSize)
	for i := PageID(0); i < n; i++ {
		id, err := cs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("allocate #%d returned %d", i, id)
		}
		buf[42] = byte(i)
		if err := cs.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if cs.NumPages() != n {
		t.Fatalf("NumPages = %d, want %d", cs.NumPages(), n)
	}
	for i := PageID(0); i < n; i++ {
		if err := cs.ReadPage(i, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if buf[42] != byte(i) {
			t.Fatalf("page %d content = %x", i, buf[42])
		}
	}
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	id, _ := cs.Allocate()
	buf := make([]byte, PageSize)
	buf[1000] = 0x7F
	if err := cs.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	// Flip one bit behind the wrapper's back (silent media corruption).
	raw := make([]byte, PageSize)
	mem.ReadPage(physOf(id), raw)
	raw[1000] ^= 0x01
	mem.WritePage(physOf(id), raw)

	err := cs.ReadPage(id, buf)
	var pe ErrPageChecksum
	if !errors.As(err, &pe) {
		t.Fatalf("corrupted read err = %v, want ErrPageChecksum", err)
	}
	if pe.PageID != id {
		t.Errorf("ErrPageChecksum.PageID = %d, want %d", pe.PageID, id)
	}
}

func TestChecksumDetectsTornWrite(t *testing.T) {
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	id, _ := cs.Allocate()
	old := make([]byte, PageSize)
	for i := range old {
		old[i] = 0xAA
	}
	cs.WritePage(id, old)
	cs.Sync()
	// A new write tears: only the first 512 bytes reach the store, the CRC
	// entry already describes the full new image.
	fresh := make([]byte, PageSize)
	for i := range fresh {
		fresh[i] = 0xBB
	}
	if err := cs.WritePage(id, fresh); err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, PageSize)
	copy(torn, old)
	copy(torn[:512], fresh[:512])
	mem.WritePage(physOf(id), torn)

	err := cs.ReadPage(id, make([]byte, PageSize))
	var pe ErrPageChecksum
	if !errors.As(err, &pe) {
		t.Fatalf("torn read err = %v, want ErrPageChecksum", err)
	}
}

func TestChecksumStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cs.rxdb")
	fs, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewChecksumStore(fs)
	buf := make([]byte, PageSize)
	for i := 0; i < 5; i++ {
		id, _ := cs.Allocate()
		buf[7] = byte(10 + i)
		if err := cs.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cs2 := NewChecksumStore(fs2)
	if cs2.NumPages() != 5 {
		t.Fatalf("reopened NumPages = %d", cs2.NumPages())
	}
	for i := PageID(0); i < 5; i++ {
		if err := cs2.ReadPage(i, buf); err != nil {
			t.Fatalf("reopened read %d: %v", i, err)
		}
		if buf[7] != byte(10+int(i)) {
			t.Fatalf("reopened page %d content = %x", i, buf[7])
		}
	}
	cs2.Close()
}

func TestChecksumFreshPageReadsAsZeros(t *testing.T) {
	cs := NewChecksumStore(NewMemStore())
	id, _ := cs.Allocate()
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = 0xFF // stale caller buffer
	}
	if err := cs.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("fresh page byte %d = %x", i, b)
		}
	}
}

func TestChecksumWrittenBitDetectsZeroedPage(t *testing.T) {
	// A page durably written and later torn back to all zeros — with its
	// sidecar CRC entry zeroed by the same corruption — must still fail
	// verification: the written bit lives in the sidecar bitmap, not the
	// entry array, and marks the zero state as impossible.
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	id, _ := cs.Allocate()
	buf := make([]byte, PageSize)
	buf[99] = 0x42
	if err := cs.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Adversary: zero the data page and its 4-byte CRC entry.
	mem.WritePage(physOf(id), make([]byte, PageSize))
	side := make([]byte, PageSize)
	mem.ReadPage(crcPhys(groupOf(id)), side)
	idx := id % crcPerPage
	copy(side[idx*4:idx*4+4], []byte{0, 0, 0, 0})
	mem.WritePage(crcPhys(groupOf(id)), side)

	cs2 := NewChecksumStore(mem) // fresh wrapper: no cached sidecar state
	err := cs2.ReadPage(id, buf)
	var pe ErrPageChecksum
	if !errors.As(err, &pe) {
		t.Fatalf("zeroed written page read err = %v, want ErrPageChecksum", err)
	}
}

func TestChecksumFreshPageScribbleDetected(t *testing.T) {
	// A never-written page must read as zeros; nonzero bytes mean a write
	// escaped its sync epoch.
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	id, _ := cs.Allocate()
	raw := make([]byte, PageSize)
	raw[0] = 0xEE
	mem.WritePage(physOf(id), raw)
	err := cs.ReadPage(id, make([]byte, PageSize))
	var pe ErrPageChecksum
	if !errors.As(err, &pe) {
		t.Fatalf("scribbled fresh page read err = %v, want ErrPageChecksum", err)
	}
}

func TestChecksumRederiveRepairsLostSidecar(t *testing.T) {
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	buf := make([]byte, PageSize)
	for i := 0; i < 4; i++ {
		id, _ := cs.Allocate()
		buf[7] = byte(i + 1)
		if err := cs.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Adversary: scribble over the sidecar page.
	junk := make([]byte, PageSize)
	for i := range junk {
		junk[i] = 0x5A
	}
	mem.WritePage(crcPhys(0), junk)

	cs2 := NewChecksumStore(mem)
	if err := cs2.ReadPage(0, buf); err == nil {
		t.Fatal("read through corrupt sidecar succeeded")
	}
	cs3 := NewChecksumStore(mem)
	if err := cs3.Rederive(); err != nil {
		t.Fatalf("Rederive: %v", err)
	}
	for i := PageID(0); i < 4; i++ {
		if err := cs3.ReadPage(i, buf); err != nil {
			t.Fatalf("post-rederive read %d: %v", i, err)
		}
		if buf[7] != byte(i+1) {
			t.Fatalf("post-rederive page %d content = %x", i, buf[7])
		}
	}
	// And the rederived sidecar is durable: a fresh wrapper agrees.
	cs4 := NewChecksumStore(mem)
	if err := cs4.ReadPage(0, buf); err != nil {
		t.Fatalf("fresh wrapper read after rederive: %v", err)
	}
}

func benchStores(b *testing.B) (raw, checked Store) {
	mem := NewMemStore()
	cs := NewChecksumStore(NewMemStore())
	for i := 0; i < 64; i++ {
		mem.Allocate()
		cs.Allocate()
	}
	return mem, cs
}

// BenchmarkChecksumStore measures the CRC32 overhead of the checksummed
// store against the raw store (E14 in EXPERIMENTS.md).
func BenchmarkChecksumStore(b *testing.B) {
	raw, checked := benchStores(b)
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for _, bench := range []struct {
		name  string
		store Store
	}{{"write/raw", raw}, {"write/checksum", checked}} {
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(PageSize)
			for i := 0; i < b.N; i++ {
				if err := bench.store.WritePage(PageID(i%64), buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, bench := range []struct {
		name  string
		store Store
	}{{"read/raw", raw}, {"read/checksum", checked}} {
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(PageSize)
			for i := 0; i < b.N; i++ {
				if err := bench.store.ReadPage(PageID(i%64), buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Concurrent readers: verification holds the store lock only shared, so
	// this should scale with cores instead of serializing on verification.
	b.Run("read/checksum-parallel", func(b *testing.B) {
		b.SetBytes(PageSize)
		b.RunParallel(func(pb *testing.PB) {
			pbuf := make([]byte, PageSize)
			i := 0
			for pb.Next() {
				if err := checked.ReadPage(PageID(i%64), pbuf); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}

// TestChecksumSidecarMigration: a version-0 (IEEE) sidecar is rewritten to
// Castagnoli entries on first load, pages verify throughout, and a page that
// fails its old IEEE checksum keeps a stale entry so the corruption is still
// reported after migration.
func TestChecksumSidecarMigration(t *testing.T) {
	mem := NewMemStore()
	cs := NewChecksumStore(mem)
	buf := make([]byte, PageSize)
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := cs.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(i + j)
		}
		if err := cs.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the sidecar as an old build would have: IEEE entries, no
	// version byte.
	side := make([]byte, PageSize)
	if err := mem.ReadPage(crcPhys(0), side); err != nil {
		t.Fatal(err)
	}
	side[verOff] = 0
	for _, id := range ids {
		if err := mem.ReadPage(physOf(id), buf); err != nil {
			t.Fatal(err)
		}
		crc := pageCRCIEEE(buf)
		d := side[id%crcPerPage*4:]
		d[0], d[1], d[2], d[3] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	}
	if err := mem.WritePage(crcPhys(0), side); err != nil {
		t.Fatal(err)
	}
	// Corrupt the last page underneath the sidecar: its IEEE entry no longer
	// matches, so migration must keep the stale entry.
	if err := mem.ReadPage(physOf(ids[3]), buf); err != nil {
		t.Fatal(err)
	}
	buf[100] ^= 0xff
	if err := mem.WritePage(physOf(ids[3]), buf); err != nil {
		t.Fatal(err)
	}

	// Reopen: loading the group migrates it; intact pages verify.
	cs2 := NewChecksumStore(mem)
	for _, id := range ids[:3] {
		if err := cs2.ReadPage(id, buf); err != nil {
			t.Fatalf("post-migration read of page %d: %v", id, err)
		}
	}
	if err := cs2.ReadPage(ids[3], buf); !errors.Is(err, ErrPageChecksum{PageID: ids[3]}) {
		t.Fatalf("corrupted page read = %v, want checksum error", err)
	}
	if err := cs2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := mem.ReadPage(crcPhys(0), side); err != nil {
		t.Fatal(err)
	}
	if side[verOff] != sidecarVersion {
		t.Fatalf("sidecar version after migration+sync = %d, want %d", side[verOff], sidecarVersion)
	}
	// A third open must not need to migrate: entries already verify as
	// Castagnoli.
	cs3 := NewChecksumStore(mem)
	for _, id := range ids[:3] {
		if err := cs3.ReadPage(id, buf); err != nil {
			t.Fatalf("second reopen read of page %d: %v", id, err)
		}
	}
}
