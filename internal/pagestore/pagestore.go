// Package pagestore provides the lowest storage layer of the engine: a flat,
// addressable array of fixed-size pages, backed either by a file or by
// memory. It corresponds to the "external storage management" box of the
// paper's Figure 1 — infrastructure reused unchanged from the relational
// engine. Everything above (buffer pool, heap tables, B+trees) sees only
// page reads and writes.
package pagestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"

	"rx/internal/rxerr"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 8192

// PageID addresses a page within a store. Page 0 is valid and owned by the
// layer that formats the store (typically a meta page).
type PageID uint32

// InvalidPage is a sentinel PageID that never addresses a real page.
const InvalidPage PageID = ^PageID(0)

// ErrPageRange reports access to a page beyond the allocated extent.
var ErrPageRange = errors.New("pagestore: page out of range")

// mapNoSpace links a device-level ENOSPC to the engine's typed
// rxerr.ErrNoSpace so every layer above (buffer write-back, WAL flush,
// transaction commit) classifies a full disk with errors.Is instead of
// string matching. Other errors pass through unchanged.
func mapNoSpace(err error, what string) error {
	if err == nil || !errors.Is(err, syscall.ENOSPC) {
		return err
	}
	return fmt.Errorf("%w: %s: %v", rxerr.ErrNoSpace, what, err)
}

// Store is a flat array of pages.
type Store interface {
	// ReadPage fills buf (len PageSize) with the page's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as the page's contents.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the store by one zeroed page and returns its ID.
	Allocate() (PageID, error)
	// NumPages returns the current number of allocated pages.
	NumPages() PageID
	// Sync forces written pages to stable storage.
	Sync() error
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// MemStore is an in-memory Store, used for tests, benchmarks, and purely
// transient databases.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// ReadPage implements Store.
func (m *MemStore) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: read page %d of %d", ErrPageRange, id, len(m.pages))
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Store.
func (m *MemStore) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: write page %d of %d", ErrPageRange, id, len(m.pages))
	}
	copy(m.pages[id], buf)
	return nil
}

// Allocate implements Store.
func (m *MemStore) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

// NumPages implements Store.
func (m *MemStore) NumPages() PageID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return PageID(len(m.pages))
}

// Sync implements Store.
func (m *MemStore) Sync() error { return nil }

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// FileStore is a Store backed by a single file of concatenated pages.
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	pages PageID
}

// OpenFile opens (or creates) a file-backed store at path. An existing file
// must contain a whole number of pages.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pagestore: %s size %d is not a multiple of page size", path, st.Size())
	}
	return &FileStore{f: f, pages: PageID(st.Size() / PageSize)}, nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	n := s.pages
	s.mu.Unlock()
	if id >= n {
		return fmt.Errorf("%w: read page %d of %d", ErrPageRange, id, n)
	}
	got, err := s.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err == io.EOF {
		// A page allocated but never written reads as zeros. ReadAt may have
		// filled only a prefix; the remainder would otherwise keep the
		// caller's previous buffer contents.
		for i := got; i < PageSize; i++ {
			buf[i] = 0
		}
		err = nil
	}
	return err
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	n := s.pages
	s.mu.Unlock()
	if id >= n {
		return fmt.Errorf("%w: write page %d of %d", ErrPageRange, id, n)
	}
	_, err := s.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return mapNoSpace(err, fmt.Sprintf("write page %d", id))
}

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.pages
	if err := s.f.Truncate(int64(id+1) * PageSize); err != nil {
		return InvalidPage, mapNoSpace(err, fmt.Sprintf("extend to %d pages", id+1))
	}
	s.pages++
	return id, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// Sync implements Store.
func (s *FileStore) Sync() error { return mapNoSpace(s.f.Sync(), "sync") }

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }
