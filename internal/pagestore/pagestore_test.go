package pagestore

import (
	"bytes"
	"path/filepath"
	"testing"
)

func testStore(t *testing.T, s Store) {
	t.Helper()
	id0, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id0 == id1 {
		t.Fatal("duplicate page IDs")
	}
	if s.NumPages() != 2 {
		t.Fatalf("NumPages = %d", s.NumPages())
	}
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := s.WritePage(id1, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := s.ReadPage(id1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Error("read back mismatch")
	}
	// Fresh page reads as zeros.
	if err := s.ReadPage(id0, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
	// Out-of-range access fails.
	if err := s.ReadPage(99, got); err == nil {
		t.Error("out-of-range read should fail")
	}
	if err := s.WritePage(99, buf); err == nil {
		t.Error("out-of-range write should fail")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen preserves contents.
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumPages() != 2 {
		t.Fatalf("reopened NumPages = %d", s2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := s2.ReadPage(1, got); err != nil {
		t.Fatal(err)
	}
	if got[100] != 100 {
		t.Error("reopened contents lost")
	}
}

func TestFileStoreShortReadZeroFills(t *testing.T) {
	// Regression: a page allocated but never written sits past EOF (Truncate
	// only extends the logical size on some filesystems, and a short ReadAt
	// fills only a prefix). The unread remainder of the caller's buffer must
	// read as zeros, not keep its previous contents.
	path := filepath.Join(t.TempDir(), "short.db")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id0, _ := s.Allocate()
	id1, _ := s.Allocate()
	full := make([]byte, PageSize)
	for i := range full {
		full[i] = 0xEE
	}
	if err := s.WritePage(id0, full); err != nil {
		t.Fatal(err)
	}
	// Shrink the file so page 1 is entirely past EOF, then write a partial
	// page so a read of id1 is short rather than empty.
	if err := s.f.Truncate(PageSize + 512); err != nil {
		t.Fatal(err)
	}
	// Reuse a dirty caller buffer: stale contents must not survive the read.
	buf := make([]byte, PageSize)
	copy(buf, full)
	if err := s.ReadPage(id1, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf[512:] {
		if b != 0 {
			t.Fatalf("stale byte %d = %x after short read", 512+i, b)
		}
	}
	_ = id0
}
