package quickxscan

import (
	"rx/internal/nodeid"
	"rx/internal/tokens"
)

// EvalTokens runs the evaluator over a buffered token stream, synthesizing
// node IDs exactly as the packer assigns them (so matches against streamed
// documents and stored documents carry identical IDs). The evaluator is
// Reset first, so one compiled query can scan many documents — this is also
// the value-index key generation path of §3.3, which evaluates "a simplified
// version of our streaming XPath algorithm" per inserted document.
func EvalTokens(e *Eval, stream []byte) ([]Match, error) {
	e.Reset()
	r := tokens.NewReader(stream)
	// One shared path buffer holds the current node's absolute ID; event
	// consumers only read IDs during the event (candidates are cloned at
	// finalize), so no per-node allocation is needed.
	path := make([]byte, 0, 64)
	lens := []int{0}     // path length per open depth
	counters := []int{0} // next child slot per open depth
	extend := func() nodeid.ID {
		d := len(counters) - 1
		rel := nodeid.RelAt(counters[d])
		counters[d]++
		path = append(path[:lens[d]], rel...)
		return nodeid.ID(path)
	}
	for r.More() {
		t, err := r.Next()
		if err != nil {
			return nil, err
		}
		switch t.Kind {
		case tokens.StartDocument:
			e.StartDocument()
			path = path[:0]
			lens = append(lens[:0], 0)
			counters = append(counters[:0], 0)
		case tokens.EndDocument:
			return e.EndDocument()
		case tokens.StartElement:
			id := extend()
			e.StartElement(t.Name, id)
			lens = append(lens, len(path))
			counters = append(counters, 0)
		case tokens.EndElement:
			idLen := lens[len(lens)-1]
			lens = lens[:len(lens)-1]
			counters = counters[:len(counters)-1]
			path = path[:idLen]
			e.EndElement(nodeid.ID(path))
		case tokens.Attr:
			e.Attribute(t.Name, t.Value, extend())
		case tokens.NSDecl:
			counters[len(counters)-1]++ // namespace nodes occupy an ID slot
		case tokens.Text:
			e.Text(t.Value, extend())
		case tokens.Comment:
			e.Comment(t.Value, extend())
		case tokens.PI:
			counters[len(counters)-1]++ // PI nodes are not matched
		}
	}
	return e.EndDocument()
}
