// Package quickxscan implements QuickXScan (§4.2), the streaming XPath
// algorithm of System R/X. It evaluates a path expression in a single pass
// over a document — the XML analogue of a relational scan — using the
// principles of attribute grammars: inherited attributes decide whether a
// document node matches a query node (evaluated top-down), and synthesized
// sequence-valued attributes accumulate candidate results (evaluated
// bottom-up, with the upward and sideways propagations of Table 1).
//
// Each query node keeps a stack of matching instances. A document node is
// matched against only the stack tops of the previous step (the two
// transitivity properties of §4.2), which bounds live state by O(|Q|·r) —
// query size times document recursion depth — instead of the exponential
// state sets of automaton-based streaming evaluators (Figure 7).
//
// Candidate propagation generalizes Table 1 to predicates: each matching
// instance carries a "raw" sequence (candidates whose validation by this
// step's predicates is still pending) and a "valid" sequence (candidates
// already validated at this step by a deeper instance). When an instance
// pops, its predicates are decided; raw candidates either become valid and
// cross the step boundary upward through the instance's upward link, or —
// if this instance fails its predicates and the step's axis is a descendant
// axis — move sideways to the next instance below on the same stack (the
// outer matching the candidates are also contained in). Each candidate is
// held by exactly one instance per step at any time, which is what
// guarantees duplicate-free results.
package quickxscan

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rx/internal/nodeid"
	"rx/internal/xml"
	"rx/internal/xpath"
)

// Match is one result node.
type Match struct {
	ID nodeid.ID
	// Value is the node's string value, collected when Options.NeedValues
	// is set (attribute/text value, or concatenated text descendants for
	// elements).
	Value []byte
}

// Options configure an evaluator.
type Options struct {
	// NeedValues makes matches carry node string values (used for XPath
	// value index key generation, §3.3).
	NeedValues bool
}

// Stats reports the evaluator's live-state footprint for the Figure-7
// comparison.
type Stats struct {
	// Pushes counts matching instances created.
	Pushes int
	// MaxLive is the maximum number of matching instances alive at once
	// (the paper's O(|Q|·r) bound).
	MaxLive int
	// QueryNodes is |Q|.
	QueryNodes int
}

// qnode is one query node of the compiled query tree.
type qnode struct {
	id     int
	axis   xpath.Axis
	test   xpath.TestKind
	name   xml.QName // resolved name for TestName
	anyURI bool      // name test with no prefix matches any namespace? (false: no-namespace only)
	parent *qnode

	// Predicates anchored at this query node.
	preds     []predExpr
	numLeaves int

	// Predicate-chain bookkeeping: inPred marks query nodes inside a
	// predicate path; predSlot is the leaf slot (on every node of the
	// chain); anchor is the step the predicate belongs to; cmp is the
	// comparison applied at the chain's terminal.
	inPred   bool
	predSlot int
	anchor   *qnode
	terminal bool
	cmp      *cmpInfo

	// makesCand: this node's own matches are candidates (spine result node
	// or predicate-chain terminal).
	makesCand bool
	needValue bool
	// loose: candidates crossing up from this step may be re-targeted to
	// outer instances of the parent step (descendant axes).
	loose bool

	stack []*instance
}

type cmpInfo struct {
	op  xpath.CmpOp
	lit xpath.Literal
}

// cand is a candidate result flowing up the query tree.
type cand struct {
	id    nodeid.ID
	value []byte
	loose bool
}

// instance is a matching instance on a query node's stack.
type instance struct {
	q        *qnode
	depth    int
	upTarget *instance
	raw      []cand
	valid    []cand
	// rawRemainder holds loose raw candidates of a failed instance, pending
	// the sideways move to the instance below on the stack.
	rawRemainder []cand
	leafVals     []bool
	value        []byte // accumulated string value when q.needValue
	closed       bool
}

type predExpr interface{ eval(leaf []bool) bool }

type peAnd struct{ l, r predExpr }
type peOr struct{ l, r predExpr }
type peNot struct{ e predExpr }
type peLeaf struct{ slot int }

func (e peAnd) eval(l []bool) bool  { return e.l.eval(l) && e.r.eval(l) }
func (e peOr) eval(l []bool) bool   { return e.l.eval(l) || e.r.eval(l) }
func (e peNot) eval(l []bool) bool  { return !e.e.eval(l) }
func (e peLeaf) eval(l []bool) bool { return l[e.slot] }

// Eval is a compiled, reusable streaming evaluator for one query.
type Eval struct {
	opts  Options
	doc   *qnode
	nodes []*qnode // topological order (parents before children)

	depth     int
	openElems []openElem
	valueMIs  []*instance // open instances accumulating string values
	results   []Match
	stats     Stats
	live      int
	inDoc     bool
	err       error
	// free recycles matching instances: an instance popped from its stack
	// is never referenced again (candidates are copied out at finalize and
	// upward links only ever point at still-open ancestors).
	free []*instance
}

type openElem struct {
	pushed []*instance // instances pushed for this element, in push order
}

// Compile builds an evaluator for the query. Names are resolved against the
// dictionary; nsMap maps the query's prefixes to namespace URIs (nil means
// prefixes are disallowed).
func Compile(q *xpath.Query, names xml.Names, nsMap map[string]string, opts Options) (*Eval, error) {
	if !q.Rooted {
		return nil, errors.New("quickxscan: only rooted paths are evaluated against documents")
	}
	e := &Eval{opts: opts}
	e.doc = &qnode{id: 0, test: xpath.TestNode}
	e.nodes = append(e.nodes, e.doc)
	last, err := e.compileChain(q.Steps, e.doc, names, nsMap, false, 0, nil)
	if err != nil {
		return nil, err
	}
	last.makesCand = true
	if opts.NeedValues {
		last.needValue = true
	}
	e.stats.QueryNodes = len(e.nodes)
	return e, nil
}

// compileChain compiles a linear chain of steps under parent, returning the
// terminal qnode.
func (e *Eval) compileChain(s *xpath.Step, parent *qnode, names xml.Names, nsMap map[string]string, inPred bool, slot int, anchor *qnode) (*qnode, error) {
	cur := parent
	for ; s != nil; s = s.Next {
		q := &qnode{
			id:     len(e.nodes),
			axis:   s.Axis,
			test:   s.Test,
			parent: cur,
			inPred: inPred,
			predSlot: func() int {
				if inPred {
					return slot
				}
				return 0
			}(),
			anchor: anchor,
			loose:  s.Axis == xpath.Descendant || s.Axis == xpath.DescendantOrSelf,
		}
		if s.Test == xpath.TestName {
			uri := ""
			if s.Prefix != "" {
				u, ok := nsMap[s.Prefix]
				if !ok {
					return nil, fmt.Errorf("quickxscan: unbound prefix %q in query", s.Prefix)
				}
				uri = u
			}
			uriID, err := names.Intern(uri)
			if err != nil {
				return nil, err
			}
			localID, err := names.Intern(s.Local)
			if err != nil {
				return nil, err
			}
			q.name = xml.QName{URI: uriID, Local: localID}
		}
		e.nodes = append(e.nodes, q)
		// Compile this step's predicates.
		for _, pe := range s.Preds {
			compiled, err := e.compilePred(pe, q, names, nsMap)
			if err != nil {
				return nil, err
			}
			q.preds = append(q.preds, compiled)
		}
		cur = q
	}
	return cur, nil
}

func (e *Eval) compilePred(pe xpath.Expr, anchor *qnode, names xml.Names, nsMap map[string]string) (predExpr, error) {
	switch x := pe.(type) {
	case xpath.And:
		l, err := e.compilePred(x.L, anchor, names, nsMap)
		if err != nil {
			return nil, err
		}
		r, err := e.compilePred(x.R, anchor, names, nsMap)
		if err != nil {
			return nil, err
		}
		return peAnd{l, r}, nil
	case xpath.Or:
		l, err := e.compilePred(x.L, anchor, names, nsMap)
		if err != nil {
			return nil, err
		}
		r, err := e.compilePred(x.R, anchor, names, nsMap)
		if err != nil {
			return nil, err
		}
		return peOr{l, r}, nil
	case xpath.Not:
		inner, err := e.compilePred(x.E, anchor, names, nsMap)
		if err != nil {
			return nil, err
		}
		return peNot{inner}, nil
	case xpath.Exists:
		slot := anchor.numLeaves
		anchor.numLeaves++
		term, err := e.compileChain(x.Path, anchor, names, nsMap, true, slot, anchor)
		if err != nil {
			return nil, err
		}
		if term == anchor {
			return nil, errors.New("quickxscan: empty predicate path")
		}
		term.terminal = true
		term.makesCand = true
		return peLeaf{slot}, nil
	case xpath.Cmp:
		slot := anchor.numLeaves
		anchor.numLeaves++
		term, err := e.compileChain(x.Path, anchor, names, nsMap, true, slot, anchor)
		if err != nil {
			return nil, err
		}
		if term == anchor {
			// ". = lit" anchored directly: synthesize a self step.
			term = &qnode{
				id: len(e.nodes), axis: xpath.Self, test: xpath.TestNode,
				parent: anchor, inPred: true, predSlot: slot, anchor: anchor,
			}
			e.nodes = append(e.nodes, term)
		}
		term.terminal = true
		term.makesCand = true
		term.cmp = &cmpInfo{op: x.Op, lit: x.Lit}
		term.needValue = true
		return peLeaf{slot}, nil
	default:
		return nil, fmt.Errorf("quickxscan: unsupported predicate %T", pe)
	}
}

// Reset clears per-document state so the evaluator can scan another
// document.
func (e *Eval) Reset() {
	for _, q := range e.nodes {
		q.stack = q.stack[:0]
	}
	e.depth = 0
	e.openElems = e.openElems[:0]
	e.valueMIs = e.valueMIs[:0]
	e.results = nil
	e.live = 0
	e.inDoc = false
	e.err = nil
}

// Stats returns evaluation statistics (valid after EndDocument).
func (e *Eval) Stats() Stats { return e.stats }

// StartDocument begins a document.
func (e *Eval) StartDocument() {
	e.inDoc = true
	e.depth = 0
	docMI := &instance{q: e.doc, depth: 0}
	e.push(e.doc, docMI)
	e.openElems = append(e.openElems, openElem{pushed: []*instance{docMI}})
}

// newInstance takes an instance from the freelist or allocates one.
func (e *Eval) newInstance(q *qnode, depth int, up *instance) *instance {
	if n := len(e.free); n > 0 {
		mi := e.free[n-1]
		e.free = e.free[:n-1]
		*mi = instance{q: q, depth: depth, upTarget: up,
			raw: mi.raw[:0], valid: mi.valid[:0], rawRemainder: mi.rawRemainder[:0],
			leafVals: mi.leafVals[:0], value: mi.value[:0]}
		return mi
	}
	return &instance{q: q, depth: depth, upTarget: up}
}

// recycle returns a popped instance to the freelist.
func (e *Eval) recycle(mi *instance) {
	mi.upTarget = nil
	e.free = append(e.free, mi)
}

func (e *Eval) push(q *qnode, mi *instance) {
	q.stack = append(q.stack, mi)
	if q.numLeaves > 0 {
		if cap(mi.leafVals) >= q.numLeaves {
			mi.leafVals = mi.leafVals[:q.numLeaves]
			for i := range mi.leafVals {
				mi.leafVals[i] = false
			}
		} else {
			mi.leafVals = make([]bool, q.numLeaves)
		}
	}
	e.live++
	e.stats.Pushes++
	if e.live > e.stats.MaxLive {
		e.stats.MaxLive = e.live
	}
	if q.needValue {
		e.valueMIs = append(e.valueMIs, mi)
	}
}

// findUpTarget locates the previous-step instance a new match should link
// to, per the axis. Only stack tops (and, for descendant axes, the top
// ancestor) are examined — the transitivity shortcut of §4.2.
func findUpTarget(q *qnode, depth int) *instance {
	st := q.parent.stack
	if len(st) == 0 {
		return nil
	}
	// Stack depths are non-decreasing upward, and instances pushed for the
	// current node during this same event may sit above the ancestor
	// instance an axis needs — scan down past them.
	switch q.axis {
	case xpath.Child, xpath.Attribute:
		for i := len(st) - 1; i >= 0 && st[i].depth >= depth-1; i-- {
			if st[i].depth == depth-1 {
				return st[i]
			}
		}
	case xpath.Self:
		for i := len(st) - 1; i >= 0 && st[i].depth >= depth; i-- {
			if st[i].depth == depth {
				return st[i]
			}
		}
	case xpath.Descendant:
		for i := len(st) - 1; i >= 0; i-- {
			if st[i].depth < depth {
				return st[i]
			}
		}
	case xpath.DescendantOrSelf:
		if st[len(st)-1].depth <= depth {
			return st[len(st)-1]
		}
	}
	return nil
}

// matchElement reports whether q's test accepts an element with this name.
func (q *qnode) matchElement(name xml.QName) bool {
	if q.axis == xpath.Attribute {
		return false
	}
	switch q.test {
	case xpath.TestName:
		return q.name == name
	case xpath.TestStar, xpath.TestNode:
		return true
	}
	return false
}

// StartElement processes an element start. id is the node's ID (assigned by
// the caller: the packer's IDs for stored data, or stream-synthesized ones).
func (e *Eval) StartElement(name xml.QName, id nodeid.ID) {
	if !e.inDoc {
		return
	}
	e.depth++
	frame := openElem{}
	// Parents precede children in e.nodes, so self-axis chains see their
	// parent's instance pushed within this same event.
	for _, q := range e.nodes[1:] {
		if !q.matchElement(name) {
			continue
		}
		tp := findUpTarget(q, e.depth)
		if tp == nil {
			continue
		}
		mi := e.newInstance(q, e.depth, tp)
		e.push(q, mi)
		frame.pushed = append(frame.pushed, mi)
	}
	e.openElems = append(e.openElems, frame)
}

// Attribute processes an attribute of the current element.
func (e *Eval) Attribute(name xml.QName, value []byte, id nodeid.ID) {
	if !e.inDoc {
		return
	}
	for _, q := range e.nodes[1:] {
		if q.axis != xpath.Attribute {
			continue
		}
		switch q.test {
		case xpath.TestName:
			if q.name != name {
				continue
			}
		case xpath.TestStar, xpath.TestNode:
		default:
			continue
		}
		tp := findUpTarget(q, e.depth+1) // attribute sits one level below its element
		if tp == nil {
			continue
		}
		mi := e.newInstance(q, e.depth+1, tp)
		mi.value = append(mi.value, value...)
		e.push(q, mi)
		e.finalize(mi, id)
		e.popInstant(q)
		e.recycle(mi)
	}
}

// Text processes a text node.
func (e *Eval) Text(value []byte, id nodeid.ID) {
	if !e.inDoc {
		return
	}
	// Accumulate into open string values.
	for _, mi := range e.valueMIs {
		if !mi.closed && mi.q.needValue {
			mi.value = append(mi.value, value...)
		}
	}
	e.instantLeaf(value, id, func(q *qnode) bool {
		return q.test == xpath.TestText || q.test == xpath.TestNode
	})
}

// Comment processes a comment node.
func (e *Eval) Comment(value []byte, id nodeid.ID) {
	if !e.inDoc {
		return
	}
	e.instantLeaf(value, id, func(q *qnode) bool {
		return q.test == xpath.TestComment || q.test == xpath.TestNode
	})
}

// instantLeaf matches leaf document nodes (text, comments) that live for a
// single event.
func (e *Eval) instantLeaf(value []byte, id nodeid.ID, test func(*qnode) bool) {
	for _, q := range e.nodes[1:] {
		if q.axis == xpath.Attribute || q.axis == xpath.Self {
			continue
		}
		if !test(q) {
			continue
		}
		tp := findUpTarget(q, e.depth+1)
		if tp == nil {
			continue
		}
		mi := e.newInstance(q, e.depth+1, tp)
		mi.value = append(mi.value, value...)
		e.push(q, mi)
		e.finalize(mi, id)
		e.popInstant(q)
		e.recycle(mi)
	}
}

// popInstant removes an instant instance pushed on top of q's stack.
func (e *Eval) popInstant(q *qnode) {
	q.stack = q.stack[:len(q.stack)-1]
	e.live--
}

// EndElement processes an element end: instances pushed for this element
// are finalized children-first (reverse push order) and popped.
func (e *Eval) EndElement(id nodeid.ID) {
	if !e.inDoc {
		return
	}
	frame := e.openElems[len(e.openElems)-1]
	e.openElems = e.openElems[:len(e.openElems)-1]
	for i := len(frame.pushed) - 1; i >= 0; i-- {
		mi := frame.pushed[i]
		e.finalize(mi, id)
		// Pop from its stack (it is necessarily on top).
		st := mi.q.stack
		if len(st) == 0 || st[len(st)-1] != mi {
			e.err = errors.New("quickxscan: stack discipline violated")
			return
		}
		mi.q.stack = st[:len(st)-1]
		e.live--
		// Sideways: pending raw candidates move to the next instance below
		// (they are contained in the outer matching too).
		if len(mi.rawRemainder) > 0 {
			if len(mi.q.stack) > 0 {
				below := mi.q.stack[len(mi.q.stack)-1]
				below.raw = append(below.raw, mi.rawRemainder...)
			}
			mi.rawRemainder = mi.rawRemainder[:0]
		}
		e.recycle(mi)
	}
	e.depth--
	// Prune value accumulators that closed.
	if len(e.valueMIs) > 0 {
		kept := e.valueMIs[:0]
		for _, mi := range e.valueMIs {
			if !mi.closed {
				kept = append(kept, mi)
			}
		}
		e.valueMIs = kept
	}
}

// EndDocument finishes the scan and returns the matches in document order.
func (e *Eval) EndDocument() ([]Match, error) {
	if e.err != nil {
		return nil, e.err
	}
	if !e.inDoc {
		return nil, errors.New("quickxscan: EndDocument without StartDocument")
	}
	frame := e.openElems[len(e.openElems)-1]
	e.openElems = e.openElems[:len(e.openElems)-1]
	docMI := frame.pushed[0]
	e.inDoc = false
	// The document instance is trivially valid: everything raw is a result.
	out := append(docMI.valid, docMI.raw...)
	e.doc.stack = e.doc.stack[:0]
	e.live--
	sort.Slice(out, func(i, j int) bool { return nodeid.Compare(out[i].id, out[j].id) < 0 })
	matches := make([]Match, 0, len(out))
	for i, c := range out {
		if i > 0 && nodeid.Equal(out[i-1].id, c.id) {
			continue // defense in depth; propagation should be duplicate-free
		}
		matches = append(matches, Match{ID: c.id, Value: c.value})
	}
	e.results = matches
	return matches, nil
}

// finalize decides an instance's predicates and routes its candidate
// sequences (the Table-1 propagation, generalized).
func (e *Eval) finalize(mi *instance, id nodeid.ID) {
	mi.closed = true
	q := mi.q
	selfValid := true
	for _, p := range q.preds {
		if !p.eval(mi.leafVals) {
			selfValid = false
			break
		}
	}
	var validOut []cand
	validOut = append(validOut, mi.valid...)
	if selfValid {
		validOut = append(validOut, mi.raw...)
		mi.raw = nil
		if q.makesCand {
			ok := true
			if q.cmp != nil {
				ok = compare(mi.value, q.cmp)
			}
			if ok {
				c := cand{id: nodeid.Clone(id)}
				if e.opts.NeedValues && !q.inPred {
					c.value = append([]byte(nil), mi.value...)
				}
				validOut = append(validOut, c)
			}
		}
	} else {
		// Keep only re-targetable (loose) raw candidates for sideways moves.
		var rem []cand
		for _, c := range mi.raw {
			if c.loose {
				rem = append(rem, c)
			}
		}
		mi.rawRemainder = rem
		mi.raw = nil
	}
	if len(validOut) == 0 {
		return
	}
	// Cross the step boundary upward.
	if q.inPred && q.parent == q.anchor {
		// Delivery into the anchor's predicate leaf.
		mi.upTarget.leafVals[q.predSlot] = true
		return
	}
	for i := range validOut {
		validOut[i].loose = q.loose
	}
	mi.upTarget.raw = append(mi.upTarget.raw, validOut...)
}

// compare applies the terminal comparison to a node's string value.
// Numeric literals compare numerically (unparsable values compare false,
// XPath's NaN behaviour); string literals compare lexicographically.
func compare(value []byte, c *cmpInfo) bool {
	if c.lit.IsNum {
		v, err := strconv.ParseFloat(strings.TrimSpace(string(value)), 64)
		if err != nil {
			return false
		}
		return cmpOrd(c.op, compareFloat(v, c.lit.Num))
	}
	return cmpOrd(c.op, strings.Compare(string(value), c.lit.Str))
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpOrd(op xpath.CmpOp, ord int) bool {
	switch op {
	case xpath.EQ:
		return ord == 0
	case xpath.NE:
		return ord != 0
	case xpath.LT:
		return ord < 0
	case xpath.LE:
		return ord <= 0
	case xpath.GT:
		return ord > 0
	case xpath.GE:
		return ord >= 0
	}
	return false
}

// Live returns the number of matching instances currently alive (for the
// Figure-7 experiment).
func (e *Eval) Live() int { return e.live }
