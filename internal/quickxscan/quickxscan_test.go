package quickxscan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rx/internal/dom"
	"rx/internal/xml"
	"rx/internal/xmlparse"
	"rx/internal/xpath"
	"rx/internal/xpathdom"
)

// run evaluates query over doc with QuickXScan and returns node IDs as hex.
func run(t testing.TB, doc, query string) []string {
	t.Helper()
	dict := xml.NewDict()
	stream, err := xmlparse.Parse([]byte(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := xpath.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(q, dict, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := EvalTokens(e, stream)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, m := range ms {
		out = append(out, m.ID.String())
	}
	return out
}

// oracle evaluates with the DOM baseline.
func oracle(t testing.TB, doc, query string) []string {
	t.Helper()
	dict := xml.NewDict()
	stream, err := xmlparse.Parse([]byte(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := dom.Build(stream)
	if err != nil {
		t.Fatal(err)
	}
	q, err := xpath.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	c, err := xpathdom.Compile(q, dict, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, n := range c.Evaluate(tree) {
		out = append(out, n.ID.String())
	}
	return out
}

func expectAgree(t *testing.T, doc, query string) []string {
	t.Helper()
	got := run(t, doc, query)
	want := oracle(t, doc, query)
	if !eqStrings(got, want) {
		t.Errorf("query %q:\n quickxscan = %v\n dom oracle = %v\n doc: %.200s", query, got, want, doc)
	}
	return got
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSimplePaths(t *testing.T) {
	doc := `<a><b>one</b><c><b>two</b></c><b>three</b></a>`
	if got := expectAgree(t, doc, "/a/b"); len(got) != 2 {
		t.Errorf("got %v", got)
	}
	if got := expectAgree(t, doc, "//b"); len(got) != 3 {
		t.Errorf("got %v", got)
	}
	expectAgree(t, doc, "/a/c/b")
	expectAgree(t, doc, "/a/*")
	expectAgree(t, doc, "//b/text()")
	expectAgree(t, doc, "/x")     // no match
	expectAgree(t, doc, "/a/b/c") // no match
	expectAgree(t, doc, "//node()")
}

func TestAttributes(t *testing.T) {
	doc := `<r><p id="1" class="x"/><p id="2"/><q id="3"/></r>`
	if got := expectAgree(t, doc, "//p/@id"); len(got) != 2 {
		t.Errorf("got %v", got)
	}
	expectAgree(t, doc, "/r/p/@*")
	expectAgree(t, doc, "//@id")
}

func TestPaperFigure6(t *testing.T) {
	// The paper's running example: b//s[.//t = 'XML' and f/@w > 300],
	// adapted as a rooted query over a document shaped like Figure 6(b).
	doc := `<b>
	  <s><p><t>XML</t></p><f w="500"/></s>
	  <s><t>other</t><f w="500"/></s>
	  <s><t>XML</t><f w="100"/></s>
	  <s><s><t>XML</t><f w="400"/></s><f w="50"/></s>
	</b>`
	got := expectAgree(t, doc, "//s[.//t = 'XML' and f/@w > 300]")
	if len(got) != 2 {
		t.Errorf("expected 2 matches (first s and inner nested s), got %v", got)
	}
}

func TestPredicatesValueComparisons(t *testing.T) {
	doc := `<catalog>
	  <product><regprice>150</regprice><discount>0.2</discount></product>
	  <product><regprice>80</regprice><discount>0.2</discount></product>
	  <product><regprice>200</regprice><discount>0.05</discount></product>
	  <product><regprice>120</regprice></product>
	</catalog>`
	cases := []struct {
		q    string
		want int
	}{
		{"/catalog/product[regprice > 100]", 3},
		{"/catalog/product[regprice > 100 and discount > 0.1]", 1},
		{"/catalog/product[regprice > 100 or discount > 0.1]", 4},
		{"/catalog/product[not(discount)]", 1},
		{"/catalog/product[discount]", 3},
		{"/catalog/product[regprice = 120]", 1},
		{"/catalog/product[regprice != 120]", 3},
		{"/catalog/product[regprice <= 120]", 2},
		{"/catalog/product[regprice < 80.5]", 1},
		{"/catalog/product[regprice >= 200]", 1},
	}
	for _, c := range cases {
		got := expectAgree(t, doc, c.q)
		if len(got) != c.want {
			t.Errorf("%s: got %d matches %v, want %d", c.q, len(got), got, c.want)
		}
	}
}

func TestStringComparison(t *testing.T) {
	doc := `<r><e name="alpha"/><e name="beta"/><e>alpha</e></r>`
	got := expectAgree(t, doc, "/r/e[@name = 'alpha']")
	if len(got) != 1 {
		t.Errorf("got %v", got)
	}
	expectAgree(t, doc, "/r/e[. = 'alpha']")
	expectAgree(t, doc, "/r/e[@name != 'alpha']")
}

func TestRecursiveDescendants(t *testing.T) {
	// Nested a elements: the //a//a class that explodes automaton state.
	doc := `<a><a><a><b>x</b></a><b>y</b></a></a>`
	expectAgree(t, doc, "//a")
	expectAgree(t, doc, "//a//a")
	expectAgree(t, doc, "//a//a//a")
	expectAgree(t, doc, "//a//b")
	expectAgree(t, doc, "//a/a/b")
	expectAgree(t, doc, "//a[b]")
	expectAgree(t, doc, "//a[b = 'x']")
	expectAgree(t, doc, "//a//a[b = 'y']")
}

// TestTable1Propagation exercises all four Table-1 configurations.
func TestTable1Propagation(t *testing.T) {
	// Row 1: a/b — single a, b children propagate upward.
	expectAgree(t, `<a><b>1</b><b>2</b></a>`, "/a/b")
	// Row 2: a/b with repeated (sibling) a matchings — no sideways for s.
	expectAgree(t, `<r><a><b>1</b></a><a><b>2</b></a></r>`, "//a/b")
	// Row 3: a//b with nested b — t propagates sideways then upward.
	expectAgree(t, `<a><b><b>inner</b></b></a>`, "//a//b")
	// Row 4: a//b with nested a and nested b — both propagations.
	expectAgree(t, `<a><a><b><b>x</b></b></a><b>y</b></a>`, "//a//b")
}

// TestPredicateOnOuterOnly: a nested match whose inner instance fails its
// predicate must still be validated by an outer instance (the sideways raw
// move for loose candidates).
func TestPredicateOnOuterOnly(t *testing.T) {
	// //a[c]//b: the inner a has no c child, but the outer a does; b must
	// match through the outer a.
	doc := `<a><c/><a><b>target</b></a></a>`
	got := expectAgree(t, doc, "//a[c]//b")
	if len(got) != 1 {
		t.Errorf("expected 1 match via the outer a, got %v", got)
	}
	// Inner passes, outer fails: still one match, validated at the inner.
	doc2 := `<a><a><c/><b>target</b></a></a>`
	got2 := expectAgree(t, doc2, "//a[c]//b")
	if len(got2) != 1 {
		t.Errorf("expected 1 match via the inner a, got %v", got2)
	}
	// Neither passes: no match.
	doc3 := `<a><a><b>target</b></a></a>`
	if got3 := expectAgree(t, doc3, "//a[c]//b"); len(got3) != 0 {
		t.Errorf("expected no match, got %v", got3)
	}
	// Child-axis candidates are tight: //a[c]/b must NOT retarget b to an
	// outer a.
	doc4 := `<a><c/><a><b>target</b></a></a>`
	if got4 := expectAgree(t, doc4, "//a[c]/b"); len(got4) != 0 {
		t.Errorf("child-axis candidate wrongly retargeted: %v", got4)
	}
}

func TestNestedPredicates(t *testing.T) {
	doc := `<lib>
	  <shelf><book lang="en"><title>A</title></book></shelf>
	  <shelf><book lang="de"><title>B</title></book></shelf>
	  <shelf><box/></shelf>
	</lib>`
	expectAgree(t, doc, "/lib/shelf[book[@lang = 'en']]")
	expectAgree(t, doc, "/lib/shelf[book]/book/title")
	expectAgree(t, doc, "//shelf[not(book)]")
	expectAgree(t, doc, "//book[@lang = 'en' or @lang = 'de']/title")
}

func TestNamespaceQueries(t *testing.T) {
	doc := `<p:r xmlns:p="urn:one" xmlns:q="urn:two"><p:x>1</p:x><q:x>2</q:x><x>3</x></p:r>`
	dict := xml.NewDict()
	stream, err := xmlparse.Parse([]byte(doc), dict, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := xpath.Parse("//v:x")
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(q, dict, map[string]string{"v": "urn:one"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := EvalTokens(e, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Errorf("namespaced query matched %d nodes", len(ms))
	}
	// Unprefixed name matches only no-namespace x.
	q2, _ := xpath.Parse("//x")
	e2, _ := Compile(q2, dict, nil, Options{})
	ms2, _ := EvalTokens(e2, stream)
	if len(ms2) != 1 {
		t.Errorf("unprefixed query matched %d nodes", len(ms2))
	}
	// Unbound prefix fails at compile.
	if _, err := Compile(q, dict, nil, Options{}); err == nil {
		t.Error("unbound prefix should fail to compile")
	}
}

func TestValues(t *testing.T) {
	doc := `<r><p id="42"/><q>hello <b>world</b></q></r>`
	dict := xml.NewDict()
	stream, _ := xmlparse.Parse([]byte(doc), dict, xmlparse.Options{})
	q, _ := xpath.Parse("//p/@id")
	e, _ := Compile(q, dict, nil, Options{NeedValues: true})
	ms, err := EvalTokens(e, stream)
	if err != nil || len(ms) != 1 {
		t.Fatalf("ms=%v err=%v", ms, err)
	}
	if string(ms[0].Value) != "42" {
		t.Errorf("attr value = %q", ms[0].Value)
	}
	// Element string value concatenates descendant text.
	q2, _ := xpath.Parse("/r/q")
	e2, _ := Compile(q2, dict, nil, Options{NeedValues: true})
	ms2, _ := EvalTokens(e2, stream)
	if len(ms2) != 1 || string(ms2[0].Value) != "hello world" {
		t.Errorf("element value = %q", ms2[0].Value)
	}
}

func TestStatsBounded(t *testing.T) {
	// Recursion depth r controls live instances: O(|Q|*r), not exponential.
	build := func(depth int) string {
		return strings.Repeat("<a>", depth) + "<b>x</b>" + strings.Repeat("</a>", depth)
	}
	dict := xml.NewDict()
	q, _ := xpath.Parse("//a//a//a")
	for _, depth := range []int{4, 8, 16, 32} {
		stream, _ := xmlparse.Parse([]byte(build(depth)), dict, xmlparse.Options{})
		e, _ := Compile(q, dict, nil, Options{})
		if _, err := EvalTokens(e, stream); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		bound := st.QueryNodes*depth + depth + 2
		if st.MaxLive > bound {
			t.Errorf("depth %d: MaxLive %d exceeds O(|Q|*r) bound %d", depth, st.MaxLive, bound)
		}
	}
}

func TestSelfAxis(t *testing.T) {
	doc := `<a><b>x</b></a>`
	expectAgree(t, doc, "/a/b/self::b")
	expectAgree(t, doc, "/a/self::a/b")
	expectAgree(t, doc, "/descendant-or-self::b")
}

func TestMixedContentAndComments(t *testing.T) {
	doc := `<r>pre<a>in</a><!--note-->post</r>`
	expectAgree(t, doc, "/r/text()")
	expectAgree(t, doc, "/r/comment()")
	expectAgree(t, doc, "//text()")
}

// TestOracleProperty: QuickXScan agrees with the DOM oracle on random
// documents and a battery of queries.
func TestOracleProperty(t *testing.T) {
	queries := []string{
		"//a", "//a//b", "//a/b", "/e0/e1", "//e1[e2]", "//e1[@a0 = '5']",
		"//e2//text()", "//*[@a1]", "//e3[not(e1)]", "//e1[e2 or @a0]",
		"//e0//e0", "//e0//e0//e0", "//e1/@a0", "//e2[. = 'x']",
		"//e1[e0 and e2]", "/e0//e1/e2",
	}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 0, 5)
		for _, q := range queries {
			got := run(t, doc, q)
			want := oracle(t, doc, q)
			if !eqStrings(got, want) {
				t.Fatalf("seed %d query %q:\n quickxscan = %v\n oracle     = %v\n doc %s", seed, q, got, want, doc)
			}
		}
	}
}

func randomDoc(rng *rand.Rand, depth, maxDepth int) string {
	var sb strings.Builder
	name := fmt.Sprintf("e%d", rng.Intn(4))
	sb.WriteString("<" + name)
	for a := 0; a < rng.Intn(3); a++ {
		fmt.Fprintf(&sb, ` a%d="%d"`, a, rng.Intn(10))
	}
	sb.WriteString(">")
	if depth < maxDepth {
		for k := 0; k < rng.Intn(5); k++ {
			if rng.Intn(4) == 0 {
				fmt.Fprintf(&sb, "t%d", rng.Intn(10))
			} else {
				sb.WriteString(randomDoc(rng, depth+1, maxDepth))
			}
		}
	}
	sb.WriteString("</" + name + ">")
	return sb.String()
}

func BenchmarkQuickXScan(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<catalog>")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, `<product id="%d"><name>Widget %d</name><price>%d</price></product>`, i, i, i%500)
	}
	sb.WriteString("</catalog>")
	dict := xml.NewDict()
	stream, _ := xmlparse.Parse([]byte(sb.String()), dict, xmlparse.Options{})
	q, _ := xpath.Parse("/catalog/product[price > 250]/name")
	e, err := Compile(q, dict, nil, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvalTokens(e, stream); err != nil {
			b.Fatal(err)
		}
	}
}
